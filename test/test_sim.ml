(* Tests for the simulation library: schedulers, the trajectory engine,
   and Monte Carlo estimation, cross-checked against the exact values
   known for the toy automata. *)

module Q = Proba.Rational
module Toys = Test_support.Toys

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_scheduler_of_adversary () =
  let adv = Core.Adversary.first_enabled Toys.Choice.pa in
  let sched = Sim.Scheduler.of_adversary adv in
  let rng = Proba.Rng.create ~seed:1 in
  match sched rng (Core.Exec.initial Toys.Choice.S0) with
  | Some step ->
    Alcotest.(check bool) "same as adversary" true
      (step.Core.Pa.action = Toys.Choice.A)
  | None -> Alcotest.fail "expected a step"

let test_scheduler_uniform_covers () =
  let sched = Sim.Scheduler.uniform Toys.Choice.pa in
  let rng = Proba.Rng.create ~seed:2 in
  let seen_a = ref false and seen_b = ref false in
  for _ = 1 to 200 do
    match sched rng (Core.Exec.initial Toys.Choice.S0) with
    | Some { Core.Pa.action = Toys.Choice.A; _ } -> seen_a := true
    | Some { Core.Pa.action = Toys.Choice.B; _ } -> seen_b := true
    | None -> Alcotest.fail "unexpected halt"
  done;
  Alcotest.(check bool) "both choices sampled" true (!seen_a && !seen_b)

let test_scheduler_uniform_terminal () =
  let sched = Sim.Scheduler.uniform Toys.Choice.pa in
  let rng = Proba.Rng.create ~seed:3 in
  Alcotest.(check bool) "halts at terminal" true
    (sched rng (Core.Exec.initial Toys.Choice.S1) = None)

let test_scheduler_priority () =
  let rank _ a = if a = Toys.Choice.B then 0 else 1 in
  let sched = Sim.Scheduler.priority Toys.Choice.pa rank in
  let rng = Proba.Rng.create ~seed:4 in
  match sched rng (Core.Exec.initial Toys.Choice.S0) with
  | Some step ->
    Alcotest.(check bool) "lowest rank wins" true
      (step.Core.Pa.action = Toys.Choice.B)
  | None -> Alcotest.fail "expected a step"

let test_scheduler_weighted () =
  let weight _ a = if a = Toys.Choice.A then 3 else 1 in
  let sched = Sim.Scheduler.weighted Toys.Choice.pa weight in
  let rng = Proba.Rng.create ~seed:5 in
  let a_count = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    match sched rng (Core.Exec.initial Toys.Choice.S0) with
    | Some { Core.Pa.action = Toys.Choice.A; _ } -> incr a_count
    | Some _ -> ()
    | None -> Alcotest.fail "unexpected halt"
  done;
  let share = float_of_int !a_count /. float_of_int trials in
  Alcotest.(check bool) "roughly 3:1" true (share > 0.70 && share < 0.80)

let test_scheduler_weighted_all_zero () =
  let sched = Sim.Scheduler.weighted Toys.Choice.pa (fun _ _ -> 0) in
  let rng = Proba.Rng.create ~seed:6 in
  Alcotest.(check bool) "falls back to uniform" true
    (sched rng (Core.Exec.initial Toys.Choice.S0) <> None)

let test_scheduler_halt_when () =
  let sched =
    Sim.Scheduler.halt_when
      (fun s -> s = Toys.Choice.S0)
      (Sim.Scheduler.uniform Toys.Choice.pa)
  in
  let rng = Proba.Rng.create ~seed:7 in
  Alcotest.(check bool) "halts on predicate" true
    (sched rng (Core.Exec.initial Toys.Choice.S0) = None)

(* ------------------------------------------------------------------ *)
(* Engine *)

let walker_setup scheduler =
  { Sim.Monte_carlo.pa = Toys.Walker.pa;
    scheduler;
    duration = (fun a -> if Toys.Walker.is_tick a then 1 else 0);
    start = Toys.Walker.start }

let test_engine_reaches () =
  let rng = Proba.Rng.create ~seed:8 in
  let outcome =
    Sim.Engine.run Toys.Walker.pa (Sim.Scheduler.uniform Toys.Walker.pa)
      ~rng
      ~stop:(fun s -> s = Toys.Walker.Done)
      ~duration:(fun a -> if Toys.Walker.is_tick a then 1 else 0)
      Toys.Walker.start
  in
  Alcotest.(check bool) "reached" true (outcome.Sim.Engine.why = Sim.Engine.Reached);
  Alcotest.(check bool) "final is done" true
    (outcome.Sim.Engine.final = Toys.Walker.Done);
  Alcotest.(check bool) "elapsed counts ticks" true
    (outcome.Sim.Engine.elapsed
     = Core.Exec.total_time
         ~duration:(fun a -> if Toys.Walker.is_tick a then 1 else 0)
         outcome.Sim.Engine.frag)

let test_engine_step_limit () =
  let rng = Proba.Rng.create ~seed:9 in
  let outcome =
    Sim.Engine.run Toys.Walker.pa (Sim.Scheduler.uniform Toys.Walker.pa)
      ~rng ~stop:(fun _ -> false) ~max_steps:10 Toys.Walker.start
  in
  Alcotest.(check bool) "step limit" true
    (outcome.Sim.Engine.why = Sim.Engine.Step_limit);
  Alcotest.(check int) "ten steps" 10 outcome.Sim.Engine.steps

let test_engine_deadlock () =
  let rng = Proba.Rng.create ~seed:10 in
  let outcome =
    Sim.Engine.run Toys.Choice.pa (Sim.Scheduler.uniform Toys.Choice.pa)
      ~rng ~stop:(fun _ -> false) Toys.Choice.S0
  in
  Alcotest.(check bool) "deadlock at terminal" true
    (outcome.Sim.Engine.why = Sim.Engine.Deadlock);
  Alcotest.(check int) "one step taken" 1 outcome.Sim.Engine.steps

let test_engine_halted () =
  let rng = Proba.Rng.create ~seed:11 in
  let outcome =
    Sim.Engine.run Toys.Choice.pa
      (Sim.Scheduler.of_adversary Core.Adversary.halt)
      ~rng ~stop:(fun _ -> false) Toys.Choice.S0
  in
  Alcotest.(check bool) "halted" true
    (outcome.Sim.Engine.why = Sim.Engine.Halted)

let test_engine_time_limit () =
  let rng = Proba.Rng.create ~seed:12 in
  (* The delaying scheduler ticks forever on Done, so a time limit must
     fire once the budget is exhausted. *)
  let outcome =
    Sim.Engine.run Toys.Walker.pa (Sim.Scheduler.uniform Toys.Walker.pa)
      ~rng ~stop:(fun _ -> false)
      ~duration:(fun a -> if Toys.Walker.is_tick a then 1 else 0)
      ~max_time:5 Toys.Walker.start
  in
  Alcotest.(check bool) "time limit" true
    (outcome.Sim.Engine.why = Sim.Engine.Time_limit);
  Alcotest.(check bool) "elapsed within bound" true
    (outcome.Sim.Engine.elapsed <= 5)

let test_engine_stop_immediately () =
  let rng = Proba.Rng.create ~seed:13 in
  let outcome =
    Sim.Engine.run Toys.Walker.pa (Sim.Scheduler.uniform Toys.Walker.pa)
      ~rng ~stop:(fun _ -> true) Toys.Walker.start
  in
  Alcotest.(check bool) "reached at once" true
    (outcome.Sim.Engine.why = Sim.Engine.Reached);
  Alcotest.(check int) "no steps" 0 outcome.Sim.Engine.steps

(* ------------------------------------------------------------------ *)
(* Termination taxonomy at the deadline itself.  A deterministic
   countdown makes every outcome exact: [n] ticks down to [1] (one time
   unit each), then a zero-duration [finish] reaches [0], which is
   terminal. *)

module Countdown = struct
  let enabled s =
    if s > 1 then [ { Core.Pa.action = "tick"; dist = Proba.Dist.point (s - 1) } ]
    else if s = 1 then
      [ { Core.Pa.action = "finish"; dist = Proba.Dist.point 0 } ]
    else []

  let pa =
    Core.Pa.make
      ~pp_state:(fun fmt s -> Format.fprintf fmt "%d" s)
      ~pp_action:Format.pp_print_string
      ~start:[ 3 ] ~enabled ()

  let duration = function "tick" -> 1 | _ -> 0

  let run ~stop ?max_time () =
    Sim.Engine.run pa (Sim.Scheduler.uniform pa)
      ~rng:(Proba.Rng.create ~seed:30) ~stop ~duration ?max_time 3
end

let test_engine_reached_at_exact_max_time () =
  (* The target appears at elapsed = max_time; "within t" includes t, so
     this is Reached, not Time_limit. *)
  let outcome = Countdown.run ~stop:(fun s -> s = 1) ~max_time:2 () in
  Alcotest.(check bool) "reached" true
    (outcome.Sim.Engine.why = Sim.Engine.Reached);
  Alcotest.(check int) "at the deadline" 2 outcome.Sim.Engine.elapsed

let test_engine_deadlock_at_exact_max_time () =
  (* The zero-duration finish still fires at the deadline, and the
     terminal it lands in is a Deadlock, not a Time_limit. *)
  let outcome = Countdown.run ~stop:(fun _ -> false) ~max_time:2 () in
  Alcotest.(check bool) "deadlock" true
    (outcome.Sim.Engine.why = Sim.Engine.Deadlock);
  Alcotest.(check int) "final is 0" 0 outcome.Sim.Engine.final;
  Alcotest.(check int) "elapsed is the deadline" 2
    outcome.Sim.Engine.elapsed

let test_engine_time_limit_before_deadline_step () =
  (* A unit-duration step that would end beyond the deadline is not
     taken: the run stops one state earlier with Time_limit. *)
  let outcome = Countdown.run ~stop:(fun _ -> false) ~max_time:1 () in
  Alcotest.(check bool) "time limit" true
    (outcome.Sim.Engine.why = Sim.Engine.Time_limit);
  Alcotest.(check int) "stopped before the long tick" 2
    outcome.Sim.Engine.final;
  Alcotest.(check int) "elapsed capped" 1 outcome.Sim.Engine.elapsed

let test_engine_halted_beats_time_limit () =
  (* The scheduler declining wins over the clock when both apply at the
     same instant. *)
  let sched =
    Sim.Scheduler.halt_when (fun s -> s = 2)
      (Sim.Scheduler.uniform Countdown.pa)
  in
  let outcome =
    Sim.Engine.run Countdown.pa sched ~rng:(Proba.Rng.create ~seed:31)
      ~stop:(fun _ -> false) ~duration:Countdown.duration ~max_time:1 3
  in
  Alcotest.(check bool) "halted" true
    (outcome.Sim.Engine.why = Sim.Engine.Halted);
  Alcotest.(check int) "at the deadline" 1 outcome.Sim.Engine.elapsed

let test_engine_seed_deterministic () =
  (* Two runs from identical seeds replay the same trajectory exactly;
     Proba.Rng is a pure function of its seed. *)
  let run () =
    Sim.Engine.run Toys.Walker.pa (Sim.Scheduler.uniform Toys.Walker.pa)
      ~rng:(Proba.Rng.create ~seed:32)
      ~stop:(fun s -> s = Toys.Walker.Done)
      ~duration:(fun a -> if Toys.Walker.is_tick a then 1 else 0)
      ~max_steps:500 Toys.Walker.start
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same steps" a.Sim.Engine.steps b.Sim.Engine.steps;
  Alcotest.(check int) "same elapsed" a.Sim.Engine.elapsed
    b.Sim.Engine.elapsed;
  Alcotest.(check bool) "same verdict" true
    (a.Sim.Engine.why = b.Sim.Engine.why);
  Alcotest.(check bool) "same final state" true
    (a.Sim.Engine.final = b.Sim.Engine.final)

(* ------------------------------------------------------------------ *)
(* Monte Carlo, cross-checked against the exact walker values *)

let delayer_sched =
  (* Tick when possible: realizes the exact minimum 1 - 2^-t. *)
  Sim.Scheduler.priority Toys.Walker.pa (fun _ a ->
      if Toys.Walker.is_tick a then 0 else 1)

let eager_sched =
  Sim.Scheduler.priority Toys.Walker.pa (fun _ a ->
      if Toys.Walker.is_tick a then 1 else 0)

let test_mc_reach_delayer () =
  let prop =
    Sim.Monte_carlo.estimate_reach (walker_setup delayer_sched)
      ~target:(fun s -> s = Toys.Walker.Done)
      ~within:2 ~trials:4000 ~seed:100
  in
  let lo, hi = Proba.Stat.Proportion.wilson_ci prop in
  (* Exact value under the delaying adversary: 3/4. *)
  Alcotest.(check bool) "CI brackets 0.75" true (lo <= 0.75 && 0.75 <= hi);
  Alcotest.(check int) "all trials counted" 4000
    (Proba.Stat.Proportion.trials prop)

let test_mc_reach_eager () =
  let prop =
    Sim.Monte_carlo.estimate_reach (walker_setup eager_sched)
      ~target:(fun s -> s = Toys.Walker.Done)
      ~within:1 ~trials:4000 ~seed:101
  in
  let lo, hi = Proba.Stat.Proportion.wilson_ci prop in
  (* Exact value under the eager adversary: 1 - 2^-2 = 3/4. *)
  Alcotest.(check bool) "CI brackets 0.75" true (lo <= 0.75 && 0.75 <= hi)

let test_mc_reach_reproducible () =
  let run () =
    Proba.Stat.Proportion.successes
      (Sim.Monte_carlo.estimate_reach (walker_setup delayer_sched)
         ~target:(fun s -> s = Toys.Walker.Done)
         ~within:3 ~trials:500 ~seed:42)
  in
  Alcotest.(check int) "same seed, same count" (run ()) (run ())

let test_mc_time () =
  let summary, missed =
    Sim.Monte_carlo.estimate_time (walker_setup delayer_sched)
      ~target:(fun s -> s = Toys.Walker.Done)
      ~trials:4000 ~seed:102 ()
  in
  Alcotest.(check int) "no missed trials" 0 missed;
  (* Worst-case expected ticks is exactly 2 (geometric, one flip per
     tick). *)
  let mean = Proba.Stat.Summary.mean summary in
  Alcotest.(check bool) "mean near 2" true (mean > 1.85 && mean < 2.15)

let test_mc_time_eager () =
  let summary, _ =
    Sim.Monte_carlo.estimate_time (walker_setup eager_sched)
      ~target:(fun s -> s = Toys.Walker.Done)
      ~trials:4000 ~seed:103 ()
  in
  (* Best-case expected ticks is exactly 1. *)
  let mean = Proba.Stat.Summary.mean summary in
  Alcotest.(check bool) "mean near 1" true (mean > 0.85 && mean < 1.15)

let test_mc_histogram () =
  let hist, summary =
    Sim.Monte_carlo.histogram_time (walker_setup delayer_sched)
      ~target:(fun s -> s = Toys.Walker.Done)
      ~trials:1000 ~seed:104 ~lo:0.0 ~hi:20.0 ~bins:20 ()
  in
  Alcotest.(check int) "hist count matches"
    (Proba.Stat.Summary.count summary) (Proba.Stat.Histogram.count hist);
  Alcotest.(check bool) "some mass in low bins" true
    ((Proba.Stat.Histogram.bin_counts hist).(1) > 0)

let test_scheduler_of_choice () =
  (* Replay "always pick the first enabled step" as a policy. *)
  let sched = Sim.Scheduler.of_choice (fun _ -> Some 0) Toys.Walker.pa in
  let rng = Proba.Rng.create ~seed:21 in
  (match sched rng (Core.Exec.initial Toys.Walker.start) with
   | Some step ->
     Alcotest.(check bool) "first step is tick" true
       (Toys.Walker.is_tick step.Core.Pa.action)
   | None -> Alcotest.fail "expected a step");
  (* Out-of-range and negative indices halt. *)
  let bad = Sim.Scheduler.of_choice (fun _ -> Some 99) Toys.Walker.pa in
  Alcotest.(check bool) "out of range halts" true
    (bad rng (Core.Exec.initial Toys.Walker.start) = None);
  let none = Sim.Scheduler.of_choice (fun _ -> Some (-1)) Toys.Walker.pa in
  Alcotest.(check bool) "negative halts" true
    (none rng (Core.Exec.initial Toys.Walker.start) = None)

(* ------------------------------------------------------------------ *)
(* Search *)

let test_search_finds_peak () =
  (* Maximize -(g - 7)^2 over integers by +-1 moves. *)
  let score g = -. float_of_int ((g - 7) * (g - 7)) in
  let neighbor g rng = if Proba.Rng.bool rng then g + 1 else g - 1 in
  let result =
    Sim.Search.hill_climb
      ~rng:(Proba.Rng.create ~seed:5)
      ~init:0 ~neighbor ~score ~steps:200 ()
  in
  Alcotest.(check int) "found the peak" 7 result.Sim.Search.best;
  Alcotest.(check (float 0.0)) "peak value" 0.0 result.Sim.Search.score

let test_search_trace_monotone () =
  let score g = float_of_int g in
  let neighbor g rng = g + Proba.Rng.int rng 3 - 1 in
  let result =
    Sim.Search.hill_climb
      ~rng:(Proba.Rng.create ~seed:6)
      ~init:0 ~neighbor ~score ~steps:50 ()
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "trace is nondecreasing" true
    (monotone result.Sim.Search.trace);
  Alcotest.(check int) "evaluations counted" 51 result.Sim.Search.evaluations

let test_search_restarts_keep_best () =
  (* A deceptive landscape: restarts cannot make the result worse. *)
  let score g = if g = 0 then 10.0 else float_of_int (-g * g) in
  let neighbor g rng = g + Proba.Rng.int rng 3 - 1 in
  let once =
    Sim.Search.hill_climb ~rng:(Proba.Rng.create ~seed:7) ~init:0 ~neighbor
      ~score ~steps:10 ()
  in
  let with_restarts =
    Sim.Search.hill_climb ~rng:(Proba.Rng.create ~seed:7) ~init:0 ~neighbor
      ~score ~steps:10 ~restarts:3 ()
  in
  Alcotest.(check bool) "restarts never hurt" true
    (with_restarts.Sim.Search.score >= once.Sim.Search.score)

(* ------------------------------------------------------------------ *)
(* Layered policy replay *)

let test_layered_policy_replay () =
  (* Extract the walker's 3-tick minimizing policy and replay it: the
     simulated reach frequency must match the exact minimum 7/8. *)
  let expl = Mdp.Explore.run Toys.Walker.pa in
  let arena = Mdp.Arena.compile ~is_tick:Toys.Walker.is_tick expl in
  let target =
    Array.init (Mdp.Explore.num_states expl) (fun i ->
        Mdp.Explore.state expl i = Toys.Walker.Done)
  in
  let values, policy =
    Mdp.Finite_horizon.min_reach_with_policy arena ~target ~ticks:3
  in
  let start_i = Option.get (Mdp.Explore.index expl Toys.Walker.start) in
  let exact = Q.to_float values.(start_i) in
  let choose remaining s =
    match Mdp.Explore.index expl s with
    | Some i when remaining >= 0 && remaining < Array.length policy ->
      Some policy.(remaining).(i)
    | Some _ | None -> None
  in
  let sched =
    Sim.Scheduler.of_layered_policy ~horizon:3
      ~duration:(fun a -> if Toys.Walker.is_tick a then 1 else 0)
      ~choose Toys.Walker.pa
  in
  let setup =
    { Sim.Monte_carlo.pa = Toys.Walker.pa; scheduler = sched;
      duration = (fun a -> if Toys.Walker.is_tick a then 1 else 0);
      start = Toys.Walker.start }
  in
  let prop =
    Sim.Monte_carlo.estimate_reach setup
      ~target:(fun s -> s = Toys.Walker.Done) ~within:3 ~trials:4000
      ~seed:15
  in
  let estimate = Proba.Stat.Proportion.estimate prop in
  Alcotest.(check (float 0.03))
    (Printf.sprintf "replay %.4f matches exact %.4f" estimate exact)
    exact estimate

let () =
  Alcotest.run "sim"
    [ ("scheduler",
       [ Alcotest.test_case "of_adversary" `Quick test_scheduler_of_adversary;
         Alcotest.test_case "uniform covers" `Quick
           test_scheduler_uniform_covers;
         Alcotest.test_case "uniform terminal" `Quick
           test_scheduler_uniform_terminal;
         Alcotest.test_case "priority" `Quick test_scheduler_priority;
         Alcotest.test_case "weighted" `Quick test_scheduler_weighted;
         Alcotest.test_case "weighted all zero" `Quick
           test_scheduler_weighted_all_zero;
         Alcotest.test_case "halt_when" `Quick test_scheduler_halt_when;
         Alcotest.test_case "of_choice" `Quick test_scheduler_of_choice ]);
      ("engine",
       [ Alcotest.test_case "reaches" `Quick test_engine_reaches;
         Alcotest.test_case "step limit" `Quick test_engine_step_limit;
         Alcotest.test_case "deadlock" `Quick test_engine_deadlock;
         Alcotest.test_case "halted" `Quick test_engine_halted;
         Alcotest.test_case "time limit" `Quick test_engine_time_limit;
         Alcotest.test_case "stop immediately" `Quick
           test_engine_stop_immediately;
         Alcotest.test_case "reached at exact max_time" `Quick
           test_engine_reached_at_exact_max_time;
         Alcotest.test_case "deadlock at exact max_time" `Quick
           test_engine_deadlock_at_exact_max_time;
         Alcotest.test_case "time limit before overlong step" `Quick
           test_engine_time_limit_before_deadline_step;
         Alcotest.test_case "halted beats time limit" `Quick
           test_engine_halted_beats_time_limit;
         Alcotest.test_case "seed deterministic" `Quick
           test_engine_seed_deterministic ]);
      ("search",
       [ Alcotest.test_case "finds peak" `Quick test_search_finds_peak;
         Alcotest.test_case "trace monotone" `Quick
           test_search_trace_monotone;
         Alcotest.test_case "restarts keep best" `Quick
           test_search_restarts_keep_best ]);
      ("layered-policy",
       [ Alcotest.test_case "replay matches exact" `Quick
           test_layered_policy_replay ]);
      ("monte-carlo",
       [ Alcotest.test_case "reach under delayer" `Quick test_mc_reach_delayer;
         Alcotest.test_case "reach under eager" `Quick test_mc_reach_eager;
         Alcotest.test_case "reproducible" `Quick test_mc_reach_reproducible;
         Alcotest.test_case "expected time (delayer)" `Quick test_mc_time;
         Alcotest.test_case "expected time (eager)" `Quick test_mc_time_eager;
         Alcotest.test_case "histogram" `Quick test_mc_histogram ]) ]
