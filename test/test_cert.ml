(* The certificate pipeline, end to end: emission from the real case
   studies, the independent verifier's rule arithmetic, integrity
   (every single-byte tamper detected, value tampers pinned to the
   owning node), arena-fingerprint determinism, and exact Bigint-tier
   rationals across the wire. *)

module J = Analysis.Json
module Q = Proba.Rational
module B = Proba.Bigint
module N = Cert.Node
module V = Cert.Verify
module LR = Lehmann_rabin
module IR = Itai_rodeh

(* ------------------------------------------------------------------ *)
(* Helpers. *)

let query ?(model = `Lr) ?(n = 3) ?(g = 1) ?(k = 1) ?(topology = "ring")
    ?(bound = 2) ?(cap = 2) ?(sym = "off") ?(plane = "interval") () =
  { Server.Protocol.model; n; g; k; topology; bound; cap;
    max_states = None; sym; plane; deadline_ms = None }

let cert_of_query q =
  match N.of_json (Server.Service.cert_json q) with
  | Ok c -> c
  | Error e -> Alcotest.failf "cert_json did not yield a certificate: %s" e

let expect_ok c =
  match V.run c with
  | Ok s -> s
  | Error e -> Alcotest.failf "verify failed: %s" (V.error_to_string e)

let expect_err what c =
  match V.run c with
  | Ok _ -> Alcotest.failf "%s: a bad certificate verified" what
  | Error e -> e

(* Hand-built DAGs for the structural tests: two checked leaves chained
   by a compose node, built exactly the way the verifier re-checks them
   -- then individual premises are broken one at a time. *)

let schema_name = "Unit-Time"

let cfg =
  { N.model = "lr"; n = 3; plane = "interval"; sym = "off";
    faults = "none"; budget = "states:1000"; params = [ ("g", "1") ] }

let leaf ~pre ~post ~time ~prob =
  let unhashed =
    { N.pre; post; time = Q.of_int time; prob;
      node_schema = schema_name; closed = true;
      rule =
        N.Checked
          { evidence = "test: exact backward induction";
            fingerprint = String.make 32 'a'; config = cfg };
      hash = "" }
  in
  { unhashed with N.hash = N.node_hash unhashed ~child_hashes:[] }

let compose_node ?time ?prob (a, ca) (b, cb) =
  let time = Option.value time ~default:(Q.add ca.N.time cb.N.time) in
  let prob = Option.value prob ~default:(Q.mul ca.N.prob cb.N.prob) in
  let unhashed =
    { N.pre = ca.N.pre; post = cb.N.post; time; prob;
      node_schema = schema_name; closed = true; rule = N.Compose (a, b);
      hash = "" }
  in
  { unhashed with
    N.hash = N.node_hash unhashed ~child_hashes:[ ca.N.hash; cb.N.hash ] }

let render (n : N.node) =
  Printf.sprintf "%s --%s-->_%s %s  [%s]" n.N.pre (Q.to_string n.N.time)
    (Q.to_string n.N.prob) n.N.post n.N.node_schema

let assemble ?claim ?digest ~root nodes =
  let nodes = Array.of_list nodes in
  let claim = Option.value claim ~default:(render nodes.(root)) in
  let digest =
    Option.value digest
      ~default:
        (N.certificate_digest ~version:1 ~model:"lr" ~claim ~root
           ~node_hashes:(List.map (fun n -> n.N.hash) (Array.to_list nodes)))
  in
  { N.version = 1; model = "lr"; claim; root; nodes; digest }

let half = Q.half
let l1 () = leaf ~pre:"T" ~post:"M" ~time:2 ~prob:half
let l2 () = leaf ~pre:"M" ~post:"C" ~time:3 ~prob:half

let good_pair () =
  let a = l1 () and b = l2 () in
  assemble ~root:2 [ a; b; compose_node (0, a) (1, b) ]

(* ------------------------------------------------------------------ *)
(* Emission from the four case studies. *)

let check_model name q ~min_leaves =
  let c = cert_of_query q in
  let s = expect_ok c in
  Alcotest.(check string) (name ^ " model") name c.N.model;
  Alcotest.(check bool)
    (name ^ " has checked leaves") true
    (s.V.leaves >= min_leaves);
  Alcotest.(check bool) (name ^ " fully verified") true s.V.fully_verified;
  Alcotest.(check string)
    (name ^ " claim text re-derived") c.N.claim s.V.root_claim

let test_emit_lr () =
  check_model "lr" (query ~model:`Lr ()) ~min_leaves:5

let test_emit_election () =
  check_model "election" (query ~model:`Election ()) ~min_leaves:2

let test_emit_coin () =
  check_model "coin" (query ~model:`Coin ~n:2 ()) ~min_leaves:2

let test_emit_consensus () =
  check_model "consensus" (query ~model:`Consensus ()) ~min_leaves:1

(* An uncertifiable query (the adversary can block every 1-round
   decision) answers a structured header, not a certificate. *)
let test_emit_uncertified () =
  let j = Server.Service.cert_json (query ~model:`Consensus ~cap:1 ()) in
  (match J.member "verdict" j with
   | Some (J.Str "uncertified") -> ()
   | other ->
     Alcotest.failf "expected an uncertified header, got %s"
       (match other with Some v -> J.to_string v | None -> "no verdict"));
  match N.of_json j with
  | Ok _ -> Alcotest.fail "an uncertified header parsed as a certificate"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Wire round-trips and determinism. *)

let test_roundtrip_bytes () =
  let c = cert_of_query (query ~model:`Lr ()) in
  let s = N.to_string c in
  match N.of_string s with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok c' ->
    Alcotest.(check string) "byte-identical re-serialization" s
      (N.to_string c');
    ignore (expect_ok c')

let test_emission_deterministic () =
  let q = query ~model:`Coin ~n:2 () in
  Alcotest.(check string) "same query, same bytes"
    (J.to_string (Server.Service.cert_json q))
    (J.to_string (Server.Service.cert_json q))

(* ------------------------------------------------------------------ *)
(* Tamper detection. *)

(* Acceptance: flipping ANY single byte of a serialized certificate is
   detected -- either the strict parser refuses it or the verifier
   fails.  The sweep covers every byte, so there is no unhashed,
   unchecked slack anywhere in the wire format. *)
let test_tamper_every_byte () =
  let body = N.to_string (cert_of_query (query ~model:`Coin ~n:2 ())) in
  let undetected = ref [] in
  String.iteri
    (fun i c ->
       let b = Bytes.of_string body in
       Bytes.set b i (Char.chr (Char.code c lxor 1));
       match N.of_string (Bytes.to_string b) with
       | Error _ -> ()
       | Ok cert ->
         (match V.run cert with
          | Error _ -> ()
          | Ok _ -> undetected := i :: !undetected))
    body;
  Alcotest.(check (list int)) "every byte flip detected" [] !undetected

(* A tampered value field is pinned to the node that owns it. *)
let tamper_once body ~sub ~at_offset f =
  match Astring.String.find_sub ~sub body with
  | None -> Alcotest.failf "substring %S not found" sub
  | Some i ->
    let j = i + String.length sub + at_offset in
    let b = Bytes.of_string body in
    Bytes.set b j (f (Bytes.get b j));
    Bytes.to_string b

let expect_named_node what body =
  match N.of_string body with
  | Error _ -> Alcotest.failf "%s: expected a verify failure, parse failed" what
  | Ok cert ->
    (match V.run cert with
     | Ok _ -> Alcotest.failf "%s: tampered certificate verified" what
     | Error e ->
       Alcotest.(check bool)
         (what ^ " names the failing node") true
         (e.V.node <> None))

let test_tamper_named_node () =
  let body = N.to_string (cert_of_query (query ~model:`Coin ~n:2 ())) in
  (* a fingerprint byte, kept inside the hex alphabet so only the hash
     check can catch it *)
  expect_named_node "fingerprint"
    (tamper_once body ~sub:"\"fingerprint\":\"" ~at_offset:0 (fun c ->
         if c = '0' then '1' else '0'));
  (* an evidence byte *)
  expect_named_node "evidence"
    (tamper_once body ~sub:"\"evidence\":\"" ~at_offset:0 (fun _ -> 'X'));
  (* a weight: the first digit of the first node's time *)
  expect_named_node "time weight"
    (tamper_once body ~sub:"\"time\":\"" ~at_offset:0 (fun c ->
         if c = '1' then '2' else '1'))

(* ------------------------------------------------------------------ *)
(* The verifier's own rule arithmetic (independent of hashes: these
   certificates carry self-consistent hashes over wrong payloads). *)

let test_verify_good_pair () =
  let s = expect_ok (good_pair ()) in
  Alcotest.(check int) "nodes" 3 s.V.nodes;
  Alcotest.(check int) "leaves" 2 s.V.leaves;
  Alcotest.(check bool) "fully verified" true s.V.fully_verified

let test_verify_bad_sum () =
  let a = l1 () and b = l2 () in
  let c =
    assemble ~root:2
      [ a; b; compose_node ~time:(Q.of_int 4) (0, a) (1, b) ]
  in
  let e = expect_err "wrong time sum" c in
  Alcotest.(check (option int)) "pinned to the compose node" (Some 2) e.V.node

let test_verify_bad_product () =
  let a = l1 () and b = l2 () in
  let c =
    assemble ~root:2 [ a; b; compose_node ~prob:Q.half (0, a) (1, b) ]
  in
  let e = expect_err "wrong probability product" c in
  Alcotest.(check (option int)) "pinned to the compose node" (Some 2) e.V.node

let test_verify_dangling_child () =
  let a = l1 () and b = l2 () in
  (* compose refers to itself: child index not strictly below parent *)
  let c = assemble ~root:2 [ a; b; compose_node (0, a) (2, b) ] in
  let e = expect_err "dangling child" c in
  Alcotest.(check (option int)) "pinned" (Some 2) e.V.node

let test_verify_unreachable_node () =
  let a = l1 () and b = l2 () in
  let stray = leaf ~pre:"X" ~post:"Y" ~time:1 ~prob:Q.one in
  let c = assemble ~root:2 [ a; b; compose_node (0, a) (1, b); stray ] in
  let e = expect_err "unreachable node" c in
  Alcotest.(check (option int)) "names the stray" (Some 3) e.V.node

let test_verify_claim_mismatch () =
  let c = { (good_pair ()) with N.claim = "T --5-->_1/2 C  [Unit-Time]" } in
  (* the digest covers the claim, so recompute it for the lie: only the
     claim/render cross-check may catch this *)
  let c =
    { c with
      N.digest =
        N.certificate_digest ~version:1 ~model:"lr" ~claim:c.N.claim
          ~root:c.N.root
          ~node_hashes:
            (List.map (fun n -> n.N.hash) (Array.to_list c.N.nodes)) }
  in
  ignore (expect_err "claim text mismatch" c)

let test_verify_digest_mismatch () =
  let c = good_pair () in
  let c = { c with N.digest = String.make 32 '0' } in
  ignore (expect_err "digest mismatch" c)

let test_verify_trivial_rules () =
  let incl =
    { N.sub = "A"; sup = "B"; incl_evidence = "checked over 10 states";
      assumed = false }
  in
  let mk ~time ~prob =
    let unhashed =
      { N.pre = "A"; post = "B"; time; prob; node_schema = schema_name;
        closed = true; rule = N.Trivial incl; hash = "" }
    in
    { unhashed with N.hash = N.node_hash unhashed ~child_hashes:[] }
  in
  ignore (expect_ok (assemble ~root:0 [ mk ~time:Q.zero ~prob:Q.one ]));
  ignore
    (expect_err "trivial with time 1"
       (assemble ~root:0 [ mk ~time:Q.one ~prob:Q.one ]));
  ignore
    (expect_err "trivial with prob 1/2"
       (assemble ~root:0 [ mk ~time:Q.zero ~prob:Q.half ]))

let test_verify_assumed_inclusion_not_fully_verified () =
  let incl =
    { N.sub = "A"; sup = "B"; incl_evidence = ""; assumed = true }
  in
  let unhashed =
    { N.pre = "A"; post = "B"; time = Q.zero; prob = Q.one;
      node_schema = schema_name; closed = true; rule = N.Trivial incl;
      hash = "" }
  in
  let n = { unhashed with N.hash = N.node_hash unhashed ~child_hashes:[] } in
  let s = expect_ok (assemble ~root:0 [ n ]) in
  Alcotest.(check bool) "assumed => not fully verified" false
    s.V.fully_verified;
  Alcotest.(check int) "counted as an assumption" 1 s.V.axioms

(* Parse-level strictness: non-canonical rationals and unknown fields
   are rejected before the verifier even runs. *)
let test_parse_strictness () =
  let body = N.to_string (good_pair ()) in
  let bad_rational =
    Astring.String.cuts ~sep:"\"prob\":\"1/2\"" body
    |> String.concat "\"prob\":\"2/4\""
  in
  (match N.of_string bad_rational with
   | Ok _ -> Alcotest.fail "non-canonical rational accepted"
   | Error e ->
     Alcotest.(check bool) "message blames the rational" true
       (Astring.String.is_infix ~affix:"2/4" e));
  let unknown_field =
    Astring.String.cuts ~sep:"\"version\":1" body
    |> String.concat "\"version\":1,\"extra\":true"
  in
  (match N.of_string unknown_field with
   | Ok _ -> Alcotest.fail "unknown top-level field accepted"
   | Error _ -> ());
  match N.of_string (Astring.String.cuts ~sep:"\"version\":1" body
                     |> String.concat "\"version\":2") with
  | Ok _ -> Alcotest.fail "unsupported version accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Arena fingerprints. *)

let fp_lr ?g ?sym n =
  Mdp.Arena.fingerprint (LR.Proof.build ?g ?sym ~n ()).LR.Proof.arena

let test_fingerprint_deterministic () =
  Alcotest.(check string) "two independent builds agree" (fp_lr 3) (fp_lr 3);
  let under_plane p =
    Mdp.Plane.with_ambient p (fun () ->
        Mdp.Arena.fingerprint (LR.Proof.build ~n:3 ()).LR.Proof.arena)
  in
  Alcotest.(check string) "plane-independent"
    (under_plane Mdp.Plane.Exact)
    (under_plane Mdp.Plane.Interval)

let test_fingerprint_distinct () =
  let fps =
    [ ("lr n=3", fp_lr 3); ("lr n=4", fp_lr 4); ("lr n=3 g=2", fp_lr ~g:2 3);
      ( "lr n=3 sym=on",
        fp_lr ~sym:Analysis.Symmetry.On 3 );
      ( "election n=3",
        Mdp.Arena.fingerprint
          (IR.Proof.build ~n:3 ()).IR.Proof.arena ) ]
  in
  List.iteri
    (fun i (ni, fi) ->
       List.iteri
         (fun j (nj, fj) ->
            if i < j && String.equal fi fj then
              Alcotest.failf "%s and %s share fingerprint %s" ni nj fi)
         fps)
    fps

(* ------------------------------------------------------------------ *)
(* Bigint-tier rationals across the wire (numerators and denominators
   far past native-int promotion). *)

let big_q num den = Q.make (B.of_string num) (B.of_string den)

let test_bigint_wire_roundtrip () =
  let huge =
    [ big_q "123456789012345678901234567890123456789"
        "987654321098765432109876543210987654321";
      Q.pow Q.half 300;
      Q.pow (Q.of_ints 3 7) 64 ]
  in
  List.iter
    (fun v ->
       (* bare wire codec *)
       (match Q.of_wire (Q.to_wire v) with
        | Ok v' -> Alcotest.(check bool) "wire round-trip exact" true
                     (Q.equal v v')
        | Error e -> Alcotest.failf "of_wire: %s" e);
       (* through the JSON layer *)
       let s = J.to_string (J.Obj [ ("q", J.Str (Q.to_wire v)) ]) in
       match J.of_string s with
       | Error e -> Alcotest.failf "json parse: %s" e
       | Ok j ->
         (match J.member "q" j with
          | Some (J.Str w) ->
            (match Q.of_wire w with
             | Ok v' ->
               Alcotest.(check bool) "json round-trip exact" true
                 (Q.equal v v')
             | Error e -> Alcotest.failf "of_wire after json: %s" e)
          | _ -> Alcotest.fail "missing field"))
    huge

let test_bigint_certificate_roundtrip () =
  let prob = Q.pow Q.half 300 in
  let time = Q.of_bigint (B.of_string (String.make 40 '9')) in
  let unhashed =
    { N.pre = "A"; post = "B"; time; prob; node_schema = schema_name;
      closed = true;
      rule =
        N.Checked
          { evidence = "bigint tier"; fingerprint = String.make 32 'b';
            config = cfg };
      hash = "" }
  in
  let n = { unhashed with N.hash = N.node_hash unhashed ~child_hashes:[] } in
  let c = assemble ~root:0 [ n ] in
  ignore (expect_ok c);
  match N.of_string (N.to_string c) with
  | Error e -> Alcotest.failf "round-trip: %s" e
  | Ok c' ->
    ignore (expect_ok c');
    Alcotest.(check bool) "probability exact" true
      (Q.equal prob c'.N.nodes.(0).N.prob);
    Alcotest.(check bool) "time exact" true
      (Q.equal time c'.N.nodes.(0).N.time)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cert"
    [ ( "emission",
        [ Alcotest.test_case "lr emits + verifies" `Quick test_emit_lr;
          Alcotest.test_case "election emits + verifies" `Quick
            test_emit_election;
          Alcotest.test_case "coin emits + verifies" `Quick test_emit_coin;
          Alcotest.test_case "consensus emits + verifies" `Quick
            test_emit_consensus;
          Alcotest.test_case "uncertified query yields a header" `Quick
            test_emit_uncertified;
          Alcotest.test_case "round-trip is byte-identical" `Quick
            test_roundtrip_bytes;
          Alcotest.test_case "emission is deterministic" `Quick
            test_emission_deterministic ] );
      ( "tamper",
        [ Alcotest.test_case "every single-byte flip detected" `Quick
            test_tamper_every_byte;
          Alcotest.test_case "value tampers name the owning node" `Quick
            test_tamper_named_node ] );
      ( "verifier rules",
        [ Alcotest.test_case "well-formed pair verifies" `Quick
            test_verify_good_pair;
          Alcotest.test_case "wrong time sum" `Quick test_verify_bad_sum;
          Alcotest.test_case "wrong probability product" `Quick
            test_verify_bad_product;
          Alcotest.test_case "dangling child index" `Quick
            test_verify_dangling_child;
          Alcotest.test_case "unreachable node" `Quick
            test_verify_unreachable_node;
          Alcotest.test_case "claim text mismatch" `Quick
            test_verify_claim_mismatch;
          Alcotest.test_case "digest mismatch" `Quick
            test_verify_digest_mismatch;
          Alcotest.test_case "trivial-claim side conditions" `Quick
            test_verify_trivial_rules;
          Alcotest.test_case "assumed inclusion counts as axiom" `Quick
            test_verify_assumed_inclusion_not_fully_verified;
          Alcotest.test_case "strict parsing" `Quick test_parse_strictness ] );
      ( "fingerprints",
        [ Alcotest.test_case "deterministic across builds and planes" `Quick
            test_fingerprint_deterministic;
          Alcotest.test_case "distinct across configurations" `Quick
            test_fingerprint_distinct ] );
      ( "bigint wire",
        [ Alcotest.test_case "rationals round-trip exactly" `Quick
            test_bigint_wire_roundtrip;
          Alcotest.test_case "certificate carries bigint weights" `Quick
            test_bigint_certificate_roundtrip ] ) ]
