(* End-to-end tests for the verification service: a real daemon on a
   real socket (port 0), exercised through the load harness's client.

   The two load-bearing assertions from the acceptance criteria:
   served /check bodies are byte-identical to [prtb check --format
   json] for all four case studies, and a repeated query is answered
   from the result cache -- the [X-Prtb-Cache] header flips to [hit]
   and the /stats registry counters (explorations, compiles) stay
   exactly put. *)

module J = Analysis.Json
module D = Server.Daemon
module L = Server.Load

(* One shared daemon for the happy-path tests; tiny worker count, the
   CI container has one core. *)
let daemon =
  lazy
    (D.start
       { D.default_config with
         D.port = 0; domains = 3; cache_mb = 32; accept_queue = 8 })

let url target =
  { L.host = "127.0.0.1"; port = D.port (Lazy.force daemon); target }

let get ?meth ?body target =
  let conn = L.Conn.create (url target) in
  Fun.protect
    ~finally:(fun () -> L.Conn.close conn)
    (fun () ->
       match L.Conn.request conn ?meth ?body target with
       | Ok r -> r
       | Error e -> Alcotest.failf "GET %s: %s" target e)

let member_exn path json =
  List.fold_left
    (fun j k ->
       match J.member k j with
       | Some v -> v
       | None -> Alcotest.failf "missing %S in %s" k (J.to_string json))
    json path

let int_at path json =
  match member_exn path json with
  | J.Int i -> i
  | other -> Alcotest.failf "not an int: %s" (J.to_string other)

let str_at path json =
  match member_exn path json with
  | J.Str s -> s
  | other -> Alcotest.failf "not a string: %s" (J.to_string other)

let parse_body (r : Server.Http.response_msg) =
  match J.of_string r.Server.Http.resp_body with
  | Ok j -> j
  | Error e ->
    Alcotest.failf "unparsable body %S: %s" r.Server.Http.resp_body e

(* Resolve the CLI next to this test binary, so the comparison works
   from any cwd (dune runtest and dune exec differ). *)
let prtb_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "prtb.exe"))

let cli args =
  let cmd = Filename.quote prtb_exe ^ " " ^ args in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Buffer.contents buf
  | _ -> Alcotest.failf "%s failed" cmd

(* ------------------------------------------------------------------ *)

(* At rest the body is a fixed string: nothing in flight, so the
   supervision fields are zero.  ("status" stays the first field; the
   CI smoke greps for the '"status":"ok"' prefix.) *)
let test_health () =
  let r = get "/health" in
  Alcotest.(check int) "200" 200 r.Server.Http.status;
  Alcotest.(check string) "body"
    "{\"status\":\"ok\",\"in_flight\":0,\"oldest_ms\":0}"
    r.Server.Http.resp_body

(* Acceptance: the served body and the CLI's --format json output are
   bit-identical (the CLI appends one newline to the same bytes). *)
let test_check_matches_cli () =
  List.iter
    (fun (target, args) ->
       let served = (get target).Server.Http.resp_body in
       let printed = cli ("check --format json " ^ args) in
       Alcotest.(check string)
         (Printf.sprintf "%s == prtb check %s" target args)
         printed (served ^ "\n"))
    [ ("/check?model=lr&n=3", "lr");
      ("/check?model=lr&n=3&topology=line", "lr --topology line");
      ("/check?model=election&n=3", "election");
      ("/check?model=coin&n=2&bound=2", "coin -n 2 --bound 2");
      ("/check?model=consensus&n=3&cap=2", "consensus") ]

(* Acceptance: the repeat is served from the result cache -- hit
   header, identical body, and the registry did no new exploration or
   arena compilation. *)
let test_repeat_hits_cache () =
  let target = "/check?model=coin&n=2&bound=3" in
  let first = get target in
  Alcotest.(check (option string)) "first is a miss" (Some "miss")
    (Server.Http.resp_header first "x-prtb-cache");
  let stats1 = parse_body (get "/stats") in
  let second = get target in
  Alcotest.(check (option string)) "second is a hit" (Some "hit")
    (Server.Http.resp_header second "x-prtb-cache");
  Alcotest.(check string) "same bytes" first.Server.Http.resp_body
    second.Server.Http.resp_body;
  let stats2 = parse_body (get "/stats") in
  List.iter
    (fun counter ->
       Alcotest.(check int)
         (counter ^ " unchanged by the cached reply")
         (int_at [ "registry"; counter ] stats1)
         (int_at [ "registry"; counter ] stats2))
    [ "explorations"; "compiles"; "builds" ];
  Alcotest.(check bool) "result-cache hits grew" true
    (int_at [ "results_cache"; "hits" ] stats2
     > int_at [ "results_cache"; "hits" ] stats1)

(* GET query pairs and a POST JSON body canonicalize to the same key,
   so the POST form hits the GET form's cache entry. *)
let test_post_and_get_share_cache () =
  let seed = get "/check?model=election&n=2" in
  let posted =
    get ~meth:"POST" ~body:"{\"model\":\"election\",\"n\":2}" "/check"
  in
  Alcotest.(check (option string)) "post hits get's entry" (Some "hit")
    (Server.Http.resp_header posted "x-prtb-cache");
  Alcotest.(check string) "same bytes" seed.Server.Http.resp_body
    posted.Server.Http.resp_body

(* [sym] is a cache dimension with a canonical default: omitting it and
   spelling [sym=off] share one entry, [sym=on] occupies another -- and
   the two entries hold byte-identical bodies (the orbit quotient is
   invisible in the answer, including the reported state count).  A
   client [max_states] beyond the server's ceiling clamps into the
   default entry too. *)
let test_sym_cache_dimension () =
  let base = "/check?model=consensus&n=3&cap=1" in
  let plain = get base in
  Alcotest.(check (option string)) "first query misses" (Some "miss")
    (Server.Http.resp_header plain "x-prtb-cache");
  let off = get (base ^ "&sym=off") in
  Alcotest.(check (option string)) "explicit sym=off hits the default"
    (Some "hit")
    (Server.Http.resp_header off "x-prtb-cache");
  let on = get (base ^ "&sym=on") in
  Alcotest.(check (option string)) "sym=on is a distinct key" (Some "miss")
    (Server.Http.resp_header on "x-prtb-cache");
  Alcotest.(check string) "sym=on body == sym=off body"
    off.Server.Http.resp_body on.Server.Http.resp_body;
  let clamped = get (base ^ "&max_states=999999999") in
  Alcotest.(check (option string)) "over-ceiling max_states clamps in"
    (Some "hit")
    (Server.Http.resp_header clamped "x-prtb-cache")

(* [plane] is a cache dimension with a canonical default, exactly like
   [sym]: omitting it and spelling [plane=interval] share one entry,
   [plane=exact] occupies another -- and the two /check entries hold
   byte-identical bodies (the plane never changes a verdict). *)
let test_plane_cache_dimension () =
  let base = "/check?model=coin&n=2&bound=4" in
  let plain = get base in
  Alcotest.(check (option string)) "first query misses" (Some "miss")
    (Server.Http.resp_header plain "x-prtb-cache");
  let interval = get (base ^ "&plane=interval") in
  Alcotest.(check (option string))
    "explicit plane=interval hits the default" (Some "hit")
    (Server.Http.resp_header interval "x-prtb-cache");
  let exact = get (base ^ "&plane=exact") in
  Alcotest.(check (option string)) "plane=exact is a distinct key"
    (Some "miss")
    (Server.Http.resp_header exact "x-prtb-cache");
  Alcotest.(check string) "plane=exact body == plane=interval body"
    interval.Server.Http.resp_body exact.Server.Http.resp_body;
  (* and the CLI prints the same bytes for the same plane *)
  let printed = cli "check --format json coin -n 2 --bound 4 --plane exact" in
  Alcotest.(check string) "served == prtb check --plane exact" printed
    (exact.Server.Http.resp_body ^ "\n")

(* Acceptance: served /cert bodies are bit-identical to [prtb check
   --emit-cert], the body is a well-formed certificate the independent
   verifier accepts, repeats answer from the cache -- and the exact
   plane is a distinct entry whose body differs (each leaf's recorded
   configuration names its plane). *)
let test_cert_matches_cli () =
  let served = get "/cert?model=coin&n=2&bound=2" in
  Alcotest.(check int) "200" 200 served.Server.Http.status;
  let printed = cli "check --emit-cert coin -n 2 --bound 2" in
  Alcotest.(check string) "/cert == prtb check --emit-cert" printed
    (served.Server.Http.resp_body ^ "\n");
  (match Cert.Node.of_string served.Server.Http.resp_body with
   | Error e -> Alcotest.failf "served body is not a certificate: %s" e
   | Ok cert ->
     (match Cert.Verify.run cert with
      | Ok s ->
        Alcotest.(check bool) "fully verified" true
          s.Cert.Verify.fully_verified
      | Error e ->
        Alcotest.failf "served certificate rejected: %s"
          (Cert.Verify.error_to_string e)));
  let repeat = get "/cert?model=coin&n=2&bound=2" in
  Alcotest.(check (option string)) "repeat hits the cache" (Some "hit")
    (Server.Http.resp_header repeat "x-prtb-cache");
  let exact = get "/cert?model=coin&n=2&bound=2&plane=exact" in
  Alcotest.(check (option string)) "exact plane is a distinct entry"
    (Some "miss")
    (Server.Http.resp_header exact "x-prtb-cache");
  Alcotest.(check bool) "cert bodies differ across planes" false
    (String.equal served.Server.Http.resp_body exact.Server.Http.resp_body)

let test_simulate_deterministic () =
  let target = "/simulate?model=election&n=3&trials=200&seed=7" in
  let a = get target in
  Alcotest.(check int) "200" 200 a.Server.Http.status;
  let b = get target in
  Alcotest.(check (option string)) "cached" (Some "hit")
    (Server.Http.resp_header b "x-prtb-cache");
  Alcotest.(check string) "seeded runs agree" a.Server.Http.resp_body
    b.Server.Http.resp_body

let test_lint_served () =
  let r = get "/lint?target=example:race" in
  Alcotest.(check int) "200" 200 r.Server.Http.status;
  let j = parse_body r in
  Alcotest.(check string) "target" "example:race" (str_at [ "target" ] j);
  Alcotest.(check int) "no errors" 0
    (int_at [ "report"; "summary"; "errors" ] j)

let test_budget_exhausted_verdict () =
  let r = get "/check?model=lr&n=3&max_states=50" in
  Alcotest.(check int) "still a 200" 200 r.Server.Http.status;
  let j = parse_body r in
  Alcotest.(check string) "verdict" "exhausted" (str_at [ "verdict" ] j);
  Alcotest.(check string) "code" "SRV120" (str_at [ "code" ] j)

(* Acceptance: a deadlined request is answered 200 with the degraded
   SRV122 body -- a deterministic function of the query, so the same
   request twice yields the same bytes, and neither reply is cached
   (a degraded answer must never shadow the exact one). *)
let test_deadline_degraded_deterministic () =
  let target = "/check?model=election&n=4&deadline_ms=1" in
  let a = get target in
  Alcotest.(check int) "still a 200" 200 a.Server.Http.status;
  let j = parse_body a in
  Alcotest.(check string) "verdict" "deadline-exceeded"
    (str_at [ "verdict" ] j);
  Alcotest.(check string) "code" "SRV122" (str_at [ "code" ] j);
  Alcotest.(check int) "echoes the deadline" 1 (int_at [ "deadline_ms" ] j);
  Alcotest.(check string) "estimate rung present" "monte-carlo"
    (str_at [ "estimate"; "kind" ] j);
  Alcotest.(check bool) "at least one trial" true
    (int_at [ "estimate"; "trials" ] j >= 1);
  Alcotest.(check (option string)) "degraded marker"
    (Some "SRV122")
    (Server.Http.resp_header a "x-prtb-degraded");
  let b = get target in
  Alcotest.(check string) "byte-identical on repeat"
    a.Server.Http.resp_body b.Server.Http.resp_body;
  Alcotest.(check (option string)) "degraded bodies are never cached"
    (Some "miss")
    (Server.Http.resp_header b "x-prtb-cache");
  (* and the CLI prints the same bytes for the same query *)
  let printed = cli "check election -n 4 --deadline 1ms --format json" in
  Alcotest.(check string) "served == prtb check --deadline"
    printed
    (a.Server.Http.resp_body ^ "\n")

(* A cached complete body trivially meets any deadline: deadline_ms is
   not part of the cache key, so a warmed query answers the exact body
   from cache even when the deadline could never be met live. *)
let test_deadline_cached_body_wins () =
  let warm = get "/check?model=coin&n=2&bound=2" in
  let hit = get "/check?model=coin&n=2&bound=2&deadline_ms=1" in
  Alcotest.(check (option string)) "cache hit despite deadline"
    (Some "hit")
    (Server.Http.resp_header hit "x-prtb-cache");
  Alcotest.(check string) "exact body, not SRV122"
    warm.Server.Http.resp_body hit.Server.Http.resp_body

let test_structured_errors () =
  List.iter
    (fun (target, status, code) ->
       let r = get target in
       Alcotest.(check int) (target ^ " status") status
         r.Server.Http.status;
       let j = parse_body r in
       Alcotest.(check string) (target ^ " code") code
         (str_at [ "error"; "code" ] j))
    [ ("/nope", 404, "SRV100");
      ("/check?model=quantum", 404, "SRV104");
      ("/check?model=lr&n=zero", 400, "SRV103");
      ("/check?model=lr&n=-2", 400, "SRV103");
      ("/check?model=coin&topology=line", 400, "SRV103");
      ("/simulate?model=coin&scheduler=eager", 400, "SRV103");
      ("/lint?target=unknown", 404, "SRV104");
      ("/health?sleep_ms=90000", 400, "SRV103") ];
  let r = get ~meth:"POST" ~body:"{not json" "/check" in
  Alcotest.(check int) "malformed body status" 400 r.Server.Http.status;
  let j = parse_body r in
  Alcotest.(check string) "malformed body code" "SRV102"
    (str_at [ "error"; "code" ] j)

(* A raw garbage request gets a clean 400 and a close, and the daemon
   keeps serving afterwards. *)
let test_garbage_request_line () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect fd
         (Unix.ADDR_INET
            (Unix.inet_addr_loopback, D.port (Lazy.force daemon)));
       let garbage = "\x00\x01GARBAGE\r\n\r\n" in
       ignore (Unix.write_substring fd garbage 0 (String.length garbage));
       let buf = Bytes.create 4096 in
       let n = Unix.read fd buf 0 4096 in
       let answer = Bytes.sub_string buf 0 n in
       Alcotest.(check bool) "answered 400" true
         (Astring.String.is_prefix ~affix:"HTTP/1.1 400" answer);
       Alcotest.(check bool) "SRV110 body" true
         (Astring.String.is_infix ~affix:"SRV110" answer));
  test_health ()

(* ------------------------------------------------------------------ *)
(* Chaos: the seeded adversarial client against the shared daemon. *)

module C = Server.Chaos

let chaos_url target = url target

let check_outcome name (o : C.outcome) =
  Alcotest.(check (list string)) (name ^ ": no failures") [] o.C.failures;
  Alcotest.(check int) (name ^ ": ledger reconciles") o.C.attempts
    (o.C.answered + o.C.rejected + o.C.dropped)

(* A request trickled one byte at a time is still answered 200. *)
let test_chaos_trickle () =
  check_outcome "trickle"
    (C.run_scenario ~rounds:2 ~seed:42 (chaos_url "/") C.Trickle);
  test_health ()

(* A POST abandoned mid-body is answered 4xx or cleanly dropped --
   never a 2xx, never a crash -- and the daemon keeps serving. *)
let test_chaos_midbody_close () =
  check_outcome "midbody-close"
    (C.run_scenario ~rounds:3 ~seed:42 (chaos_url "/") C.Midbody_close);
  test_health ()

(* Garbage and valid traffic interleaved from concurrent domains: the
   valid answers must be byte-identical, as if the garbage next door
   did not exist. *)
let test_chaos_mixed_valid_unharmed () =
  check_outcome "mixed"
    (C.run_scenario ~rounds:3 ~clients:4 ~seed:42
       (chaos_url "/check?model=lr&n=2") C.Mixed);
  test_health ()

(* An idle keep-alive connection parked past the connection deadline is
   dropped (the read timeout shrinks to the remaining allowance), and a
   fresh connection is served immediately afterwards.  Dedicated daemon
   with sub-second limits so the test stays quick. *)
let test_idle_keepalive_past_conn_deadline () =
  let d =
    D.start
      { D.default_config with
        D.port = 0; domains = 2; cache_mb = 8;
        read_timeout = 0.3; conn_deadline = 0.5 }
  in
  Fun.protect
    ~finally:(fun () ->
      D.stop d;
      D.wait d)
    (fun () ->
       let u = { L.host = "127.0.0.1"; port = D.port d; target = "/" } in
       let o =
         C.run_scenario ~rounds:2 ~idle_s:0.8 ~seed:42 u C.Idle_keepalive
       in
       Alcotest.(check (list string)) "no failures" [] o.C.failures;
       (* each round: the pre-idle request answered, the post-idle one
          dropped by the expired connection deadline *)
       Alcotest.(check int) "pre-idle answered" 2 o.C.answered;
       Alcotest.(check int) "post-idle dropped" 2 o.C.dropped;
       let conn = L.Conn.create u in
       (match L.Conn.request conn "/health" with
        | Ok r ->
          Alcotest.(check int) "fresh connection served" 200
            r.Server.Http.status
        | Error e -> Alcotest.failf "daemon wedged after idle abuse: %s" e);
       L.Conn.close conn)

(* Every 503 carries Retry-After.  One worker is pinned by a slow
   probe; with a zero-length accept queue the concurrent probe must be
   rejected -- and the rejection names the backoff. *)
let test_retry_after_on_503 () =
  let d =
    D.start
      { D.default_config with
        D.port = 0; domains = 2; accept_queue = 0; cache_mb = 8 }
  in
  Fun.protect
    ~finally:(fun () ->
      D.stop d;
      D.wait d)
    (fun () ->
       let u target = { L.host = "127.0.0.1"; port = D.port d; target } in
       (* Two sleepers: one occupies the single worker, the second sits
          in the pool's queue, so the probe below arrives with pending
          work beyond the zero-length accept queue.  Staggered, so the
          first is already executing (pending back to 0) when the
          second is accepted. *)
       let sleeper () =
         Domain.spawn (fun () ->
             let conn = L.Conn.create (u "/health?sleep_ms=600") in
             let r = L.Conn.request conn "/health?sleep_ms=600" in
             L.Conn.close conn;
             r)
       in
       let first = sleeper () in
       Unix.sleepf 0.15;
       let second = sleeper () in
       let pinned = [ first; second ] in
       Unix.sleepf 0.15;
       let rec probe tries =
         let conn = L.Conn.create (u "/health") in
         let r = L.Conn.request conn "/health" in
         L.Conn.close conn;
         match r with
         | Ok r when r.Server.Http.status = 503 -> r
         | Ok _ when tries > 0 ->
           Unix.sleepf 0.05;
           probe (tries - 1)
         | Ok r ->
           Alcotest.failf "never rejected (last status %d)"
             r.Server.Http.status
         | Error e -> Alcotest.failf "probe failed: %s" e
       in
       let rejected = probe 5 in
       Alcotest.(check (option string)) "Retry-After present" (Some "1")
         (Server.Http.resp_header rejected "retry-after");
       List.iter
         (fun p ->
            match Domain.join p with
            | Ok r ->
              Alcotest.(check int) "pinned request completed" 200
                r.Server.Http.status
            | Error e -> Alcotest.failf "pinned request failed: %s" e)
         pinned)

(* Acceptance: >= 8 concurrent keep-alive clients, zero protocol
   errors. *)
let test_loadtest_smoke () =
  let r = L.run (url "/health") ~clients:8 ~requests:96 in
  Alcotest.(check int) "no protocol errors" 0 r.L.protocol_errors;
  Alcotest.(check int) "no rejections at this load" 0 r.L.rejected;
  Alcotest.(check int) "all ok" 96 r.L.ok

(* Acceptance: overload answers 503 instead of hanging.  A dedicated
   daemon with one worker and a zero-length accept queue, stalled by
   sleeping health probes, must reject the excess load and then
   recover. *)
let test_overload_returns_503 () =
  let d =
    D.start
      { D.default_config with
        D.port = 0; domains = 2; accept_queue = 0; cache_mb = 8 }
  in
  Fun.protect
    ~finally:(fun () ->
      D.stop d;
      D.wait d)
    (fun () ->
       let u = { L.host = "127.0.0.1"; port = D.port d;
                 target = "/health?sleep_ms=700" } in
       let r = L.run u ~clients:6 ~requests:6 in
       Alcotest.(check int) "no protocol errors" 0 r.L.protocol_errors;
       Alcotest.(check bool) "some requests rejected" true
         (r.L.rejected > 0);
       Alcotest.(check bool) "some requests served" true (r.L.ok > 0);
       (* and the daemon recovered *)
       let conn =
         L.Conn.create { L.host = "127.0.0.1"; port = D.port d;
                         target = "/health" }
       in
       (match L.Conn.request conn "/health" with
        | Ok resp ->
          Alcotest.(check int) "alive after overload" 200
            resp.Server.Http.status
        | Error e -> Alcotest.failf "daemon wedged after overload: %s" e);
       L.Conn.close conn)

(* stop + wait returns: accepted work drains and the domains join.
   (CI additionally asserts the process-level SIGTERM path exits 0.) *)
let test_graceful_stop () =
  let d =
    D.start { D.default_config with D.port = 0; domains = 2; cache_mb = 8 }
  in
  let conn =
    L.Conn.create { L.host = "127.0.0.1"; port = D.port d; target = "/" }
  in
  (match L.Conn.request conn "/health" with
   | Ok r -> Alcotest.(check int) "served" 200 r.Server.Http.status
   | Error e -> Alcotest.fail e);
  L.Conn.close conn;
  D.stop d;
  D.wait d;
  Alcotest.(check bool) "drained" true true

let test_parse_url () =
  (match L.parse_url "http://127.0.0.1:8080/check?model=lr" with
   | Ok u ->
     Alcotest.(check string) "host" "127.0.0.1" u.L.host;
     Alcotest.(check int) "port" 8080 u.L.port;
     Alcotest.(check string) "target" "/check?model=lr" u.L.target
   | Error e -> Alcotest.fail e);
  (match L.parse_url "localhost:99/x" with
   | Ok u ->
     Alcotest.(check string) "bare host" "localhost" u.L.host;
     Alcotest.(check int) "bare port" 99 u.L.port
   | Error e -> Alcotest.fail e);
  (match L.parse_url "https://x/" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "https should be rejected");
  match L.parse_url "http://:80/" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty host should be rejected"

(* ------------------------------------------------------------------ *)
(* /batch *)

(* Acceptance: element bodies inside the batch envelope are the
   single-query endpoints' bytes, spliced verbatim -- never reparsed
   or reserialized. *)
let test_batch_byte_identity () =
  let single = (get "/check?model=lr&n=3").Server.Http.resp_body in
  let cert = (get "/cert?model=lr&n=3").Server.Http.resp_body in
  let r =
    get ~meth:"POST"
      ~body:
        "{\"queries\":[{\"endpoint\":\"/check\",\"model\":\"lr\",\"n\":3},\
         {\"endpoint\":\"/cert\",\"model\":\"lr\",\"n\":3}]}"
      "/batch"
  in
  Alcotest.(check int) "200" 200 r.Server.Http.status;
  let body = r.Server.Http.resp_body in
  let env = parse_body r in
  Alcotest.(check string) "schema" "prtb-batch/1" (str_at [ "schema" ] env);
  Alcotest.(check int) "count" 2 (int_at [ "count" ] env);
  List.iter
    (fun sub ->
       Alcotest.(check bool) "single-query bytes spliced verbatim" true
         (Astring.String.is_infix ~affix:("\"body\":" ^ sub ^ "}") body))
    [ single; cert ]

(* Equal canonical keys inside one batch are computed once (the second
   element reuses the first's reply, cache flag included), the batch
   seeds the same result-cache entries the single endpoints use, and a
   repeated batch is answered entirely from cache with the registry
   counters exactly put. *)
let test_batch_dedup_and_cache () =
  let body =
    "{\"queries\":[{\"model\":\"coin\",\"n\":2,\"bound\":5},\
     {\"model\":\"coin\",\"n\":2,\"bound\":5}]}"
  in
  let results env =
    match member_exn [ "results" ] env with
    | J.Arr items -> items
    | other -> Alcotest.failf "results not an array: %s" (J.to_string other)
  in
  let first = results (parse_body (get ~meth:"POST" ~body "/batch")) in
  Alcotest.(check (list string))
    "one computation, reply reused for the duplicate key"
    [ "miss"; "miss" ]
    (List.map (str_at [ "cache" ]) first);
  let stats1 = parse_body (get "/stats") in
  let second = results (parse_body (get ~meth:"POST" ~body "/batch")) in
  Alcotest.(check (list string))
    "repeated batch is all cache hits" [ "hit"; "hit" ]
    (List.map (str_at [ "cache" ]) second);
  let stats2 = parse_body (get "/stats") in
  List.iter
    (fun counter ->
       Alcotest.(check int)
         (counter ^ " unchanged by the cached batch")
         (int_at [ "registry"; counter ] stats1)
         (int_at [ "registry"; counter ] stats2))
    [ "explorations"; "compiles"; "builds" ];
  (* The single-query endpoint now hits the batch-seeded entry, with
     the same bytes the envelope spliced. *)
  let single = get "/check?model=coin&n=2&bound=5" in
  Alcotest.(check (option string)) "single GET hits the batch's entry"
    (Some "hit")
    (Server.Http.resp_header single "x-prtb-cache");
  Alcotest.(check bool) "batch spliced the single GET's bytes" true
    (List.for_all
       (fun el ->
          J.to_string (member_exn [ "body" ] el)
          = J.to_string
              (parse_body single))
       second)

let test_batch_errors () =
  let code r = str_at [ "error"; "code" ] (parse_body r) in
  let message r = str_at [ "error"; "message" ] (parse_body r) in
  let posted body = get ~meth:"POST" ~body "/batch" in
  let r = get "/batch" in
  Alcotest.(check int) "GET /batch is 405" 405 r.Server.Http.status;
  Alcotest.(check string) "GET /batch is SRV101" "SRV101" (code r);
  let r = posted "{\"queries\":[]}" in
  Alcotest.(check int) "empty batch is 400" 400 r.Server.Http.status;
  Alcotest.(check string) "empty batch is SRV103" "SRV103" (code r);
  let r = posted "{\"queries\":[{\"endpoint\":\"/stats\"}]}" in
  Alcotest.(check int) "non-batchable endpoint is 400" 400
    r.Server.Http.status;
  Alcotest.(check bool) "element errors name their index" true
    (Astring.String.is_prefix ~affix:"query 0:" (message r));
  let r = posted "{\"queries\":[42]}" in
  Alcotest.(check bool) "non-object element names its index" true
    (Astring.String.is_prefix ~affix:"query 0:" (message r));
  let oversize =
    "{\"queries\":["
    ^ String.concat ","
        (List.init 65 (fun _ -> "{\"model\":\"lr\",\"n\":2}"))
    ^ "]}"
  in
  let r = posted oversize in
  Alcotest.(check int) "oversize batch is 400" 400 r.Server.Http.status;
  Alcotest.(check bool) "oversize batch names the cap" true
    (Astring.String.is_infix ~affix:"64" (message r))

let shutdown_shared_daemon () =
  if Lazy.is_val daemon then begin
    let d = Lazy.force daemon in
    D.stop d;
    D.wait d
  end;
  Alcotest.(check bool) "shared daemon drained" true true

let () =
  Alcotest.run "server"
    [ ( "end to end",
        [ Alcotest.test_case "health" `Quick test_health;
          Alcotest.test_case "served check == CLI json" `Quick
            test_check_matches_cli;
          Alcotest.test_case "repeat hits cache, registry idle" `Quick
            test_repeat_hits_cache;
          Alcotest.test_case "POST shares GET's cache entry" `Quick
            test_post_and_get_share_cache;
          Alcotest.test_case "sym: distinct keys, identical bodies" `Quick
            test_sym_cache_dimension;
          Alcotest.test_case "plane: distinct keys, identical bodies" `Quick
            test_plane_cache_dimension;
          Alcotest.test_case "served cert == CLI --emit-cert" `Quick
            test_cert_matches_cli;
          Alcotest.test_case "simulate deterministic + cached" `Quick
            test_simulate_deterministic;
          Alcotest.test_case "lint served" `Quick test_lint_served;
          Alcotest.test_case "budget exhaustion verdict" `Quick
            test_budget_exhausted_verdict;
          Alcotest.test_case "deadline: SRV122 deterministic" `Quick
            test_deadline_degraded_deterministic;
          Alcotest.test_case "deadline: cached body wins" `Quick
            test_deadline_cached_body_wins;
          Alcotest.test_case "batch: byte-identical to singles" `Quick
            test_batch_byte_identity;
          Alcotest.test_case "batch: dedup + cache interaction" `Quick
            test_batch_dedup_and_cache;
          Alcotest.test_case "batch: structured errors" `Quick
            test_batch_errors ] );
      ( "hostile input",
        [ Alcotest.test_case "structured errors" `Quick
            test_structured_errors;
          Alcotest.test_case "garbage request line" `Quick
            test_garbage_request_line;
          Alcotest.test_case "chaos: trickled request" `Quick
            test_chaos_trickle;
          Alcotest.test_case "chaos: close mid-body" `Quick
            test_chaos_midbody_close;
          Alcotest.test_case "chaos: mixed valid+garbage" `Quick
            test_chaos_mixed_valid_unharmed;
          Alcotest.test_case "idle keep-alive past conn deadline" `Quick
            test_idle_keepalive_past_conn_deadline;
          Alcotest.test_case "Retry-After on 503" `Quick
            test_retry_after_on_503 ] );
      ( "load",
        [ Alcotest.test_case "loadtest smoke (8 clients)" `Quick
            test_loadtest_smoke;
          Alcotest.test_case "overload answers 503" `Quick
            test_overload_returns_503;
          Alcotest.test_case "graceful stop" `Quick test_graceful_stop;
          Alcotest.test_case "parse_url" `Quick test_parse_url;
          Alcotest.test_case "shared daemon drains" `Quick
            shutdown_shared_daemon ] ) ]
