(* Differential tests for the compiled arena: every engine result must
   be identical -- structurally equal rationals, bit-identical floats
   -- to the pre-refactor path that walked [Explore.step] records with
   an [~is_tick] closure.  The [Legacy] module below is that path,
   copied verbatim from the tree as it stood before the arena landed,
   so any divergence introduced by the CSR compilation or by the
   engines' new inner loops fails here first. *)

module Q = Proba.Rational
module P = Parallel.Pool
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or

let with_pool domains f =
  let pool = P.create ~domains in
  Fun.protect ~finally:(fun () -> P.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* The pre-refactor engines (reference implementations) *)

module Legacy = struct
  module Explore = Mdp.Explore

  exception No_convergence of string

  module type NUM = sig
    type t

    val zero : t
    val one : t
    val of_rational : Q.t -> t
    val add : t -> t -> t
    val scale : t -> t -> t
    val equal : t -> t -> bool
    val min : t -> t -> t
    val max : t -> t -> t
  end

  module Num_rational : NUM with type t = Q.t = struct
    type t = Q.t

    let zero = Q.zero
    let one = Q.one
    let of_rational q = q
    let add = Q.add
    let scale = Q.mul
    let equal = Q.equal
    let min = Q.min
    let max = Q.max
  end

  module Num_dyadic : NUM with type t = Proba.Dyadic.t = struct
    type t = Proba.Dyadic.t

    let zero = Proba.Dyadic.zero
    let one = Proba.Dyadic.one
    let of_rational = Proba.Dyadic.of_rational
    let add = Proba.Dyadic.add
    let scale = Proba.Dyadic.mul
    let equal = Proba.Dyadic.equal
    let min = Proba.Dyadic.min
    let max = Proba.Dyadic.max
  end

  module Num_float : NUM with type t = float = struct
    type t = float

    let zero = 0.0
    let one = 1.0
    let of_rational = Q.to_float
    let add = ( +. )
    let scale = ( *. )
    let equal a b = Float.equal a b
    let min = Float.min
    let max = Float.max
  end

  module Engine (N : NUM) = struct
    type compact = {
      n : int;
      target : bool array;
      steps : (bool * (int * N.t) array) array array;
    }

    let pfor pool ~n f =
      match pool with
      | Some p -> P.parallel_for p ~n f
      | None ->
        for i = 0 to n - 1 do
          f i
        done

    let compact ?pool expl ~is_tick ~target =
      let n = Explore.num_states expl in
      if Array.length target <> n then
        invalid_arg "Finite_horizon: target array has wrong length";
      let steps = Array.make n [||] in
      pfor pool ~n (fun i ->
          steps.(i) <-
            Array.map
              (fun s ->
                 ( is_tick s.Explore.action,
                   Array.map
                     (fun (j, w) -> (j, N.of_rational w))
                     s.Explore.outcomes ))
              (Explore.steps expl i));
      { n; target; steps }

    let expectation v outcomes =
      Array.fold_left
        (fun acc (j, w) -> N.add acc (N.scale w v.(j)))
        N.zero outcomes

    let no_convergence max_sweeps =
      raise
        (No_convergence
           (Printf.sprintf "tick layer did not close after %d sweeps"
              max_sweeps))

    let layer_seq c ~best ~init v_next =
      let tick_exp =
        Array.map
          (Array.map (fun (tick, outcomes) ->
               if tick then Some (expectation v_next outcomes) else None))
          c.steps
      in
      let v = Array.init c.n init in
      let sweep () =
        let changed = ref false in
        for s = 0 to c.n - 1 do
          if not c.target.(s) then begin
            let stps = c.steps.(s) in
            if Array.length stps > 0 then begin
              let value = ref None in
              Array.iteri
                (fun k (_tick, outcomes) ->
                   let candidate =
                     match tick_exp.(s).(k) with
                     | Some e -> e
                     | None -> expectation v outcomes
                   in
                   match !value with
                   | None -> value := Some candidate
                   | Some cur -> value := Some (best cur candidate))
                stps;
              match !value with
              | None -> ()
              | Some fresh ->
                if not (N.equal fresh v.(s)) then begin
                  v.(s) <- fresh;
                  changed := true
                end
            end
          end
        done;
        !changed
      in
      let max_sweeps = c.n + 2 in
      let rec go k =
        if k > max_sweeps then no_convergence max_sweeps
        else if sweep () then go (k + 1)
      in
      go 0;
      v

    let layer_par pool c ~best ~init v_next =
      let tick_exp = Array.make c.n [||] in
      P.parallel_for pool ~n:c.n (fun s ->
          tick_exp.(s) <-
            Array.map
              (fun (tick, outcomes) ->
                 if tick then Some (expectation v_next outcomes) else None)
              c.steps.(s));
      let cur = ref (Array.init c.n init) in
      let nxt = ref (Array.make c.n N.zero) in
      let sweep () =
        let cur = !cur and nxt = !nxt in
        P.map_reduce pool ~n:c.n ~init:false ~combine:( || ) (fun s ->
            if c.target.(s) || Array.length c.steps.(s) = 0 then begin
              nxt.(s) <- cur.(s);
              false
            end
            else begin
              let value = ref None in
              Array.iteri
                (fun k (_tick, outcomes) ->
                   let candidate =
                     match tick_exp.(s).(k) with
                     | Some e -> e
                     | None -> expectation cur outcomes
                   in
                   match !value with
                   | None -> value := Some candidate
                   | Some acc -> value := Some (best acc candidate))
                c.steps.(s);
              let fresh = Option.get !value in
              nxt.(s) <- fresh;
              not (N.equal fresh cur.(s))
            end)
      in
      let max_sweeps = c.n + 2 in
      let rec go k =
        if k > max_sweeps then no_convergence max_sweeps
        else if sweep () then begin
          let t = !cur in
          cur := !nxt;
          nxt := t;
          go (k + 1)
        end
      in
      go 0;
      !cur

    let layer pool c ~best ~init v_next =
      match pool with
      | Some p -> layer_par p c ~best ~init v_next
      | None -> layer_seq c ~best ~init v_next

    let min_init c s =
      if c.target.(s) then N.one
      else if Array.length c.steps.(s) = 0 then N.zero
      else N.one

    let max_init c s = if c.target.(s) then N.one else N.zero

    let run ?pool expl ~is_tick ~target ~ticks ~best ~init =
      if ticks < 0 then invalid_arg "Finite_horizon: negative tick horizon";
      let c = compact ?pool expl ~is_tick ~target in
      let v = ref (Array.make c.n N.zero) in
      for _t = 0 to ticks do
        v := layer pool c ~best ~init:(init c) !v
      done;
      !v

    let min_reach ?pool expl ~is_tick ~target ~ticks =
      run ?pool expl ~is_tick ~target ~ticks ~best:N.min ~init:min_init

    let max_reach ?pool expl ~is_tick ~target ~ticks =
      run ?pool expl ~is_tick ~target ~ticks ~best:N.max ~init:max_init

    let argbest c ~best v_next v =
      Array.init c.n (fun s ->
          if c.target.(s) || Array.length c.steps.(s) = 0 then -1
          else begin
            let best_k = ref 0 in
            let best_v = ref None in
            Array.iteri
              (fun k (tick, outcomes) ->
                 let candidate =
                   expectation (if tick then v_next else v) outcomes
                 in
                 match !best_v with
                 | None ->
                   best_v := Some candidate;
                   best_k := k
                 | Some cur ->
                   if not (N.equal (best cur candidate) cur) then begin
                     best_v := Some candidate;
                     best_k := k
                   end)
              c.steps.(s);
            !best_k
          end)

    let min_reach_with_policy ?pool expl ~is_tick ~target ~ticks =
      if ticks < 0 then invalid_arg "Finite_horizon: negative tick horizon";
      let c = compact ?pool expl ~is_tick ~target in
      let policy = Array.make (ticks + 1) [||] in
      let v = ref (Array.make c.n N.zero) in
      for t = 0 to ticks do
        let fresh = layer pool c ~best:N.min ~init:(min_init c) !v in
        policy.(t) <- argbest c ~best:N.min !v fresh;
        v := fresh
      done;
      (!v, policy)

    let run_steps ?pool expl ~target ~steps ~best =
      if steps < 0 then invalid_arg "Finite_horizon: negative step horizon";
      let n = Explore.num_states expl in
      if Array.length target <> n then
        invalid_arg "Finite_horizon: target array has wrong length";
      let c = compact ?pool expl ~is_tick:(fun _ -> false) ~target in
      let v =
        ref (Array.init n (fun s -> if target.(s) then N.one else N.zero))
      in
      for _k = 1 to steps do
        let prev = !v in
        let fresh = Array.make n N.zero in
        pfor pool ~n (fun s ->
            fresh.(s) <-
              (if target.(s) then N.one
               else begin
                 let stps = c.steps.(s) in
                 if Array.length stps = 0 then N.zero
                 else
                   Array.fold_left
                     (fun acc (_, outcomes) ->
                        let e = expectation prev outcomes in
                        match acc with
                        | None -> Some e
                        | Some cur -> Some (best cur e))
                     None stps
                   |> Option.get
               end));
        v := fresh
      done;
      !v

    let min_reach_steps ?pool expl ~target ~steps =
      run_steps ?pool expl ~target ~steps ~best:N.min

    let max_reach_steps ?pool expl ~target ~steps =
      run_steps ?pool expl ~target ~steps ~best:N.max
  end

  module Exact = Engine (Num_rational)
  module Exact_dyadic = Engine (Num_dyadic)
  module Approx = Engine (Num_float)

  let exact_fast engine_dyadic engine_rational ?pool expl ~is_tick ~target
      ~ticks =
    match engine_dyadic ?pool expl ~is_tick ~target ~ticks with
    | values -> Array.map Proba.Dyadic.to_rational values
    | exception Proba.Dyadic.Not_dyadic _ ->
      engine_rational ?pool expl ~is_tick ~target ~ticks

  let min_reach ?pool expl ~is_tick ~target ~ticks =
    exact_fast Exact_dyadic.min_reach Exact.min_reach ?pool expl ~is_tick
      ~target ~ticks

  let max_reach ?pool expl ~is_tick ~target ~ticks =
    exact_fast Exact_dyadic.max_reach Exact.max_reach ?pool expl ~is_tick
      ~target ~ticks

  let min_reach_with_policy = Exact.min_reach_with_policy
  let min_reach_rational = Exact.min_reach
  let min_reach_steps = Exact.min_reach_steps
  let max_reach_steps = Exact.max_reach_steps
  let min_reach_float = Approx.min_reach
  let max_reach_float = Approx.max_reach

  (* Pre-refactor qualitative fixpoints *)

  let safe_core expl ~avoid =
    let n = Explore.num_states expl in
    let s = Array.copy avoid in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n - 1 do
        if s.(i) then begin
          let steps = Explore.steps expl i in
          let ok =
            Array.length steps = 0
            || Array.exists
                 (fun step ->
                    Array.for_all (fun (j, _) -> s.(j)) step.Explore.outcomes)
                 steps
          in
          if not ok then begin
            s.(i) <- false;
            changed := true
          end
        end
      done
    done;
    s

  let can_avoid expl ~target =
    let n = Explore.num_states expl in
    let avoid = Array.map not target in
    let core = safe_core expl ~avoid in
    let bad = Array.copy core in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n - 1 do
        if (not bad.(i)) && avoid.(i) then begin
          let steps = Explore.steps expl i in
          let reaches_bad =
            Array.exists
              (fun step ->
                 Array.exists (fun (j, _) -> bad.(j)) step.Explore.outcomes)
              steps
          in
          if reaches_bad then begin
            bad.(i) <- true;
            changed := true
          end
        end
      done
    done;
    bad

  let always_reaches expl ~target = Array.map not (can_avoid expl ~target)

  let some_reaches_certainly expl ~target =
    let n = Explore.num_states expl in
    let s_set = Array.make n true in
    let outer_changed = ref true in
    while !outer_changed do
      let r = Array.copy target in
      let inner_changed = ref true in
      while !inner_changed do
        inner_changed := false;
        for i = 0 to n - 1 do
          if (not r.(i)) && s_set.(i) then begin
            let good step =
              Array.for_all (fun (j, _) -> s_set.(j)) step.Explore.outcomes
              && Array.exists (fun (j, _) -> r.(j)) step.Explore.outcomes
            in
            if Array.exists good (Explore.steps expl i) then begin
              r.(i) <- true;
              inner_changed := true
            end
          end
        done
      done;
      outer_changed := not (Array.for_all2 ( = ) s_set r);
      Array.blit r 0 s_set 0 n
    done;
    s_set

  (* Pre-refactor expected-time value iteration *)

  let et_expectation v outcomes =
    Array.fold_left
      (fun acc (j, w) -> acc +. (Q.to_float w *. v.(j)))
      0.0 outcomes

  let state_value expl ~is_tick ~finite ~target ~best v i =
    if target.(i) then 0.0
    else if not finite.(i) then infinity
    else begin
      let steps = Explore.steps expl i in
      if Array.length steps = 0 then infinity
      else
        Array.fold_left
          (fun acc step ->
             let cost = if is_tick step.Explore.action then 1.0 else 0.0 in
             let e = cost +. et_expectation v step.Explore.outcomes in
             match acc with
             | None -> Some e
             | Some cur -> Some (best cur e))
          None steps
        |> Option.get
    end

  let value_iterate_seq expl ~is_tick ~finite ~target ~best ~epsilon
      ~max_sweeps =
    let n = Explore.num_states expl in
    let v =
      Array.init n (fun i ->
          if target.(i) then 0.0 else if finite.(i) then 0.0 else infinity)
    in
    let sweep () =
      let delta = ref 0.0 in
      for i = 0 to n - 1 do
        if (not target.(i)) && finite.(i) then begin
          let steps = Explore.steps expl i in
          if Array.length steps > 0 then begin
            let fresh =
              state_value expl ~is_tick ~finite ~target ~best v i
            in
            let d = Float.abs (fresh -. v.(i)) in
            if d > !delta then delta := d;
            v.(i) <- fresh
          end
          else v.(i) <- infinity
        end
      done;
      !delta
    in
    let rec go k =
      if k > max_sweeps then
        failwith "Expected_time: value iteration did not converge"
      else if sweep () > epsilon then go (k + 1)
    in
    go 0;
    v

  let value_iterate_par pool expl ~is_tick ~finite ~target ~best ~epsilon
      ~max_sweeps =
    let n = Explore.num_states expl in
    let init i =
      if target.(i) then 0.0 else if finite.(i) then 0.0 else infinity
    in
    let cur = ref (Array.init n init) in
    let nxt = ref (Array.make n 0.0) in
    let sweep () =
      let cur = !cur and nxt = !nxt in
      P.map_reduce pool ~n ~init:0.0 ~combine:Float.max (fun i ->
          if
            (not target.(i))
            && finite.(i)
            && Array.length (Explore.steps expl i) > 0
          then begin
            let fresh =
              state_value expl ~is_tick ~finite ~target ~best cur i
            in
            nxt.(i) <- fresh;
            Float.abs (fresh -. cur.(i))
          end
          else begin
            nxt.(i) <- init i;
            0.0
          end)
    in
    let rec go k =
      if k > max_sweeps then
        failwith "Expected_time: value iteration did not converge"
      else if sweep () > epsilon then begin
        let t = !cur in
        cur := !nxt;
        nxt := t;
        go (k + 1)
      end
      else cur := !nxt
    in
    go 0;
    !cur

  let value_iterate ?pool expl ~is_tick ~finite ~target ~best =
    let epsilon = 1e-12 and max_sweeps = 1_000_000 in
    match pool with
    | Some p ->
      value_iterate_par p expl ~is_tick ~finite ~target ~best ~epsilon
        ~max_sweeps
    | None ->
      value_iterate_seq expl ~is_tick ~finite ~target ~best ~epsilon
        ~max_sweeps

  let max_expected_ticks ?pool expl ~is_tick ~target () =
    let finite = always_reaches expl ~target in
    value_iterate ?pool expl ~is_tick ~finite ~target ~best:Float.max

  let min_expected_ticks ?pool expl ~is_tick ~target () =
    let finite = some_reaches_certainly expl ~target in
    value_iterate ?pool expl ~is_tick ~finite ~target ~best:Float.min

  let max_expected_ticks_with_policy expl ~is_tick ~target () =
    let finite = always_reaches expl ~target in
    let v = value_iterate expl ~is_tick ~finite ~target ~best:Float.max in
    let n = Explore.num_states expl in
    let policy =
      Array.init n (fun i ->
          if target.(i) || not finite.(i) then -1
          else begin
            let steps = Explore.steps expl i in
            if Array.length steps = 0 then -1
            else begin
              let best_k = ref 0 and best_v = ref neg_infinity in
              Array.iteri
                (fun k step ->
                   let cost =
                     if is_tick step.Explore.action then 1.0 else 0.0
                   in
                   let e = cost +. et_expectation v step.Explore.outcomes in
                   if e > !best_v then begin
                     best_v := e;
                     best_k := k
                   end)
                steps;
              !best_k
            end
          end)
    in
    (v, policy)
end

(* ------------------------------------------------------------------ *)
(* Fixtures: all four case studies, resolved through the registry so
   the suite shares explorations with nothing re-run. *)

type fixture = Fixture : {
  name : string;
  expl : ('s, 'a) Mdp.Explore.t;
  arena : ('s, 'a) Mdp.Arena.t;
  is_tick : 'a -> bool;
  target : bool array;
  ticks : int;
} -> fixture

let fixtures =
  lazy
    (let lr = Models.lr ~n:3 () in
     let ir = Models.election ~n:3 () in
     let sc = Models.coin ~n:2 ~bound:3 () in
     let bo =
       Models.consensus ~n:3 ~f:1 ~cap:2 ~initial:[| false; false; true |] ()
     in
     [ Fixture
         { name = "lr";
           expl = lr.LR.Proof.expl;
           arena = lr.LR.Proof.arena;
           is_tick = LR.Automaton.is_tick;
           target = Mdp.Explore.indicator lr.LR.Proof.expl LR.Regions.c;
           ticks = 5 };
       Fixture
         { name = "election";
           expl = ir.IR.Proof.expl;
           arena = ir.IR.Proof.arena;
           is_tick = IR.Automaton.is_tick;
           target =
             Mdp.Explore.indicator ir.IR.Proof.expl
               (Core.Pred.make "elected" IR.Automaton.leader_elected);
           ticks = 6 };
       Fixture
         { name = "coin";
           expl = sc.SC.Proof.expl;
           arena = sc.SC.Proof.arena;
           is_tick = SC.Automaton.is_tick;
           target =
             Mdp.Explore.indicator sc.SC.Proof.expl
               (Core.Pred.make "decided"
                  (SC.Automaton.decided sc.SC.Proof.params));
           ticks = 8 };
       Fixture
         { name = "consensus";
           expl = bo.BO.Proof.expl;
           arena = bo.BO.Proof.arena;
           is_tick = BO.Automaton.is_tick;
           target =
             Mdp.Explore.indicator bo.BO.Proof.expl
               (Core.Pred.make "decided" BO.Automaton.some_decided);
           ticks = 4 } ])

(* Structural equality, not [Q.equal]: the claim is bit-identity of
   the representation, which is strictly stronger. *)
let check_q_arrays name (expected : Q.t array) (got : Q.t array) =
  Alcotest.(check int) (name ^ ": length") (Array.length expected)
    (Array.length got);
  Array.iteri
    (fun i x ->
       if not (x = got.(i)) then
         Alcotest.failf "%s: state %d: %s vs %s" name i (Q.to_string x)
           (Q.to_string got.(i)))
    expected

let check_float_arrays name (expected : float array) (got : float array) =
  Alcotest.(check int) (name ^ ": length") (Array.length expected)
    (Array.length got);
  Array.iteri
    (fun i x ->
       (* [Float.equal] so that infinity = infinity and nan = nan. *)
       if not (Float.equal x got.(i)) then
         Alcotest.failf "%s: state %d: %h vs %h" name i x got.(i))
    expected

let check_int_arrays name (expected : int array) (got : int array) =
  Alcotest.(check (array int)) name expected got

(* ------------------------------------------------------------------ *)
(* Finite horizon: exact, rational-only, and float engines, sequential
   and at every pool size [--domains] accepts in the test matrix. *)

let pools = [ None; Some 1; Some 2; Some 3 ]

let pool_label = function
  | None -> "seq"
  | Some d -> Printf.sprintf "%d domains" d

let with_opt_pool d f =
  match d with None -> f None | Some d -> with_pool d (fun p -> f (Some p))

let test_reach_differential () =
  List.iter
    (fun (Fixture f) ->
       List.iter
         (fun d ->
            with_opt_pool d (fun pool ->
                let ctx what =
                  Printf.sprintf "%s %s (%s)" f.name what (pool_label d)
                in
                check_q_arrays (ctx "min_reach")
                  (Legacy.min_reach ?pool f.expl ~is_tick:f.is_tick
                     ~target:f.target ~ticks:f.ticks)
                  (Mdp.Finite_horizon.min_reach ?pool f.arena
                     ~target:f.target ~ticks:f.ticks);
                check_q_arrays (ctx "max_reach")
                  (Legacy.max_reach ?pool f.expl ~is_tick:f.is_tick
                     ~target:f.target ~ticks:f.ticks)
                  (Mdp.Finite_horizon.max_reach ?pool f.arena
                     ~target:f.target ~ticks:f.ticks);
                check_float_arrays (ctx "min_reach_float")
                  (Legacy.min_reach_float ?pool f.expl ~is_tick:f.is_tick
                     ~target:f.target ~ticks:f.ticks)
                  (Mdp.Finite_horizon.min_reach_float ?pool f.arena
                     ~target:f.target ~ticks:f.ticks);
                check_float_arrays (ctx "max_reach_float")
                  (Legacy.max_reach_float ?pool f.expl ~is_tick:f.is_tick
                     ~target:f.target ~ticks:f.ticks)
                  (Mdp.Finite_horizon.max_reach_float ?pool f.arena
                     ~target:f.target ~ticks:f.ticks)))
         pools)
    (Lazy.force fixtures)

let test_rational_only_differential () =
  (* The rational-only engine bypasses the dyadic fast path on both
     sides; one model suffices to pin the pure-[Q] inner loop. *)
  List.iter
    (fun d ->
       with_opt_pool d (fun pool ->
           let (Fixture f) = List.hd (Lazy.force fixtures) in
           check_q_arrays
             (Printf.sprintf "lr min_reach_rational (%s)" (pool_label d))
             (Legacy.min_reach_rational ?pool f.expl ~is_tick:f.is_tick
                ~target:f.target ~ticks:f.ticks)
             (Mdp.Finite_horizon.min_reach_rational ?pool f.arena
                ~target:f.target ~ticks:f.ticks)))
    pools

let test_reach_steps_differential () =
  List.iter
    (fun (Fixture f) ->
       check_q_arrays (f.name ^ " min_reach_steps")
         (Legacy.min_reach_steps f.expl ~target:f.target ~steps:f.ticks)
         (Mdp.Finite_horizon.min_reach_steps f.arena ~target:f.target
            ~steps:f.ticks);
       check_q_arrays (f.name ^ " max_reach_steps")
         (Legacy.max_reach_steps f.expl ~target:f.target ~steps:f.ticks)
         (Mdp.Finite_horizon.max_reach_steps f.arena ~target:f.target
            ~steps:f.ticks))
    (Lazy.force fixtures)

let test_policy_differential () =
  List.iter
    (fun (Fixture f) ->
       let v0, p0 =
         Legacy.min_reach_with_policy f.expl ~is_tick:f.is_tick
           ~target:f.target ~ticks:3
       in
       let v1, p1 =
         Mdp.Finite_horizon.min_reach_with_policy f.arena ~target:f.target
           ~ticks:3
       in
       check_q_arrays (f.name ^ " policy values") v0 v1;
       Alcotest.(check int)
         (f.name ^ " policy layers")
         (Array.length p0) (Array.length p1);
       Array.iteri
         (fun t row ->
            check_int_arrays
              (Printf.sprintf "%s policy layer %d" f.name t)
              row p1.(t))
         p0)
    (Lazy.force fixtures)

(* ------------------------------------------------------------------ *)
(* Qualitative fixpoints *)

let test_qualitative_differential () =
  List.iter
    (fun (Fixture f) ->
       let check name a b =
         Alcotest.(check (array bool)) (f.name ^ " " ^ name) a b
       in
       check "always_reaches"
         (Legacy.always_reaches f.expl ~target:f.target)
         (Mdp.Qualitative.always_reaches f.arena ~target:f.target);
       check "some_reaches_certainly"
         (Legacy.some_reaches_certainly f.expl ~target:f.target)
         (Mdp.Qualitative.some_reaches_certainly f.arena ~target:f.target);
       let avoid = Array.map not f.target in
       check "safe_core"
         (Legacy.safe_core f.expl ~avoid)
         (Mdp.Qualitative.safe_core f.arena ~avoid))
    (Lazy.force fixtures)

(* ------------------------------------------------------------------ *)
(* Expected time *)

let test_expected_time_differential () =
  List.iter
    (fun (Fixture f) ->
       List.iter
         (fun d ->
            with_opt_pool d (fun pool ->
                let ctx what =
                  Printf.sprintf "%s %s (%s)" f.name what (pool_label d)
                in
                check_float_arrays (ctx "max_expected_ticks")
                  (Legacy.max_expected_ticks ?pool f.expl
                     ~is_tick:f.is_tick ~target:f.target ())
                  (Mdp.Expected_time.max_expected_ticks ?pool f.arena
                     ~target:f.target ());
                check_float_arrays (ctx "min_expected_ticks")
                  (Legacy.min_expected_ticks ?pool f.expl
                     ~is_tick:f.is_tick ~target:f.target ())
                  (Mdp.Expected_time.min_expected_ticks ?pool f.arena
                     ~target:f.target ())))
         [ None; Some 2 ];
       let v0, p0 =
         Legacy.max_expected_ticks_with_policy f.expl ~is_tick:f.is_tick
           ~target:f.target ()
       in
       let v1, p1 =
         Mdp.Expected_time.max_expected_ticks_with_policy f.arena
           ~target:f.target ()
       in
       check_float_arrays (f.name ^ " policy values") v0 v1;
       check_int_arrays (f.name ^ " expected-time policy") p0 p1)
    (Lazy.force fixtures)

(* ------------------------------------------------------------------ *)
(* Budgeted partial fragments: the arena must preserve the frontier's
   stuck-state semantics, so values on a partial fragment match the
   legacy engines on the same fragment. *)

let test_partial_fragment_differential () =
  let pa = LR.Automaton.make { LR.Automaton.n = 3; g = 1; k = 1 } in
  let partial =
    Mdp.Explore.run_budgeted ~budget:(Core.Budget.v ~max_states:500 ()) pa
  in
  Alcotest.(check bool) "fragment is partial" false partial.Mdp.Explore.complete;
  Alcotest.(check bool) "nonempty frontier" true
    (partial.Mdp.Explore.frontier > 0);
  let expl = partial.Mdp.Explore.fragment in
  let arena = Mdp.Arena.compile ~is_tick:LR.Automaton.is_tick expl in
  Alcotest.(check int) "arena mirrors frontier"
    (Mdp.Explore.num_expanded expl)
    (Mdp.Arena.num_expanded arena);
  Alcotest.(check bool) "frontier rows are empty" true
    (let ok = ref true in
     for i = Mdp.Arena.num_expanded arena to Mdp.Arena.num_states arena - 1 do
       if Mdp.Arena.num_steps_of arena i <> 0 then ok := false
     done;
     !ok);
  let target = Mdp.Explore.indicator expl LR.Regions.c in
  let is_tick = LR.Automaton.is_tick in
  check_q_arrays "partial min_reach"
    (Legacy.min_reach expl ~is_tick ~target ~ticks:4)
    (Mdp.Finite_horizon.min_reach arena ~target ~ticks:4);
  check_q_arrays "partial max_reach"
    (Legacy.max_reach expl ~is_tick ~target ~ticks:4)
    (Mdp.Finite_horizon.max_reach arena ~target ~ticks:4);
  check_float_arrays "partial max_reach_float"
    (Legacy.max_reach_float expl ~is_tick ~target ~ticks:4)
    (Mdp.Finite_horizon.max_reach_float arena ~target ~ticks:4);
  Alcotest.(check (array bool)) "partial always_reaches"
    (Legacy.always_reaches expl ~target)
    (Mdp.Qualitative.always_reaches arena ~target)

(* ------------------------------------------------------------------ *)
(* Arena structure invariants *)

let test_arena_structure () =
  List.iter
    (fun (Fixture f) ->
       let a = f.arena in
       let n = Mdp.Arena.num_states a in
       Alcotest.(check int) (f.name ^ " num_states")
         (Mdp.Explore.num_states f.expl) n;
       Alcotest.(check int) (f.name ^ " num_choices")
         (Mdp.Explore.num_choices f.expl)
         (Mdp.Arena.num_choices a);
       Alcotest.(check int) (f.name ^ " num_branches")
         (Mdp.Explore.num_branches f.expl)
         (Mdp.Arena.num_branches a);
       (* Step rows mirror [Explore.steps] in order, content, tick
          classification, and both probability planes. *)
       for i = 0 to n - 1 do
         let steps = Mdp.Explore.steps f.expl i in
         Alcotest.(check int)
           (Printf.sprintf "%s steps at %d" f.name i)
           (Array.length steps)
           (Mdp.Arena.num_steps_of a i);
         let lo = a.Mdp.Arena.step_off.(i) in
         Array.iteri
           (fun k step ->
              let kk = lo + k in
              if
                not
                  (f.is_tick step.Mdp.Explore.action
                   = Mdp.Arena.is_tick_step a ~step:kk)
              then Alcotest.failf "%s: tick mask differs at %d/%d" f.name i k;
              let olo = a.Mdp.Arena.out_off.(kk) in
              Array.iteri
                (fun b (j, w) ->
                   let o = olo + b in
                   if a.Mdp.Arena.tgt.(o) <> j then
                     Alcotest.failf "%s: branch target differs" f.name;
                   if not (a.Mdp.Arena.prob_q.(o) = w) then
                     Alcotest.failf "%s: exact plane differs" f.name;
                   if not (Float.equal a.Mdp.Arena.prob_f.(o) (Q.to_float w))
                   then Alcotest.failf "%s: float plane differs" f.name)
                step.Mdp.Explore.outcomes)
           steps
       done)
    (Lazy.force fixtures)

(* ------------------------------------------------------------------ *)
(* Mdp.Funtbl.find_or_add *)

let test_find_or_add () =
  let t = Mdp.Funtbl.create ~equal:String.equal ~hash:Hashtbl.hash 4 in
  let calls = ref 0 in
  let make v () =
    incr calls;
    v
  in
  Alcotest.(check int) "miss installs" 1 (Mdp.Funtbl.find_or_add t "a" (make 1));
  Alcotest.(check int) "make called once" 1 !calls;
  Alcotest.(check int) "hit returns binding" 1
    (Mdp.Funtbl.find_or_add t "a" (make 99));
  Alcotest.(check int) "make not called on hit" 1 !calls;
  Alcotest.(check (option int)) "find sees it" (Some 1) (Mdp.Funtbl.find t "a");
  (* A raising [make] leaves the table unchanged. *)
  Alcotest.(check bool) "raise propagates" true
    (try
       ignore (Mdp.Funtbl.find_or_add t "b" (fun () -> failwith "boom"));
       false
     with Failure _ -> true);
  Alcotest.(check bool) "failed key absent" false (Mdp.Funtbl.mem t "b");
  Alcotest.(check int) "length unchanged" 1 (Mdp.Funtbl.length t);
  (* Interning survives resize. *)
  for i = 0 to 99 do
    ignore (Mdp.Funtbl.find_or_add t (string_of_int i) (fun () -> i))
  done;
  Alcotest.(check int) "after resize" 101 (Mdp.Funtbl.length t);
  Alcotest.(check int) "old binding intact" 1
    (Mdp.Funtbl.find_or_add t "a" (make 42))

(* ------------------------------------------------------------------ *)
(* Registry memoization: a second resolution of the same model must hit
   the cache and trigger no new exploration or compile. *)

let test_registry_memoizes () =
  let before = Models.stats () in
  let a = Models.lr ~n:3 () in
  let b = Models.lr ~n:3 () in
  Alcotest.(check bool) "same instance" true (a == b);
  let after = Models.stats () in
  Alcotest.(check int) "no new exploration" before.Models.explorations
    after.Models.explorations;
  Alcotest.(check int) "no new compile" before.Models.compiles
    after.Models.compiles;
  Alcotest.(check bool) "cache hits grew" true
    (after.Models.cache_hits > before.Models.cache_hits)

(* ------------------------------------------------------------------ *)
(* Sim.Search policy evaluation against the exact engine: on the LR
   arena a fixed policy's step-bounded value must lie within the exact
   min/max envelope, and the degenerate single-choice states make the
   all-zeros policy well defined. *)

let test_policy_value_envelope () =
  let (Fixture f) = List.hd (Lazy.force fixtures) in
  let n = Mdp.Arena.num_states f.arena in
  let horizon = 6 in
  let vmin =
    Mdp.Finite_horizon.min_reach_steps f.arena ~target:f.target
      ~steps:horizon
  in
  let vmax =
    Mdp.Finite_horizon.max_reach_steps f.arena ~target:f.target
      ~steps:horizon
  in
  let check_policy policy =
    let v =
      Sim.Search.policy_value f.arena ~policy ~target:f.target ~horizon
    in
    Array.iteri
      (fun i x ->
         let lo = Q.to_float vmin.(i) and hi = Q.to_float vmax.(i) in
         if x < lo -. 1e-9 || x > hi +. 1e-9 then
           Alcotest.failf "policy value %g outside [%g, %g] at state %d" x lo
             hi i)
      v
  in
  check_policy (Array.make n 0);
  check_policy (Array.init n (fun i -> i * 7))

let test_policy_search_finds_adversary () =
  let (Fixture f) = List.hd (Lazy.force fixtures) in
  let rng = Proba.Rng.create ~seed:11 in
  let r =
    Sim.Search.policy_search ~rng f.arena ~target:f.target ~horizon:6
      ~steps:60 ()
  in
  let starts = Mdp.Arena.start_indices f.arena in
  let vmax =
    Mdp.Finite_horizon.max_reach_steps f.arena ~target:f.target ~steps:6
  in
  let bound =
    List.fold_left (fun acc i -> Float.max acc (Q.to_float vmax.(i))) 0.0
      starts
  in
  Alcotest.(check bool) "score within exact bound" true
    (r.Sim.Search.score <= bound +. 1e-9);
  Alcotest.(check bool) "score nonnegative" true (r.Sim.Search.score >= 0.0);
  (* The reported score is exactly the objective of the reported
     genome: re-evaluating the best policy reproduces it bit-for-bit. *)
  let v =
    Sim.Search.policy_value f.arena ~policy:r.Sim.Search.best
      ~target:f.target ~horizon:6
  in
  let mean =
    List.fold_left (fun acc i -> acc +. v.(i)) 0.0 starts
    /. float_of_int (List.length starts)
  in
  Alcotest.(check bool) "score = objective of best genome" true
    (Float.equal mean r.Sim.Search.score)

(* ------------------------------------------------------------------ *)
(* Probability planes: the interval oracle must never change an
   answer.  [test_reach_differential] above already pins the session
   default (interval) against the legacy engines; these pin the two
   planes against each other explicitly -- full models at every pool
   size, budgeted partial fragments, the certified orbit quotient, a
   non-dyadic model where the oracle leaves residue, bisimulation
   signatures, and the refusal path. *)

let test_plane_reach_differential () =
  List.iter
    (fun (Fixture f) ->
       List.iter
         (fun d ->
            with_opt_pool d (fun pool ->
                let ctx what =
                  Printf.sprintf "%s %s planes (%s)" f.name what (pool_label d)
                in
                check_q_arrays (ctx "min_reach")
                  (Mdp.Finite_horizon.min_reach ?pool ~plane:Mdp.Plane.Exact
                     f.arena ~target:f.target ~ticks:f.ticks)
                  (Mdp.Finite_horizon.min_reach ?pool
                     ~plane:Mdp.Plane.Interval f.arena ~target:f.target
                     ~ticks:f.ticks);
                check_q_arrays (ctx "max_reach")
                  (Mdp.Finite_horizon.max_reach ?pool ~plane:Mdp.Plane.Exact
                     f.arena ~target:f.target ~ticks:f.ticks)
                  (Mdp.Finite_horizon.max_reach ?pool
                     ~plane:Mdp.Plane.Interval f.arena ~target:f.target
                     ~ticks:f.ticks)))
         pools)
    (Lazy.force fixtures)

let test_plane_bisim_differential () =
  List.iter
    (fun (Fixture f) ->
       let labels = Array.map (fun b -> if b then 1 else 0) f.target in
       let bi =
         Mdp.Bisim.refine f.arena ~labels ~plane:Mdp.Plane.Interval ()
       in
       let be = Mdp.Bisim.refine f.arena ~labels ~plane:Mdp.Plane.Exact () in
       (* Identical partition INCLUDING block numbering: both planes
          number blocks in first-encounter order of the same sweep. *)
       check_int_arrays (f.name ^ " bisim planes") be bi)
    (Lazy.force fixtures)

let test_plane_partial_fragment () =
  let pa = LR.Automaton.make { LR.Automaton.n = 3; g = 1; k = 1 } in
  let partial =
    Mdp.Explore.run_budgeted ~budget:(Core.Budget.v ~max_states:500 ()) pa
  in
  let expl = partial.Mdp.Explore.fragment in
  let arena = Mdp.Arena.compile ~is_tick:LR.Automaton.is_tick expl in
  let target = Mdp.Explore.indicator expl LR.Regions.c in
  check_q_arrays "partial min_reach planes"
    (Mdp.Finite_horizon.min_reach ~plane:Mdp.Plane.Exact arena ~target
       ~ticks:4)
    (Mdp.Finite_horizon.min_reach ~plane:Mdp.Plane.Interval arena ~target
       ~ticks:4);
  check_q_arrays "partial max_reach planes"
    (Mdp.Finite_horizon.max_reach ~plane:Mdp.Plane.Exact arena ~target
       ~ticks:4)
    (Mdp.Finite_horizon.max_reach ~plane:Mdp.Plane.Interval arena ~target
       ~ticks:4)

let test_plane_sym_quotient () =
  (* The orbit quotient's weights are orbit-summed, so this also runs
     the planes over non-trivial (but still dyadic) merged branches. *)
  let inst = LR.Proof.build ~sym:Analysis.Symmetry.On ~n:3 () in
  let arena = inst.LR.Proof.arena in
  let target = Mdp.Arena.indicator arena LR.Regions.c in
  check_q_arrays "sym-on min_reach planes"
    (Mdp.Finite_horizon.min_reach ~plane:Mdp.Plane.Exact arena ~target
       ~ticks:5)
    (Mdp.Finite_horizon.min_reach ~plane:Mdp.Plane.Interval arena ~target
       ~ticks:5)

(* A model whose probabilities are not dyadic: 1/3 has no finite
   binary expansion, so its interval is one ulp wide, layer values stay
   wide, and the oracle must hand those states to the exact engine
   (which itself falls back from the dyadic to the rational path). *)
type third_state = TA | TB | TGoal

let third_arena =
  lazy
    (let enabled = function
       | TA ->
         (* best value 1/3*0 + 2/3*1 = 2/3: no finite binary expansion,
            so the layer never closes to a point at TA *)
         [ { Core.Pa.action = "roll";
             dist =
               Proba.Dist.make
                 [ (TB, Q.of_ints 1 3); (TGoal, Q.of_ints 2 3) ] };
           { Core.Pa.action = "tick"; dist = Proba.Dist.point TA } ]
       | TB -> []
       | TGoal -> []
     in
     let pa = Core.Pa.make ~start:[ TA ] ~enabled () in
     let arena = Mdp.Arena.of_pa ~is_tick:(fun a -> a = "tick") pa in
     let target =
       Mdp.Arena.indicator arena
         (Core.Pred.make "goal" (fun s -> s = TGoal))
     in
     (arena, target))

let test_plane_nondyadic_residue () =
  let arena, target = Lazy.force third_arena in
  Mdp.Plane.reset_stats ();
  let vi =
    Mdp.Finite_horizon.max_reach ~plane:Mdp.Plane.Interval arena ~target
      ~ticks:2
  in
  let ve =
    Mdp.Finite_horizon.max_reach ~plane:Mdp.Plane.Exact arena ~target
      ~ticks:2
  in
  check_q_arrays "non-dyadic planes" ve vi;
  let s = Mdp.Plane.stats () in
  Alcotest.(check bool) "oracle ran" true (s.Mdp.Plane.interval_passes > 0);
  Alcotest.(check bool) "1/3 values leave residue" true
    (s.Mdp.Plane.residue_states > 0)

let test_plane_stats_dyadic_all_points () =
  let (Fixture f) = List.hd (Lazy.force fixtures) in
  Mdp.Plane.reset_stats ();
  ignore
    (Mdp.Finite_horizon.min_reach ~plane:Mdp.Plane.Interval f.arena
       ~target:f.target ~ticks:f.ticks);
  let s = Mdp.Plane.stats () in
  Alcotest.(check bool) "passes recorded" true
    (s.Mdp.Plane.interval_passes > 0);
  Alcotest.(check bool) "points recorded" true (s.Mdp.Plane.point_states > 0);
  (* Every weight of the LR arena is dyadic, so the correctly-rounded
     interval plane decides every state: zero residue, zero fallbacks. *)
  Alcotest.(check int) "no residue" 0 s.Mdp.Plane.residue_states;
  Alcotest.(check int) "no fallbacks" 0 s.Mdp.Plane.exact_fallbacks

let test_plane_no_convergence () =
  (* The zero-time probabilistic cycle must be refused on BOTH planes:
     the diverging layer iterates are strictly monotone, so they never
     collapse to a point and the interval pass cannot mask the
     refusal. *)
  let module Bad = struct
    type state = S | Goal

    let enabled = function
      | S ->
        [ { Core.Pa.action = "flip"; dist = Proba.Dist.coin S Goal };
          { Core.Pa.action = "tick"; dist = Proba.Dist.point S } ]
      | Goal -> []

    let pa = Core.Pa.make ~start:[ S ] ~enabled ()
  end in
  let arena = Mdp.Arena.of_pa ~is_tick:(fun a -> a = "tick") Bad.pa in
  let target =
    Mdp.Arena.indicator arena (Core.Pred.make "goal" (fun s -> s = Bad.Goal))
  in
  List.iter
    (fun plane ->
       Alcotest.(check bool)
         (Printf.sprintf "refuses on %s" (Mdp.Plane.to_string plane))
         true
         (try
            ignore (Mdp.Finite_horizon.max_reach ~plane arena ~target ~ticks:1);
            false
          with Mdp.Finite_horizon.No_convergence _ -> true))
    [ Mdp.Plane.Interval; Mdp.Plane.Exact ]

let test_interval_vi_bracket () =
  let (Fixture f) = List.hd (Lazy.force fixtures) in
  let vlo, vhi =
    Mdp.Expected_time.max_expected_ticks_interval f.arena ~target:f.target ()
  in
  let v = Mdp.Expected_time.max_expected_ticks f.arena ~target:f.target () in
  Array.iteri
    (fun i x ->
       if Float.is_finite x then begin
         if not (vlo.(i) <= x && x <= vhi.(i)) then
           Alcotest.failf "state %d: %h outside [%h, %h]" i x vlo.(i)
             vhi.(i)
       end
       else if Float.is_finite vhi.(i) then
         Alcotest.failf "state %d: infinite VI but finite bracket" i)
    v

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "arena"
    [ ( "differential",
        [ Alcotest.test_case "finite horizon (all engines, all pools)" `Quick
            test_reach_differential;
          Alcotest.test_case "rational-only engine" `Quick
            test_rational_only_differential;
          Alcotest.test_case "step-bounded" `Quick
            test_reach_steps_differential;
          Alcotest.test_case "minimizing policy" `Quick
            test_policy_differential;
          Alcotest.test_case "qualitative fixpoints" `Quick
            test_qualitative_differential;
          Alcotest.test_case "expected time" `Quick
            test_expected_time_differential;
          Alcotest.test_case "budgeted partial fragment" `Quick
            test_partial_fragment_differential ] );
      ( "plane",
        [ Alcotest.test_case "interval vs exact (all pools)" `Quick
            test_plane_reach_differential;
          Alcotest.test_case "bisim partitions" `Quick
            test_plane_bisim_differential;
          Alcotest.test_case "partial fragment" `Quick
            test_plane_partial_fragment;
          Alcotest.test_case "orbit quotient" `Quick test_plane_sym_quotient;
          Alcotest.test_case "non-dyadic residue" `Quick
            test_plane_nondyadic_residue;
          Alcotest.test_case "dyadic stats all points" `Quick
            test_plane_stats_dyadic_all_points;
          Alcotest.test_case "no-convergence refusal" `Quick
            test_plane_no_convergence;
          Alcotest.test_case "interval VI bracket" `Quick
            test_interval_vi_bracket ] );
      ( "structure",
        [ Alcotest.test_case "CSR mirrors the fragment" `Quick
            test_arena_structure ] );
      ( "funtbl",
        [ Alcotest.test_case "find_or_add" `Quick test_find_or_add ] );
      ( "registry",
        [ Alcotest.test_case "memoizes instances" `Quick
            test_registry_memoizes ] );
      ( "search",
        [ Alcotest.test_case "policy value envelope" `Quick
            test_policy_value_envelope;
          Alcotest.test_case "policy search bounded by exact max" `Quick
            test_policy_search_finds_adversary ] ) ]
