(* Tests for the Lehmann-Rabin case study: the automaton's transition
   structure (white box), the region predicates, Lemma 6.1, the five
   phase statements at the paper's constants, their composition into
   T -13->_{1/8} C, and the expected-time derivation. *)

module Q = Proba.Rational
module LR = Lehmann_rabin
module St = LR.State
module Au = LR.Automaton

let rational = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check rational

let params = { Au.n = 3; g = 1; k = 1 }

(* Shared instance: explored once for the whole suite. *)
let inst = lazy (LR.Proof.build ~n:3 ())

(* A crafted state builder: regions with fresh clocks, resources derived
   from the regions per Lemma 6.1 (so crafted states are consistent). *)
let craft regions =
  let n = Array.length regions in
  let procs =
    Array.map (fun region -> { St.region; c = params.Au.g; b = params.Au.k })
      regions
  in
  let res =
    Array.init n (fun i ->
        St.holds regions.(i) St.R || St.holds regions.((i + 1) mod n) St.L)
  in
  { St.procs; res }

let actions_of steps =
  List.map (fun s -> s.Core.Pa.action) steps

(* ------------------------------------------------------------------ *)
(* State *)

let test_state_opp () =
  Alcotest.(check bool) "opp L" true (St.opp St.L = St.R);
  Alcotest.(check bool) "opp R" true (St.opp St.R = St.L)

let test_state_resource_index () =
  Alcotest.(check int) "right of 0" 0 (St.resource_index ~n:3 0 St.R);
  Alcotest.(check int) "left of 0" 2 (St.resource_index ~n:3 0 St.L);
  Alcotest.(check int) "left of 2" 1 (St.resource_index ~n:3 2 St.L);
  (* Neighbors share a resource: right of i = left of i+1. *)
  for i = 0 to 2 do
    Alcotest.(check int) "shared" (St.resource_index ~n:3 i St.R)
      (St.resource_index ~n:3 ((i + 1) mod 3) St.L)
  done

let test_state_holds () =
  Alcotest.(check bool) "W holds nothing" false (St.holds (St.Wait St.L) St.L);
  Alcotest.(check bool) "S holds its side" true
    (St.holds (St.Second St.R) St.R);
  Alcotest.(check bool) "S not other side" false
    (St.holds (St.Second St.R) St.L);
  Alcotest.(check bool) "P holds both" true
    (St.holds St.Pre St.L && St.holds St.Pre St.R);
  Alcotest.(check bool) "C holds both" true
    (St.holds St.Crit St.L && St.holds St.Crit St.R);
  Alcotest.(check bool) "EF holds both" true
    (St.holds St.Exit_f St.L && St.holds St.Exit_f St.R);
  Alcotest.(check bool) "ES holds kept side" true
    (St.holds (St.Exit_s St.L) St.L);
  Alcotest.(check bool) "ER holds nothing" false
    (St.holds St.Exit_r St.L || St.holds St.Exit_r St.R)

let test_state_ready () =
  Alcotest.(check bool) "R not ready" false (St.ready St.Rem);
  Alcotest.(check bool) "C not ready" false (St.ready St.Crit);
  List.iter
    (fun r -> Alcotest.(check bool) "ready" true (St.ready r))
    [ St.Flip; St.Wait St.L; St.Second St.R; St.Drop St.L; St.Pre;
      St.Exit_f; St.Exit_s St.R; St.Exit_r ]

let test_state_initial () =
  let s = St.initial ~n:3 ~g:1 ~k:1 in
  Alcotest.(check int) "3 procs" 3 (St.num_procs s);
  Alcotest.(check bool) "all remainder" true
    (Array.for_all (fun p -> p.St.region = St.Rem) s.St.procs);
  Alcotest.(check bool) "all free" true
    (Array.for_all not s.St.res);
  Alcotest.(check bool) "bad n rejected" true
    (try ignore (St.initial ~n:1 ~g:1 ~k:1); false
     with Invalid_argument _ -> true)

let test_state_all_trying () =
  let s = St.all_trying ~n:4 ~g:1 ~k:1 in
  Alcotest.(check bool) "all flip" true
    (Array.for_all (fun p -> p.St.region = St.Flip) s.St.procs);
  Alcotest.(check bool) "in T" true (Core.Pred.mem LR.Regions.t s);
  Alcotest.(check bool) "in RT" true (Core.Pred.mem LR.Regions.rt s);
  Alcotest.(check bool) "in F" true (Core.Pred.mem LR.Regions.f s)

(* ------------------------------------------------------------------ *)
(* Automaton transitions (white box) *)

let test_auto_start_enabled () =
  let s = St.initial ~n:3 ~g:1 ~k:1 in
  let acts = actions_of (Au.enabled params s) in
  (* Tick plus one try per process. *)
  Alcotest.(check int) "four steps" 4 (List.length acts);
  Alcotest.(check bool) "tick present" true (List.mem Au.Tick acts);
  for i = 0 to 2 do
    Alcotest.(check bool) "try present" true (List.mem (Au.Try i) acts)
  done

let test_auto_flip_distribution () =
  let s = craft [| St.Flip; St.Rem; St.Rem |] in
  let steps = Au.enabled params s in
  let flips =
    List.filter (fun st -> st.Core.Pa.action = Au.Flip 0) steps
  in
  match flips with
  | [ f ] ->
    let outcomes = Proba.Dist.support f.Core.Pa.dist in
    Alcotest.(check int) "two outcomes" 2 (List.length outcomes);
    List.iter
      (fun (target, w) ->
         check_q "fair coin" Q.half w;
         match target.St.procs.(0).St.region with
         | St.Wait _ -> ()
         | _ -> Alcotest.fail "flip must move to W")
      outcomes
  | _ -> Alcotest.fail "expected exactly one flip step"

let test_auto_wait_takes_free_resource () =
  let s = craft [| St.Wait St.R; St.Rem; St.Rem |] in
  let steps = Au.enabled params s in
  let wait = List.find (fun st -> st.Core.Pa.action = Au.Wait 0) steps in
  (match Proba.Dist.is_point wait.Core.Pa.dist with
   | Some target ->
     Alcotest.(check bool) "moved to S" true
       (target.St.procs.(0).St.region = St.Second St.R);
     Alcotest.(check bool) "resource taken" true target.St.res.(0)
   | None -> Alcotest.fail "wait should be deterministic")

let test_auto_wait_busy_waits () =
  (* Process 1 holds its left resource (Res 0), which is process 0's
     right resource. *)
  let s = craft [| St.Wait St.R; St.Second St.L; St.Rem |] in
  Alcotest.(check bool) "res 0 taken in crafted state" true s.St.res.(0);
  let steps = Au.enabled params s in
  let wait = List.find (fun st -> st.Core.Pa.action = Au.Wait 0) steps in
  (match Proba.Dist.is_point wait.Core.Pa.dist with
   | Some target ->
     Alcotest.(check bool) "still waiting" true
       (target.St.procs.(0).St.region = St.Wait St.R);
     Alcotest.(check int) "budget spent" 0 target.St.procs.(0).St.b
   | None -> Alcotest.fail "wait should be deterministic")

let test_auto_second_success_and_failure () =
  (* Success: nobody contests process 0's left resource. *)
  let s = craft [| St.Second St.R; St.Rem; St.Rem |] in
  let second =
    List.find (fun st -> st.Core.Pa.action = Au.Second 0) (Au.enabled params s)
  in
  (match Proba.Dist.is_point second.Core.Pa.dist with
   | Some target ->
     Alcotest.(check bool) "into P" true (target.St.procs.(0).St.region = St.Pre);
     Alcotest.(check bool) "both held" true
       (target.St.res.(0) && target.St.res.(2))
   | None -> Alcotest.fail "second should be deterministic");
  (* Failure: process 1 holds Res 2... wait, process 0's left resource
     is Res 2, held by process 2 pointing right. *)
  let s = craft [| St.Second St.R; St.Rem; St.Second St.R |] in
  Alcotest.(check bool) "res 2 contested" true s.St.res.(2);
  let second =
    List.find (fun st -> st.Core.Pa.action = Au.Second 0) (Au.enabled params s)
  in
  (match Proba.Dist.is_point second.Core.Pa.dist with
   | Some target ->
     Alcotest.(check bool) "into D" true
       (target.St.procs.(0).St.region = St.Drop St.R);
     Alcotest.(check bool) "first still held" true target.St.res.(0)
   | None -> Alcotest.fail "second should be deterministic")

let test_auto_drop_releases () =
  let s = craft [| St.Drop St.R; St.Rem; St.Rem |] in
  Alcotest.(check bool) "holding before drop" true s.St.res.(0);
  let drop =
    List.find (fun st -> st.Core.Pa.action = Au.Drop 0) (Au.enabled params s)
  in
  (match Proba.Dist.is_point drop.Core.Pa.dist with
   | Some target ->
     Alcotest.(check bool) "back to F" true
       (target.St.procs.(0).St.region = St.Flip);
     Alcotest.(check bool) "released" false target.St.res.(0)
   | None -> Alcotest.fail "drop should be deterministic")

let test_auto_exit_protocol () =
  let s = craft [| St.Exit_f; St.Rem; St.Rem |] in
  let steps = Au.enabled params s in
  let dropfs =
    List.filter
      (fun st ->
         match st.Core.Pa.action with Au.Drop_first (0, _) -> true | _ -> false)
      steps
  in
  (* The keep-side choice is the adversary's: two distinct steps. *)
  Alcotest.(check int) "two dropf steps" 2 (List.length dropfs);
  List.iter
    (fun st ->
       match st.Core.Pa.action, Proba.Dist.is_point st.Core.Pa.dist with
       | Au.Drop_first (_, keep), Some target ->
         Alcotest.(check bool) "into ES keep" true
           (target.St.procs.(0).St.region = St.Exit_s keep);
         let released = St.resource_index ~n:3 0 (St.opp keep) in
         let kept = St.resource_index ~n:3 0 keep in
         Alcotest.(check bool) "released opp" false target.St.res.(released);
         Alcotest.(check bool) "kept side" true target.St.res.(kept)
       | _ -> Alcotest.fail "unexpected dropf step")
    dropfs

let test_auto_tick_blocked_by_deadline () =
  let s = craft [| St.Flip; St.Rem; St.Rem |] in
  let expired =
    { s with St.procs =
               Array.mapi
                 (fun i p -> if i = 0 then { p with St.c = 0 } else p)
                 s.St.procs }
  in
  let acts = actions_of (Au.enabled params expired) in
  Alcotest.(check bool) "no tick when a deadline expired" false
    (List.mem Au.Tick acts);
  Alcotest.(check bool) "the forced step is available" true
    (List.mem (Au.Flip 0) acts)

let test_auto_budget_blocks_steps () =
  let s = craft [| St.Flip; St.Rem; St.Rem |] in
  let spent =
    { s with St.procs =
               Array.mapi
                 (fun i p -> if i = 0 then { p with St.b = 0 } else p)
                 s.St.procs }
  in
  let acts = actions_of (Au.enabled params spent) in
  Alcotest.(check bool) "flip blocked without budget" false
    (List.mem (Au.Flip 0) acts);
  Alcotest.(check bool) "tick still there" true (List.mem Au.Tick acts)

let test_auto_tick_refreshes () =
  let s = craft [| St.Flip; St.Rem; St.Rem |] in
  let spent =
    { s with St.procs =
               Array.mapi
                 (fun i p -> if i = 0 then { p with St.b = 0 } else p)
                 s.St.procs }
  in
  let tick =
    List.find (fun st -> st.Core.Pa.action = Au.Tick) (Au.enabled params spent)
  in
  (match Proba.Dist.is_point tick.Core.Pa.dist with
   | Some target ->
     Alcotest.(check int) "countdown decremented" 0 target.St.procs.(0).St.c;
     Alcotest.(check int) "budget refreshed" 1 target.St.procs.(0).St.b
   | None -> Alcotest.fail "tick should be deterministic")

let test_auto_external_actions () =
  Alcotest.(check bool) "try external" true (Au.is_external (Au.Try 0));
  Alcotest.(check bool) "crit external" true (Au.is_external (Au.Crit 0));
  Alcotest.(check bool) "exit external" true (Au.is_external (Au.Exit 0));
  Alcotest.(check bool) "rem external" true (Au.is_external (Au.Rem 0));
  Alcotest.(check bool) "flip internal" false (Au.is_external (Au.Flip 0));
  Alcotest.(check bool) "tick internal" false (Au.is_external Au.Tick);
  Alcotest.(check bool) "tick duration" true (Au.duration Au.Tick = 1);
  Alcotest.(check bool) "flip duration" true (Au.duration (Au.Flip 0) = 0)

(* ------------------------------------------------------------------ *)
(* Regions *)

let test_regions_t_c () =
  Alcotest.(check bool) "initial not in T" false
    (Core.Pred.mem LR.Regions.t (St.initial ~n:3 ~g:1 ~k:1));
  let s = craft [| St.Wait St.L; St.Rem; St.Rem |] in
  Alcotest.(check bool) "waiter in T" true (Core.Pred.mem LR.Regions.t s);
  Alcotest.(check bool) "no critical" false (Core.Pred.mem LR.Regions.c s);
  let s = craft [| St.Crit; St.Rem; St.Rem |] in
  Alcotest.(check bool) "critical in C" true (Core.Pred.mem LR.Regions.c s);
  Alcotest.(check bool) "critical not in T" false (Core.Pred.mem LR.Regions.t s)

let test_regions_rt () =
  let s = craft [| St.Wait St.L; St.Exit_r; St.Rem |] in
  Alcotest.(check bool) "ER allowed in RT" true (Core.Pred.mem LR.Regions.rt s);
  let s = craft [| St.Wait St.L; St.Exit_f; St.Rem |] in
  Alcotest.(check bool) "EF blocks RT" false (Core.Pred.mem LR.Regions.rt s);
  let s = craft [| St.Wait St.L; St.Crit; St.Rem |] in
  Alcotest.(check bool) "C blocks RT" false (Core.Pred.mem LR.Regions.rt s)

let test_regions_f_p () =
  let s = craft [| St.Flip; St.Rem; St.Rem |] in
  Alcotest.(check bool) "in F" true (Core.Pred.mem LR.Regions.f s);
  let s = craft [| St.Pre; St.Rem; St.Rem |] in
  Alcotest.(check bool) "in P" true (Core.Pred.mem LR.Regions.p s);
  Alcotest.(check bool) "P not in F" false (Core.Pred.mem LR.Regions.f s)

let test_regions_good () =
  (* Process 0 committed to the left; its right neighbor (process 1)
     does not potentially control Res 0: good. *)
  let s = craft [| St.Wait St.L; St.Flip; St.Rem |] in
  Alcotest.(check bool) "good" true (Core.Pred.mem LR.Regions.g s);
  Alcotest.(check (list int)) "witness is 0" [ 0 ]
    (LR.Regions.good_processes s);
  (* Now the right neighbor points left (controls Res 0): not good. *)
  let s = craft [| St.Wait St.L; St.Wait St.L; St.Rem |] in
  Alcotest.(check bool) "not good via 0" false
    (List.mem 0 (LR.Regions.good_processes s));
  (* ... but process 1 itself is: committed left, and process 2 is
     harmless. *)
  Alcotest.(check bool) "1 is good" true
    (List.mem 1 (LR.Regions.good_processes s));
  (* All committed toward each other in a cycle: nobody is good. *)
  let s = craft [| St.Wait St.L; St.Wait St.L; St.Wait St.L |] in
  Alcotest.(check (list int)) "symmetric wait cycle: none good" []
    (LR.Regions.good_processes s);
  Alcotest.(check bool) "not in G" false (Core.Pred.mem LR.Regions.g s)

let test_regions_good_drop_neighbor () =
  (* D pointing toward the contested resource blocks goodness. *)
  let s = craft [| St.Wait St.L; St.Drop St.L; St.Rem |] in
  Alcotest.(check bool) "drop neighbor pointing left blocks 0" false
    (List.mem 0 (LR.Regions.good_processes s));
  (* D pointing away is harmless. *)
  let s = craft [| St.Wait St.L; St.Drop St.R; St.Rem |] in
  Alcotest.(check bool) "drop pointing right is fine" true
    (List.mem 0 (LR.Regions.good_processes s))

(* ------------------------------------------------------------------ *)
(* Invariant (Lemma 6.1) *)

let test_invariant_exhaustive () =
  let inst = Lazy.force inst in
  Alcotest.(check bool) "Lemma 6.1 over all reachable states" true
    (LR.Invariant.check inst.LR.Proof.expl = None);
  Alcotest.(check bool) "neighbor exclusion" true
    (LR.Invariant.check_exclusion inst.LR.Proof.expl = None)

let test_invariant_detects_corruption () =
  let s = craft [| St.Second St.R; St.Rem; St.Rem |] in
  let corrupted = { s with St.res = Array.map not s.St.res } in
  Alcotest.(check bool) "corrupted state rejected" false
    (LR.Invariant.lemma_6_1 corrupted);
  Alcotest.(check bool) "crafted state fine" true (LR.Invariant.lemma_6_1 s)

let test_invariant_neighbor_crit () =
  let s = craft [| St.Crit; St.Rem; St.Rem |] in
  Alcotest.(check bool) "single critical ok" true
    (LR.Invariant.neighbors_exclusive s);
  (* Force two adjacent criticals (unreachable, crafted directly). *)
  let bad =
    { s with
      St.procs =
        Array.map (fun p -> { p with St.region = St.Crit }) s.St.procs }
  in
  Alcotest.(check bool) "adjacent criticals detected" false
    (LR.Invariant.neighbors_exclusive bad)

(* ------------------------------------------------------------------ *)
(* Proof: the five arrows and their composition at n = 3 *)

let test_zeno_well_formed () =
  let inst = Lazy.force inst in
  Alcotest.(check bool) "digital-clock encoding is zeno-free" true
    (Mdp.Zeno.is_well_formed inst.LR.Proof.arena)

let test_proof_state_count () =
  let inst = Lazy.force inst in
  (* Deterministic regression pin for the n=3, g=1, k=1 instance. *)
  Alcotest.(check int) "reachable states" 8092
    (Mdp.Explore.num_states inst.LR.Proof.expl)

let test_proof_arrows () =
  let inst = Lazy.force inst in
  let arrows = LR.Proof.arrows inst in
  Alcotest.(check int) "five arrows" 5 (List.length arrows);
  List.iter
    (fun a ->
       Alcotest.(check bool)
         (Printf.sprintf "%s holds (attained %s >= %s)" a.LR.Proof.label
            (Q.to_string a.LR.Proof.attained) (Q.to_string a.LR.Proof.prob))
         true
         (a.LR.Proof.claim <> None);
       Alcotest.(check bool) "attained is a probability" true
         (Q.is_probability a.LR.Proof.attained);
       Alcotest.(check bool) "nonempty pre" true (a.LR.Proof.pre_states > 0))
    arrows

let test_proof_arrow_minima () =
  (* Exact regression pins for the attained minima at n=3, g=1, k=1. *)
  let inst = Lazy.force inst in
  let attained label =
    let a =
      List.find (fun a -> a.LR.Proof.label = label) (LR.Proof.arrows inst)
    in
    a.LR.Proof.attained
  in
  check_q "A.1" Q.one (attained "A.1");
  check_q "A.3" Q.one (attained "A.3");
  check_q "A.15" Q.one (attained "A.15");
  check_q "A.14" Q.one (attained "A.14");
  check_q "A.11" Q.half (attained "A.11")

let test_proof_composed () =
  let inst = Lazy.force inst in
  match LR.Proof.composed inst with
  | Error e -> Alcotest.failf "composition failed: %s" e
  | Ok claim ->
    check_q "time 13" (Q.of_int 13) (Core.Claim.time claim);
    check_q "prob 1/8" (Q.of_ints 1 8) (Core.Claim.prob claim);
    Alcotest.(check string) "from T" "T" (Core.Pred.name (Core.Claim.pre claim));
    Alcotest.(check string) "to C" "C" (Core.Pred.name (Core.Claim.post claim));
    Alcotest.(check bool) "machine checked end to end" true
      (Core.Claim.fully_verified claim)

let test_proof_direct_bound () =
  let inst = Lazy.force inst in
  let direct = LR.Proof.direct_bound inst in
  check_q "exact direct bound at n=3" (Q.of_ints 15 16) direct;
  Alcotest.(check bool) "far above the paper's 1/8" true
    (Q.geq direct (Q.of_ints 1 8))

let test_proof_expected_bound () =
  let b = LR.Proof.expected_bound () in
  check_q "63 units" (Q.of_int 63) (Core.Expected.value b)

let test_proof_expected_measured () =
  let inst = Lazy.force inst in
  let measured = LR.Proof.max_expected_time inst in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f below the derived bound 63" measured)
    true
    (measured < 63.0);
  Alcotest.(check bool) "positive" true (measured > 1.0)

let test_proof_liveness () =
  let inst = Lazy.force inst in
  Alcotest.(check bool) "Zuck-Pnueli-style liveness" true
    (LR.Proof.liveness_holds inst)

(* ------------------------------------------------------------------ *)
(* Topologies (the paper's "more general than rings" extension) *)

let test_topology_constructors () =
  let ring = LR.Topology.ring 3 in
  Alcotest.(check int) "ring procs" 3 (LR.Topology.num_procs ring);
  Alcotest.(check int) "ring res" 3 (LR.Topology.num_resources ring);
  Alcotest.(check int) "ring right of 0" 0 (LR.Topology.res ring 0 St.R);
  Alcotest.(check int) "ring left of 0" 2 (LR.Topology.res ring 0 St.L);
  let line = LR.Topology.line 3 in
  Alcotest.(check int) "line res" 4 (LR.Topology.num_resources line);
  Alcotest.(check int) "line end contenders" 1
    (List.length (LR.Topology.contenders line 0));
  Alcotest.(check int) "line middle contenders" 2
    (List.length (LR.Topology.contenders line 1));
  let star = LR.Topology.star 4 in
  Alcotest.(check int) "star hub contenders" 4
    (List.length (LR.Topology.contenders star 0));
  Alcotest.(check int) "star leaf contenders" 1
    (List.length (LR.Topology.contenders star 1))

let test_topology_validation () =
  Alcotest.(check bool) "identical resources rejected" true
    (try
       ignore (LR.Topology.make ~name:"bad" ~num_resources:2 [| (0, 0); (0, 1) |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (LR.Topology.make ~name:"bad" ~num_resources:2 [| (0, 5); (0, 1) |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "single process rejected" true
    (try
       ignore (LR.Topology.make ~name:"bad" ~num_resources:2 [| (0, 1) |]);
       false
     with Invalid_argument _ -> true)

let test_topology_ring_equivalence () =
  (* The generalized automaton over Topology.ring n must agree with the
     ring automaton, and the generalized goodness with the ring one, on
     every reachable state. *)
  let inst = Lazy.force inst in
  let expl = inst.LR.Proof.expl in
  let topo = LR.Topology.ring 3 in
  let gen = Mdp.Explore.run (Au.make_general ~topo ~g:1 ~k:1) in
  Alcotest.(check int) "same state count" (Mdp.Explore.num_states expl)
    (Mdp.Explore.num_states gen);
  let g_gen = LR.Regions.g_of topo in
  for i = 0 to Mdp.Explore.num_states expl - 1 do
    let st = Mdp.Explore.state expl i in
    if Core.Pred.mem LR.Regions.g st <> Core.Pred.mem g_gen st then
      Alcotest.failf "goodness disagrees at %s"
        (Format.asprintf "%a" LR.State.pp st)
  done

let test_topology_line_star_arrows () =
  List.iter
    (fun topo ->
       let tinst = LR.Proof.build_topo ~topo () in
       Alcotest.(check bool)
         (LR.Topology.name topo ^ " invariant") true
         (LR.Proof.invariant_topo tinst = None);
       List.iter
         (fun a ->
            Alcotest.(check bool)
              (Printf.sprintf "%s %s holds" (LR.Topology.name topo)
                 a.LR.Proof.label)
              true (a.LR.Proof.claim <> None))
         (LR.Proof.arrows_topo tinst);
       (match LR.Proof.composed_topo tinst with
        | Ok claim ->
          check_q "composed prob" (Q.of_ints 1 8) (Core.Claim.prob claim)
        | Error e -> Alcotest.failf "composition failed: %s" e))
    [ LR.Topology.line 2; LR.Topology.star 2 ]

let test_worst_adversary_replay () =
  let inst = Lazy.force inst in
  let predicted, scheduler = LR.Proof.worst_adversary inst in
  Alcotest.(check bool) "prediction positive and below 63" true
    (predicted > 1.0 && predicted < 63.0);
  let setup =
    { Sim.Monte_carlo.pa = Mdp.Explore.automaton inst.LR.Proof.expl;
      scheduler;
      duration = Au.duration;
      start = St.all_trying ~n:3 ~g:1 ~k:1 }
  in
  let summary, missed =
    Sim.Monte_carlo.estimate_time setup ~target:(Core.Pred.mem LR.Regions.c)
      ~trials:2000 ~seed:77 ()
  in
  Alcotest.(check int) "no missed" 0 missed;
  let mean = Proba.Stat.Summary.mean summary in
  Alcotest.(check bool)
    (Printf.sprintf "simulation %.3f matches prediction %.3f" mean predicted)
    true
    (Float.abs (mean -. predicted) < 0.35)

let random_topology seed =
  (* 2-3 processes over 3-4 resources, arbitrary distinct pairs. *)
  let rng = Proba.Rng.create ~seed in
  let num_res = 3 + Proba.Rng.int rng 2 in
  let n = 2 + Proba.Rng.int rng 2 in
  let assignments =
    Array.init n (fun _ ->
        let l = Proba.Rng.int rng num_res in
        let r = (l + 1 + Proba.Rng.int rng (num_res - 1)) mod num_res in
        (l, r))
  in
  LR.Topology.make ~name:(Printf.sprintf "random(%d)" seed)
    ~num_resources:num_res assignments

let prop_random_topologies_sound =
  (* The protocol runs on ANY two-resource conflict topology: the
     generalized resource invariant holds exhaustively, the encoding is
     zeno-free, and the deterministic arrows A.1/A.3 keep their paper
     constants. *)
  QCheck.Test.make ~name:"random topologies: invariant + A.1 + A.3"
    ~count:6 (QCheck.int_range 0 10_000) (fun seed ->
        let topo = random_topology seed in
        let tinst = LR.Proof.build_topo ~max_states:400_000 ~topo () in
        let arrows = LR.Proof.arrows_topo tinst in
        let holds label =
          match List.find_opt (fun a -> a.LR.Proof.label = label) arrows with
          | Some a -> a.LR.Proof.claim <> None
          | None -> false
        in
        LR.Proof.invariant_topo tinst = None
        && Mdp.Zeno.is_well_formed tinst.LR.Proof.tarena
        && holds "A.1" && holds "A.3")

(* ------------------------------------------------------------------ *)
(* Schedulers (simulation smoke tests at n = 4, beyond the checker) *)

let sim_setup ~n scheduler_of =
  let params = { Au.n; g = 1; k = 1 } in
  let pa = Au.make params in
  { Sim.Monte_carlo.pa;
    scheduler = scheduler_of pa;
    duration = Au.duration;
    start = St.all_trying ~n ~g:1 ~k:1 }

let test_schedulers_reach_critical () =
  List.iter
    (fun (name, setup) ->
       let prop =
         Sim.Monte_carlo.estimate_reach setup
           ~target:(Core.Pred.mem LR.Regions.c)
           ~within:26 ~trials:300 ~seed:7
       in
       Alcotest.(check bool)
         (Printf.sprintf "%s mostly reaches C within 26" name)
         true
         (Proba.Stat.Proportion.estimate prop > 0.5))
    [ ("uniform", sim_setup ~n:4 LR.Schedulers.uniform);
      ("eager", sim_setup ~n:4 LR.Schedulers.eager);
      ("delayer", sim_setup ~n:4 LR.Schedulers.delayer);
      ("starver", sim_setup ~n:4 LR.Schedulers.starver);
      ("round-robin", sim_setup ~n:4 LR.Schedulers.round_robin) ]

let test_scheduler_of_ranks () =
  let params = { Au.n = 3; g = 1; k = 1 } in
  let pa = Au.make params in
  (* A table that prefers ticking reproduces the delayer's behavior on
     the first decision. *)
  let delay_table = Array.make LR.Schedulers.num_classes 5 in
  delay_table.(0) <- 0;
  let sched = LR.Schedulers.of_ranks pa delay_table in
  let rng = Proba.Rng.create ~seed:31 in
  (match sched rng (Core.Exec.initial (St.all_trying ~n:3 ~g:1 ~k:1)) with
   | Some step ->
     Alcotest.(check bool) "prefers tick" true
       (step.Core.Pa.action = Au.Tick)
   | None -> Alcotest.fail "expected a step");
  Alcotest.(check bool) "wrong size rejected" true
    (try
       let (_ : LR.Schedulers.t) = LR.Schedulers.of_ranks pa [| 1; 2 |] in
       false
     with Invalid_argument _ -> true)

let test_schedulers_expected_time_below_bound () =
  List.iter
    (fun (name, setup) ->
       let summary, missed =
         Sim.Monte_carlo.estimate_time setup
           ~target:(Core.Pred.mem LR.Regions.c)
           ~trials:300 ~seed:11 ~max_steps:100_000 ()
       in
       Alcotest.(check int) (name ^ ": no missed trials") 0 missed;
       Alcotest.(check bool)
         (Printf.sprintf "%s: mean %.2f below 63" name
            (Proba.Stat.Summary.mean summary))
         true
         (Proba.Stat.Summary.mean summary < 63.0))
    [ ("uniform", sim_setup ~n:4 LR.Schedulers.uniform);
      ("starver", sim_setup ~n:4 LR.Schedulers.starver) ]

let test_scheduler_paper_bound_on_simulation () =
  (* The composed claim promises >= 1/8 within 13 for every adversary:
     every simulated scheduler's estimate must clear it comfortably. *)
  List.iter
    (fun (name, setup) ->
       let prop =
         Sim.Monte_carlo.estimate_reach setup
           ~target:(Core.Pred.mem LR.Regions.c)
           ~within:13 ~trials:400 ~seed:23
       in
       let lo, _ = Proba.Stat.Proportion.wilson_ci prop in
       Alcotest.(check bool)
         (Printf.sprintf "%s clears 1/8 (low CI %.3f)" name lo)
         true (lo > 0.125))
    [ ("uniform", sim_setup ~n:4 LR.Schedulers.uniform);
      ("delayer", sim_setup ~n:4 LR.Schedulers.delayer);
      ("starver", sim_setup ~n:4 LR.Schedulers.starver) ]

let () =
  Alcotest.run "lehmann-rabin"
    [ ("state",
       [ Alcotest.test_case "opp" `Quick test_state_opp;
         Alcotest.test_case "resource index" `Quick test_state_resource_index;
         Alcotest.test_case "holds" `Quick test_state_holds;
         Alcotest.test_case "ready" `Quick test_state_ready;
         Alcotest.test_case "initial" `Quick test_state_initial;
         Alcotest.test_case "all_trying" `Quick test_state_all_trying ]);
      ("automaton",
       [ Alcotest.test_case "start enabled" `Quick test_auto_start_enabled;
         Alcotest.test_case "flip distribution" `Quick
           test_auto_flip_distribution;
         Alcotest.test_case "wait takes free resource" `Quick
           test_auto_wait_takes_free_resource;
         Alcotest.test_case "wait busy-waits" `Quick test_auto_wait_busy_waits;
         Alcotest.test_case "second success/failure" `Quick
           test_auto_second_success_and_failure;
         Alcotest.test_case "drop releases" `Quick test_auto_drop_releases;
         Alcotest.test_case "exit protocol" `Quick test_auto_exit_protocol;
         Alcotest.test_case "tick blocked by deadline" `Quick
           test_auto_tick_blocked_by_deadline;
         Alcotest.test_case "budget blocks steps" `Quick
           test_auto_budget_blocks_steps;
         Alcotest.test_case "tick refreshes budget" `Quick
           test_auto_tick_refreshes;
         Alcotest.test_case "action signature" `Quick
           test_auto_external_actions ]);
      ("regions",
       [ Alcotest.test_case "T and C" `Quick test_regions_t_c;
         Alcotest.test_case "RT" `Quick test_regions_rt;
         Alcotest.test_case "F and P" `Quick test_regions_f_p;
         Alcotest.test_case "good processes" `Quick test_regions_good;
         Alcotest.test_case "good vs drop neighbor" `Quick
           test_regions_good_drop_neighbor ]);
      ("invariant",
       [ Alcotest.test_case "Lemma 6.1 exhaustive" `Quick
           test_invariant_exhaustive;
         Alcotest.test_case "detects corruption" `Quick
           test_invariant_detects_corruption;
         Alcotest.test_case "neighbor exclusion" `Quick
           test_invariant_neighbor_crit ]);
      ("proof",
       [ Alcotest.test_case "zeno-free encoding" `Quick
           test_zeno_well_formed;
         Alcotest.test_case "state count pin" `Quick test_proof_state_count;
         Alcotest.test_case "five arrows hold" `Quick test_proof_arrows;
         Alcotest.test_case "attained minima pins" `Quick
           test_proof_arrow_minima;
         Alcotest.test_case "composed T -13->_1/8 C" `Quick
           test_proof_composed;
         Alcotest.test_case "direct bound 15/16" `Quick
           test_proof_direct_bound;
         Alcotest.test_case "expected bound 63" `Quick
           test_proof_expected_bound;
         Alcotest.test_case "measured expected below bound" `Quick
           test_proof_expected_measured;
         Alcotest.test_case "liveness baseline" `Quick test_proof_liveness ]);
      ("topology",
       [ Alcotest.test_case "constructors" `Quick
           test_topology_constructors;
         Alcotest.test_case "validation" `Quick test_topology_validation;
         Alcotest.test_case "ring equivalence" `Quick
           test_topology_ring_equivalence;
         Alcotest.test_case "line/star arrows" `Quick
           test_topology_line_star_arrows;
         Alcotest.test_case "worst adversary replay" `Quick
           test_worst_adversary_replay;
         QCheck_alcotest.to_alcotest prop_random_topologies_sound ]);
      ("schedulers",
       [ Alcotest.test_case "reach critical" `Quick
           test_schedulers_reach_critical;
         Alcotest.test_case "of_ranks" `Quick test_scheduler_of_ranks;
         Alcotest.test_case "expected time below bound" `Quick
           test_schedulers_expected_time_below_bound;
         Alcotest.test_case "paper bound on simulations" `Quick
           test_scheduler_paper_bound_on_simulation ]) ]
