(* Tests for the model linter: deliberately broken fixture automata
   asserting that each diagnostic code fires with the right severity,
   plus a clean-model test asserting the four paper case studies lint
   without findings. *)

module Q = Proba.Rational
module D = Proba.Dist
module A = Analysis
module Diag = Analysis.Diagnostic
module Report = Analysis.Report

let lint ?is_tick ?accept_terminal ?claims ?plan ?fault_view ?max_states
    ?max_equal_pairs name pa =
  A.run
    (A.config ?is_tick ?accept_terminal ?claims ?plan ?fault_view
       ?max_states ?max_equal_pairs ~name pa)

let check_mem name code report =
  Alcotest.(check bool) (name ^ " fires") true (Report.mem code report)

let check_clean name report =
  Alcotest.(check int) (name ^ ": no errors") 0 (Report.errors report);
  Alcotest.(check int) (name ^ ": no warnings") 0 (Report.warnings report)

(* ------------------------------------------------------------------ *)
(* Broken fixtures *)

(* PA001: a step whose outcome weights sum to 5/6. *)
let test_unnormalized () =
  let enabled = function
    | 0 ->
      [ { Core.Pa.action = "leak";
          dist = D.unsafe_make [ (1, Q.half); (2, Q.of_ints 1 3) ] } ]
    | _ -> []
  in
  let pa =
    Core.Pa.make ~start:[ 0 ] ~enabled
      ~pp_state:(fun fmt -> Format.fprintf fmt "s%d") ()
  in
  let report = lint ~accept_terminal:(fun _ -> true) "unnormalized" pa in
  check_mem "PA001" Diag.PA001 report;
  Alcotest.(check bool) "error severity" true (Report.mem_error Diag.PA001 report);
  Alcotest.(check int) "exit 1" 1 (Report.exit_code report);
  let json = A.Json.to_string (Report.to_json report) in
  Alcotest.(check bool) "code in json" true
    (Astring.String.is_infix ~affix:"\"PA001\"" json)

(* PA002: duplicate outcomes and a zero-weight outcome; weights still
   sum to one so PA001 stays silent. *)
let test_zero_and_duplicate () =
  let enabled = function
    | 0 ->
      [ { Core.Pa.action = "flip";
          dist =
            D.unsafe_make
              [ (1, Q.half); (1, Q.of_ints 1 4); (2, Q.of_ints 1 4);
                (3, Q.zero) ] } ]
    | _ -> []
  in
  let pa = Core.Pa.make ~start:[ 0 ] ~enabled () in
  let report = lint ~accept_terminal:(fun _ -> true) "zero-dup" pa in
  check_mem "PA002" Diag.PA002 report;
  Alcotest.(check bool) "PA001 silent" false (Report.mem Diag.PA001 report);
  Alcotest.(check bool) "warnings only" false (Report.has_errors report);
  Alcotest.(check int) "strict exit 1" 1
    (Report.exit_code ~strict:true report)

(* PA003: equal_state identifies values modulo 2, but the default
   hash_state tells 0/2 apart, so exploration interns them twice. *)
let test_equal_hash_disagreement () =
  let enabled = function
    | i when i < 3 -> [ { Core.Pa.action = "next"; dist = D.point (i + 1) } ]
    | _ -> []
  in
  let pa =
    Core.Pa.make ~equal_state:(fun a b -> a mod 2 = b mod 2)
      ~start:[ 0 ] ~enabled ()
  in
  let report = lint ~accept_terminal:(fun _ -> true) "hash-vs-equal" pa in
  check_mem "PA003" Diag.PA003 report;
  Alcotest.(check bool) "error severity" true
    (Report.mem_error Diag.PA003 report)

(* PA010: a reachable stuck state the model does not accept. *)
let test_deadlock () =
  let enabled = function
    | 0 -> [ { Core.Pa.action = "fall"; dist = D.coin 1 2 } ]
    | 1 -> [ { Core.Pa.action = "loop"; dist = D.point 1 } ]
    | _ -> []  (* state 2 is stuck *)
  in
  let pa = Core.Pa.make ~start:[ 0 ] ~enabled () in
  let strict = lint ~accept_terminal:(fun s -> s = 1) "deadlock" pa in
  check_mem "PA010" Diag.PA010 strict;
  Alcotest.(check bool) "error with classifier" true
    (Report.mem_error Diag.PA010 strict);
  (* without a classifier the same state is only a warning *)
  let lax = lint "deadlock-lax" pa in
  check_mem "PA010 (lax)" Diag.PA010 lax;
  Alcotest.(check bool) "warning without classifier" false
    (Report.has_errors lax)

(* PA011: equal_action identifies the two actions, is_external does
   not classify them consistently. *)
let test_signature_violation () =
  let enabled = function
    | 0 ->
      [ { Core.Pa.action = `Send; dist = D.point 1 };
        { Core.Pa.action = `Recv; dist = D.point 1 } ]
    | _ -> []
  in
  let pa =
    Core.Pa.make ~equal_action:(fun _ _ -> true)
      ~is_external:(fun a -> a = `Send) ~start:[ 0 ] ~enabled ()
  in
  let report = lint ~accept_terminal:(fun _ -> true) "signature" pa in
  check_mem "PA011" Diag.PA011 report

(* PA012: a hand-rolled fault wrapper that marks process 1 crashed in
   its state yet forgets to filter process 1's steps out of [enabled];
   the fault-isolation check must catch the leak.  States are
   [(pos, crashed)], actions name the acting process. *)
let test_fault_leak () =
  let view = ((fun (_, crashed) -> crashed), fun i -> Some i) in
  let step pos crashed i =
    { Core.Pa.action = i; dist = D.point (pos + 1, crashed) }
  in
  let leaky (pos, crashed) =
    if pos >= 2 then [] else List.map (step pos crashed) [ 0; 1 ]
  in
  let pa = Core.Pa.make ~start:[ (0, [ 1 ]) ] ~enabled:leaky () in
  let report =
    lint ~accept_terminal:(fun _ -> true) ~fault_view:view "fault-leak" pa
  in
  check_mem "PA012" Diag.PA012 report;
  Alcotest.(check bool) "error severity" true
    (Report.mem_error Diag.PA012 report);
  (* the corrected wrapper really suppresses the crashed process *)
  let sound (pos, crashed) =
    if pos >= 2 then []
    else
      List.filter_map
        (fun i ->
           if List.mem i crashed then None else Some (step pos crashed i))
        [ 0; 1 ]
  in
  let fixed = Core.Pa.make ~start:[ (0, [ 1 ]) ] ~enabled:sound () in
  let ok =
    lint ~accept_terminal:(fun _ -> true) ~fault_view:view "fault-sound"
      fixed
  in
  Alcotest.(check bool) "PA012 silent on the fix" false
    (Report.mem Diag.PA012 ok)

(* PA020: a zero-time coin-flip loop -- probability mass cycles
   between states 0 and 1 without any tick. *)
let test_zero_time_cycle () =
  let enabled = function
    | 0 -> [ { Core.Pa.action = "flip"; dist = D.coin 1 2 } ]
    | 1 -> [ { Core.Pa.action = "back"; dist = D.point 0 } ]
    | _ -> [ { Core.Pa.action = "tick"; dist = D.point 2 } ]
  in
  let pa = Core.Pa.make ~start:[ 0 ] ~enabled () in
  let report = lint ~is_tick:(fun a -> a = "tick") "zeno" pa in
  check_mem "PA020" Diag.PA020 report;
  Alcotest.(check bool) "error severity" true
    (Report.mem_error Diag.PA020 report)

(* PA021: the adversary can self-loop in the start state forever, so
   no adversary-independent time bound exists; there is no
   probabilistic zero-time cycle, so PA020 must stay silent. *)
let test_tick_blockable () =
  let enabled = function
    | 0 ->
      [ { Core.Pa.action = "stay"; dist = D.point 0 };
        { Core.Pa.action = "tick"; dist = D.point 1 } ]
    | _ -> [ { Core.Pa.action = "tick"; dist = D.point 1 } ]
  in
  let pa = Core.Pa.make ~start:[ 0 ] ~enabled () in
  let report = lint ~is_tick:(fun a -> a = "tick") "blockable" pa in
  check_mem "PA021" Diag.PA021 report;
  Alcotest.(check bool) "PA020 silent" false (Report.mem Diag.PA020 report);
  Alcotest.(check bool) "error severity" true
    (Report.mem_error Diag.PA021 report)

(* The Walker discipline (deadline c, budget b) is exactly what makes
   every adversary tick: the same shape must pass PA020/PA021. *)
let walker_enabled = function
  | `Done -> [ { Core.Pa.action = "tick"; dist = D.point `Done } ]
  | `Walk (c, b) ->
    let tick =
      if c > 0 then
        [ { Core.Pa.action = "tick"; dist = D.point (`Walk (c - 1, 1)) } ]
      else []
    in
    let flip =
      if b > 0 then
        [ { Core.Pa.action = "flip";
            dist = D.coin `Done (`Walk (1, b - 1)) } ]
      else []
    in
    tick @ flip

let walker_pa = Core.Pa.make ~start:[ `Walk (1, 1) ] ~enabled:walker_enabled ()

let test_walker_time_clean () =
  let report = lint ~is_tick:(fun a -> a = "tick") "walker" walker_pa in
  check_clean "walker" report

(* CL001: a composition planned under a schema that is not marked
   execution closed; Claim.compose itself must also keep refusing. *)
let test_compose_not_closed () =
  let adhoc = Core.Schema.make ~execution_closed:false "adhoc" in
  let u = Core.Pred.make "U" (fun s -> s = `Walk (1, 1)) in
  let v = Core.Pred.make "V" (fun _ -> true) in
  let w = Core.Pred.make "W" (fun s -> s = `Done) in
  let c1 =
    Core.Claim.axiom ~reason:"fixture" ~schema:adhoc ~pre:u ~post:v
      ~time:Q.one ~prob:Q.half ()
  in
  let c2 =
    Core.Claim.axiom ~reason:"fixture" ~schema:adhoc ~pre:v ~post:w
      ~time:Q.one ~prob:Q.half ()
  in
  (match Core.Claim.compose c1 c2 with
   | exception Core.Claim.Rule_violation _ -> ()
   | _ -> Alcotest.fail "compose accepted a non-closed schema");
  let report =
    lint ~is_tick:(fun a -> a = "tick")
      ~plan:[ ("phase1;phase2", c1, c2) ]
      "bad-plan" walker_pa
  in
  check_mem "CL001" Diag.CL001 report;
  Alcotest.(check bool) "error severity" true
    (Report.mem_error Diag.CL001 report);
  (* the same plan under an execution-closed schema is fine *)
  let closed = Core.Schema.unit_time in
  let c1' =
    Core.Claim.axiom ~reason:"fixture" ~schema:closed ~pre:u ~post:v
      ~time:Q.one ~prob:Q.half ()
  and c2' =
    Core.Claim.axiom ~reason:"fixture" ~schema:closed ~pre:v ~post:w
      ~time:Q.one ~prob:Q.half ()
  in
  let ok_plan =
    lint ~is_tick:(fun a -> a = "tick")
      ~claims:[ ("composed", Core.Claim.compose c1' c2') ]
      ~plan:[ ("phase1;phase2", c1', c2') ]
      "good-plan" walker_pa
  in
  Alcotest.(check bool) "CL001 silent" false (Report.mem Diag.CL001 ok_plan)

(* CL002: pre- and post-sets no reachable state satisfies. *)
let test_unsatisfiable_claim () =
  let nowhere = Core.Pred.make "nowhere" (fun _ -> false) in
  let all = Core.Pred.make "all" (fun _ -> true) in
  let vacuous =
    Core.Claim.axiom ~reason:"fixture" ~schema:Core.Schema.unit_time
      ~pre:nowhere ~post:all ~time:Q.one ~prob:Q.one ()
  in
  let dead_post =
    Core.Claim.axiom ~reason:"fixture" ~schema:Core.Schema.unit_time
      ~pre:all ~post:nowhere ~time:Q.one ~prob:Q.half ()
  in
  let report =
    lint ~is_tick:(fun a -> a = "tick")
      ~claims:[ ("vacuous", vacuous); ("dead-post", dead_post) ]
      "unsat" walker_pa
  in
  check_mem "CL002" Diag.CL002 report;
  Alcotest.(check bool) "error severity" true
    (Report.mem_error Diag.CL002 report)

(* PA000: the exploration bound is respected and reported. *)
let test_exploration_bound () =
  let report = lint ~max_states:2 "bounded" walker_pa in
  check_mem "PA000" Diag.PA000 report;
  Alcotest.(check bool) "no errors" false (Report.has_errors report)

(* ------------------------------------------------------------------ *)
(* Clean models: the four paper case studies *)

let test_paper_models_clean () =
  let lr = Lehmann_rabin.Automaton.make { n = 2; g = 1; k = 1 } in
  check_clean "lehmann-rabin"
    (lint ~is_tick:Lehmann_rabin.Automaton.is_tick "lr" lr);
  let ir = Itai_rodeh.Automaton.make { n = 2; g = 1; k = 1 } in
  check_clean "itai-rodeh"
    (lint ~is_tick:Itai_rodeh.Automaton.is_tick "election" ir);
  let sc = Shared_coin.Automaton.make { n = 1; bound = 2; g = 1; k = 1 } in
  check_clean "shared-coin"
    (lint ~is_tick:Shared_coin.Automaton.is_tick "coin" sc);
  let bo =
    Ben_or.Automaton.make ~initial:[| false; true; true |]
      { n = 3; f = 1; cap = 1; g = 1; k = 1 }
  in
  check_clean "ben-or" (lint ~is_tick:Ben_or.Automaton.is_tick "consensus" bo)

(* ------------------------------------------------------------------ *)
(* Infrastructure units: JSON, capping, report algebra, claim views *)

let test_json_escaping () =
  let j =
    A.Json.Obj
      [ ("k\"ey", A.Json.Str "a\\b\nc\td\x01");
        ("xs", A.Json.Arr [ A.Json.Int 1; A.Json.Bool false; A.Json.Null ]) ]
  in
  Alcotest.(check string) "escaped"
    "{\"k\\\"ey\":\"a\\\\b\\nc\\td\\u0001\",\"xs\":[1,false,null]}"
    (A.Json.to_string j)

let test_diagnostic_cap () =
  let mk i =
    Diag.v Diag.PA001 Diag.Error ~model:"m" (Printf.sprintf "d%d" i)
  in
  let ds = List.init 10 mk in
  let capped = Diag.cap ~limit:3 ds in
  Alcotest.(check int) "3 kept + 1 note" 4 (List.length capped);
  let note = List.nth capped 3 in
  Alcotest.(check bool) "note is info" true
    (note.Diag.severity = Diag.Info);
  Alcotest.(check (list string)) "uncapped untouched"
    (List.map (fun d -> d.Diag.message) (Diag.cap ~limit:3 [ mk 0 ]))
    [ "d0" ]

let test_report_algebra () =
  let stats model =
    { Report.model; states = 1; choices = 1; branches = 1; skipped = [] }
  in
  let err = Diag.v Diag.PA001 Diag.Error ~model:"a" "boom" in
  let warn = Diag.v Diag.PA002 Diag.Warning ~model:"b" "meh" in
  let r =
    Report.merge (Report.make (stats "a") [ err ])
      (Report.make (stats "b") [ warn ])
  in
  Alcotest.(check int) "errors" 1 (Report.errors r);
  Alcotest.(check int) "warnings" 1 (Report.warnings r);
  Alcotest.(check int) "two models" 2 (List.length (Report.stats r));
  Alcotest.(check int) "exit" 1 (Report.exit_code r);
  Alcotest.(check int) "empty exit" 0 (Report.exit_code Report.empty)

let test_claim_introspection () =
  let u = Core.Pred.make "U" (fun _ -> true) in
  let v = Core.Pred.make "V" (fun _ -> true) in
  let w = Core.Pred.make "W" (fun _ -> true) in
  let mk pre post =
    Core.Claim.axiom ~reason:"r" ~schema:Core.Schema.unit_time ~pre ~post
      ~time:Q.one ~prob:Q.half ()
  in
  let composed = Core.Claim.compose (mk u v) (mk v w) in
  (match Core.Claim.rule composed with
   | Core.Claim.Composed (a, b) ->
     Alcotest.(check string) "left pre" "U" (Core.Pred.name (Core.Claim.pre a));
     Alcotest.(check string) "right post" "W"
       (Core.Pred.name (Core.Claim.post b))
   | _ -> Alcotest.fail "expected a compose node");
  Alcotest.(check int) "two children" 2
    (List.length (Core.Claim.subclaims composed));
  let nodes = ref 0 in
  Core.Claim.iter_derivation (fun _ -> incr nodes) composed;
  Alcotest.(check int) "three nodes" 3 !nodes

(* ------------------------------------------------------------------ *)
(* Randomized JSON round trips.

   The server speaks Analysis.Json on the wire, so [of_string] must
   invert [to_string] on every tree the emitter can produce.  The
   generator leans on the hostile corners: strings over the full byte
   range (quotes, backslashes, control characters that serialize as
   \uXXXX, multi-byte UTF-8 fragments), deep nesting, duplicate object
   keys.  Two deliberate exclusions, both emitter normalizations rather
   than bugs: integral floats serialize without a fraction and so parse
   back as [Int], and NaN/infinity serialize as [null]. *)

let json_gen =
  let open QCheck.Gen in
  let any_string =
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12)
  in
  let leaf =
    oneof
      [ return A.Json.Null;
        map (fun b -> A.Json.Bool b) bool;
        map (fun i -> A.Json.Int i) int;
        (* m + 0.3 is never integral, so the fraction survives
           serialization and the value parses back as [Num]. *)
        map
          (fun m -> A.Json.Num (float_of_int m +. 0.3))
          (int_range (-1_000_000) 1_000_000);
        map (fun s -> A.Json.Str s) any_string ]
  in
  sized
  @@ fix (fun self size ->
      if size <= 0 then leaf
      else
        frequency
          [ (3, leaf);
            ( 1,
              map
                (fun xs -> A.Json.Arr xs)
                (list_size (int_bound 4) (self (size / 2))) );
            ( 1,
              map
                (fun kvs -> A.Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair any_string (self (size / 2)))) ) ])

let json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"of_string inverts to_string"
    (QCheck.make json_gen ~print:(fun j -> A.Json.to_string j))
    (fun j ->
       match A.Json.of_string (A.Json.to_string j) with
       | Ok j' -> j' = j
       | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg)

let test_json_unicode_escapes () =
  (* \uXXXX escapes decode to UTF-8 bytes; re-serializing keeps the raw
     bytes (only control characters are re-escaped). *)
  let cases =
    [ ("\"\\u0041\"", "A");
      ("\"\\u00e9\"", "\xc3\xa9");
      ("\"\\u20ac\"", "\xe2\x82\xac");
      ("\"a\\u0000b\"", "a\x00b") ]
  in
  List.iter
    (fun (doc, expect) ->
       match A.Json.of_string doc with
       | Ok (A.Json.Str s) -> Alcotest.(check string) doc expect s
       | Ok _ -> Alcotest.fail (doc ^ ": not a string")
       | Error e -> Alcotest.fail (doc ^ ": " ^ e))
    cases

let test_json_deep_nesting () =
  let deep = ref (A.Json.Int 0) in
  for _ = 1 to 200 do
    deep := A.Json.Arr [ A.Json.Obj [ ("k", !deep) ] ]
  done;
  match A.Json.of_string (A.Json.to_string !deep) with
  | Ok j -> Alcotest.(check bool) "deep round trip" true (j = !deep)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [ ( "fixtures",
        [ Alcotest.test_case "PA001 unnormalized" `Quick test_unnormalized;
          Alcotest.test_case "PA002 zero/duplicate" `Quick
            test_zero_and_duplicate;
          Alcotest.test_case "PA003 equal vs hash" `Quick
            test_equal_hash_disagreement;
          Alcotest.test_case "PA010 deadlock" `Quick test_deadlock;
          Alcotest.test_case "PA011 signature" `Quick
            test_signature_violation;
          Alcotest.test_case "PA012 fault leak" `Quick test_fault_leak;
          Alcotest.test_case "PA020 zero-time cycle" `Quick
            test_zero_time_cycle;
          Alcotest.test_case "PA021 tick blockable" `Quick
            test_tick_blockable;
          Alcotest.test_case "CL001 non-closed compose" `Quick
            test_compose_not_closed;
          Alcotest.test_case "CL002 unsatisfiable sets" `Quick
            test_unsatisfiable_claim;
          Alcotest.test_case "PA000 exploration bound" `Quick
            test_exploration_bound ] );
      ( "clean models",
        [ Alcotest.test_case "walker timing clean" `Quick
            test_walker_time_clean;
          Alcotest.test_case "paper case studies" `Quick
            test_paper_models_clean ] );
      ( "infrastructure",
        [ Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "diagnostic cap" `Quick test_diagnostic_cap;
          Alcotest.test_case "report algebra" `Quick test_report_algebra;
          Alcotest.test_case "claim introspection" `Quick
            test_claim_introspection ] );
      ( "json round trips",
        [ QCheck_alcotest.to_alcotest json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick
            test_json_unicode_escapes;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting ] ) ]
