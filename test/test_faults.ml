(* Tests for the fault-injection subsystem and the budgeted, gracefully
   degrading verification engines: spec/budget parsing, the Inject
   wrapper's invariants, partial exploration, budgeted Monte Carlo, and
   the end-to-end re-derivation of the Lehmann-Rabin bound under one
   crash. *)

module Q = Proba.Rational
module F = Faults.Fault
module I = Faults.Inject
module FL = Faults.Lr
module LR = Lehmann_rabin

(* ------------------------------------------------------------------ *)
(* Fault specs *)

let test_fault_spec () =
  Alcotest.(check bool) "none is none" true (F.is_none F.none);
  Alcotest.(check int) "total none" 0 (F.total F.none);
  let s = F.v ~crash:1 ~loss:2 () in
  Alcotest.(check int) "crash" 1 s.F.crash;
  Alcotest.(check int) "loss" 2 s.F.loss;
  Alcotest.(check int) "stuck" 0 s.F.stuck;
  Alcotest.(check int) "total" 3 (F.total s);
  Alcotest.(check bool) "not none" false (F.is_none s);
  (match F.v ~crash:(-1) () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative budget accepted")

let test_fault_of_string () =
  (match F.of_string "crash:1,loss:2" with
   | Ok s ->
     Alcotest.(check bool) "parsed" true (s = F.v ~crash:1 ~loss:2 ())
   | Error e -> Alcotest.fail e);
  (match F.of_string "none" with
   | Ok s -> Alcotest.(check bool) "none parses" true (F.is_none s)
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown kind rejected" true
    (Result.is_error (F.of_string "melt:1"));
  Alcotest.(check bool) "negative rejected" true
    (Result.is_error (F.of_string "crash:-1"));
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (F.of_string "crash:one"));
  (* round trip through to_string *)
  let s = F.v ~crash:1 ~stuck:3 () in
  (match F.of_string (F.to_string s) with
   | Ok s' -> Alcotest.(check bool) "round trip" true (s = s')
   | Error e -> Alcotest.fail e);
  Alcotest.(check string) "none prints none" "none" (F.to_string F.none)

let test_budget_of_string () =
  (match Core.Budget.of_string "states:100000,wall:30s,retries:4" with
   | Ok b ->
     Alcotest.(check bool) "states" true (b.Core.Budget.max_states = Some 100000);
     Alcotest.(check bool) "wall" true (b.Core.Budget.wall = Some 30.0);
     Alcotest.(check int) "retries" 4 b.Core.Budget.retries
   | Error e -> Alcotest.fail e);
  (match Core.Budget.of_string "wall:500ms" with
   | Ok b ->
     Alcotest.(check bool) "ms suffix" true (b.Core.Budget.wall = Some 0.5);
     Alcotest.(check bool) "states unset" true
       (b.Core.Budget.max_states = None)
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (Core.Budget.of_string "states:lots"));
  Alcotest.(check bool) "unknown dimension rejected" true
    (Result.is_error (Core.Budget.of_string "patience:3"))

(* ------------------------------------------------------------------ *)
(* The Inject wrapper on the real LR automaton *)

let lr_config ?(faults = F.v ~crash:1 ()) ?(release = true) () =
  { FL.params = { LR.Automaton.n = 3; g = 1; k = 1 }; faults; release }

let wrapped_start config =
  I.init ~budget:config.FL.faults (LR.State.all_trying ~n:3 ~g:1 ~k:1)

let test_inject_offers_crashes () =
  let config = lr_config () in
  let pa = FL.make config in
  let w = wrapped_start config in
  let steps = Core.Pa.enabled pa w in
  let crashes =
    List.filter
      (fun st -> match st.Core.Pa.action with
         | I.Crash _ -> true
         | _ -> false)
      steps
  in
  Alcotest.(check int) "one crash option per process" 3
    (List.length crashes);
  (* base behaviour survives alongside the injections *)
  Alcotest.(check bool) "base steps present" true
    (List.exists
       (fun st -> match st.Core.Pa.action with
          | I.Step _ -> true
          | _ -> false)
       steps)

let test_inject_crash_silences_process () =
  let config = lr_config () in
  let pa = FL.make config in
  let w = wrapped_start config in
  let crashed =
    match
      List.find_map
        (fun st -> match st.Core.Pa.action with
           | I.Crash 0 -> Some (fst (List.hd (Proba.Dist.support st.Core.Pa.dist)))
           | _ -> None)
        (Core.Pa.enabled pa w)
    with
    | Some w' -> w'
    | None -> Alcotest.fail "no crash step offered"
  in
  Alcotest.(check bool) "marked crashed" true (I.is_crashed crashed 0);
  Alcotest.(check (list int)) "faulted view" [ 0 ] (I.faulted crashed);
  Alcotest.(check int) "budget spent" 0 (I.remaining crashed).F.crash;
  (* no surviving step of the crashed process, and no second crash *)
  List.iter
    (fun st ->
       (match I.effective_proc FL.proc_of_action st.Core.Pa.action with
        | Some 0 -> Alcotest.fail "crashed process still steps"
        | Some _ | None -> ());
       match st.Core.Pa.action with
       | I.Crash _ -> Alcotest.fail "crash offered beyond the budget"
       | _ -> ())
    (Core.Pa.enabled pa crashed)

let test_inject_helpers () =
  Alcotest.(check bool) "crash is an injection" true
    (I.is_injection (I.Crash 0));
  Alcotest.(check bool) "step is not" false
    (I.is_injection (I.Step LR.Automaton.Tick));
  Alcotest.(check bool) "injections have no effective proc" true
    (I.effective_proc FL.proc_of_action (I.Lost 1) = None);
  Alcotest.(check int) "injections take zero time" 0
    (FL.duration (I.Crash 2));
  Alcotest.(check int) "tick keeps its duration" 1
    (FL.duration (I.Step LR.Automaton.Tick));
  Alcotest.(check bool) "tick classified" true
    (FL.is_tick (I.Step LR.Automaton.Tick));
  Alcotest.(check bool) "crash not a tick" false (FL.is_tick (I.Crash 0));
  (* lifted predicates keep their names (Pred matching is by name) *)
  let p = Core.Pred.make "T" (fun _ -> true) in
  Alcotest.(check string) "lifted name" "T"
    (Core.Pred.name (I.lift_pred p))

let test_faults_schema () =
  let sch = FL.schema (F.v ~crash:1 ()) in
  Alcotest.(check string) "derived name" "Unit-Time+faults(crash:1)"
    (Core.Schema.name sch);
  Alcotest.(check bool) "execution closure inherited" true
    (Core.Schema.execution_closed sch)

(* Regression: a base automaton whose state equality is coarser than
   structural equality (here a tag field that [equal_state] ignores).
   A coin flip with two PA-equal but structurally distinct outcomes
   must reach downstream analyses as a single outcome of mass 1 -- the
   Inject wrapper re-merges its lifted distributions under the base
   equality, and [Explore] coalesces outcomes that intern to the same
   index.  With the default structural merge only, both paths would
   carry split masses and inflate every sweep. *)
let test_inject_merges_pa_equal_outcomes () =
  let equal_state (a, _) (b, _) = a = b in
  let hash_state (a, _) = Hashtbl.hash a in
  let enabled (level, _) =
    if level >= 1 then []
    else
      [ { Core.Pa.action = "flip";
          dist =
            Proba.Dist.make
              [ ((level + 1, "heads"), Q.half);
                ((level + 1, "tails"), Q.half) ] } ]
  in
  let base =
    Core.Pa.make ~equal_state ~hash_state ~start:[ (0, "init") ] ~enabled ()
  in
  (* Through the Inject wrapper. *)
  let hooks =
    { I.procs = (fun _ -> 1);
      proc_of_action = (fun _ -> Some 0);
      on_crash = (fun s _ -> s);
      on_lost = (fun _ _ -> None);
      on_wake = (fun s _ -> s) }
  in
  let pa = I.wrap ~hooks ~budget:(F.v ~crash:1 ()) base in
  let w = List.hd (Core.Pa.start pa) in
  let flip =
    List.find (fun st -> not (I.is_injection st.Core.Pa.action))
      (Core.Pa.enabled pa w)
  in
  Alcotest.(check int) "wrapper merges outcomes" 1
    (Proba.Dist.size flip.Core.Pa.dist);
  (* Through exploration of the bare base automaton. *)
  let expl = Mdp.Explore.run base in
  Alcotest.(check int) "two interned states" 2 (Mdp.Explore.num_states expl);
  (match Mdp.Explore.steps expl 0 with
   | [| { Mdp.Explore.outcomes = [| (_, weight) |]; _ } |] ->
     Alcotest.(check bool) "full mass on one branch" true
       (Q.equal Q.one weight)
   | _ -> Alcotest.fail "explore should coalesce the split outcomes")

(* ------------------------------------------------------------------ *)
(* Budgeted exploration *)

let test_run_budgeted_complete () =
  let pa = LR.Automaton.make { n = 2; g = 1; k = 1 } in
  let part = Mdp.Explore.run_budgeted pa in
  Alcotest.(check bool) "complete" true part.Mdp.Explore.complete;
  Alcotest.(check bool) "no stop reason" true
    (part.Mdp.Explore.stopped = None);
  Alcotest.(check int) "empty frontier" 0 part.Mdp.Explore.frontier;
  Alcotest.(check int) "same count as run"
    (Mdp.Explore.num_states (Mdp.Explore.run pa))
    (Mdp.Explore.num_states part.Mdp.Explore.fragment)

let test_run_budgeted_partial () =
  let pa = LR.Automaton.make { n = 3; g = 1; k = 1 } in
  let budget = Core.Budget.v ~max_states:50 () in
  let part = Mdp.Explore.run_budgeted ~budget pa in
  Alcotest.(check bool) "incomplete" false part.Mdp.Explore.complete;
  Alcotest.(check bool) "reason recorded" true
    (part.Mdp.Explore.stopped <> None);
  Alcotest.(check bool) "frontier nonempty" true
    (part.Mdp.Explore.frontier > 0);
  (* interned states = expanded + frontier; never raises *)
  Alcotest.(check int) "frontier + expanded = interned"
    (Mdp.Explore.num_states part.Mdp.Explore.fragment)
    (Mdp.Explore.num_expanded part.Mdp.Explore.fragment
     + part.Mdp.Explore.frontier)

(* ------------------------------------------------------------------ *)
(* Budgeted Monte Carlo *)

let test_estimate_budgeted_deterministic () =
  let config = lr_config () in
  let pa = FL.make config in
  let setup =
    { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
      duration = FL.duration; start = wrapped_start config }
  in
  let run () =
    Sim.Monte_carlo.estimate_reach_budgeted setup
      ~target:(Core.Pred.mem FL.live_crit) ~within:13
      ~budget:(Core.Budget.v ~retries:2 ()) ~initial_trials:16 ~seed:7 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same trials" a.Sim.Monte_carlo.trials_run
    b.Sim.Monte_carlo.trials_run;
  Alcotest.(check int) "same successes"
    (Proba.Stat.Proportion.successes a.Sim.Monte_carlo.prop)
    (Proba.Stat.Proportion.successes b.Sim.Monte_carlo.prop);
  (* 2 retry rounds from 16: 16 + 32 trials when nothing stops early *)
  Alcotest.(check int) "doubling batches" 48 a.Sim.Monte_carlo.trials_run;
  Alcotest.(check int) "two batches" 2 a.Sim.Monte_carlo.batches

let test_estimate_budgeted_always_runs_one_trial () =
  let config = lr_config () in
  let pa = FL.make config in
  let setup =
    { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
      duration = FL.duration; start = wrapped_start config }
  in
  (* a wall budget that is already exhausted still yields >= 1 trial *)
  let est =
    Sim.Monte_carlo.estimate_reach_budgeted setup
      ~target:(Core.Pred.mem FL.live_crit) ~within:13
      ~budget:(Core.Budget.v ~wall:0.0 ()) ~seed:8 ()
  in
  Alcotest.(check bool) "at least one trial" true
    (est.Sim.Monte_carlo.trials_run >= 1);
  Alcotest.(check bool) "stopped for the wall" true
    (est.Sim.Monte_carlo.stopped <> None)

(* ------------------------------------------------------------------ *)
(* End to end: the LR n=3 one-crash claims *)

let test_derive_one_crash_release () =
  let d = FL.derive (lr_config ~release:true ()) in
  Alcotest.(check bool) "arrow1 attains 3/4" true
    (Q.equal d.FL.arrow1.FL.attained (Q.of_ints 3 4));
  Alcotest.(check bool) "arrow1 certified" true
    (d.FL.arrow1.FL.claim <> None);
  Alcotest.(check bool) "arrow2 attains 1" true
    (Q.equal d.FL.arrow2.FL.attained Q.one);
  (match d.FL.composed with
   | Ok c ->
     Alcotest.(check bool) "composed time 20" true
       (Q.equal (Core.Claim.time c) (Q.of_int 20));
     Alcotest.(check bool) "composed prob 3/4" true
       (Q.equal (Core.Claim.prob c) (Q.of_ints 3 4));
     Alcotest.(check string) "fault schema on the composition"
       "Unit-Time+faults(crash:1)"
       (Core.Schema.name (Core.Claim.schema c))
   | Error e -> Alcotest.fail ("composition failed: " ^ e));
  Alcotest.(check bool) "direct 13-unit bound 3/4" true
    (Q.equal d.FL.direct (Q.of_ints 3 4))

let test_derive_one_crash_no_release () =
  (* Without fork release the adversary waits for a philosopher to hold
     both forks and crashes it: the ring locks and every probability
     collapses to exactly 0. *)
  let d = FL.derive (lr_config ~release:false ()) in
  Alcotest.(check bool) "arrow1 collapses" true
    (Q.is_zero d.FL.arrow1.FL.attained);
  Alcotest.(check bool) "arrow2 collapses" true
    (Q.is_zero d.FL.arrow2.FL.attained);
  Alcotest.(check bool) "direct collapses" true (Q.is_zero d.FL.direct)

let test_derive_no_faults_matches_paper () =
  (* A zero budget degrades to the plain automaton: the paper's 13-unit
     1/8 bound must be met (the exact minimum is 1/2 at n=3). *)
  let d = FL.derive (lr_config ~faults:F.none ()) in
  Alcotest.(check bool) "direct >= 1/8" true
    (Q.compare d.FL.direct (Q.of_ints 1 8) >= 0)

let test_check_budgeted_exact () =
  match FL.check_budgeted ~seed:9 (lr_config ()) with
  | Faults.Resilient.Exact e ->
    Alcotest.(check bool) "attained 3/4" true
      (Q.equal e.Faults.Resilient.attained (Q.of_ints 3 4));
    Alcotest.(check bool) "meets 1/8" true e.Faults.Resilient.meets;
    Alcotest.(check int) "full space" 9700 e.Faults.Resilient.states
  | Faults.Resilient.Estimate _ ->
    Alcotest.fail "expected the exact rung under an unlimited budget"
  | Faults.Resilient.Exhausted r -> Alcotest.fail r

let test_check_budgeted_degrades () =
  (* A state budget far below the 9700-state space forces the Monte
     Carlo rung; the call must not raise. *)
  match
    FL.check_budgeted ~budget:(Core.Budget.v ~max_states:200 ()) ~seed:10
      (lr_config ())
  with
  | Faults.Resilient.Estimate e ->
    Alcotest.(check bool) "says why" true
      (e.Faults.Resilient.reason <> "");
    Alcotest.(check bool) "ran trials" true
      (e.Faults.Resilient.est.Sim.Monte_carlo.trials_run > 0)
  | Faults.Resilient.Exact _ ->
    Alcotest.fail "200 states cannot hold the wrapped space"
  | Faults.Resilient.Exhausted r -> Alcotest.fail r

(* Satellite regression: a 50 ms wall allowance must come back promptly
   with a structured verdict.  The ambient deadline's poll points cut
   the exploration / arena compile / checker sweeps mid-flight -- a
   verdict only "after the sweep" would take seconds here. *)
let test_wall_deadline_returns_promptly () =
  let t0 = Unix.gettimeofday () in
  let verdict =
    FL.check_budgeted
      ~budget:(Core.Budget.v ~wall:0.05 ~retries:1 ())
      ~seed:11 (lr_config ())
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "returned in %.0f ms, not after the full sweep"
       (elapsed *. 1000.))
    true (elapsed < 5.0);
  match verdict with
  | Faults.Resilient.Estimate e ->
    Alcotest.(check bool) "at least one trial despite the tiny wall" true
      (e.Faults.Resilient.est.Sim.Monte_carlo.trials_run >= 1);
    Alcotest.(check bool) "says why" true (e.Faults.Resilient.reason <> "")
  | Faults.Resilient.Exact _ ->
    (* A machine fast enough to finish the 9700-state exact check
       inside 50 ms satisfies the bound trivially. *)
    ()
  | Faults.Resilient.Exhausted r -> Alcotest.fail r

(* An already-expired ambient deadline must cut the BFS inner loop via
   its poll point, not only between phases. *)
let test_ambient_deadline_cuts_exploration () =
  let pa = FL.make (lr_config ()) in
  let clock = Core.Budget.start (Core.Budget.v ~wall:0.0 ()) in
  (match Core.Budget.with_deadline clock (fun () -> Mdp.Explore.run pa) with
   | exception Core.Budget.Deadline_exceeded _ -> ()
   | _ -> Alcotest.fail "expired ambient deadline did not cut the BFS");
  (* and the ambient cell is restored on the way out *)
  Alcotest.(check bool) "deadline unset after with_deadline" true
    (Core.Budget.current_deadline () = None)

let test_check_arrow_exhausted_without_fallback () =
  let config = lr_config () in
  let pa = FL.make config in
  match
    Faults.Resilient.check_arrow
      ~budget:(Core.Budget.v ~max_states:200 ())
      ~pa ~is_tick:FL.is_tick ~granularity:1
      ~schema:(FL.schema config.FL.faults) ~pre:FL.live_trying
      ~post:FL.live_crit ~time:(Q.of_int 13) ~prob:(Q.of_ints 1 8) ()
  with
  | Faults.Resilient.Exhausted reason ->
    Alcotest.(check bool) "reason carries the count" true
      (reason <> "")
  | Faults.Resilient.Exact _ | Faults.Resilient.Estimate _ ->
    Alcotest.fail "expected Exhausted with no fallback"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [ ( "spec",
        [ Alcotest.test_case "fault spec" `Quick test_fault_spec;
          Alcotest.test_case "fault of_string" `Quick test_fault_of_string;
          Alcotest.test_case "budget of_string" `Quick test_budget_of_string ] );
      ( "inject",
        [ Alcotest.test_case "offers crashes" `Quick
            test_inject_offers_crashes;
          Alcotest.test_case "crash silences process" `Quick
            test_inject_crash_silences_process;
          Alcotest.test_case "helpers" `Quick test_inject_helpers;
          Alcotest.test_case "schema" `Quick test_faults_schema;
          Alcotest.test_case "merges PA-equal outcomes" `Quick
            test_inject_merges_pa_equal_outcomes ] );
      ( "budgeted exploration",
        [ Alcotest.test_case "complete" `Quick test_run_budgeted_complete;
          Alcotest.test_case "partial" `Quick test_run_budgeted_partial ] );
      ( "budgeted monte carlo",
        [ Alcotest.test_case "deterministic" `Quick
            test_estimate_budgeted_deterministic;
          Alcotest.test_case "always one trial" `Quick
            test_estimate_budgeted_always_runs_one_trial ] );
      ( "lr one crash",
        [ Alcotest.test_case "derive (release)" `Quick
            test_derive_one_crash_release;
          Alcotest.test_case "derive (no release)" `Quick
            test_derive_one_crash_no_release;
          Alcotest.test_case "no faults matches paper" `Quick
            test_derive_no_faults_matches_paper;
          Alcotest.test_case "check_budgeted exact" `Quick
            test_check_budgeted_exact;
          Alcotest.test_case "check_budgeted degrades" `Quick
            test_check_budgeted_degrades;
          Alcotest.test_case "50ms wall returns promptly" `Quick
            test_wall_deadline_returns_promptly;
          Alcotest.test_case "ambient deadline cuts BFS" `Quick
            test_ambient_deadline_cuts_exploration;
          Alcotest.test_case "exhausted without fallback" `Quick
            test_check_arrow_exhausted_without_fallback ] ) ]
