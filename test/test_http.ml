(* Tests for the server's HTTP layer: request parsing over an
   in-memory reader -- truncated input, oversized lines/headers/bodies,
   pipelined keep-alive, malformed request lines -- all mapping to
   clean 4xx/5xx parse errors, never an exception; plus the
   response-side round trip the load client relies on. *)

module H = Server.Http

let request r =
  match H.read_request r with
  | `Request req -> req
  | `Eof -> Alcotest.fail "unexpected EOF"
  | `Error e -> Alcotest.failf "unexpected parse error %d %s" e.H.status e.H.reason

let error r =
  match H.read_request r with
  | `Error e -> e
  | `Request req -> Alcotest.failf "unexpected request %s" req.H.target
  | `Eof -> Alcotest.fail "unexpected EOF"

let eof r =
  match H.read_request r with
  | `Eof -> ()
  | `Request req -> Alcotest.failf "unexpected request %s" req.H.target
  | `Error e -> Alcotest.failf "unexpected error %d %s" e.H.status e.H.reason

(* ------------------------------------------------------------------ *)

let test_simple_get () =
  let r =
    H.of_string
      "GET /check?model=lr&n=3 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n"
  in
  let req = request r in
  Alcotest.(check bool) "GET" true (req.H.meth = H.GET);
  Alcotest.(check string) "path" "/check" req.H.path;
  Alcotest.(check (list (pair string string)))
    "query" [ ("model", "lr"); ("n", "3") ] req.H.query;
  Alcotest.(check (option string)) "host header" (Some "x")
    (H.header req "host");
  Alcotest.(check string) "empty body" "" req.H.body;
  eof r

let test_post_body () =
  let r =
    H.of_string
      "POST /check HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"model\":\"lr\"}"
  in
  (* 13 bytes of a 14-byte payload: framing follows Content-Length *)
  let req = request r in
  Alcotest.(check bool) "POST" true (req.H.meth = H.POST);
  Alcotest.(check string) "body" "{\"model\":\"lr\"" req.H.body

let test_percent_decoding () =
  let r = H.of_string "GET /lint?target=example%3Arace&x=a%20b HTTP/1.1\r\n\r\n" in
  let req = request r in
  Alcotest.(check (list (pair string string)))
    "decoded" [ ("target", "example:race"); ("x", "a b") ] req.H.query

let test_pipelined_keep_alive () =
  let r =
    H.of_string
      ("GET /health HTTP/1.1\r\n\r\n"
       ^ "POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
       ^ "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
  in
  let a = request r in
  Alcotest.(check string) "first" "/health" a.H.path;
  Alcotest.(check bool) "keep-alive default (1.1)" true (H.keep_alive a);
  let b = request r in
  Alcotest.(check string) "second" "/x" b.H.path;
  Alcotest.(check string) "second body" "hi" b.H.body;
  let c = request r in
  Alcotest.(check string) "third" "/stats" c.H.path;
  Alcotest.(check bool) "connection: close" false (H.keep_alive c);
  eof r

let test_http10_keep_alive () =
  let r = H.of_string "GET / HTTP/1.0\r\n\r\n" in
  Alcotest.(check bool) "1.0 defaults to close" false
    (H.keep_alive (request r));
  let r =
    H.of_string "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
  in
  Alcotest.(check bool) "1.0 + keep-alive header" true
    (H.keep_alive (request r))

(* ------------------------------------------------------------------ *)
(* Errors. *)

let test_truncated_mid_request () =
  (* EOF inside the header block is a 400, not a clean EOF. *)
  List.iter
    (fun doc ->
       let e = error (H.of_string doc) in
       Alcotest.(check int) (Printf.sprintf "%S -> 400" doc) 400 e.H.status)
    [ "GET /x HTT"; "GET /x HTTP/1.1\r\n"; "GET /x HTTP/1.1\r\nHost: y";
      "GET /x HTTP/1.1\r\nHost: y\r\n" ];
  (* EOF inside a declared body is a 400 too. *)
  let e =
    error (H.of_string "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
  in
  Alcotest.(check int) "short body -> 400" 400 e.H.status

let test_malformed_request_lines () =
  List.iter
    (fun doc ->
       let e = error (H.of_string (doc ^ "\r\n\r\n")) in
       Alcotest.(check int) (Printf.sprintf "%S -> 400" doc) 400 e.H.status)
    [ "GET"; "GET /x"; "/x HTTP/1.1"; "GET  HTTP/1.1"; "" ];
  let e = error (H.of_string "GET /x HTTP/2.0\r\n\r\n") in
  Alcotest.(check int) "unsupported version -> 505" 505 e.H.status

let test_header_without_colon () =
  let e = error (H.of_string "GET /x HTTP/1.1\r\nnocolon\r\n\r\n") in
  Alcotest.(check int) "400" 400 e.H.status

let test_oversized_request_line () =
  let doc = "GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n" in
  let e = error (H.of_string doc) in
  Alcotest.(check int) "431" 431 e.H.status

let test_oversized_header_line () =
  let doc =
    "GET /x HTTP/1.1\r\nX-Big: " ^ String.make 9000 'b' ^ "\r\n\r\n"
  in
  let e = error (H.of_string doc) in
  Alcotest.(check int) "431" 431 e.H.status

let test_too_many_headers () =
  let headers =
    String.concat ""
      (List.init 100 (fun i -> Printf.sprintf "X-H%d: v\r\n" i))
  in
  let e = error (H.of_string ("GET /x HTTP/1.1\r\n" ^ headers ^ "\r\n")) in
  Alcotest.(check int) "431" 431 e.H.status

let test_oversized_body () =
  (* Limits fire on the declared length, before any body bytes. *)
  let e =
    error
      (H.of_string "POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
  in
  Alcotest.(check int) "413" 413 e.H.status;
  let e =
    error (H.of_string "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
  in
  Alcotest.(check int) "bad length -> 400" 400 e.H.status

let test_transfer_encoding_rejected () =
  let e =
    error
      (H.of_string
         "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n")
  in
  Alcotest.(check int) "501" 501 e.H.status

(* Whatever bytes arrive, [read_request] returns a value -- the daemon
   maps errors to a response and closes; an exception here would be a
   worker-killing bug. *)
let fuzz_no_exceptions =
  QCheck.Test.make ~count:1000 ~name:"read_request never raises"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 200)
              (QCheck.Gen.map Char.chr (QCheck.Gen.int_range 0 255)))
    (fun doc ->
       let r = H.of_string doc in
       match H.read_request r with
       | `Request _ | `Eof | `Error _ -> true
       | exception e ->
         QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e)
           doc)

(* ------------------------------------------------------------------ *)
(* Responses. *)

let test_response_roundtrip () =
  let rendered =
    H.response ~headers:[ ("X-Prtb-Cache", "hit") ] ~keep_alive:true
      ~status:200 ~body:"{\"ok\":true}" ()
  in
  let r = H.of_string rendered in
  (match H.read_response r with
   | `Response m ->
     Alcotest.(check int) "status" 200 m.H.status;
     Alcotest.(check string) "body" "{\"ok\":true}" m.H.resp_body;
     Alcotest.(check (option string)) "extra header" (Some "hit")
       (H.resp_header m "x-prtb-cache");
     Alcotest.(check (option string)) "keep-alive" (Some "keep-alive")
       (H.resp_header m "connection")
   | `Eof -> Alcotest.fail "eof"
   | `Error e -> Alcotest.failf "error %d %s" e.H.status e.H.reason);
  (match H.read_response r with
   | `Eof -> ()
   | _ -> Alcotest.fail "expected clean EOF after one response")

let test_response_close_and_reasons () =
  let rendered = H.response ~keep_alive:false ~status:503 ~body:"x" () in
  let r = H.of_string rendered in
  (match H.read_response r with
   | `Response m ->
     Alcotest.(check int) "status" 503 m.H.status;
     Alcotest.(check (option string)) "close" (Some "close")
       (H.resp_header m "connection")
   | _ -> Alcotest.fail "expected response");
  Alcotest.(check string) "404 reason" "Not Found" (H.status_reason 404);
  Alcotest.(check string) "431 reason" "Request Header Fields Too Large"
    (H.status_reason 431)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "http"
    [ ( "parsing",
        [ Alcotest.test_case "simple GET" `Quick test_simple_get;
          Alcotest.test_case "POST body framing" `Quick test_post_body;
          Alcotest.test_case "percent decoding" `Quick
            test_percent_decoding;
          Alcotest.test_case "pipelined keep-alive" `Quick
            test_pipelined_keep_alive;
          Alcotest.test_case "HTTP/1.0 keep-alive" `Quick
            test_http10_keep_alive ] );
      ( "errors",
        [ Alcotest.test_case "truncated mid-request" `Quick
            test_truncated_mid_request;
          Alcotest.test_case "malformed request lines" `Quick
            test_malformed_request_lines;
          Alcotest.test_case "header without colon" `Quick
            test_header_without_colon;
          Alcotest.test_case "oversized request line" `Quick
            test_oversized_request_line;
          Alcotest.test_case "oversized header line" `Quick
            test_oversized_header_line;
          Alcotest.test_case "too many headers" `Quick
            test_too_many_headers;
          Alcotest.test_case "oversized body" `Quick test_oversized_body;
          Alcotest.test_case "transfer-encoding rejected" `Quick
            test_transfer_encoding_rejected;
          QCheck_alcotest.to_alcotest fuzz_no_exceptions ] );
      ( "responses",
        [ Alcotest.test_case "round trip" `Quick test_response_roundtrip;
          Alcotest.test_case "close and reasons" `Quick
            test_response_close_and_reasons ] ) ]
