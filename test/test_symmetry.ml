(* Symmetry analysis (PA03x): the orbit quotient must be invisible in
   every verdict -- rational results bit-identical between --sym on and
   --sym off, fixed-horizon float results bit-identical too -- and the
   broken declarations must fire their diagnostics (PA030 for a
   non-automorphism, PA031 for a non-invariant predicate, PA032 as the
   unreduced-but-symmetric advisory). *)

module Q = Proba.Rational
module Sym = Analysis.Symmetry
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or

let q = Alcotest.testable (fun fmt r -> Format.pp_print_string fmt (Q.to_string r)) Q.equal

let claim_str = function
  | Ok c -> Format.asprintf "%a" Core.Claim.pp c
  | Error e -> "error: " ^ e

let has_code code diags =
  List.exists (fun d -> d.Analysis.Diagnostic.code = code) diags

let cert_exn = function
  | Some (c : Sym.certificate) -> c
  | None -> Alcotest.fail "expected a symmetry certificate"

(* Minimum over the states satisfying [pred] of the [ticks]-horizon
   float minimum reachability of [target] -- compared bitwise across
   the reduced/unreduced arenas (all probabilities are dyadic at these
   sizes, so the float plane is exact and order-insensitive). *)
let min_float_over arena ~pred ~target ~ticks =
  let values =
    Mdp.Finite_horizon.min_reach_float arena
      ~target:(Mdp.Arena.indicator arena target) ~ticks
  in
  let best = ref infinity in
  for i = 0 to Mdp.Arena.num_states arena - 1 do
    if Core.Pred.mem pred (Mdp.Arena.state arena i) && values.(i) < !best
    then best := values.(i)
  done;
  !best

let bits = Int64.bits_of_float

(* ------------------------------------------------------------------ *)
(* Differential: reduced vs unreduced, all four case studies. *)

let test_lr_differential () =
  let off = LR.Proof.build ~n:3 () in
  let on = LR.Proof.build ~sym:Sym.On ~n:3 () in
  let cert = cert_exn on.LR.Proof.sym in
  Alcotest.(check bool) "quotient is smaller" true
    (Mdp.Arena.num_states on.LR.Proof.arena
     < Mdp.Arena.num_states off.LR.Proof.arena);
  Alcotest.(check int) "certificate counts the unreduced space"
    (Mdp.Arena.num_states off.LR.Proof.arena)
    cert.Sym.full_states;
  List.iter2
    (fun (a : LR.Proof.arrow) (b : LR.Proof.arrow) ->
       Alcotest.check q ("attained " ^ a.LR.Proof.label)
         a.LR.Proof.attained b.LR.Proof.attained)
    (LR.Proof.arrows off) (LR.Proof.arrows on);
  Alcotest.(check string) "composed claim"
    (claim_str (LR.Proof.composed off))
    (claim_str (LR.Proof.composed on));
  Alcotest.check q "direct bound"
    (LR.Proof.direct_bound off) (LR.Proof.direct_bound on)

let test_lr_float_plane () =
  let off = LR.Proof.build ~n:3 () in
  let on = LR.Proof.build ~sym:Sym.On ~n:3 () in
  let run (inst : LR.Proof.instance) =
    min_float_over inst.LR.Proof.arena ~pred:LR.Regions.t
      ~target:LR.Regions.c
      ~ticks:(Core.Timed.within ~granularity:1 ~time:(Q.of_int 13))
  in
  Alcotest.(check int64) "13-unit float minimum, bitwise"
    (bits (run off)) (bits (run on))

let test_election_differential () =
  let off = IR.Proof.build ~n:3 () in
  let on = IR.Proof.build ~sym:Sym.On ~n:3 () in
  let cert = cert_exn on.IR.Proof.sym in
  Alcotest.(check int) "certificate counts the unreduced space"
    (Mdp.Arena.num_states off.IR.Proof.arena)
    cert.Sym.full_states;
  List.iter2
    (fun (a : IR.Proof.arrow) (b : IR.Proof.arrow) ->
       Alcotest.check q ("attained " ^ a.IR.Proof.label)
         a.IR.Proof.attained b.IR.Proof.attained)
    (IR.Proof.arrows off) (IR.Proof.arrows on);
  Alcotest.(check string) "composed claim"
    (claim_str (IR.Proof.composed off))
    (claim_str (IR.Proof.composed on));
  Alcotest.check q "direct bound"
    (IR.Proof.direct_bound off) (IR.Proof.direct_bound on)

let test_coin_differential () =
  let off = SC.Proof.build ~n:2 ~bound:3 () in
  let on = SC.Proof.build ~sym:Sym.On ~n:2 ~bound:3 () in
  let cert = cert_exn on.SC.Proof.sym in
  Alcotest.(check int) "certificate counts the unreduced space"
    (Mdp.Arena.num_states off.SC.Proof.arena)
    cert.Sym.full_states;
  List.iter2
    (fun (a : SC.Proof.arrow) (b : SC.Proof.arrow) ->
       Alcotest.check q ("attained " ^ a.SC.Proof.label)
         a.SC.Proof.attained b.SC.Proof.attained)
    (SC.Proof.arrows off) (SC.Proof.arrows on);
  Alcotest.(check string) "composed claim"
    (claim_str (SC.Proof.composed off))
    (claim_str (SC.Proof.composed on));
  Alcotest.check q "direct bound"
    (SC.Proof.direct_bound off) (SC.Proof.direct_bound on)

let test_consensus_differential () =
  let n = 3 and f = 1 and cap = 2 in
  let initial = Array.init n (fun i -> i = n - 1) in
  let off = BO.Proof.build ~n ~f ~cap ~initial () in
  let on = BO.Proof.build ~sym:Sym.On ~n ~f ~cap ~initial () in
  let cert = cert_exn on.BO.Proof.sym in
  Alcotest.(check int) "certificate counts the unreduced space"
    (Mdp.Arena.num_states off.BO.Proof.arena)
    cert.Sym.full_states;
  Alcotest.(check bool) "agreement holds on both" true
    (BO.Proof.agreement_violation off = None
     && BO.Proof.agreement_violation on = None);
  let rounds = List.init cap (fun r -> r + 1) in
  List.iter2
    (fun a b -> Alcotest.check q "decision curve point" a b)
    (BO.Proof.decision_curve off ~rounds)
    (BO.Proof.decision_curve on ~rounds)

(* ------------------------------------------------------------------ *)
(* Fixtures that must fire. *)

(* A line topology has no nontrivial side-preserving automorphism, so a
   hand-declared "rotation" must be refuted by the verifier. *)
let broken_line_spec topo =
  let n = LR.Topology.num_procs topo in
  let r = LR.Topology.num_resources topo in
  let pi = Array.init n (fun i -> (i + 1) mod n) in
  let rho = Array.init r (fun j -> (j + 1) mod r) in
  Sym.spec
    [ Sym.generator ~name:"bogus-rotation"
        ~on_state:(LR.Symmetry.apply_state (pi, rho))
        ~on_action:(LR.Symmetry.apply_action pi) ]

let test_pa030_fires () =
  let topo = LR.Topology.line 3 in
  let pa = LR.Automaton.make_general ~topo ~g:1 ~k:1 in
  let expl = Mdp.Explore.run pa in
  let diags, cert =
    Sym.verify ~model:"lr-line-broken" (broken_line_spec topo) expl
  in
  Alcotest.(check bool) "PA030 fired" true
    (has_code Analysis.Diagnostic.PA030 diags);
  Alcotest.(check bool) "no certificate" true (cert = None)

let test_pa030_not_certified () =
  let topo = LR.Topology.line 3 in
  let pa = LR.Automaton.make_general ~topo ~g:1 ~k:1 in
  Alcotest.check_raises "sym=on refuses the broken declaration"
    (Match_failure ("", 0, 0)) (fun () ->
        try
          ignore
            (Sym.explored ~model:"lr-line-broken" ~mode:Sym.On
               (broken_line_spec topo) pa)
        with Sym.Not_certified _ -> raise (Match_failure ("", 0, 0)))

(* A predicate naming a specific process index is not invariant under
   the (verified) ring rotations. *)
let test_pa031_fires () =
  let pred0 s = s.LR.State.procs.(0).LR.State.region = LR.State.Crit in
  let spec = LR.Symmetry.ring ~extra:[ ("proc0-crit", pred0) ] ~n:3 () in
  let pa = LR.Automaton.make { LR.Automaton.n = 3; g = 1; k = 1 } in
  let expl = Mdp.Explore.run pa in
  let diags, cert = Sym.verify ~model:"lr-proc0" spec expl in
  Alcotest.(check bool) "PA031 fired" true
    (has_code Analysis.Diagnostic.PA031 diags);
  Alcotest.(check bool) "PA030 clean" false
    (has_code Analysis.Diagnostic.PA030 diags);
  Alcotest.(check bool) "no certificate" true (cert = None)

(* Unreduced exploration of a certifiably symmetric model gets the
   advisory (with a certificate: the group itself verified fine). *)
let test_pa032_advisory () =
  let pa = LR.Automaton.make { LR.Automaton.n = 3; g = 1; k = 1 } in
  let expl = Mdp.Explore.run pa in
  let diags, cert =
    Sym.verify ~model:"lr-unreduced" (LR.Symmetry.ring ~n:3 ()) expl
  in
  Alcotest.(check bool) "PA032 fired" true
    (has_code Analysis.Diagnostic.PA032 diags);
  (match
     List.find_opt
       (fun d -> d.Analysis.Diagnostic.code = Analysis.Diagnostic.PA032)
       diags
   with
   | Some d ->
     Alcotest.(check bool) "advisory severity is Info" true
       (d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Info)
   | None -> ());
  let cert = cert_exn cert in
  Alcotest.(check bool) "not a quotient" false cert.Sym.reduced;
  Alcotest.(check int) "full space = fragment" (Mdp.Explore.num_states expl)
    cert.Sym.full_states

(* ------------------------------------------------------------------ *)
(* Mechanics: orbits and canonicalizers. *)

let rot3 =
  Sym.generator ~name:"rot" ~on_state:(fun i -> (i + 1) mod 3)
    ~on_action:(fun () -> ())

let test_orbit () =
  let orbit = Sym.orbit ~equal:Int.equal [ rot3 ] 1 in
  Alcotest.(check (list int)) "orbit of 1 under +1 mod 3" [ 0; 1; 2 ]
    (List.sort compare orbit)

let test_canonicalizer () =
  let canon = Sym.canonicalizer ~equal:Int.equal (Sym.spec [ rot3 ]) in
  Alcotest.(check (list int)) "every state maps to the orbit minimum"
    [ 0; 0; 0 ] (List.map canon [ 0; 1; 2 ]);
  let id = Sym.canonicalizer ~equal:Int.equal (Sym.spec []) in
  Alcotest.(check int) "no generators: identity" 7 (id 7)

let () =
  Alcotest.run "symmetry"
    [ ( "differential",
        [ Alcotest.test_case "lr rational plane" `Quick test_lr_differential;
          Alcotest.test_case "lr float plane (bitwise)" `Quick
            test_lr_float_plane;
          Alcotest.test_case "election rational plane" `Quick
            test_election_differential;
          Alcotest.test_case "coin rational plane" `Quick
            test_coin_differential;
          Alcotest.test_case "consensus rational plane" `Quick
            test_consensus_differential ] );
      ( "fixtures",
        [ Alcotest.test_case "PA030: rotation on a line" `Quick
          test_pa030_fires;
          Alcotest.test_case "PA030: sym=on raises" `Quick
            test_pa030_not_certified;
          Alcotest.test_case "PA031: process-pinned predicate" `Quick
            test_pa031_fires;
          Alcotest.test_case "PA032: unreduced advisory" `Quick
            test_pa032_advisory ] );
      ( "mechanics",
        [ Alcotest.test_case "orbit closure" `Quick test_orbit;
          Alcotest.test_case "canonicalizer" `Quick test_canonicalizer ] )
    ]
