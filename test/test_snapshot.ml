(* Arena snapshots (lib/snapshot): round-trips and refusals.

   Round-trips assert what docs/SNAPSHOTS.md promises: a loaded arena
   is bit-identical to the freshly compiled one on every plane -- the
   exact rational plane is serialized, the float plane is recomputed
   exactly as [Arena.compile] computes it, and the dyadic and interval
   planes rebuild from the exact plane -- so every engine verdict is
   byte-for-byte the same.  Refusals assert the strict-parser
   contract: version skew, truncation, a one-byte tamper and a
   fingerprint mismatch are all named errors, never a silently wrong
   arena. *)

module Q = Proba.Rational
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or
module Store = Snapshot.Store
module Codec = Snapshot.Codec

let bits = Int64.bits_of_float

(* Bit-identical across all four probability planes, plus the
   structural arrays the engines traverse. *)
let check_arena (type s a) name ~(fresh : (s, a) Mdp.Arena.t)
    ~(loaded : (s, a) Mdp.Arena.t) =
  Alcotest.(check string)
    (name ^ ": fingerprint")
    (Mdp.Arena.fingerprint fresh)
    (Mdp.Arena.fingerprint loaded);
  Alcotest.(check int) (name ^ ": states") fresh.Mdp.Arena.n
    loaded.Mdp.Arena.n;
  Alcotest.(check int)
    (name ^ ": expanded")
    fresh.Mdp.Arena.expanded loaded.Mdp.Arena.expanded;
  Alcotest.(check bool)
    (name ^ ": CSR offsets")
    true
    (fresh.Mdp.Arena.step_off = loaded.Mdp.Arena.step_off
     && fresh.Mdp.Arena.out_off = loaded.Mdp.Arena.out_off
     && fresh.Mdp.Arena.tgt = loaded.Mdp.Arena.tgt
     && fresh.Mdp.Arena.tick = loaded.Mdp.Arena.tick);
  Alcotest.(check (list int))
    (name ^ ": start indices")
    (Mdp.Arena.start_indices fresh)
    (Mdp.Arena.start_indices loaded);
  Alcotest.(check bool)
    (name ^ ": exact plane")
    true
    (Array.for_all2 Q.equal fresh.Mdp.Arena.prob_q loaded.Mdp.Arena.prob_q);
  Alcotest.(check bool)
    (name ^ ": float plane")
    true
    (Array.for_all2
       (fun a b -> bits a = bits b)
       fresh.Mdp.Arena.prob_f loaded.Mdp.Arena.prob_f);
  Alcotest.(check bool)
    (name ^ ": dyadic plane")
    true
    (Array.for_all2 Proba.Dyadic.equal
       (Mdp.Arena.dyadic_plane fresh)
       (Mdp.Arena.dyadic_plane loaded));
  let flo, fhi = Mdp.Arena.interval_plane fresh in
  let llo, lhi = Mdp.Arena.interval_plane loaded in
  Alcotest.(check bool)
    (name ^ ": interval plane")
    true
    (Array.for_all2 (fun a b -> bits a = bits b) flo llo
     && Array.for_all2 (fun a b -> bits a = bits b) fhi lhi)

let claim_string = function
  | Ok c -> Format.asprintf "%a" Core.Claim.pp c
  | Error e -> "composition failed: " ^ e

let reload config loaded =
  match Store.of_string (Store.encode config loaded) with
  | Ok (c, l) -> (c, l)
  | Error e -> Alcotest.failf "round-trip refused: %s" e

let lr_config =
  { Store.model = "lr"; n = 3; g = 1; k = 1; topology = "ring"; bound = 0;
    cap = 0; f = 0; initial = [||]; sym = Analysis.Symmetry.Off }

let test_roundtrip_lr () =
  let fresh = Models.lr ~n:3 () in
  match reload lr_config (Store.Lr fresh) with
  | c, Store.Lr loaded ->
    Alcotest.(check string) "model" "lr" c.Store.model;
    check_arena "lr" ~fresh:fresh.LR.Proof.arena ~loaded:loaded.LR.Proof.arena;
    Alcotest.(check string) "lr: composed claim"
      (claim_string (LR.Proof.composed fresh))
      (claim_string (LR.Proof.composed loaded));
    Alcotest.(check bool) "lr: Lemma 6.1" true
      (LR.Invariant.check loaded.LR.Proof.expl = None);
    Alcotest.(check (float 0.0)) "lr: max expected time"
      (LR.Proof.max_expected_time fresh)
      (LR.Proof.max_expected_time loaded)
  | _, _ -> Alcotest.fail "lr decoded to another model"

let test_roundtrip_lr_sym () =
  let fresh = Models.lr ~n:3 ~sym:Analysis.Symmetry.On () in
  let config = { lr_config with Store.sym = Analysis.Symmetry.On } in
  match reload config (Store.Lr fresh) with
  | c, Store.Lr loaded ->
    Alcotest.(check bool) "sym mode survives" true
      (c.Store.sym = Analysis.Symmetry.On);
    (match loaded.LR.Proof.sym with
     | Some cert ->
       Alcotest.(check bool) "certificate still reduced" true
         cert.Analysis.Symmetry.reduced
     | None -> Alcotest.fail "symmetry certificate lost in round-trip");
    check_arena "lr-sym" ~fresh:fresh.LR.Proof.arena
      ~loaded:loaded.LR.Proof.arena;
    Alcotest.(check string) "lr-sym: composed claim"
      (claim_string (LR.Proof.composed fresh))
      (claim_string (LR.Proof.composed loaded))
  | _, _ -> Alcotest.fail "lr-sym decoded to another model"

let test_roundtrip_lr_line () =
  let fresh = Models.lr_topo ~topo:(LR.Topology.line 3) () in
  let config = { lr_config with Store.topology = "line" } in
  match reload config (Store.Lr_topo fresh) with
  | _, Store.Lr_topo loaded ->
    check_arena "lr-line" ~fresh:fresh.LR.Proof.tarena
      ~loaded:loaded.LR.Proof.tarena;
    Alcotest.(check string) "lr-line: composed claim"
      (claim_string (LR.Proof.composed_topo fresh))
      (claim_string (LR.Proof.composed_topo loaded))
  | _, _ -> Alcotest.fail "lr-line decoded to another model"

let test_roundtrip_election () =
  let fresh = Models.election ~n:3 () in
  let config = { lr_config with Store.model = "election" } in
  match reload config (Store.Election fresh) with
  | _, Store.Election loaded ->
    check_arena "election" ~fresh:fresh.IR.Proof.arena
      ~loaded:loaded.IR.Proof.arena;
    Alcotest.(check string) "election: composed claim"
      (claim_string (IR.Proof.composed fresh))
      (claim_string (IR.Proof.composed loaded));
    Alcotest.(check (float 0.0)) "election: max expected time"
      (IR.Proof.max_expected_time fresh)
      (IR.Proof.max_expected_time loaded)
  | _, _ -> Alcotest.fail "election decoded to another model"

let test_roundtrip_coin () =
  let fresh = Models.coin ~n:2 ~bound:3 () in
  let config = { lr_config with Store.model = "coin"; n = 2; bound = 3 } in
  match reload config (Store.Coin fresh) with
  | _, Store.Coin loaded ->
    check_arena "coin" ~fresh:fresh.SC.Proof.arena
      ~loaded:loaded.SC.Proof.arena;
    Alcotest.(check bool) "coin: direct bound" true
      (Q.equal (SC.Proof.direct_bound fresh) (SC.Proof.direct_bound loaded));
    Alcotest.(check (float 0.0)) "coin: exact expected time"
      (SC.Proof.expected_exact fresh)
      (SC.Proof.expected_exact loaded)
  | _, _ -> Alcotest.fail "coin decoded to another model"

let test_roundtrip_consensus () =
  let initial = [| false; false; true |] in
  let fresh = Models.consensus ~n:3 ~f:1 ~cap:2 ~initial () in
  let config =
    { lr_config with Store.model = "consensus"; cap = 2; f = 1; initial }
  in
  match reload config (Store.Consensus fresh) with
  | c, Store.Consensus loaded ->
    Alcotest.(check bool) "initial estimates survive" true
      (c.Store.initial = initial);
    check_arena "consensus" ~fresh:fresh.BO.Proof.arena
      ~loaded:loaded.BO.Proof.arena;
    Alcotest.(check bool) "consensus: agreement" true
      (BO.Proof.agreement_violation loaded = None);
    Alcotest.(check (list string)) "consensus: decision curve"
      (List.map Q.to_string
         (BO.Proof.decision_curve fresh ~rounds:[ 1; 2 ]))
      (List.map Q.to_string
         (BO.Proof.decision_curve loaded ~rounds:[ 1; 2 ]))
  | _, _ -> Alcotest.fail "consensus decoded to another model"

(* ----------------------------------------------------------------- *)
(* Refusals. *)

let contains ~sub s = Astring.String.is_infix ~affix:sub s

let refused name ~expect bytes =
  match Store.of_string bytes with
  | Ok _ -> Alcotest.failf "%s: accepted instead of refused" name
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: error names the cause (%S in %S)" name expect e)
      true (contains ~sub:expect e)

let small_snapshot =
  lazy (Store.encode lr_config (Store.Lr (Models.lr ~n:3 ())))

let test_refuse_version_skew () =
  let bytes = Bytes.of_string (Lazy.force small_snapshot) in
  (* "prtba/1\n" -- the version digit is byte 6 *)
  Bytes.set bytes 6 '9';
  refused "version skew" ~expect:"version" (Bytes.to_string bytes)

let test_refuse_truncation () =
  let bytes = Lazy.force small_snapshot in
  refused "truncation" ~expect:"truncated"
    (String.sub bytes 0 (String.length bytes - 7));
  refused "empty" ~expect:"magic" ""

let test_refuse_tamper () =
  let original = Lazy.force small_snapshot in
  (* Flip the last digest hex character: the seal itself no longer
     matches the bytes it covers. *)
  let bytes = Bytes.of_string original in
  Bytes.set bytes (Bytes.length bytes - 1) 'x';
  refused "digest tamper" ~expect:"digest" (Bytes.to_string bytes);
  (* Flip one content byte mid-file (inside a section payload): the
     digest catches it.  Whatever frame the flip lands in, the result
     must be a refusal, never a quietly different arena. *)
  let bytes = Bytes.of_string original in
  let mid = Bytes.length bytes / 2 in
  Bytes.set bytes mid
    (Char.chr ((Char.code (Bytes.get bytes mid) + 1) land 0xff));
  (match Store.of_string (Bytes.to_string bytes) with
   | Ok _ -> Alcotest.fail "one-byte tamper accepted"
   | Error _ -> ())

let test_refuse_fingerprint_mismatch () =
  match Codec.decode (Lazy.force small_snapshot) with
  | Error e -> Alcotest.failf "decode of a good snapshot failed: %s" e
  | Ok sections ->
    (* A well-formed, correctly sealed container whose stored
       fingerprint disagrees with the arena the current code rebuilds
       -- the staleness surface, distinct from corruption. *)
    let sections =
      List.map
        (fun (name, payload) ->
           if name = "fingerprint" then
             (name, String.make (String.length payload) '0')
           else (name, payload))
        sections
    in
    refused "fingerprint mismatch" ~expect:"fingerprint"
      (Codec.encode sections)

let test_load_missing_file () =
  match Store.load ~path:"/nonexistent/snapshot.prtba" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ()

let () =
  Alcotest.run "snapshot"
    [ ( "roundtrip",
        [ Alcotest.test_case "lr ring" `Quick test_roundtrip_lr;
          Alcotest.test_case "lr ring, sym=on" `Quick test_roundtrip_lr_sym;
          Alcotest.test_case "lr line" `Quick test_roundtrip_lr_line;
          Alcotest.test_case "election" `Quick test_roundtrip_election;
          Alcotest.test_case "coin" `Quick test_roundtrip_coin;
          Alcotest.test_case "consensus" `Quick test_roundtrip_consensus ] );
      ( "refusal",
        [ Alcotest.test_case "version skew" `Quick test_refuse_version_skew;
          Alcotest.test_case "truncation" `Quick test_refuse_truncation;
          Alcotest.test_case "one-byte tamper" `Quick test_refuse_tamper;
          Alcotest.test_case "fingerprint mismatch" `Quick
            test_refuse_fingerprint_mismatch;
          Alcotest.test_case "missing file" `Quick test_load_missing_file ] )
    ]
