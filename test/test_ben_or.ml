(* Tests for the Ben-Or consensus case study: the message-passing
   automaton (white box), the classical safety properties verified
   exhaustively, and the probabilistic termination bounds. *)

module Q = Proba.Rational
module BO = Ben_or
module Au = BO.Automaton

let rational = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check rational

let params = { Au.n = 3; f = 1; cap = 1; g = 1; k = 1 }

let mixed = [| false; false; true |]
let unanimous = [| false; false; false |]

(* Shared instances: explored once. *)
let inst_unanimous =
  lazy (BO.Proof.build ~n:3 ~f:1 ~cap:1 ~initial:unanimous ())

let inst_mixed = lazy (BO.Proof.build ~n:3 ~f:1 ~cap:2 ~initial:mixed ())

(* ------------------------------------------------------------------ *)
(* Automaton white-box *)

let test_start () =
  let s = Au.start params mixed in
  Alcotest.(check int) "3 procs" 3 (Array.length s.Au.procs);
  Alcotest.(check bool) "all reporting" true
    (Array.for_all (fun p -> p.Au.stage = Au.To_report) s.Au.procs);
  Alcotest.(check bool) "no messages" true
    (Array.for_all (Array.for_all (( = ) None)) s.Au.reports);
  Alcotest.(check bool) "agreement vacuous" true (Au.agreement s);
  Alcotest.(check bool) "nobody decided" false (Au.some_decided s)

let test_bad_params () =
  Alcotest.(check bool) "n <= 2f rejected" true
    (try ignore (Au.make { params with Au.n = 2 }); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong initial size" true
    (try ignore (Au.start params [| true |]); false
     with Invalid_argument _ -> true)

let test_report_publishes () =
  let pa = Au.make ~initial:mixed params in
  let s = Au.start params mixed in
  let report2 =
    List.find
      (fun st -> st.Core.Pa.action = Au.Report 2)
      (Core.Pa.enabled pa s)
  in
  match Proba.Dist.is_point report2.Core.Pa.dist with
  | Some s' ->
    Alcotest.(check bool) "message recorded" true
      (s'.Au.reports.(0).(2) = Some true);
    Alcotest.(check bool) "stage advanced" true
      (s'.Au.procs.(2).Au.stage = Au.Sent_report)
  | None -> Alcotest.fail "report should be deterministic"

let test_collect_requires_quorum () =
  let pa = Au.make ~initial:mixed params in
  let s = Au.start params mixed in
  (* Only process 0 has reported: it cannot collect yet (needs 2). *)
  let s1 =
    match
      List.find
        (fun st -> st.Core.Pa.action = Au.Report 0)
        (Core.Pa.enabled pa s)
    with
    | { Core.Pa.dist; _ } -> Option.get (Proba.Dist.is_point dist)
  in
  Alcotest.(check bool) "no collect with one report" true
    (List.for_all
       (fun st ->
          match st.Core.Pa.action with
          | Au.Collect_reports _ -> false
          | _ -> true)
       (Core.Pa.enabled pa s1));
  (* After a second report, process 0 may collect; the subset must
     contain its own message. *)
  let s2 =
    match
      List.find
        (fun st -> st.Core.Pa.action = Au.Report 1)
        (Core.Pa.enabled pa s1)
    with
    | { Core.Pa.dist; _ } -> Option.get (Proba.Dist.is_point dist)
  in
  let collects =
    List.filter_map
      (fun st ->
         match st.Core.Pa.action with
         | Au.Collect_reports (0, subset) -> Some subset
         | _ -> None)
      (Core.Pa.enabled pa s2)
  in
  Alcotest.(check int) "one subset available" 1 (List.length collects);
  Alcotest.(check bool) "own message included" true
    (List.mem 0 (List.hd collects))

let test_crash_budget () =
  let pa = Au.make ~initial:mixed params in
  let s = Au.start params mixed in
  let crashes st =
    List.filter
      (fun x -> match x.Core.Pa.action with Au.Crash _ -> true | _ -> false)
      (Core.Pa.enabled pa st)
  in
  Alcotest.(check int) "three crash options" 3 (List.length (crashes s));
  (* Crash one process: no more crashes offered (f = 1). *)
  let crashed =
    match crashes s with
    | { Core.Pa.dist; _ } :: _ -> Option.get (Proba.Dist.is_point dist)
    | [] -> Alcotest.fail "expected a crash step"
  in
  Alcotest.(check int) "budget exhausted" 0 (List.length (crashes crashed))

let test_zeno_free () =
  let inst = Lazy.force inst_mixed in
  Alcotest.(check bool) "encoding is zeno-free" true
    (Mdp.Zeno.is_well_formed inst.BO.Proof.arena)

(* ------------------------------------------------------------------ *)
(* Safety, exhaustively *)

let test_agreement () =
  Alcotest.(check bool) "agreement (unanimous instance)" true
    (BO.Proof.agreement_violation (Lazy.force inst_unanimous) = None);
  Alcotest.(check bool) "agreement (mixed instance, 2 rounds)" true
    (BO.Proof.agreement_violation (Lazy.force inst_mixed) = None)

let test_validity () =
  Alcotest.(check bool) "validity from all-zeros" true
    (BO.Proof.validity_violation (Lazy.force inst_unanimous) = None);
  Alcotest.(check bool) "vacuous on mixed" true
    (BO.Proof.validity_violation (Lazy.force inst_mixed) = None)

let test_state_counts () =
  Alcotest.(check int) "unanimous cap-1 space" 422
    (Mdp.Explore.num_states (Lazy.force inst_unanimous).BO.Proof.expl);
  Alcotest.(check int) "mixed cap-2 space" 16148
    (Mdp.Explore.num_states (Lazy.force inst_mixed).BO.Proof.expl)

(* ------------------------------------------------------------------ *)
(* Probabilistic termination *)

let test_fast_path_unanimous () =
  let a =
    BO.Proof.decision_arrow (Lazy.force inst_unanimous) ~rounds:1
      ~prob:Q.one
  in
  check_q "probability exactly 1" Q.one a.BO.Proof.attained;
  Alcotest.(check bool) "claim produced" true (a.BO.Proof.claim <> None);
  (match a.BO.Proof.claim with
   | Some c ->
     Alcotest.(check bool) "fully verified" true
       (Core.Claim.fully_verified c)
   | None -> ())

let test_round1_blockable_when_mixed () =
  (* The deterministic-impossibility shadow: for any single round the
     adversary has a schedule avoiding decision. *)
  let curve =
    BO.Proof.decision_curve (Lazy.force inst_mixed) ~rounds:[ 1 ]
  in
  check_q "round 1 forcible to 0" Q.zero (List.hd curve)

let test_two_rounds_give_an_eighth () =
  (* ... but the coin defeats every schedule across two rounds. *)
  let a =
    BO.Proof.decision_arrow (Lazy.force inst_mixed) ~rounds:2
      ~prob:(Q.of_ints 1 8)
  in
  check_q "attained exactly 2^-3" (Q.of_ints 1 8) a.BO.Proof.attained;
  Alcotest.(check bool) "claim produced" true (a.BO.Proof.claim <> None)

let test_capped_liveness () =
  Alcotest.(check bool) "unanimous decides surely" true
    (BO.Proof.capped_liveness (Lazy.force inst_unanimous));
  Alcotest.(check bool) "mixed can park at the cap" false
    (BO.Proof.capped_liveness (Lazy.force inst_mixed))

let test_simulation_unanimous () =
  (* Monte Carlo sanity: unanimous runs decide within one round under a
     random scheduler too. *)
  let pa = Au.make ~initial:unanimous params in
  let setup =
    { Sim.Monte_carlo.pa;
      scheduler = Sim.Scheduler.uniform pa;
      duration = Au.duration;
      start = Au.start params unanimous }
  in
  let prop =
    Sim.Monte_carlo.estimate_reach setup ~target:Au.some_decided ~within:3
      ~trials:300 ~seed:8
  in
  Alcotest.(check (float 1e-9)) "always decides" 1.0
    (Proba.Stat.Proportion.estimate prop)

let () =
  Alcotest.run "ben-or"
    [ ("automaton",
       [ Alcotest.test_case "start" `Quick test_start;
         Alcotest.test_case "bad params" `Quick test_bad_params;
         Alcotest.test_case "report publishes" `Quick test_report_publishes;
         Alcotest.test_case "collect needs quorum" `Quick
           test_collect_requires_quorum;
         Alcotest.test_case "crash budget" `Quick test_crash_budget;
         Alcotest.test_case "zeno-free" `Quick test_zeno_free ]);
      ("safety",
       [ Alcotest.test_case "agreement" `Quick test_agreement;
         Alcotest.test_case "validity" `Quick test_validity;
         Alcotest.test_case "state count pins" `Quick test_state_counts ]);
      ("termination",
       [ Alcotest.test_case "unanimous fast path" `Quick
           test_fast_path_unanimous;
         Alcotest.test_case "round 1 blockable" `Quick
           test_round1_blockable_when_mixed;
         Alcotest.test_case "two rounds: 1/8" `Quick
           test_two_rounds_give_an_eighth;
         Alcotest.test_case "capped liveness" `Quick test_capped_liveness;
         Alcotest.test_case "simulation agrees" `Quick
           test_simulation_unanimous ]) ]
