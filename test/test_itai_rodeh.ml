(* Tests for the leader-election case study. *)

module Q = Proba.Rational
module IR = Itai_rodeh
module Au = IR.Automaton

let rational = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check rational

let params n = { Au.n; g = 1; k = 1 }

let test_start () =
  let s = Au.start (params 4) in
  Alcotest.(check int) "all active" 4 (Au.actives s);
  Alcotest.(check bool) "no leader yet" false (Au.leader_elected s)

let test_actives_and_leader () =
  let s = [| Au.Inactive; Au.Flipped true; Au.Need_flip { c = 1; b = 1 } |] in
  Alcotest.(check int) "two active" 2 (Au.actives s);
  let s = [| Au.Inactive; Au.Inactive; Au.Flipped false |] in
  Alcotest.(check bool) "leader" true (Au.leader_elected s)

let test_at_most () =
  let s = [| Au.Inactive; Au.Flipped true; Au.Need_flip { c = 1; b = 1 } |] in
  Alcotest.(check bool) "at_most 2" true (Core.Pred.mem (Au.at_most 2) s);
  Alcotest.(check bool) "not at_most 1" false (Core.Pred.mem (Au.at_most 1) s);
  Alcotest.(check bool) "at_most 3" true (Core.Pred.mem (Au.at_most 3) s)

let test_bad_params () =
  Alcotest.(check bool) "n=1 rejected" true
    (try ignore (Au.make { Au.n = 1; g = 1; k = 1 }); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "g=0 rejected" true
    (try ignore (Au.make { Au.n = 2; g = 0; k = 1 }); false
     with Invalid_argument _ -> true)

let test_round_resolution () =
  (* Drive the automaton by hand: two processes, flip both, observe the
     resolution folded into the last flip. *)
  let pa = Au.make (params 2) in
  let s0 = Au.start (params 2) in
  let flip0 =
    List.find
      (fun st -> st.Core.Pa.action = Au.Flip 0)
      (Core.Pa.enabled pa s0)
  in
  List.iter
    (fun (s1, _) ->
       (* After one flip the round is still open. *)
       Alcotest.(check int) "still 2 active" 2 (Au.actives s1);
       let flip1 =
         List.find
           (fun st -> st.Core.Pa.action = Au.Flip 1)
           (Core.Pa.enabled pa s1)
       in
       List.iter
         (fun (s2, _) ->
            (* Resolution happened: either a leader (one head) or a
               fresh two-process round (same bits). *)
            if Au.leader_elected s2 then ()
            else begin
              Alcotest.(check int) "both survive" 2 (Au.actives s2);
              Alcotest.(check bool) "fresh round, budget exhausted" true
                (Array.for_all
                   (function
                     | Au.Need_flip { b; _ } -> b = 0
                     | Au.Inactive | Au.Flipped _ -> false)
                   s2)
            end)
         (Proba.Dist.support flip1.Core.Pa.dist))
    (Proba.Dist.support flip0.Core.Pa.dist)

let test_leader_absorbing () =
  let pa = Au.make (params 2) in
  let leader = [| Au.Need_flip { c = 1; b = 0 }; Au.Inactive |] in
  match Core.Pa.enabled pa leader with
  | [ { Core.Pa.action = Au.Tick; dist } ] ->
    Alcotest.(check bool) "self loop" true
      (Proba.Dist.is_point dist = Some leader)
  | _ -> Alcotest.fail "leader state should only tick"

let test_zeno_well_formed () =
  let inst = IR.Proof.build ~n:4 () in
  Alcotest.(check bool) "encoding is zeno-free" true
    (Mdp.Zeno.is_well_formed inst.IR.Proof.arena)

let test_state_counts () =
  let count n =
    Mdp.Explore.num_states (IR.Proof.build ~n ()).IR.Proof.expl
  in
  Alcotest.(check int) "n=2" 13 (count 2);
  Alcotest.(check int) "n=3" 60 (count 3);
  Alcotest.(check int) "n=4" 251 (count 4);
  Alcotest.(check int) "n=5" 1018 (count 5)

let test_arrows () =
  List.iter
    (fun n ->
       let inst = IR.Proof.build ~n () in
       let arrows = IR.Proof.arrows inst in
       Alcotest.(check int) "n-1 rungs" (n - 1) (List.length arrows);
       List.iter
         (fun a ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d %s holds" n a.IR.Proof.label)
              true (a.IR.Proof.claim <> None);
            Alcotest.(check bool) "attained >= 1/2" true
              (Q.geq a.IR.Proof.attained Q.half))
         arrows)
    [ 2; 3; 4 ]

let test_worst_rung_is_half () =
  (* The bottom rung (2 -> 1) is exactly 1/2: one coin decides. *)
  let inst = IR.Proof.build ~n:3 () in
  let bottom =
    List.find (fun a -> a.IR.Proof.label = "L2") (IR.Proof.arrows inst)
  in
  check_q "exactly 1/2" Q.half bottom.IR.Proof.attained

let test_composed () =
  let inst = IR.Proof.build ~n:4 () in
  match IR.Proof.composed inst with
  | Error e -> Alcotest.failf "composition failed: %s" e
  | Ok claim ->
    check_q "time n-1" (Q.of_int 3) (Core.Claim.time claim);
    check_q "prob 2^-(n-1)" (Q.of_ints 1 8) (Core.Claim.prob claim);
    Alcotest.(check bool) "verified" true (Core.Claim.fully_verified claim)

let test_direct_bound () =
  let inst = IR.Proof.build ~n:3 () in
  (* Pinned from the exact checker: the direct bound beats the composed
     2^-(n-1) = 1/4. *)
  check_q "direct 7/16" (Q.of_ints 7 16) (IR.Proof.direct_bound inst);
  Alcotest.(check bool) "beats composed" true
    (Q.geq (IR.Proof.direct_bound inst) (Q.of_ints 1 4))

let test_expected_bound () =
  check_q "2(n-1) at n=5" (Q.of_int 8)
    (Core.Expected.value (IR.Proof.expected_bound ~n:5));
  let inst = IR.Proof.build ~n:4 () in
  let measured = IR.Proof.max_expected_time inst in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f below bound 6" measured)
    true (measured < 6.0)

let test_liveness () =
  let inst = IR.Proof.build ~n:4 () in
  Alcotest.(check bool) "almost-sure election" true
    (IR.Proof.liveness_holds inst)

let test_simulation_agrees () =
  (* Monte Carlo election times stay below the derived bound. *)
  let p = params 6 in
  let pa = Au.make p in
  let setup =
    { Sim.Monte_carlo.pa;
      scheduler = Sim.Scheduler.uniform pa;
      duration = Au.duration;
      start = Au.start p }
  in
  let summary, missed =
    Sim.Monte_carlo.estimate_time setup ~target:Au.leader_elected
      ~trials:500 ~seed:5 ()
  in
  Alcotest.(check int) "no missed" 0 missed;
  Alcotest.(check bool) "mean below 2(n-1)" true
    (Proba.Stat.Summary.mean summary < 10.0)

let () =
  Alcotest.run "itai-rodeh"
    [ ("automaton",
       [ Alcotest.test_case "start" `Quick test_start;
         Alcotest.test_case "actives/leader" `Quick test_actives_and_leader;
         Alcotest.test_case "at_most" `Quick test_at_most;
         Alcotest.test_case "bad params" `Quick test_bad_params;
         Alcotest.test_case "round resolution" `Quick test_round_resolution;
         Alcotest.test_case "leader absorbing" `Quick test_leader_absorbing;
         Alcotest.test_case "state counts" `Quick test_state_counts;
         Alcotest.test_case "zeno-free" `Quick test_zeno_well_formed ]);
      ("proof",
       [ Alcotest.test_case "rungs hold (n=2..4)" `Quick test_arrows;
         Alcotest.test_case "bottom rung exactly 1/2" `Quick
           test_worst_rung_is_half;
         Alcotest.test_case "composed (n-1, 2^-(n-1))" `Quick test_composed;
         Alcotest.test_case "direct bound" `Quick test_direct_bound;
         Alcotest.test_case "expected bound" `Quick test_expected_bound;
         Alcotest.test_case "liveness" `Quick test_liveness;
         Alcotest.test_case "simulation agrees" `Quick
           test_simulation_agrees ]) ]
