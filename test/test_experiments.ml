(* Tests for the experiment-harness support library: the table
   renderer, the Example 4.1 automaton it ships, and the configuration
   profiles. *)

module Q = Proba.Rational

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_alignment () =
  let t = Experiments.Table.create [ "name"; "value" ] in
  Experiments.Table.row t [ "x"; "1" ];
  Experiments.Table.row t [ "longer"; "22" ];
  let s = Experiments.Table.to_string t in
  let lines = String.split_on_char '\n' s in
  (match lines with
   | header :: separator :: rows ->
     Alcotest.(check bool) "header first" true
       (String.length header > 0 && String.sub header 0 4 = "name");
     Alcotest.(check bool) "separator dashes" true
       (String.for_all (fun c -> c = '-' || c = ' ') separator);
     (* All non-empty lines align to the same width. *)
     let widths =
       List.filter_map
         (fun l -> if l = "" then None else Some (String.length l))
         (header :: separator :: rows)
     in
     Alcotest.(check bool) "consistent width" true
       (match widths with
        | w :: rest -> List.for_all (( = ) w) rest
        | [] -> false)
   | _ -> Alcotest.fail "expected header and separator")

let test_table_pads_and_truncates_rows () =
  let t = Experiments.Table.create [ "a"; "b" ] in
  Experiments.Table.row t [ "only" ];
  Experiments.Table.row t [ "x"; "y"; "extra" ];
  let s = Experiments.Table.to_string t in
  Alcotest.(check bool) "short row padded" true
    (Astring.String.is_infix ~affix:"only" s);
  Alcotest.(check bool) "extra cell dropped" false
    (Astring.String.is_infix ~affix:"extra" s)

let test_table_unicode_width () =
  (* Predicate names contain multibyte glyphs; the column math must
     count code points, not bytes. *)
  let t = Experiments.Table.create [ "set"; "v" ] in
  Experiments.Table.row t [ "RT ∪ C"; "1" ];
  Experiments.Table.row t [ "plain"; "2" ];
  let s = Experiments.Table.to_string t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  let width l =
    (* count code points *)
    let n = String.length l in
    let rec go i acc =
      if i >= n then acc
      else begin
        let c = Char.code l.[i] in
        let skip =
          if c < 0x80 then 1 else if c < 0xE0 then 2
          else if c < 0xF0 then 3 else 4
        in
        go (i + skip) (acc + 1)
      end
    in
    go 0 0
  in
  match lines with
  | first :: rest ->
    Alcotest.(check bool) "visual alignment" true
      (List.for_all (fun l -> width l = width first) rest)
  | [] -> Alcotest.fail "empty table"

let test_table_csv () =
  let t = Experiments.Table.create [ "a"; "b" ] in
  Experiments.Table.row t [ "plain"; "1,5" ];
  Experiments.Table.row t [ "say \"hi\""; "x" ];
  let csv = Experiments.Table.to_csv t in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check (list string)) "csv escaping"
    [ "a,b"; "plain,\"1,5\""; "\"say \"\"hi\"\"\",x"; "" ]
    lines

(* ------------------------------------------------------------------ *)
(* Race (Example 4.1 support automaton) *)

let test_race_all_states () =
  Alcotest.(check int) "nine states" 9
    (List.length Models.Race.all_states);
  (* They are pairwise distinct. *)
  let distinct =
    List.sort_uniq compare Models.Race.all_states
  in
  Alcotest.(check int) "no duplicates" 9 (List.length distinct)

let test_race_premise () =
  Alcotest.(check bool) "Prop 4.2 premise on the shipped automaton" true
    (Core.Event.check_premise Models.Race.pa
       ~states:Models.Race.all_states
       [ (Models.Race.Flip_p, Models.Race.p_heads, Q.half);
         (Models.Race.Flip_q, Models.Race.q_tails, Q.half) ])

let test_race_adversaries_agree_with_exploration () =
  let expl = Mdp.Explore.run Models.Race.pa in
  (* 9 syntactic states, but only those reachable from (?,?) count. *)
  Alcotest.(check int) "reachable states" 9 (Mdp.Explore.num_states expl)

(* ------------------------------------------------------------------ *)
(* Config profiles *)

let test_profiles_ordered () =
  let q = Experiments.Harness.quick in
  let d = Experiments.Harness.default in
  let f = Experiments.Harness.full in
  Alcotest.(check bool) "quick <= default trials" true
    (q.Experiments.Harness.sim_trials <= d.Experiments.Harness.sim_trials);
  Alcotest.(check bool) "default <= full trials" true
    (d.Experiments.Harness.sim_trials <= f.Experiments.Harness.sim_trials);
  Alcotest.(check bool) "full adds exhaustive sizes" true
    (List.length f.Experiments.Harness.lr_ns
     >= List.length d.Experiments.Harness.lr_ns);
  Alcotest.(check bool) "same seed everywhere" true
    (q.Experiments.Harness.seed = d.Experiments.Harness.seed
     && d.Experiments.Harness.seed = f.Experiments.Harness.seed)

let () =
  Alcotest.run "experiments"
    [ ("table",
       [ Alcotest.test_case "alignment" `Quick test_table_alignment;
         Alcotest.test_case "pads/truncates" `Quick
           test_table_pads_and_truncates_rows;
         Alcotest.test_case "unicode width" `Quick test_table_unicode_width;
         Alcotest.test_case "csv" `Quick test_table_csv ]);
      ("race",
       [ Alcotest.test_case "all states" `Quick test_race_all_states;
         Alcotest.test_case "premise" `Quick test_race_premise;
         Alcotest.test_case "exploration" `Quick
           test_race_adversaries_agree_with_exploration ]);
      ("profiles",
       [ Alcotest.test_case "ordering" `Quick test_profiles_ordered ]) ]
