(* Tests for the MDP engine: exploration, exact finite-horizon
   reachability, qualitative analysis, expected time, and the claim
   checker, against hand-computed values on the toy automata. *)

module Q = Proba.Rational
module D = Proba.Dist

let rational = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check rational

(* ------------------------------------------------------------------ *)
(* Funtbl *)

let test_funtbl_basic () =
  let t = Mdp.Funtbl.create ~equal:String.equal ~hash:Hashtbl.hash 4 in
  Alcotest.(check int) "empty" 0 (Mdp.Funtbl.length t);
  Mdp.Funtbl.add t "a" 1;
  Mdp.Funtbl.add t "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Mdp.Funtbl.find t "a");
  Alcotest.(check (option int)) "find missing" None (Mdp.Funtbl.find t "z");
  Alcotest.(check bool) "mem" true (Mdp.Funtbl.mem t "b");
  Mdp.Funtbl.add t "a" 10;
  Alcotest.(check (option int)) "replace" (Some 10) (Mdp.Funtbl.find t "a");
  Alcotest.(check int) "size after replace" 2 (Mdp.Funtbl.length t)

let test_funtbl_resize () =
  let t = Mdp.Funtbl.create ~equal:Int.equal ~hash:Hashtbl.hash 4 in
  for i = 1 to 1000 do Mdp.Funtbl.add t i (i * i) done;
  Alcotest.(check int) "size" 1000 (Mdp.Funtbl.length t);
  for i = 1 to 1000 do
    Alcotest.(check (option int)) (string_of_int i) (Some (i * i))
      (Mdp.Funtbl.find t i)
  done;
  let sum = Mdp.Funtbl.fold (fun k _ acc -> acc + k) t 0 in
  Alcotest.(check int) "fold" (1000 * 1001 / 2) sum

let test_funtbl_custom_equal () =
  (* Keys equal modulo 10. *)
  let t =
    Mdp.Funtbl.create ~equal:(fun a b -> a mod 10 = b mod 10)
      ~hash:(fun a -> a mod 10) 4
  in
  Mdp.Funtbl.add t 3 "x";
  Alcotest.(check (option string)) "modular hit" (Some "x")
    (Mdp.Funtbl.find t 13);
  Mdp.Funtbl.add t 23 "y";
  Alcotest.(check int) "merged" 1 (Mdp.Funtbl.length t)

(* ------------------------------------------------------------------ *)
(* Explore *)

let choice_expl = Mdp.Explore.run Test_support.Toys.Choice.pa
let walker_expl = Mdp.Explore.run Test_support.Toys.Walker.pa
let cascade_expl = Mdp.Explore.run Test_support.Toys.Cascade.pa
let escape_expl = Mdp.Explore.run Test_support.Toys.Escape.pa

(* Each fixture compiled once; the engines read only the arena. *)
let choice_arena = Mdp.Arena.compile choice_expl

let walker_arena =
  Mdp.Arena.compile ~is_tick:Test_support.Toys.Walker.is_tick walker_expl

let cascade_arena = Mdp.Arena.compile cascade_expl
let escape_arena = Mdp.Arena.compile escape_expl

let test_explore_choice () =
  Alcotest.(check int) "3 states" 3 (Mdp.Explore.num_states choice_expl);
  Alcotest.(check int) "2 choices" 2 (Mdp.Explore.num_choices choice_expl);
  Alcotest.(check int) "4 branches" 4 (Mdp.Explore.num_branches choice_expl);
  Alcotest.(check (list int)) "start at 0" [ 0 ]
    (Mdp.Explore.start_indices choice_expl)

let test_explore_roundtrip () =
  let n = Mdp.Explore.num_states walker_expl in
  for i = 0 to n - 1 do
    let s = Mdp.Explore.state walker_expl i in
    Alcotest.(check (option int)) "index/state" (Some i)
      (Mdp.Explore.index walker_expl s)
  done

let test_explore_walker_states () =
  (* Reachable: done, walk(1,1), walk(0,1), walk(1,0). *)
  Alcotest.(check int) "walker states" 4
    (Mdp.Explore.num_states walker_expl)

let test_explore_max_states () =
  Alcotest.(check bool) "too many states" true
    (try ignore (Mdp.Explore.run ~max_states:2 Test_support.Toys.Walker.pa); false
     with Mdp.Explore.Too_many_states _ -> true)

let test_explore_invariant () =
  Alcotest.(check bool) "invariant holds" true
    (Mdp.Explore.check_invariant walker_expl (fun s ->
         match s with
         | Test_support.Toys.Walker.Done -> true
         | Test_support.Toys.Walker.Walk { c; b } -> c + b >= 1)
     = None);
  (match
     Mdp.Explore.check_invariant walker_expl (fun s -> s = Test_support.Toys.Walker.Done)
   with
   | Some _ -> ()
   | None -> Alcotest.fail "expected a violation")

let test_explore_states_where () =
  let walks =
    Mdp.Explore.states_where walker_expl (fun s -> s <> Test_support.Toys.Walker.Done)
  in
  Alcotest.(check int) "three walk states" 3 (List.length walks)

(* ------------------------------------------------------------------ *)
(* Finite_horizon: step-bounded on Choice and Cascade *)

let value_at expl values s =
  match Mdp.Explore.index expl s with
  | Some i -> values.(i)
  | None -> Alcotest.fail "state not explored"

let test_fh_choice_min_max () =
  let target = Mdp.Explore.indicator choice_expl Test_support.Toys.Choice.s1 in
  let vmin = Mdp.Finite_horizon.min_reach_steps choice_arena ~target ~steps:1 in
  let vmax = Mdp.Finite_horizon.max_reach_steps choice_arena ~target ~steps:1 in
  check_q "min 1/3" (Q.of_ints 1 3) (value_at choice_expl vmin Test_support.Toys.Choice.S0);
  check_q "max 1/2" Q.half (value_at choice_expl vmax Test_support.Toys.Choice.S0);
  let v0 = Mdp.Finite_horizon.min_reach_steps choice_arena ~target ~steps:0 in
  check_q "0 steps from s0" Q.zero (value_at choice_expl v0 Test_support.Toys.Choice.S0);
  check_q "0 steps at target" Q.one (value_at choice_expl v0 Test_support.Toys.Choice.S1)

let test_fh_cascade () =
  let target = Mdp.Explore.indicator cascade_expl Test_support.Toys.Cascade.goal in
  let v2 = Mdp.Finite_horizon.min_reach_steps cascade_arena ~target ~steps:2 in
  check_q "two flips" (Q.of_ints 1 4)
    (value_at cascade_expl v2 (Test_support.Toys.Cascade.Level 0));
  let v4 = Mdp.Finite_horizon.min_reach_steps cascade_arena ~target ~steps:4 in
  (* Backward induction by hand: p3(L1) = 5/8, p3(L0) = 3/8, so
     p4(L0) = 1/2 * 5/8 + 1/2 * 3/8 = 1/2. *)
  check_q "four flips" Q.half
    (value_at cascade_expl v4 (Test_support.Toys.Cascade.Level 0))

(* ------------------------------------------------------------------ *)
(* Finite_horizon: timed, on the Walker *)

let walker_target = Mdp.Explore.indicator walker_expl Test_support.Toys.Walker.done_

let walker_min t =
  let v =
    Mdp.Finite_horizon.min_reach walker_arena ~target:walker_target ~ticks:t
  in
  value_at walker_expl v Test_support.Toys.Walker.start

let walker_max t =
  let v =
    Mdp.Finite_horizon.max_reach walker_arena ~target:walker_target ~ticks:t
  in
  value_at walker_expl v Test_support.Toys.Walker.start

let test_fh_walker_min () =
  (* Delaying adversary: min P[reach within t] = 1 - 2^-t. *)
  check_q "t=0" Q.zero (walker_min 0);
  check_q "t=1" Q.half (walker_min 1);
  check_q "t=2" (Q.of_ints 3 4) (walker_min 2);
  check_q "t=3" (Q.of_ints 7 8) (walker_min 3);
  check_q "t=6" (Q.of_ints 63 64) (walker_min 6)

let test_fh_walker_max () =
  (* Eager adversary flips immediately, then once per forced slot:
     max P[reach within t] = 1 - 2^-(t+1). *)
  check_q "t=0" Q.half (walker_max 0);
  check_q "t=1" (Q.of_ints 3 4) (walker_max 1);
  check_q "t=2" (Q.of_ints 7 8) (walker_max 2)

let test_fh_walker_policy () =
  let values, policy =
    Mdp.Finite_horizon.min_reach_with_policy walker_arena
      ~target:walker_target ~ticks:2
  in
  check_q "values agree" (Q.of_ints 3 4)
    (value_at walker_expl values Test_support.Toys.Walker.start);
  let start_i =
    Option.get (Mdp.Explore.index walker_expl Test_support.Toys.Walker.start)
  in
  (* With budget remaining, the minimizing adversary delays: it picks
     the tick step at the start state. *)
  let step_idx = policy.(2).(start_i) in
  let steps = Mdp.Explore.steps walker_expl start_i in
  Alcotest.(check bool) "delays via tick" true
    (Test_support.Toys.Walker.is_tick steps.(step_idx).Mdp.Explore.action);
  (* Target states carry no decision. *)
  let done_i = Option.get (Mdp.Explore.index walker_expl Test_support.Toys.Walker.Done) in
  Alcotest.(check int) "target has no step" (-1) (policy.(2).(done_i))

let test_fh_no_convergence () =
  (* A probabilistic zero-time self-loop: flip returns to the same state
     with probability 1/2 and never pays a tick; the layer fixpoint
     cannot close exactly and must be reported, not silently wrong. *)
  let module Bad = struct
    type state = S | Goal
    type action = Flip | Tick

    let enabled = function
      | S ->
        [ { Core.Pa.action = Flip; dist = D.coin S Goal };
          { Core.Pa.action = Tick; dist = D.point S } ]
      | Goal -> []

    let pa = Core.Pa.make ~start:[ S ] ~enabled ()
  end in
  let arena = Mdp.Arena.of_pa ~is_tick:(fun a -> a = Bad.Tick) Bad.pa in
  let target =
    Mdp.Arena.indicator arena (Core.Pred.make "goal" (fun s -> s = Bad.Goal))
  in
  Alcotest.(check bool) "raises No_convergence" true
    (try
       ignore (Mdp.Finite_horizon.max_reach arena ~target ~ticks:1);
       false
     with Mdp.Finite_horizon.No_convergence _ -> true)

let test_fh_bad_args () =
  Alcotest.(check bool) "negative ticks" true
    (try
       ignore
         (Mdp.Finite_horizon.min_reach walker_arena ~target:walker_target
            ~ticks:(-1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong target length" true
    (try
       ignore
         (Mdp.Finite_horizon.min_reach walker_arena ~target:[| true |]
            ~ticks:1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Qualitative *)

let test_qualitative_escape () =
  let target = Mdp.Explore.indicator escape_expl Test_support.Toys.Escape.goal in
  let always = Mdp.Qualitative.always_reaches escape_arena ~target in
  let at s = always.(Option.get (Mdp.Explore.index escape_expl s)) in
  Alcotest.(check bool) "start can stall" false (at Test_support.Toys.Escape.Start);
  Alcotest.(check bool) "goal trivially reaches" true (at Test_support.Toys.Escape.Goal);
  Alcotest.(check bool) "trap never reaches" false (at Test_support.Toys.Escape.Trap)

let test_qualitative_cascade_walker () =
  let target = Mdp.Explore.indicator cascade_expl Test_support.Toys.Cascade.goal in
  let always = Mdp.Qualitative.always_reaches cascade_arena ~target in
  Alcotest.(check bool) "cascade always reaches" true
    (Array.for_all (fun b -> b) always);
  let always_w =
    Mdp.Qualitative.always_reaches walker_arena ~target:walker_target
  in
  Alcotest.(check bool) "walker always reaches" true
    (Array.for_all (fun b -> b) always_w)

let test_qualitative_safe_core () =
  let target = Mdp.Explore.indicator escape_expl Test_support.Toys.Escape.goal in
  let core =
    Mdp.Qualitative.safe_core escape_arena ~avoid:(Array.map not target)
  in
  let at s = core.(Option.get (Mdp.Explore.index escape_expl s)) in
  Alcotest.(check bool) "start in core (can stay)" true (at Test_support.Toys.Escape.Start);
  Alcotest.(check bool) "trap in core (terminal)" true (at Test_support.Toys.Escape.Trap);
  Alcotest.(check bool) "goal not in core" false (at Test_support.Toys.Escape.Goal)

let test_qualitative_prob1e () =
  let target = Mdp.Explore.indicator escape_expl Test_support.Toys.Escape.goal in
  let can = Mdp.Qualitative.some_reaches_certainly escape_arena ~target in
  let at s = can.(Option.get (Mdp.Explore.index escape_expl s)) in
  Alcotest.(check bool) "start: adversary Go reaches surely" true
    (at Test_support.Toys.Escape.Start);
  Alcotest.(check bool) "trap cannot" false (at Test_support.Toys.Escape.Trap);
  let can_w =
    Mdp.Qualitative.some_reaches_certainly walker_arena ~target:walker_target
  in
  Alcotest.(check bool) "walker: all can reach surely" true
    (Array.for_all (fun b -> b) can_w)

(* ------------------------------------------------------------------ *)
(* Expected_time *)

let test_expected_walker () =
  let emax =
    Mdp.Expected_time.max_expected_ticks walker_arena ~target:walker_target ()
  in
  let emin =
    Mdp.Expected_time.min_expected_ticks walker_arena ~target:walker_target ()
  in
  let at values s =
    values.(Option.get (Mdp.Explore.index walker_expl s))
  in
  Alcotest.(check (float 1e-9)) "max expected 2" 2.0
    (at emax Test_support.Toys.Walker.start);
  Alcotest.(check (float 1e-9)) "min expected 1" 1.0
    (at emin Test_support.Toys.Walker.start);
  Alcotest.(check (float 1e-9)) "target 0" 0.0 (at emax Test_support.Toys.Walker.Done)

let test_expected_escape_infinite () =
  let target = Mdp.Explore.indicator escape_expl Test_support.Toys.Escape.goal in
  (* [escape_arena] was compiled without a tick mask, i.e. no step is a
     tick -- the same semantics the old [~is_tick:(fun _ -> false)]
     argument selected. *)
  let emax = Mdp.Expected_time.max_expected_ticks escape_arena ~target () in
  let at s = emax.(Option.get (Mdp.Explore.index escape_expl s)) in
  Alcotest.(check bool) "stalling start is infinite" true
    (at Test_support.Toys.Escape.Start = infinity);
  Alcotest.(check (float 0.0)) "goal 0" 0.0 (at Test_support.Toys.Escape.Goal)

(* ------------------------------------------------------------------ *)
(* Checker *)

let walking = Core.Pred.make "walking" (fun s -> s <> Test_support.Toys.Walker.Done)

let test_checker_arrow_holds () =
  let result =
    Mdp.Checker.check_arrow walker_arena ~granularity:1
      ~schema:Core.Schema.unit_time ~pre:walking
      ~post:Test_support.Toys.Walker.done_ ~time:(Q.of_int 2)
      ~prob:(Q.of_ints 3 4)
  in
  check_q "attained 3/4" (Q.of_ints 3 4) result.Mdp.Checker.attained;
  Alcotest.(check int) "three pre states" 3 result.Mdp.Checker.pre_states;
  (match result.Mdp.Checker.claim with
   | None -> Alcotest.fail "claim should be produced"
   | Some c ->
     Alcotest.(check bool) "fully verified" true (Core.Claim.fully_verified c);
     check_q "claim prob" (Q.of_ints 3 4) (Core.Claim.prob c))

let test_checker_arrow_fails () =
  let result =
    Mdp.Checker.check_arrow walker_arena ~granularity:1
      ~schema:Core.Schema.unit_time ~pre:walking
      ~post:Test_support.Toys.Walker.done_ ~time:(Q.of_int 2)
      ~prob:(Q.of_ints 7 8)
  in
  Alcotest.(check bool) "no claim" true (result.Mdp.Checker.claim = None);
  check_q "attained still reported" (Q.of_ints 3 4)
    result.Mdp.Checker.attained;
  (match result.Mdp.Checker.witness with
   | Some s -> Alcotest.(check bool) "witness is the start" true
                 (s = Test_support.Toys.Walker.start)
   | None -> Alcotest.fail "expected witness")

let test_checker_granularity () =
  (* With granularity 2, "time 1" is two ticks of the SAME automaton --
     used here only to exercise the conversion path. *)
  let result =
    Mdp.Checker.check_arrow walker_arena ~granularity:2
      ~schema:Core.Schema.unit_time ~pre:walking
      ~post:Test_support.Toys.Walker.done_ ~time:Q.one ~prob:Q.half
  in
  check_q "two ticks worth" (Q.of_ints 3 4) result.Mdp.Checker.attained

let test_checker_inclusion () =
  match
    Mdp.Checker.verify_inclusion walker_arena Test_support.Toys.Walker.done_
      (Core.Pred.make "anything" (fun _ -> true))
  with
  | Some incl ->
    Alcotest.(check bool) "verified" false (Core.Inclusion.is_axiom incl)
  | None -> Alcotest.fail "inclusion should hold"

let test_checker_inclusion_fails () =
  Alcotest.(check bool) "counterexample" true
    (Mdp.Checker.verify_inclusion walker_arena walking
       Test_support.Toys.Walker.done_
     = None)

(* ------------------------------------------------------------------ *)
(* Property tests: random small MDPs *)

(* Random layered automata: states 0..n-1 plus goal; each state gets 1-2
   steps, each step a coin between two random higher-numbered states (or
   goal), so exploration terminates and values are well defined. *)
let random_dag_pa seed n =
  let rng = Proba.Rng.create ~seed in
  let succs =
    Array.init n (fun i ->
        let pick () =
          let r = Proba.Rng.int rng (n - i) in
          if r = n - i - 1 then n else i + 1 + r
        in
        List.init
          (1 + Proba.Rng.int rng 2)
          (fun _ -> (pick (), pick ())))
  in
  let enabled s =
    if s >= n then []
    else
      List.map
        (fun (a, b) ->
           { Core.Pa.action = (a, b);
             dist = (if a = b then D.point a else D.coin a b) })
        succs.(s)
  in
  Core.Pa.make ~start:[ 0 ] ~enabled ()

let prop_min_leq_max =
  QCheck.Test.make ~name:"min_reach_steps <= max_reach_steps" ~count:50
    (QCheck.pair (QCheck.int_range 0 10000) (QCheck.int_range 2 8))
    (fun (seed, n) ->
       let pa = random_dag_pa seed n in
       let arena = Mdp.Arena.of_pa pa in
       let goal = Core.Pred.make "goal" (fun s -> s = n) in
       let target = Mdp.Arena.indicator arena goal in
       let vmin = Mdp.Finite_horizon.min_reach_steps arena ~target ~steps:n in
       let vmax = Mdp.Finite_horizon.max_reach_steps arena ~target ~steps:n in
       Array.for_all2 (fun a b -> Q.leq a b) vmin vmax)

let prop_reach_monotone_in_steps =
  QCheck.Test.make ~name:"reach probability monotone in horizon" ~count:50
    (QCheck.pair (QCheck.int_range 0 10000) (QCheck.int_range 2 8))
    (fun (seed, n) ->
       let pa = random_dag_pa seed n in
       let arena = Mdp.Arena.of_pa pa in
       let goal = Core.Pred.make "goal" (fun s -> s = n) in
       let target = Mdp.Arena.indicator arena goal in
       let prev =
         ref (Mdp.Finite_horizon.min_reach_steps arena ~target ~steps:0)
       in
       let ok = ref true in
       for k = 1 to n do
         let v = Mdp.Finite_horizon.min_reach_steps arena ~target ~steps:k in
         if not (Array.for_all2 Q.leq !prev v) then ok := false;
         prev := v
       done;
       !ok)

let prop_probabilities_in_range =
  QCheck.Test.make ~name:"reach probabilities lie in [0,1]" ~count:50
    (QCheck.pair (QCheck.int_range 0 10000) (QCheck.int_range 2 8))
    (fun (seed, n) ->
       let pa = random_dag_pa seed n in
       let arena = Mdp.Arena.of_pa pa in
       let goal = Core.Pred.make "goal" (fun s -> s = n) in
       let target = Mdp.Arena.indicator arena goal in
       let v = Mdp.Finite_horizon.max_reach_steps arena ~target ~steps:n in
       Array.for_all Q.is_probability v)

(* ------------------------------------------------------------------ *)
(* Float twin of the exact engine *)

let test_float_matches_exact () =
  let check_at ticks =
    let exact =
      Mdp.Finite_horizon.min_reach walker_arena ~target:walker_target ~ticks
    in
    let approx =
      Mdp.Finite_horizon.min_reach_float walker_arena ~target:walker_target
        ~ticks
    in
    Array.iteri
      (fun i q ->
         Alcotest.(check (float 1e-12))
           (Printf.sprintf "state %d, %d ticks" i ticks)
           (Q.to_float q) approx.(i))
      exact
  in
  List.iter check_at [ 0; 1; 2; 3; 5 ]

let test_float_max_matches () =
  let exact =
    Mdp.Finite_horizon.max_reach walker_arena ~target:walker_target ~ticks:2
  in
  let approx =
    Mdp.Finite_horizon.max_reach_float walker_arena ~target:walker_target
      ~ticks:2
  in
  Array.iteri
    (fun i q ->
       Alcotest.(check (float 1e-12)) "max agrees" (Q.to_float q) approx.(i))
    exact

(* ------------------------------------------------------------------ *)
(* Dyadic fast path vs rational engine *)

let test_dyadic_matches_rational_engine () =
  (* The walker's probabilities are dyadic: the fast path activates and
     must agree with the pure rational engine exactly. *)
  List.iter
    (fun ticks ->
       let fast =
         Mdp.Finite_horizon.min_reach walker_arena ~target:walker_target
           ~ticks
       in
       let slow =
         Mdp.Finite_horizon.min_reach_rational walker_arena
           ~target:walker_target ~ticks
       in
       Array.iteri
         (fun i q -> check_q (Printf.sprintf "t=%d state %d" ticks i) q
             fast.(i))
         slow)
    [ 0; 1; 3; 5 ]

let test_non_dyadic_falls_back () =
  (* Choice has a 1/3 branch: the dyadic engine cannot apply, and the
     wrapper must transparently produce the rational answer. *)
  let target = Mdp.Explore.indicator choice_expl Test_support.Toys.Choice.s1 in
  let v = Mdp.Finite_horizon.min_reach_steps choice_arena ~target ~steps:1 in
  check_q "fallback correct" (Q.of_ints 1 3)
    (value_at choice_expl v Test_support.Toys.Choice.S0)

(* ------------------------------------------------------------------ *)
(* Expected-time policy extraction *)

let test_expected_policy () =
  let values, policy =
    Mdp.Expected_time.max_expected_ticks_with_policy walker_arena
      ~target:walker_target ()
  in
  let start_i =
    Option.get (Mdp.Explore.index walker_expl Test_support.Toys.Walker.start)
  in
  Alcotest.(check (float 1e-9)) "value 2" 2.0 values.(start_i);
  (* The maximizing adversary delays: picks the tick step at start. *)
  let steps = Mdp.Explore.steps walker_expl start_i in
  Alcotest.(check bool) "delays" true
    (Test_support.Toys.Walker.is_tick
       steps.(policy.(start_i)).Mdp.Explore.action);
  let done_i =
    Option.get (Mdp.Explore.index walker_expl Test_support.Toys.Walker.Done)
  in
  Alcotest.(check int) "no decision at target" (-1) policy.(done_i)

(* ------------------------------------------------------------------ *)
(* Bisimulation minimization *)

let test_bisim_walker_no_reduction () =
  (* The walker's four states all behave differently: no merging. *)
  let labels =
    Array.init (Mdp.Explore.num_states walker_expl) (fun i ->
        if Mdp.Explore.state walker_expl i = Test_support.Toys.Walker.Done
        then 1 else 0)
  in
  let blocks = Mdp.Bisim.refine walker_arena ~labels () in
  Alcotest.(check int) "four blocks" 4 (Mdp.Bisim.num_blocks blocks)

let test_bisim_symmetric_reduction () =
  (* Two interleaved walkers sharing the clock: swapping the components
     is a bisimulation, so the quotient merges mirrored states. *)
  let open Test_support.Toys.Walker in
  let joint = Core.Compose.product_list ~sync:is_tick [ pa; pa ] in
  let expl = Mdp.Explore.run joint in
  let arena = Mdp.Arena.compile expl in
  let n = Mdp.Explore.num_states expl in
  let labels =
    Array.init n (fun i ->
        if List.for_all (fun s -> s = Done) (Mdp.Explore.state expl i) then 1
        else 0)
  in
  let blocks = Mdp.Bisim.refine arena ~labels () in
  let nb = Mdp.Bisim.num_blocks blocks in
  Alcotest.(check bool)
    (Printf.sprintf "blocks %d < states %d" nb n) true (nb < n);
  (* Mirror states share a block. *)
  let block_of s =
    blocks.(Option.get (Mdp.Explore.index expl s)) in
  let mixed = [ Done; Walk { c = 1; b = 1 } ] in
  Alcotest.(check int) "mirror symmetry"
    (block_of mixed) (block_of (List.rev mixed))

let test_bisim_quotient_preserves_values () =
  let open Test_support.Toys.Walker in
  let joint = Core.Compose.product_list ~sync:is_tick [ pa; pa ] in
  let expl = Mdp.Explore.run joint in
  let arena = Mdp.Arena.compile ~is_tick expl in
  let n = Mdp.Explore.num_states expl in
  let all_done s = List.for_all (fun x -> x = Done) s in
  let labels =
    Array.init n (fun i -> if all_done (Mdp.Explore.state expl i) then 1 else 0)
  in
  let blocks = Mdp.Bisim.refine arena ~labels () in
  let q = Mdp.Bisim.quotient arena blocks () in
  let qexpl = Mdp.Explore.run q in
  (* Target blocks = blocks of labelled states. *)
  let target_blocks = Hashtbl.create 8 in
  Array.iteri
    (fun i b -> if labels.(i) = 1 then Hashtbl.replace target_blocks b ())
    blocks;
  let qn = Mdp.Explore.num_states qexpl in
  let qtarget =
    Array.init qn (fun qi ->
        Hashtbl.mem target_blocks (Mdp.Explore.state qexpl qi))
  in
  let target =
    Array.init n (fun i -> labels.(i) = 1)
  in
  (* Quotient actions are the marshalled originals (the default
     action_key); recover tickness by comparing with marshalled Tick. *)
  let tick_key = Marshal.to_string Tick [] in
  let is_tick_q a = String.equal a tick_key in
  let qarena = Mdp.Arena.compile ~is_tick:is_tick_q qexpl in
  let v = Mdp.Finite_horizon.min_reach arena ~target ~ticks:2 in
  let vq =
    Mdp.Finite_horizon.min_reach qarena ~target:qtarget ~ticks:2
  in
  (* Build block -> quotient index map and compare pointwise. *)
  let qindex = Hashtbl.create 16 in
  for qi = 0 to qn - 1 do
    Hashtbl.replace qindex (Mdp.Explore.state qexpl qi) qi
  done;
  for i = 0 to n - 1 do
    match Hashtbl.find_opt qindex blocks.(i) with
    | Some qi -> check_q (Printf.sprintf "state %d" i) v.(i) vq.(qi)
    | None -> Alcotest.fail "block missing from quotient"
  done

(* ------------------------------------------------------------------ *)
(* Zeno wellformedness *)

let test_zeno_walker_ok () =
  Alcotest.(check bool) "walker well formed" true
    (Mdp.Zeno.is_well_formed walker_arena)

let test_zeno_detects_cycle () =
  let module Bad = struct
    type state = S | Goal
    type action = Flip | Tick

    let enabled = function
      | S ->
        [ { Core.Pa.action = Flip; dist = D.coin S Goal };
          { Core.Pa.action = Tick; dist = D.point S } ]
      | Goal -> []

    let pa = Core.Pa.make ~start:[ S ] ~enabled ()
  end in
  let arena = Mdp.Arena.of_pa ~is_tick:(fun a -> a = Bad.Tick) Bad.pa in
  (match Mdp.Zeno.check arena with
   | Mdp.Zeno.Probabilistic_zero_time_cycle members ->
     Alcotest.(check bool) "S is in the cycle" true
       (List.exists (fun i -> Mdp.Arena.state arena i = Bad.S) members)
   | Mdp.Zeno.Ok -> Alcotest.fail "cycle not detected")

let test_zeno_dirac_cycle_ok () =
  (* Deterministic zero-time self-loops (busy waiting) are harmless:
     only cycles carrying a probabilistic branch break convergence. *)
  let module Pure = struct
    type state = S | Goal
    type action = Spin | Tick

    let enabled = function
      | S ->
        [ { Core.Pa.action = Spin; dist = D.point S };
          { Core.Pa.action = Tick; dist = D.point Goal } ]
      | Goal -> []

    let pa = Core.Pa.make ~start:[ S ] ~enabled ()
  end in
  let arena = Mdp.Arena.of_pa ~is_tick:(fun a -> a = Pure.Tick) Pure.pa in
  Alcotest.(check bool) "dirac spin is fine" true
    (Mdp.Zeno.is_well_formed arena)

let test_zeno_case_studies () =
  (* All shipped case-study encodings are well formed by construction
     (budgets make zero-time layers acyclic). *)
  Alcotest.(check bool) "cascade (untimed: every step zero-time!)" false
    (Mdp.Zeno.is_well_formed cascade_arena);
  Alcotest.(check bool) "cascade with steps as ticks" true
    (Mdp.Zeno.is_well_formed
       (Mdp.Arena.compile ~is_tick:(fun _ -> true) cascade_expl))

(* ------------------------------------------------------------------ *)
(* DOT export *)

let test_dot_export () =
  let dot = Mdp.Dot.to_string choice_arena ~name:"choice" () in
  Alcotest.(check bool) "has header" true
    (Astring.String.is_prefix ~affix:"digraph" dot);
  Alcotest.(check bool) "has states" true
    (Astring.String.is_infix ~affix:"s0" dot
     && Astring.String.is_infix ~affix:"s2" dot);
  Alcotest.(check bool) "has probabilities" true
    (Astring.String.is_infix ~affix:"1/3" dot);
  Alcotest.(check bool) "well bracketed" true
    (Astring.String.is_suffix ~affix:"}\n" dot)

let test_dot_highlight_and_limit () =
  let dot =
    Mdp.Dot.to_string choice_arena
      ~highlight:(fun s -> s = Test_support.Toys.Choice.S1) ()
  in
  Alcotest.(check bool) "highlight present" true
    (Astring.String.is_infix ~affix:"lightgray" dot);
  Alcotest.(check bool) "limit enforced" true
    (try ignore (Mdp.Dot.to_string choice_arena ~max_states:1 ()); false
     with Invalid_argument _ -> true)

(* Random well-formed clocked automata: a "walker" over [m] phases with
   seed-derived coin biases (dyadic, denominator 8) and phase targets.
   The (c, b) discipline guarantees zero-time acyclicity, so all three
   engines must agree. *)
let random_clocked_pa seed m =
  let rng = Proba.Rng.create ~seed in
  let table =
    Array.init m (fun _ ->
        let num = 1 + Proba.Rng.int rng 7 in
        ( Q.of_ints num 8,
          Proba.Rng.int rng m,
          Proba.Rng.int rng m ))
  in
  let enabled (phase, c, b) =
    if phase = m - 1 then
      [ { Core.Pa.action = `Tick; dist = D.point (phase, c, b) } ]
    else begin
      let tick =
        if c > 0 then
          [ { Core.Pa.action = `Tick; dist = D.point (phase, c - 1, 1) } ]
        else []
      in
      let step =
        if b > 0 then begin
          let p, up, down = table.(phase) in
          [ { Core.Pa.action = `Step;
              dist =
                (if up = down then D.point (up, 1, b - 1)
                 else
                   D.make
                     [ ((up, 1, b - 1), p);
                       ((down, 1, b - 1), Q.sub Q.one p) ]) } ]
        end
        else []
      in
      tick @ step
    end
  in
  Core.Pa.make ~start:[ (0, 1, 1) ] ~enabled ()

let prop_engines_agree_on_random_clocked =
  QCheck.Test.make ~name:"dyadic, rational and float engines agree"
    ~count:40
    (QCheck.triple (QCheck.int_range 0 100_000) (QCheck.int_range 2 5)
       (QCheck.int_range 0 6))
    (fun (seed, m, ticks) ->
       let pa = random_clocked_pa seed m in
       let is_tick = function `Tick -> true | `Step -> false in
       let arena = Mdp.Arena.of_pa ~is_tick pa in
       let target =
         Array.init (Mdp.Arena.num_states arena) (fun i ->
             let phase, _, _ = Mdp.Arena.state arena i in
             phase = m - 1)
       in
       let exact = Mdp.Finite_horizon.min_reach arena ~target ~ticks in
       let rational =
         Mdp.Finite_horizon.min_reach_rational arena ~target ~ticks
       in
       let approx =
         Mdp.Finite_horizon.min_reach_float arena ~target ~ticks
       in
       Array.for_all2 Q.equal exact rational
       && Array.for_all2
         (fun q f -> Float.abs (Q.to_float q -. f) < 1e-9)
         exact approx)

let prop_random_clocked_zeno_free =
  QCheck.Test.make ~name:"random clocked automata are zeno-free" ~count:40
    (QCheck.pair (QCheck.int_range 0 100_000) (QCheck.int_range 2 5))
    (fun (seed, m) ->
       let pa = random_clocked_pa seed m in
       Mdp.Zeno.is_well_formed
         (Mdp.Arena.of_pa
            ~is_tick:(function `Tick -> true | `Step -> false) pa))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "mdp"
    [ ("funtbl",
       [ Alcotest.test_case "basic" `Quick test_funtbl_basic;
         Alcotest.test_case "resize" `Quick test_funtbl_resize;
         Alcotest.test_case "custom equal" `Quick test_funtbl_custom_equal ]);
      ("explore",
       [ Alcotest.test_case "choice" `Quick test_explore_choice;
         Alcotest.test_case "roundtrip" `Quick test_explore_roundtrip;
         Alcotest.test_case "walker states" `Quick test_explore_walker_states;
         Alcotest.test_case "max_states" `Quick test_explore_max_states;
         Alcotest.test_case "invariant" `Quick test_explore_invariant;
         Alcotest.test_case "states_where" `Quick test_explore_states_where ]);
      ("finite-horizon",
       [ Alcotest.test_case "choice min/max" `Quick test_fh_choice_min_max;
         Alcotest.test_case "cascade" `Quick test_fh_cascade;
         Alcotest.test_case "walker min (delay)" `Quick test_fh_walker_min;
         Alcotest.test_case "walker max (eager)" `Quick test_fh_walker_max;
         Alcotest.test_case "policy extraction" `Quick test_fh_walker_policy;
         Alcotest.test_case "zero-time cycle detected" `Quick
           test_fh_no_convergence;
         Alcotest.test_case "bad arguments" `Quick test_fh_bad_args ]);
      ("qualitative",
       [ Alcotest.test_case "escape" `Quick test_qualitative_escape;
         Alcotest.test_case "cascade/walker" `Quick
           test_qualitative_cascade_walker;
         Alcotest.test_case "safe core" `Quick test_qualitative_safe_core;
         Alcotest.test_case "prob1e" `Quick test_qualitative_prob1e ]);
      ("expected-time",
       [ Alcotest.test_case "walker" `Quick test_expected_walker;
         Alcotest.test_case "escape infinite" `Quick
           test_expected_escape_infinite ]);
      ("checker",
       [ Alcotest.test_case "arrow holds" `Quick test_checker_arrow_holds;
         Alcotest.test_case "arrow fails" `Quick test_checker_arrow_fails;
         Alcotest.test_case "granularity" `Quick test_checker_granularity;
         Alcotest.test_case "inclusion" `Quick test_checker_inclusion;
         Alcotest.test_case "inclusion fails" `Quick
           test_checker_inclusion_fails ]);
      ("float-engine",
       [ Alcotest.test_case "min matches exact" `Quick
           test_float_matches_exact;
         Alcotest.test_case "max matches exact" `Quick
           test_float_max_matches ]);
      ("dyadic-engine",
       [ Alcotest.test_case "matches rational" `Quick
           test_dyadic_matches_rational_engine;
         Alcotest.test_case "non-dyadic falls back" `Quick
           test_non_dyadic_falls_back ]);
      ("expected-policy",
       [ Alcotest.test_case "extraction" `Quick test_expected_policy ]);
      ("zeno",
       [ Alcotest.test_case "walker ok" `Quick test_zeno_walker_ok;
         Alcotest.test_case "detects cycle" `Quick test_zeno_detects_cycle;
         Alcotest.test_case "dirac cycles fine" `Quick
           test_zeno_dirac_cycle_ok;
         Alcotest.test_case "case studies" `Quick test_zeno_case_studies ]);
      ("dot",
       [ Alcotest.test_case "export" `Quick test_dot_export;
         Alcotest.test_case "highlight and limit" `Quick
           test_dot_highlight_and_limit ]);
      ("bisim",
       [ Alcotest.test_case "walker: no reduction" `Quick
           test_bisim_walker_no_reduction;
         Alcotest.test_case "symmetry reduction" `Quick
           test_bisim_symmetric_reduction;
         Alcotest.test_case "quotient preserves values" `Quick
           test_bisim_quotient_preserves_values ]);
      qsuite "mdp-props"
        [ prop_min_leq_max; prop_reach_monotone_in_steps;
          prop_probabilities_in_range;
          prop_engines_agree_on_random_clocked;
          prop_random_clocked_zeno_free ] ]
