(* Tests for the domain pool and for the determinism contract of the
   parallel analysis paths: exact engine outputs must be bit-identical
   for any number of domains, and Monte Carlo estimates bit-identical
   with and without a pool. *)

module P = Parallel.Pool
module Q = Proba.Rational
module LR = Lehmann_rabin
module BO = Ben_or

let rational = Alcotest.testable Q.pp Q.equal

(* Run [f] with a fresh pool of [domains], shutting it down afterwards
   even on failure. *)
let with_pool domains f =
  let pool = P.create ~domains in
  Fun.protect ~finally:(fun () -> P.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Pool unit tests *)

let test_parallel_for_covers () =
  List.iter
    (fun domains ->
       with_pool domains (fun pool ->
           let n = 1003 in
           let hits = Array.make n 0 in
           P.parallel_for pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
           Alcotest.(check bool)
             (Printf.sprintf "each index once (%d domains)" domains)
             true
             (Array.for_all (( = ) 1) hits)))
    [ 1; 2; 4 ]

let test_parallel_for_empty () =
  with_pool 2 (fun pool ->
      let ran = ref false in
      P.parallel_for pool ~n:0 (fun _ -> ran := true);
      Alcotest.(check bool) "no work for n = 0" false !ran)

let test_map_reduce_is_sequential_fold () =
  (* List append is associative but not commutative: any reordering of
     chunk results would be visible. *)
  List.iter
    (fun domains ->
       with_pool domains (fun pool ->
           let n = 257 in
           let got =
             P.map_reduce pool ~n ~combine:( @ ) ~init:[] (fun i -> [ i ])
           in
           Alcotest.(check (list int))
             (Printf.sprintf "in order (%d domains)" domains)
             (List.init n Fun.id) got))
    [ 1; 3; 4 ]

let test_map_reduce_sum () =
  with_pool 4 (fun pool ->
      let n = 10_000 in
      let sum =
        P.map_reduce pool ~n ~combine:( + ) ~init:0 (fun i -> i)
      in
      Alcotest.(check int) "gauss" (n * (n - 1) / 2) sum)

let test_map_reduce_chunking () =
  with_pool 2 (fun pool ->
      List.iter
        (fun chunks ->
           let got =
             P.map_reduce pool ~chunks ~n:10 ~combine:( @ ) ~init:[]
               (fun i -> [ i ])
           in
           Alcotest.(check (list int))
             (Printf.sprintf "chunks = %d" chunks)
             (List.init 10 Fun.id) got)
        [ 1; 2; 7; 10; 64 ])

let test_exception_propagates () =
  with_pool 4 (fun pool ->
      Alcotest.check_raises "worker failure resurfaces"
        (Failure "boom 57")
        (fun () ->
           P.parallel_for pool ~n:100 (fun i ->
               if i = 57 then failwith "boom 57")))

let test_stop_cancels () =
  with_pool 2 (fun pool ->
      let cancelled =
        try
          P.parallel_for pool ~stop:(fun () -> Some "budget") ~n:1000
            (fun _ -> ());
          None
        with P.Cancelled reason -> Some reason
      in
      Alcotest.(check (option string)) "cancelled with reason"
        (Some "budget") cancelled)

let test_shutdown_idempotent () =
  let pool = P.create ~domains:3 in
  Alcotest.(check int) "domains" 3 (P.domains pool);
  P.shutdown pool;
  P.shutdown pool

(* ------------------------------------------------------------------ *)
(* Determinism of the exact engines across domain counts.

   This is the acceptance property of the parallel subsystem: the
   rational (and dyadic) finite-horizon values computed with a pool are
   bit-identical -- structurally equal, not merely numerically equal --
   for every pool size, and numerically equal to the sequential
   schedule's fixpoint. *)

let lr_inst = lazy (LR.Proof.build ~n:3 ())

let bo_inst =
  lazy (BO.Proof.build ~n:3 ~f:1 ~cap:1 ~initial:[| false; false; true |] ())

let check_bit_identical name (seq : Q.t array) pooled =
  List.iter
    (fun (domains, (v : Q.t array)) ->
       Alcotest.(check int)
         (Printf.sprintf "%s: length (%d domains)" name domains)
         (Array.length seq) (Array.length v);
       Array.iteri
         (fun i x ->
            if not (x = v.(i)) then
              Alcotest.failf
                "%s: state %d differs at %d domains: %s vs %s" name i
                domains (Q.to_string x) (Q.to_string v.(i)))
         (snd (List.hd pooled)))
    pooled;
  (* Pooled Jacobi and sequential Gauss-Seidel reach the same exact
     fixpoint. *)
  Array.iteri
    (fun i x ->
       Alcotest.check rational
         (Printf.sprintf "%s: matches sequential at state %d" name i)
         x
         (snd (List.hd pooled)).(i))
    seq

let reach_all_pools name arena ~target ~ticks =
  let seq = Mdp.Finite_horizon.min_reach arena ~target ~ticks in
  let pooled =
    List.map
      (fun domains ->
         ( domains,
           with_pool domains (fun pool ->
               Mdp.Finite_horizon.min_reach ~pool arena ~target ~ticks) ))
      [ 1; 2; 4 ]
  in
  check_bit_identical name seq pooled

let test_lr_min_reach_bit_identical () =
  let inst = Lazy.force lr_inst in
  let arena = inst.LR.Proof.arena in
  reach_all_pools "LR min_reach" arena
    ~target:(Mdp.Arena.indicator arena LR.Regions.c)
    ~ticks:13

let test_ben_or_min_reach_bit_identical () =
  let inst = Lazy.force bo_inst in
  let arena = inst.BO.Proof.arena in
  let target =
    Mdp.Arena.indicator arena
      (Core.Pred.make "decided" BO.Automaton.some_decided)
  in
  reach_all_pools "Ben-Or min_reach" arena ~target ~ticks:3

let test_lr_max_reach_and_policy_pools () =
  let inst = Lazy.force lr_inst in
  let arena = inst.LR.Proof.arena in
  let target = Mdp.Arena.indicator arena LR.Regions.c in
  let seq = Mdp.Finite_horizon.max_reach arena ~target ~ticks:5 in
  with_pool 4 (fun pool ->
      let par =
        Mdp.Finite_horizon.max_reach ~pool arena ~target ~ticks:5
      in
      Array.iteri
        (fun i x ->
           Alcotest.check rational
             (Printf.sprintf "max_reach state %d" i)
             x par.(i))
        seq;
      let v1, p1 =
        Mdp.Finite_horizon.min_reach_with_policy ~pool arena ~target
          ~ticks:5
      in
      let v0, p0 =
        Mdp.Finite_horizon.min_reach_with_policy arena ~target ~ticks:5
      in
      Alcotest.(check bool) "policies agree" true (p0 = p1);
      Array.iteri
        (fun i x ->
           Alcotest.check rational
             (Printf.sprintf "policy values state %d" i)
             x v1.(i))
        v0)

let test_float_engines_pool_invariant () =
  (* Float results are bit-identical across pool sizes (same Jacobi
     schedule, same chunk grid); sequential Gauss-Seidel may differ in
     low-order bits and is not compared here. *)
  let inst = Lazy.force lr_inst in
  let arena = inst.LR.Proof.arena in
  let target = Mdp.Arena.indicator arena LR.Regions.c in
  let reach_at domains =
    with_pool domains (fun pool ->
        Mdp.Finite_horizon.min_reach_float ~pool arena ~target ~ticks:8)
  in
  let expected_at domains =
    with_pool domains (fun pool ->
        Mdp.Expected_time.max_expected_ticks ~pool arena ~target ())
  in
  let r1 = reach_at 1 and r4 = reach_at 4 in
  Alcotest.(check bool) "min_reach_float 1 = 4 domains" true (r1 = r4);
  let e1 = expected_at 1 and e4 = expected_at 4 in
  Alcotest.(check bool) "max_expected_ticks 1 = 4 domains" true (e1 = e4);
  (* And against the sequential schedule the fixpoints agree to the
     value-iteration tolerance. *)
  let eseq = Mdp.Expected_time.max_expected_ticks arena ~target () in
  Array.iteri
    (fun i x ->
       let y = e4.(i) in
       if Float.is_finite x || Float.is_finite y then
         Alcotest.(check bool)
           (Printf.sprintf "expected ticks close at state %d" i)
           true
           (Float.abs (x -. y) < 1e-6))
    eseq

(* ------------------------------------------------------------------ *)
(* Monte Carlo reproducibility *)

let mc_setup () =
  let inst = Lazy.force lr_inst in
  let pa = Mdp.Explore.automaton inst.LR.Proof.expl in
  { Sim.Monte_carlo.pa;
    scheduler = Sim.Scheduler.uniform pa;
    duration = LR.Automaton.duration;
    start = LR.State.all_trying ~n:3 ~g:1 ~k:1 }

let test_monte_carlo_pool_bit_identical () =
  let setup = mc_setup () in
  let target = Core.Pred.mem LR.Regions.c in
  let seq =
    Sim.Monte_carlo.estimate_reach setup ~target ~within:13 ~trials:400
      ~seed:42
  in
  List.iter
    (fun domains ->
       with_pool domains (fun pool ->
           let par =
             Sim.Monte_carlo.estimate_reach ~pool setup ~target ~within:13
               ~trials:400 ~seed:42
           in
           Alcotest.(check int)
             (Printf.sprintf "trials (%d domains)" domains)
             (Proba.Stat.Proportion.trials seq)
             (Proba.Stat.Proportion.trials par);
           Alcotest.(check int)
             (Printf.sprintf "successes (%d domains)" domains)
             (Proba.Stat.Proportion.successes seq)
             (Proba.Stat.Proportion.successes par)))
    [ 1; 4 ]

let test_monte_carlo_times_bit_identical () =
  let setup = mc_setup () in
  let target = Core.Pred.mem LR.Regions.c in
  let run pool =
    Sim.Monte_carlo.estimate_time ?pool setup ~target ~trials:300 ~seed:7 ()
  in
  let s_seq, missed_seq = run None in
  with_pool 4 (fun pool ->
      let s_par, missed_par = run (Some pool) in
      Alcotest.(check int) "missed" missed_seq missed_par;
      Alcotest.(check int) "count" (Proba.Stat.Summary.count s_seq)
        (Proba.Stat.Summary.count s_par);
      (* Welford replay in trial order: identical floats. *)
      Alcotest.(check bool) "mean bit-identical" true
        (Proba.Stat.Summary.mean s_seq = Proba.Stat.Summary.mean s_par);
      Alcotest.(check bool) "variance bit-identical" true
        (Proba.Stat.Summary.variance s_seq
         = Proba.Stat.Summary.variance s_par))

let test_monte_carlo_budgeted_counts () =
  let setup = mc_setup () in
  let target = Core.Pred.mem LR.Regions.c in
  (* Unlimited budget: the pooled path must run exactly the batched
     trial count the sequential path runs, with the same successes. *)
  let seq =
    Sim.Monte_carlo.estimate_reach_budgeted setup ~target ~within:13
      ~initial_trials:32 ~seed:5 ()
  in
  with_pool 4 (fun pool ->
      let par =
        Sim.Monte_carlo.estimate_reach_budgeted ~pool setup ~target
          ~within:13 ~initial_trials:32 ~seed:5 ()
      in
      Alcotest.(check int) "trials" seq.Sim.Monte_carlo.trials_run
        par.Sim.Monte_carlo.trials_run;
      Alcotest.(check int) "successes"
        (Proba.Stat.Proportion.successes seq.Sim.Monte_carlo.prop)
        (Proba.Stat.Proportion.successes par.Sim.Monte_carlo.prop);
      Alcotest.(check int) "batches" seq.Sim.Monte_carlo.batches
        par.Sim.Monte_carlo.batches)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [ ("pool",
       [ Alcotest.test_case "parallel_for covers" `Quick
           test_parallel_for_covers;
         Alcotest.test_case "parallel_for empty" `Quick
           test_parallel_for_empty;
         Alcotest.test_case "map_reduce ordered" `Quick
           test_map_reduce_is_sequential_fold;
         Alcotest.test_case "map_reduce sum" `Quick test_map_reduce_sum;
         Alcotest.test_case "map_reduce chunking" `Quick
           test_map_reduce_chunking;
         Alcotest.test_case "exception propagates" `Quick
           test_exception_propagates;
         Alcotest.test_case "stop cancels" `Quick test_stop_cancels;
         Alcotest.test_case "shutdown idempotent" `Quick
           test_shutdown_idempotent ]);
      ("determinism",
       [ Alcotest.test_case "LR min_reach bit-identical" `Quick
           test_lr_min_reach_bit_identical;
         Alcotest.test_case "Ben-Or min_reach bit-identical" `Quick
           test_ben_or_min_reach_bit_identical;
         Alcotest.test_case "max_reach and policy" `Quick
           test_lr_max_reach_and_policy_pools;
         Alcotest.test_case "float engines pool-invariant" `Quick
           test_float_engines_pool_invariant ]);
      ("monte-carlo",
       [ Alcotest.test_case "estimate_reach bit-identical" `Quick
           test_monte_carlo_pool_bit_identical;
         Alcotest.test_case "estimate_time bit-identical" `Quick
           test_monte_carlo_times_bit_identical;
         Alcotest.test_case "budgeted counts agree" `Quick
           test_monte_carlo_budgeted_counts ]) ]
