(* Tests for the model registry's domain safety and LRU accounting:
   domains hammering the same key must trigger exactly one exploration
   and one arena compile (the waiters block on the build-in-progress
   marker and come back as cache hits), and a bounded registry must
   evict by recency.  Counters are process-global, so every test reads
   deltas against a snapshot rather than absolute values. *)

module LR = Lehmann_rabin

let snapshot () = Models.stats ()

let delta (a : Models.stats) (b : Models.stats) =
  ( b.Models.explorations - a.Models.explorations,
    b.Models.compiles - a.Models.compiles,
    b.Models.builds - a.Models.builds,
    b.Models.cache_hits - a.Models.cache_hits )

(* Modest domain counts: the CI container has one core, and the point
   is interleaving under the registry lock, not throughput. *)
let hammer_domains = 4

let test_hammer_one_key () =
  let before = snapshot () in
  let barrier = Atomic.make 0 in
  let spawned =
    List.init hammer_domains (fun _ ->
        Domain.spawn (fun () ->
            (* Line the domains up so the build races for real. *)
            Atomic.incr barrier;
            while Atomic.get barrier < hammer_domains do
              Domain.cpu_relax ()
            done;
            let inst = Models.lr ~n:3 ~g:1 ~k:1 () in
            Mdp.Arena.num_states inst.LR.Proof.arena))
  in
  let states = List.map Domain.join spawned in
  let explorations, compiles, builds, hits = delta before (snapshot ()) in
  Alcotest.(check int) "one exploration" 1 explorations;
  Alcotest.(check int) "one compile" 1 compiles;
  Alcotest.(check int) "one build" 1 builds;
  Alcotest.(check int) "rest are hits" (hammer_domains - 1) hits;
  (match states with
   | s :: rest ->
     List.iter (Alcotest.(check int) "same instance" s) rest
   | [] -> Alcotest.fail "no domains ran")

let test_hammer_distinct_keys () =
  (* Distinct keys must not serialize behind one another's builds, and
     each key still builds exactly once. *)
  let before = snapshot () in
  let spawned =
    List.init hammer_domains (fun i ->
        Domain.spawn (fun () ->
            let n = 2 + (i mod 2) in
            ignore (Models.election ~n ())))
  in
  List.iter Domain.join spawned;
  let explorations, compiles, builds, hits = delta before (snapshot ()) in
  Alcotest.(check int) "two explorations" 2 explorations;
  Alcotest.(check int) "two compiles" 2 compiles;
  Alcotest.(check int) "two builds" 2 builds;
  Alcotest.(check int) "rest are hits" (hammer_domains - 2) hits

let test_repeat_is_hit () =
  let before = snapshot () in
  ignore (Models.coin ~n:2 ~bound:2 ());
  ignore (Models.coin ~n:2 ~bound:2 ());
  ignore (Models.coin ~n:2 ~bound:3 ());
  let explorations, compiles, builds, hits = delta before (snapshot ()) in
  Alcotest.(check int) "two explorations" 2 explorations;
  Alcotest.(check int) "two compiles" 2 compiles;
  Alcotest.(check int) "two builds" 2 builds;
  Alcotest.(check int) "one hit" 1 hits

let test_eviction_by_capacity () =
  let before = snapshot () in
  (* Tight capacity: barely fits one small instance, so the second
     build must push the first out. *)
  Models.set_capacity (Some 1);
  Fun.protect
    ~finally:(fun () -> Models.set_capacity None)
    (fun () ->
       ignore (Models.lr ~n:2 ());
       ignore (Models.election ~n:2 ());
       let s = snapshot () in
       let evictions = s.Models.evictions - before.Models.evictions in
       Alcotest.(check bool) "evictions happened" true (evictions >= 1);
       (* Each entry overflows the 1-byte capacity on insert, so the
          registry ends the sequence empty and a re-request rebuilds. *)
       let before_rebuild = snapshot () in
       ignore (Models.lr ~n:2 ());
       let _, _, builds, hits = delta before_rebuild (snapshot ()) in
       Alcotest.(check int) "rebuilt after eviction" 1 builds;
       Alcotest.(check int) "no hit" 0 hits)

let test_unbounded_keeps_entries () =
  (* With the bound lifted (the CLI default), repeats keep hitting. *)
  let before = snapshot () in
  ignore (Models.lr ~n:2 ());
  ignore (Models.lr ~n:2 ());
  let _, _, builds, hits = delta before (snapshot ()) in
  Alcotest.(check int) "one build" 1 builds;
  Alcotest.(check int) "one hit" 1 hits

let test_race_target_in_registry () =
  (* The Example 4.1 automaton lives in the registry now (it broke the
     models <- experiments dependency cycle); its lint entry must be
     listed and clean. *)
  match Models.find_opt "example:race" with
  | None -> Alcotest.fail "example:race not registered"
  | Some entry ->
    let report = entry.Models.lint ~max_states:100_000 () in
    Alcotest.(check int) "no errors" 0 (Analysis.Report.errors report);
    Alcotest.(check bool) "Race is exposed" true
      (Core.Pred.mem Models.Race.p_heads Models.Race.start = false)

let () =
  Alcotest.run "models"
    [ ( "domain safety",
        [ Alcotest.test_case "hammer one key" `Quick test_hammer_one_key;
          Alcotest.test_case "hammer distinct keys" `Quick
            test_hammer_distinct_keys;
          Alcotest.test_case "repeat is a hit" `Quick test_repeat_is_hit ] );
      ( "lru",
        [ Alcotest.test_case "eviction by capacity" `Quick
            test_eviction_by_capacity;
          Alcotest.test_case "unbounded keeps entries" `Quick
            test_unbounded_keeps_entries ] );
      ( "registry",
        [ Alcotest.test_case "example:race target" `Quick
            test_race_target_in_registry ] ) ]
