(* Tests for the shared-coin case study: the random-walk automaton, the
   composition ladder, and the classical bound^2 expected-time law. *)

module Q = Proba.Rational
module SC = Shared_coin
module Au = SC.Automaton

let rational = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check rational

let params = { Au.n = 2; bound = 2; g = 1; k = 1 }

let test_start () =
  let s = Au.start params in
  Alcotest.(check int) "counter 0" 0 s.Au.counter;
  Alcotest.(check bool) "not decided" false (Au.decided params s);
  Alcotest.(check bool) "in at_least 0" true
    (Core.Pred.mem (Au.at_least params 0) s);
  Alcotest.(check bool) "not in at_least 1" false
    (Core.Pred.mem (Au.at_least params 1) s)

let test_flip_moves_counter () =
  let pa = Au.make params in
  let s = Au.start params in
  let flips =
    List.filter
      (fun st -> not (Au.is_tick st.Core.Pa.action))
      (Core.Pa.enabled pa s)
  in
  Alcotest.(check int) "two processes can flip" 2 (List.length flips);
  List.iter
    (fun st ->
       let outcomes = Proba.Dist.support st.Core.Pa.dist in
       Alcotest.(check int) "fair coin" 2 (List.length outcomes);
       List.iter
         (fun (t, w) ->
            check_q "weight 1/2" Q.half w;
            Alcotest.(check bool) "moved by one" true
              (abs t.Au.counter = 1))
         outcomes)
    flips

let test_decided_absorbs () =
  let pa = Au.make params in
  let decided_state =
    { Au.counter = 2; clocks = Array.make 2 (1, 1) }
  in
  match Core.Pa.enabled pa decided_state with
  | [ { Core.Pa.action = Au.Tick; dist } ] ->
    Alcotest.(check bool) "self loop" true
      (Proba.Dist.is_point dist = Some decided_state)
  | _ -> Alcotest.fail "decided states should only tick"

let test_deadline_forces_flip () =
  let pa = Au.make params in
  let s = { Au.counter = 0; clocks = [| (0, 1); (1, 1) |] } in
  let acts = List.map (fun st -> st.Core.Pa.action) (Core.Pa.enabled pa s) in
  Alcotest.(check bool) "tick blocked" false (List.mem Au.Tick acts);
  Alcotest.(check bool) "flip 0 available" true (List.mem (Au.Flip 0) acts)

let test_budget_blocks_flip () =
  let pa = Au.make params in
  let s = { Au.counter = 0; clocks = [| (1, 0); (1, 1) |] } in
  let acts = List.map (fun st -> st.Core.Pa.action) (Core.Pa.enabled pa s) in
  Alcotest.(check bool) "flip 0 blocked" false (List.mem (Au.Flip 0) acts);
  Alcotest.(check bool) "flip 1 available" true (List.mem (Au.Flip 1) acts);
  Alcotest.(check bool) "tick available" true (List.mem Au.Tick acts)

let test_validation () =
  Alcotest.(check bool) "bound 0 rejected" true
    (try ignore (Au.make { params with Au.bound = 0 }); false
     with Invalid_argument _ -> true)

let test_zeno_well_formed () =
  let inst = SC.Proof.build ~n:3 ~bound:3 () in
  Alcotest.(check bool) "encoding is zeno-free" true
    (Mdp.Zeno.is_well_formed inst.SC.Proof.arena)

(* ------------------------------------------------------------------ *)
(* Proof *)

let test_rungs_hold () =
  List.iter
    (fun (n, bound) ->
       let inst = SC.Proof.build ~n ~bound () in
       List.iter
         (fun a ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d B=%d %s" n bound a.SC.Proof.label)
              true (a.SC.Proof.claim <> None);
            Alcotest.(check bool) "attained >= 1/2" true
              (Q.geq a.SC.Proof.attained Q.half))
         (SC.Proof.arrows inst))
    [ (2, 2); (2, 3); (3, 2) ]

let test_composed () =
  let inst = SC.Proof.build ~n:2 ~bound:3 () in
  match SC.Proof.composed inst with
  | Error e -> Alcotest.failf "composition failed: %s" e
  | Ok claim ->
    check_q "time B" (Q.of_int 3) (Core.Claim.time claim);
    check_q "prob 2^-B" (Q.of_ints 1 8) (Core.Claim.prob claim);
    Alcotest.(check bool) "verified" true (Core.Claim.fully_verified claim)

let test_composition_is_loose () =
  (* The direct bound dwarfs the composed 2^-B: the documented
     methodological finding. *)
  let inst = SC.Proof.build ~n:2 ~bound:3 () in
  let direct = SC.Proof.direct_bound inst in
  Alcotest.(check bool)
    (Printf.sprintf "direct %s >> 1/8" (Q.to_string direct))
    true
    (Q.gt direct (Q.of_ints 1 4))

let test_expected_square_law () =
  (* With n = 2 the walk's parity makes the bound^2 / n law exact. *)
  List.iter
    (fun bound ->
       let inst = SC.Proof.build ~n:2 ~bound () in
       let exact = SC.Proof.expected_exact inst in
       let theory = SC.Proof.expected_theory inst in
       Alcotest.(check (float 1e-6))
         (Printf.sprintf "B=%d: exactly B^2/2" bound)
         theory exact)
    [ 2; 4 ];
  (* Odd flip counts per unit introduce a bounded rounding excess. *)
  let inst = SC.Proof.build ~n:3 ~bound:3 () in
  let exact = SC.Proof.expected_exact inst in
  let theory = SC.Proof.expected_theory inst in
  Alcotest.(check bool)
    (Printf.sprintf "theory %.3f <= exact %.3f <= theory + 1" theory exact)
    true
    (exact >= theory -. 1e-9 && exact <= theory +. 1.0)

let test_liveness () =
  let inst = SC.Proof.build ~n:2 ~bound:3 () in
  Alcotest.(check bool) "decides almost surely" true
    (SC.Proof.liveness_holds inst)

let test_adversary_cannot_bias () =
  (* Min and max probability of deciding POSITIVE are equal (= 1/2 by
     symmetry): the adversary controls timing, never direction. *)
  let inst = SC.Proof.build ~n:2 ~bound:2 () in
  let expl = inst.SC.Proof.expl in
  let arena = inst.SC.Proof.arena in
  let plus =
    Core.Pred.make "decided +" (fun s -> s.Au.counter >= 2)
  in
  let target = Mdp.Explore.indicator expl plus in
  let horizon = 40 (* effectively unbounded for B=2 *) in
  let vmin = Mdp.Finite_horizon.min_reach arena ~target ~ticks:horizon in
  let vmax = Mdp.Finite_horizon.max_reach arena ~target ~ticks:horizon in
  let i = Option.get (Mdp.Explore.index expl (Au.start inst.SC.Proof.params)) in
  Alcotest.(check bool) "min close to 1/2" true
    (Q.to_float vmin.(i) > 0.499);
  Alcotest.(check bool) "max close to 1/2" true
    (Q.to_float vmax.(i) < 0.501)

let test_simulation_agrees () =
  let inst = SC.Proof.build ~n:2 ~bound:4 () in
  let pa = Mdp.Explore.automaton inst.SC.Proof.expl in
  let setup =
    { Sim.Monte_carlo.pa;
      scheduler = Sim.Scheduler.uniform pa;
      duration = Au.duration;
      start = Au.start inst.SC.Proof.params }
  in
  let summary, missed =
    Sim.Monte_carlo.estimate_time setup
      ~target:(Au.decided inst.SC.Proof.params) ~trials:2000 ~seed:3 ()
  in
  Alcotest.(check int) "no missed" 0 missed;
  let mean = Proba.Stat.Summary.mean summary in
  (* Uniform scheduling flips faster than the forced minimum, so the
     mean sits below the worst case 8 but above 8 / (k*g*n) rates...
     just sanity-check the window. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f in a plausible window" mean)
    true
    (mean > 2.0 && mean < 8.5)

let () =
  Alcotest.run "shared-coin"
    [ ("automaton",
       [ Alcotest.test_case "start" `Quick test_start;
         Alcotest.test_case "flips" `Quick test_flip_moves_counter;
         Alcotest.test_case "decided absorbs" `Quick test_decided_absorbs;
         Alcotest.test_case "deadline forces" `Quick
           test_deadline_forces_flip;
         Alcotest.test_case "budget blocks" `Quick test_budget_blocks_flip;
         Alcotest.test_case "validation" `Quick test_validation;
         Alcotest.test_case "zeno-free" `Quick test_zeno_well_formed ]);
      ("proof",
       [ Alcotest.test_case "rungs hold" `Quick test_rungs_hold;
         Alcotest.test_case "composed (B, 2^-B)" `Quick test_composed;
         Alcotest.test_case "composition is loose" `Quick
           test_composition_is_loose;
         Alcotest.test_case "B^2 law" `Quick test_expected_square_law;
         Alcotest.test_case "liveness" `Quick test_liveness;
         Alcotest.test_case "adversary cannot bias" `Quick
           test_adversary_cannot_bias;
         Alcotest.test_case "simulation agrees" `Quick
           test_simulation_agrees ]) ]
