(* Tests for the core model: predicates, executions, automata,
   adversaries, execution automata, event schemas, claims, expected-time
   derivations, and the timed wrapper. *)

module Q = Proba.Rational
module D = Proba.Dist

let rational = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check rational

(* ------------------------------------------------------------------ *)
(* Pred *)

let even = Core.Pred.make "even" (fun n -> n mod 2 = 0)
let small = Core.Pred.make "small" (fun n -> n < 10)

let test_pred_basic () =
  Alcotest.(check bool) "mem" true (Core.Pred.mem even 4);
  Alcotest.(check bool) "not mem" false (Core.Pred.mem even 3);
  Alcotest.(check string) "name" "even" (Core.Pred.name even)

let test_pred_algebra () =
  let u = Core.Pred.union even small in
  Alcotest.(check bool) "union left" true (Core.Pred.mem u 12);
  Alcotest.(check bool) "union right" true (Core.Pred.mem u 3);
  Alcotest.(check bool) "union neither" false (Core.Pred.mem u 13);
  let i = Core.Pred.inter even small in
  Alcotest.(check bool) "inter" true (Core.Pred.mem i 4);
  Alcotest.(check bool) "inter fail" false (Core.Pred.mem i 12);
  let c = Core.Pred.complement even in
  Alcotest.(check bool) "complement" true (Core.Pred.mem c 3);
  Alcotest.(check string) "union name" "even ∪ small" (Core.Pred.name u)

let test_pred_same () =
  Alcotest.(check bool) "same by name" true
    (Core.Pred.same even (Core.Pred.make "even" (fun _ -> false)));
  Alcotest.(check bool) "different" false (Core.Pred.same even small)

(* ------------------------------------------------------------------ *)
(* Exec *)

let frag_abc =
  let f = Core.Exec.initial "a" in
  let f = Core.Exec.snoc f 1 "b" in
  Core.Exec.snoc f 2 "c"

let test_exec_basic () =
  Alcotest.(check string) "fstate" "a" (Core.Exec.fstate frag_abc);
  Alcotest.(check string) "lstate" "c" (Core.Exec.lstate frag_abc);
  Alcotest.(check int) "length" 2 (Core.Exec.length frag_abc);
  Alcotest.(check (list string)) "states" [ "a"; "b"; "c" ]
    (Core.Exec.states frag_abc);
  Alcotest.(check (list int)) "actions" [ 1; 2 ] (Core.Exec.actions frag_abc);
  Alcotest.(check (list (pair int string))) "steps" [ (1, "b"); (2, "c") ]
    (Core.Exec.steps frag_abc)

let test_exec_initial () =
  let f = Core.Exec.initial 42 in
  Alcotest.(check int) "fstate=lstate" (Core.Exec.fstate f)
    (Core.Exec.lstate f);
  Alcotest.(check int) "length 0" 0 (Core.Exec.length f)

let test_exec_concat () =
  let tail = Core.Exec.snoc (Core.Exec.initial "c") 3 "d" in
  let joined = Core.Exec.concat frag_abc tail in
  Alcotest.(check (list string)) "concat states" [ "a"; "b"; "c"; "d" ]
    (Core.Exec.states joined);
  Alcotest.check_raises "mismatched concat"
    (Invalid_argument "Exec.concat: fragments do not meet") (fun () ->
        ignore (Core.Exec.concat frag_abc (Core.Exec.initial "z")))

let test_exec_prefix () =
  let p = Core.Exec.snoc (Core.Exec.initial "a") 1 "b" in
  Alcotest.(check bool) "is_prefix" true (Core.Exec.is_prefix p frag_abc);
  Alcotest.(check bool) "self prefix" true
    (Core.Exec.is_prefix frag_abc frag_abc);
  Alcotest.(check bool) "not prefix" false
    (Core.Exec.is_prefix frag_abc p);
  match Core.Exec.drop_prefix p frag_abc with
  | None -> Alcotest.fail "drop_prefix failed"
  | Some suffix ->
    Alcotest.(check (list string)) "suffix" [ "b"; "c" ]
      (Core.Exec.states suffix);
    Alcotest.(check string) "suffix fstate = prefix lstate"
      (Core.Exec.lstate p) (Core.Exec.fstate suffix)

let test_exec_total_time () =
  Alcotest.(check int) "durations" 3
    (Core.Exec.total_time ~duration:(fun a -> a) frag_abc)

let test_exec_find_fold () =
  Alcotest.(check (option int)) "find_first" (Some 1)
    (Core.Exec.find_first frag_abc (fun a _ -> a = 2));
  Alcotest.(check (option int)) "find_first none" None
    (Core.Exec.find_first frag_abc (fun a _ -> a = 9));
  Alcotest.(check bool) "exists" true
    (Core.Exec.exists frag_abc (fun _ s -> s = "b"));
  Alcotest.(check int) "fold" 3
    (Core.Exec.fold (fun acc a _ -> acc + a) 0 frag_abc)

(* ------------------------------------------------------------------ *)
(* Pa *)

let test_pa_basic () =
  let m = Test_support.Toys.Choice.pa in
  Alcotest.(check int) "one start" 1 (List.length (Core.Pa.start m));
  Alcotest.(check int) "two steps at s0" 2
    (List.length (Core.Pa.enabled m Test_support.Toys.Choice.S0));
  Alcotest.(check bool) "terminal" true (Core.Pa.is_terminal m Test_support.Toys.Choice.S1);
  Alcotest.(check bool) "not deterministic" false
    (Core.Pa.is_deterministic_at m Test_support.Toys.Choice.S0);
  Alcotest.(check int) "steps_with_action" 1
    (List.length (Core.Pa.steps_with_action m Test_support.Toys.Choice.S0 Test_support.Toys.Choice.A))

let test_pa_empty_start () =
  Alcotest.check_raises "no start states"
    (Invalid_argument "Pa.make: no start states") (fun () ->
        ignore (Core.Pa.make ~start:([] : int list) ~enabled:(fun _ -> []) ()))

let test_pa_restrict () =
  let m = Core.Pa.restrict Test_support.Toys.Choice.pa (fun _ a -> a = Test_support.Toys.Choice.A) in
  Alcotest.(check int) "restricted" 1
    (List.length (Core.Pa.enabled m Test_support.Toys.Choice.S0))

(* ------------------------------------------------------------------ *)
(* Adversary *)

let test_adversary_first_enabled () =
  let adv = Core.Adversary.first_enabled Test_support.Toys.Choice.pa in
  match adv (Core.Exec.initial Test_support.Toys.Choice.S0) with
  | None -> Alcotest.fail "expected a step"
  | Some step ->
    Alcotest.(check bool) "picks A" true (step.Core.Pa.action = Test_support.Toys.Choice.A)

let test_adversary_halt_cutoff () =
  let adv = Core.Adversary.first_enabled Test_support.Toys.Choice.pa in
  Alcotest.(check bool) "halt" true
    (Core.Adversary.halt (Core.Exec.initial Test_support.Toys.Choice.S0) = None);
  let limited = Core.Adversary.cutoff 0 adv in
  Alcotest.(check bool) "cutoff stops" true
    (limited (Core.Exec.initial Test_support.Toys.Choice.S0) = None)

let test_adversary_by_priority () =
  let rank _ a = match a with Test_support.Toys.Choice.A -> 2 | Test_support.Toys.Choice.B -> 1 in
  let adv = Core.Adversary.by_priority Test_support.Toys.Choice.pa rank in
  match adv (Core.Exec.initial Test_support.Toys.Choice.S0) with
  | Some step ->
    Alcotest.(check bool) "picks B" true (step.Core.Pa.action = Test_support.Toys.Choice.B)
  | None -> Alcotest.fail "expected a step"

let test_adversary_shift () =
  (* Execution closure: the shifted adversary answers on the suffix what
     the original answers on the full fragment. *)
  let open Test_support.Toys.Race in
  let prefix =
    Core.Exec.snoc (Core.Exec.initial start) Flip_p { start with p = Heads }
  in
  let shifted = Core.Adversary.shift prefix dependency_adversary in
  let suffix = Core.Exec.initial { start with p = Heads } in
  (match shifted suffix with
   | Some step ->
     Alcotest.(check bool) "continues with Q" true
       (step.Core.Pa.action = Flip_q)
   | None -> Alcotest.fail "expected flip_q");
  let prefix_tails =
    Core.Exec.snoc (Core.Exec.initial start) Flip_p { start with p = Tails }
  in
  let shifted = Core.Adversary.shift prefix_tails dependency_adversary in
  Alcotest.(check bool) "halts on tails" true
    (shifted (Core.Exec.initial { start with p = Tails }) = None)

let test_adversary_well_formed () =
  let adv = Core.Adversary.first_enabled Test_support.Toys.Choice.pa in
  Alcotest.(check bool) "well formed" true
    (Core.Adversary.well_formed Test_support.Toys.Choice.pa adv
       (Core.Exec.initial Test_support.Toys.Choice.S0));
  let bogus _ =
    Some
      { Core.Pa.action = Test_support.Toys.Choice.A; dist = D.point Test_support.Toys.Choice.S0 }
  in
  Alcotest.(check bool) "bogus rejected" false
    (Core.Adversary.well_formed Test_support.Toys.Choice.pa bogus
       (Core.Exec.initial Test_support.Toys.Choice.S0))

(* ------------------------------------------------------------------ *)
(* Exec_automaton *)

let unfold_choice action =
  let adv frag =
    if Core.Exec.length frag > 0 then None
    else
      List.find_opt
        (fun s -> s.Core.Pa.action = action)
        (Core.Pa.enabled Test_support.Toys.Choice.pa (Core.Exec.lstate frag))
  in
  Core.Exec_automaton.unfold Test_support.Toys.Choice.pa adv Test_support.Toys.Choice.S0 ~max_depth:5

let test_exec_automaton_measure () =
  let tree = unfold_choice Test_support.Toys.Choice.A in
  check_q "total mass" Q.one (Core.Exec_automaton.total_mass tree);
  Alcotest.(check int) "3 nodes" 3 (Core.Exec_automaton.size tree);
  let reach_s1 = Core.Event.eventually Test_support.Toys.Choice.s1 in
  check_q "P[s1] under A" Q.half
    (Core.Exec_automaton.prob_exact reach_s1 tree);
  let tree_b = unfold_choice Test_support.Toys.Choice.B in
  check_q "P[s1] under B" (Q.of_ints 1 3)
    (Core.Exec_automaton.prob_exact reach_s1 tree_b)

let test_exec_automaton_leaves () =
  let tree = unfold_choice Test_support.Toys.Choice.A in
  let leaves = Core.Exec_automaton.maximal_executions tree in
  Alcotest.(check int) "two leaves" 2 (List.length leaves);
  List.iter
    (fun (frag, mass, genuine) ->
       Alcotest.(check bool) "genuine" true genuine;
       check_q "leaf mass" Q.half mass;
       Alcotest.(check int) "leaf length" 1 (Core.Exec.length frag))
    leaves

let test_exec_automaton_truncation () =
  (* Unfold the Cascade (which loops forever) to a small depth: the
     reach probability is only known as an interval. *)
  let adv = Core.Adversary.first_enabled Test_support.Toys.Cascade.pa in
  let tree =
    Core.Exec_automaton.unfold Test_support.Toys.Cascade.pa adv (Test_support.Toys.Cascade.Level 0)
      ~max_depth:2
  in
  let ev = Core.Event.eventually Test_support.Toys.Cascade.goal in
  let lo, hi = Core.Exec_automaton.prob_interval ev tree in
  check_q "lower bound" (Q.of_ints 1 4) lo;
  check_q "upper bound" Q.one hi;
  Alcotest.(check bool) "prob_exact raises" true
    (try ignore (Core.Exec_automaton.prob_exact ev tree); false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Event schemas on the Race automaton (Example 4.1) *)

let race_tree adv =
  Core.Exec_automaton.unfold Test_support.Toys.Race.pa adv Test_support.Toys.Race.start ~max_depth:4

let test_event_first_dependency () =
  let open Test_support.Toys.Race in
  let tree = race_tree dependency_adversary in
  let first_p = Core.Event.first Flip_p p_heads in
  let first_q = Core.Event.first Flip_q q_tails in
  check_q "P[first(flip_p, H)]" Q.half
    (Core.Exec_automaton.prob_exact first_p tree);
  (* Q is only scheduled on heads, yet first(flip_q, tails) also accepts
     executions where Q never flips. *)
  check_q "P[first(flip_q, T)]" (Q.of_ints 3 4)
    (Core.Exec_automaton.prob_exact first_q tree);
  (* Proposition 4.2(1): the conjunction is still >= 1/2 * 1/2. *)
  check_q "P[conjunction] = 1/4" (Q.of_ints 1 4)
    (Core.Exec_automaton.prob_exact (Core.Event.conj first_p first_q) tree)

let test_event_first_fair () =
  let open Test_support.Toys.Race in
  let tree = race_tree fair_adversary in
  let conj =
    Core.Event.conj
      (Core.Event.first Flip_p p_heads)
      (Core.Event.first Flip_q q_tails)
  in
  check_q "fair conjunction" (Q.of_ints 1 4)
    (Core.Exec_automaton.prob_exact conj tree)

let test_event_naive_dependence () =
  (* The cautionary half of Example 4.1: conditioned on both coins
     having been flipped, the dependency adversary makes
     P[P=H and Q=T | both flipped] = 1/2, not 1/4. *)
  let open Test_support.Toys.Race in
  let tree = race_tree dependency_adversary in
  let both =
    Core.Pred.make "both flipped" (fun s ->
        s.p <> Unflipped && s.q <> Unflipped)
  in
  let good =
    Core.Pred.make "H,T" (fun s -> s.p = Heads && s.q = Tails)
  in
  let p_both =
    Core.Exec_automaton.prob_exact (Core.Event.eventually both) tree
  in
  let p_good =
    Core.Exec_automaton.prob_exact (Core.Event.eventually good) tree
  in
  check_q "P[both flipped]" Q.half p_both;
  check_q "conditional probability 1/2 (not 1/4!)" Q.half
    (Q.div p_good p_both)

let test_event_next () =
  let open Test_support.Toys.Race in
  let next =
    Core.Event.next [ (Flip_p, p_heads); (Flip_q, q_tails) ]
  in
  (* Under the fair adversary P flips first: accept iff heads. *)
  check_q "next under fair" Q.half
    (Core.Exec_automaton.prob_exact next (race_tree fair_adversary));
  (* Proposition 4.2(2): bound is min(1/2, 1/2) = 1/2 under any
     adversary; the dependency adversary also attains 1/2. *)
  check_q "next under dependency" Q.half
    (Core.Exec_automaton.prob_exact next (race_tree dependency_adversary))

let test_event_next_duplicate_action () =
  let open Test_support.Toys.Race in
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Core.Event.next [ (Flip_p, p_heads); (Flip_p, q_tails) ]);
       false
     with Invalid_argument _ -> true)

let test_event_reach_within () =
  let open Test_support.Toys.Walker in
  (* Play the minimizing adversary by hand: tick, forced flip, ... *)
  let adv frag =
    let s = Core.Exec.lstate frag in
    match s with
    | Done -> None
    | Walk _ ->
      (match Core.Pa.enabled pa s with
       | [] -> None
       | steps ->
         (* Prefer ticking (delaying) when allowed. *)
         (match
            List.find_opt (fun st -> st.Core.Pa.action = Tick) steps
          with
          | Some t -> Some t
          | None -> List.nth_opt steps 0))
  in
  let tree = Core.Exec_automaton.unfold pa adv start ~max_depth:9 in
  let duration a = if is_tick a then 1 else 0 in
  let within t = Core.Event.reach ~duration done_ ~within:t in
  let lo1, _ = Core.Exec_automaton.prob_interval (within 1) tree in
  check_q "delayer: P[reach within 1] = 1/2" Q.half lo1;
  let lo2, _ = Core.Exec_automaton.prob_interval (within 2) tree in
  check_q "delayer: P[reach within 2] = 3/4" (Q.of_ints 3 4) lo2

let test_event_negate_disj () =
  let open Test_support.Toys.Race in
  let tree = race_tree fair_adversary in
  let first_p = Core.Event.first Flip_p p_heads in
  let not_p = Core.Event.negate first_p in
  check_q "negation" Q.half
    (Core.Exec_automaton.prob_exact not_p tree);
  let disj = Core.Event.disj first_p not_p in
  check_q "tautology" Q.one (Core.Exec_automaton.prob_exact disj tree)

let test_event_premise () =
  let open Test_support.Toys.Race in
  let states =
    [ start; { start with p = Heads }; { start with p = Tails };
      { start with q = Heads }; { start with q = Tails };
      { p = Heads; q = Heads }; { p = Heads; q = Tails };
      { p = Tails; q = Heads }; { p = Tails; q = Tails } ]
  in
  let pairs =
    [ (Flip_p, p_heads, Q.half); (Flip_q, q_tails, Q.half) ]
  in
  Alcotest.(check bool) "premise holds" true
    (Core.Event.check_premise pa ~states pairs);
  check_q "product bound" (Q.of_ints 1 4) (Core.Event.product_bound pairs);
  check_q "min bound" Q.half (Core.Event.min_bound pairs);
  let bad = [ (Flip_p, p_heads, Q.of_ints 2 3) ] in
  Alcotest.(check bool) "premise fails at 2/3" false
    (Core.Event.check_premise pa ~states bad)

let test_event_all_first () =
  (* On the cascade, each flip lands outside level 0 with probability
     exactly 1/2, so the premise of the power bound holds with p = 1/2. *)
  let open Test_support.Toys.Cascade in
  let up = Core.Pred.make "up" (fun s -> s <> Level 0) in
  let adv = Core.Adversary.first_enabled pa in
  let tree = Core.Exec_automaton.unfold pa adv (Level 0) ~max_depth:10 in
  let p count =
    Core.Exec_automaton.prob_exact
      (Core.Event.all_first ~count Flip up) tree
  in
  check_q "count 0 is trivially true" Q.one (p 0);
  check_q "count 1 = first" Q.half (p 1);
  (* Two flips in a row must go up: exactly 1/4 -- the power bound is
     tight here. *)
  check_q "count 2" (Q.of_ints 1 4) (p 2);
  check_q "power bound" (Q.of_ints 1 4)
    (Core.Event.power_bound Q.half 2);
  (* Only two flips can ever occur before the absorbing top, so
     all_first 3 degenerates to all_first 2 -- still above (1/2)^3. *)
  check_q "count 3 at most two occurrences" (Q.of_ints 1 4) (p 3);
  Alcotest.(check bool) "above the power bound" true
    (Q.geq (p 3) (Core.Event.power_bound Q.half 3))

let test_event_all_first_early_halt () =
  (* An adversary that stops scheduling after one flip: executions with
     fewer occurrences still count when all seen landed inside. *)
  let open Test_support.Toys.Cascade in
  let up = Core.Pred.make "up" (fun s -> s <> Level 0) in
  let adv = Core.Adversary.cutoff 1 (Core.Adversary.first_enabled pa) in
  let tree = Core.Exec_automaton.unfold pa adv (Level 0) ~max_depth:10 in
  check_q "one occurrence decides"
    Q.half
    (Core.Exec_automaton.prob_exact
       (Core.Event.all_first ~count:2 Flip up) tree);
  Alcotest.(check bool) "still above p^2" true
    (Q.geq Q.half (Core.Event.power_bound Q.half 2))

let test_event_all_first_validation () =
  Alcotest.(check bool) "negative count rejected" true
    (try
       ignore
         (Core.Event.all_first ~count:(-1) Test_support.Toys.Cascade.Flip
            (Core.Pred.make "x" (fun _ -> true)));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Claim: replicate the paper's composition arithmetic on abstract
   state-set names. *)

type phase = T | RT | F | G | P | C [@@warning "-37"]

let pred_t = Core.Pred.make "T" (fun s -> s = T)
let pred_rtc = Core.Pred.make "RT ∪ C" (fun s -> s = RT || s = C)
let pred_fgp = Core.Pred.make "F ∪ G ∪ P" (fun s -> s = F || s = G || s = P)
let pred_gp = Core.Pred.make "G ∪ P" (fun s -> s = G || s = P)
let pred_p = Core.Pred.make "P" (fun s -> s = P)
let pred_c = Core.Pred.make "C" (fun s -> s = C)

let schema = Core.Schema.unit_time

let axiom ~pre ~post ~time ~prob =
  Core.Claim.axiom ~reason:"test" ~schema ~pre ~post
    ~time:(Q.of_int time) ~prob ()

let test_claim_accessors () =
  let c = axiom ~pre:pred_t ~post:pred_c ~time:13 ~prob:(Q.of_ints 1 8) in
  Alcotest.(check string) "pre" "T" (Core.Pred.name (Core.Claim.pre c));
  Alcotest.(check string) "post" "C" (Core.Pred.name (Core.Claim.post c));
  check_q "time" (Q.of_int 13) (Core.Claim.time c);
  check_q "prob" (Q.of_ints 1 8) (Core.Claim.prob c);
  Alcotest.(check bool) "axiom not verified" false
    (Core.Claim.fully_verified c)

let test_claim_validation () =
  Alcotest.(check bool) "bad prob" true
    (try ignore (axiom ~pre:pred_t ~post:pred_c ~time:1 ~prob:(Q.of_int 2));
       false
     with Core.Claim.Rule_violation _ -> true);
  Alcotest.(check bool) "bad time" true
    (try
       ignore
         (Core.Claim.checked ~evidence:"x" ~schema ~pre:pred_t ~post:pred_c
            ~time:(Q.of_int (-1)) ~prob:Q.half ());
       false
     with Core.Claim.Rule_violation _ -> true)

(* The five phases with the paper's constants; posts are named to match
   the next pre exactly, as the paper does via Proposition 3.2. *)
let phase_chain () =
  [ axiom ~pre:pred_t ~post:pred_rtc ~time:2 ~prob:Q.one;
    axiom ~pre:pred_rtc ~post:pred_fgp ~time:3 ~prob:Q.one;
    axiom ~pre:pred_fgp ~post:pred_gp ~time:2 ~prob:Q.half;
    axiom ~pre:pred_gp ~post:pred_p ~time:5 ~prob:(Q.of_ints 1 4);
    axiom ~pre:pred_p ~post:pred_c ~time:1 ~prob:Q.one ]

let test_claim_compose_chain () =
  let composed = Core.Claim.compose_all (phase_chain ()) in
  check_q "time 13" (Q.of_int 13) (Core.Claim.time composed);
  check_q "prob 1/8" (Q.of_ints 1 8) (Core.Claim.prob composed);
  Alcotest.(check string) "pre T" "T" (Core.Pred.name (Core.Claim.pre composed));
  Alcotest.(check string) "post C" "C" (Core.Pred.name (Core.Claim.post composed))

let test_claim_compose_mismatch () =
  let c1 = axiom ~pre:pred_t ~post:pred_rtc ~time:2 ~prob:Q.one in
  let c2 = axiom ~pre:pred_gp ~post:pred_p ~time:5 ~prob:Q.half in
  Alcotest.(check bool) "name mismatch rejected" true
    (try ignore (Core.Claim.compose c1 c2); false
     with Core.Claim.Rule_violation _ -> true)

let test_claim_compose_needs_closure () =
  let open_schema = Core.Schema.make ~execution_closed:false "Open" in
  let mk pre post =
    Core.Claim.axiom ~reason:"test" ~schema:open_schema ~pre ~post
      ~time:Q.one ~prob:Q.one ()
  in
  let c1 = mk pred_t pred_rtc in
  let c2 = mk pred_rtc pred_c in
  Alcotest.(check bool) "closure required" true
    (try ignore (Core.Claim.compose c1 c2); false
     with Core.Claim.Rule_violation _ -> true)

let test_claim_compose_schema_mismatch () =
  let other = Core.Schema.make ~execution_closed:true "Other" in
  let c1 = axiom ~pre:pred_t ~post:pred_rtc ~time:2 ~prob:Q.one in
  let c2 =
    Core.Claim.axiom ~reason:"test" ~schema:other ~pre:pred_rtc ~post:pred_c
      ~time:Q.one ~prob:Q.one ()
  in
  Alcotest.(check bool) "schema mismatch rejected" true
    (try ignore (Core.Claim.compose c1 c2); false
     with Core.Claim.Rule_violation _ -> true)

let test_claim_union () =
  (* Proposition 3.2 as used in the paper: P -1-> C lifts along union. *)
  let c = axiom ~pre:pred_p ~post:pred_c ~time:1 ~prob:Q.one in
  let u = Core.Claim.union c pred_rtc in
  Alcotest.(check string) "pre union" "P ∪ RT ∪ C"
    (Core.Pred.name (Core.Claim.pre u));
  check_q "time preserved" Q.one (Core.Claim.time u);
  check_q "prob preserved" Q.one (Core.Claim.prob u);
  Alcotest.(check bool) "post membership" true
    (Core.Pred.mem (Core.Claim.post u) RT)

let test_claim_weaken_relax () =
  let c = axiom ~pre:pred_t ~post:pred_c ~time:13 ~prob:Q.half in
  let w = Core.Claim.weaken_prob c (Q.of_ints 1 8) in
  check_q "weakened" (Q.of_ints 1 8) (Core.Claim.prob w);
  Alcotest.(check bool) "cannot strengthen" true
    (try ignore (Core.Claim.weaken_prob c (Q.of_ints 3 4)); false
     with Core.Claim.Rule_violation _ -> true);
  let r = Core.Claim.relax_time c (Q.of_int 20) in
  check_q "relaxed" (Q.of_int 20) (Core.Claim.time r);
  Alcotest.(check bool) "cannot tighten" true
    (try ignore (Core.Claim.relax_time c (Q.of_int 5)); false
     with Core.Claim.Rule_violation _ -> true)

let test_claim_inclusion_rules () =
  let states = [ T; RT; F; G; P; C ] in
  let c = axiom ~pre:pred_fgp ~post:pred_gp ~time:2 ~prob:Q.half in
  (match Core.Inclusion.verify ~states pred_p pred_fgp with
   | None -> Alcotest.fail "inclusion should verify"
   | Some incl ->
     let s = Core.Claim.strengthen_pre c incl in
     Alcotest.(check string) "strengthened pre" "P"
       (Core.Pred.name (Core.Claim.pre s)));
  (match Core.Inclusion.verify ~states pred_gp pred_fgp with
   | None -> Alcotest.fail "inclusion should verify"
   | Some incl ->
     let w = Core.Claim.weaken_post c incl in
     Alcotest.(check string) "weakened post" "F ∪ G ∪ P"
       (Core.Pred.name (Core.Claim.post w)));
  Alcotest.(check bool) "wrong inclusion rejected" true
    (try
       ignore (Core.Claim.strengthen_pre c (Core.Inclusion.refl pred_p));
       false
     with Core.Claim.Rule_violation _ -> true)

let test_claim_trivial () =
  let incl = Core.Inclusion.in_union_left pred_p pred_c in
  let c = Core.Claim.trivial ~schema incl in
  check_q "zero time" Q.zero (Core.Claim.time c);
  check_q "prob one" Q.one (Core.Claim.prob c);
  Alcotest.(check bool) "verified" true (Core.Claim.fully_verified c)

let test_claim_fully_verified () =
  let checked =
    Core.Claim.checked ~evidence:"model checker" ~schema ~pre:pred_t
      ~post:pred_c ~time:Q.one ~prob:Q.half ()
  in
  Alcotest.(check bool) "checked verified" true
    (Core.Claim.fully_verified checked);
  let mixed =
    Core.Claim.compose
      (Core.Claim.checked ~evidence:"mc" ~schema ~pre:pred_t ~post:pred_rtc
         ~time:Q.one ~prob:Q.one ())
      (Core.Claim.axiom ~reason:"pen and paper" ~schema ~pre:pred_rtc
         ~post:pred_c ~time:Q.one ~prob:Q.one ())
  in
  Alcotest.(check bool) "axiom taints" false (Core.Claim.fully_verified mixed)

let test_claim_pp () =
  let c = axiom ~pre:pred_t ~post:pred_c ~time:13 ~prob:(Q.of_ints 1 8) in
  let s = Format.asprintf "%a" Core.Claim.pp c in
  Alcotest.(check bool) "mentions sets" true
    (Astring.String.is_infix ~affix:"T" s
     && Astring.String.is_infix ~affix:"1/8" s);
  let composed = Core.Claim.compose_all (phase_chain ()) in
  let tree = Format.asprintf "%a" Core.Claim.pp_derivation composed in
  Alcotest.(check bool) "derivation mentions Theorem 3.4" true
    (Astring.String.is_infix ~affix:"Theorem 3.4" tree)

(* ------------------------------------------------------------------ *)
(* Expected *)

let test_expected_paper_recurrence () =
  (* V = 1/8*10 + 1/2*(5 + V) + 3/8*(10 + V)  =>  E[V] = 60 *)
  let b prob time loops =
    Core.Expected.branch ~prob ~time:(Q.of_int time) ~loops
  in
  let v =
    Core.Expected.solve_loop ~label:"RT to P"
      [ b (Q.of_ints 1 8) 10 false;
        b Q.half 5 true;
        b (Q.of_ints 3 8) 10 true ]
  in
  check_q "E[V] = 60" (Q.of_int 60) (Core.Expected.value v);
  let total =
    Core.Expected.sum ~label:"T to C"
      [ Core.Expected.constant ~label:"T to RT" (Q.of_int 2);
        v;
        Core.Expected.constant ~label:"P to C" (Q.of_int 1) ]
  in
  check_q "total 63" (Q.of_int 63) (Core.Expected.value total)

let test_expected_validation () =
  let b prob time loops = Core.Expected.branch ~prob ~time ~loops in
  Alcotest.(check bool) "probs must sum to 1" true
    (try
       ignore
         (Core.Expected.solve_loop ~label:"bad"
            [ b Q.half Q.one false ]);
       false
     with Core.Expected.Ill_formed _ -> true);
  Alcotest.(check bool) "loop prob < 1" true
    (try
       ignore
         (Core.Expected.solve_loop ~label:"bad" [ b Q.one Q.one true ]);
       false
     with Core.Expected.Ill_formed _ -> true);
  Alcotest.(check bool) "negative time" true
    (try
       ignore
         (Core.Expected.solve_loop ~label:"bad"
            [ b Q.one (Q.of_int (-1)) false ]);
       false
     with Core.Expected.Ill_formed _ -> true)

let test_expected_of_claim () =
  let c = axiom ~pre:pred_t ~post:pred_c ~time:13 ~prob:(Q.of_ints 1 8) in
  check_q "t/p = 104" (Q.of_int 104)
    (Core.Expected.value (Core.Expected.of_claim c))

let test_expected_non_dyadic () =
  (* The recurrence solver is general rational, not only dyadic:
     E = (1/3 * 6) / (1 - 2/3) = 6. *)
  let b prob time loops = Core.Expected.branch ~prob ~time ~loops in
  let v =
    Core.Expected.solve_loop ~label:"thirds"
      [ b (Q.of_ints 1 3) (Q.of_int 6) false;
        b (Q.of_ints 2 3) (Q.of_int 6) true ]
  in
  check_q "E = 18" (Q.of_int 18) (Core.Expected.value v)

let test_expected_pp () =
  let v = Core.Expected.constant ~label:"x" (Q.of_int 3) in
  let s = Format.asprintf "%a" Core.Expected.pp v in
  Alcotest.(check bool) "prints value" true
    (Astring.String.is_infix ~affix:"3" s)

(* ------------------------------------------------------------------ *)
(* Timed *)

let test_timed_within () =
  Alcotest.(check int) "13 units at g=1" 13
    (Core.Timed.within ~granularity:1 ~time:(Q.of_int 13));
  Alcotest.(check int) "13 units at g=4" 52
    (Core.Timed.within ~granularity:4 ~time:(Q.of_int 13));
  Alcotest.(check int) "1/2 unit at g=2" 1
    (Core.Timed.within ~granularity:2 ~time:Q.half);
  Alcotest.(check bool) "non-integral rejected" true
    (try ignore (Core.Timed.within ~granularity:1 ~time:Q.half); false
     with Invalid_argument _ -> true)

let test_timed_patient () =
  let m = Core.Timed.patient Test_support.Toys.Choice.pa in
  let steps = Core.Pa.enabled m Test_support.Toys.Choice.S0 in
  Alcotest.(check int) "tick plus two" 3 (List.length steps);
  (* Terminal states of the base automaton gain a tick self-loop. *)
  Alcotest.(check int) "tick at terminal" 1
    (List.length (Core.Pa.enabled m Test_support.Toys.Choice.S1));
  let tick =
    List.find (fun s -> s.Core.Pa.action = Core.Timed.Tick) steps
  in
  Alcotest.(check bool) "tick preserves state" true
    (Proba.Dist.is_point tick.Core.Pa.dist = Some Test_support.Toys.Choice.S0);
  Alcotest.(check bool) "tick is internal" false
    (Core.Pa.is_external m Core.Timed.Tick)

let test_timed_elapsed () =
  let f = Core.Exec.initial 0 in
  let f = Core.Exec.snoc f Core.Timed.Tick 0 in
  let f = Core.Exec.snoc f (Core.Timed.Act "x") 1 in
  let f = Core.Exec.snoc f Core.Timed.Tick 1 in
  Alcotest.(check int) "two ticks" 2 (Core.Timed.elapsed_slots f)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_of_exec () =
  let frag =
    Core.Exec.snoc
      (Core.Exec.snoc (Core.Exec.snoc (Core.Exec.initial 0) "try" 1)
         "tick" 1)
      "crit" 2
  in
  Alcotest.(check (list string)) "filters internals" [ "try"; "crit" ]
    (Core.Trace.of_exec ~is_external:(fun a -> a <> "tick") frag);
  Alcotest.(check (list string)) "all external" [ "try"; "tick"; "crit" ]
    (Core.Trace.of_exec ~is_external:(fun _ -> true) frag)

let test_trace_distribution () =
  let open Test_support.Toys.Race in
  let tree =
    Core.Exec_automaton.unfold pa dependency_adversary start ~max_depth:4
  in
  let d = Core.Trace.distribution ~is_external:(fun _ -> true) tree in
  check_q "P flips alone on tails" Q.half
    (Proba.Dist.prob_of d [ Flip_p ]);
  check_q "both flip on heads" Q.half
    (Proba.Dist.prob_of d [ Flip_p; Flip_q ]);
  Alcotest.(check int) "two traces" 2 (Proba.Dist.size d)

let test_trace_distribution_truncated () =
  let adv = Core.Adversary.first_enabled Test_support.Toys.Cascade.pa in
  let tree =
    Core.Exec_automaton.unfold Test_support.Toys.Cascade.pa adv
      (Test_support.Toys.Cascade.Level 0) ~max_depth:2
  in
  Alcotest.(check bool) "truncated tree rejected" true
    (try
       ignore (Core.Trace.distribution ~is_external:(fun _ -> true) tree);
       false
     with Failure _ -> true)

let test_trace_prefix () =
  let open Test_support.Toys.Race in
  let tree =
    Core.Exec_automaton.unfold pa dependency_adversary start ~max_depth:4
  in
  let p prefix =
    fst (Core.Trace.prob_of_prefix ~is_external:(fun _ -> true) tree prefix)
  in
  check_q "empty prefix" Q.one (p []);
  check_q "P always flips first" Q.one (p [ Flip_p ]);
  check_q "Q follows half the time" Q.half (p [ Flip_p; Flip_q ]);
  check_q "Q never first" Q.zero (p [ Flip_q ])

(* ------------------------------------------------------------------ *)
(* Randomized adversaries *)

let test_rand_of_deterministic () =
  let open Test_support.Toys.Race in
  let det =
    Core.Exec_automaton.unfold pa dependency_adversary start ~max_depth:4
  in
  let rand =
    Core.Rand_adversary.unfold pa
      (Core.Rand_adversary.of_deterministic dependency_adversary)
      start ~max_depth:4
  in
  let conj =
    Core.Event.conj
      (Core.Event.first Flip_p p_heads)
      (Core.Event.first Flip_q q_tails)
  in
  check_q "same event probability"
    (Core.Exec_automaton.prob_exact conj det)
    (Core.Exec_automaton.prob_exact conj rand)

let test_rand_mix () =
  let open Test_support.Toys.Race in
  (* first(flip_Q, tails) separates the two deterministic adversaries:
     1/2 under fair, 3/4 under dependency.  [mix] randomizes at every
     decision point independently; the two agree until P's coin lands
     tails, where only the fair component wants to continue -- and the
     mixture follows the non-halting side, so Q always flips and the
     value is exactly the fair one, 1/2.  Either way the value stays in
     the convex hull [1/2, 3/4] of the deterministic vertices -- the
     reason the paper can afford to ignore randomized adversaries. *)
  let mixture =
    Core.Rand_adversary.mix Q.half
      (Core.Rand_adversary.of_deterministic dependency_adversary)
      (Core.Rand_adversary.of_deterministic fair_adversary)
  in
  let tree = Core.Rand_adversary.unfold pa mixture start ~max_depth:4 in
  let first_q = Core.Event.first Flip_q q_tails in
  let value = Core.Exec_automaton.prob_exact first_q tree in
  check_q "mixture follows the non-halting side" Q.half value;
  Alcotest.(check bool) "within the deterministic hull" true
    (Q.geq value Q.half && Q.leq value (Q.of_ints 3 4));
  check_q "tree mass still 1" Q.one (Core.Exec_automaton.total_mass tree)

let test_rand_uniform_enabled () =
  (* Section 2's example: steps reaching s1 with prob 1/2 and 1/3; the
     uniformly randomizing adversary attains the average 5/12, strictly
     between the deterministic extremes. *)
  let tree =
    Core.Rand_adversary.unfold Test_support.Toys.Choice.pa
      (Core.Rand_adversary.uniform_enabled Test_support.Toys.Choice.pa)
      Test_support.Toys.Choice.S0 ~max_depth:3
  in
  let ev = Core.Event.eventually Test_support.Toys.Choice.s1 in
  check_q "average of 1/2 and 1/3" (Q.of_ints 5 12)
    (Core.Exec_automaton.prob_exact ev tree)

let test_rand_mix_validates () =
  let halt = Core.Rand_adversary.of_deterministic Core.Adversary.halt in
  Alcotest.(check bool) "bad mixing weight" true
    (try
       ignore
         (Core.Rand_adversary.mix (Q.of_int 2) halt halt
            (Core.Exec.initial Test_support.Toys.Choice.S0));
       false
     with Proba.Dist.Not_a_distribution _ -> true);
  (* Halting both sides halts the mixture. *)
  Alcotest.(check bool) "both halt" true
    (Core.Rand_adversary.mix Q.half halt halt
       (Core.Exec.initial Test_support.Toys.Choice.S0)
     = None)

(* ------------------------------------------------------------------ *)
(* Compose (parallel composition) *)

module Sync = struct
  type state = S0 | S1 | S2
  type tstate = T0 | T1

  let m1 =
    Core.Pa.make ~start:[ S0 ]
      ~enabled:(function
          | S0 -> [ { Core.Pa.action = "x"; dist = D.coin S1 S2 } ]
          | S1 | S2 -> [])
      ()

  let m2 =
    Core.Pa.make ~start:[ T0 ]
      ~enabled:(function
          | T0 -> [ { Core.Pa.action = "x"; dist = D.point T1 } ]
          | T1 -> [])
      ()
end

let test_compose_sync () =
  let p = Core.Compose.product ~sync:(fun _ -> true) Sync.m1 Sync.m2 in
  Alcotest.(check int) "one start" 1 (List.length (Core.Pa.start p));
  (match Core.Pa.enabled p (Sync.S0, Sync.T0) with
   | [ step ] ->
     Alcotest.(check string) "joint action" "x" step.Core.Pa.action;
     check_q "joint branch" Q.half
       (Proba.Dist.prob_of step.Core.Pa.dist (Sync.S1, Sync.T1));
     check_q "other branch" Q.half
       (Proba.Dist.prob_of step.Core.Pa.dist (Sync.S2, Sync.T1))
   | steps -> Alcotest.failf "expected one joint step, got %d"
                (List.length steps));
  (* Synchronization blocks when one side cannot move. *)
  Alcotest.(check int) "blocked" 0
    (List.length (Core.Pa.enabled p (Sync.S1, Sync.T0)))

let test_compose_interleave () =
  let p = Core.Compose.product ~sync:(fun _ -> false) Sync.m1 Sync.m2 in
  (* Both components offer their step independently. *)
  Alcotest.(check int) "two interleaved steps" 2
    (List.length (Core.Pa.enabled p (Sync.S0, Sync.T0)));
  (match Core.Pa.enabled p (Sync.S1, Sync.T0) with
   | [ step ] ->
     Alcotest.(check bool) "m2 moves alone" true
       (Proba.Dist.is_point step.Core.Pa.dist = Some (Sync.S1, Sync.T1))
   | _ -> Alcotest.fail "expected exactly m2's step")

let test_compose_three_walkers () =
  (* Three clocked walkers synchronizing on Tick: the composed system
     is a 3-process timed system; the minimum probability that all
     finish within one time unit is (1/2)^3. *)
  let open Test_support.Toys.Walker in
  let joint =
    Core.Compose.product_list ~sync:is_tick [ pa; pa; pa ]
  in
  let arena = Mdp.Arena.of_pa ~is_tick joint in
  let all_done = Core.Pred.make "all done" (List.for_all (fun s -> s = Done)) in
  let target = Mdp.Arena.indicator arena all_done in
  let v = Mdp.Finite_horizon.min_reach arena ~target ~ticks:1 in
  let start_i = List.hd (Mdp.Arena.start_indices arena) in
  check_q "min P[all done within 1] = 1/8" (Q.of_ints 1 8) v.(start_i);
  let vmax = Mdp.Finite_horizon.max_reach arena ~target ~ticks:1 in
  check_q "max P[all done within 1] = (3/4)^3" (Q.of_ints 27 64)
    vmax.(start_i)

let test_compose_list_empty () =
  Alcotest.(check bool) "empty product rejected" true
    (try
       ignore
         (Core.Compose.product_list ~sync:(fun _ -> false)
            ([] : (int, string) Core.Pa.t list));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Schema / Inclusion *)

let test_schema () =
  Alcotest.(check bool) "unit_time closed" true
    (Core.Schema.execution_closed Core.Schema.unit_time);
  Alcotest.(check string) "name" "Unit-Time"
    (Core.Schema.name Core.Schema.unit_time);
  Alcotest.(check bool) "same" true
    (Core.Schema.same Core.Schema.all Core.Schema.all);
  Alcotest.(check bool) "distinct" false
    (Core.Schema.same Core.Schema.all Core.Schema.unit_time)

let test_inclusion () =
  let states = [ 1; 2; 3; 4 ] in
  (match Core.Inclusion.verify ~states even small with
   | Some incl ->
     Alcotest.(check bool) "not axiom" false (Core.Inclusion.is_axiom incl)
   | None -> Alcotest.fail "even ⊆ small on 1..4");
  Alcotest.(check bool) "counterexample found" true
    (Core.Inclusion.verify ~states:[ 12 ] even small = None);
  let ax = Core.Inclusion.axiom ~reason:"because" even small in
  Alcotest.(check bool) "axiom flagged" true (Core.Inclusion.is_axiom ax)

(* ------------------------------------------------------------------ *)
(* Property tests *)

let gen_frag =
  (* Random integer-labelled fragments driven by a seed. *)
  QCheck.make
    ~print:(fun (seed, len) -> Printf.sprintf "seed=%d len=%d" seed len)
    QCheck.Gen.(pair (int_range 0 10_000) (int_range 0 12))

let build_frag (seed, len) =
  let rng = Proba.Rng.create ~seed in
  let rec go frag n =
    if n = 0 then frag
    else
      go
        (Core.Exec.snoc frag (Proba.Rng.int rng 5) (Proba.Rng.int rng 100))
        (n - 1)
  in
  go (Core.Exec.initial (Proba.Rng.int rng 100)) len

let prop_exec_concat_assoc =
  QCheck.Test.make ~name:"exec concat is associative" ~count:200
    (QCheck.triple gen_frag gen_frag gen_frag) (fun (a, b, c) ->
        let a = build_frag a in
        (* Force endpoints to meet by re-rooting b and c. *)
        let reroot at frag =
          Core.Exec.fold
            (fun acc act st -> Core.Exec.snoc acc act st)
            (Core.Exec.initial at) frag
        in
        let b = reroot (Core.Exec.lstate a) (build_frag b) in
        let c = reroot (Core.Exec.lstate b) (build_frag c) in
        let lhs = Core.Exec.concat (Core.Exec.concat a b) c in
        let rhs = Core.Exec.concat a (Core.Exec.concat b c) in
        Core.Exec.states lhs = Core.Exec.states rhs
        && Core.Exec.actions lhs = Core.Exec.actions rhs)

let prop_exec_prefix_roundtrip =
  QCheck.Test.make ~name:"exec drop_prefix inverts concat" ~count:200
    (QCheck.pair gen_frag gen_frag) (fun (a, b) ->
        let a = build_frag a in
        let b =
          Core.Exec.fold
            (fun acc act st -> Core.Exec.snoc acc act st)
            (Core.Exec.initial (Core.Exec.lstate a))
            (build_frag b)
        in
        let whole = Core.Exec.concat a b in
        Core.Exec.is_prefix a whole
        && (match Core.Exec.drop_prefix a whole with
            | Some suffix ->
              Core.Exec.states suffix = Core.Exec.states b
              && Core.Exec.actions suffix = Core.Exec.actions b
            | None -> false))

let prop_exec_length_adds =
  QCheck.Test.make ~name:"exec concat adds lengths" ~count:200
    (QCheck.pair gen_frag gen_frag) (fun (a, b) ->
        let a = build_frag a in
        let b =
          Core.Exec.fold
            (fun acc act st -> Core.Exec.snoc acc act st)
            (Core.Exec.initial (Core.Exec.lstate a))
            (build_frag b)
        in
        Core.Exec.length (Core.Exec.concat a b)
        = Core.Exec.length a + Core.Exec.length b)

(* Event schemas must be monotone: a verdict reached on a prefix
   persists on every extension. *)
let prop_event_first_monotone =
  QCheck.Test.make ~name:"event first is monotone along executions"
    ~count:300
    (QCheck.int_range 0 100_000) (fun seed ->
        let open Test_support.Toys.Race in
        let rng = Proba.Rng.create ~seed in
        let sched = Sim.Scheduler.uniform pa in
        let outcome =
          Sim.Engine.run pa sched ~rng ~stop:(fun _ -> false) ~max_steps:4
            start
        in
        let frag = outcome.Sim.Engine.frag in
        let ev = Core.Event.first Flip_q q_tails in
        (* Walk all prefixes: once decided, the verdict is stable. *)
        let steps = Core.Exec.steps frag in
        let rec check prefix verdict = function
          | [] -> true
          | (a, st) :: rest ->
            let prefix = Core.Exec.snoc prefix a st in
            let v = Core.Event.decide ev ~maximal:false prefix in
            (match verdict, v with
             | Core.Event.Accept, x -> x = Core.Event.Accept
             | Core.Event.Reject, x -> x = Core.Event.Reject
             | Core.Event.Undecided, _ -> true)
            && check prefix v rest
        in
        check (Core.Exec.initial (Core.Exec.fstate frag))
          Core.Event.Undecided steps)

let prop_claim_compose_arithmetic =
  QCheck.Test.make ~name:"compose multiplies probs and adds times"
    ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6)
       (QCheck.pair (QCheck.int_range 0 20)
          (QCheck.pair (QCheck.int_range 0 8) (QCheck.int_range 1 8))))
    (fun specs ->
       QCheck.assume (specs <> []);
       let preds =
         List.init (List.length specs + 1) (fun i ->
             Core.Pred.make (Printf.sprintf "U%d" i) (fun (_ : int) -> true))
       in
       let claims =
         List.mapi
           (fun i (t, (num, den_extra)) ->
              let den = num + den_extra in
              Core.Claim.axiom ~reason:"fuzz" ~schema:Core.Schema.unit_time
                ~pre:(List.nth preds i)
                ~post:(List.nth preds (i + 1))
                ~time:(Q.of_int t)
                ~prob:(Q.of_ints num den) ())
           specs
       in
       let composed = Core.Claim.compose_all claims in
       let expected_time =
         Q.of_int (List.fold_left (fun acc (t, _) -> acc + t) 0 specs)
       in
       let expected_prob =
         List.fold_left
           (fun acc (_, (num, den_extra)) ->
              Q.mul acc (Q.of_ints num (num + den_extra)))
           Q.one specs
       in
       Q.equal (Core.Claim.time composed) expected_time
       && Q.equal (Core.Claim.prob composed) expected_prob)

let prop_dist_product_marginals =
  QCheck.Test.make ~name:"dist product has correct marginals" ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 5) QCheck.small_nat)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 5) QCheck.small_nat))
    (fun (xs, ys) ->
       QCheck.assume (xs <> [] && ys <> []);
       let dx = D.uniform xs and dy = D.uniform ys in
       let p = D.product dx dy in
       List.for_all
         (fun (x, wx) ->
            Q.equal wx (D.prob p (fun (x', _) -> x' = x)))
         (D.support dx)
       && List.for_all
         (fun (y, wy) ->
            Q.equal wy (D.prob p (fun (_, y') -> y' = y)))
         (D.support dy))

let prop_tree_mass_one =
  QCheck.Test.make ~name:"execution automata carry total mass 1"
    ~count:100 (QCheck.int_range 0 100_000) (fun seed ->
        let open Test_support.Toys.Race in
        (* A history-dependent adversary derived from the seed. *)
        let rng = Proba.Rng.create ~seed in
        let flips = Array.init 8 (fun _ -> Proba.Rng.bool rng) in
        let adv frag =
          let n = Core.Exec.length frag in
          if n >= 2 then None
          else begin
            let s = Core.Exec.lstate frag in
            let steps = Core.Pa.enabled pa s in
            match steps with
            | [] -> None
            | [ only ] -> Some only
            | first :: second :: _ ->
              Some (if flips.(n) then first else second)
          end
        in
        let tree = Core.Exec_automaton.unfold pa adv start ~max_depth:5 in
        Q.equal Q.one (Core.Exec_automaton.total_mass tree))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "core"
    [ ("pred",
       [ Alcotest.test_case "basic" `Quick test_pred_basic;
         Alcotest.test_case "algebra" `Quick test_pred_algebra;
         Alcotest.test_case "same" `Quick test_pred_same ]);
      ("exec",
       [ Alcotest.test_case "basic" `Quick test_exec_basic;
         Alcotest.test_case "initial" `Quick test_exec_initial;
         Alcotest.test_case "concat" `Quick test_exec_concat;
         Alcotest.test_case "prefix" `Quick test_exec_prefix;
         Alcotest.test_case "total_time" `Quick test_exec_total_time;
         Alcotest.test_case "find/fold" `Quick test_exec_find_fold ]);
      ("pa",
       [ Alcotest.test_case "basic" `Quick test_pa_basic;
         Alcotest.test_case "empty start" `Quick test_pa_empty_start;
         Alcotest.test_case "restrict" `Quick test_pa_restrict ]);
      ("adversary",
       [ Alcotest.test_case "first_enabled" `Quick
           test_adversary_first_enabled;
         Alcotest.test_case "halt/cutoff" `Quick test_adversary_halt_cutoff;
         Alcotest.test_case "by_priority" `Quick test_adversary_by_priority;
         Alcotest.test_case "shift (execution closure)" `Quick
           test_adversary_shift;
         Alcotest.test_case "well_formed" `Quick test_adversary_well_formed ]);
      ("exec-automaton",
       [ Alcotest.test_case "measure" `Quick test_exec_automaton_measure;
         Alcotest.test_case "leaves" `Quick test_exec_automaton_leaves;
         Alcotest.test_case "truncation" `Quick
           test_exec_automaton_truncation ]);
      ("event",
       [ Alcotest.test_case "first under dependency adversary" `Quick
           test_event_first_dependency;
         Alcotest.test_case "first under fair adversary" `Quick
           test_event_first_fair;
         Alcotest.test_case "naive conditional dependence" `Quick
           test_event_naive_dependence;
         Alcotest.test_case "next" `Quick test_event_next;
         Alcotest.test_case "next duplicates" `Quick
           test_event_next_duplicate_action;
         Alcotest.test_case "reach within time" `Quick
           test_event_reach_within;
         Alcotest.test_case "negate/disj" `Quick test_event_negate_disj;
         Alcotest.test_case "Proposition 4.2 premise" `Quick
           test_event_premise;
         Alcotest.test_case "all_first (new schema)" `Quick
           test_event_all_first;
         Alcotest.test_case "all_first early halt" `Quick
           test_event_all_first_early_halt;
         Alcotest.test_case "all_first validation" `Quick
           test_event_all_first_validation ]);
      ("claim",
       [ Alcotest.test_case "accessors" `Quick test_claim_accessors;
         Alcotest.test_case "validation" `Quick test_claim_validation;
         Alcotest.test_case "compose chain (13, 1/8)" `Quick
           test_claim_compose_chain;
         Alcotest.test_case "compose mismatch" `Quick
           test_claim_compose_mismatch;
         Alcotest.test_case "compose needs closure" `Quick
           test_claim_compose_needs_closure;
         Alcotest.test_case "compose schema mismatch" `Quick
           test_claim_compose_schema_mismatch;
         Alcotest.test_case "union (Prop 3.2)" `Quick test_claim_union;
         Alcotest.test_case "weaken/relax" `Quick test_claim_weaken_relax;
         Alcotest.test_case "inclusion rules" `Quick
           test_claim_inclusion_rules;
         Alcotest.test_case "trivial" `Quick test_claim_trivial;
         Alcotest.test_case "fully_verified" `Quick
           test_claim_fully_verified;
         Alcotest.test_case "printing" `Quick test_claim_pp ]);
      ("expected",
       [ Alcotest.test_case "paper recurrence (60, 63)" `Quick
           test_expected_paper_recurrence;
         Alcotest.test_case "validation" `Quick test_expected_validation;
         Alcotest.test_case "of_claim" `Quick test_expected_of_claim;
         Alcotest.test_case "non-dyadic recurrence" `Quick
           test_expected_non_dyadic;
         Alcotest.test_case "printing" `Quick test_expected_pp ]);
      ("timed",
       [ Alcotest.test_case "within" `Quick test_timed_within;
         Alcotest.test_case "patient" `Quick test_timed_patient;
         Alcotest.test_case "elapsed" `Quick test_timed_elapsed ]);
      ("trace",
       [ Alcotest.test_case "of_exec" `Quick test_trace_of_exec;
         Alcotest.test_case "distribution" `Quick test_trace_distribution;
         Alcotest.test_case "truncated rejected" `Quick
           test_trace_distribution_truncated;
         Alcotest.test_case "prefix probabilities" `Quick
           test_trace_prefix ]);
      ("rand-adversary",
       [ Alcotest.test_case "of_deterministic" `Quick
           test_rand_of_deterministic;
         Alcotest.test_case "mixture averages" `Quick test_rand_mix;
         Alcotest.test_case "uniform over enabled" `Quick
           test_rand_uniform_enabled;
         Alcotest.test_case "mix validates" `Quick test_rand_mix_validates ]);
      ("compose",
       [ Alcotest.test_case "synchronization" `Quick test_compose_sync;
         Alcotest.test_case "interleaving" `Quick test_compose_interleave;
         Alcotest.test_case "three walkers" `Quick
           test_compose_three_walkers;
         Alcotest.test_case "empty list" `Quick test_compose_list_empty ]);
      ("schema/inclusion",
       [ Alcotest.test_case "schema" `Quick test_schema;
         Alcotest.test_case "inclusion" `Quick test_inclusion ]);
      qsuite "core-props"
        [ prop_exec_concat_assoc; prop_exec_prefix_roundtrip;
          prop_exec_length_adds; prop_event_first_monotone;
          prop_claim_compose_arithmetic; prop_dist_product_marginals;
          prop_tree_mass_one ] ]
