(* Tests for the probability substrate: Bigint, Rational, Dist, Rng,
   Stat.  Property tests check the bignum arithmetic against the native
   [int] oracle on small values and against algebraic laws on large
   values. *)

module B = Proba.Bigint
module Dy = Proba.Dyadic
module I = Proba.Interval
module Q = Proba.Rational
module D = Proba.Dist
module R = Proba.Rng
module S = Proba.Stat

let bigint_testable = Alcotest.testable B.pp B.equal
let rational_testable = Alcotest.testable Q.pp Q.equal

let check_b = Alcotest.check bigint_testable
let check_q = Alcotest.check rational_testable

(* ------------------------------------------------------------------ *)
(* Bigint unit tests *)

let test_bigint_of_to_int () =
  List.iter
    (fun n ->
       match B.to_int (B.of_int n) with
       | Some m -> Alcotest.(check int) (string_of_int n) n m
       | None -> Alcotest.failf "to_int failed for %d" n)
    [ 0; 1; -1; 42; -42; 1 lsl 29; 1 lsl 30; (1 lsl 30) - 1; 1 lsl 31;
      1 lsl 45; -(1 lsl 45); 1 lsl 60; max_int; -max_int ]

let test_bigint_to_int_boundaries () =
  (* max_int fits; one above does not. *)
  Alcotest.(check (option int)) "max_int" (Some max_int)
    (B.to_int (B.of_int max_int));
  Alcotest.(check (option int)) "max_int + 1" None
    (B.to_int (B.add (B.of_int max_int) B.one));
  Alcotest.(check (option int)) "2^100" None
    (B.to_int (B.pow B.two 100));
  Alcotest.(check (option int)) "-max_int" (Some (-max_int))
    (B.to_int (B.neg (B.of_int max_int)))

let test_bigint_min_int () =
  let v = B.of_int min_int in
  Alcotest.(check string) "min_int decimal" (string_of_int min_int)
    (B.to_string v);
  check_b "roundtrip via string" v (B.of_string (string_of_int min_int))

let test_bigint_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789123456789123456789";
      "-98765432109876543210987654321";
      "1000000000000000000000000000000000000000" ]

let test_bigint_add_sub_known () =
  let a = B.of_string "99999999999999999999999999" in
  let b = B.of_string "1" in
  check_b "carry chain" (B.of_string "100000000000000000000000000") (B.add a b);
  check_b "sub inverse" a (B.sub (B.add a b) b);
  check_b "a - a = 0" B.zero (B.sub a a)

let test_bigint_mul_known () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  check_b "product"
    (B.of_string "121932631356500531347203169112635269")
    (B.mul a b);
  check_b "sign" (B.neg (B.mul a b)) (B.mul (B.neg a) b)

let test_bigint_divmod_known () =
  let a = B.of_string "1000000000000000000000000007" in
  let b = B.of_string "998244353" in
  let q, r = B.divmod a b in
  check_b "reconstruct" a (B.add (B.mul q b) r);
  Alcotest.(check bool) "0 <= r" true (B.sign r >= 0);
  Alcotest.(check bool) "r < b" true (B.compare r b < 0)

let test_bigint_divmod_negative () =
  (* Truncated division: remainder takes the dividend's sign. *)
  let q, r = B.divmod (B.of_int (-7)) (B.of_int 2) in
  check_b "q" (B.of_int (-3)) q;
  check_b "r" (B.of_int (-1)) r;
  let q, r = B.divmod (B.of_int 7) (B.of_int (-2)) in
  check_b "q neg divisor" (B.of_int (-3)) q;
  check_b "r neg divisor" (B.of_int 1) r

let test_bigint_div_by_zero () =
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_bigint_gcd () =
  check_b "gcd(12,18)" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
  check_b "gcd(0,0)" B.zero (B.gcd B.zero B.zero);
  check_b "gcd(0,5)" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  check_b "gcd negative" (B.of_int 6) (B.gcd (B.of_int (-12)) (B.of_int 18));
  let a = B.pow (B.of_int 2) 120 in
  let b = B.pow (B.of_int 2) 75 in
  check_b "gcd powers of two" b (B.gcd a b)

let test_bigint_pow () =
  check_b "2^100"
    (B.of_string "1267650600228229401496703205376")
    (B.pow B.two 100);
  check_b "x^0" B.one (B.pow (B.of_int 12345) 0);
  check_b "0^0" B.one (B.pow B.zero 0);
  check_b "0^5" B.zero (B.pow B.zero 5);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
        ignore (B.pow B.two (-1)))

let test_bigint_compare () =
  Alcotest.(check bool) "neg < pos" true (B.compare (B.of_int (-5)) B.one < 0);
  Alcotest.(check bool) "big > small" true
    (B.compare (B.of_string "10000000000000000000") (B.of_int max_int) > 0);
  Alcotest.(check bool) "equal" true (B.equal (B.of_int 7) (B.of_int 7))

let test_bigint_bit_length () =
  Alcotest.(check int) "0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "1" 1 (B.bit_length B.one);
  Alcotest.(check int) "255" 8 (B.bit_length (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.bit_length (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.bit_length (B.pow B.two 100))

let test_bigint_to_float () =
  Alcotest.(check (float 0.0)) "42" 42.0 (B.to_float (B.of_int 42));
  Alcotest.(check (float 1e6)) "2^70" (Float.pow 2.0 70.0)
    (B.to_float (B.pow B.two 70));
  Alcotest.(check (float 0.0)) "-3" (-3.0) (B.to_float (B.of_int (-3)))

(* ------------------------------------------------------------------ *)
(* Bigint property tests *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let big_pair =
  (* Random bigints with up to ~120 bits, built from four ints. *)
  let gen =
    QCheck.Gen.(
      map
        (fun (a, b, c, s) ->
           let v =
             B.add
               (B.mul (B.of_int (abs a)) (B.pow B.two 60))
               (B.add (B.mul (B.of_int (abs b)) (B.pow B.two 30))
                  (B.of_int (abs c)))
           in
           if s then B.neg v else v)
        (quad int int int bool))
  in
  QCheck.make ~print:B.to_string gen

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int oracle" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
        B.equal (B.of_int (a + b)) (B.add (B.of_int a) (B.of_int b)))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int oracle" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
        B.equal (B.of_int (a * b)) (B.mul (B.of_int a) (B.of_int b)))

let prop_divmod_reconstruct =
  QCheck.Test.make ~name:"bigint divmod reconstructs" ~count:500
    (QCheck.pair big_pair big_pair) (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r)
        && B.compare (B.abs r) (B.abs b) < 0
        && (B.is_zero r || B.sign r = B.sign a))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint decimal roundtrip" ~count:300 big_pair
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_mul_commutative =
  QCheck.Test.make ~name:"bigint mul commutative" ~count:300
    (QCheck.pair big_pair big_pair) (fun (a, b) ->
        B.equal (B.mul a b) (B.mul b a))

let prop_add_associative =
  QCheck.Test.make ~name:"bigint add associative" ~count:300
    (QCheck.triple big_pair big_pair big_pair) (fun (a, b, c) ->
        B.equal (B.add a (B.add b c)) (B.add (B.add a b) c))

let prop_distributive =
  QCheck.Test.make ~name:"bigint mul distributes over add" ~count:300
    (QCheck.triple big_pair big_pair big_pair) (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"bigint gcd divides both" ~count:300
    (QCheck.pair big_pair big_pair) (fun (a, b) ->
        let g = B.gcd a b in
        if B.is_zero g then B.is_zero a && B.is_zero b
        else B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let test_bigint_shifts () =
  check_b "shift_left" (B.of_int 40) (B.shift_left (B.of_int 5) 3);
  check_b "shift across limbs" (B.pow B.two 100)
    (B.shift_left B.one 100);
  check_b "shift_right" (B.of_int 5) (B.shift_right (B.of_int 40) 3);
  check_b "shift_right truncates" (B.of_int 2)
    (B.shift_right (B.of_int 5) 1);
  check_b "shift_right to zero" B.zero (B.shift_right (B.of_int 5) 10);
  check_b "negative values" (B.of_int (-20))
    (B.shift_left (B.of_int (-5)) 2);
  Alcotest.check_raises "negative shift"
    (Invalid_argument "Bigint.shift_left: negative shift") (fun () ->
        ignore (B.shift_left B.one (-1)))

let test_bigint_parity () =
  Alcotest.(check bool) "zero even" true (B.is_even B.zero);
  Alcotest.(check bool) "one odd" false (B.is_even B.one);
  Alcotest.(check bool) "big even" true (B.is_even (B.pow B.two 90));
  Alcotest.(check int) "tz zero" 0 (B.trailing_zeros B.zero);
  Alcotest.(check int) "tz odd" 0 (B.trailing_zeros (B.of_int 7));
  Alcotest.(check int) "tz 40" 3 (B.trailing_zeros (B.of_int 40));
  Alcotest.(check int) "tz 2^100" 100 (B.trailing_zeros (B.pow B.two 100))

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"bigint shift left then right" ~count:300
    (QCheck.pair big_pair (QCheck.int_range 0 120)) (fun (a, k) ->
        B.equal a (B.shift_right (B.shift_left a k) k))

let prop_shift_left_is_mul =
  QCheck.Test.make ~name:"bigint shift_left = mul by 2^k" ~count:300
    (QCheck.pair big_pair (QCheck.int_range 0 120)) (fun (a, k) ->
        B.equal (B.shift_left a k) (B.mul a (B.pow B.two k)))

(* ------------------------------------------------------------------ *)
(* Rational unit tests *)

let test_rational_canonical () =
  check_q "2/4 = 1/2" Q.half (Q.of_ints 2 4);
  check_q "-1/-2 = 1/2" Q.half (Q.of_ints (-1) (-2));
  check_q "3/-6 = -1/2" (Q.neg Q.half) (Q.of_ints 3 (-6));
  Alcotest.(check string) "canonical print" "-1/2"
    (Q.to_string (Q.of_ints 3 (-6)));
  check_q "0/7 = 0" Q.zero (Q.of_ints 0 7)

let test_rational_arith () =
  check_q "1/2 + 1/3" (Q.of_ints 5 6) (Q.add Q.half (Q.of_ints 1 3));
  check_q "1/2 * 1/4" (Q.of_ints 1 8) (Q.mul Q.half (Q.of_ints 1 4));
  check_q "1/2 - 1/2" Q.zero (Q.sub Q.half Q.half);
  check_q "(1/2)/(1/4)" Q.two (Q.div Q.half (Q.of_ints 1 4));
  check_q "pow" (Q.of_ints 1 1024) (Q.pow Q.half 10);
  check_q "pow negative" (Q.of_int 1024) (Q.pow Q.half (-10))

let test_rational_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.lt (Q.of_ints 1 3) Q.half);
  Alcotest.(check bool) "leq refl" true (Q.leq Q.half Q.half);
  check_q "min" (Q.of_ints 1 3) (Q.min Q.half (Q.of_ints 1 3));
  check_q "max" Q.half (Q.max Q.half (Q.of_ints 1 3))

let test_rational_of_string () =
  check_q "3/4" (Q.of_ints 3 4) (Q.of_string "3/4");
  check_q "decimal" (Q.of_ints 1 4) (Q.of_string "0.25");
  check_q "negative decimal" (Q.of_ints (-5) 4) (Q.of_string "-1.25");
  check_q "integer" (Q.of_int 42) (Q.of_string "42");
  Alcotest.check_raises "den 0" Division_by_zero (fun () ->
      ignore (Q.of_string "1/0"))

let test_rational_is_probability () =
  Alcotest.(check bool) "1/2" true (Q.is_probability Q.half);
  Alcotest.(check bool) "0" true (Q.is_probability Q.zero);
  Alcotest.(check bool) "1" true (Q.is_probability Q.one);
  Alcotest.(check bool) "3/2" false (Q.is_probability (Q.of_ints 3 2));
  Alcotest.(check bool) "-1/2" false (Q.is_probability (Q.neg Q.half))

let test_rational_to_float () =
  Alcotest.(check (float 1e-12)) "1/8" 0.125 (Q.to_float (Q.of_ints 1 8))

let rational_arb =
  let gen =
    QCheck.Gen.(
      map
        (fun (a, b) -> Q.of_ints a (1 + abs b))
        (pair (int_range (-10000) 10000) (int_range 0 10000)))
  in
  QCheck.make ~print:Q.to_string gen

let prop_rational_field =
  QCheck.Test.make ~name:"rational add/mul distribute" ~count:500
    (QCheck.triple rational_arb rational_arb rational_arb)
    (fun (a, b, c) ->
       Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_rational_inverse =
  QCheck.Test.make ~name:"rational x * 1/x = 1" ~count:500 rational_arb
    (fun a ->
       QCheck.assume (not (Q.is_zero a));
       Q.equal Q.one (Q.mul a (Q.inv a)))

let prop_rational_compare_antisym =
  QCheck.Test.make ~name:"rational compare antisymmetric" ~count:500
    (QCheck.pair rational_arb rational_arb) (fun (a, b) ->
        Stdlib.compare (Q.compare a b) 0 = -Stdlib.compare (Q.compare b a) 0)

(* ------------------------------------------------------------------ *)
(* Differential tests for the small-word fast path: every operation is
   replayed against a pure-Bigint reference, with operands sampled
   around the native-int promotion boundary (the fast path's cutover
   points: the 2^31 multiplication guard and max_int itself). *)

(* Reference normal form computed entirely in Bigint arithmetic. *)
let ref_normalize n d =
  if B.is_zero d then raise Division_by_zero
  else
    let n, d =
      if B.compare d B.zero < 0 then (B.neg n, B.neg d) else (n, d)
    in
    let g = B.gcd n d in
    (B.div n g, B.div d g)

let repr q = (Q.num q, Q.den q)
let repr_equal (a, b) (c, d) = B.equal a c && B.equal b d

let boundary_int =
  QCheck.Gen.(
    oneof
      [ int_range (-6) 6;
        int_range (-1000) 1000;
        map (fun k -> (1 lsl 31) + k) (int_range (-3) 3);
        map (fun k -> max_int - k) (int_range 0 3);
        map (fun k -> k - max_int) (int_range 0 3);
        map (fun e -> 1 lsl e) (int_range 0 62) ])

(* Raw numerator/denominator pairs, kept unreduced so canonicalization
   itself is under test. *)
let boundary_pair_arb =
  let gen =
    QCheck.Gen.(
      map
        (fun (n, d) -> (n, if d = 0 then 1 else d))
        (pair boundary_int boundary_int))
  in
  QCheck.make ~print:(fun (n, d) -> Printf.sprintf "%d/%d" n d) gen

let prop_rational_canonical_matches_reference =
  QCheck.Test.make ~name:"rational canonical form matches bigint reference"
    ~count:1000 boundary_pair_arb (fun (n, d) ->
        repr_equal
          (repr (Q.of_ints n d))
          (ref_normalize (B.of_int n) (B.of_int d)))

let prop_rational_add_matches_reference =
  QCheck.Test.make ~name:"rational add/sub match bigint reference"
    ~count:1000
    (QCheck.pair boundary_pair_arb boundary_pair_arb)
    (fun ((an, ad), (bn, bd)) ->
       let a = Q.of_ints an ad and b = Q.of_ints bn bd in
       let cross op =
         ref_normalize
           (op (B.mul (Q.num a) (Q.den b)) (B.mul (Q.num b) (Q.den a)))
           (B.mul (Q.den a) (Q.den b))
       in
       repr_equal (repr (Q.add a b)) (cross B.add)
       && repr_equal (repr (Q.sub a b)) (cross B.sub))

let prop_rational_mul_matches_reference =
  QCheck.Test.make ~name:"rational mul/div match bigint reference"
    ~count:1000
    (QCheck.pair boundary_pair_arb boundary_pair_arb)
    (fun ((an, ad), (bn, bd)) ->
       let a = Q.of_ints an ad and b = Q.of_ints bn bd in
       repr_equal
         (repr (Q.mul a b))
         (ref_normalize (B.mul (Q.num a) (Q.num b))
            (B.mul (Q.den a) (Q.den b)))
       && (Q.is_zero b
           || repr_equal
                (repr (Q.div a b))
                (ref_normalize (B.mul (Q.num a) (Q.den b))
                   (B.mul (Q.den a) (Q.num b)))))

let prop_rational_compare_matches_reference =
  QCheck.Test.make ~name:"rational compare matches bigint cross product"
    ~count:1000
    (QCheck.pair boundary_pair_arb boundary_pair_arb)
    (fun ((an, ad), (bn, bd)) ->
       let a = Q.of_ints an ad and b = Q.of_ints bn bd in
       let cross =
         B.compare (B.mul (Q.num a) (Q.den b)) (B.mul (Q.num b) (Q.den a))
       in
       Stdlib.compare (Q.compare a b) 0 = Stdlib.compare cross 0)

let prop_rational_results_canonical =
  QCheck.Test.make ~name:"rational arithmetic preserves canonical form"
    ~count:1000
    (QCheck.pair boundary_pair_arb boundary_pair_arb)
    (fun ((an, ad), (bn, bd)) ->
       let a = Q.of_ints an ad and b = Q.of_ints bn bd in
       let canonical q =
         B.compare (Q.den q) B.zero > 0
         && B.equal (B.gcd (Q.num q) (Q.den q)) B.one
       in
       List.for_all canonical
         [ Q.add a b; Q.sub a b; Q.mul a b;
           (if Q.is_zero b then Q.zero else Q.div a b) ])

let prop_rational_representation_unique =
  (* The two-tier representation must never produce distinct encodings
     of the same value: equal values are structurally equal and hash
     alike no matter how they were constructed. *)
  QCheck.Test.make ~name:"rational representation is unique" ~count:500
    boundary_pair_arb (fun (n, d) ->
        let small = Q.of_ints n d in
        let big = Q.make (B.of_int n) (B.of_int d) in
        let scaled =
          Q.make
            (B.mul (B.of_int n) (B.of_int 7))
            (B.mul (B.of_int d) (B.of_int 7))
        in
        Q.equal small big && Q.equal small scaled && small = big
        && small = scaled
        && Q.hash small = Q.hash big
        && Q.hash small = Q.hash scaled)

let test_rational_compare_shortcuts () =
  (* Equal-denominator shortcut, small and big. *)
  Alcotest.(check int) "equal small den" (-1)
    (Q.compare (Q.of_ints 3 7) (Q.of_ints 5 7));
  let huge = B.pow B.two 80 in
  Alcotest.(check int) "equal big den" (-1)
    (Q.compare (Q.make B.one huge) (Q.make (B.of_int 3) huge));
  (* Sign shortcut across representations. *)
  Alcotest.(check int) "neg < pos" (-1)
    (Q.compare (Q.of_ints (-1) max_int) (Q.make B.one huge));
  (* Cross products overflow native ints here, forcing the bigint
     fallback: (M-1)(M-4) < (M-3)(M-2). *)
  Alcotest.(check int) "cross-mul overflow" (-1)
    (Q.compare
       (Q.of_ints (max_int - 1) (max_int - 2))
       (Q.of_ints (max_int - 3) (max_int - 4)))

let test_rational_promotion_boundary () =
  let m = Q.of_int max_int in
  check_q "(max_int + 1) - 1" m (Q.sub (Q.add m Q.one) Q.one);
  check_q "2 * (max_int/2)" m (Q.mul (Q.of_ints max_int 2) Q.two);
  check_q "(x + x) / 2" (Q.of_ints max_int 2)
    (Q.div (Q.add (Q.of_ints max_int 2) (Q.of_ints max_int 2)) Q.two);
  (* min_int never fits the small representation; arithmetic must
     round-trip through the big one. *)
  let mn = Q.of_int min_int in
  check_q "min_int negates" (Q.neg mn) (Q.sub Q.zero mn);
  check_q "min_int/min_int" Q.one (Q.div mn mn);
  check_q "of_ints min_int min_int" Q.one (Q.of_ints min_int min_int);
  Alcotest.(check string) "min_int prints" (string_of_int min_int)
    (Q.to_string mn)

(* ------------------------------------------------------------------ *)
(* Dist tests *)

let test_dist_point () =
  let d = D.point 7 in
  Alcotest.(check int) "size" 1 (D.size d);
  check_q "prob" Q.one (D.prob_of d 7);
  Alcotest.(check (option int)) "is_point" (Some 7) (D.is_point d)

let test_dist_make_validates () =
  Alcotest.(check bool) "bad total rejected" true
    (try
       ignore (D.make [ (1, Q.half); (2, Q.of_ints 1 3) ]);
       false
     with D.Not_a_distribution _ -> true);
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (D.make [ (1, Q.of_ints 3 2); (2, Q.neg Q.half) ]);
       false
     with D.Not_a_distribution _ -> true)

let test_dist_merge_duplicates () =
  let d = D.make [ (1, Q.half); (1, Q.of_ints 1 4); (2, Q.of_ints 1 4) ] in
  Alcotest.(check int) "merged size" 2 (D.size d);
  check_q "merged weight" (Q.of_ints 3 4) (D.prob_of d 1)

let test_dist_custom_equal_merge () =
  (* Outcomes that are structurally distinct but identified by a custom
     [~equal] must coalesce rather than stay as split masses (the shape
     fault injection produces when the base automaton's state equality
     is coarser than structural equality). *)
  let equal (a, _) (b, _) = a = b in
  let d =
    D.make ~equal
      [ ((1, "x"), Q.half); ((1, "y"), Q.of_ints 1 4);
        ((2, "z"), Q.of_ints 1 4) ]
  in
  Alcotest.(check int) "make coalesces" 2 (D.size d);
  check_q "mass merged" (Q.of_ints 3 4) (D.prob_of ~equal d (1, "w"));
  let mapped = D.map ~equal (fun ((i, _), tag) -> (i, tag)) (D.product d d) in
  Alcotest.(check int) "map coalesces" 2 (D.size mapped)

let test_dist_uniform () =
  let d = D.uniform [ 'a'; 'b'; 'c' ] in
  check_q "each 1/3" (Q.of_ints 1 3) (D.prob_of d 'b');
  Alcotest.(check bool) "empty uniform rejected" true
    (try ignore (D.uniform ([] : int list)); false
     with D.Not_a_distribution _ -> true)

let test_dist_coin () =
  let d = D.coin `H `T in
  check_q "heads 1/2" Q.half (D.prob d (fun x -> x = `H))

let test_dist_map_bind () =
  let d = D.uniform [ 1; 2; 3; 4 ] in
  let even = D.map (fun n -> n mod 2 = 0) d in
  check_q "map collapses" Q.half (D.prob_of even true);
  let two_flips = D.bind (D.coin 0 1) (fun a ->
      D.map (fun b -> a + b) (D.coin 0 1))
  in
  check_q "bind sum=1" Q.half (D.prob_of two_flips 1);
  check_q "bind sum=2" (Q.of_ints 1 4) (D.prob_of two_flips 2)

let test_dist_product () =
  let d = D.product (D.coin `H `T) (D.uniform [ 1; 2; 3 ]) in
  check_q "independent cell" (Q.of_ints 1 6) (D.prob_of d (`H, 2));
  Alcotest.(check int) "size" 6 (D.size d)

let test_dist_expect () =
  let d = D.uniform [ 1; 2; 3; 4; 5; 6 ] in
  check_q "mean die" (Q.of_ints 7 2) (D.expect d Q.of_int)

let test_dist_filter () =
  let d = D.uniform [ 1; 2; 3; 4 ] in
  (match D.filter_renormalize d (fun n -> n <= 2) with
   | None -> Alcotest.fail "conditioning failed"
   | Some d' -> check_q "conditioned" Q.half (D.prob_of d' 1));
  Alcotest.(check bool) "null event" true
    (D.filter_renormalize d (fun n -> n > 10) = None)

let test_dist_sample () =
  let d = D.bernoulli (Q.of_ints 3 4) `X `Y in
  Alcotest.(check bool) "low u" true (D.sample d 0.1 = `X);
  Alcotest.(check bool) "high u" true (D.sample d 0.9 = `Y)

let prop_dist_bind_assoc =
  (* Monad associativity on a small concrete family. *)
  QCheck.Test.make ~name:"dist bind associativity" ~count:200
    (QCheck.int_range 1 6) (fun n ->
        let d = D.uniform (List.init n (fun i -> i)) in
        let f x = D.coin x (x + 1) in
        let g x = D.uniform [ x; x * 2 ] in
        let lhs = D.bind (D.bind d f) g in
        let rhs = D.bind d (fun x -> D.bind (f x) g) in
        List.for_all
          (fun (x, _) -> Q.equal (D.prob_of lhs x) (D.prob_of rhs x))
          (D.support rhs))

let prop_dist_total_one =
  QCheck.Test.make ~name:"dist weights always sum to 1" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8) QCheck.small_nat)
    (fun xs ->
       QCheck.assume (xs <> []);
       let d = D.uniform xs in
       Q.equal Q.one (Q.sum (List.map snd (D.support d))))

(* ------------------------------------------------------------------ *)
(* Pspace *)

let test_pspace_probability_and_conditional () =
  let d = D.uniform [ 1; 2; 3; 4; 5; 6 ] in
  let even n = n mod 2 = 0 in
  let low n = n <= 3 in
  check_q "P(even)" Q.half (Proba.Pspace.probability d even);
  (match Proba.Pspace.conditional d even ~given:low with
   | Some p -> check_q "P(even | <=3) = 1/3" (Q.of_ints 1 3) p
   | None -> Alcotest.fail "condition has positive probability");
  Alcotest.(check bool) "null condition" true
    (Proba.Pspace.conditional d even ~given:(fun n -> n > 6) = None)

let test_pspace_independence () =
  (* Two fair coins: the coordinates are independent; on a single coin,
     an event is not independent of itself (unless trivial). *)
  let two = D.product (D.coin true false) (D.coin true false) in
  Alcotest.(check bool) "coordinates independent" true
    (Proba.Pspace.independent two fst snd);
  Alcotest.(check bool) "event vs itself" false
    (Proba.Pspace.independent two fst fst);
  Alcotest.(check bool) "trivial event independent of anything" true
    (Proba.Pspace.independent two fst (fun _ -> true))

let test_pspace_algebra_and_moments () =
  let d = D.uniform [ 1; 2; 3; 4 ] in
  let e1 n = n <= 2 and e2 n = n mod 2 = 0 in
  check_q "inter" (Q.of_ints 1 4)
    (Proba.Pspace.probability d (Proba.Pspace.inter e1 e2));
  check_q "union" (Q.of_ints 3 4)
    (Proba.Pspace.probability d (Proba.Pspace.union e1 e2));
  check_q "complement" Q.half
    (Proba.Pspace.probability d (Proba.Pspace.complement e1));
  check_q "variance of uniform 1..4" (Q.of_ints 5 4)
    (Proba.Pspace.variance d Q.of_int)

(* ------------------------------------------------------------------ *)
(* Rng tests *)

let test_rng_deterministic () =
  let a = R.create ~seed:42 in
  let b = R.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (R.bits64 a) (R.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = R.create ~seed:1 in
  let b = R.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true
    (R.bits64 a <> R.bits64 b)

let test_rng_int_bounds () =
  let r = R.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = R.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
        ignore (R.int r 0))

let test_rng_float_range () =
  let r = R.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = R.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_int_coverage () =
  (* Each residue of a small bound should appear: smoke test against
     catastrophic bias. *)
  let r = R.create ~seed:11 in
  let seen = Array.make 5 0 in
  for _ = 1 to 1000 do
    let v = R.int r 5 in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i c ->
       Alcotest.(check bool) (Printf.sprintf "residue %d present" i) true
         (c > 100))
    seen

let test_rng_split_independent () =
  let r = R.create ~seed:5 in
  let child = R.split r in
  Alcotest.(check bool) "parent and child diverge" true
    (R.bits64 r <> R.bits64 child)

let test_rng_copy () =
  let r = R.create ~seed:13 in
  ignore (R.bits64 r);
  let c = R.copy r in
  Alcotest.(check int64) "copy replays" (R.bits64 r) (R.bits64 c)

let test_rng_pick () =
  let r = R.create ~seed:17 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true
      (List.mem (R.pick r [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty pick"
    (Invalid_argument "Rng.pick: empty list") (fun () ->
        ignore (R.pick r ([] : int list)))

let test_rng_shuffle () =
  let r = R.create ~seed:3 in
  let xs = List.init 20 (fun i -> i) in
  let ys = R.shuffle r xs in
  Alcotest.(check (list int)) "permutation" xs (List.sort compare ys)

(* ------------------------------------------------------------------ *)
(* Stat tests *)

let test_summary_known () =
  let s = S.Summary.create () in
  List.iter (S.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (S.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0)
    (S.Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (S.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (S.Summary.max s);
  Alcotest.(check int) "count" 8 (S.Summary.count s)

let test_summary_ci_contains_mean () =
  let s = S.Summary.create () in
  List.iter (S.Summary.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let lo, hi = S.Summary.mean_ci s in
  Alcotest.(check bool) "ci brackets mean" true (lo < 3.0 && 3.0 < hi)

let test_proportion () =
  let p = S.Proportion.create () in
  for i = 1 to 100 do S.Proportion.add p (i mod 4 = 0) done;
  Alcotest.(check (float 1e-9)) "estimate" 0.25 (S.Proportion.estimate p);
  let lo, hi = S.Proportion.wilson_ci p in
  Alcotest.(check bool) "wilson brackets" true (lo < 0.25 && 0.25 < hi);
  Alcotest.(check bool) "wilson within [0,1]" true (lo >= 0.0 && hi <= 1.0)

let test_proportion_extremes () =
  let p = S.Proportion.create () in
  for _ = 1 to 50 do S.Proportion.add p true done;
  let lo, hi = S.Proportion.wilson_ci p in
  Alcotest.(check (float 1e-9)) "hi at 1" 1.0 hi;
  Alcotest.(check bool) "lo below 1 but high" true (lo > 0.9 && lo < 1.0)

let test_histogram () =
  let h = S.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (S.Histogram.add h) [ 0.5; 1.5; 2.5; 3.5; 4.5; -1.0; 11.0 ];
  Alcotest.(check int) "count" 7 (S.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (S.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (S.Histogram.overflow h);
  Alcotest.(check int) "bin 0" 1 (S.Histogram.bin_counts h).(0)

let test_histogram_quantile () =
  let h = S.Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 1 to 1000 do
    S.Histogram.add h (float_of_int (i mod 100))
  done;
  let med = S.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median near 50" true (med > 45.0 && med < 55.0)

(* ------------------------------------------------------------------ *)
(* Dyadic *)

let dyadic = Alcotest.testable Dy.pp Dy.equal
let check_dy = Alcotest.check dyadic

let test_dyadic_basics () =
  check_dy "1/2" Dy.half (Dy.make B.one (-1));
  check_dy "normalization" (Dy.make B.one 3) (Dy.make (B.of_int 8) 0);
  check_q "to_rational half" Q.half (Dy.to_rational Dy.half);
  check_dy "of_rational" Dy.half (Dy.of_rational Q.half);
  check_dy "of_rational 3/8" (Dy.make (B.of_int 3) (-3))
    (Dy.of_rational (Q.of_ints 3 8));
  Alcotest.(check bool) "1/3 rejected" true
    (try ignore (Dy.of_rational (Q.of_ints 1 3)); false
     with Dy.Not_dyadic _ -> true)

let test_dyadic_arith () =
  check_dy "add" (Dy.of_rational (Q.of_ints 7 8))
    (Dy.add Dy.half (Dy.of_rational (Q.of_ints 3 8)));
  check_dy "sub" (Dy.of_rational (Q.of_ints 1 8))
    (Dy.sub Dy.half (Dy.of_rational (Q.of_ints 3 8)));
  check_dy "mul" (Dy.of_rational (Q.of_ints 3 16))
    (Dy.mul Dy.half (Dy.of_rational (Q.of_ints 3 8)));
  check_dy "cancellation" Dy.zero (Dy.sub Dy.half Dy.half);
  Alcotest.(check int) "compare" (-1)
    (Dy.compare (Dy.of_rational (Q.of_ints 3 8)) Dy.half);
  Alcotest.(check (float 1e-12)) "to_float" 0.375
    (Dy.to_float (Dy.of_rational (Q.of_ints 3 8)))

let dyadic_arb =
  let gen =
    QCheck.Gen.(
      map
        (fun (m, e) -> Dy.make (B.of_int m) e)
        (pair (int_range (-10000) 10000) (int_range (-30) 30)))
  in
  QCheck.make
    ~print:(fun d -> Q.to_string (Dy.to_rational d))
    gen

let prop_dyadic_matches_rational =
  (* The dyadic field operations agree with the rational oracle. *)
  QCheck.Test.make ~name:"dyadic agrees with rational oracle" ~count:500
    (QCheck.pair dyadic_arb dyadic_arb) (fun (a, b) ->
        let qa = Dy.to_rational a and qb = Dy.to_rational b in
        Q.equal (Dy.to_rational (Dy.add a b)) (Q.add qa qb)
        && Q.equal (Dy.to_rational (Dy.mul a b)) (Q.mul qa qb)
        && Q.equal (Dy.to_rational (Dy.sub a b)) (Q.sub qa qb)
        && Stdlib.compare (Dy.compare a b) 0
           = Stdlib.compare (Q.compare qa qb) 0)

let prop_dyadic_roundtrip =
  QCheck.Test.make ~name:"dyadic of_rational . to_rational = id" ~count:300
    dyadic_arb (fun a ->
        Dy.equal a (Dy.of_rational (Dy.to_rational a)))

(* Mantissas near the promotion boundary exercise the small-word fast
   path's overflow checks (shifted alignment in [add], the 2^31 guard
   in [mul], shift-compare in [compare]). *)
let boundary_dyadic_arb =
  let gen =
    QCheck.Gen.(
      map
        (fun (m, e) -> Dy.make (B.of_int m) e)
        (pair boundary_int (int_range (-70) 70)))
  in
  QCheck.make ~print:(fun d -> Q.to_string (Dy.to_rational d)) gen

let prop_dyadic_boundary_matches_rational =
  QCheck.Test.make ~name:"dyadic boundary ops agree with rational oracle"
    ~count:500
    (QCheck.pair boundary_dyadic_arb boundary_dyadic_arb) (fun (a, b) ->
        let qa = Dy.to_rational a and qb = Dy.to_rational b in
        Q.equal (Dy.to_rational (Dy.add a b)) (Q.add qa qb)
        && Q.equal (Dy.to_rational (Dy.sub a b)) (Q.sub qa qb)
        && Q.equal (Dy.to_rational (Dy.mul a b)) (Q.mul qa qb)
        && Stdlib.compare (Dy.compare a b) 0
           = Stdlib.compare (Q.compare qa qb) 0)

let prop_dyadic_boundary_canonical =
  (* Canonical form: odd mantissa (or the zero/0 pair), and the same
     value built from a pre-shifted mantissa is structurally equal. *)
  QCheck.Test.make ~name:"dyadic boundary results canonical" ~count:500
    (QCheck.pair boundary_dyadic_arb boundary_dyadic_arb) (fun (a, b) ->
        let canonical d =
          let m = Dy.mantissa d in
          if B.is_zero m then Dy.exponent d = 0 else not (B.is_even m)
        in
        let shifted d =
          Dy.make (B.shift_left (Dy.mantissa d) 5) (Dy.exponent d - 5)
        in
        List.for_all
          (fun d -> canonical d && shifted d = d)
          [ Dy.add a b; Dy.sub a b; Dy.mul a b ])

(* ------------------------------------------------------------------ *)
(* Interval: the outward-rounded double plane.  Soundness is the
   invariant everything else rests on -- every operation's result
   interval must contain the exact rational result -- and tightness
   (point intervals whenever the result is representable) is what the
   engines harvest, so both are property-tested against the rational
   oracle, including operands promoted past the native-int tier. *)

let test_interval_basics () =
  let half = I.of_rational Q.half in
  Alcotest.(check bool) "1/2 is a point" true (I.is_point half);
  check_q "1/2 pins 1/2" Q.half
    (Option.get (I.exact_value half));
  let third = I.of_rational (Q.of_ints 1 3) in
  Alcotest.(check bool) "1/3 is not a point" false (I.is_point third);
  Alcotest.(check bool) "1/3 interval is one ulp" true
    (Float.succ (I.lo third) = I.hi third);
  Alcotest.(check bool) "1/3 inside" true (I.contains third (Q.of_ints 1 3));
  let q = I.add (I.of_rational (Q.of_ints 1 4)) (I.of_rational (Q.of_ints 1 4)) in
  Alcotest.(check bool) "1/4+1/4 stays a point" true (I.is_point q);
  check_q "1/4+1/4 pins 1/2" Q.half (Option.get (I.exact_value q))

let test_interval_compare_to () =
  let third = I.of_rational (Q.of_ints 1 3) in
  Alcotest.(check (option int)) "1/3 < 1/2" (Some (-1))
    (I.compare_to third Q.half);
  Alcotest.(check (option int)) "1/3 > 1/4" (Some 1)
    (I.compare_to third (Q.of_ints 1 4));
  Alcotest.(check (option int)) "1/3 vs 1/3 undecided" None
    (I.compare_to third (Q.of_ints 1 3));
  Alcotest.(check (option int)) "1/2 = 1/2 decided" (Some 0)
    (I.compare_to (I.of_rational Q.half) Q.half)

let test_directed_add_ulp () =
  (* 1 + 2^-60 rounds to nearest 1.0; the directed versions must
     straddle the true sum by exactly one ulp on the up side. *)
  Alcotest.(check (float 0.0)) "add_down exact side" 1.0
    (I.add_down 1.0 0x1p-60);
  Alcotest.(check (float 0.0)) "add_up bumps one ulp" (Float.succ 1.0)
    (I.add_up 1.0 0x1p-60);
  Alcotest.(check (float 0.0)) "add_down bumps one ulp" (Float.pred 1.0)
    (I.add_down 1.0 (-0x1p-60));
  Alcotest.(check (float 0.0)) "add_up exact side" 1.0
    (I.add_up 1.0 (-0x1p-60))

(* The interval must contain the rational; when it is a point the
   enclosure must be exact (this is what lets engines skip work). *)
let encloses iv q =
  I.contains iv q
  && (not (I.is_point iv)
      || (match I.exact_value iv with
          | Some p -> Q.equal p q
          | None -> true))

let prop_interval_of_rational_correctly_rounded =
  (* [to_float_down q] is the largest double <= q (and dually): the
     neighbour just past it must overshoot. *)
  QCheck.Test.make ~name:"interval of_rational is correctly rounded"
    ~count:1000 rational_arb (fun q ->
        let lo = Q.to_float_down q and hi = Q.to_float_up q in
        Q.leq (Q.of_float_exact lo) q
        && Q.leq q (Q.of_float_exact hi)
        && Q.gt (Q.of_float_exact (Float.succ lo)) q
        && Q.lt (Q.of_float_exact (Float.pred hi)) q)

let prop_interval_ops_sound =
  QCheck.Test.make ~name:"interval ops contain the rational result"
    ~count:1000 (QCheck.pair rational_arb rational_arb) (fun (a, b) ->
        let ia = I.of_rational a and ib = I.of_rational b in
        encloses (I.add ia ib) (Q.add a b)
        && encloses (I.sub ia ib) (Q.sub a b)
        && encloses (I.mul ia ib) (Q.mul a b)
        && encloses (I.min ia ib) (if Q.leq a b then a else b)
        && encloses (I.max ia ib) (if Q.leq a b then b else a))

let prop_interval_promoted_sound =
  (* Operands built from boundary ints land in the Bigint tier; the
     directed conversions must stay sound (and the near-overflow
     saturation to max_float / infinity keeps enclosing). *)
  QCheck.Test.make ~name:"interval sound across bigint-tier operands"
    ~count:1000
    (QCheck.pair boundary_pair_arb boundary_pair_arb)
    (fun ((n1, d1), (n2, d2)) ->
       let a = Q.of_ints n1 d1 and b = Q.of_ints n2 d2 in
       let big = Q.mul a b in
       let ia = I.of_rational a and ib = I.of_rational b in
       I.contains (I.of_rational big) big
       && encloses (I.mul ia ib) big
       && encloses (I.add ia ib) (Q.add a b))

let prop_interval_dyadic_points =
  (* Small dyadics are exactly representable, and so are their sums
     and products at these sizes: the plane must keep them as points
     (tightness, not just soundness). *)
  QCheck.Test.make ~name:"interval keeps small dyadic ops as points"
    ~count:500
    (let gen =
       QCheck.Gen.(
         map
           (fun (m, e) -> Dy.to_rational (Dy.make (B.of_int m) e))
           (pair (int_range (-4000) 4000) (int_range (-12) 12)))
     in
     QCheck.make ~print:Q.to_string gen
     |> fun arb -> QCheck.pair arb arb)
    (fun (a, b) ->
       let ia = I.of_rational a and ib = I.of_rational b in
       I.is_point ia && I.is_point ib
       && encloses (I.add ia ib) (Q.add a b)
       && I.is_point (I.add ia ib)
       && encloses (I.mul ia ib) (Q.mul a b)
       && I.is_point (I.mul ia ib))

let prop_of_float_exact_roundtrip =
  QCheck.Test.make ~name:"of_float_exact roundtrips through to_float_*"
    ~count:1000 rational_arb (fun q ->
        let f = Q.to_float_down q in
        let r = Q.of_float_exact f in
        Float.equal (Q.to_float_down r) f && Float.equal (Q.to_float_up r) f)

let prop_interval_compare_to_agrees =
  QCheck.Test.make ~name:"interval compare_to agrees with rational compare"
    ~count:1000 (QCheck.pair rational_arb rational_arb) (fun (a, b) ->
        match I.compare_to (I.of_rational a) b with
        | None -> true (* undecided is always allowed *)
        | Some c -> Stdlib.compare (Q.compare a b) 0 = c)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "proba"
    [ ("bigint",
       [ Alcotest.test_case "of/to int" `Quick test_bigint_of_to_int;
         Alcotest.test_case "to_int boundaries" `Quick
           test_bigint_to_int_boundaries;
         Alcotest.test_case "min_int" `Quick test_bigint_min_int;
         Alcotest.test_case "string roundtrip" `Quick
           test_bigint_string_roundtrip;
         Alcotest.test_case "add/sub" `Quick test_bigint_add_sub_known;
         Alcotest.test_case "mul" `Quick test_bigint_mul_known;
         Alcotest.test_case "divmod" `Quick test_bigint_divmod_known;
         Alcotest.test_case "divmod negative" `Quick
           test_bigint_divmod_negative;
         Alcotest.test_case "div by zero" `Quick test_bigint_div_by_zero;
         Alcotest.test_case "gcd" `Quick test_bigint_gcd;
         Alcotest.test_case "pow" `Quick test_bigint_pow;
         Alcotest.test_case "compare" `Quick test_bigint_compare;
         Alcotest.test_case "shifts" `Quick test_bigint_shifts;
         Alcotest.test_case "parity" `Quick test_bigint_parity;
         Alcotest.test_case "bit_length" `Quick test_bigint_bit_length;
         Alcotest.test_case "to_float" `Quick test_bigint_to_float ]);
      qsuite "bigint-props"
        [ prop_add_matches_int; prop_mul_matches_int;
          prop_divmod_reconstruct; prop_string_roundtrip;
          prop_mul_commutative; prop_add_associative; prop_distributive;
          prop_gcd_divides; prop_shift_roundtrip; prop_shift_left_is_mul ];
      ("dyadic",
       [ Alcotest.test_case "basics" `Quick test_dyadic_basics;
         Alcotest.test_case "arith" `Quick test_dyadic_arith ]);
      qsuite "dyadic-props"
        [ prop_dyadic_matches_rational; prop_dyadic_roundtrip;
          prop_dyadic_boundary_matches_rational;
          prop_dyadic_boundary_canonical ];
      ("interval",
       [ Alcotest.test_case "basics" `Quick test_interval_basics;
         Alcotest.test_case "compare_to" `Quick test_interval_compare_to;
         Alcotest.test_case "directed add ulp" `Quick test_directed_add_ulp ]);
      qsuite "interval-props"
        [ prop_interval_of_rational_correctly_rounded;
          prop_interval_ops_sound; prop_interval_promoted_sound;
          prop_interval_dyadic_points; prop_of_float_exact_roundtrip;
          prop_interval_compare_to_agrees ];
      ("rational",
       [ Alcotest.test_case "canonical" `Quick test_rational_canonical;
         Alcotest.test_case "arith" `Quick test_rational_arith;
         Alcotest.test_case "compare" `Quick test_rational_compare;
         Alcotest.test_case "compare shortcuts" `Quick
           test_rational_compare_shortcuts;
         Alcotest.test_case "promotion boundary" `Quick
           test_rational_promotion_boundary;
         Alcotest.test_case "of_string" `Quick test_rational_of_string;
         Alcotest.test_case "is_probability" `Quick
           test_rational_is_probability;
         Alcotest.test_case "to_float" `Quick test_rational_to_float ]);
      qsuite "rational-props"
        [ prop_rational_field; prop_rational_inverse;
          prop_rational_compare_antisym ];
      qsuite "rational-differential"
        [ prop_rational_canonical_matches_reference;
          prop_rational_add_matches_reference;
          prop_rational_mul_matches_reference;
          prop_rational_compare_matches_reference;
          prop_rational_results_canonical;
          prop_rational_representation_unique ];
      ("dist",
       [ Alcotest.test_case "point" `Quick test_dist_point;
         Alcotest.test_case "make validates" `Quick test_dist_make_validates;
         Alcotest.test_case "merge duplicates" `Quick
           test_dist_merge_duplicates;
         Alcotest.test_case "custom equal merge" `Quick
           test_dist_custom_equal_merge;
         Alcotest.test_case "uniform" `Quick test_dist_uniform;
         Alcotest.test_case "coin" `Quick test_dist_coin;
         Alcotest.test_case "map/bind" `Quick test_dist_map_bind;
         Alcotest.test_case "product" `Quick test_dist_product;
         Alcotest.test_case "expect" `Quick test_dist_expect;
         Alcotest.test_case "filter" `Quick test_dist_filter;
         Alcotest.test_case "sample" `Quick test_dist_sample ]);
      qsuite "dist-props" [ prop_dist_bind_assoc; prop_dist_total_one ];
      ("pspace",
       [ Alcotest.test_case "probability/conditional" `Quick
           test_pspace_probability_and_conditional;
         Alcotest.test_case "independence" `Quick test_pspace_independence;
         Alcotest.test_case "algebra/moments" `Quick
           test_pspace_algebra_and_moments ]);
      ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "seed sensitivity" `Quick
           test_rng_seed_sensitivity;
         Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
         Alcotest.test_case "float range" `Quick test_rng_float_range;
         Alcotest.test_case "int coverage" `Quick test_rng_int_coverage;
         Alcotest.test_case "split" `Quick test_rng_split_independent;
         Alcotest.test_case "copy" `Quick test_rng_copy;
         Alcotest.test_case "pick" `Quick test_rng_pick;
         Alcotest.test_case "shuffle" `Quick test_rng_shuffle ]);
      ("stat",
       [ Alcotest.test_case "summary" `Quick test_summary_known;
         Alcotest.test_case "summary ci" `Quick test_summary_ci_contains_mean;
         Alcotest.test_case "proportion" `Quick test_proportion;
         Alcotest.test_case "proportion extremes" `Quick
           test_proportion_extremes;
         Alcotest.test_case "histogram" `Quick test_histogram;
         Alcotest.test_case "histogram quantile" `Quick
           test_histogram_quantile ]) ]
