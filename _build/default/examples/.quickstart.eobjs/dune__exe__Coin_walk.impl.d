examples/coin_walk.ml: Array Core Format List Mdp Option Printf Proba Shared_coin Sys
