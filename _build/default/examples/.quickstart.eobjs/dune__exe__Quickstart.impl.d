examples/quickstart.ml: Core Format Mdp Printf Proba Sim
