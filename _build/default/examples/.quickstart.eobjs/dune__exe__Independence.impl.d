examples/independence.ml: Core Experiments Printf Proba
