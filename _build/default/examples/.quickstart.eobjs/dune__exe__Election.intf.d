examples/election.mli:
