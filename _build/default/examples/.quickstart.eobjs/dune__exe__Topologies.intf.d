examples/topologies.mli:
