examples/quickstart.mli:
