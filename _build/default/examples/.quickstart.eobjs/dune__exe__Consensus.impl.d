examples/consensus.ml: Ben_or Core Format List Mdp Printf Proba
