examples/consensus.mli:
