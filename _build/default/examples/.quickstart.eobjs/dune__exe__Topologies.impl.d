examples/topologies.ml: Core Format Lehmann_rabin List Mdp Printf Proba
