examples/dining.ml: Array Core Format Lehmann_rabin List Mdp Printf Proba Sim Sys
