examples/coin_walk.mli:
