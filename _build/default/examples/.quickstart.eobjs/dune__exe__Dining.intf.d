examples/dining.mli:
