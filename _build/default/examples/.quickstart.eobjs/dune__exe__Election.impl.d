examples/election.ml: Array Core Format Itai_rodeh List Mdp Printf Proba Sim Sys
