examples/independence.mli:
