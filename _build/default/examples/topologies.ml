(* The paper's future-work question, answered experimentally: do the
   Lehmann-Rabin phase bounds survive on topologies other than rings?

   Run with:  dune exec examples/topologies.exe

   A topology here assigns each philosopher a left and a right
   resource; any such assignment runs the unmodified protocol.  The
   goodness set G generalizes ("some committed process whose second
   resource nobody else potentially controls"), and the whole proof
   pipeline -- invariant, five arrows, Theorem 3.4 composition --
   replays on every topology. *)

module Q = Proba.Rational
module LR = Lehmann_rabin

let analyze topo =
  Printf.printf "== %s ==\n" (LR.Topology.name topo);
  let inst = LR.Proof.build_topo ~topo () in
  Printf.printf "reachable states: %d\n"
    (Mdp.Explore.num_states inst.LR.Proof.texpl);
  (match LR.Proof.invariant_topo inst with
   | None -> print_endline "Lemma 6.1 (generalized): holds"
   | Some s -> Format.printf "Lemma 6.1 VIOLATED at %a@." LR.State.pp s);
  List.iter
    (fun a ->
       Format.printf "  %-5s attained %-6s (%s)@." a.LR.Proof.label
         (Q.to_string a.LR.Proof.attained)
         (match a.LR.Proof.claim with Some _ -> "holds" | None -> "FAILS"))
    (LR.Proof.arrows_topo inst);
  (match LR.Proof.composed_topo inst with
   | Ok claim -> Format.printf "  composed: %a@." Core.Claim.pp claim
   | Error e -> Printf.printf "  composition failed: %s\n" e);
  Printf.printf "  direct 13-unit minimum: %s; worst E[time]: %.3f\n\n"
    (Q.to_string (LR.Proof.direct_bound_topo inst))
    (LR.Proof.max_expected_time_topo inst)

let () =
  print_endline
    "Lehmann-Rabin beyond the ring (paper Sec. 7 future work):\n";
  List.iter analyze
    [ LR.Topology.ring 3; LR.Topology.line 3; LR.Topology.star 3 ];
  print_endline
    "The ring is the hard case: its rotational symmetry forces the \
     probabilistic\nsymmetry breaking the constants account for.  On \
     the line and the star the\nstructure already breaks symmetry, and \
     the same bounds hold with slack."
