(* Applying the paper's proof method to a different protocol:
   randomized leader election on an anonymous ring (Itai-Rodeh style,
   synchronous one-bit rounds).

   Run with:  dune exec examples/election.exe [-- N]

   The analysis mirrors the dining-philosophers one: a ladder of
   per-level statements at_most(k) -1->_{1/2} at_most(k-1) is checked
   exhaustively, Theorem 3.4 composes them, and geometric trials bound
   the expected election time by 2(n-1). *)

module Q = Proba.Rational
module IR = Itai_rodeh

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5
  in
  Printf.printf "== randomized leader election, n = %d ==\n\n" n;
  let inst = IR.Proof.build ~n () in
  Printf.printf "reachable states: %d\n\n"
    (Mdp.Explore.num_states inst.IR.Proof.expl);

  List.iter
    (fun a ->
       Format.printf "%-4s attained %-6s (%s)@." a.IR.Proof.label
         (Q.to_string a.IR.Proof.attained)
         (match a.IR.Proof.claim with Some _ -> "holds" | None -> "FAILS"))
    (IR.Proof.arrows inst);

  (match IR.Proof.composed inst with
   | Error e -> Printf.printf "composition failed: %s\n" e
   | Ok claim ->
     Format.printf "@.composed: %a@." Core.Claim.pp claim;
     Format.printf "exact direct bound at the same horizon: %s@."
       (Q.to_string (IR.Proof.direct_bound inst)));

  Format.printf "@.%a@." Core.Expected.pp (IR.Proof.expected_bound ~n);
  Printf.printf "worst-case expected election time on the MDP: %.3f\n\n"
    (IR.Proof.max_expected_time inst);

  (* Simulation scaling beyond the checker. *)
  print_endline "simulated mean election time (uniform scheduler):";
  List.iter
    (fun big ->
       let params = { IR.Automaton.n = big; g = 1; k = 1 } in
       let pa = IR.Automaton.make params in
       let setup =
         { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
           duration = IR.Automaton.duration;
           start = IR.Automaton.start params }
       in
       let summary, _ =
         Sim.Monte_carlo.estimate_time setup
           ~target:IR.Automaton.leader_elected ~trials:1000 ~seed:3 ()
       in
       Printf.printf "  n = %3d : %7.3f units (derived bound %d)\n" big
         (Proba.Stat.Summary.mean summary)
         (2 * (big - 1)))
    [ n; 2 * n; 4 * n ]
