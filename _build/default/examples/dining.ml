(* The paper's case study end to end: Lehmann-Rabin Dining
   Philosophers.

   Run with:  dune exec examples/dining.exe [-- N]

   1. builds the protocol automaton for a ring of N (default 3)
      philosophers under the Unit-Time discipline;
   2. checks Lemma 6.1 exhaustively;
   3. checks the five phase statements of Section 6.2 against every
      adversary and composes them into T -13->_{1/8} C;
   4. derives the expected-progress bound 63;
   5. cross-validates by simulation on a larger ring. *)

module Q = Proba.Rational
module LR = Lehmann_rabin

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3
  in
  Printf.printf "== Lehmann-Rabin dining philosophers, n = %d ==\n\n" n;
  let inst = LR.Proof.build ~n () in
  Printf.printf "reachable states: %d\n"
    (Mdp.Explore.num_states inst.LR.Proof.expl);

  (* Lemma 6.1: the shared variables are determined by the local
     states; no resource is held from both sides. *)
  (match LR.Invariant.check inst.LR.Proof.expl with
   | None -> print_endline "Lemma 6.1: holds on every reachable state"
   | Some s -> Format.printf "Lemma 6.1 VIOLATED at %a@." LR.State.pp s);

  (* The five arrows. *)
  print_newline ();
  List.iter
    (fun a ->
       Format.printf "%-5s %s -%s->_%s %s : min attained %s (%s)@."
         a.LR.Proof.label
         (Core.Pred.name a.LR.Proof.pre)
         (Q.to_string a.LR.Proof.time)
         (Q.to_string a.LR.Proof.prob)
         (Core.Pred.name a.LR.Proof.post)
         (Q.to_string a.LR.Proof.attained)
         (match a.LR.Proof.claim with
          | Some _ -> "holds" | None -> "FAILS"))
    (LR.Proof.arrows inst);

  (* Composition, with the full proof tree. *)
  (match LR.Proof.composed inst with
   | Error e -> Printf.printf "composition failed: %s\n" e
   | Ok claim ->
     Format.printf "@.%a@." Core.Claim.pp_derivation claim;
     Format.printf "@.machine-checked end to end: %b@."
       (Core.Claim.fully_verified claim));

  (* The expected-time recurrence of Section 6.2. *)
  Format.printf "@.%a@." Core.Expected.pp (LR.Proof.expected_bound ());
  Printf.printf "worst-case expected time measured on the MDP: %.3f\n"
    (LR.Proof.max_expected_time inst);

  (* Simulation on a larger ring, beyond exhaustive reach. *)
  let big = 2 * n + 2 in
  Printf.printf "\nsimulating a ring of %d under four schedulers:\n" big;
  let params = { LR.Automaton.n = big; g = 1; k = 1 } in
  let pa = LR.Automaton.make params in
  List.iter
    (fun (name, sched) ->
       let setup =
         { Sim.Monte_carlo.pa; scheduler = sched;
           duration = LR.Automaton.duration;
           start = LR.State.all_trying ~n:big ~g:1 ~k:1 }
       in
       let summary, missed =
         Sim.Monte_carlo.estimate_time setup
           ~target:(Core.Pred.mem LR.Regions.c) ~trials:1000 ~seed:7 ()
       in
       Printf.printf
         "  %-8s E[time to first critical] ~ %6.3f (%d missed; bound 63)\n"
         name
         (Proba.Stat.Summary.mean summary)
         missed)
    (LR.Schedulers.all pa)
