(* Fourth case study: Ben-Or's randomized consensus, over a genuine
   asynchronous message-passing substrate.

   Run with:  dune exec examples/consensus.exe

   Three processes, one crash fault allowed, binary values.  The
   adversary schedules every step, chooses which n-f messages each
   process acts on, and when (if ever) to crash a process.  The paper's
   kind of analysis, machine-checked:

   - agreement and validity hold on EVERY schedule and crash pattern
     (exhaustive invariant sweep);
   - from a unanimous start, Init -3->_1 Decided: one round suffices,
     surely, under every adversary;
   - from a mixed start, any single round can be blocked (min = 0 --
     the FLP impossibility casting its shadow), but no schedule
     survives the coins for two rounds: Init -6->_{1/8} Decided,
     attained exactly. *)

module Q = Proba.Rational
module BO = Ben_or

let show name inst rounds =
  Printf.printf "-- %s --\n" name;
  Printf.printf "reachable states (all schedules, crashes, coins): %d\n"
    (Mdp.Explore.num_states inst.BO.Proof.expl);
  (match BO.Proof.agreement_violation inst with
   | None -> print_endline "agreement: holds on every reachable state"
   | Some _ -> print_endline "agreement: VIOLATED");
  (match BO.Proof.validity_violation inst with
   | None -> print_endline "validity:  holds"
   | Some _ -> print_endline "validity:  VIOLATED");
  List.iter
    (fun r ->
       let curve = BO.Proof.decision_curve inst ~rounds:[ r ] in
       Printf.printf "min P[some process decides within %d round(s)] = %s\n"
         r
         (Q.to_string (List.hd curve)))
    rounds;
  print_newline ()

let () =
  print_endline "== Ben-Or randomized consensus, n = 3, f = 1 ==\n";
  let unanimous =
    BO.Proof.build ~n:3 ~f:1 ~cap:1 ~initial:[| false; false; false |] ()
  in
  show "unanimous start (0,0,0), one round modelled" unanimous [ 1 ];
  (match
     BO.Proof.decision_arrow unanimous ~rounds:1 ~prob:Q.one
   with
   | { BO.Proof.claim = Some c; _ } ->
     Format.printf "checked claim: %a@.@." Core.Claim.pp c
   | _ -> print_endline "unexpected: fast path failed\n");

  let mixed =
    BO.Proof.build ~n:3 ~f:1 ~cap:2 ~initial:[| false; false; true |] ()
  in
  show "mixed start (0,0,1), two rounds modelled" mixed [ 1; 2 ];
  (match
     BO.Proof.decision_arrow mixed ~rounds:2 ~prob:(Q.of_ints 1 8)
   with
   | { BO.Proof.claim = Some c; _ } ->
     Format.printf "checked claim: %a@." Core.Claim.pp c
   | _ -> print_endline "unexpected: two-round bound failed");
  print_endline
    "\nEvery single round is blockable by some schedule, yet 1/8 of the\n\
     coin outcomes defeat every schedule: randomization buys what\n\
     determinism cannot (FLP), with an explicit time bound attached --\n\
     the paper's thesis in one table."
