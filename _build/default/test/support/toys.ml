(* Shared toy automata for the core/mdp/sim test suites.  Each comes
   with hand-computed expected values documented at its definition. *)

module Q = Proba.Rational
module D = Proba.Dist

(* ------------------------------------------------------------------ *)
(* The Section 2 example: start state s0 with two nondeterministic
   steps, one reaching s1 with probability 1/2, the other with
   probability 1/3.  Min reach probability of {s1} is 1/3, max is 1/2. *)

module Choice = struct
  type state = S0 | S1 | S2
  type action = A | B

  let pp_state fmt s =
    Format.pp_print_string fmt
      (match s with S0 -> "s0" | S1 -> "s1" | S2 -> "s2")

  let pp_action fmt a =
    Format.pp_print_string fmt (match a with A -> "a" | B -> "b")

  let enabled = function
    | S0 ->
      [ { Core.Pa.action = A;
          dist = D.make [ (S1, Q.half); (S2, Q.half) ] };
        { Core.Pa.action = B;
          dist = D.make [ (S1, Q.of_ints 1 3); (S2, Q.of_ints 2 3) ] } ]
    | S1 | S2 -> []

  let pa = Core.Pa.make ~pp_state ~pp_action ~start:[ S0 ] ~enabled ()
  let s1 = Core.Pred.make "s1" (fun s -> s = S1)
end

(* ------------------------------------------------------------------ *)
(* Example 4.1: processes P and Q each flip one coin; the adversary
   chooses the scheduling.  The "dependency" adversary schedules P
   first and schedules Q only if P's coin came up heads. *)

module Race = struct
  type coin = Unflipped | Heads | Tails
  type state = { p : coin; q : coin }
  type action = Flip_p | Flip_q

  let pp_coin fmt c =
    Format.pp_print_string fmt
      (match c with Unflipped -> "?" | Heads -> "H" | Tails -> "T")

  let pp_state fmt s = Format.fprintf fmt "(%a,%a)" pp_coin s.p pp_coin s.q

  let pp_action fmt a =
    Format.pp_print_string fmt
      (match a with Flip_p -> "flip_p" | Flip_q -> "flip_q")

  let enabled s =
    let flip_p =
      if s.p = Unflipped then
        [ { Core.Pa.action = Flip_p;
            dist = D.coin { s with p = Heads } { s with p = Tails } } ]
      else []
    in
    let flip_q =
      if s.q = Unflipped then
        [ { Core.Pa.action = Flip_q;
            dist = D.coin { s with q = Heads } { s with q = Tails } } ]
      else []
    in
    flip_p @ flip_q

  let start = { p = Unflipped; q = Unflipped }
  let pa = Core.Pa.make ~pp_state ~pp_action ~start:[ start ] ~enabled ()

  let p_heads = Core.Pred.make "P=heads" (fun s -> s.p = Heads)
  let q_tails = Core.Pred.make "Q=tails" (fun s -> s.q = Tails)

  (* Schedules P; after P's flip, schedules Q only on heads. *)
  let dependency_adversary : (state, action) Core.Adversary.t =
   fun frag ->
    let s = Core.Exec.lstate frag in
    if s.p = Unflipped then
      Some
        { Core.Pa.action = Flip_p;
          dist = D.coin { s with p = Heads } { s with p = Tails } }
    else if s.p = Heads && s.q = Unflipped then
      Some
        { Core.Pa.action = Flip_q;
          dist = D.coin { s with q = Heads } { s with q = Tails } }
    else None

  (* Schedules both coins unconditionally, P first. *)
  let fair_adversary : (state, action) Core.Adversary.t =
   fun frag ->
    let s = Core.Exec.lstate frag in
    if s.p = Unflipped then
      Some
        { Core.Pa.action = Flip_p;
          dist = D.coin { s with p = Heads } { s with p = Tails } }
    else if s.q = Unflipped then
      Some
        { Core.Pa.action = Flip_q;
          dist = D.coin { s with q = Heads } { s with q = Tails } }
    else None
end

(* ------------------------------------------------------------------ *)
(* A clocked "walker": one process that must flip a coin at least once
   per time unit (granularity 1, budget 1 step per slot); heads reaches
   the goal.  Hand-computed values:
     min P[reach within t ticks] = 1 - 2^-t      (adversary delays)
     max P[reach within t ticks] = 1 - 2^-(t+1)  (flip now, then per tick)
     max expected ticks to goal  = 2
     min expected ticks to goal  = 1
   States: Done, or Walk with countdown c (slots until forced) and
   budget b (steps allowed before next tick). *)

module Walker = struct
  type state = Done | Walk of { c : int; b : int }
  type action = Tick | Flip

  let pp_state fmt = function
    | Done -> Format.pp_print_string fmt "done"
    | Walk { c; b } -> Format.fprintf fmt "walk(c=%d,b=%d)" c b

  let pp_action fmt a =
    Format.pp_print_string fmt (match a with Tick -> "tick" | Flip -> "flip")

  let is_tick = function Tick -> true | Flip -> false

  let enabled = function
    | Done ->
      [ { Core.Pa.action = Tick; dist = D.point Done } ]
    | Walk { c; b } ->
      let tick =
        if c > 0 then
          [ { Core.Pa.action = Tick;
              dist = D.point (Walk { c = c - 1; b = 1 }) } ]
        else []
      in
      let flip =
        if b > 0 then
          [ { Core.Pa.action = Flip;
              dist = D.coin Done (Walk { c = 1; b = b - 1 }) } ]
        else []
      in
      tick @ flip

  let start = Walk { c = 1; b = 1 }
  let pa = Core.Pa.make ~pp_state ~pp_action ~start:[ start ] ~enabled ()
  let done_ = Core.Pred.make "done" (fun s -> s = Done)
end

(* ------------------------------------------------------------------ *)
(* An untimed automaton where the adversary can avoid the target by
   self-looping: used by the qualitative tests. *)

module Escape = struct
  type state = Start | Goal | Trap
  type action = Go | Stay | Fall

  let enabled = function
    | Start ->
      [ { Core.Pa.action = Go; dist = D.point Goal };
        { Core.Pa.action = Stay; dist = D.point Start };
        { Core.Pa.action = Fall; dist = D.point Trap } ]
    | Goal | Trap -> []

  let pa = Core.Pa.make ~start:[ Start ] ~enabled ()
  let goal = Core.Pred.make "goal" (fun s -> s = Goal)
end

(* ------------------------------------------------------------------ *)
(* A forced coin cascade: from each level, the single enabled step
   flips toward the next level or resets; always reaches the top with
   probability 1 (qualitative), used to contrast with Escape. *)

module Cascade = struct
  type state = Level of int (* 0 .. 2; level 2 is the goal *)
  type action = Flip

  let enabled = function
    | Level 2 -> []
    | Level k ->
      [ { Core.Pa.action = Flip;
          dist = D.coin (Level (k + 1)) (Level 0) } ]

  let pa = Core.Pa.make ~start:[ Level 0 ] ~enabled ()
  let goal = Core.Pred.make "top" (fun s -> s = Level 2)
end
