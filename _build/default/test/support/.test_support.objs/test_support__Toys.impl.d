test/support/toys.ml: Core Format Proba
