lib/ben_or/automaton.mli: Core
