lib/ben_or/proof.ml: Array Automaton Bool Core List Mdp Printf Proba
