lib/ben_or/automaton.ml: Array Bool Core Format List Option Proba String
