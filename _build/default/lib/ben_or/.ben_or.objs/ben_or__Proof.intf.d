lib/ben_or/proof.mli: Automaton Core Mdp Proba
