(** Ben-Or's randomized binary consensus (1983): fourth case study, and
    the first with a genuine message-passing substrate.

    [n] processes, up to [f < n/2] crash faults, asynchronous
    communication.  Each round has two phases:

    - {e report}: broadcast [(r, v_i)]; collect [n - f] round-[r]
      reports (own included); if more than [n/2] of {e all} processes
      reported the same [w], propose [w], else propose [?];
    - {e propose}: broadcast the proposal; collect [n - f] round-[r]
      proposals; if at least [f + 1] of them are the same non-[?] [w],
      {e decide} [w]; else if any non-[?] [w] appears, adopt [v := w];
      else flip a fair coin into [v].  Proceed to round [r + 1].

    Modelling (substitutions recorded in DESIGN.md):
    - {e broadcast pool}: messages are never lost and never consumed --
      the state records, per (round, phase, sender), what was sent; a
      collecting process reads an {e adversary-chosen} subset of exactly
      [n - f] available messages (its own included), which is exactly
      asynchronous "act on the first [n - f] received";
    - {e crashes}: an adversary action [Crash i] (available while fewer
      than [f] processes are down) halts a process between its atomic
      broadcast steps;
    - {e round cap}: rounds beyond [cap] park in an absorbing [Capped]
      state, keeping the reachable space finite.  Cutting executions
      short can only {e lower} reachability probabilities, so
      time-bound claims checked on the capped system are sound for the
      real one; the agreement invariant is verified over all capped
      executions (i.e. all behaviors of the first [cap] rounds);
    - {e timing}: the usual digital-clock discipline -- each process
      with an enabled protocol step must be scheduled within one time
      unit, so a round completes within 3 units (report, collect,
      collect).  [Crash] carries no deadline. *)

type bit = bool

type proposal = Value of bit | Null

type stage =
  | To_report  (** must broadcast this round's report *)
  | Sent_report  (** waiting to collect [n - f] reports *)
  | Sent_proposal  (** waiting to collect [n - f] proposals *)
  | Decided of bit
  | Capped  (** ran past the round cap (absorbing) *)
  | Crashed

type proc = {
  v : bit;  (** current estimate (dead storage while collecting) *)
  round : int;  (** 1-based *)
  stage : stage;
  c : int;
  b : int;
}

type state = {
  procs : proc array;
  (* reports.(r-1).(i) / proposals.(r-1).(i): what process i broadcast
     in round r, if anything. *)
  reports : bit option array array;
  proposals : proposal option array array;
}

type action =
  | Tick
  | Crash of int
  | Report of int
  | Collect_reports of int * int list  (** the senders read *)
  | Collect_proposals of int * int list

type params = { n : int; f : int; cap : int; g : int; k : int }

val is_tick : action -> bool
val duration : action -> int

(** Some process has decided (on any value). *)
val some_decided : state -> bool

(** Both decided values agree (vacuously true without two deciders). *)
val agreement : state -> bool

(** No process has decided [value] (for validity checks). *)
val never_decides : bit -> state -> bool

(** All processes are [Decided], [Capped] or [Crashed]. *)
val quiescent : state -> bool

(** [start params values] with the given initial estimates.
    Raises [Invalid_argument] if [values] has length other than [n]. *)
val start : params -> bit array -> state

(** [make ?initial params] builds the automaton starting from the
    given estimates (all-[false] by default).
    Raises [Invalid_argument] unless [0 <= f], [n > 2 f], [cap >= 1],
    [g >= 1], [k >= 1]. *)
val make : ?initial:bit array -> params -> (state, action) Core.Pa.t
