module D = Proba.Dist

type bit = bool

type proposal = Value of bit | Null

type stage =
  | To_report
  | Sent_report
  | Sent_proposal
  | Decided of bit
  | Capped
  | Crashed

type proc = {
  v : bit;
  round : int;
  stage : stage;
  c : int;
  b : int;
}

type state = {
  procs : proc array;
  reports : bit option array array;
  proposals : proposal option array array;
}

type action =
  | Tick
  | Crash of int
  | Report of int
  | Collect_reports of int * int list
  | Collect_proposals of int * int list

type params = { n : int; f : int; cap : int; g : int; k : int }

let is_tick = function Tick -> true | _ -> false
let duration a = if is_tick a then 1 else 0

let some_decided s =
  Array.exists
    (fun p -> match p.stage with Decided _ -> true | _ -> false)
    s.procs

let agreement s =
  let decided =
    Array.to_list s.procs
    |> List.filter_map (fun p ->
        match p.stage with Decided w -> Some w | _ -> None)
  in
  match decided with
  | [] | [ _ ] -> true
  | w :: rest -> List.for_all (Bool.equal w) rest

let never_decides value s =
  Array.for_all
    (fun p -> match p.stage with Decided w -> w <> value | _ -> true)
    s.procs

let quiescent s =
  Array.for_all
    (fun p ->
       match p.stage with
       | Decided _ | Capped | Crashed -> true
       | To_report | Sent_report | Sent_proposal -> false)
    s.procs

let start params values =
  if Array.length values <> params.n then
    invalid_arg "Ben_or.start: wrong number of initial values";
  { procs =
      Array.map
        (fun v -> { v; round = 1; stage = To_report; c = params.g;
                    b = params.k })
        values;
    reports = Array.make_matrix params.cap params.n None;
    proposals = Array.make_matrix params.cap params.n None }

(* ----------------------------------------------------------------- *)

let alive_stage = function
  | To_report | Sent_report | Sent_proposal -> true
  | Decided _ | Capped | Crashed -> false

let senders_of row =
  let acc = ref [] in
  Array.iteri (fun j m -> if m <> None then acc := j :: !acc) row;
  List.rev !acc

(* Ready = has an enabled protocol step right now. *)
let ready params s i =
  let p = s.procs.(i) in
  match p.stage with
  | To_report -> true
  | Sent_report ->
    List.length (senders_of s.reports.(p.round - 1)) >= params.n - params.f
  | Sent_proposal ->
    List.length (senders_of s.proposals.(p.round - 1)) >= params.n - params.f
  | Decided _ | Capped | Crashed -> false

let set_proc s i p =
  let procs = Array.copy s.procs in
  procs.(i) <- p;
  { s with procs }

(* A process's own step: fresh deadline, one budget unit consumed; the
   clocks of non-ready configurations are canonical so that equivalent
   states merge. *)
let reclock params s i p =
  let s' = set_proc s i { p with c = params.g; b = p.b - 1 } in
  if ready params s' i then s'
  else set_proc s i { p with c = params.g; b = params.k }

let canonical params p stage =
  { v = false; round = p.round; stage; c = params.g; b = params.k }

let tick_step params s =
  let blocked = ref false in
  Array.iteri
    (fun i p -> if ready params s i && p.c = 0 then blocked := true)
    s.procs;
  if !blocked then []
  else begin
    let procs =
      Array.mapi
        (fun i p ->
           if ready params s i then { p with c = p.c - 1; b = params.k }
           else p)
        s.procs
    in
    [ { Core.Pa.action = Tick; dist = D.point { s with procs } } ]
  end

let crash_steps params s =
  let crashed =
    Array.fold_left
      (fun acc p -> if p.stage = Crashed then acc + 1 else acc)
      0 s.procs
  in
  if crashed >= params.f then []
  else
    List.concat
      (List.mapi
         (fun i p ->
            if alive_stage p.stage then
              [ { Core.Pa.action = Crash i;
                  dist = D.point (set_proc s i (canonical params p Crashed)) } ]
            else [])
         (Array.to_list s.procs))

(* k-subsets of a list. *)
let rec choose k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
      List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

(* Collections: adversary-chosen subsets of exactly [n - f] available
   messages, always including the collector's own. *)
let collections params row i =
  let others = List.filter (( <> ) i) (senders_of row) in
  List.map (fun c -> i :: c) (choose (params.n - params.f - 1) others)

let majority_proposal params collected =
  (* More than n/2 identical reports among those read. *)
  let count w = List.length (List.filter (Bool.equal w) collected) in
  if 2 * count true > params.n then Value true
  else if 2 * count false > params.n then Value false
  else Null

let set_report s r i w =
  let reports = Array.map Array.copy s.reports in
  reports.(r - 1).(i) <- Some w;
  { s with reports }

let set_proposal s r i x =
  let proposals = Array.map Array.copy s.proposals in
  proposals.(r - 1).(i) <- Some x;
  { s with proposals }

let proc_steps params s =
  let step_for i p =
    if (not (alive_stage p.stage)) || p.b <= 0 then []
    else begin
      match p.stage with
      | To_report ->
        (* After broadcasting, the estimate is dead storage until the
           next round assigns it: canonicalize it away. *)
        let s' = set_report s p.round i p.v in
        let s' =
          reclock params s' i { p with v = false; stage = Sent_report }
        in
        [ { Core.Pa.action = Report i; dist = D.point s' } ]
      | Sent_report ->
        let row = s.reports.(p.round - 1) in
        if List.length (senders_of row) < params.n - params.f then []
        else
          List.map
            (fun subset ->
               let collected =
                 List.map (fun j -> Option.get row.(j)) subset
               in
               let x = majority_proposal params collected in
               let s' = set_proposal s p.round i x in
               let s' =
                 reclock params s' i
                   { p with v = false; stage = Sent_proposal }
               in
               { Core.Pa.action = Collect_reports (i, subset);
                 dist = D.point s' })
            (collections params row i)
      | Sent_proposal ->
        let row = s.proposals.(p.round - 1) in
        if List.length (senders_of row) < params.n - params.f then []
        else
          List.map
            (fun subset ->
               let collected =
                 List.map (fun j -> Option.get row.(j)) subset
               in
               let count w =
                 List.length
                   (List.filter (fun x -> x = Value w) collected)
               in
               let finish proc' =
                 if alive_stage proc'.stage then reclock params s i proc'
                 else set_proc s i proc'
               in
               let next_round v =
                 if p.round >= params.cap then canonical params p Capped
                 else
                   { p with v; round = p.round + 1; stage = To_report }
               in
               let dist =
                 if count true >= params.f + 1 then
                   D.point (finish (canonical params p (Decided true)))
                 else if count false >= params.f + 1 then
                   D.point (finish (canonical params p (Decided false)))
                 else if count true >= 1 then
                   D.point (finish (next_round true))
                 else if count false >= 1 then
                   D.point (finish (next_round false))
                 else
                   (* All proposals read were ?: flip the coin. *)
                   D.coin
                     (finish (next_round true))
                     (finish (next_round false))
               in
               { Core.Pa.action = Collect_proposals (i, subset); dist })
            (collections params row i)
      | Decided _ | Capped | Crashed -> []
    end
  in
  List.concat (List.mapi step_for (Array.to_list s.procs))

let enabled params s =
  tick_step params s @ crash_steps params s @ proc_steps params s

let pp_stage fmt = function
  | To_report -> Format.pp_print_string fmt "R!"
  | Sent_report -> Format.pp_print_string fmt "R?"
  | Sent_proposal -> Format.pp_print_string fmt "P?"
  | Decided w -> Format.fprintf fmt "D%d" (Bool.to_int w)
  | Capped -> Format.pp_print_string fmt "cap"
  | Crashed -> Format.pp_print_string fmt "x"

let pp_state fmt s =
  Array.iteri
    (fun i p ->
       if i > 0 then Format.pp_print_char fmt ' ';
       Format.fprintf fmt "%d:%a@r%d" (Bool.to_int p.v) pp_stage p.stage
         p.round)
    s.procs

let pp_action fmt = function
  | Tick -> Format.pp_print_string fmt "tick"
  | Crash i -> Format.fprintf fmt "crash_%d" i
  | Report i -> Format.fprintf fmt "report_%d" i
  | Collect_reports (i, from) ->
    Format.fprintf fmt "collectR_%d{%s}" i
      (String.concat "," (List.map string_of_int from))
  | Collect_proposals (i, from) ->
    Format.fprintf fmt "collectP_%d{%s}" i
      (String.concat "," (List.map string_of_int from))

let make ?initial params =
  if params.f < 0 || params.n <= 2 * params.f || params.cap < 1
     || params.g < 1 || params.k < 1 then
    invalid_arg "Ben_or: need n > 2f >= 0, cap >= 1, g >= 1, k >= 1";
  let values =
    match initial with
    | Some v -> v
    | None -> Array.make params.n false
  in
  Core.Pa.make ~pp_state ~pp_action ~start:[ start params values ]
    ~enabled:(enabled params) ()
