module D = Proba.Dist

type state = {
  counter : int;
  clocks : (int * int) array;
}

type action = Tick | Flip of int

type params = { n : int; bound : int; g : int; k : int }

let is_tick = function Tick -> true | Flip _ -> false
let duration a = if is_tick a then 1 else 0

let decided params s = abs s.counter >= params.bound

let at_least params d =
  ignore params;
  Core.Pred.make (Printf.sprintf "|counter| >= %d" d) (fun s ->
      abs s.counter >= d)

let start params = { counter = 0; clocks = Array.make params.n (params.g, params.k) }

let tick_step params s =
  if decided params s then
    (* Decided states absorb: time flows, nothing else happens. *)
    [ { Core.Pa.action = Tick; dist = D.point s } ]
  else if Array.exists (fun (c, _) -> c = 0) s.clocks then []
  else begin
    let clocks = Array.map (fun (c, _) -> (c - 1, params.k)) s.clocks in
    [ { Core.Pa.action = Tick; dist = D.point { s with clocks } } ]
  end

let flip_steps params s =
  if decided params s then []
  else
    List.concat
      (List.mapi
         (fun i (_, b) ->
            if b <= 0 then []
            else begin
              let moved delta =
                let counter = s.counter + delta in
                if abs counter >= params.bound then
                  (* Decided: canonicalize the (now irrelevant) clocks
                     so all deciding paths meet in one state per side. *)
                  { counter;
                    clocks = Array.make (Array.length s.clocks)
                        (params.g, params.k) }
                else begin
                  let clocks = Array.copy s.clocks in
                  clocks.(i) <- (params.g, b - 1);
                  { counter; clocks }
                end
              in
              [ { Core.Pa.action = Flip i;
                  dist = D.coin (moved 1) (moved (-1)) } ]
            end)
         (Array.to_list s.clocks))

let enabled params s = tick_step params s @ flip_steps params s

let make params =
  if params.n < 1 || params.bound < 1 || params.g < 1 || params.k < 1 then
    invalid_arg "Shared_coin: parameters must be positive";
  let pp_state fmt s =
    Format.fprintf fmt "c=%+d" s.counter;
    Array.iter (fun (c, b) -> Format.fprintf fmt " (%d,%d)" c b) s.clocks
  in
  let pp_action fmt = function
    | Tick -> Format.pp_print_string fmt "tick"
    | Flip i -> Format.fprintf fmt "flip_%d" i
  in
  Core.Pa.make ~pp_state ~pp_action ~start:[ start params ]
    ~enabled:(enabled params) ()
