(** A shared-coin protocol: third case study for the proof method.

    [n] processes repeatedly flip fair coins and add the outcomes (+1 or
    -1) to a shared counter; the protocol decides when the counter hits
    [+bound] or [-bound].  This is the random-walk core of the shared
    coins used by randomized consensus algorithms in the
    Aspnes-Herlihy tradition: the adversary schedules the increments
    but cannot bias them, so the counter performs a fair random walk
    whose exit time from [(-bound, bound)] is classical --
    [bound^2] flips in expectation, independent of the schedule.

    Timing follows the digital-clock discipline of the other case
    studies: every undecided process must flip within one time unit
    ([g] slots), and may flip at most [k] times per slot.  Hence the
    flip {e rate} is between [n] and [n*k*g] per unit, and the worst-case
    expected decision time is [bound^2 / n] units (the adversary can
    only slow the walk down, not steer it) -- a sharp, hand-checkable
    law that the exact engine reproduces.

    Interesting methodologically: the paper's composition method
    applies (a ladder over [|counter|]) and yields a {e valid} bound
    [decided within bound time units with probability 2^-bound] -- but
    exponentially far from the truth, illustrating when one should
    switch from composed phase bounds to direct analysis. *)

type state = {
  counter : int;  (** current sum, clamped to [[-bound, bound]] *)
  clocks : (int * int) array;  (** per process: (deadline c, budget b) *)
}

type action = Tick | Flip of int

type params = { n : int; bound : int; g : int; k : int }

val is_tick : action -> bool
val duration : action -> int

(** Decided: the counter reached an absorbing barrier. *)
val decided : params -> state -> bool

(** [at_least params d]: the named set [|counter| >= d] (the rungs of
    the composition ladder). *)
val at_least : params -> int -> state Core.Pred.t

val start : params -> state

(** Raises [Invalid_argument] unless [n >= 1], [bound >= 1], [g >= 1],
    [k >= 1]. *)
val make : params -> (state, action) Core.Pa.t
