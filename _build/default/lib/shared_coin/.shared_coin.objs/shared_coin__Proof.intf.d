lib/shared_coin/proof.mli: Automaton Core Mdp Proba
