lib/shared_coin/automaton.ml: Array Core Format List Printf Proba
