lib/shared_coin/automaton.mli: Core
