lib/shared_coin/proof.ml: Array Automaton Core List Mdp Printf Proba Result
