module Q = Proba.Rational
module D = Proba.Dist

type ('s, 'a) t = ('s, 'a) Exec.t -> ('s, 'a) Pa.step D.t option

let of_deterministic adv frag =
  Option.map D.point (adv frag)

let mix p a1 a2 frag =
  if not (Q.is_probability p) then
    raise (D.Not_a_distribution (Q.to_string p));
  match a1 frag, a2 frag with
  | None, None -> None
  | Some d, None | None, Some d -> Some d
  | Some d1, Some d2 ->
    if Q.is_zero p then Some d2
    else if Q.equal p Q.one then Some d1
    else begin
      let weight w d = List.map (fun (x, q) -> (x, Q.mul w q)) (D.support d) in
      Some
        (D.make ~equal:(fun a b -> a == b)
           (weight p d1 @ weight (Q.sub Q.one p) d2))
    end

let uniform_enabled m frag =
  match Pa.enabled m (Exec.lstate frag) with
  | [] -> None
  | steps -> Some (D.uniform steps)

let unfold _m adv s ~max_depth =
  let rec build frag depth : ('s, 'a) Exec_automaton.node =
    if depth >= max_depth then
      { Exec_automaton.frag; kind = Exec_automaton.Truncated }
    else begin
      match adv frag with
      | None -> { Exec_automaton.frag; kind = Exec_automaton.Terminal }
      | Some choice ->
        let children =
          List.concat_map
            (fun (step, q) ->
               List.map
                 (fun (target, w) ->
                    ( Q.mul q w,
                      build (Exec.snoc frag step.Pa.action target) (depth + 1)
                    ))
                 (D.support step.Pa.dist))
            (D.support choice)
        in
        let label =
          match D.support choice with
          | (step, _) :: _ -> step.Pa.action
          | [] -> assert false
        in
        { Exec_automaton.frag;
          kind = Exec_automaton.Step (label, children) }
    end
  in
  build (Exec.initial s) 0
