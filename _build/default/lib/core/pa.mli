(** Probabilistic automata (Definition 2.1 of the paper).

    A probabilistic automaton [M] consists of states, start states, an
    action signature partitioned into external and internal actions, and
    a transition relation [steps(M)] associating to a state a set of
    enabled steps, each labelled by an action and leading into a finite
    probability space over states.

    The state space may be infinite (it is given intensionally by the
    [enabled] function); exploration and checking tools enumerate only
    the reachable fragment they need. *)

(** One element of [steps(M)] from a given state: an action together with
    the probability space over target states. *)
type ('s, 'a) step = { action : 'a; dist : 's Proba.Dist.t }

type ('s, 'a) t

(** [make ~start ~enabled ...] builds an automaton.

    [equal_state]/[hash_state] default to structural equality/hashing and
    must agree with each other; they are used by exploration tools.
    [is_external] defaults to "every action is external".
    Raises [Invalid_argument] if [start] is empty. *)
val make :
  ?equal_state:('s -> 's -> bool) ->
  ?hash_state:('s -> int) ->
  ?equal_action:('a -> 'a -> bool) ->
  ?is_external:('a -> bool) ->
  ?pp_state:(Format.formatter -> 's -> unit) ->
  ?pp_action:(Format.formatter -> 'a -> unit) ->
  start:'s list ->
  enabled:('s -> ('s, 'a) step list) ->
  unit ->
  ('s, 'a) t

(** {1 Accessors} *)

val start : ('s, 'a) t -> 's list
val enabled : ('s, 'a) t -> 's -> ('s, 'a) step list
val equal_state : ('s, 'a) t -> 's -> 's -> bool
val hash_state : ('s, 'a) t -> 's -> int
val equal_action : ('s, 'a) t -> 'a -> 'a -> bool
val is_external : ('s, 'a) t -> 'a -> bool
val pp_state : ('s, 'a) t -> Format.formatter -> 's -> unit
val pp_action : ('s, 'a) t -> Format.formatter -> 'a -> unit

(** {1 Derived notions} *)

(** A state with no enabled steps. *)
val is_terminal : ('s, 'a) t -> 's -> bool

(** At most one step enabled (the per-state half of "fully
    probabilistic", Definition 2.1). *)
val is_deterministic_at : ('s, 'a) t -> 's -> bool

(** [steps_with_action m s a] filters the enabled steps by action. *)
val steps_with_action : ('s, 'a) t -> 's -> 'a -> ('s, 'a) step list

(** {1 Transformations} *)

(** [map_state ~to_ ~of_ m] relabels states along a bijection
    ([to_ (of_ s) = s] is the caller's obligation). *)
val map_state :
  to_:('s -> 't) -> of_:('t -> 's) ->
  ?pp_state:(Format.formatter -> 't -> unit) ->
  ('s, 'a) t -> ('t, 'a) t

(** [restrict m keep] removes steps leading outside [keep] is {e not}
    provided -- instead, [restrict] removes enabled steps whose action
    fails the given filter.  Useful to study sub-schedulers. *)
val restrict : ('s, 'a) t -> ('s -> 'a -> bool) -> ('s, 'a) t
