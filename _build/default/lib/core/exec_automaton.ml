module Q = Proba.Rational

type ('s, 'a) node = {
  frag : ('s, 'a) Exec.t;
  kind : ('s, 'a) kind;
}

and ('s, 'a) kind =
  | Terminal
  | Truncated
  | Step of 'a * (Q.t * ('s, 'a) node) list

let unfold_from _m adv start_frag ~max_depth =
  let rec build frag depth =
    if depth >= max_depth then { frag; kind = Truncated }
    else begin
      match adv frag with
      | None -> { frag; kind = Terminal }
      | Some step ->
        let children =
          List.map
            (fun (s, w) ->
               (w, build (Exec.snoc frag step.Pa.action s) (depth + 1)))
            (Proba.Dist.support step.Pa.dist)
        in
        { frag; kind = Step (step.Pa.action, children) }
    end
  in
  build start_frag 0

let unfold m adv s ~max_depth = unfold_from m adv (Exec.initial s) ~max_depth

let rec size node =
  match node.kind with
  | Terminal | Truncated -> 1
  | Step (_, children) ->
    List.fold_left (fun acc (_, child) -> acc + size child) 1 children

let maximal_executions node =
  let rec go mass node acc =
    match node.kind with
    | Terminal -> (node.frag, mass, true) :: acc
    | Truncated -> (node.frag, mass, false) :: acc
    | Step (_, children) ->
      List.fold_left
        (fun acc (w, child) -> go (Q.mul mass w) child acc)
        acc children
  in
  List.rev (go Q.one node [])

let total_mass node =
  Q.sum (List.map (fun (_, m, _) -> m) (maximal_executions node))

(* Exact interval evaluation.  A subtree whose root fragment is already
   decided contributes its whole mass; otherwise we recurse.  Truncated
   undecided leaves contribute [0, mass]. *)
let prob_interval event node =
  let rec go node =
    match node.kind with
    | Terminal ->
      (match Event.decide event ~maximal:true node.frag with
       | Event.Accept -> (Q.one, Q.one)
       | Event.Reject -> (Q.zero, Q.zero)
       | Event.Undecided ->
         failwith
           (Printf.sprintf
              "Event %S returned Undecided on a maximal execution"
              (Event.name event)))
    | Truncated ->
      (match Event.decide event ~maximal:false node.frag with
       | Event.Accept -> (Q.one, Q.one)
       | Event.Reject -> (Q.zero, Q.zero)
       | Event.Undecided -> (Q.zero, Q.one))
    | Step (_, children) ->
      (match Event.decide event ~maximal:false node.frag with
       | Event.Accept -> (Q.one, Q.one)
       | Event.Reject -> (Q.zero, Q.zero)
       | Event.Undecided ->
         List.fold_left
           (fun (lo, hi) (w, child) ->
              let clo, chi = go child in
              (Q.add lo (Q.mul w clo), Q.add hi (Q.mul w chi)))
           (Q.zero, Q.zero) children)
  in
  go node

let prob_exact event node =
  let lo, hi = prob_interval event node in
  if Q.equal lo hi then lo
  else
    failwith
      (Printf.sprintf
         "prob_exact: truncation uncertainty for %S: [%s, %s]"
         (Event.name event) (Q.to_string lo) (Q.to_string hi))
