(** Execution automata (Definitions 2.3-2.4) and their probability
    measure.

    Running a probabilistic automaton [M] under an adversary [A] from a
    starting fragment yields a fully probabilistic automaton [H(M,A,s)]
    whose states are finite execution fragments of [M]; since every state
    of [H] is reachable and each non-final state enables exactly one
    step, [H] is a tree.  This module materializes that tree up to a
    depth bound and evaluates event probabilities on it.

    The probability measure [P_H] is the unique extension of the measure
    on rectangles [R_alpha] (the set of maximal executions extending
    [alpha]), where [P_H(R_alpha)] is the product of the step
    probabilities along [alpha].  On the materialized tree, the measure
    of a set of maximal executions recognized by a monotone
    {!Event.t} is computed exactly, with truncated branches contributing
    an interval of uncertainty. *)

type ('s, 'a) node = {
  frag : ('s, 'a) Exec.t;  (** the [H]-state: the history fragment *)
  kind : ('s, 'a) kind;
}

and ('s, 'a) kind =
  | Terminal
      (** genuinely maximal: the adversary returned nothing (or no step
          was enabled) *)
  | Truncated  (** artificial leaf due to the unfolding depth bound *)
  | Step of 'a * (Proba.Rational.t * ('s, 'a) node) list
      (** the unique step chosen by the adversary, with its outcomes *)

(** [unfold m adv start ~max_depth] materializes [H(M, adv, start)]
    down to fragments of length [max_depth]. *)
val unfold :
  ('s, 'a) Pa.t -> ('s, 'a) Adversary.t -> 's -> max_depth:int ->
  ('s, 'a) node

(** [unfold_from m adv frag ~max_depth] starts from an arbitrary
    fragment, as in [H(M, A, alpha)]. *)
val unfold_from :
  ('s, 'a) Pa.t -> ('s, 'a) Adversary.t -> ('s, 'a) Exec.t ->
  max_depth:int -> ('s, 'a) node

(** Number of nodes in the tree. *)
val size : ('s, 'a) node -> int

(** [maximal_executions t] lists the leaf fragments with their rectangle
    probabilities and whether they are genuine ([Terminal]) leaves. *)
val maximal_executions :
  ('s, 'a) node -> (('s, 'a) Exec.t * Proba.Rational.t * bool) list

(** [total_mass t] sums the rectangle probabilities of all leaves
    (always 1; exposed for testing). *)
val total_mass : ('s, 'a) node -> Proba.Rational.t

(** [prob_interval event t] returns exact lower and upper bounds for
    [P_H(event)].  The two coincide when every branch is decided before
    truncation. *)
val prob_interval :
  ('s, 'a) Event.t -> ('s, 'a) node -> Proba.Rational.t * Proba.Rational.t

(** [prob_exact event t] returns the exact probability, or raises
    [Failure] if the truncation leaves uncertainty. *)
val prob_exact : ('s, 'a) Event.t -> ('s, 'a) node -> Proba.Rational.t
