type 's t = { name : string; mem : 's -> bool }

let make name mem = { name; mem }
let name p = p.name
let mem p s = p.mem s

let union p q =
  { name = Printf.sprintf "%s ∪ %s" p.name q.name;
    mem = (fun s -> p.mem s || q.mem s) }

let inter p q =
  { name = Printf.sprintf "%s ∩ %s" p.name q.name;
    mem = (fun s -> p.mem s && q.mem s) }

let complement p =
  { name = Printf.sprintf "¬%s" p.name; mem = (fun s -> not (p.mem s)) }

let union_all = function
  | [] -> invalid_arg "Pred.union_all: empty list"
  | p :: ps -> List.fold_left union p ps

let same p q = String.equal p.name q.name

let pp fmt p = Format.pp_print_string fmt p.name
