let product ~sync m1 m2 =
  let enabled (s1, s2) =
    let steps1 = Pa.enabled m1 s1 in
    let steps2 = Pa.enabled m2 s2 in
    let solo1 =
      List.filter_map
        (fun step ->
           if sync step.Pa.action then None
           else
             Some
               { Pa.action = step.Pa.action;
                 dist = Proba.Dist.map (fun t1 -> (t1, s2)) step.Pa.dist })
        steps1
    in
    let solo2 =
      List.filter_map
        (fun step ->
           if sync step.Pa.action then None
           else
             Some
               { Pa.action = step.Pa.action;
                 dist = Proba.Dist.map (fun t2 -> (s1, t2)) step.Pa.dist })
        steps2
    in
    let joint =
      List.concat_map
        (fun step1 ->
           if not (sync step1.Pa.action) then []
           else
             List.filter_map
               (fun step2 ->
                  if Pa.equal_action m1 step1.Pa.action step2.Pa.action then
                    Some
                      { Pa.action = step1.Pa.action;
                        dist = Proba.Dist.product step1.Pa.dist step2.Pa.dist }
                  else None)
               steps2)
        steps1
    in
    joint @ solo1 @ solo2
  in
  let start =
    List.concat_map
      (fun s1 -> List.map (fun s2 -> (s1, s2)) (Pa.start m2))
      (Pa.start m1)
  in
  Pa.make
    ~equal_state:(fun (a1, a2) (b1, b2) ->
        Pa.equal_state m1 a1 b1 && Pa.equal_state m2 a2 b2)
    ~hash_state:(fun (a1, a2) ->
        (Pa.hash_state m1 a1 * 65599) lxor Pa.hash_state m2 a2)
    ~equal_action:(Pa.equal_action m1)
    ~is_external:(Pa.is_external m1)
    ~pp_state:(fun fmt (a1, a2) ->
        Format.fprintf fmt "(%a, %a)" (Pa.pp_state m1) a1 (Pa.pp_state m2) a2)
    ~pp_action:(Pa.pp_action m1)
    ~start ~enabled ()

let product_list ~sync ?pp_state ms =
  match ms with
  | [] -> invalid_arg "Compose.product_list: empty list"
  | first :: rest ->
    let lift m = Pa.map_state ~to_:(fun s -> [ s ]) ~of_:(function
        | [ s ] -> s
        | _ -> assert false) m
    in
    let join acc m =
      let pair = product ~sync acc m in
      Pa.map_state
        ~to_:(fun (ss, s) -> ss @ [ s ])
        ~of_:(fun ss ->
            match List.rev ss with
            | last :: rev_init -> (List.rev rev_init, last)
            | [] -> invalid_arg "Compose.product_list: empty state")
        pair
    in
    let result = List.fold_left join (lift first) rest in
    match pp_state with
    | None -> result
    | Some pp ->
      Pa.map_state ~to_:(fun s -> s) ~of_:(fun s -> s) ~pp_state:pp result
