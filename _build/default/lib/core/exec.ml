(* Fragments are built by repeated [snoc] during unfolding/simulation, so
   steps are stored in reverse; [steps] materializes the forward order. *)

type ('s, 'a) t = {
  first : 's;
  rev_steps : ('a * 's) list;
  length : int;
}

let initial s = { first = s; rev_steps = []; length = 0 }

let snoc frag a s =
  { frag with rev_steps = (a, s) :: frag.rev_steps;
              length = frag.length + 1 }

let fstate frag = frag.first

let lstate frag =
  match frag.rev_steps with
  | [] -> frag.first
  | (_, s) :: _ -> s

let length frag = frag.length
let steps frag = List.rev frag.rev_steps
let states frag = frag.first :: List.rev_map snd frag.rev_steps
let actions frag = List.rev_map fst frag.rev_steps

let concat ?(equal = ( = )) a1 a2 =
  if not (equal (lstate a1) (fstate a2)) then
    invalid_arg "Exec.concat: fragments do not meet";
  { first = a1.first;
    rev_steps = a2.rev_steps @ a1.rev_steps;
    length = a1.length + a2.length }

let is_prefix ?(equal_state = ( = )) ?(equal_action = ( = )) a1 a2 =
  equal_state a1.first a2.first
  && a1.length <= a2.length
  && begin
    let rec go s1 s2 =
      match s1, s2 with
      | [], _ -> true
      | _ :: _, [] -> false
      | (x1, t1) :: r1, (x2, t2) :: r2 ->
        equal_action x1 x2 && equal_state t1 t2 && go r1 r2
    in
    go (steps a1) (steps a2)
  end

let drop_prefix ?(equal_state = ( = )) ?(equal_action = ( = )) p a =
  if not (is_prefix ~equal_state ~equal_action p a) then None
  else begin
    let rest =
      let rec drop n l = if n = 0 then l else
          match l with [] -> [] | _ :: tl -> drop (n - 1) tl
      in
      drop p.length (steps a)
    in
    let suffix =
      List.fold_left (fun acc (x, s) -> snoc acc x s) (initial (lstate p)) rest
    in
    Some suffix
  end

let total_time ~duration frag =
  List.fold_left (fun acc (a, _) -> acc + duration a) 0 frag.rev_steps

let find_first frag pred =
  let rec go i = function
    | [] -> None
    | (a, s) :: rest -> if pred a s then Some i else go (i + 1) rest
  in
  go 0 (steps frag)

let fold f init frag =
  List.fold_left (fun acc (a, s) -> f acc a s) init (steps frag)

let exists frag pred = List.exists (fun (a, s) -> pred a s) frag.rev_steps

let pp ~pp_state ~pp_action fmt frag =
  Format.fprintf fmt "@[<hov 2>%a" pp_state frag.first;
  List.iter
    (fun (a, s) ->
       Format.fprintf fmt "@ --%a-->@ %a" pp_action a pp_state s)
    (steps frag);
  Format.fprintf fmt "@]"
