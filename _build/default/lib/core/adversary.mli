(** Adversaries (Definition 2.2) and adversary schemas (Definition 2.6).

    An adversary for [M] is a function taking a finite execution fragment
    and returning either nothing or one of the steps of [M] enabled at
    its last state.  Adversaries here are deterministic, as in the paper
    (which ignores randomized adversaries).

    An adversary {e schema} is a set of adversaries.  Two representations
    coexist in this library:
    - for {e exhaustive} verification, a schema is encoded structurally
      in the automaton (e.g. the digital-clock construction makes every
      scheduler of the clocked automaton a Unit-Time adversary), and the
      MDP engine quantifies over all of them;
    - for {e simulation}, a schema is sampled through concrete adversary
      values built with the combinators below.

    Execution closure (Definition 3.3) is a property of schemas used by
    the composability theorem; {!Claim.compose} records it as a premise
    of the derivation. *)

type ('s, 'a) t = ('s, 'a) Exec.t -> ('s, 'a) Pa.step option

(** [memoryless f] ignores history and chooses from the last state. *)
val memoryless : ('s -> ('s, 'a) Pa.step option) -> ('s, 'a) t

(** [first_enabled m] always picks the first enabled step (a simple
    deterministic scheduler). *)
val first_enabled : ('s, 'a) Pa.t -> ('s, 'a) t

(** [halt] always stops. *)
val halt : ('s, 'a) t

(** [by_priority m rank] picks, among enabled steps, one minimizing
    [rank state action]; stops when nothing is enabled. *)
val by_priority : ('s, 'a) Pa.t -> ('s -> 'a -> int) -> ('s, 'a) t

(** [cutoff n adv] behaves like [adv] for the first [n] steps of history
    and then halts.  Useful to make unfoldings finite. *)
val cutoff : int -> ('s, 'a) t -> ('s, 'a) t

(** [shift prefix adv] is the adversary [A'] whose existence execution
    closure demands: [A' alpha' = adv (prefix ^ alpha')].  Together with
    {!Exec.concat} this is the paper's [A'(alpha') = A(alpha alpha')]. *)
val shift :
  ?equal:('s -> 's -> bool) -> ('s, 'a) Exec.t -> ('s, 'a) t -> ('s, 'a) t

(** [well_formed m adv frag] checks the adversary obligation: the
    returned step must be enabled at [lstate frag] (compared up to action
    equality and distribution support inclusion). *)
val well_formed : ('s, 'a) Pa.t -> ('s, 'a) t -> ('s, 'a) Exec.t -> bool
