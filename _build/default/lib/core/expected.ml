module Q = Proba.Rational

exception Ill_formed of string

type branch = { prob : Q.t; time : Q.t; loops : bool }

type t = { value : Q.t; label : string; children : t list; detail : string }

let fail fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

let branch ~prob ~time ~loops = { prob; time; loops }

let solve_loop ~label branches =
  if branches = [] then fail "solve_loop: no branches";
  List.iter
    (fun b ->
       if not (Q.is_probability b.prob) then
         fail "solve_loop: branch probability %s outside [0, 1]"
           (Q.to_string b.prob);
       if Q.sign b.time < 0 then
         fail "solve_loop: negative branch time %s" (Q.to_string b.time))
    branches;
  let total = Q.sum (List.map (fun b -> b.prob) branches) in
  if not (Q.equal total Q.one) then
    fail "solve_loop: branch probabilities sum to %s, not 1"
      (Q.to_string total);
  let direct_cost =
    Q.sum (List.map (fun b -> Q.mul b.prob b.time) branches)
  in
  let loop_prob =
    Q.sum
      (List.filter_map (fun b -> if b.loops then Some b.prob else None)
         branches)
  in
  if Q.geq loop_prob Q.one then
    fail "solve_loop: looping probability %s is not < 1"
      (Q.to_string loop_prob);
  let value = Q.div direct_cost (Q.sub Q.one loop_prob) in
  let detail =
    Printf.sprintf "E = %s / (1 - %s) over %d branches"
      (Q.to_string direct_cost) (Q.to_string loop_prob)
      (List.length branches)
  in
  { value; label; children = []; detail }

let constant ~label v =
  if Q.sign v < 0 then fail "constant: negative bound %s" (Q.to_string v);
  { value = v; label; children = []; detail = "constant" }

let of_claim c =
  let p = Claim.prob c in
  if Q.is_zero p then fail "of_claim: probability bound is zero";
  let value = Q.div (Claim.time c) p in
  let detail =
    Format.asprintf
      "geometric trials over %a (side condition: failures re-enter %s)"
      Claim.pp c
      (Pred.name (Claim.pre c))
  in
  { value; label = "E[time] <= t/p"; children = []; detail }

let sum ~label bounds =
  if bounds = [] then fail "sum: no bounds";
  { value = Q.sum (List.map (fun b -> b.value) bounds);
    label; children = bounds; detail = "sum of phases" }

let value b = b.value

let rec pp fmt b =
  Format.fprintf fmt "@[<v 2>%s = %s  (%s)" b.label (Q.to_string b.value)
    b.detail;
  List.iter (fun child -> Format.fprintf fmt "@,%a" pp child) b.children;
  Format.fprintf fmt "@]"
