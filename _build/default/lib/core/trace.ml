module Q = Proba.Rational

let of_exec ~is_external frag =
  List.filter is_external (Exec.actions frag)

let distribution ~is_external ?(equal_action = ( = )) tree =
  let leaves = Exec_automaton.maximal_executions tree in
  let pairs =
    List.map
      (fun (frag, mass, genuine) ->
         if not genuine then
           failwith "Trace.distribution: tree contains truncated leaves";
         (of_exec ~is_external frag, mass))
      leaves
  in
  Proba.Dist.make
    ~equal:(fun t1 t2 ->
        List.length t1 = List.length t2
        && List.for_all2 equal_action t1 t2)
    pairs

let prob_of_prefix ~is_external ?(equal_action = ( = )) tree prefix =
  let rec starts_with prefix trace =
    match prefix, trace with
    | [], _ -> true
    | _ :: _, [] -> false
    | p :: ps, t :: ts -> equal_action p t && starts_with ps ts
  in
  (* A trace having [prefix] as a prefix is monotone along extension
     only in one direction: once the external actions seen deviate from
     [prefix], the answer is No forever; once [prefix] has been fully
     emitted, Yes forever.  Implemented as an event schema. *)
  let decide ~maximal frag =
    let trace = of_exec ~is_external frag in
    if starts_with prefix trace then Event.Accept
    else if starts_with trace prefix then
      (* The trace so far is still a proper prefix of [prefix]. *)
      if maximal then Event.Reject else Event.Undecided
    else Event.Reject
  in
  let event = Event.make ~name:"trace prefix" decide in
  Exec_automaton.prob_interval event tree
