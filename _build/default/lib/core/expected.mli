(** Expected-time bounds derived from phase decompositions
    (Section 6.2 of the paper).

    The paper turns the phase statements into an expected-time bound by
    writing a one-unknown recurrence

    {v V = 1/8 * 10 + 1/2 * (5 + V1) + 3/8 * (10 + V2) v}

    where the looping branches restart an identically distributed
    experiment.  {!solve_loop} solves the general form

    {v E = sum_i p_i * (t_i + [loops_i] * E) v}

    exactly: [E = (sum_i p_i t_i) / (1 - sum_{loops} p_i)].

    A {!t} value carries its derivation so the final number (the paper's
    60, then 63) is auditable. *)

type t

exception Ill_formed of string

(** A branch of the recurrence: taken with probability [prob], costing
    time [time], and, if [loops], restarting the experiment. *)
type branch = { prob : Proba.Rational.t; time : Proba.Rational.t; loops : bool }

(** [branch ~prob ~time ~loops] constructs a branch. *)
val branch :
  prob:Proba.Rational.t -> time:Proba.Rational.t -> loops:bool -> branch

(** [solve_loop ~label branches] solves the recurrence.  Raises
    [Ill_formed] unless the probabilities are in [0,1] and sum to 1,
    times are non-negative, and the looping probability is < 1. *)
val solve_loop : label:string -> branch list -> t

(** [constant ~label v] is a fixed bound (e.g. from a deterministic
    phase). *)
val constant : label:string -> Proba.Rational.t -> t

(** [of_claim c] is the geometric-trials bound [time c / prob c],
    recording the side condition that failed attempts re-enter [pre c].
    Raises [Ill_formed] if [prob c] is zero. *)
val of_claim : 's Claim.t -> t

(** [sum ~label bounds] adds expected-time bounds for consecutive
    phases (linearity of expectation). *)
val sum : label:string -> t list -> t

val value : t -> Proba.Rational.t

(** Renders the derivation. *)
val pp : Format.formatter -> t -> unit
