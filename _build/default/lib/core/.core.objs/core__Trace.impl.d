lib/core/trace.ml: Event Exec Exec_automaton List Proba
