lib/core/timed.mli: Exec Format Pa Proba
