lib/core/pred.mli: Format
