lib/core/schema.mli: Format
