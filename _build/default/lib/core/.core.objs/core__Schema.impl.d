lib/core/schema.ml: Format String
