lib/core/event.ml: Exec List Pa Pred Printf Proba String
