lib/core/compose.ml: Format List Pa Proba
