lib/core/exec.ml: Format List
