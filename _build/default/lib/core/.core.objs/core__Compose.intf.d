lib/core/compose.mli: Format Pa
