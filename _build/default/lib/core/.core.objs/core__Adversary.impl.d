lib/core/adversary.ml: Exec List Pa Proba
