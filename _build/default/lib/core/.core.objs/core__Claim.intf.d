lib/core/claim.mli: Format Inclusion Pred Proba Schema
