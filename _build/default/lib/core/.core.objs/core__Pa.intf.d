lib/core/pa.mli: Format Proba
