lib/core/expected.mli: Claim Format Proba
