lib/core/trace.mli: Exec Exec_automaton Proba
