lib/core/claim.ml: Format Inclusion List Pred Printf Proba Schema
