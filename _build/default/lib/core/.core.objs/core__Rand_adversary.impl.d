lib/core/rand_adversary.ml: Exec Exec_automaton List Option Pa Proba
