lib/core/exec_automaton.mli: Adversary Event Exec Pa Proba
