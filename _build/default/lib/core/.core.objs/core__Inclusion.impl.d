lib/core/inclusion.ml: Format List Pred Printf
