lib/core/inclusion.mli: Format Pred
