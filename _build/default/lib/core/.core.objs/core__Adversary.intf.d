lib/core/adversary.mli: Exec Pa
