lib/core/expected.ml: Claim Format List Pred Printf Proba
