lib/core/pa.ml: Format Hashtbl List Proba
