lib/core/exec_automaton.ml: Event Exec List Pa Printf Proba
