lib/core/pred.ml: Format List Printf String
