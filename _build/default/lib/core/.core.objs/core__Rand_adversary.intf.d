lib/core/rand_adversary.mli: Adversary Exec Exec_automaton Pa Proba
