lib/core/exec.mli: Format
