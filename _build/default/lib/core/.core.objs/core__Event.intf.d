lib/core/event.mli: Exec Pa Pred Proba
