lib/core/timed.ml: Exec Format List Pa Printf Proba
