type ('s, 'a) step = { action : 'a; dist : 's Proba.Dist.t }

type ('s, 'a) t = {
  start : 's list;
  enabled : 's -> ('s, 'a) step list;
  equal_state : 's -> 's -> bool;
  hash_state : 's -> int;
  equal_action : 'a -> 'a -> bool;
  is_external : 'a -> bool;
  pp_state : Format.formatter -> 's -> unit;
  pp_action : Format.formatter -> 'a -> unit;
}

let default_pp fmt _ = Format.pp_print_string fmt "<abstr>"

let make ?(equal_state = ( = )) ?(hash_state = Hashtbl.hash)
    ?(equal_action = ( = )) ?(is_external = fun _ -> true)
    ?(pp_state = default_pp) ?(pp_action = default_pp) ~start ~enabled () =
  if start = [] then invalid_arg "Pa.make: no start states";
  { start; enabled; equal_state; hash_state; equal_action; is_external;
    pp_state; pp_action }

let start m = m.start
let enabled m s = m.enabled s
let equal_state m = m.equal_state
let hash_state m = m.hash_state
let equal_action m = m.equal_action
let is_external m = m.is_external
let pp_state m = m.pp_state
let pp_action m = m.pp_action

let is_terminal m s = m.enabled s = []
let is_deterministic_at m s = List.length (m.enabled s) <= 1

let steps_with_action m s a =
  List.filter (fun step -> m.equal_action step.action a) (m.enabled s)

let map_state ~to_ ~of_ ?pp_state m =
  let pp_state =
    match pp_state with
    | Some pp -> pp
    | None -> fun fmt t -> m.pp_state fmt (of_ t)
  in
  { start = List.map to_ m.start;
    enabled =
      (fun t ->
         List.map
           (fun step -> { step with dist = Proba.Dist.map to_ step.dist })
           (m.enabled (of_ t)));
    equal_state = (fun a b -> m.equal_state (of_ a) (of_ b));
    hash_state = (fun t -> m.hash_state (of_ t));
    equal_action = m.equal_action;
    is_external = m.is_external;
    pp_state;
    pp_action = m.pp_action }

let restrict m keep =
  { m with
    enabled =
      (fun s -> List.filter (fun step -> keep s step.action) (m.enabled s)) }
