(** Finite execution fragments (Section 2 of the paper).

    An execution fragment [alpha = s0 a1 s1 a2 s2 ... an sn] is an
    alternating sequence of states and actions, beginning and ending with
    a state.  This module represents only the finite fragments
    ([frag*(M)]); infinite executions appear implicitly as paths of
    {!Exec_automaton} trees and as streams produced by the simulator. *)

type ('s, 'a) t

(** [initial s] is the fragment consisting of the single state [s]. *)
val initial : 's -> ('s, 'a) t

(** [snoc frag a s] extends the fragment with one step (amortized O(1)). *)
val snoc : ('s, 'a) t -> 'a -> 's -> ('s, 'a) t

(** First state [fstate]. *)
val fstate : ('s, 'a) t -> 's

(** Last state [lstate]. *)
val lstate : ('s, 'a) t -> 's

(** Number of steps (actions); [0] for a single-state fragment. *)
val length : ('s, 'a) t -> int

(** The steps in order: [(a1, s1); ...; (an, sn)]. *)
val steps : ('s, 'a) t -> ('a * 's) list

(** All states [s0; s1; ...; sn] in order. *)
val states : ('s, 'a) t -> 's list

(** All actions [a1; ...; an] in order. *)
val actions : ('s, 'a) t -> 'a list

(** [concat a1 a2] is the concatenation [a1 ^ a2]; requires
    [lstate a1 = fstate a2] (checked with [equal], default structural).
    Raises [Invalid_argument] otherwise. *)
val concat : ?equal:('s -> 's -> bool) -> ('s, 'a) t -> ('s, 'a) t -> ('s, 'a) t

(** [is_prefix ~equal_state ~equal_action a1 a2]: [a1 <= a2] in the
    paper's prefix order. *)
val is_prefix :
  ?equal_state:('s -> 's -> bool) ->
  ?equal_action:('a -> 'a -> bool) ->
  ('s, 'a) t -> ('s, 'a) t -> bool

(** [drop_prefix ~equal_state ~equal_action p a] returns the fragment
    [a'] such that [a = p ^ a'], if [p] is a prefix of [a]. *)
val drop_prefix :
  ?equal_state:('s -> 's -> bool) ->
  ?equal_action:('a -> 'a -> bool) ->
  ('s, 'a) t -> ('s, 'a) t -> ('s, 'a) t option

(** [total_time ~duration frag] sums [duration a] over the actions; this
    is the elapsed time of the fragment for timed automata whose time
    passage is carried by actions (see {!Timed}). *)
val total_time : duration:('a -> int) -> ('s, 'a) t -> int

(** [find_first frag pred] returns the index of the first step whose
    (action, post-state) satisfies [pred]. *)
val find_first : ('s, 'a) t -> ('a -> 's -> bool) -> int option

(** [fold f init frag] folds over steps in order; [f acc a s]. *)
val fold : ('b -> 'a -> 's -> 'b) -> 'b -> ('s, 'a) t -> 'b

(** [exists frag pred] tests [pred a s] over the steps. *)
val exists : ('s, 'a) t -> ('a -> 's -> bool) -> bool

val pp :
  pp_state:(Format.formatter -> 's -> unit) ->
  pp_action:(Format.formatter -> 'a -> unit) ->
  Format.formatter -> ('s, 'a) t -> unit
