type 's t = {
  sub : 's Pred.t;
  sup : 's Pred.t;
  evidence : string;
  is_axiom : bool;
}

let sub i = i.sub
let sup i = i.sup
let evidence i = i.evidence
let is_axiom i = i.is_axiom

let verify ~states sub sup =
  let ok = List.for_all (fun s -> not (Pred.mem sub s) || Pred.mem sup s) states in
  if ok then
    Some
      { sub; sup;
        evidence =
          Printf.sprintf "verified over %d states" (List.length states);
        is_axiom = false }
  else None

let axiom ~reason sub sup = { sub; sup; evidence = reason; is_axiom = true }

let refl p =
  { sub = p; sup = p; evidence = "reflexivity"; is_axiom = false }

let in_union_left p q =
  { sub = p; sup = Pred.union p q; evidence = "left injection into union";
    is_axiom = false }

let pp fmt i =
  Format.fprintf fmt "%a ⊆ %a (%s)" Pred.pp i.sub Pred.pp i.sup i.evidence
