type ('s, 'a) t = ('s, 'a) Exec.t -> ('s, 'a) Pa.step option

let memoryless f frag = f (Exec.lstate frag)

let first_enabled m =
  memoryless (fun s ->
      match Pa.enabled m s with [] -> None | step :: _ -> Some step)

let halt _ = None

let by_priority m rank =
  memoryless (fun s ->
      match Pa.enabled m s with
      | [] -> None
      | first :: _ as steps ->
        let better best step =
          if rank s step.Pa.action < rank s best.Pa.action then step else best
        in
        Some (List.fold_left better first steps))

let cutoff n adv frag = if Exec.length frag >= n then None else adv frag

let shift ?equal prefix adv frag = adv (Exec.concat ?equal prefix frag)

let well_formed m adv frag =
  match adv frag with
  | None -> true
  | Some step ->
    let s = Exec.lstate frag in
    let matches enabled_step =
      Pa.equal_action m enabled_step.Pa.action step.Pa.action
      && List.for_all
           (fun (target, w) ->
              Proba.Rational.equal w
                (Proba.Dist.prob enabled_step.Pa.dist
                   (Pa.equal_state m target)))
           (Proba.Dist.support step.Pa.dist)
    in
    List.exists matches (Pa.enabled m s)
