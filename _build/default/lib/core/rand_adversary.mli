(** Randomized adversaries.

    The paper restricts attention to deterministic adversaries
    (footnote 1: "we ignore the possibility that the adversary itself
    uses randomness"); the full framework it builds on allows the
    adversary to pick a {e distribution} over enabled steps.  This
    module provides that generalization: a randomized adversary maps a
    finite execution fragment to a distribution over enabled steps (or
    halts).

    For the reachability-style properties this library checks, allowing
    adversary randomness changes nothing: the extremal values are
    attained by deterministic adversaries (the minimum of an affine
    function over a simplex sits at a vertex).  {!Exec_automaton_r}
    makes that testable by unfolding a randomized adversary into the
    same kind of tree, where the adversary's coin is just another
    probabilistic branch. *)

type ('s, 'a) t = ('s, 'a) Exec.t -> ('s, 'a) Pa.step Proba.Dist.t option

(** Every deterministic adversary is a randomized one. *)
val of_deterministic : ('s, 'a) Adversary.t -> ('s, 'a) t

(** [mix p a1 a2] plays [a1] with probability [p] and [a2] otherwise,
    independently at every decision point.  When exactly one of the two
    halts, the mixture follows the other; it halts only when both do.
    Raises [Proba.Dist.Not_a_distribution] unless [0 <= p <= 1]. *)
val mix :
  Proba.Rational.t -> ('s, 'a) t -> ('s, 'a) t -> ('s, 'a) t

(** [uniform_enabled m] randomizes uniformly over all enabled steps. *)
val uniform_enabled : ('s, 'a) Pa.t -> ('s, 'a) t

(** [unfold m adv s ~max_depth] is the execution-automaton analogue for
    randomized adversaries: the adversary's choice distribution and the
    chosen step's target distribution are combined into a single
    probabilistic branching, so the resulting tree supports the same
    event-probability evaluation.

    Each child's {e fragment} records the action of the step that led
    to it, which is what event schemas inspect; the node's own action
    label (one label per node in the tree type) is only cosmetic and
    carries the first chosen step's action. *)
val unfold :
  ('s, 'a) Pa.t -> ('s, 'a) t -> 's -> max_depth:int ->
  ('s, 'a) Exec_automaton.node
