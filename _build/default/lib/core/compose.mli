(** Parallel composition of probabilistic automata.

    The underlying framework (Segala-Lynch probabilistic automata, on
    which this paper's model is based) composes automata CSP-style:
    designated shared actions synchronize -- both components move, and
    their probability spaces multiply (the joint step targets the
    product distribution) -- while all other actions interleave.

    For the timed automata of this library, synchronizing on the time
    action ([Tick]) composes two clocked components into one system in
    which time advances jointly: this is how multi-process timed models
    are assembled from per-process ones. *)

(** [product ~sync m1 m2] composes two automata over the same action
    type.  An action [a] with [sync a = true] is enabled in the product
    only when both components enable it (every pairing of their
    [a]-steps is offered to the adversary); other actions interleave.
    State equality, hashing and printing lift componentwise. *)
val product :
  sync:('a -> bool) ->
  ('s1, 'a) Pa.t -> ('s2, 'a) Pa.t -> ('s1 * 's2, 'a) Pa.t

(** [product_list ~sync ~pp_state ms] folds {!product} over a non-empty
    list of same-state-type automata, yielding states as lists (the
    i-th component's state at index i).
    Raises [Invalid_argument] on the empty list. *)
val product_list :
  sync:('a -> bool) ->
  ?pp_state:(Format.formatter -> 's list -> unit) ->
  ('s, 'a) Pa.t list -> ('s list, 'a) Pa.t
