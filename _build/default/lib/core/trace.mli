(** Traces: the external behavior of executions.

    In the underlying framework, the visible behavior of an execution
    is its {e trace} -- the subsequence of external actions -- and an
    execution automaton induces a {e trace distribution}.  The paper
    marks [try], [crit], [exit], [rem] as the external actions of the
    dining-philosophers automaton; everything else (flips, waits,
    ticks) is internal and invisible to the user. *)

(** [of_exec ~is_external frag] is the trace of a fragment. *)
val of_exec : is_external:('a -> bool) -> ('s, 'a) Exec.t -> 'a list

(** [distribution ~is_external ?equal_action tree] is the trace
    distribution of a fully materialized execution automaton: each
    maximal execution contributes its rectangle probability to its
    trace.  Raises [Failure] if the tree contains truncated leaves
    (their trace is not yet determined). *)
val distribution :
  is_external:('a -> bool) -> ?equal_action:('a -> 'a -> bool) ->
  ('s, 'a) Exec_automaton.node -> 'a list Proba.Dist.t

(** [prob_of_prefix ~is_external ?equal_action tree prefix] is the
    probability that the trace {e starts with} [prefix]; unlike
    {!distribution} this is well defined on truncated trees as an
    interval (lower, upper). *)
val prob_of_prefix :
  is_external:('a -> bool) -> ?equal_action:('a -> 'a -> bool) ->
  ('s, 'a) Exec_automaton.node -> 'a list ->
  Proba.Rational.t * Proba.Rational.t
