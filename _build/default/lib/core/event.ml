type verdict = Accept | Reject | Undecided

type ('s, 'a) t = {
  name : string;
  decide : maximal:bool -> ('s, 'a) Exec.t -> verdict;
}

let make ~name decide = { name; decide }

let name e = e.name
let decide e ~maximal frag = e.decide ~maximal frag

let first ?(equal_action = ( = )) a u =
  let decide ~maximal frag =
    match Exec.find_first frag (fun act _ -> equal_action act a) with
    | None -> if maximal then Accept else Undecided
    | Some i ->
      let _, post = List.nth (Exec.steps frag) i in
      if Pred.mem u post then Accept else Reject
  in
  make ~name:(Printf.sprintf "first(a, %s)" (Pred.name u)) decide

let next ?(equal_action = ( = )) pairs =
  let rec distinct = function
    | [] -> true
    | (a, _) :: rest ->
      (not (List.exists (fun (b, _) -> equal_action a b) rest))
      && distinct rest
  in
  if not (distinct pairs) then
    invalid_arg "Event.next: actions must be pairwise distinct";
  let decide ~maximal frag =
    let is_one act = List.exists (fun (a, _) -> equal_action a act) pairs in
    match Exec.find_first frag (fun act _ -> is_one act) with
    | None -> if maximal then Accept else Undecided
    | Some i ->
      let act, post = List.nth (Exec.steps frag) i in
      let _, u = List.find (fun (a, _) -> equal_action a act) pairs in
      if Pred.mem u post then Accept else Reject
  in
  let names = String.concat ", " (List.map (fun (_, u) -> Pred.name u) pairs) in
  make ~name:(Printf.sprintf "next(%s)" names) decide

let reach ?(duration = fun _ -> 0) u ~within =
  let decide ~maximal frag =
    (* Walk the fragment accumulating elapsed time; accept on the first
       state in [u] at elapsed time <= within (the fragment's first
       state is at time 0). *)
    if Pred.mem u (Exec.fstate frag) then Accept
    else begin
      let verdict, _ =
        Exec.fold
          (fun (v, elapsed) a s ->
             match v with
             | Accept | Reject -> (v, elapsed)
             | Undecided ->
               let elapsed = elapsed + duration a in
               if elapsed > within then (Reject, elapsed)
               else if Pred.mem u s then (Accept, elapsed)
               else (Undecided, elapsed))
          (Undecided, 0) frag
      in
      if verdict = Undecided && maximal then Reject else verdict
    end
  in
  make
    ~name:(Printf.sprintf "reach(%s) within %d" (Pred.name u) within)
    decide

let reach_within_steps u ~steps =
  let decide ~maximal frag =
    let rec go i = function
      | [] -> if maximal || Exec.length frag > steps then Reject else Undecided
      | s :: rest ->
        if i > steps then Reject
        else if Pred.mem u s then Accept
        else go (i + 1) rest
    in
    go 0 (Exec.states frag)
  in
  make
    ~name:(Printf.sprintf "reach(%s) within %d steps" (Pred.name u) steps)
    decide

let all_first ?(equal_action = ( = )) ~count a u =
  if count < 0 then invalid_arg "Event.all_first: negative count";
  let decide ~maximal frag =
    (* Scan the first [count] occurrences of [a]; reject at the first
       one landing outside [u]; accept once [count] have landed inside,
       or at a maximal execution with fewer (all inside). *)
    let rec scan seen = function
      | [] ->
        if seen >= count || maximal then Accept else Undecided
      | (act, post) :: rest ->
        if seen >= count then Accept
        else if equal_action act a then
          if Pred.mem u post then scan (seen + 1) rest else Reject
        else scan seen rest
    in
    scan 0 (Exec.steps frag)
  in
  make
    ~name:(Printf.sprintf "all_first(%d; a, %s)" count (Pred.name u))
    decide

let eventually u =
  let decide ~maximal frag =
    if List.exists (Pred.mem u) (Exec.states frag) then Accept
    else if maximal then Reject
    else Undecided
  in
  make ~name:(Printf.sprintf "eventually(%s)" (Pred.name u)) decide

let conj_verdict v1 v2 =
  match v1, v2 with
  | Reject, _ | _, Reject -> Reject
  | Accept, Accept -> Accept
  | _ -> Undecided

let disj_verdict v1 v2 =
  match v1, v2 with
  | Accept, _ | _, Accept -> Accept
  | Reject, Reject -> Reject
  | _ -> Undecided

let conj e1 e2 =
  make
    ~name:(Printf.sprintf "(%s) ∩ (%s)" e1.name e2.name)
    (fun ~maximal frag ->
       conj_verdict (e1.decide ~maximal frag) (e2.decide ~maximal frag))

let disj e1 e2 =
  make
    ~name:(Printf.sprintf "(%s) ∪ (%s)" e1.name e2.name)
    (fun ~maximal frag ->
       disj_verdict (e1.decide ~maximal frag) (e2.decide ~maximal frag))

let negate e =
  let flip = function
    | Accept -> Reject
    | Reject -> Accept
    | Undecided -> Undecided
  in
  make ~name:(Printf.sprintf "¬(%s)" e.name) (fun ~maximal frag ->
      flip (e.decide ~maximal frag))

let conj_all = function
  | [] -> invalid_arg "Event.conj_all: empty list"
  | e :: es -> List.fold_left conj e es

let check_premise m ~states pairs =
  let step_ok (a, u, p) step =
    if Pa.equal_action m step.Pa.action a then
      Proba.Rational.geq (Proba.Dist.prob step.Pa.dist (Pred.mem u)) p
    else true
  in
  List.for_all
    (fun s ->
       let steps = Pa.enabled m s in
       List.for_all (fun pair -> List.for_all (step_ok pair) steps) pairs)
    states

let product_bound pairs =
  List.fold_left
    (fun acc (_, _, p) -> Proba.Rational.mul acc p)
    Proba.Rational.one pairs

let power_bound p count = Proba.Rational.pow p count

let min_bound = function
  | [] -> invalid_arg "Event.min_bound: empty list"
  | (_, _, p) :: rest ->
    List.fold_left (fun acc (_, _, q) -> Proba.Rational.min acc q) p rest
