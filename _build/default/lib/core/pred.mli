(** Named state-set predicates.

    The sets [U] of statements [U -t->_p U'] are represented as
    predicates over states, tagged with a name.  Names matter: the proof
    rules of {!Claim} match the post-set of one statement against the
    pre-set of the next {e by name}, so that a composed proof tree can be
    audited (set inclusion between anonymous predicates is undecidable;
    named predicates built from shared definitions make the intended
    identifications explicit, as in the paper's [T], [RT], [F], [G], [P],
    [C]). *)

type 's t

(** [make name mem] tags a membership function with a name. *)
val make : string -> ('s -> bool) -> 's t

val name : 's t -> string
val mem : 's t -> 's -> bool

(** [union p q] is named ["p ∪ q"]. *)
val union : 's t -> 's t -> 's t

(** [inter p q] is named ["p ∩ q"]. *)
val inter : 's t -> 's t -> 's t

(** [complement p] is named ["¬p"]. *)
val complement : 's t -> 's t

(** [union_all ps] folds {!union} over a non-empty list. *)
val union_all : 's t list -> 's t

(** Predicates are compared by name: this is the identification used by
    the proof rules. *)
val same : 's t -> 's t -> bool

val pp : Format.formatter -> 's t -> unit
