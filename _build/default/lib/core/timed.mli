(** Timed probabilistic automata: the patient construction and the
    digital-clock discipline.

    The paper handles time by the {e patient construction}: add a time
    component to states, a non-visible action [nu] for time passage, and
    arbitrary time-passage steps everywhere.  Discretely, we carry time
    on actions instead of states: a distinguished {!action} constructor
    [Tick] advances time by one {e slot}, where a slot is [1/granularity]
    of a paper time unit.  The elapsed time of a fragment is then the
    number of [Tick]s it contains (divided by the granularity).

    Adversary schemas with timing constraints (such as [Unit-Time]) are
    encoded {e structurally}: the case-study automata carry per-process
    countdowns and refuse to [Tick] when a ready process's countdown has
    expired, so that {e every} scheduler of the clocked automaton is a
    legal schema member.  This module provides the action wrapper, the
    generic patient construction (no constraint), and duration
    helpers. *)

type 'a action = Tick | Act of 'a

val equal_action : ('a -> 'a -> bool) -> 'a action -> 'a action -> bool

(** Duration in slots: 1 for [Tick], 0 otherwise. *)
val duration : 'a action -> int

val pp_action :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a action -> unit

(** [patient m] is the paper's patient construction, discretized: every
    state additionally enables a [Tick] step that leaves it unchanged,
    and the original steps are wrapped in [Act].  No timing constraint
    is imposed, so time-bounded reachability claims against all
    adversaries of the patient automaton are typically vacuous -- the
    construction exists to model {e timing-unconstrained} systems and
    for testing. *)
val patient : ('s, 'a) Pa.t -> ('s, 'a action) Pa.t

(** [elapsed_slots frag] counts [Tick]s. *)
val elapsed_slots : ('s, 'a action) Exec.t -> int

(** [within ~granularity ~time] converts a paper-time bound to slots.
    Raises [Invalid_argument] if the product is not an integer (e.g.
    time 1/2 at granularity 1). *)
val within : granularity:int -> time:Proba.Rational.t -> int
