(** Event schemas (Definition 2.5 and Section 4).

    An event schema associates a measurable set of maximal executions
    with each execution automaton.  Here a schema is given by a
    {e monotone} decision function on finite fragments: once it answers
    [Accept] or [Reject] on a fragment with [maximal:false], it must
    answer the same on every extension.  Calling [decide ~maximal:true]
    asserts that the fragment is a complete (finite maximal) execution,
    letting schemas resolve their pending verdict -- e.g.
    [first(a, U)] accepts executions in which [a] never occurs, while
    time-bounded reachability rejects executions that end without
    visiting the target.

    The two schemas of Section 4 -- [first(a, U)] and
    [next((a1,U1),...,(an,Un))] -- are provided, along with intersection
    and union (needed to state Proposition 4.2) and the time-bounded
    reachability schema [e_{U,t}] of Definition 3.1. *)

type verdict = Accept | Reject | Undecided

type ('s, 'a) t

(** [make ~name decide] wraps a monotone decision function.
    [decide ~maximal:true] must never return [Undecided]. *)
val make :
  name:string -> (maximal:bool -> ('s, 'a) Exec.t -> verdict) -> ('s, 'a) t

val name : ('s, 'a) t -> string
val decide : ('s, 'a) t -> maximal:bool -> ('s, 'a) Exec.t -> verdict

(** {1 The paper's schemas} *)

(** [first ~equal_action a u]: either [a] never occurs, or the state
    reached after the first occurrence of [a] is in [u]. *)
val first :
  ?equal_action:('a -> 'a -> bool) -> 'a -> 's Pred.t -> ('s, 'a) t

(** [next ~equal_action pairs]: either no action among the [a_i] occurs,
    or, where [a_i] is the first to occur, the state reached after it is
    in [U_i].  The actions must be pairwise distinct.
    Raises [Invalid_argument] on duplicate actions. *)
val next :
  ?equal_action:('a -> 'a -> bool) -> ('a * 's Pred.t) list -> ('s, 'a) t

(** [reach ?duration u ~within]: the schema [e_{U,t}] of Definition 3.1 --
    some state of the execution, {e including its first state}, lies in
    [u] within time [within].  [duration] gives each action's time cost
    (defaults to 0, i.e. step-counted untimed reachability, which then
    only rejects at maximal executions). *)
val reach :
  ?duration:('a -> int) -> 's Pred.t -> within:int -> ('s, 'a) t

(** [reach_within_steps u ~steps]: like {!reach} but bounding the number
    of steps rather than elapsed time. *)
val reach_within_steps : 's Pred.t -> steps:int -> ('s, 'a) t

(** [eventually u]: unbounded reachability (accepts as soon as [u] is
    visited; rejects only at maximal executions). *)
val eventually : 's Pred.t -> ('s, 'a) t

(** {1 A new schema in the spirit of Section 7}

    The paper closes by conjecturing that "new event schemas and
    partial independence results similar to those of Section 4 can be
    developed".  Here is one: [all_first ~count a u] holds of the
    executions in which {e each} of the first [count] occurrences of
    [a] (or all of them, if fewer occur) leads to a state of [u] --
    [first] is the [count = 1] case.  The same conditioning argument
    that proves Proposition 4.2 gives the bound [p^count] whenever
    every [a]-step gives [u] probability at least [p] (see
    {!power_bound}), again against every non-oblivious adversary.
    Raises [Invalid_argument] if [count < 0]. *)
val all_first :
  ?equal_action:('a -> 'a -> bool) -> count:int -> 'a -> 's Pred.t ->
  ('s, 'a) t

(** {1 Combinators} *)

(** Intersection of events (both must hold). *)
val conj : ('s, 'a) t -> ('s, 'a) t -> ('s, 'a) t

(** Union of events. *)
val disj : ('s, 'a) t -> ('s, 'a) t -> ('s, 'a) t

(** Complement. *)
val negate : ('s, 'a) t -> ('s, 'a) t

(** [conj_all events] folds {!conj}; raises [Invalid_argument] on []. *)
val conj_all : ('s, 'a) t list -> ('s, 'a) t

(** {1 Proposition 4.2 premise}

    Proposition 4.2 assumes, for each pair [(a_i, U_i)] and bound [p_i],
    that {e every} step of [M] labelled [a_i] gives [U_i] probability at
    least [p_i].  [check_premise] verifies this on an enumerated state
    set (typically the reachable states); given the premise, the
    conclusion bounds are [prod p_i] for the intersection of the
    [first] events and [min p_i] for the [next] event. *)
val check_premise :
  ('s, 'a) Pa.t -> states:'s list ->
  ('a * 's Pred.t * Proba.Rational.t) list -> bool

(** Product of the per-pair bounds (conclusion 1 of Proposition 4.2). *)
val product_bound : ('a * 's Pred.t * Proba.Rational.t) list -> Proba.Rational.t

(** Minimum of the per-pair bounds (conclusion 2 of Proposition 4.2). *)
val min_bound : ('a * 's Pred.t * Proba.Rational.t) list -> Proba.Rational.t

(** [power_bound p count] is [p^count]: the sound lower bound for
    {!all_first} under the usual per-step premise (checked with
    {!check_premise} on the singleton list). *)
val power_bound : Proba.Rational.t -> int -> Proba.Rational.t
