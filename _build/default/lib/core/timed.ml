module Q = Proba.Rational

type 'a action = Tick | Act of 'a

let equal_action eq a b =
  match a, b with
  | Tick, Tick -> true
  | Act x, Act y -> eq x y
  | Tick, Act _ | Act _, Tick -> false

let duration = function Tick -> 1 | Act _ -> 0

let pp_action pp fmt = function
  | Tick -> Format.pp_print_string fmt "tick"
  | Act a -> pp fmt a

let patient m =
  let tick_step s = { Pa.action = Tick; dist = Proba.Dist.point s } in
  let enabled s =
    tick_step s
    :: List.map
      (fun step -> { Pa.action = Act step.Pa.action; dist = step.Pa.dist })
      (Pa.enabled m s)
  in
  Pa.make
    ~equal_state:(Pa.equal_state m)
    ~hash_state:(Pa.hash_state m)
    ~equal_action:(equal_action (Pa.equal_action m))
    ~is_external:(function Tick -> false | Act a -> Pa.is_external m a)
    ~pp_state:(Pa.pp_state m)
    ~pp_action:(pp_action (Pa.pp_action m))
    ~start:(Pa.start m) ~enabled ()

let elapsed_slots frag = Exec.total_time ~duration frag

let within ~granularity ~time =
  if granularity <= 0 then invalid_arg "Timed.within: granularity <= 0";
  let slots = Q.mul_int time granularity in
  if not (Proba.Bigint.equal (Q.den slots) Proba.Bigint.one) then
    invalid_arg
      (Printf.sprintf "Timed.within: %s time units is not a whole number \
                       of slots at granularity %d"
         (Q.to_string time) granularity);
  match Proba.Bigint.to_int (Q.num slots) with
  | Some n when n >= 0 -> n
  | Some _ -> invalid_arg "Timed.within: negative time"
  | None -> invalid_arg "Timed.within: time bound too large"
