(** Certificates of set inclusion between named predicates.

    The proof rules occasionally need [U1 ⊆ U2] (e.g. to retarget a
    statement's post-set to the pre-set of the next statement when they
    are not literally the same named predicate).  An [Inclusion.t] is
    such a fact together with how it was established: verified by
    enumeration over a concrete state set, or assumed. *)

type 's t

val sub : 's t -> 's Pred.t
val sup : 's t -> 's Pred.t

(** Human-readable provenance. *)
val evidence : 's t -> string

(** [true] when the inclusion was assumed rather than verified. *)
val is_axiom : 's t -> bool

(** [verify ~states sub sup] checks [sub s => sup s] for every listed
    state (callers pass the reachable states).  Returns [None] with no
    certificate if a counterexample exists. *)
val verify : states:'s list -> 's Pred.t -> 's Pred.t -> 's t option

(** [axiom ~reason sub sup] records an assumed inclusion. *)
val axiom : reason:string -> 's Pred.t -> 's Pred.t -> 's t

(** [refl p] is [p ⊆ p]. *)
val refl : 's Pred.t -> 's t

(** [in_union_left p q]: [p ⊆ p ∪ q] (constructed, always valid). *)
val in_union_left : 's Pred.t -> 's Pred.t -> 's t

val pp : Format.formatter -> 's t -> unit
