type why = Reached | Halted | Deadlock | Step_limit | Time_limit

type ('s, 'a) outcome = {
  final : 's;
  steps : int;
  elapsed : int;
  why : why;
  frag : ('s, 'a) Core.Exec.t;
}

let run m sched ~rng ~stop ?(duration = fun _ -> 0)
    ?(max_steps = 1_000_000) ?max_time start =
  let rec go frag steps elapsed =
    let s = Core.Exec.lstate frag in
    if stop s then { final = s; steps; elapsed; why = Reached; frag }
    else if steps >= max_steps then
      { final = s; steps; elapsed; why = Step_limit; frag }
    else begin
      match Core.Pa.enabled m s with
      | [] -> { final = s; steps; elapsed; why = Deadlock; frag }
      | _ :: _ ->
        (match sched rng frag with
         | None -> { final = s; steps; elapsed; why = Halted; frag }
         | Some step ->
           let d = duration step.Core.Pa.action in
           (* Zero-duration steps may still fire at the deadline itself:
              "within time t" includes activity at time exactly t. *)
           (match max_time with
            | Some t when elapsed + d > t ->
              { final = s; steps; elapsed; why = Time_limit; frag }
            | Some _ | None ->
              let target =
                Proba.Dist.sample step.Core.Pa.dist (Proba.Rng.float rng)
              in
              let frag = Core.Exec.snoc frag step.Core.Pa.action target in
              go frag (steps + 1) (elapsed + d)))
    end
  in
  go (Core.Exec.initial start) 0 0
