(** Randomized schedulers for simulation.

    The paper's adversaries are deterministic functions of the history;
    for Monte Carlo experiments it is convenient to also allow the
    scheduler itself to randomize (e.g. "pick a uniformly random enabled
    step").  A scheduler receives a generator plus the execution
    fragment so far; determinism is recovered with {!of_adversary}. *)

type ('s, 'a) t =
  Proba.Rng.t -> ('s, 'a) Core.Exec.t -> ('s, 'a) Core.Pa.step option

(** Lift a deterministic adversary. *)
val of_adversary : ('s, 'a) Core.Adversary.t -> ('s, 'a) t

(** Pick uniformly among all enabled steps. *)
val uniform : ('s, 'a) Core.Pa.t -> ('s, 'a) t

(** [priority m rank] deterministically picks an enabled step minimizing
    [rank state action] (ties broken by enabling order). *)
val priority : ('s, 'a) Core.Pa.t -> ('s -> 'a -> int) -> ('s, 'a) t

(** [weighted m weight] picks among enabled steps with probability
    proportional to [weight state action]; steps of weight [<= 0] are
    only taken when no positive-weight step exists (then uniformly). *)
val weighted : ('s, 'a) Core.Pa.t -> ('s -> 'a -> int) -> ('s, 'a) t

(** [halt_when pred sched] halts as soon as the last state satisfies
    [pred], otherwise defers. *)
val halt_when : ('s -> bool) -> ('s, 'a) t -> ('s, 'a) t

(** [of_choice choose m] replays a memoryless policy given as the index
    of the chosen step within [Core.Pa.enabled m s] (the order used by
    the MDP engine); [None] or an out-of-range index halts.  Use it to
    simulate extremal adversaries extracted by value iteration. *)
val of_choice : ('s -> int option) -> ('s, 'a) Core.Pa.t -> ('s, 'a) t

(** [of_layered_policy ~horizon ~duration ~choose m] replays a
    time-layered policy, as extracted by
    [Mdp.Finite_horizon.min_reach_with_policy]: at a fragment with
    elapsed time [e] (computed with [duration]), the step index is
    [choose (horizon - e) state]; the scheduler halts once the horizon
    is exhausted or [choose] declines. *)
val of_layered_policy :
  horizon:int -> duration:('a -> int) ->
  choose:(int -> 's -> int option) -> ('s, 'a) Core.Pa.t -> ('s, 'a) t
