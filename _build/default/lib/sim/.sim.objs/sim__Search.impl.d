lib/sim/search.ml: List
