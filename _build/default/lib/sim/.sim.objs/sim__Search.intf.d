lib/sim/search.mli: Proba
