lib/sim/scheduler.mli: Core Proba
