lib/sim/engine.mli: Core Proba Scheduler
