lib/sim/scheduler.ml: Core List Proba
