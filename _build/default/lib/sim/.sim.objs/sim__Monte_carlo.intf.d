lib/sim/monte_carlo.mli: Core Proba Scheduler
