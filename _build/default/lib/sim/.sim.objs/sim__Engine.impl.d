lib/sim/engine.ml: Core Proba
