lib/sim/monte_carlo.ml: Core Engine Proba Scheduler
