type ('s, 'a) setup = {
  pa : ('s, 'a) Core.Pa.t;
  scheduler : ('s, 'a) Scheduler.t;
  duration : 'a -> int;
  start : 's;
}

let estimate_reach setup ~target ~within ~trials ~seed =
  let root = Proba.Rng.create ~seed in
  let prop = Proba.Stat.Proportion.create () in
  for _ = 1 to trials do
    let rng = Proba.Rng.split root in
    let outcome =
      Engine.run setup.pa setup.scheduler ~rng ~stop:target
        ~duration:setup.duration ~max_time:within setup.start
    in
    Proba.Stat.Proportion.add prop (outcome.Engine.why = Engine.Reached)
  done;
  prop

let run_times setup ~target ~trials ~seed ~max_steps record =
  let root = Proba.Rng.create ~seed in
  let missed = ref 0 in
  for _ = 1 to trials do
    let rng = Proba.Rng.split root in
    let outcome =
      Engine.run setup.pa setup.scheduler ~rng ~stop:target
        ~duration:setup.duration ~max_steps setup.start
    in
    if outcome.Engine.why = Engine.Reached then
      record (float_of_int outcome.Engine.elapsed)
    else incr missed
  done;
  !missed

let estimate_time setup ~target ~trials ~seed ?(max_steps = 1_000_000) () =
  let summary = Proba.Stat.Summary.create () in
  let missed =
    run_times setup ~target ~trials ~seed ~max_steps
      (Proba.Stat.Summary.add summary)
  in
  (summary, missed)

let histogram_time setup ~target ~trials ~seed ?(max_steps = 1_000_000)
    ~lo ~hi ~bins () =
  let summary = Proba.Stat.Summary.create () in
  let hist = Proba.Stat.Histogram.create ~lo ~hi ~bins in
  let _missed =
    run_times setup ~target ~trials ~seed ~max_steps (fun x ->
        Proba.Stat.Summary.add summary x;
        Proba.Stat.Histogram.add hist x)
  in
  (hist, summary)
