type ('s, 'a) t =
  Proba.Rng.t -> ('s, 'a) Core.Exec.t -> ('s, 'a) Core.Pa.step option

let of_adversary adv _rng frag = adv frag

let uniform m rng frag =
  match Core.Pa.enabled m (Core.Exec.lstate frag) with
  | [] -> None
  | steps -> Some (Proba.Rng.pick rng steps)

let priority m rank _rng frag =
  let s = Core.Exec.lstate frag in
  match Core.Pa.enabled m s with
  | [] -> None
  | first :: rest ->
    let better best step =
      if rank s step.Core.Pa.action < rank s best.Core.Pa.action then step
      else best
    in
    Some (List.fold_left better first rest)

let weighted m weight rng frag =
  let s = Core.Exec.lstate frag in
  match Core.Pa.enabled m s with
  | [] -> None
  | steps ->
    let weighted_steps =
      List.filter_map
        (fun step ->
           let w = weight s step.Core.Pa.action in
           if w > 0 then Some (step, w) else None)
        steps
    in
    (match weighted_steps with
     | [] -> Some (Proba.Rng.pick rng steps)
     | _ ->
       let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weighted_steps in
       let ticket = Proba.Rng.int rng total in
       let rec pick acc = function
         | [] -> assert false
         | (step, w) :: rest ->
           if ticket < acc + w then step else pick (acc + w) rest
       in
       Some (pick 0 weighted_steps))

let halt_when pred sched rng frag =
  if pred (Core.Exec.lstate frag) then None else sched rng frag

let of_choice choose m _rng frag =
  let s = Core.Exec.lstate frag in
  match choose s with
  | None -> None
  | Some k when k < 0 -> None
  | Some k -> List.nth_opt (Core.Pa.enabled m s) k

let of_layered_policy ~horizon ~duration ~choose m _rng frag =
  let remaining = horizon - Core.Exec.total_time ~duration frag in
  if remaining < 0 then None
  else begin
    let s = Core.Exec.lstate frag in
    match choose remaining s with
    | None -> None
    | Some k when k < 0 -> None
    | Some k -> List.nth_opt (Core.Pa.enabled m s) k
  end
