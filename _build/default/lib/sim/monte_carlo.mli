(** Repeated-trial estimation on top of {!Engine}.

    Each trial gets an independent generator split off a root seed, so
    experiments are exactly reproducible and embarrassingly restartable.
    Probability estimates come back as Wilson-interval proportions; time
    estimates as running summaries. *)

type ('s, 'a) setup = {
  pa : ('s, 'a) Core.Pa.t;
  scheduler : ('s, 'a) Scheduler.t;
  duration : 'a -> int;
  start : 's;
}

(** [estimate_reach setup ~target ~within ~trials ~seed] estimates
    [P(reach target within time)] ([within] in slots). *)
val estimate_reach :
  ('s, 'a) setup -> target:('s -> bool) -> within:int -> trials:int ->
  seed:int -> Proba.Stat.Proportion.t

(** [estimate_time setup ~target ~trials ~seed ?max_steps ()] runs until
    the target and summarizes elapsed slots.  Trials that do not reach
    the target within [max_steps] steps (default [1_000_000]) are
    reported separately in the second component. *)
val estimate_time :
  ('s, 'a) setup -> target:('s -> bool) -> trials:int -> seed:int ->
  ?max_steps:int -> unit -> Proba.Stat.Summary.t * int

(** [histogram_time] like {!estimate_time} but also bins the elapsed
    times. *)
val histogram_time :
  ('s, 'a) setup -> target:('s -> bool) -> trials:int -> seed:int ->
  ?max_steps:int -> lo:float -> hi:float -> bins:int -> unit ->
  Proba.Stat.Histogram.t * Proba.Stat.Summary.t
