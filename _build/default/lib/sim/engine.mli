(** Single-trajectory simulation of a probabilistic automaton under a
    scheduler.

    The engine resolves nondeterminism with the scheduler and
    probabilistic branches by sampling with the supplied generator; it
    stops when a stop predicate holds, the scheduler halts, a time or
    step bound is exceeded, or the automaton deadlocks. *)

type why =
  | Reached  (** the stop predicate held *)
  | Halted  (** the scheduler returned nothing *)
  | Deadlock  (** no step enabled *)
  | Step_limit
  | Time_limit

type ('s, 'a) outcome = {
  final : 's;
  steps : int;  (** number of steps taken *)
  elapsed : int;  (** total duration of the actions taken, in slots *)
  why : why;
  frag : ('s, 'a) Core.Exec.t;  (** the full trajectory *)
}

(** [run m sched ~rng ~stop ?duration ?max_steps ?max_time start] plays
    one trajectory from [start].  [duration] defaults to "every action
    is instantaneous"; [max_time] is in slots and checked {e after} each
    step ([Time_limit] fires once [elapsed > max_time] would hold,
    i.e. states reached at exactly [max_time] are still examined). *)
val run :
  ('s, 'a) Core.Pa.t -> ('s, 'a) Scheduler.t -> rng:Proba.Rng.t ->
  stop:('s -> bool) -> ?duration:('a -> int) -> ?max_steps:int ->
  ?max_time:int -> 's -> ('s, 'a) outcome
