(** Stochastic local search over scheduler parameters.

    At ring sizes beyond exhaustive reach, the worst-case adversary can
    only be probed: we parameterize schedulers by a small genome (e.g.
    a priority table over action classes) and hill-climb the genome
    against a Monte Carlo objective (say, mean time to the critical
    region).  This gives empirical lower bounds on the worst case --
    the direction the paper leaves open ("it would be very satisfying
    to derive a non trivial lower bound").

    The search is deterministic given the seed, like everything else in
    this library. *)

type 'g result = {
  best : 'g;
  score : float;  (** objective value of [best] *)
  evaluations : int;  (** number of objective evaluations spent *)
  trace : float list;  (** best-so-far after each accepted move *)
}

(** [hill_climb ~rng ~init ~neighbor ~score ~steps ()] maximizes
    [score] by repeated neighbor proposals, accepting improvements;
    [restarts] (default 0) re-seeds from [init] and keeps the best
    overall. *)
val hill_climb :
  rng:Proba.Rng.t -> init:'g -> neighbor:('g -> Proba.Rng.t -> 'g) ->
  score:('g -> float) -> steps:int -> ?restarts:int -> unit -> 'g result
