type 'g result = {
  best : 'g;
  score : float;
  evaluations : int;
  trace : float list;
}

let hill_climb ~rng ~init ~neighbor ~score ~steps ?(restarts = 0) () =
  let evaluations = ref 0 in
  let evaluate g =
    incr evaluations;
    score g
  in
  let run_once () =
    let current = ref init in
    let current_score = ref (evaluate init) in
    let trace = ref [ !current_score ] in
    for _ = 1 to steps do
      let candidate = neighbor !current rng in
      let candidate_score = evaluate candidate in
      if candidate_score > !current_score then begin
        current := candidate;
        current_score := candidate_score;
        trace := candidate_score :: !trace
      end
    done;
    (!current, !current_score, List.rev !trace)
  in
  let rec go n (best, best_score, best_trace) =
    if n <= 0 then (best, best_score, best_trace)
    else begin
      let b, s, t = run_once () in
      if s > best_score then go (n - 1) (b, s, t)
      else go (n - 1) (best, best_score, best_trace)
    end
  in
  let best, score, trace = go restarts (run_once ()) in
  { best; score; evaluations = !evaluations; trace }
