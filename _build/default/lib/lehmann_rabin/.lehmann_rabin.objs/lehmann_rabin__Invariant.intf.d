lib/lehmann_rabin/invariant.mli: Automaton Mdp State Topology
