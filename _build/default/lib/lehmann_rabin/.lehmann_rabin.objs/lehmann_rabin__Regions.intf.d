lib/lehmann_rabin/regions.mli: Core State Topology
