lib/lehmann_rabin/automaton.ml: Array Core Format List Proba State Topology
