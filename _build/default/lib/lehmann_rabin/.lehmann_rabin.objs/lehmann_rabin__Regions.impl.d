lib/lehmann_rabin/regions.ml: Array Core List State Topology
