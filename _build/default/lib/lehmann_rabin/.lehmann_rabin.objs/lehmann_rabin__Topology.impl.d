lib/lehmann_rabin/topology.ml: Array List Printf State
