lib/lehmann_rabin/proof.ml: Array Automaton Core Invariant List Mdp Printf Proba Regions Result Sim State Topology
