lib/lehmann_rabin/schedulers.ml: Array Automaton Core List Sim State
