lib/lehmann_rabin/automaton.mli: Core Format State Topology
