lib/lehmann_rabin/schedulers.mli: Automaton Core Sim State
