lib/lehmann_rabin/invariant.ml: Array List Mdp State Topology
