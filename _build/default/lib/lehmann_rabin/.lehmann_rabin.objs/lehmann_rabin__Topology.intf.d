lib/lehmann_rabin/topology.mli: State
