lib/lehmann_rabin/proof.mli: Automaton Core Mdp Proba Sim State Topology
