lib/lehmann_rabin/state.mli: Format
