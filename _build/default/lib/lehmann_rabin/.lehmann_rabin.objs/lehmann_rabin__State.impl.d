lib/lehmann_rabin/state.ml: Array Format Hashtbl
