type t = {
  name : string;
  assignments : (int * int) array;  (* per process: (left, right) *)
  num_resources : int;
  contenders : (int * State.side) list array;  (* per resource *)
}

let make ~name ~num_resources assignments =
  let n = Array.length assignments in
  if n < 2 then invalid_arg "Topology.make: need at least 2 processes";
  Array.iteri
    (fun i (l, r) ->
       if l = r then
         invalid_arg
           (Printf.sprintf "Topology.make: process %d has identical \
                            resources" i);
       if l < 0 || l >= num_resources || r < 0 || r >= num_resources then
         invalid_arg
           (Printf.sprintf "Topology.make: process %d has an out-of-range \
                            resource" i))
    assignments;
  let contenders = Array.make num_resources [] in
  Array.iteri
    (fun i (l, r) ->
       contenders.(l) <- (i, State.L) :: contenders.(l);
       contenders.(r) <- (i, State.R) :: contenders.(r))
    assignments;
  Array.iteri (fun r c -> contenders.(r) <- List.rev c) contenders;
  { name; assignments; num_resources; contenders }

let name t = t.name
let num_procs t = Array.length t.assignments
let num_resources t = t.num_resources

let res t i side =
  let l, r = t.assignments.(i) in
  match side with State.L -> l | State.R -> r

let contenders t r = t.contenders.(r)

let ring n =
  make ~name:(Printf.sprintf "ring(%d)" n) ~num_resources:n
    (Array.init n (fun i -> ((i + n - 1) mod n, i)))

let line n =
  make ~name:(Printf.sprintf "line(%d)" n) ~num_resources:(n + 1)
    (Array.init n (fun i -> (i, i + 1)))

let star n =
  make ~name:(Printf.sprintf "star(%d)" n) ~num_resources:(n + 1)
    (Array.init n (fun i -> (i + 1, 0)))
