(** The Lehmann-Rabin protocol as a probabilistic timed automaton
    (the automaton [M] of Section 6.1), with the [Unit-Time] adversary
    schema encoded structurally by digital clocks.

    Timing encoding (see DESIGN.md, "Substitutions"):
    - a [Tick] action advances time by one slot ([1/g] of a paper time
      unit) and is enabled only when no ready process has exhausted its
      deadline countdown, so {e every} adversary of this automaton
      schedules each ready process within time 1 -- the defining
      constraint of [Unit-Time];
    - each process may be scheduled at most [k] times per slot (its
      budget, refreshed by [Tick]), which makes the zero-time layers of
      the MDP acyclic and hence exactly checkable.  The continuous-time
      adversary of the paper is the [k -> infinity, g -> infinity]
      limit; the experiments sweep both knobs.

    The user-controlled actions [try_i] and [exit_i] carry no deadline
    and are fired at the adversary's pleasure, as in the paper. *)

type params = { n : int; g : int; k : int }

type action =
  | Tick
  | Try of int  (** user grants [try_i]: R -> F *)
  | Exit of int  (** user grants [exit_i]: C -> E_F *)
  | Flip of int  (** the coin flip: F -> W_left or W_right, each 1/2 *)
  | Wait of int  (** test-and-take the first resource (busy-wait) *)
  | Second of int  (** test-and-take the second resource: S -> P or D *)
  | Drop of int  (** put the first resource back: D -> F *)
  | Crit of int  (** enter the critical region: P -> C *)
  | Drop_first of int * State.side
      (** exit step 7, nondeterministic keep-side choice: E_F -> E_S *)
  | Drop_second of int  (** exit step 8: E_S -> E_R *)
  | Rem of int  (** exit step 9: E_R -> R *)

val pp_action : Format.formatter -> action -> unit

val is_tick : action -> bool

(** Duration in slots (1 for [Tick], 0 otherwise). *)
val duration : action -> int

(** Is this one of the user-controlled actions ([Try]/[Exit])? *)
val is_user : action -> bool

(** The external actions of [M] are [try], [crit], [exit], [rem]
    (Section 6.1); everything else is internal. *)
val is_external : action -> bool

(** [make params] builds the ring automaton.  Raises [Invalid_argument]
    for [n < 2], [g < 1] or [k < 1]. *)
val make : params -> (State.t, action) Core.Pa.t

(** [make_general ~topo ~g ~k] builds the protocol over an arbitrary
    two-resource conflict topology (the paper's "more general
    topologies" extension); [make params] is
    [make_general ~topo:(Topology.ring params.n) ...]. *)
val make_general :
  topo:Topology.t -> g:int -> k:int -> (State.t, action) Core.Pa.t

(** [enabled params s] is exposed for white-box tests. *)
val enabled : params -> State.t -> (State.t, action) Core.Pa.step list
