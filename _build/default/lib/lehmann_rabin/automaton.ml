module D = Proba.Dist

type params = { n : int; g : int; k : int }

(* Internally everything is expressed over a topology; the ring [params]
   interface delegates. *)
type gparams = { topo : Topology.t; gg : int; gk : int }

type action =
  | Tick
  | Try of int
  | Exit of int
  | Flip of int
  | Wait of int
  | Second of int
  | Drop of int
  | Crit of int
  | Drop_first of int * State.side
  | Drop_second of int
  | Rem of int

let pp_action fmt = function
  | Tick -> Format.pp_print_string fmt "tick"
  | Try i -> Format.fprintf fmt "try_%d" i
  | Exit i -> Format.fprintf fmt "exit_%d" i
  | Flip i -> Format.fprintf fmt "flip_%d" i
  | Wait i -> Format.fprintf fmt "wait_%d" i
  | Second i -> Format.fprintf fmt "second_%d" i
  | Drop i -> Format.fprintf fmt "drop_%d" i
  | Crit i -> Format.fprintf fmt "crit_%d" i
  | Drop_first (i, u) ->
    Format.fprintf fmt "dropf_%d(keep %s)" i
      (match u with State.L -> "left" | State.R -> "right")
  | Drop_second i -> Format.fprintf fmt "drops_%d" i
  | Rem i -> Format.fprintf fmt "rem_%d" i

let is_tick = function Tick -> true | _ -> false
let duration a = if is_tick a then 1 else 0
let is_user = function Try _ | Exit _ -> true | _ -> false

let is_external = function
  | Try _ | Crit _ | Exit _ | Rem _ -> true
  | Tick | Flip _ | Wait _ | Second _ | Drop _ | Drop_first _
  | Drop_second _ -> false

(* --------------------------------------------------------------- *)
(* State update helpers (purely functional). *)

let set_proc s i p =
  let procs = Array.copy s.State.procs in
  procs.(i) <- p;
  { s with State.procs }

let set_res s j taken =
  let res = Array.copy s.State.res in
  res.(j) <- taken;
  { s with State.res }

(* A process step: consume one budget unit, restart the deadline. *)
let stepped params (p : State.proc) region =
  if State.ready region then
    { State.region; c = params.gg; b = p.State.b - 1 }
  else
    (* Canonical clocks for non-ready regions keep the state space small
       and are never read. *)
    { State.region; c = params.gg; b = params.gk }

(* Becoming ready through a user action: fresh deadline and budget. *)
let granted params region = { State.region; c = params.gg; b = params.gk }

let tick_step params s =
  let all_ok =
    Array.for_all
      (fun p -> (not (State.ready p.State.region)) || p.State.c > 0)
      s.State.procs
  in
  if not all_ok then []
  else begin
    let procs =
      Array.map
        (fun p ->
           if State.ready p.State.region then
             { p with State.c = p.State.c - 1; b = params.gk }
           else p)
        s.State.procs
    in
    [ { Core.Pa.action = Tick; dist = D.point { s with State.procs } } ]
  end

let user_steps params s =
  let step_for i (p : State.proc) =
    match p.State.region with
    | State.Rem ->
      [ { Core.Pa.action = Try i;
          dist = D.point (set_proc s i (granted params State.Flip)) } ]
    | State.Crit ->
      [ { Core.Pa.action = Exit i;
          dist = D.point (set_proc s i (granted params State.Exit_f)) } ]
    | State.Flip | State.Wait _ | State.Second _ | State.Drop _
    | State.Pre | State.Exit_f | State.Exit_s _ | State.Exit_r -> []
  in
  List.concat (List.mapi step_for (Array.to_list s.State.procs))

let proc_steps params s =
  let step_for i (p : State.proc) =
    if not (State.ready p.State.region) || p.State.b <= 0 then []
    else begin
      let resource u = Topology.res params.topo i u in
      match p.State.region with
      | State.Flip ->
        let branch u = set_proc s i (stepped params p (State.Wait u)) in
        [ { Core.Pa.action = Flip i;
            dist = D.coin (branch State.L) (branch State.R) } ]
      | State.Wait u ->
        let target =
          if s.State.res.(resource u) then
            (* Busy-wait: the resource is taken; the step only burns
               budget and restarts the deadline. *)
            set_proc s i (stepped params p (State.Wait u))
          else
            set_res (set_proc s i (stepped params p (State.Second u)))
              (resource u) true
        in
        [ { Core.Pa.action = Wait i; dist = D.point target } ]
      | State.Second u ->
        let other = State.opp u in
        let target =
          if s.State.res.(resource other) then
            set_proc s i (stepped params p (State.Drop u))
          else
            set_res (set_proc s i (stepped params p State.Pre))
              (resource other) true
        in
        [ { Core.Pa.action = Second i; dist = D.point target } ]
      | State.Drop u ->
        let target =
          set_res (set_proc s i (stepped params p State.Flip)) (resource u)
            false
        in
        [ { Core.Pa.action = Drop i; dist = D.point target } ]
      | State.Pre ->
        [ { Core.Pa.action = Crit i;
            dist = D.point (set_proc s i (stepped params p State.Crit)) } ]
      | State.Exit_f ->
        let choose keep =
          let target =
            set_res
              (set_proc s i (stepped params p (State.Exit_s keep)))
              (resource (State.opp keep))
              false
          in
          { Core.Pa.action = Drop_first (i, keep); dist = D.point target }
        in
        [ choose State.L; choose State.R ]
      | State.Exit_s u ->
        let target =
          set_res (set_proc s i (stepped params p State.Exit_r)) (resource u)
            false
        in
        [ { Core.Pa.action = Drop_second i; dist = D.point target } ]
      | State.Exit_r ->
        [ { Core.Pa.action = Rem i;
            dist = D.point (set_proc s i (stepped params p State.Rem)) } ]
      | State.Rem | State.Crit -> []
    end
  in
  List.concat (List.mapi step_for (Array.to_list s.State.procs))

let enabled_general gp s =
  tick_step gp s @ user_steps gp s @ proc_steps gp s

let make_general ~topo ~g ~k =
  let gp = { topo; gg = g; gk = k } in
  let start =
    State.initial_general ~num_procs:(Topology.num_procs topo)
      ~num_resources:(Topology.num_resources topo) ~g ~k
  in
  Core.Pa.make ~equal_state:State.equal ~hash_state:State.hash
    ~is_external ~pp_state:State.pp ~pp_action ~start:[ start ]
    ~enabled:(enabled_general gp) ()

let gparams_of params =
  { topo = Topology.ring params.n; gg = params.g; gk = params.k }

let enabled params s = enabled_general (gparams_of params) s

let make params = make_general ~topo:(Topology.ring params.n) ~g:params.g ~k:params.k
