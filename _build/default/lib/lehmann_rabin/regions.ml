let trying = function
  | State.Flip | State.Wait _ | State.Second _ | State.Drop _ | State.Pre ->
    true
  | State.Rem | State.Crit | State.Exit_f | State.Exit_s _ | State.Exit_r ->
    false

let some_region pred s = Array.exists (fun p -> pred p.State.region) s.State.procs

let t = Core.Pred.make "T" (some_region trying)

let c = Core.Pred.make "C" (some_region (fun r -> r = State.Crit))

let quiet region =
  (* {E_R, R} ∪ T: neither critical nor holding resources in exit. *)
  trying region || region = State.Rem || region = State.Exit_r

let in_rt s =
  some_region trying s
  && Array.for_all (fun p -> quiet p.State.region) s.State.procs

let rt = Core.Pred.make "RT" in_rt

let f =
  Core.Pred.make "F" (fun s ->
      in_rt s && some_region (fun r -> r = State.Flip) s)

let p = Core.Pred.make "P" (some_region (fun r -> r = State.Pre))

(* "i potentially controls its left/right resource": pc in {W, S, D}
   pointing that way.  The paper's # stands for {W, S, D}. *)
let points region side =
  match region with
  | State.Wait u | State.Second u | State.Drop u -> u = side
  | State.Rem | State.Flip | State.Pre | State.Crit | State.Exit_f
  | State.Exit_s _ | State.Exit_r -> false

(* X in {E_R, R, F, #_side}. *)
let harmless_or_points region side =
  (match region with
   | State.Exit_r | State.Rem | State.Flip -> true
   | State.Wait _ | State.Second _ | State.Drop _ -> points region side
   | State.Pre | State.Crit | State.Exit_f | State.Exit_s _ -> false)

let committed_toward region side =
  match region with
  | State.Wait u | State.Second u -> u = side
  | State.Rem | State.Flip | State.Drop _ | State.Pre | State.Crit
  | State.Exit_f | State.Exit_s _ | State.Exit_r -> false

let good_at s i =
  let pi = s.State.procs.(i).State.region in
  (* Committed to the left: the second resource is the right one,
     contested by the right neighbor pointing left. *)
  (committed_toward pi State.L
   && harmless_or_points (State.right_neighbor s i).State.region State.R)
  || (committed_toward pi State.R
      && harmless_or_points (State.left_neighbor s i).State.region State.L)

let good_processes s =
  if not (in_rt s) then []
  else
    List.filter (good_at s)
      (List.init (State.num_procs s) (fun i -> i))

let g =
  Core.Pred.make "G" (fun s ->
      in_rt s
      && List.exists (good_at s) (List.init (State.num_procs s) (fun i -> i)))

(* Generalized goodness over an arbitrary topology: process [i],
   committed toward side [u], is good when no {e other} process sharing
   its second resource (the opposite side) potentially controls it. *)
let good_at_general topo s i =
  let pi = s.State.procs.(i).State.region in
  let good_toward u =
    committed_toward pi u
    && begin
      let second = Topology.res topo i (State.opp u) in
      List.for_all
        (fun (j, side_j) ->
           j = i
           ||
           let rj = s.State.procs.(j).State.region in
           (match rj with
            | State.Exit_r | State.Rem | State.Flip -> true
            | State.Wait _ | State.Second _ | State.Drop _ ->
              not (points rj side_j)
            | State.Pre | State.Crit | State.Exit_f | State.Exit_s _ ->
              false))
        (Topology.contenders topo second)
    end
  in
  good_toward State.L || good_toward State.R

let good_processes_general topo s =
  if not (in_rt s) then []
  else
    List.filter (good_at_general topo s)
      (List.init (State.num_procs s) (fun i -> i))

let g_of topo =
  Core.Pred.make "G" (fun s ->
      in_rt s
      && List.exists (good_at_general topo s)
        (List.init (State.num_procs s) (fun i -> i)))

let rt_or_c = Core.Pred.union rt c
let fgp = Core.Pred.union_all [ f; g; p ]
let gp = Core.Pred.union g p
let fgp_or_c = Core.Pred.union fgp c
let gp_or_c = Core.Pred.union gp c
let p_or_c = Core.Pred.union p c
