type t = (State.t, Automaton.action) Sim.Scheduler.t

let uniform pa = Sim.Scheduler.uniform pa

let eager pa =
  let rank _s = function
    | Automaton.Tick -> 2
    | Automaton.Try _ | Automaton.Exit _ -> 1
    | Automaton.Flip _ | Automaton.Wait _ | Automaton.Second _
    | Automaton.Drop _ | Automaton.Crit _ | Automaton.Drop_first _
    | Automaton.Drop_second _ | Automaton.Rem _ -> 0
  in
  Sim.Scheduler.priority pa rank

let delayer pa =
  let rank _s = function
    | Automaton.Tick -> 0
    | Automaton.Try _ | Automaton.Exit _ -> 9
    | Automaton.Flip _ | Automaton.Wait _ | Automaton.Second _
    | Automaton.Drop _ | Automaton.Crit _ | Automaton.Drop_first _
    | Automaton.Drop_second _ | Automaton.Rem _ -> 1
  in
  Sim.Scheduler.priority pa rank

let starver pa =
  (* Heuristic worst case: maximize contention, dodge success steps
     while the clocks allow it. *)
  let second_would_succeed s i =
    let n = State.num_procs s in
    match s.State.procs.(i).State.region with
    | State.Second u ->
      not s.State.res.(State.resource_index ~n i (State.opp u))
    | State.Rem | State.Flip | State.Wait _ | State.Drop _ | State.Pre
    | State.Crit | State.Exit_f | State.Exit_s _ | State.Exit_r -> false
  in
  let rank s = function
    | Automaton.Try _ -> 0
    | Automaton.Exit _ -> 5
    | Automaton.Tick -> 2
    | Automaton.Second i -> if second_would_succeed s i then 8 else 3
    | Automaton.Crit _ -> 8
    | Automaton.Flip _ | Automaton.Wait _ | Automaton.Drop _
    | Automaton.Drop_first _ | Automaton.Drop_second _ | Automaton.Rem _ ->
      3
  in
  Sim.Scheduler.priority pa rank

let round_robin pa _rng frag =
  (* The turn is derived from the history length, so the scheduler stays
     a deterministic function of the fragment (an adversary in the
     paper's sense). *)
  let s = Core.Exec.lstate frag in
  let steps = Core.Pa.enabled pa s in
  match steps with
  | [] -> None
  | _ ->
    let n = State.num_procs s in
    let turn = Core.Exec.length frag mod (n + 1) in
    let proc_of = function
      | Automaton.Tick -> None
      | Automaton.Try i | Automaton.Exit i | Automaton.Flip i
      | Automaton.Wait i | Automaton.Second i | Automaton.Drop i
      | Automaton.Crit i | Automaton.Drop_first (i, _)
      | Automaton.Drop_second i | Automaton.Rem i -> Some i
    in
    let mine step = proc_of step.Core.Pa.action = Some turn in
    (match List.find_opt mine steps with
     | Some step -> Some step
     | None ->
       (* The turn-holder has nothing enabled (or it is the clock's
          turn): tick if possible, else first enabled. *)
       (match
          List.find_opt (fun st -> st.Core.Pa.action = Automaton.Tick) steps
        with
        | Some tick -> Some tick
        | None -> List.nth_opt steps 0))

let all pa =
  [ ("uniform", uniform pa); ("eager", eager pa); ("delayer", delayer pa);
    ("starver", starver pa); ("round-robin", round_robin pa) ]

let num_classes = 12

let action_class s = function
  | Automaton.Tick -> 0
  | Automaton.Try _ -> 1
  | Automaton.Exit _ -> 2
  | Automaton.Flip _ -> 3
  | Automaton.Wait _ -> 4
  | Automaton.Second i ->
    (* Distinguishing imminent successes gives the search the handle
       the hand-written starver uses. *)
    let n = State.num_procs s in
    let succeeds =
      match s.State.procs.(i).State.region with
      | State.Second u ->
        not s.State.res.(State.resource_index ~n i (State.opp u))
      | State.Rem | State.Flip | State.Wait _ | State.Drop _ | State.Pre
      | State.Crit | State.Exit_f | State.Exit_s _ | State.Exit_r -> false
    in
    if succeeds then 5 else 6
  | Automaton.Drop _ -> 7
  | Automaton.Crit _ -> 8
  | Automaton.Drop_first _ -> 9
  | Automaton.Drop_second _ -> 10
  | Automaton.Rem _ -> 11

let of_ranks pa ranks =
  if Array.length ranks <> num_classes then
    invalid_arg "Schedulers.of_ranks: wrong table size";
  Sim.Scheduler.priority pa (fun s a -> ranks.(action_class s a))
