let lemma_6_1 s =
  let n = State.num_procs s in
  let ok = ref true in
  for i = 0 to n - 1 do
    let right_holder = State.holds s.State.procs.(i).State.region State.R in
    let left_holder =
      State.holds s.State.procs.((i + 1) mod n).State.region State.L
    in
    (* Res i is between process i (right side) and i+1 (left side). *)
    if s.State.res.(i) <> (right_holder || left_holder) then ok := false;
    if right_holder && left_holder then ok := false
  done;
  !ok

let neighbors_exclusive s =
  let n = State.num_procs s in
  let critical i = s.State.procs.(i).State.region = State.Crit in
  not (List.exists (fun i -> critical i && critical ((i + 1) mod n))
         (List.init n (fun i -> i)))

let check expl = Mdp.Explore.check_invariant expl lemma_6_1
let check_exclusion expl = Mdp.Explore.check_invariant expl neighbors_exclusive

let lemma_general topo s =
  let ok = ref true in
  for r = 0 to Topology.num_resources topo - 1 do
    let holders =
      List.filter
        (fun (j, side) -> State.holds s.State.procs.(j).State.region side)
        (Topology.contenders topo r)
    in
    (match holders with
     | [] -> if s.State.res.(r) then ok := false
     | [ _ ] -> if not s.State.res.(r) then ok := false
     | _ :: _ :: _ -> ok := false)
  done;
  !ok

let check_general topo expl =
  Mdp.Explore.check_invariant expl (lemma_general topo)
