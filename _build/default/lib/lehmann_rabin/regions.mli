(** The state sets of the proof (Section 6.2).

    All predicates are over reachable states of the automaton; the
    checker evaluates them only on explored (hence reachable) states, as
    the paper's definitions require. *)

(** [X_i in T] in the paper's sense: pc in [{F, W, S, D, P}]. *)
val trying : State.region -> bool

(** [T]: some process is in its trying region. *)
val t : State.t Core.Pred.t

(** [C]: some process is in its critical region. *)
val c : State.t Core.Pred.t

(** [RT]: some process is trying, and every process is in
    [{E_R, R} ∪ T] -- nobody is critical or holds resources while
    exiting. *)
val rt : State.t Core.Pred.t

(** [F]: a state of [RT] where some process is ready to flip. *)
val f : State.t Core.Pred.t

(** [P]: some process is in its pre-critical region. *)
val p : State.t Core.Pred.t

(** [G]: a state of [RT] with a {e good} process -- a committed process
    (pc in [{W, S}]) whose second resource is not potentially controlled
    by its neighbor on that side. *)
val g : State.t Core.Pred.t

(** [good_processes s] lists the indices witnessing membership in [G]. *)
val good_processes : State.t -> int list

(** [g_of topo] is the goodness set generalized to an arbitrary
    topology: a committed process is good when {e no} other process
    sharing its second resource potentially controls (or holds) it.  On
    [Topology.ring n] this coincides with {!g}. *)
val g_of : Topology.t -> State.t Core.Pred.t

val good_processes_general : Topology.t -> State.t -> int list

(** The ladder sets used to stitch the five arrows together with
    Proposition 3.2 (each is the union of the previous arrow's target
    with everything already achieved): *)

val rt_or_c : State.t Core.Pred.t
val fgp_or_c : State.t Core.Pred.t
val gp_or_c : State.t Core.Pred.t
val p_or_c : State.t Core.Pred.t

(** [F ∪ G ∪ P] and [G ∪ P], the raw arrow targets of A.15 and A.14. *)
val fgp : State.t Core.Pred.t

val gp : State.t Core.Pred.t
