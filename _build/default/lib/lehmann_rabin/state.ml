type side = L | R

let opp = function L -> R | R -> L

type region =
  | Rem
  | Flip
  | Wait of side
  | Second of side
  | Drop of side
  | Pre
  | Crit
  | Exit_f
  | Exit_s of side
  | Exit_r

type proc = { region : region; c : int; b : int }

type t = {
  procs : proc array;
  res : bool array;
}

let ready = function
  | Flip | Wait _ | Second _ | Drop _ | Pre | Exit_f | Exit_s _ | Exit_r ->
    true
  | Rem | Crit -> false

(* Process i's right resource is Res i; its left one is Res (i-1). *)
let resource_index ~n i side =
  match side with
  | R -> i
  | L -> (i + n - 1) mod n

let holds region side =
  match region, side with
  | (Second u | Drop u | Exit_s u), _ -> u = side
  | (Pre | Crit | Exit_f), _ -> true
  | (Rem | Flip | Wait _ | Exit_r), _ -> false

let initial ~n ~g ~k =
  if n < 2 then invalid_arg "Lehmann_rabin: need at least 2 processes";
  if g < 1 then invalid_arg "Lehmann_rabin: granularity must be >= 1";
  if k < 1 then invalid_arg "Lehmann_rabin: step budget must be >= 1";
  { procs = Array.make n { region = Rem; c = g; b = k };
    res = Array.make n false }

let all_trying ~n ~g ~k =
  let s = initial ~n ~g ~k in
  { s with procs = Array.make n { region = Flip; c = g; b = k } }

let initial_general ~num_procs ~num_resources ~g ~k =
  if num_procs < 2 then
    invalid_arg "Lehmann_rabin: need at least 2 processes";
  if g < 1 then invalid_arg "Lehmann_rabin: granularity must be >= 1";
  if k < 1 then invalid_arg "Lehmann_rabin: step budget must be >= 1";
  { procs = Array.make num_procs { region = Rem; c = g; b = k };
    res = Array.make num_resources false }

let all_trying_general ~num_procs ~num_resources ~g ~k =
  let s = initial_general ~num_procs ~num_resources ~g ~k in
  { s with procs = Array.make num_procs { region = Flip; c = g; b = k } }

let num_procs s = Array.length s.procs

let left_neighbor s i =
  let n = Array.length s.procs in
  s.procs.((i + n - 1) mod n)

let right_neighbor s i =
  let n = Array.length s.procs in
  s.procs.((i + 1) mod n)

let side_arrow = function L -> "←" | R -> "→"

let pp_region fmt = function
  | Rem -> Format.pp_print_string fmt "R"
  | Flip -> Format.pp_print_string fmt "F"
  | Wait u -> Format.fprintf fmt "W%s" (side_arrow u)
  | Second u -> Format.fprintf fmt "S%s" (side_arrow u)
  | Drop u -> Format.fprintf fmt "D%s" (side_arrow u)
  | Pre -> Format.pp_print_string fmt "P"
  | Crit -> Format.pp_print_string fmt "C"
  | Exit_f -> Format.pp_print_string fmt "EF"
  | Exit_s u -> Format.fprintf fmt "ES%s" (side_arrow u)
  | Exit_r -> Format.pp_print_string fmt "ER"

let pp fmt s =
  Format.fprintf fmt "@[<h>[";
  Array.iteri
    (fun i p ->
       if i > 0 then Format.fprintf fmt " ";
       Format.fprintf fmt "%a(c%d,b%d)" pp_region p.region p.c p.b)
    s.procs;
  Format.fprintf fmt " |";
  Array.iter (fun taken -> Format.fprintf fmt " %s" (if taken then "t" else "f"))
    s.res;
  Format.fprintf fmt "]@]"

let equal a b = a = b

let hash s = Hashtbl.hash_param 200 200 s
