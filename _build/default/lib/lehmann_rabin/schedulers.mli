(** Concrete Unit-Time adversaries for simulating the protocol.

    Every scheduler below plays on the clocked automaton, so by
    construction it respects the [Unit-Time] schema; they differ in how
    they spend the freedom the schema leaves. *)

type t = (State.t, Automaton.action) Sim.Scheduler.t

(** Uniformly random among all enabled steps (ticks, user grants,
    process steps alike). *)
val uniform : (State.t, Automaton.action) Core.Pa.t -> t

(** Drives progress: process steps first (in index order), then user
    grants, ticking only when nothing else is enabled. *)
val eager : (State.t, Automaton.action) Core.Pa.t -> t

(** Delays maximally: ticks whenever allowed, schedules a process only
    when its deadline forces it; never grants [try]/[exit] (so use it
    from a state already in the trying region). *)
val delayer : (State.t, Automaton.action) Core.Pa.t -> t

(** A starvation heuristic: grants [try] eagerly to maximize contention,
    avoids [Second] steps that would succeed and [Crit] steps for as
    long as the deadlines allow, and otherwise delays. *)
val starver : (State.t, Automaton.action) Core.Pa.t -> t

(** Round-robin: cycles through the processes in index order, giving
    each its enabled step (tick when the turn-holder has nothing to
    do); grants [try]/[exit] on the holder's turn. *)
val round_robin : (State.t, Automaton.action) Core.Pa.t -> t

(** All of the above with display names, for experiment tables. *)
val all : (State.t, Automaton.action) Core.Pa.t -> (string * t) list

(** {1 Parameterized schedulers (adversary search)}

    A whole family of deterministic schedulers indexed by a priority
    table over action classes; {!Sim.Search.hill_climb} explores this
    family to probe worst cases at sizes the exact engine cannot
    reach. *)

(** Class index of an action, in [0, num_classes): tick, try, exit,
    flip, wait, second-that-would-succeed, second-that-would-fail,
    drop, crit, dropf, drops, rem. *)
val action_class : State.t -> Automaton.action -> int

val num_classes : int

(** [of_ranks pa ranks] schedules by ascending
    [ranks.(action_class state action)] (ties broken by enabling
    order).  Raises [Invalid_argument] unless [ranks] has
    {!num_classes} entries. *)
val of_ranks : (State.t, Automaton.action) Core.Pa.t -> int array -> t
