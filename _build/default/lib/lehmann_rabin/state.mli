(** States of the Lehmann-Rabin Dining Philosophers protocol
    (Section 5 and 6.1 of the paper).

    [n] philosophers sit on a ring; resource [Res i] lies between
    process [i] and process [i+1] (indices mod [n]), so process [i]'s
    {e right} resource is [Res i] and its {e left} resource is
    [Res (i-1)].

    Each process's local state is its program counter (with the arrow
    notation of Section 6.1 for the held/awaited side) plus, for the
    checker's digital-clock encoding of the [Unit-Time] adversary
    schema, a deadline countdown [c] (slots until this process must be
    scheduled) and a per-slot step budget [b] (schedulings this process
    may still receive before the next tick).  Program counters where the
    paper deems the side variable [u_i] irrelevant (F, P, C, E_F, E_R,
    R) do not carry one, exactly as the paper's notation collapses
    them. *)

type side = L | R

(** The opposite side ([opp] in the paper). *)
val opp : side -> side

(** Program counter with the paper's arrow notation. *)
type region =
  | Rem          (** [R]: remainder region *)
  | Flip         (** [F]: ready to flip *)
  | Wait of side (** [W_u]: waiting for the first resource on side [u] *)
  | Second of side
      (** [S_u]: holds the first resource (side [u]), checking the second *)
  | Drop of side (** [D_u]: about to put the first resource back *)
  | Pre          (** [P]: pre-critical (holds both resources) *)
  | Crit         (** [C]: critical region *)
  | Exit_f       (** [E_F]: exit region, still holds both resources *)
  | Exit_s of side (** [E_S,u]: exit region, still holds the side-[u] one *)
  | Exit_r       (** [E_R]: exit region, resources relinquished *)

type proc = {
  region : region;
  c : int;  (** deadline countdown in slots; meaningful when ready *)
  b : int;  (** remaining schedulings this slot *)
}

type t = {
  procs : proc array;
  res : bool array;  (** [res.(j)] = [Res j] is taken *)
}

(** [ready region]: does this region enable a non-user action?  (The
    user-controlled [try] and [exit] actions carry no deadline, per
    Section 6.2.) *)
val ready : region -> bool

(** [resource_index ~n i side] is the shared-variable index of process
    [i]'s resource on the given side. *)
val resource_index : n:int -> int -> side -> int

(** [holds region side]: does a process whose pc is [region] hold its
    side-[side] resource?  (The content of Lemma 6.1, per process.) *)
val holds : region -> side -> bool

(** [initial ~n ~g ~k] is the start state: every process in [Rem] with
    canonical clocks, every resource free. *)
val initial : n:int -> g:int -> k:int -> t

(** [all_trying ~n ~g ~k] is the state right after every user issued
    [try]: every process at [Flip], resources free.  A canonical member
    of [T] (indeed of [RT] and [F]), used as the simulation start for
    progress measurements. *)
val all_trying : n:int -> g:int -> k:int -> t

(** Generalized constructors for non-ring topologies, where the number
    of resources differs from the number of processes. *)
val initial_general :
  num_procs:int -> num_resources:int -> g:int -> k:int -> t

val all_trying_general :
  num_procs:int -> num_resources:int -> g:int -> k:int -> t

val num_procs : t -> int

(** Navigation on the ring. *)
val left_neighbor : t -> int -> proc

val right_neighbor : t -> int -> proc

val pp_region : Format.formatter -> region -> unit
val pp : Format.formatter -> t -> unit

(** Deep equality / hashing suitable for {!Core.Pa.make}. *)
val equal : t -> t -> bool

val hash : t -> int
