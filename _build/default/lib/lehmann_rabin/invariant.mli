(** Lemma 6.1: the resource variables are determined by the local
    states, and neighbors never hold the same resource.

    For every reachable state [s] and every [i]:
    - [Res i = taken] iff process [i] holds its right resource
      (pc in [{S→, D→, P, C, E_F, E_S→}]) or process [i+1] holds its
      left resource (pc in [{S←, D←, P, C, E_F, E_S←}]);
    - not both at once (mutual exclusion on each resource). *)

(** Does the state satisfy both clauses of Lemma 6.1? *)
val lemma_6_1 : State.t -> bool

(** The derived safety property of the protocol: no two {e adjacent}
    processes are simultaneously in their critical regions (they would
    both hold the resource between them). *)
val neighbors_exclusive : State.t -> bool

(** [check expl] exhaustively verifies {!lemma_6_1} over the explored
    reachable states, returning a counterexample if any. *)
val check :
  (State.t, Automaton.action) Mdp.Explore.t -> State.t option

(** Same for {!neighbors_exclusive}. *)
val check_exclusion :
  (State.t, Automaton.action) Mdp.Explore.t -> State.t option

(** Lemma 6.1 generalized to an arbitrary topology: each resource is
    taken iff exactly one of its contenders holds it on the
    corresponding side. *)
val lemma_general : Topology.t -> State.t -> bool

val check_general :
  Topology.t -> (State.t, Automaton.action) Mdp.Explore.t -> State.t option
