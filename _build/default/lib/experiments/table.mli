(** Minimal fixed-width text tables for the experiment reports. *)

type t

(** [create headers] starts a table. *)
val create : string list -> t

(** [row t cells] appends a row (padded/truncated to the header count). *)
val row : t -> string list -> unit

(** Render with aligned columns. *)
val to_string : t -> string

(** RFC-4180-style CSV rendering (quotes cells containing commas,
    quotes or newlines). *)
val to_csv : t -> string

val print : t -> unit
