type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let row t cells =
  let n = List.length t.headers in
  let len = List.length cells in
  let cells =
    if len = n then cells
    else if len < n then cells @ List.init (n - len) (fun _ -> "")
    else List.filteri (fun i _ -> i < n) cells
  in
  t.rows <- cells :: t.rows

(* Visible width: count UTF-8 code points rather than bytes, so arrows
   and set symbols in predicate names do not break the alignment.
   (Code points are a fine approximation here: the symbols we print are
   all single-width.) *)
let width s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else begin
      let c = Char.code s.[i] in
      let skip =
        if c < 0x80 then 1
        else if c < 0xE0 then 2
        else if c < 0xF0 then 3
        else 4
      in
      go (i + skip) (acc + 1)
    end
  in
  go 0 0

let to_string t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         if i < ncols && width cell > widths.(i) then
           widths.(i) <- width cell))
    all;
  let buf = Buffer.create 256 in
  let emit cells =
    List.iteri
      (fun i cell ->
         if i > 0 then Buffer.add_string buf "  ";
         Buffer.add_string buf cell;
         Buffer.add_string buf (String.make (widths.(i) - width cell) ' '))
      cells;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  emit
    (List.init ncols (fun i -> String.make widths.(i) '-'));
  List.iter emit rows;
  Buffer.contents buf

let csv_cell cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string buf "\"\""
         else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (to_string t)
