lib/experiments/harness.mli:
