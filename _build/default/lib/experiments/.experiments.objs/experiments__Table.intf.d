lib/experiments/table.mli:
