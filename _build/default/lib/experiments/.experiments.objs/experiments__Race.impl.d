lib/experiments/race.ml: Core Format List Proba
