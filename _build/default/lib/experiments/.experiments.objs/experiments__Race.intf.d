lib/experiments/race.mli: Core
