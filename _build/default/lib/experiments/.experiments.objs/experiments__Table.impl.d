lib/experiments/table.ml: Array Buffer Char List String
