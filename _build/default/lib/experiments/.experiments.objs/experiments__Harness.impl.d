lib/experiments/harness.ml: Array Ben_or Core Format Hashtbl Itai_rodeh Lehmann_rabin List Mdp Printf Proba Race Shared_coin Sim Stdlib Table Unix
