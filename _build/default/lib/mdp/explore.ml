exception Too_many_states of int

type 'a step = { action : 'a; outcomes : (int * Proba.Rational.t) array }

type ('s, 'a) t = {
  pa : ('s, 'a) Core.Pa.t;
  states : 's array;
  table : ('s, int) Funtbl.t;
  steps : 'a step array array;
  start_indices : int list;
}

let run ?(max_states = 5_000_000) m =
  let table =
    Funtbl.create ~equal:(Core.Pa.equal_state m) ~hash:(Core.Pa.hash_state m)
      1024
  in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern s =
    match Funtbl.find table s with
    | Some i -> i
    | None ->
      if !count >= max_states then raise (Too_many_states max_states);
      let i = !count in
      incr count;
      Funtbl.add table s i;
      states := s :: !states;
      Queue.add (i, s) queue;
      i
  in
  let start_indices = List.map intern (Core.Pa.start m) in
  let steps_acc = ref [] in
  (* Visitation is FIFO, so step lists are produced in index order. *)
  while not (Queue.is_empty queue) do
    let i, s = Queue.take queue in
    let steps =
      List.map
        (fun step ->
           let outcomes =
             List.map
               (fun (target, w) -> (intern target, w))
               (Proba.Dist.support step.Core.Pa.dist)
           in
           { action = step.Core.Pa.action; outcomes = Array.of_list outcomes })
        (Core.Pa.enabled m s)
    in
    steps_acc := (i, Array.of_list steps) :: !steps_acc
  done;
  let n = !count in
  let states_arr =
    match !states with
    | [] -> [||]
    | witness :: _ ->
      let arr = Array.make n witness in
      List.iteri (fun k s -> arr.(n - 1 - k) <- s) !states;
      arr
  in
  let steps_arr = Array.make n [||] in
  List.iter (fun (i, st) -> steps_arr.(i) <- st) !steps_acc;
  { pa = m; states = states_arr; table; steps = steps_arr; start_indices }

let automaton e = e.pa
let num_states e = Array.length e.states

let num_choices e =
  Array.fold_left (fun acc st -> acc + Array.length st) 0 e.steps

let num_branches e =
  Array.fold_left
    (fun acc st ->
       Array.fold_left (fun acc s -> acc + Array.length s.outcomes) acc st)
    0 e.steps

let state e i = e.states.(i)
let index e s = Funtbl.find e.table s
let start_indices e = e.start_indices
let steps e i = e.steps.(i)

let states_where e pred =
  let acc = ref [] in
  for i = Array.length e.states - 1 downto 0 do
    if pred e.states.(i) then acc := i :: !acc
  done;
  !acc

let indicator e pred =
  Array.map (fun s -> Core.Pred.mem pred s) e.states

let check_invariant e pred =
  let n = Array.length e.states in
  let rec go i =
    if i >= n then None
    else if not (pred e.states.(i)) then Some e.states.(i)
    else go (i + 1)
  in
  go 0
