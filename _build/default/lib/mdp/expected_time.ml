let expectation v outcomes =
  Array.fold_left
    (fun acc (j, w) -> acc +. (Proba.Rational.to_float w *. v.(j)))
    0.0 outcomes

let value_iterate expl ~is_tick ~finite ~target ~best ~epsilon ~max_sweeps =
  let n = Explore.num_states expl in
  let v =
    Array.init n (fun i ->
        if target.(i) then 0.0
        else if finite.(i) then 0.0
        else infinity)
  in
  let sweep () =
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      if (not target.(i)) && finite.(i) then begin
        let steps = Explore.steps expl i in
        if Array.length steps > 0 then begin
          let fresh =
            Array.fold_left
              (fun acc step ->
                 let cost = if is_tick step.Explore.action then 1.0 else 0.0 in
                 let e = cost +. expectation v step.Explore.outcomes in
                 match acc with
                 | None -> Some e
                 | Some cur -> Some (best cur e))
              None steps
            |> Option.get
          in
          let d = Float.abs (fresh -. v.(i)) in
          if d > !delta then delta := d;
          v.(i) <- fresh
        end
        else v.(i) <- infinity
      end
    done;
    !delta
  in
  let rec go k =
    if k > max_sweeps then
      failwith "Expected_time: value iteration did not converge"
    else if sweep () > epsilon then go (k + 1)
  in
  go 0;
  v

let max_expected_ticks expl ~is_tick ~target ?(epsilon = 1e-12)
    ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.always_reaches expl ~target in
  value_iterate expl ~is_tick ~finite ~target ~best:Float.max ~epsilon
    ~max_sweeps

let min_expected_ticks expl ~is_tick ~target ?(epsilon = 1e-12)
    ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.some_reaches_certainly expl ~target in
  value_iterate expl ~is_tick ~finite ~target ~best:Float.min ~epsilon
    ~max_sweeps

let max_expected_ticks_with_policy expl ~is_tick ~target
    ?(epsilon = 1e-12) ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.always_reaches expl ~target in
  let v =
    value_iterate expl ~is_tick ~finite ~target ~best:Float.max ~epsilon
      ~max_sweeps
  in
  let n = Explore.num_states expl in
  let policy =
    Array.init n (fun i ->
        if target.(i) || not finite.(i) then -1
        else begin
          let steps = Explore.steps expl i in
          if Array.length steps = 0 then -1
          else begin
            let best_k = ref 0 and best_v = ref neg_infinity in
            Array.iteri
              (fun k step ->
                 let cost =
                   if is_tick step.Explore.action then 1.0 else 0.0
                 in
                 let e = cost +. expectation v step.Explore.outcomes in
                 if e > !best_v then begin
                   best_v := e;
                   best_k := k
                 end)
              steps;
            !best_k
          end
        end)
  in
  (v, policy)
