let safe_core expl ~avoid =
  let n = Explore.num_states expl in
  if Array.length avoid <> n then
    invalid_arg "Qualitative: avoid array has wrong length";
  let s = Array.copy avoid in
  (* Greatest fixpoint: repeatedly drop states with no step staying
     surely inside [s] (terminal states stay). *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if s.(i) then begin
        let steps = Explore.steps expl i in
        let ok =
          Array.length steps = 0
          || Array.exists
            (fun step ->
               Array.for_all (fun (j, _) -> s.(j)) step.Explore.outcomes)
            steps
        in
        if not ok then begin
          s.(i) <- false;
          changed := true
        end
      end
    done
  done;
  s

let can_avoid expl ~target =
  let n = Explore.num_states expl in
  if Array.length target <> n then
    invalid_arg "Qualitative: target array has wrong length";
  let avoid = Array.map not target in
  let core = safe_core expl ~avoid in
  (* Least fixpoint: states (outside the target) from which some step
     has a positive-probability outcome already in the bad region. *)
  let bad = Array.copy core in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if (not bad.(i)) && avoid.(i) then begin
        let steps = Explore.steps expl i in
        let reaches_bad =
          Array.exists
            (fun step ->
               Array.exists (fun (j, _) -> bad.(j)) step.Explore.outcomes)
            steps
        in
        if reaches_bad then begin
          bad.(i) <- true;
          changed := true
        end
      end
    done
  done;
  bad

let always_reaches expl ~target =
  Array.map not (can_avoid expl ~target)

let some_reaches_certainly expl ~target =
  let n = Explore.num_states expl in
  if Array.length target <> n then
    invalid_arg "Qualitative: target array has wrong length";
  (* Nested fixpoint (Prob1E): outer gfp on the candidate set [s_set],
     inner lfp growing from the target through steps that stay inside
     the candidate set and touch the already-grown region. *)
  let s_set = Array.make n true in
  let outer_changed = ref true in
  while !outer_changed do
    let r = Array.copy target in
    let inner_changed = ref true in
    while !inner_changed do
      inner_changed := false;
      for i = 0 to n - 1 do
        if (not r.(i)) && s_set.(i) then begin
          let good step =
            Array.for_all (fun (j, _) -> s_set.(j)) step.Explore.outcomes
            && Array.exists (fun (j, _) -> r.(j)) step.Explore.outcomes
          in
          if Array.exists good (Explore.steps expl i) then begin
            r.(i) <- true;
            inner_changed := true
          end
        end
      done
    done;
    outer_changed := not (Array.for_all2 ( = ) s_set r);
    Array.blit r 0 s_set 0 n
  done;
  s_set
