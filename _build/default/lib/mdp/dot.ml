let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write expl ?(name = "mdp") ?(max_states = 500)
    ?(highlight = fun _ -> false) buf =
  let n = Explore.num_states expl in
  if n > max_states then
    invalid_arg
      (Printf.sprintf "Dot: %d states exceed the %d-state limit" n
         max_states);
  let pa = Explore.automaton expl in
  let state_label i =
    escape (Format.asprintf "%a" (Core.Pa.pp_state pa) (Explore.state expl i))
  in
  let action_label a =
    escape (Format.asprintf "%a" (Core.Pa.pp_action pa) a)
  in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [fontsize=10];\n";
  for i = 0 to n - 1 do
    let extra =
      if highlight (Explore.state expl i) then
        ", style=filled, fillcolor=lightgray"
      else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  s%d [label=\"%s\", shape=box%s];\n" i
         (state_label i) extra)
  done;
  for i = 0 to n - 1 do
    Array.iteri
      (fun k step ->
         match step.Explore.outcomes with
         | [| (j, _) |] ->
           (* Dirac steps go straight to the target. *)
           Buffer.add_string buf
             (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" i j
                (action_label step.Explore.action))
         | outcomes ->
           let choice = Printf.sprintf "c%d_%d" i k in
           Buffer.add_string buf
             (Printf.sprintf
                "  %s [label=\"%s\", shape=point];\n  s%d -> %s \
                 [arrowhead=none];\n"
                choice
                (action_label step.Explore.action)
                i choice);
           Array.iter
             (fun (j, w) ->
                Buffer.add_string buf
                  (Printf.sprintf "  %s -> s%d [label=\"%s\"];\n" choice j
                     (escape (Proba.Rational.to_string w))))
             outcomes)
      (Explore.steps expl i)
  done;
  Buffer.add_string buf "}\n"

let to_string expl ?name ?max_states ?highlight () =
  let buf = Buffer.create 4096 in
  write expl ?name ?max_states ?highlight buf;
  Buffer.contents buf

let to_channel expl ?name ?max_states ?highlight out =
  output_string out (to_string expl ?name ?max_states ?highlight ())
