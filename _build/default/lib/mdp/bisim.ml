module Q = Proba.Rational

(* A step signature: its (collapsed) action key together with the
   probability it assigns to each block, in canonical order. *)
type signature = (string * (int * Q.t) list) list

let step_signature ~action_key blocks (step : 'a Explore.step) =
  let tally = Hashtbl.create 8 in
  Array.iter
    (fun (j, w) ->
       let b = blocks.(j) in
       let cur = try Hashtbl.find tally b with Not_found -> Q.zero in
       Hashtbl.replace tally b (Q.add cur w))
    step.Explore.outcomes;
  let entries = Hashtbl.fold (fun b w acc -> (b, w) :: acc) tally [] in
  ( action_key step.Explore.action,
    List.sort (fun (a, _) (b, _) -> compare a b) entries )

let state_signature ~action_key blocks expl i : signature =
  let sigs =
    Array.to_list
      (Array.map (step_signature ~action_key blocks) (Explore.steps expl i))
  in
  List.sort_uniq compare sigs

let refine expl ~labels ?(action_key = fun a -> Marshal.to_string a [])
    () =
  let n = Explore.num_states expl in
  if Array.length labels <> n then
    invalid_arg "Bisim.refine: labels array has wrong length";
  (* Current partition as block ids; refine until stable. *)
  let blocks = Array.copy labels in
  let stable = ref false in
  while not !stable do
    let keys = Hashtbl.create (2 * n) in
    let fresh = ref 0 in
    let next = Array.make n 0 in
    for i = 0 to n - 1 do
      let key = (blocks.(i), state_signature ~action_key blocks expl i) in
      let b =
        match Hashtbl.find_opt keys key with
        | Some b -> b
        | None ->
          let b = !fresh in
          incr fresh;
          Hashtbl.add keys key b;
          b
      in
      next.(i) <- b
    done;
    stable := Array.for_all2 ( = ) blocks next;
    Array.blit next 0 blocks 0 n
  done;
  blocks

let num_blocks partition =
  let seen = Hashtbl.create 64 in
  Array.iter (fun b -> Hashtbl.replace seen b ()) partition;
  Hashtbl.length seen

let quotient expl partition ?(action_key = fun a -> Marshal.to_string a [])
    () =
  let n = Explore.num_states expl in
  if Array.length partition <> n then
    invalid_arg "Bisim.quotient: partition array has wrong length";
  (* One representative per block. *)
  let rep = Hashtbl.create 64 in
  for i = n - 1 downto 0 do
    Hashtbl.replace rep partition.(i) i
  done;
  let enabled b =
    match Hashtbl.find_opt rep b with
    | None -> []
    | Some i ->
      let sigs =
        state_signature ~action_key partition expl i
      in
      List.map
        (fun (key, entries) ->
           { Core.Pa.action = key;
             dist = Proba.Dist.make entries })
        sigs
  in
  let start =
    match Explore.start_indices expl with
    | i :: _ -> partition.(i)
    | [] -> invalid_arg "Bisim.quotient: no start states"
  in
  Core.Pa.make
    ~pp_state:(fun fmt b -> Format.fprintf fmt "B%d" b)
    ~pp_action:Format.pp_print_string
    ~start:[ start ] ~enabled ()
