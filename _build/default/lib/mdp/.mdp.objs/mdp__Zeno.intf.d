lib/mdp/zeno.mli: Explore
