lib/mdp/finite_horizon.ml: Array Explore Float Option Printf Proba
