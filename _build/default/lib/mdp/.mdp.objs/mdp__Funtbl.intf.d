lib/mdp/funtbl.mli:
