lib/mdp/dot.ml: Array Buffer Core Explore Format Printf Proba String
