lib/mdp/bisim.ml: Array Core Explore Format Hashtbl List Marshal Proba
