lib/mdp/funtbl.ml: Array List Stdlib
