lib/mdp/finite_horizon.mli: Explore Proba
