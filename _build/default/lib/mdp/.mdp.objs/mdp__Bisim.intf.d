lib/mdp/bisim.mli: Core Explore
