lib/mdp/qualitative.mli: Explore
