lib/mdp/qualitative.ml: Array Explore
