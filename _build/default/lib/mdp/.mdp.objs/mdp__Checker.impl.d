lib/mdp/checker.ml: Array Core Explore Finite_horizon Printf Proba
