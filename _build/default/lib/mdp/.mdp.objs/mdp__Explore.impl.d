lib/mdp/explore.ml: Array Core Funtbl List Proba Queue
