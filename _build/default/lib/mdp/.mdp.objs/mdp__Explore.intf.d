lib/mdp/explore.mli: Core Proba
