lib/mdp/zeno.ml: Array Explore List Stack Stdlib
