lib/mdp/checker.mli: Core Explore Proba
