lib/mdp/dot.mli: Explore
