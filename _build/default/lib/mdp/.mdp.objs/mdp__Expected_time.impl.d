lib/mdp/expected_time.ml: Array Explore Float Option Proba Qualitative
