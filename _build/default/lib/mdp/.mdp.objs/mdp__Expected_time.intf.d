lib/mdp/expected_time.mli: Explore
