(** Randomized leader election on an anonymous ring, in the style of
    Itai-Rodeh: a second case study for the paper's proof method
    (the paper's concluding remarks ask for exactly this kind of
    reuse).

    We model the synchronous round-based variant with one-bit
    identities (the form analyzed in the probabilistic
    model-checking literature): in every round each {e active} process
    flips a fair coin; once all active processes have flipped, the
    round resolves -- the processes that flipped 1 survive to the next
    round, unless nobody did, in which case everyone stays active.  A
    unique survivor is the leader.

    Two modelling notes (recorded as substitutions in DESIGN.md):
    - the ring circulation by which a real Itai-Rodeh process compares
      its identity with everyone else's is abstracted into an atomic
      round resolution performed by the last flip of the round; the
      probabilistic structure of which processes survive is untouched,
      and that is what the time-bound analysis exercises;
    - timing follows the same digital-clock discipline as the
      Lehmann-Rabin automaton: an active process that still owes its
      round's flip must be scheduled within one time unit, so each
      round completes within time 1 under every adversary. *)

type phase =
  | Inactive  (** lost a previous round *)
  | Need_flip of { c : int; b : int }  (** owes this round's coin *)
  | Flipped of bool  (** this round's coin, waiting for the round *)

type state = phase array

type action = Tick | Flip of int

type params = { n : int; g : int; k : int }

val is_tick : action -> bool
val duration : action -> int

(** Number of active (non-[Inactive]) processes. *)
val actives : state -> int

(** Exactly one process still active. *)
val leader_elected : state -> bool

(** [at_most k]: at most [k] processes are still active.  These are the
    rungs of the composition ladder: [at_most 1] is "a leader exists"
    (some process is always active, see {!actives}). *)
val at_most : int -> state Core.Pred.t

val make : params -> (state, action) Core.Pa.t

(** The start state: everybody active, nobody has flipped. *)
val start : params -> state
