module D = Proba.Dist

type phase =
  | Inactive
  | Need_flip of { c : int; b : int }
  | Flipped of bool

type state = phase array

type action = Tick | Flip of int

type params = { n : int; g : int; k : int }

let is_tick = function Tick -> true | Flip _ -> false
let duration a = if is_tick a then 1 else 0

let actives s =
  Array.fold_left
    (fun acc p -> if p = Inactive then acc else acc + 1)
    0 s

let leader_elected s = actives s = 1

let at_most k =
  Core.Pred.make (Printf.sprintf "at most %d active" k) (fun s ->
      actives s <= k)

let start params =
  Array.make params.n (Need_flip { c = params.g; b = params.k })

(* Round resolution, performed by the step that completes the round:
   survivors are the 1-flippers unless there is none.  Survivors start
   the next round with a fresh one-unit deadline but an exhausted slot
   budget (they flipped in the current slot), so at most one round can
   resolve per slot -- this keeps the zero-time layers acyclic. *)
let resolve params s =
  let ones = Array.exists (fun p -> p = Flipped true) s in
  Array.map
    (fun p ->
       match p with
       | Inactive -> Inactive
       | Flipped bit ->
         if (not ones) || bit then Need_flip { c = params.g; b = 0 }
         else Inactive
       | Need_flip _ -> assert false)
    s

let tick_step params s =
  let ok =
    Array.for_all (function Need_flip { c; _ } -> c > 0 | _ -> true) s
  in
  if not ok then []
  else begin
    let procs =
      Array.map
        (function
          | Need_flip { c; _ } -> Need_flip { c = c - 1; b = params.k }
          | (Inactive | Flipped _) as p -> p)
        s
    in
    [ { Core.Pa.action = Tick; dist = D.point procs } ]
  end

let flip_steps params s =
  let pending =
    Array.fold_left (fun acc p -> match p with
        | Need_flip _ -> acc + 1
        | Inactive | Flipped _ -> acc)
      0 s
  in
  let step_for i p =
    match p with
    | Need_flip { b; _ } when b > 0 ->
      let with_bit bit =
        let s' = Array.copy s in
        s'.(i) <- Flipped bit;
        (* The last flip of the round resolves it atomically. *)
        if pending = 1 then resolve params s' else s'
      in
      [ { Core.Pa.action = Flip i;
          dist = D.coin (with_bit true) (with_bit false) } ]
    | Need_flip _ | Inactive | Flipped _ -> []
  in
  List.concat (List.mapi step_for (Array.to_list s))

let enabled params s =
  if leader_elected s then
    (* Election over: only time passes (the leader is absorbing). *)
    [ { Core.Pa.action = Tick; dist = D.point s } ]
  else tick_step params s @ flip_steps params s

let make params =
  if params.n < 2 then invalid_arg "Itai_rodeh: need at least 2 processes";
  if params.g < 1 || params.k < 1 then
    invalid_arg "Itai_rodeh: granularity and budget must be >= 1";
  let pp_state fmt s =
    Array.iter
      (fun p ->
         Format.pp_print_string fmt
           (match p with
            | Inactive -> "."
            | Need_flip _ -> "?"
            | Flipped true -> "1"
            | Flipped false -> "0"))
      s
  in
  let pp_action fmt = function
    | Tick -> Format.pp_print_string fmt "tick"
    | Flip i -> Format.fprintf fmt "flip_%d" i
  in
  Core.Pa.make ~pp_state ~pp_action ~start:[ start params ]
    ~enabled:(enabled params) ()
