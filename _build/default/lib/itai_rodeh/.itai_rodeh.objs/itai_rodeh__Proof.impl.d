lib/itai_rodeh/proof.ml: Array Automaton Core Float List Mdp Printf Proba Result
