lib/itai_rodeh/proof.mli: Automaton Core Mdp Proba
