lib/itai_rodeh/automaton.ml: Array Core Format List Printf Proba
