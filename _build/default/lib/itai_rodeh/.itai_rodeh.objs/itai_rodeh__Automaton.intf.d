lib/itai_rodeh/automaton.mli: Core
