(* xoshiro256++ seeded via SplitMix64.  Both algorithms are public
   domain (Blackman & Vigna); implemented here directly on Int64. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64;
           mutable s3 : int64 }

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64 step: advances the given state cell, returns next output. *)
let splitmix_next state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^% Int64.shift_right_logical z 31

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy r = { s0 = r.s0; s1 = r.s1; s2 = r.s2; s3 = r.s3 }

let bits64 r =
  let result = rotl (r.s0 +% r.s3) 23 +% r.s0 in
  let t = Int64.shift_left r.s1 17 in
  r.s2 <- r.s2 ^% r.s0;
  r.s3 <- r.s3 ^% r.s1;
  r.s1 <- r.s1 ^% r.s2;
  r.s0 <- r.s0 ^% r.s3;
  r.s2 <- r.s2 ^% t;
  r.s3 <- rotl r.s3 45;
  result

let split r =
  let state = ref (bits64 r) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let range = Int64.of_int bound in
  let limit = Int64.sub (Int64.div 0x3FFF_FFFF_FFFF_FFFFL range) 1L in
  let threshold = Int64.mul (Int64.add limit 1L) range in
  let rec draw () =
    let v = Int64.shift_right_logical (bits64 r) 2 in
    if Int64.unsigned_compare v threshold < 0 then
      Int64.to_int (Int64.rem v range)
    else draw ()
  in
  draw ()

let float r =
  let v = Int64.shift_right_logical (bits64 r) 11 in
  Int64.to_float v *. 0x1.0p-53

let bool r = Int64.logand (bits64 r) 1L = 1L

let pick r xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int r (List.length xs))

let shuffle r xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
