lib/proba/pspace.ml: Dist Rational
