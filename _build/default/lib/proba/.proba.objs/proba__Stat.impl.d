lib/proba/stat.ml: Array Float Format Stdlib String
