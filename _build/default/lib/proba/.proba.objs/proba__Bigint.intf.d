lib/proba/bigint.mli: Format
