lib/proba/dyadic.mli: Bigint Format Rational
