lib/proba/dist.ml: Format List Printf Rational
