lib/proba/rng.mli:
