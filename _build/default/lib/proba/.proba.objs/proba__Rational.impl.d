lib/proba/rational.ml: Bigint Format List String
