lib/proba/rng.ml: Array Int64 List
