lib/proba/dyadic.ml: Bigint Float Rational Stdlib
