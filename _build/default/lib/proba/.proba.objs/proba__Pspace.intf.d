lib/proba/pspace.mli: Dist Rational
