lib/proba/rational.mli: Bigint Format
