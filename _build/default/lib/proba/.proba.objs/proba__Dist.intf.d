lib/proba/dist.mli: Format Rational
