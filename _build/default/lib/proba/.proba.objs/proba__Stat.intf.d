lib/proba/stat.mli: Format
