lib/proba/bigint.ml: Array Buffer Char Format List Printf String
