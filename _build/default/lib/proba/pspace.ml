type 'a event = 'a -> bool

let probability d e = Dist.prob d e

let inter e1 e2 x = e1 x && e2 x
let union e1 e2 x = e1 x || e2 x
let complement e x = not (e x)

let conditional d e ~given =
  let pg = probability d given in
  if Rational.is_zero pg then None
  else Some (Rational.div (probability d (inter e given)) pg)

let independent d e1 e2 =
  Rational.equal
    (probability d (inter e1 e2))
    (Rational.mul (probability d e1) (probability d e2))

let expectation = Dist.expect

let variance d f =
  let mean = expectation d f in
  let second = expectation d (fun x -> Rational.mul (f x) (f x)) in
  Rational.sub second (Rational.mul mean mean)
