(* Arbitrary-precision integers over base-2^30 little-endian limb arrays.
   The magnitude is canonical (no leading zero limbs); zero has an empty
   magnitude and sign 0.  Limb products fit in native 63-bit ints. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers.  A magnitude is a little-endian [int array] with
   limbs in [0, base) and no trailing (most-significant) zeros. *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else
      if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1)
    in
    go (la - 1)
  end

let mag_is_zero a = Array.length a = 0

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  mag_normalize r

(* Requires [mag_compare a b >= 0]. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let da = a.(i) in
    let db = if i < lb then b.(i) else 0 in
    let s = da - db - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    mag_normalize r
  end

let mag_bit_length a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n = if top lsr n = 0 then n else width (n + 1) in
    ((la - 1) * base_bits) + width 0
  end

let mag_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

(* Binary long division on magnitudes: returns (quotient, remainder).
   Magnitudes in this library stay small (a handful of limbs), so the
   O(bits * limbs) shift-and-subtract algorithm is simple and fast
   enough; its correctness is also easy to check by property tests. *)
let mag_divmod a b =
  if mag_is_zero b then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else begin
    let nbits = mag_bit_length a in
    let qlimbs = (nbits + base_bits - 1) / base_bits in
    let q = Array.make qlimbs 0 in
    (* Mutable remainder with spare room. *)
    let r = Array.make (Array.length a + 1) 0 in
    let rlen = ref 0 in
    let r_shift_in bit =
      (* r := r*2 + bit *)
      let carry = ref bit in
      for i = 0 to !rlen - 1 do
        let s = (r.(i) lsl 1) lor !carry in
        r.(i) <- s land mask;
        carry := s lsr base_bits
      done;
      if !carry <> 0 then begin r.(!rlen) <- !carry; incr rlen end
    in
    let r_ge_b () =
      let lb = Array.length b in
      if !rlen <> lb then !rlen > lb
      else begin
        let rec go i = if i < 0 then true else
          if r.(i) <> b.(i) then r.(i) > b.(i) else go (i - 1)
        in
        go (!rlen - 1)
      end
    in
    let r_sub_b () =
      let lb = Array.length b in
      let borrow = ref 0 in
      for i = 0 to !rlen - 1 do
        let db = if i < lb then b.(i) else 0 in
        let s = r.(i) - db - !borrow in
        if s < 0 then begin r.(i) <- s + base; borrow := 1 end
        else begin r.(i) <- s; borrow := 0 end
      done;
      while !rlen > 0 && r.(!rlen - 1) = 0 do decr rlen done
    in
    for i = nbits - 1 downto 0 do
      r_shift_in (mag_bit a i);
      if r_ge_b () then begin
        r_sub_b ();
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (mag_normalize q, mag_normalize (Array.sub r 0 !rlen))
  end

(* ------------------------------------------------------------------ *)
(* Construction and conversions. *)

let make sign mag =
  let mag = mag_normalize mag in
  if mag_is_zero mag then zero else { sign; mag }

let rec of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* [-min_int] overflows; go through [min_int = 2 * (min_int / 2)]. *)
    let half = of_int (n / 2) in
    { half with mag = mag_mul half.mag [| 2 |] }
  else begin
    let sign = if n < 0 then -1 else 1 in
    let u = abs n in
    if u < base then { sign; mag = [| u |] }
    else if u < base * base then { sign; mag = [| u land mask; u lsr base_bits |] }
    else
      { sign;
        mag =
          [| u land mask; (u lsr base_bits) land mask;
             u lsr (2 * base_bits) |] }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let to_int x =
  match Array.length x.mag with
  | 0 -> Some 0
  | 1 -> Some (x.sign * x.mag.(0))
  | 2 -> Some (x.sign * (x.mag.(0) lor (x.mag.(1) lsl base_bits)))
  | 3 ->
    let hi = x.mag.(2) in
    if hi lsr (62 - 2 * base_bits) <> 0 then None
    else begin
      let u =
        x.mag.(0) lor (x.mag.(1) lsl base_bits) lor (hi lsl (2 * base_bits))
      in
      if u < 0 then None else Some (x.sign * u)
    end
  | _ -> None

let to_int_exn x =
  match to_int x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: out of range"

let to_float x =
  let acc = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  float_of_int x.sign *. !acc

(* ------------------------------------------------------------------ *)
(* Comparisons. *)

let sign x = x.sign
let is_zero x = x.sign = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else a.sign * mag_compare a.mag b.mag

let equal a b = compare a b = 0

let hash x =
  Array.fold_left (fun acc limb -> (acc * 1000003) lxor limb) x.sign x.mag

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Arithmetic. *)

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = mag_divmod a.mag b.mag in
  (make (a.sign * b.sign) q, make a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_mag a b =
  if mag_is_zero b then a
  else begin
    let _, r = mag_divmod a b in
    gcd_mag b r
  end

let gcd a b = make 1 (gcd_mag (abs a).mag (abs b).mag)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
    end
  in
  go one x n

let mul_int x n = mul x (of_int n)
let add_int x n = add x (of_int n)

let bit_length x = mag_bit_length x.mag

let shift_left x k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if x.sign = 0 || k = 0 then x
  else begin
    let limbs = k / base_bits and off = k mod base_bits in
    let la = Array.length x.mag in
    let r = Array.make (la + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (x.mag.(i) lsl off) lor !carry in
      r.(i + limbs) <- v land mask;
      carry := v lsr base_bits
    done;
    r.(la + limbs) <- !carry;
    make x.sign r
  end

let shift_right x k =
  if k < 0 then invalid_arg "Bigint.shift_right: negative shift";
  if x.sign = 0 || k = 0 then x
  else begin
    let limbs = k / base_bits and off = k mod base_bits in
    let la = Array.length x.mag in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = x.mag.(i + limbs) lsr off in
        let hi =
          if off > 0 && i + limbs + 1 < la then
            (x.mag.(i + limbs + 1) lsl (base_bits - off)) land mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
      make x.sign r
    end
  end

let is_even x = Array.length x.mag = 0 || x.mag.(0) land 1 = 0

let trailing_zeros x =
  let la = Array.length x.mag in
  if la = 0 then 0
  else begin
    let limb = ref 0 in
    while x.mag.(!limb) = 0 do incr limb done;
    let v = x.mag.(!limb) in
    let rec low_bit n = if (v lsr n) land 1 = 1 then n else low_bit (n + 1) in
    (!limb * base_bits) + low_bit 0
  end

(* ------------------------------------------------------------------ *)
(* Decimal I/O. *)

let ten_9 = of_int 1_000_000_000

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks acc v =
      if v.sign = 0 then acc
      else begin
        let q, r = divmod v ten_9 in
        chunks (to_int_exn r :: acc) q
      end
    in
    match chunks [] (abs x) with
    | [] -> "0"
    | first :: rest ->
      if x.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      let add_chunk c = Buffer.add_string buf (Printf.sprintf "%09d" c) in
      List.iter add_chunk rest;
      Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then
      invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c);
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)
