(* Normalized m * 2^e with m odd (or m = 0, e = 0). *)

type t = { m : Bigint.t; e : int }

exception Not_dyadic of string

let normalize m e =
  if Bigint.is_zero m then { m = Bigint.zero; e = 0 }
  else begin
    let tz = Bigint.trailing_zeros m in
    if tz = 0 then { m; e }
    else { m = Bigint.shift_right m tz; e = e + tz }
  end

let make m e = normalize m e

let zero = { m = Bigint.zero; e = 0 }
let one = { m = Bigint.one; e = 0 }
let half = { m = Bigint.one; e = -1 }

let of_int n = normalize (Bigint.of_int n) 0

let of_rational q =
  let den = Rational.den q in
  let tz = Bigint.trailing_zeros den in
  let odd_part = Bigint.shift_right den tz in
  if not (Bigint.equal odd_part Bigint.one) then
    raise (Not_dyadic (Rational.to_string q));
  normalize (Rational.num q) (-tz)

let to_rational x =
  if x.e >= 0 then Rational.of_bigint (Bigint.shift_left x.m x.e)
  else Rational.make x.m (Bigint.shift_left Bigint.one (-x.e))

let to_float x = Bigint.to_float x.m *. Float.pow 2.0 (float_of_int x.e)

let mantissa x = x.m
let exponent x = x.e

let add a b =
  if Bigint.is_zero a.m then b
  else if Bigint.is_zero b.m then a
  else if a.e <= b.e then
    normalize (Bigint.add a.m (Bigint.shift_left b.m (b.e - a.e))) a.e
  else normalize (Bigint.add (Bigint.shift_left a.m (a.e - b.e)) b.m) b.e

let neg a = { a with m = Bigint.neg a.m }
let sub a b = add a (neg b)

let mul a b =
  if Bigint.is_zero a.m || Bigint.is_zero b.m then zero
  else { m = Bigint.mul a.m b.m; e = a.e + b.e }

let compare a b =
  let sa = Bigint.sign a.m and sb = Bigint.sign b.m in
  if sa <> sb then Stdlib.compare sa sb
  else if sa = 0 then 0
  else if a.e <= b.e then
    Bigint.compare a.m (Bigint.shift_left b.m (b.e - a.e))
  else Bigint.compare (Bigint.shift_left a.m (a.e - b.e)) b.m

let equal a b = Bigint.equal a.m b.m && (Bigint.is_zero a.m || a.e = b.e)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pp fmt x = Rational.pp fmt (to_rational x)
