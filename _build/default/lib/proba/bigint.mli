(** Arbitrary-precision signed integers.

    Implemented from scratch (zarith is not available in this environment)
    on top of base-[2^30] little-endian limb arrays, so that limb products
    fit comfortably in OCaml's native 63-bit integers.

    Values are immutable and canonical: no leading zero limbs, and zero is
    represented with an empty magnitude.  All operations are purely
    functional. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

(** [of_int n] converts a native integer exactly. *)
val of_int : int -> t

(** [to_int x] returns [Some n] if [x] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn x] is [to_int x] or raises [Failure] if out of range. *)
val to_int_exn : t -> int

(** [to_float x] converts with rounding; very large values map to
    [infinity]/[neg_infinity]. *)
val to_float : t -> float

(** [of_string s] parses an optionally ['-']-prefixed decimal numeral.
    Raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

(** [to_string x] renders a decimal numeral. *)
val to_string : t -> string

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is truncated division: [(q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] carrying the sign of [a] (or zero).
    Raises [Division_by_zero] if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

(** [pow x n] raises to a non-negative power.  Raises [Invalid_argument]
    if [n < 0]. *)
val pow : t -> int -> t

(** [mul_int x n] multiplies by a native integer. *)
val mul_int : t -> int -> t

(** [add_int x n] adds a native integer. *)
val add_int : t -> int -> t

(** {1 Bit operations} *)

(** [shift_left x k] is [x * 2^k].  Raises [Invalid_argument] on
    [k < 0]. *)
val shift_left : t -> int -> t

(** [shift_right x k] is [x / 2^k] truncated toward zero.
    Raises [Invalid_argument] on [k < 0]. *)
val shift_right : t -> int -> t

(** Is the magnitude even?  ([is_even zero = true].) *)
val is_even : t -> bool

(** Number of trailing zero bits of the magnitude; 0 for zero. *)
val trailing_zeros : t -> int

(** {1 Misc} *)

(** Number of bits in the magnitude (0 for zero). *)
val bit_length : t -> int

val pp : Format.formatter -> t -> unit
