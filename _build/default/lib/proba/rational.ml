(* Canonical rationals: positive denominator, coprime numerator. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)
let of_int n = { num = Bigint.of_int n; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let half = of_ints 1 2

let num x = x.num
let den x = x.den

let to_float x = Bigint.to_float x.num /. Bigint.to_float x.den

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let hash x = (Bigint.hash x.num * 65599) lxor Bigint.hash x.den
let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let leq a b = compare a b <= 0
let lt a b = compare a b < 0
let geq a b = compare a b >= 0
let gt a b = compare a b > 0

let neg x = { x with num = Bigint.neg x.num }
let abs x = { x with num = Bigint.abs x.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv x =
  if is_zero x then raise Division_by_zero;
  make x.den x.num

let div a b = mul a (inv b)

let pow x n =
  if n >= 0 then { num = Bigint.pow x.num n; den = Bigint.pow x.den n }
  else inv { num = Bigint.pow x.num (-n); den = Bigint.pow x.den (-n) }

let mul_int x n = mul x (of_int n)

let is_probability x = sign x >= 0 && leq x one

let sum xs = List.fold_left add zero xs

let to_string x =
  if Bigint.equal x.den Bigint.one then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let a = Bigint.of_string (String.sub s 0 i) in
    let b = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make a b
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let whole = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if frac = "" then invalid_arg "Rational.of_string: empty fraction";
       let negative = String.length whole > 0 && whole.[0] = '-' in
       let whole_v =
         if whole = "" || whole = "-" || whole = "+" then Bigint.zero
         else Bigint.of_string whole
       in
       let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
       let frac_v = Bigint.of_string frac in
       if Bigint.sign frac_v < 0 then
         invalid_arg "Rational.of_string: malformed decimal";
       let mag =
         Bigint.add (Bigint.mul (Bigint.abs whole_v) scale) frac_v
       in
       let signed = if negative then Bigint.neg mag else mag in
       make signed scale)

let pp fmt x = Format.pp_print_string fmt (to_string x)
