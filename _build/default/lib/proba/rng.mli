(** Deterministic, splittable pseudo-random number generation.

    The container this library runs in is sealed, so we avoid OS entropy
    entirely: every simulation is seeded explicitly and therefore exactly
    reproducible.  The generator is xoshiro256++ with SplitMix64 used for
    state initialization and for {!split}. *)

type t

(** [create ~seed] builds a generator deterministically from a seed. *)
val create : seed:int -> t

(** [copy rng] snapshots the generator state. *)
val copy : t -> t

(** [split rng] derives an independent generator; the parent advances.
    Use this to give each simulation trial its own stream. *)
val split : t -> t

(** [bits64 rng] draws 64 uniformly distributed bits. *)
val bits64 : t -> int64

(** [int rng bound] draws uniformly from [0, bound) without modulo bias.
    Raises [Invalid_argument] unless [bound > 0]. *)
val int : t -> int -> int

(** [float rng] draws uniformly from [0, 1) with 53 bits of precision. *)
val float : t -> float

(** [bool rng] draws a fair boolean. *)
val bool : t -> bool

(** [pick rng xs] draws a uniform element of a non-empty list. *)
val pick : t -> 'a list -> 'a

(** [shuffle rng xs] returns a uniformly random permutation. *)
val shuffle : t -> 'a list -> 'a list
