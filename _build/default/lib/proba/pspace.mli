(** Probability-space view of a finite distribution.

    The paper's model equips each step with a probability space
    [(Omega, 2^Omega, P)] with finite [Omega]; {!Dist} is the carrier,
    and this module provides the event-algebra operations one reasons
    with on top of it: event probability, conditional probability, and
    (exact) independence of events -- the notion whose failure under
    non-oblivious adversaries motivates the paper's Section 4. *)

type 'a event = 'a -> bool

(** [probability d e] is [P(e)]. *)
val probability : 'a Dist.t -> 'a event -> Rational.t

(** [conditional d e ~given] is [P(e | given)]; [None] when the
    condition has probability zero. *)
val conditional :
  'a Dist.t -> 'a event -> given:'a event -> Rational.t option

(** [independent d e1 e2]: does [P(e1 ∩ e2) = P(e1) P(e2)] hold
    exactly? *)
val independent : 'a Dist.t -> 'a event -> 'a event -> bool

(** Boolean algebra on events. *)
val inter : 'a event -> 'a event -> 'a event

val union : 'a event -> 'a event -> 'a event
val complement : 'a event -> 'a event

(** [expectation d f] of a rational random variable (alias of
    {!Dist.expect}). *)
val expectation : 'a Dist.t -> ('a -> Rational.t) -> Rational.t

(** [variance d f] = [E[f^2] - (E[f])^2], exactly. *)
val variance : 'a Dist.t -> ('a -> Rational.t) -> Rational.t
