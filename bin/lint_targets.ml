(* The lint-target table for [prtb lint]: the registry's built-in
   targets plus [example:race], which lives here because the Race
   automaton belongs to the experiments library (which depends on the
   registry, so the registry cannot reference it). *)

let lint_race ~max_states () =
  Analysis.run
    (Analysis.config ~name:"example:race"
       ~accept_terminal:(fun s ->
           s.Experiments.Race.p <> Experiments.Race.Unflipped
           && s.Experiments.Race.q <> Experiments.Race.Unflipped)
       ~max_states Experiments.Race.pa)

(* Name, what it covers, runner. *)
let all : (string * string * (max_states:int -> unit -> Analysis.Report.t)) list =
  List.map (fun e -> (e.Models.name, e.Models.doc, e.Models.lint))
    Models.entries
  @ [ ("example:race", "the Example 4.1 two-coin automaton",
       Models.guard "example:race" lint_race) ]
