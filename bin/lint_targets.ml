(* The registry of built-in lint targets for [prtb lint]: the four
   case-study automata (plus the Lehmann-Rabin line/star topologies)
   and the small example automata from examples/.

   Each target couples the automaton with the model knowledge that
   unlocks the deeper checks -- the tick classifier, which terminal
   states are intended, and the finished claims whose derivations the
   claim checks audit. *)

module Q = Proba.Rational
module D = Proba.Dist
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or

(* ------------------------------------------------------------------ *)
(* The walker of examples/quickstart.ml, registered here so the lint
   gate also covers the automaton shape the tutorial teaches. *)

module Walker = struct
  type state = Done | Walk of { c : int; b : int }
  type action = Tick | Flip

  let is_tick = function Tick -> true | Flip -> false

  let enabled = function
    | Done -> [ { Core.Pa.action = Tick; dist = D.point Done } ]
    | Walk { c; b } ->
      let tick =
        if c > 0 then
          [ { Core.Pa.action = Tick;
              dist = D.point (Walk { c = c - 1; b = 1 }) } ]
        else []
      in
      let flip =
        if b > 0 then
          [ { Core.Pa.action = Flip;
              dist = D.coin Done (Walk { c = 1; b = b - 1 }) } ]
        else []
      in
      tick @ flip

  let pa =
    Core.Pa.make
      ~pp_state:(fun fmt -> function
        | Done -> Format.pp_print_string fmt "done"
        | Walk { c; b } -> Format.fprintf fmt "walk(c=%d,b=%d)" c b)
      ~pp_action:(fun fmt a ->
          Format.pp_print_string fmt
            (match a with Tick -> "tick" | Flip -> "flip"))
      ~start:[ Walk { c = 1; b = 1 } ]
      ~enabled ()
end

(* ------------------------------------------------------------------ *)
(* Claim extraction from the proof modules *)

let lr_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.LR.Proof.label, c)) a.LR.Proof.claim)
      (LR.Proof.arrows inst)
  in
  match LR.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let lr_topo_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.LR.Proof.label, c)) a.LR.Proof.claim)
      (LR.Proof.arrows_topo inst)
  in
  match LR.Proof.composed_topo inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let ir_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.IR.Proof.label, c)) a.IR.Proof.claim)
      (IR.Proof.arrows inst)
  in
  match IR.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let sc_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.SC.Proof.label, c)) a.SC.Proof.claim)
      (SC.Proof.arrows inst)
  in
  match SC.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

(* ------------------------------------------------------------------ *)
(* Target table *)

let lint_lr ~max_states () =
  let inst = LR.Proof.build ~max_states ~n:3 () in
  Analysis.run_explored
    (Analysis.config ~name:"lr" ~is_tick:LR.Automaton.is_tick
       ~claims:(lr_claims inst) ~max_states
       (Mdp.Explore.automaton inst.LR.Proof.expl))
    inst.LR.Proof.expl

let lint_lr_topo name topo ~max_states () =
  let inst = LR.Proof.build_topo ~max_states ~topo () in
  Analysis.run_explored
    (Analysis.config ~name ~is_tick:LR.Automaton.is_tick
       ~claims:(lr_topo_claims inst) ~max_states
       (Mdp.Explore.automaton inst.LR.Proof.texpl))
    inst.LR.Proof.texpl

let lint_election ~max_states () =
  let inst = IR.Proof.build ~max_states ~n:3 () in
  Analysis.run_explored
    (Analysis.config ~name:"election" ~is_tick:IR.Automaton.is_tick
       ~claims:(ir_claims inst) ~max_states
       (Mdp.Explore.automaton inst.IR.Proof.expl))
    inst.IR.Proof.expl

let lint_coin ~max_states () =
  let inst = SC.Proof.build ~max_states ~n:2 ~bound:3 () in
  Analysis.run_explored
    (Analysis.config ~name:"coin" ~is_tick:SC.Automaton.is_tick
       ~claims:(sc_claims inst) ~max_states
       (Mdp.Explore.automaton inst.SC.Proof.expl))
    inst.SC.Proof.expl

let lint_consensus ~max_states () =
  let n = 3 and f = 1 and cap = 2 in
  let initial = Array.init n (fun i -> i = n - 1) in
  let inst = BO.Proof.build ~max_states ~n ~f ~cap ~initial () in
  let arrow =
    BO.Proof.decision_arrow inst ~rounds:cap ~prob:(Q.pow Q.half n)
  in
  let claims =
    match arrow.BO.Proof.claim with
    | Some c -> [ (arrow.BO.Proof.label, c) ]
    | None -> []
  in
  Analysis.run_explored
    (Analysis.config ~name:"consensus" ~is_tick:BO.Automaton.is_tick
       ~claims ~max_states
       (Mdp.Explore.automaton inst.BO.Proof.expl))
    inst.BO.Proof.expl

let lint_walker ~max_states () =
  Analysis.run
    (Analysis.config ~name:"example:walker" ~is_tick:Walker.is_tick
       ~max_states Walker.pa)

let lint_lr_crash ~max_states () =
  let config =
    { Faults.Lr.params = { LR.Automaton.n = 3; g = 1; k = 1 };
      faults = Faults.Fault.v ~crash:1 ();
      release = true }
  in
  let d = Faults.Lr.derive ~max_states config in
  let claims =
    List.filter_map
      (fun (a : Faults.Lr.arrow) ->
         Option.map (fun c -> (a.Faults.Lr.label, c)) a.Faults.Lr.claim)
      [ d.Faults.Lr.arrow1; d.Faults.Lr.arrow2 ]
    @ (match d.Faults.Lr.composed with
       | Ok c -> [ ("composed", c) ]
       | Error _ -> [])
  in
  Analysis.run
    (Analysis.config ~name:"lr-crash" ~is_tick:Faults.Lr.is_tick ~claims
       ~fault_view:
         (Faults.Inject.faulted,
          Faults.Inject.effective_proc Faults.Lr.proc_of_action)
       ~max_states
       (Faults.Lr.make config))

let lint_race ~max_states () =
  Analysis.run
    (Analysis.config ~name:"example:race"
       ~accept_terminal:(fun s ->
           s.Experiments.Race.p <> Experiments.Race.Unflipped
           && s.Experiments.Race.q <> Experiments.Race.Unflipped)
       ~max_states Experiments.Race.pa)

(* The proof-module builders explore eagerly, so a tight state budget
   surfaces as [Too_many_states] before [Analysis.run_explored] can
   shield it; report it as PA000 like the library does instead of
   letting the exception escape to the CLI. *)
let guard name runner ~max_states () =
  try runner ~max_states () with
  | Mdp.Explore.Too_many_states n ->
    (* At raise time exactly [n] states had been interned, so [n] is
       the partial state count, not just the configured ceiling. *)
    Analysis.Report.make
      { Analysis.Report.model = name; states = n; choices = 0;
        branches = 0;
        skipped = [ "all checks (exploration exceeded the state budget)" ] }
      [ Analysis.Diagnostic.v Analysis.Diagnostic.PA000
          Analysis.Diagnostic.Warning ~model:name
          (Printf.sprintf
             "exploration stopped after interning %d states while building \
              the model; all checks skipped (raise --max-states)"
             n) ]

(* Name, what it covers, runner. *)
let all : (string * string * (max_states:int -> unit -> Analysis.Report.t)) list =
  List.map (fun (name, doc, runner) -> (name, doc, guard name runner))
  @@
  [ ("lr", "Lehmann-Rabin ring (n=3) + Section 6.2 claims", lint_lr);
    ("lr-line", "Lehmann-Rabin line topology (n=3)",
     lint_lr_topo "lr-line" (LR.Topology.line 3));
    ("lr-star", "Lehmann-Rabin star topology (n=3)",
     lint_lr_topo "lr-star" (LR.Topology.star 3));
    ("election", "Itai-Rodeh leader election (n=3) + ladder claims",
     lint_election);
    ("coin", "shared coin (n=2, barrier 3) + ladder claims", lint_coin);
    ("consensus", "Ben-Or (n=3, f=1, 2 rounds) + decision claim",
     lint_consensus);
    ("lr-crash",
     "Lehmann-Rabin ring (n=3) under one crash + degraded claims",
     lint_lr_crash);
    ("example:walker", "the quickstart walker automaton", lint_walker);
    ("example:race", "the Example 4.1 two-coin automaton", lint_race) ]
