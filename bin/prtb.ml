(* prtb: Probabilistic Real-Time Bounds -- command-line front end.

   Subcommands:
     prtb experiments   regenerate the experiment tables (E1-E9)
     prtb check         run the exhaustive checker on a case study
     prtb simulate      Monte Carlo runs under a chosen scheduler *)

module Q = Proba.Rational
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or

open Cmdliner

(* ----------------------------------------------------------------- *)
(* --domains: session-default worker pool *)

let domains_arg =
  let pos_int =
    Arg.conv
      ( (fun s ->
           match int_of_string_opt s with
           | Some n when n >= 1 -> Ok n
           | Some _ | None -> Error (`Msg "DOMAINS must be a positive integer")),
        Format.pp_print_int )
  in
  Arg.(value & opt (some pos_int) None
       & info [ "domains" ] ~docv:"N"
           ~doc:"Run the exact engines and Monte Carlo batches on a pool \
                 of N domains.  Exact results and seeded estimates are \
                 bit-identical for every N (including 1); omitting the \
                 flag keeps the sequential legacy code path.  See \
                 docs/PERFORMANCE.md.")

let install_domains = function
  | None -> ()
  | Some n -> Parallel.Pool.set_default (Some (Parallel.Pool.create ~domains:n))

(* ----------------------------------------------------------------- *)
(* --deadline: wall allowance in milliseconds *)

let deadline_conv =
  Arg.conv
    ( (fun s ->
         match Core.Budget.parse_wall s with
         | Ok w when w > 0.0 ->
           Ok (int_of_float (Float.ceil (w *. 1000.0)))
         | Ok _ -> Error (`Msg "deadline must be positive")
         | Error e -> Error (`Msg e)),
      fun fmt ms -> Format.fprintf fmt "%dms" ms )

let deadline_arg ~doc =
  Arg.(value & opt (some deadline_conv) None
       & info [ "deadline" ] ~docv:"DUR" ~doc)

(* ----------------------------------------------------------------- *)
(* --stats: registry work accounting *)

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"After the command, print how much exploration and                  compilation work the model registry actually performed                  (CI asserts [prtb check lr --stats] reports one                  exploration and one arena compile).")

let report_stats enabled =
  if enabled then begin
    Format.printf "%a@." Models.pp_stats (Models.stats ());
    (* second line: how much exact work the interval plane proved
       skippable (all zeros when running --plane exact) *)
    Format.printf "%a@." Mdp.Plane.pp_stats (Mdp.Plane.stats ())
  end

(* ----------------------------------------------------------------- *)
(* experiments *)

let experiments_cmd =
  let profile =
    let quick =
      Arg.(value & flag
           & info [ "quick" ] ~doc:"Smaller instances (smoke test).")
    in
    let full =
      Arg.(value & flag
           & info [ "full" ]
               ~doc:"Add n=4 exhaustive checking and larger simulations \
                     (takes minutes).")
    in
    Term.(const (fun q f ->
        if f then Experiments.Harness.full
        else if q then Experiments.Harness.quick
        else Experiments.Harness.default)
          $ quick $ full)
  in
  let only =
    Arg.(value & pos_all string []
         & info [] ~docv:"ID"
             ~doc:"Experiment ids to run (e1..e13); all when omitted.")
  in
  let run domains config ids =
    install_domains domains;
    let ctx = Experiments.Harness.make_ctx config in
    let table =
      [ ("e1", Experiments.Harness.e1_arrows); ("e2", Experiments.Harness.e2_composed);
        ("e3", Experiments.Harness.e3_expected); ("e4", Experiments.Harness.e4_independence);
        ("e5", Experiments.Harness.e5_invariant); ("e6", Experiments.Harness.e6_baseline);
        ("e7", Experiments.Harness.e7_scaling); ("e8", Experiments.Harness.e8_lower_bound);
        ("e9", Experiments.Harness.e9_election);
        ("e10", Experiments.Harness.e10_topologies);
        ("e11", Experiments.Harness.e11_shared_coin);
        ("e12", Experiments.Harness.e12_consensus);
        ("e13", Experiments.Harness.e13_faults) ]
    in
    match ids with
    | [] -> Ok (Experiments.Harness.run_all ctx)
    | ids ->
      let rec go = function
        | [] -> Ok ()
        | id :: rest ->
          (match List.assoc_opt (String.lowercase_ascii id) table with
           | Some f ->
             Experiments.Harness.guarded (String.uppercase_ascii id) f ctx;
             go rest
           | None -> Error (`Msg (Printf.sprintf "unknown experiment %S" id)))
      in
      go ids
  in
  let term = Term.(term_result (const run $ domains_arg $ profile $ only)) in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's result tables (see EXPERIMENTS.md).")
    term

(* ----------------------------------------------------------------- *)
(* check *)

let n_arg ~default =
  Arg.(value & opt int default
       & info [ "n" ] ~docv:"N" ~doc:"Ring size (number of processes).")

let g_arg =
  Arg.(value & opt int 1
       & info [ "g" ] ~docv:"G"
           ~doc:"Digital-clock granularity (slots per time unit).")

let k_arg =
  Arg.(value & opt int 1
       & info [ "k" ] ~docv:"K"
           ~doc:"Adversary step budget per process per slot.")

let sym_arg =
  Arg.(value
       & opt (enum [ ("auto", Analysis.Symmetry.Auto);
                     ("on", Analysis.Symmetry.On);
                     ("off", Analysis.Symmetry.Off) ])
           Analysis.Symmetry.Off
       & info [ "sym" ] ~docv:"MODE"
           ~doc:"Orbit-reduced exploration under the model's declared \
                 symmetry group: $(b,on) verifies the generators (PA030) \
                 and the proof predicates (PA031) and explores the orbit \
                 quotient, failing if certification breaks; $(b,auto) \
                 falls back to the unreduced space instead of failing; \
                 $(b,off) (default) never reduces.  Verdicts are \
                 identical either way -- only the state count shrinks.")

let plane_arg =
  Arg.(value
       & opt (enum [ ("interval", Mdp.Plane.Interval);
                     ("exact", Mdp.Plane.Exact) ])
           Mdp.Plane.Interval
       & info [ "plane" ] ~docv:"PLANE"
           ~doc:"Probability plane the threshold engines consult first: \
                 $(b,interval) (default) sweeps outward-rounded double \
                 intervals and falls back to exact rationals only on \
                 the residue the intervals cannot decide; $(b,exact) \
                 disables the interval oracle entirely.  Verdicts and \
                 bounds are bit-identical either way -- the flag is an \
                 escape hatch and a differential-testing lever \
                 (--stats reports how much exact work was skipped).")

(* [reachable states] under a certified quotient: the representative
   count plus the full space it stands for, so logs stay comparable
   across --sym settings. *)
let print_states label count (cert : Analysis.Symmetry.certificate option) =
  match cert with
  | Some c when c.Analysis.Symmetry.reduced ->
    Printf.printf "%s: %d (orbit quotient of %d)\n%!" label count
      c.Analysis.Symmetry.full_states
  | _ -> Printf.printf "%s: %d\n%!" label count

let print_cert (cert : Analysis.Symmetry.certificate option) =
  match cert with
  | None -> ()
  | Some c ->
    Printf.printf
      "symmetry certificate: %d generator(s) verified on %d state(s), \
       %d predicate(s) invariant%s\n%!"
      (List.length c.Analysis.Symmetry.cert_generators)
      c.Analysis.Symmetry.states_checked
      (List.length c.Analysis.Symmetry.preds_checked)
      (if c.Analysis.Symmetry.reduced then " (quotient exploration)"
       else "")

let check_lr_topo topo g k sym =
  Printf.printf "Lehmann-Rabin on %s, g=%d k=%d\n%!"
    (LR.Topology.name topo) g k;
  let inst = Models.lr_topo ~topo ~g ~k ~sym () in
  print_states "reachable states"
    (Mdp.Arena.num_states inst.LR.Proof.tarena) inst.LR.Proof.tsym;
  print_cert inst.LR.Proof.tsym;
  (match LR.Proof.invariant_topo inst with
   | None ->
     Printf.printf "Lemma 6.1 (generalized): holds on every reachable state\n%!"
   | Some s -> Format.printf "Lemma 6.1 VIOLATED at %a@." LR.State.pp s);
  List.iter
    (fun a ->
       Format.printf "%-5s attained %s (%s)@." a.LR.Proof.label
         (Q.to_string a.LR.Proof.attained)
         (match a.LR.Proof.claim with Some _ -> "holds" | None -> "FAILS"))
    (LR.Proof.arrows_topo inst);
  (match LR.Proof.composed_topo inst with
   | Ok claim -> Format.printf "composed: %a@." Core.Claim.pp claim
   | Error e -> Printf.printf "composition failed: %s\n" e);
  Printf.printf "direct 13-unit minimum: %s; worst expected time: %.3f\n"
    (Q.to_string (LR.Proof.direct_bound_topo inst))
    (LR.Proof.max_expected_time_topo inst)

let check_lr n g k sym =
  Printf.printf "Lehmann-Rabin, n=%d g=%d k=%d\n%!" n g k;
  let inst = Models.lr ~n ~g ~k ~sym () in
  print_states "reachable states"
    (Mdp.Arena.num_states inst.LR.Proof.arena) inst.LR.Proof.sym;
  print_cert inst.LR.Proof.sym;
  (match LR.Invariant.check inst.LR.Proof.expl with
   | None -> Printf.printf "Lemma 6.1: holds on every reachable state\n%!"
   | Some s ->
     Format.printf "Lemma 6.1 VIOLATED at %a@." LR.State.pp s);
  List.iter
    (fun a ->
       Format.printf "%-5s %s -%s->_%s %s : attained %s (%s)@."
         a.LR.Proof.label
         (Core.Pred.name a.LR.Proof.pre)
         (Q.to_string a.LR.Proof.time) (Q.to_string a.LR.Proof.prob)
         (Core.Pred.name a.LR.Proof.post)
         (Q.to_string a.LR.Proof.attained)
         (match a.LR.Proof.claim with Some _ -> "holds" | None -> "FAILS"))
    (LR.Proof.arrows inst);
  (match LR.Proof.composed inst with
   | Ok claim ->
     Format.printf "@.composed: %a@.@.%a@." Core.Claim.pp claim
       Core.Claim.pp_derivation claim
   | Error e -> Printf.printf "composition failed: %s\n" e);
  Format.printf "@.expected-time derivation:@.%a@." Core.Expected.pp
    (LR.Proof.expected_bound ());
  Printf.printf "measured worst-case expected time: %.3f\n"
    (LR.Proof.max_expected_time inst)

let check_election n g k sym =
  ignore g; ignore k;
  Printf.printf "Leader election, n=%d\n%!" n;
  let inst = Models.election ~n ~sym () in
  print_states "reachable states"
    (Mdp.Arena.num_states inst.IR.Proof.arena) inst.IR.Proof.sym;
  print_cert inst.IR.Proof.sym;
  List.iter
    (fun a ->
       Format.printf "%-4s attained %s (%s)@." a.IR.Proof.label
         (Q.to_string a.IR.Proof.attained)
         (match a.IR.Proof.claim with Some _ -> "holds" | None -> "FAILS"))
    (IR.Proof.arrows inst);
  (match IR.Proof.composed inst with
   | Ok claim -> Format.printf "composed: %a@." Core.Claim.pp claim
   | Error e -> Printf.printf "composition failed: %s\n" e);
  Printf.printf "expected bound: %s; measured worst case: %.3f\n"
    (Q.to_string (Core.Expected.value (IR.Proof.expected_bound ~n)))
    (IR.Proof.max_expected_time inst)

let check_coin n bound sym =
  Printf.printf "Shared coin, n=%d barrier=±%d\n%!" n bound;
  let inst = Models.coin ~n ~bound ~sym () in
  print_states "reachable states"
    (Mdp.Arena.num_states inst.SC.Proof.arena) inst.SC.Proof.sym;
  print_cert inst.SC.Proof.sym;
  List.iter
    (fun a ->
       Format.printf "%-4s attained %s (%s)@." a.SC.Proof.label
         (Q.to_string a.SC.Proof.attained)
         (match a.SC.Proof.claim with Some _ -> "holds" | None -> "FAILS"))
    (SC.Proof.arrows inst);
  (match SC.Proof.composed inst with
   | Ok claim -> Format.printf "composed: %a@." Core.Claim.pp claim
   | Error e -> Printf.printf "composition failed: %s\n" e);
  Printf.printf
    "direct minimum within %d: %s\nexpected time: exact %.3f vs B^2/n = \
     %.3f\n"
    bound
    (Q.to_string (SC.Proof.direct_bound inst))
    (SC.Proof.expected_exact inst)
    (SC.Proof.expected_theory inst)

let check_lr_faults n g k faults budget release seed =
  Printf.printf
    "Lehmann-Rabin, n=%d g=%d k=%d, faults %s, release=%b, budget %s\n%!"
    n g k (Faults.Fault.to_string faults) release
    (Core.Budget.to_string budget);
  let config =
    { Faults.Lr.params = { LR.Automaton.n; g; k }; faults; release }
  in
  let verdict = Faults.Lr.check_budgeted ~budget ~seed config in
  Format.printf "T∧live -13->_{1/8} C∧live:@.  %a@."
    Faults.Resilient.pp_verdict verdict;
  match verdict with
  | Faults.Resilient.Estimate _ | Faults.Resilient.Exhausted _ -> ()
  | Faults.Resilient.Exact _ ->
    (* The whole wrapped space fit the budget, so the two-arrow
       derivation (same exploration, two more backward inductions) is
       affordable; show the degraded constants it certifies. *)
    let d =
      Faults.Lr.derive ?max_states:budget.Core.Budget.max_states config
    in
    Printf.printf "degraded derivation over %d states:\n"
      d.Faults.Lr.states;
    List.iter
      (fun (a : Faults.Lr.arrow) ->
         Format.printf "  %-28s attained %s (%s)@." a.Faults.Lr.label
           (Q.to_string a.Faults.Lr.attained)
           (match a.Faults.Lr.claim with
            | Some _ -> "certified at that bound"
            | None -> "NOT certified"))
      [ d.Faults.Lr.arrow1; d.Faults.Lr.arrow2 ];
    (match d.Faults.Lr.composed with
     | Ok claim -> Format.printf "  composed: %a@." Core.Claim.pp claim
     | Error e -> Printf.printf "  composition failed: %s\n" e);
    Printf.printf "  direct 13-unit minimum: %s\n"
      (Q.to_string d.Faults.Lr.direct)

let check_consensus n cap sym =
  let f = (n - 1) / 2 in
  let initial = Array.init n (fun i -> i = n - 1) in
  Printf.printf "Ben-Or consensus, n=%d f=%d cap=%d rounds, mixed start\n%!"
    n f cap;
  let inst = BO.Proof.build ~n ~f ~cap ~initial ~sym () in
  print_states "reachable states"
    (Mdp.Explore.num_states inst.BO.Proof.expl) inst.BO.Proof.sym;
  print_cert inst.BO.Proof.sym;
  Printf.printf "agreement: %s\n"
    (match BO.Proof.agreement_violation inst with
     | None -> "holds" | Some _ -> "VIOLATED");
  List.iteri
    (fun idx q ->
       Printf.printf "min P[decided within %d round(s)] = %s\n" (idx + 1)
         (Q.to_string q))
    (BO.Proof.decision_curve inst
       ~rounds:(List.init cap (fun r -> r + 1)))

let system_arg =
  let parse = function
    | "lr" | "lehmann-rabin" | "dining" -> Ok `Lr
    | "election" | "itai-rodeh" -> Ok `Election
    | "coin" | "shared-coin" -> Ok `Coin
    | "consensus" | "ben-or" -> Ok `Consensus
    | s -> Error (`Msg (Printf.sprintf "unknown system %S" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
       | `Lr -> "lr" | `Election -> "election" | `Coin -> "coin"
       | `Consensus -> "consensus")
  in
  Arg.(required
       & pos 0 (some (conv (parse, print))) None
       & info [] ~docv:"SYSTEM"
           ~doc:"lr (dining philosophers), election, coin, or consensus.")

let topology_arg =
  Arg.(value & opt (some string) None
       & info [ "topology" ] ~docv:"SHAPE"
           ~doc:"For lr: ring (default), line, or star.")

let bound_arg =
  Arg.(value & opt int 4
       & info [ "bound" ] ~docv:"B" ~doc:"For coin: the decision barrier.")

let cap_arg =
  Arg.(value & opt int 2
       & info [ "cap" ] ~docv:"R"
           ~doc:"For consensus: number of rounds modelled.")

let faults_arg =
  let fault_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun e -> `Msg e) (Faults.Fault.of_string s)),
        Faults.Fault.pp )
  in
  Arg.(value & opt (some fault_conv) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Fault budget to inject, e.g. crash:1 or crash:1,loss:2 \
                 (kinds: crash, loss, stuck).  Currently modelled for the \
                 lr ring; re-derives the degraded time bound.")

let budget_arg =
  let budget_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun e -> `Msg e) (Core.Budget.of_string s)),
        Core.Budget.pp )
  in
  Arg.(value & opt (some budget_conv) None
       & info [ "budget" ] ~docv:"SPEC"
           ~doc:"Verification budget, e.g. states:100000,wall:30s,retries:4. \
                 When exact exploration does not fit, the checker degrades \
                 to a Monte Carlo estimate instead of failing.")

let release_arg =
  Arg.(value & opt bool true
       & info [ "release" ] ~docv:"BOOL"
           ~doc:"Whether crashed processes free their held resources \
                 (default true).  With --release=false a crashed \
                 philosopher keeps its forks and the degraded bound \
                 collapses to 0.")

let check_seed_arg =
  Arg.(value & opt int 1994
       & info [ "seed" ] ~docv:"S"
           ~doc:"PRNG seed for the Monte Carlo fallback.")

let check_format_arg =
  Arg.(value
       & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format.  $(b,json) prints exactly the body \
                 $(b,prtb serve) answers on /check for the same \
                 parameters (byte for byte); $(b,text) is the \
                 human-readable report.")

let plane_to_string = function
  | Mdp.Plane.Interval -> "interval"
  | Mdp.Plane.Exact -> "exact"

(* The served and CLI JSON bodies are bit-identical because both print
   [Server.Service.check_json] (and [cert_json] for certificates);
   test/test_server.ml holds the two byte-for-byte equal. *)
let cli_check_query system n g k topology bound cap sym plane deadline =
  let topology = Option.value topology ~default:"ring" in
  (match system, topology with
   | `Lr, ("ring" | "line" | "star") -> ()
   | `Lr, other -> failwith (Printf.sprintf "unknown topology %S" other)
   | _, "ring" -> ()
   | _, other ->
     failwith (Printf.sprintf "topology %S applies to the lr system only" other));
  { Server.Protocol.model = system; n; g; k; topology; bound; cap;
    max_states = None; sym = Analysis.Symmetry.mode_to_string sym;
    plane = plane_to_string plane;
    deadline_ms = deadline }

let check_json system n g k topology bound cap sym plane deadline =
  let q = cli_check_query system n g k topology bound cap sym plane deadline in
  print_endline (Analysis.Json.to_string (Server.Service.check_json q))

(* --emit-cert prints the /cert body.  A non-certificate header
   (uncertified, exhausted, ...) still prints -- same bytes the server
   would serve -- but exits nonzero so scripts cannot mistake it for a
   certificate. *)
let emit_cert_json system n g k topology bound cap sym plane deadline =
  let q = cli_check_query system n g k topology bound cap sym plane deadline in
  let body = Server.Service.cert_json q in
  print_endline (Analysis.Json.to_string body);
  match body with
  | Analysis.Json.Obj fields
    when List.mem_assoc "verdict" fields ->
    failwith "no certificate was emitted (see the body's verdict field)"
  | _ -> ()

(* Text mode arms the same ambient deadline the server uses; when the
   engines' poll points cut the run mid-sweep we print a structured
   degraded verdict and exit 0, mirroring the served SRV122 body. *)
let under_cli_deadline deadline f =
  match deadline with
  | None -> f ()
  | Some ms ->
    let clock =
      Core.Budget.start
        (Core.Budget.v ~wall:(float_of_int ms /. 1000.0) ())
    in
    (match Core.Budget.with_deadline clock f with
     | () -> ()
     | exception Core.Budget.Deadline_exceeded reason ->
       Printf.printf
         "verdict: deadline-exceeded (SRV122, deadline_ms=%d)\n\
          %s\n\
          the exact verification was abandoned mid-sweep; raise \
          --deadline for the exact verdict\n"
         ms reason)

let emit_cert_arg =
  Arg.(value & flag
       & info [ "emit-cert" ]
           ~doc:"Instead of a report, print the proof certificate: the \
                 composed claim's whole derivation as a versioned DAG \
                 whose leaves carry the arena fingerprint and the full \
                 configuration (exactly the body $(b,prtb serve) answers \
                 on /cert, byte for byte).  Feed it to $(b,prtb \
                 verify-cert).  Incompatible with --faults.")

let check_cmd =
  let run domains stats format plane emit_cert system n g k topology bound
      cap sym faults budget release seed deadline =
    install_domains domains;
    Mdp.Plane.set_default plane;
    try
      Ok
        ((match format, emit_cert, faults with
         | _, true, Some _ ->
           failwith "--emit-cert does not cover --faults runs; drop one"
         | _, true, None ->
           emit_cert_json system n g k topology bound cap sym plane deadline
         | `Json, false, Some _ ->
           failwith "--format json does not cover --faults runs; drop one"
         | `Json, false, None ->
           check_json system n g k topology bound cap sym plane deadline
         | `Text, false, _ ->
           under_cli_deadline deadline @@ fun () ->
           match system with
         | `Lr ->
           (match faults, topology with
            | Some f, (None | Some "ring") ->
              check_lr_faults n g k f
                (Option.value budget ~default:Core.Budget.unlimited)
                release seed
            | Some _, Some other ->
              failwith
                (Printf.sprintf
                   "fault injection is modelled on the ring topology only \
                    (got %S)" other)
            | None, (None | Some "ring") -> check_lr n g k sym
            | None, Some "line" -> check_lr_topo (LR.Topology.line n) g k sym
            | None, Some "star" -> check_lr_topo (LR.Topology.star n) g k sym
            | None, Some other ->
              failwith (Printf.sprintf "unknown topology %S" other))
         | `Election | `Coin | `Consensus when faults <> None ->
           failwith
             "fault injection is currently modelled for the lr system only"
         | `Election -> check_election n g k sym
         | `Coin -> check_coin n bound sym
         | `Consensus -> check_consensus n cap sym);
         report_stats stats)
    with
    | Failure msg -> Error (`Msg msg)
    | Analysis.Symmetry.Not_certified msg ->
      Error
        (`Msg
           (Printf.sprintf
              "--sym on: the declared symmetry group failed to certify:\n%s"
              msg))
    | Mdp.Explore.Too_many_states m ->
      Error
        (`Msg
           (Printf.sprintf
              "exploration stopped after interning %d states; rerun with \
               --faults ... --budget states:N,wall:Ts to degrade gracefully \
               to a Monte Carlo estimate"
              m))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Exhaustively verify the phase statements of a case study; \
             with --faults, re-derive the degraded bound under an exact \
             fault budget, falling back to simulation when --budget is \
             exceeded.")
    Term.(term_result
            (const run $ domains_arg $ stats_arg $ check_format_arg
             $ plane_arg $ emit_cert_arg
             $ system_arg $ n_arg ~default:3 $ g_arg $ k_arg $ topology_arg
             $ bound_arg $ cap_arg $ sym_arg $ faults_arg $ budget_arg
             $ release_arg $ check_seed_arg
             $ deadline_arg
                 ~doc:"Wall deadline for the whole check, e.g. 50ms or \
                       2s.  When it fires mid-sweep the command prints a \
                       structured deadline-exceeded verdict (the JSON \
                       format answers the same SRV122 body $(b,prtb \
                       serve) would) and exits 0."))

(* ----------------------------------------------------------------- *)
(* verify-cert *)

let verify_cert_cmd =
  let run file =
    let body =
      try
        if file = "-" then In_channel.input_all stdin
        else In_channel.with_open_bin file In_channel.input_all
      with Sys_error msg -> (
        Printf.eprintf "error: %s\n%!" msg;
        exit 1)
    in
    match Cert.Node.of_string body with
    | Error msg ->
      Printf.eprintf "invalid certificate: %s\n%!" msg;
      exit 1
    | Ok cert ->
      (match Cert.Verify.run cert with
       | Error e ->
         Printf.eprintf "invalid certificate: %s\n%!"
           (Cert.Verify.error_to_string e);
         exit 1
       | Ok s ->
         Printf.printf
           "certificate: OK (model %s, digest %s)\n\
            claim: %s\n\
            nodes: %d (%d checked leaves, %d assumptions)\n\
            fully verified: %s\n"
           cert.Cert.Node.model cert.Cert.Node.digest s.Cert.Verify.root_claim
           s.Cert.Verify.nodes s.Cert.Verify.leaves s.Cert.Verify.axioms
           (if s.Cert.Verify.fully_verified then "yes"
            else "no (assumption leaves remain)");
         Ok ())
  in
  let file_arg =
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Certificate file as printed by $(b,prtb check \
                   --emit-cert) or served on /cert; $(b,-) reads stdin.")
  in
  Cmd.v
    (Cmd.info "verify-cert"
       ~doc:"Independently re-check a proof certificate without \
             re-exploring any state space: recompute every node hash and \
             the certificate digest, and re-run the arithmetic and side \
             conditions of every rule application (composition, union, \
             weakening) with a second implementation of the paper's \
             rules.  Exits 1 naming the failing node on any mismatch -- \
             a single flipped byte anywhere in the DAG is detected.")
    Term.(term_result (const run $ file_arg))

(* ----------------------------------------------------------------- *)
(* compile *)

(* [prtb compile] uses the same registry builders the server uses for
   the same query, so the snapshotted arena (and its fingerprint) is
   bit-identical to what [prtb serve] would compile on demand.  The
   consensus conventions mirror lib/server/service.ml: f = (n-1)/2 and
   a mixed start with exactly one process estimating 1. *)
let compile_cmd =
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Snapshot file to write (conventionally $(b,.prtba)); \
                   written atomically via a temp file + rename.")
  in
  let max_states =
    Arg.(value & opt (some int) None
         & info [ "max-states" ] ~docv:"N"
             ~doc:"Exploration ceiling while compiling.  Part of the \
                   registry key: give $(b,prtb serve --snapshot-dir) \
                   workers the same --max-states or the preloaded entry \
                   is keyed correctly anyway (the daemon's ceiling is \
                   applied at preload time).")
  in
  let run domains stats system n g k topology bound cap sym max_states
      output =
    install_domains domains;
    try
      let topology = Option.value topology ~default:"ring" in
      (match system, topology with
       | `Lr, ("ring" | "line" | "star") -> ()
       | `Lr, other -> failwith (Printf.sprintf "unknown topology %S" other)
       | _, "ring" -> ()
       | _, other ->
         failwith
           (Printf.sprintf "topology %S applies to the lr system only" other));
      let base =
        { Snapshot.Store.model = "lr"; n; g; k; topology; bound = 0;
          cap = 0; f = 0; initial = [||]; sym }
      in
      let config, loaded =
        match system with
        | `Lr when topology = "ring" ->
          (base, Snapshot.Store.Lr (Models.lr ?max_states ~g ~k ~sym ~n ()))
        | `Lr ->
          let topo =
            if topology = "line" then LR.Topology.line n
            else LR.Topology.star n
          in
          ( base,
            Snapshot.Store.Lr_topo
              (Models.lr_topo ?max_states ~g ~k ~sym ~topo ()) )
        | `Election ->
          ( { base with Snapshot.Store.model = "election" },
            Snapshot.Store.Election
              (Models.election ?max_states ~g ~k ~sym ~n ()) )
        | `Coin ->
          ( { base with Snapshot.Store.model = "coin"; bound },
            Snapshot.Store.Coin
              (Models.coin ?max_states ~g ~k ~sym ~n ~bound ()) )
        | `Consensus ->
          let f = (n - 1) / 2 in
          let initial = Array.init n (fun i -> i = n - 1) in
          ( { base with Snapshot.Store.model = "consensus"; cap; f; initial },
            Snapshot.Store.Consensus
              (Models.consensus ?max_states ~g ~k ~sym ~n ~f ~cap ~initial
                 ()) )
      in
      Snapshot.Store.save ~path:output config loaded;
      Printf.printf "wrote %s: %s\n" output
        (Snapshot.Store.describe config loaded);
      report_stats stats;
      Ok ()
    with
    | Failure msg | Sys_error msg -> Error (`Msg msg)
    | Analysis.Symmetry.Not_certified msg ->
      Error
        (`Msg
           (Printf.sprintf
              "--sym on: the declared symmetry group failed to certify:\n%s"
              msg))
    | Mdp.Explore.Too_many_states m ->
      Error
        (`Msg
           (Printf.sprintf
              "exploration stopped after interning %d states; raise \
               --max-states"
              m))
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Explore and compile a case-study instance, then serialize \
             the compiled arena -- CSR transitions, interned states, \
             tick mask, exact probability plane, structural fingerprint \
             and the full configuration -- as a versioned $(b,.prtba) \
             snapshot.  $(b,prtb serve --snapshot-dir) preloads such \
             snapshots at startup and answers the first matching query \
             with no exploration and no compile (see docs/SNAPSHOTS.md).")
    Term.(term_result
            (const run $ domains_arg $ stats_arg $ system_arg
             $ n_arg ~default:3 $ g_arg $ k_arg $ topology_arg $ bound_arg
             $ cap_arg $ sym_arg $ max_states $ output))

(* ----------------------------------------------------------------- *)
(* simulate *)

let simulate domains system n scheduler trials seed within =
  install_domains domains;
  match system with
  | `Lr ->
    let params = { LR.Automaton.n; g = 1; k = 1 } in
    let pa = LR.Automaton.make params in
    let sched =
      match List.assoc_opt scheduler (LR.Schedulers.all pa) with
      | Some s -> s
      | None -> failwith (Printf.sprintf "unknown scheduler %S" scheduler)
    in
    let setup =
      { Sim.Monte_carlo.pa; scheduler = sched;
        duration = LR.Automaton.duration;
        start = LR.State.all_trying ~n ~g:1 ~k:1 }
    in
    let target = Core.Pred.mem LR.Regions.c in
    (match within with
     | Some t ->
       let prop =
         Sim.Monte_carlo.estimate_reach setup ~target ~within:t ~trials ~seed
       in
       let lo, hi = Proba.Stat.Proportion.wilson_ci prop in
       Printf.printf
         "P[some process critical within %d] ~ %.4f  (95%% CI [%.4f, %.4f], \
          %d trials, scheduler %s)\n"
         t
         (Proba.Stat.Proportion.estimate prop)
         lo hi trials scheduler
     | None ->
       let summary, missed =
         Sim.Monte_carlo.estimate_time setup ~target ~trials ~seed ()
       in
       let lo, hi = Proba.Stat.Summary.mean_ci summary in
       Printf.printf
         "E[time to critical] ~ %.3f  (95%% CI [%.3f, %.3f], %d trials, %d \
          missed, scheduler %s; paper bound 63)\n"
         (Proba.Stat.Summary.mean summary)
         lo hi trials missed scheduler)
  | `Consensus ->
    let f = (n - 1) / 2 in
    let params = { BO.Automaton.n; f; cap = 50; g = 1; k = 1 } in
    let initial = Array.init n (fun i -> i = n - 1) in
    let pa = BO.Automaton.make ~initial params in
    let setup =
      { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
        duration = BO.Automaton.duration;
        start = BO.Automaton.start params initial }
    in
    ignore within;
    let summary, missed =
      Sim.Monte_carlo.estimate_time setup ~target:BO.Automaton.some_decided
        ~trials ~seed ()
    in
    Printf.printf
      "E[decision time] ~ %.3f  (%d trials, %d missed; mixed start, \
       uniform scheduler)\n"
      (Proba.Stat.Summary.mean summary) trials missed
  | `Coin ->
    let params = { SC.Automaton.n; bound = 4; g = 1; k = 1 } in
    let pa = SC.Automaton.make params in
    let setup =
      { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
        duration = SC.Automaton.duration; start = SC.Automaton.start params }
    in
    let summary, missed =
      Sim.Monte_carlo.estimate_time setup
        ~target:(SC.Automaton.decided params) ~trials ~seed ()
    in
    ignore within;
    Printf.printf
      "E[decision time] ~ %.3f  (%d trials, %d missed; B^2/n = %.3f)\n"
      (Proba.Stat.Summary.mean summary)
      trials missed
      (SC.Proof.theory params)
  | `Election ->
    let params = { IR.Automaton.n; g = 1; k = 1 } in
    let pa = IR.Automaton.make params in
    let setup =
      { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
        duration = IR.Automaton.duration; start = IR.Automaton.start params }
    in
    let summary, missed =
      Sim.Monte_carlo.estimate_time setup ~target:IR.Automaton.leader_elected
        ~trials ~seed ()
    in
    Printf.printf
      "E[election time] ~ %.3f  (%d trials, %d missed; derived bound %d)\n"
      (Proba.Stat.Summary.mean summary)
      trials missed
      (2 * (n - 1))

let simulate_cmd =
  let scheduler =
    Arg.(value & opt string "uniform"
         & info [ "scheduler" ] ~docv:"NAME"
             ~doc:"uniform, eager, delayer or starver (lr only).")
  in
  let trials =
    Arg.(value & opt int 2000
         & info [ "trials" ] ~docv:"T" ~doc:"Number of Monte Carlo trials.")
  in
  let seed =
    Arg.(value & opt int 1994 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let within =
    Arg.(value & opt (some int) None
         & info [ "within" ] ~docv:"TIME"
             ~doc:"Estimate P[reach within TIME] instead of expected time.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte Carlo estimation on large rings.")
    Term.(const simulate $ domains_arg $ system_arg $ n_arg ~default:8
          $ scheduler $ trials $ seed $ within)

(* ----------------------------------------------------------------- *)
(* export-dot *)

let export_dot system n bound output =
  let write arena highlight =
    let dot = Mdp.Dot.to_string arena ~max_states:2000 ~highlight () in
    match output with
    | None -> print_string dot
    | Some path ->
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s (%d states)\n" path
        (Mdp.Arena.num_states arena)
  in
  match system with
  | `Lr ->
    let inst = Models.lr ~n () in
    write inst.LR.Proof.arena (Core.Pred.mem LR.Regions.c)
  | `Election ->
    let inst = Models.election ~n () in
    write inst.IR.Proof.arena IR.Automaton.leader_elected
  | `Coin ->
    let inst = Models.coin ~n ~bound () in
    write inst.SC.Proof.arena (SC.Automaton.decided inst.SC.Proof.params)
  | `Consensus ->
    let f = (n - 1) / 2 in
    let inst =
      Models.consensus ~n ~f ~cap:1 ~initial:(Array.make n false) ()
    in
    write inst.BO.Proof.arena BO.Automaton.some_decided

let export_dot_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "export-dot"
       ~doc:"Export a small instance's MDP as a Graphviz graph \
             (target states highlighted).")
    Term.(const export_dot $ system_arg $ n_arg ~default:2 $ bound_arg
          $ output)

(* ----------------------------------------------------------------- *)
(* lint *)

let lint stats models format strict max_states sym =
  let targets =
    match models with
    | [] -> Ok Models.entries
    | names ->
      let rec pick acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest ->
          (match Models.find_opt name with
           | Some t -> pick (t :: acc) rest
           | None ->
             Error
               (`Msg
                  (Printf.sprintf "unknown lint target %S (try one of: %s)"
                     name
                     (String.concat ", "
                        (List.map (fun e -> e.Models.name) Models.entries)))))
      in
      pick [] names
  in
  match targets with
  | Error _ as e -> e
  | Ok targets ->
    let report =
      Analysis.Report.merge_all
        (List.map (fun e -> e.Models.lint ~max_states ~sym ()) targets)
    in
    (match format with
     | `Text -> Format.printf "@[<v>%a@]@." Analysis.Report.pp_text report
     | `Json ->
       print_endline (Analysis.Json.to_string (Analysis.Report.to_json report)));
    report_stats stats;
    exit (Analysis.Report.exit_code ~strict report)

let lint_cmd =
  let models =
    Arg.(value & pos_all string []
         & info [] ~docv:"MODEL"
             ~doc:(Printf.sprintf
                     "Lint targets (all when omitted): %s."
                     (String.concat ", "
                        (List.map (fun e -> e.Models.name) Models.entries))))
  in
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: text (human-readable) or json (for CI).")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit nonzero on warnings too, not only on errors.")
  in
  let max_states =
    Arg.(value & opt int 2_000_000
         & info [ "max-states" ] ~docv:"N"
             ~doc:"Exploration bound per model (PA000 when exceeded).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify model well-formedness: probability spaces, \
             equality/hash coherence, deadlocks, action signatures, \
             zero-time cycles, tick divergence, and claim-composition \
             premises.  Exit status is nonzero when any error-severity \
             diagnostic fires (see docs/LINTS.md for the code catalogue).")
    Term.(term_result
            (const lint $ stats_arg $ models $ format $ strict $ max_states
             $ sym_arg))

(* ----------------------------------------------------------------- *)
(* serve *)

let serve_cmd =
  let d = Server.Daemon.default_config in
  let port =
    Arg.(value & opt int d.Server.Daemon.port
         & info [ "port" ] ~docv:"P"
             ~doc:"TCP port to listen on (0 picks a free one; the banner \
                   prints it).")
  in
  let host =
    Arg.(value & opt string d.Server.Daemon.host
         & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let domains =
    Arg.(value & opt int d.Server.Daemon.domains
         & info [ "domains" ] ~docv:"N"
             ~doc:"Total domains: one accept loop plus N-1 workers \
                   (minimum 2).")
  in
  let cache_mb =
    Arg.(value & opt int d.Server.Daemon.cache_mb
         & info [ "cache-mb" ] ~docv:"M"
             ~doc:"Capacity of the compiled-arena registry cache and of \
                   the finished-result cache, M MiB each.")
  in
  let accept_queue =
    Arg.(value & opt int d.Server.Daemon.accept_queue
         & info [ "accept-queue" ] ~docv:"Q"
             ~doc:"Accepted connections allowed to wait for a worker \
                   before new ones are answered 503.")
  in
  let max_states =
    Arg.(value & opt int d.Server.Daemon.max_states
         & info [ "max-states" ] ~docv:"N"
             ~doc:"Per-request exploration ceiling; hostile queries get a \
                   structured \"exhausted\" verdict instead of a wedged \
                   worker.")
  in
  let degraded_after =
    Arg.(value & opt float d.Server.Daemon.degraded_after
         & info [ "degraded-after" ] ~docv:"SECS"
             ~doc:"Age of the oldest in-flight request beyond which \
                   /health reports \"degraded\" instead of \"ok\".")
  in
  let snapshot_dir =
    Arg.(value & opt (some string) None
         & info [ "snapshot-dir" ] ~docv:"DIR"
             ~doc:"Preload every $(b,*.prtba) arena snapshot in DIR \
                   (written by $(b,prtb compile)) into the model \
                   registry before accepting connections, so the first \
                   query for a snapshotted instance is a registry hit \
                   -- /stats reports explorations: 0, compiles: 0.  \
                   Stale or tampered snapshots are refused with a \
                   warning and the daemon still starts.")
  in
  let run host port domains cache_mb accept_queue max_states deadline
      degraded_after snapshot_dir =
    if domains < 2 then
      Error (`Msg "serve needs --domains >= 2 (one accepts, the rest work)")
    else begin
      Server.Daemon.run
        { d with Server.Daemon.host; port; domains; cache_mb; accept_queue;
          max_states; deadline_ms = deadline; degraded_after; snapshot_dir };
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent verification service: an HTTP daemon \
             answering /check, /simulate, /lint, /stats and /health from \
             a pool of worker domains, with LRU caching of compiled \
             arenas and finished results (see docs/SERVER.md).  SIGTERM \
             drains accepted connections and exits 0.")
    Term.(term_result
            (const run $ host $ port $ domains $ cache_mb $ accept_queue
             $ max_states
             $ deadline_arg
                 ~doc:"Server-side default deadline applied to every \
                       compute request, e.g. 500ms.  A client \
                       deadline_ms can only tighten it; on expiry the \
                       request is answered with the degraded SRV122 \
                       body instead of running to completion."
             $ degraded_after $ snapshot_dir))

(* ----------------------------------------------------------------- *)
(* route *)

(* A loopback TCP port the kernel just handed out.  Closing before the
   child binds leaves a tiny race window, which is fine for the smoke
   fleets this spawns; production fleets pass --backends. *)
let free_port () =
  let s = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
       match Unix.getsockname s with
       | Unix.ADDR_INET (_, p) -> p
       | Unix.ADDR_UNIX _ -> assert false)

(* Poll a backend's /health until it answers 200 (snapshot preloading
   happens before the daemon listens, so this also waits that out). *)
let wait_ready ~timeout_s url =
  match Server.Load.parse_url url with
  | Error e -> failwith e
  | Ok u ->
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec poll () =
      let conn = Server.Load.Conn.create u in
      let answer = Server.Load.Conn.request conn "/health" in
      Server.Load.Conn.close conn;
      match answer with
      | Ok r when r.Server.Http.status = 200 -> ()
      | Ok _ | Error _ ->
        if Unix.gettimeofday () > deadline then
          failwith
            (Printf.sprintf "backend %s did not become healthy within %.0fs"
               url timeout_s)
        else begin
          Unix.sleepf 0.1;
          poll ()
        end
    in
    poll ()

let route_cmd =
  let d = Server.Route.default_config in
  let port =
    Arg.(value & opt int d.Server.Route.port
         & info [ "port" ] ~docv:"P"
             ~doc:"TCP port the router listens on (0 picks a free one).")
  in
  let host =
    Arg.(value & opt string d.Server.Route.host
         & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let domains =
    Arg.(value & opt int d.Server.Route.domains
         & info [ "domains" ] ~docv:"N"
             ~doc:"Forwarding worker domains (minimum 2).")
  in
  let replicas =
    Arg.(value & opt int d.Server.Route.replicas
         & info [ "replicas" ] ~docv:"V"
             ~doc:"Virtual nodes per backend on the hash ring.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"K"
             ~doc:"Without --backends: spawn K $(b,prtb serve) worker \
                   daemons on free loopback ports and front them; they \
                   are SIGTERMed and reaped when the router exits.")
  in
  let backends =
    Arg.(value & opt (some string) None
         & info [ "backends" ] ~docv:"URLS"
             ~doc:"Comma-separated $(b,prtb serve) URLs to front \
                   (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082) \
                   instead of spawning workers.")
  in
  let snapshot_dir =
    Arg.(value & opt (some string) None
         & info [ "snapshot-dir" ] ~docv:"DIR"
             ~doc:"Forwarded to every spawned worker's --snapshot-dir \
                   (ignored with --backends).")
  in
  let run host port domains replicas workers backends snapshot_dir =
    if domains < 2 then Error (`Msg "route needs --domains >= 2")
    else if replicas < 1 then Error (`Msg "--replicas must be positive")
    else
      try
        let spawned, backends =
          match backends with
          | Some csv ->
            let urls =
              List.filter (fun s -> s <> "")
                (List.map String.trim (String.split_on_char ',' csv))
            in
            if urls = [] then failwith "--backends named no backend";
            List.iter
              (fun url ->
                 match Server.Load.parse_url url with
                 | Ok _ -> ()
                 | Error e ->
                   failwith (Printf.sprintf "backend %s: %s" url e))
              urls;
            ([], urls)
          | None ->
            if workers < 1 then failwith "--workers must be positive";
            let spawn () =
              let p = free_port () in
              let args =
                [ Sys.executable_name; "serve"; "--port"; string_of_int p ]
                @ (match snapshot_dir with
                   | None -> []
                   | Some dir -> [ "--snapshot-dir"; dir ])
              in
              let pid =
                Unix.create_process Sys.executable_name
                  (Array.of_list args) Unix.stdin Unix.stdout Unix.stderr
              in
              (pid, Printf.sprintf "http://127.0.0.1:%d" p)
            in
            let children = List.init workers (fun _ -> spawn ()) in
            (children, List.map snd children)
        in
        let reap () =
          List.iter
            (fun (pid, _) ->
               (try Unix.kill pid Sys.sigterm
                with Unix.Unix_error _ -> ());
               try ignore (Unix.waitpid [] pid)
               with Unix.Unix_error _ -> ())
            spawned
        in
        Fun.protect ~finally:reap (fun () ->
            List.iter (fun (_, url) -> wait_ready ~timeout_s:30.0 url)
              spawned;
            Server.Route.run
              { d with Server.Route.host; port; backends; domains;
                replicas });
        Ok ()
      with Failure msg -> Error (`Msg msg)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Front a fleet of $(b,prtb serve) daemons with a \
             consistent-hashing router: each request's canonical cache \
             key is hashed onto a ring of virtual nodes, so equal \
             queries always land on the same worker and every worker's \
             caches stay hot for its shard of the keyspace.  Bytes are \
             forwarded untouched -- routed bodies are bit-identical to \
             direct ones.  Unreachable backends answer 503 SRV112 with \
             Retry-After; router saturation answers the usual SRV111.")
    Term.(term_result
            (const run $ host $ port $ domains $ replicas $ workers
             $ backends $ snapshot_dir))

(* ----------------------------------------------------------------- *)
(* loadtest *)

let loadtest_cmd =
  let url =
    Arg.(required & opt (some string) None
         & info [ "url" ] ~docv:"URL"
             ~doc:"Target, e.g. http://127.0.0.1:8080/health or a full \
                   /check query.")
  in
  let clients =
    Arg.(value & opt int 8
         & info [ "clients" ] ~docv:"C"
             ~doc:"Concurrent client domains, one keep-alive connection \
                   each.")
  in
  let requests =
    Arg.(value & opt int 400
         & info [ "requests" ] ~docv:"R"
             ~doc:"Total round trips, spread over the clients.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a 503-rejected request up to N times with \
                   jittered exponential backoff, honouring the \
                   server's Retry-After header.  Retries are counted \
                   separately in the report; default 0 (a 503 counts \
                   as the final answer).")
  in
  let batch =
    Arg.(value & opt (some int) None
         & info [ "batch" ] ~docv:"N"
             ~doc:"Mixed workload: every other logical request becomes \
                   a $(b,POST /batch) carrying N copies of the URL's \
                   query (the URL's path is each element's endpoint \
                   selector), exercising the batch envelope and the \
                   single-query path in one run.")
  in
  let run url clients requests retries batch deadline =
    if clients < 1 then Error (`Msg "--clients must be positive")
    else if requests < 1 then Error (`Msg "--requests must be positive")
    else if retries < 0 then Error (`Msg "--retries must be nonnegative")
    else if (match batch with Some b -> b < 1 | None -> false) then
      Error (`Msg "--batch must be positive")
    else
      match Server.Load.parse_url url with
      | Error e -> Error (`Msg e)
      | Ok u ->
        let u =
          match deadline with
          | None -> u
          | Some ms ->
            let sep =
              if String.contains u.Server.Load.target '?' then "&" else "?"
            in
            { u with
              Server.Load.target =
                Printf.sprintf "%s%sdeadline_ms=%d" u.Server.Load.target
                  sep ms }
        in
        let r =
          Server.Load.run ~max_retries:retries ?batch u ~clients ~requests
        in
        Format.printf "%a@." Server.Load.pp r;
        if r.Server.Load.protocol_errors > 0 then
          Error
            (`Msg
               (Printf.sprintf "%d protocol error(s)"
                  r.Server.Load.protocol_errors))
        else Ok ()
  in
  Cmd.v
    (Cmd.info "loadtest"
       ~doc:"Hammer a running $(b,prtb serve) with concurrent keep-alive \
             clients and report throughput and latency percentiles.  \
             Exits nonzero on any protocol error (503 rejections are \
             reported but are not protocol errors).")
    Term.(term_result
            (const run $ url $ clients $ requests $ retries $ batch
             $ deadline_arg
                 ~doc:"Append deadline_ms=DUR to every request, \
                       exercising the server's degraded SRV122 path \
                       under load."))

(* ----------------------------------------------------------------- *)
(* chaos *)

let chaos_cmd =
  let url =
    Arg.(required & opt (some string) None
         & info [ "url" ] ~docv:"URL"
             ~doc:"Base URL of the daemon under test, e.g. \
                   http://127.0.0.1:8080/.  The path (plus query) is \
                   the valid-traffic target for the mixed scenario; it \
                   must compute a deterministic body.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S"
             ~doc:"PRNG seed; a given seed replays the same byte \
                   streams every run.")
  in
  let scenarios =
    Arg.(value & opt (some string) None
         & info [ "scenarios" ] ~docv:"LIST"
             ~doc:(Printf.sprintf
                     "Comma-separated scenario list (default all): %s."
                     (String.concat ", "
                        (List.map Server.Chaos.scenario_name
                           Server.Chaos.all_scenarios))))
  in
  let rounds =
    Arg.(value & opt int 5
         & info [ "rounds" ] ~docv:"R"
             ~doc:"Iterations per scenario.")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"C"
             ~doc:"Concurrent domains for the mixed scenario.")
  in
  let idle_s =
    Arg.(value & opt float 1.5
         & info [ "idle-s" ] ~docv:"SECS"
             ~doc:"Idle parking time for the idle-keepalive scenario.")
  in
  let run url seed scenarios rounds clients idle_s =
    if rounds < 1 then Error (`Msg "--rounds must be positive")
    else
      match Server.Load.parse_url url with
      | Error e -> Error (`Msg e)
      | Ok u ->
        let scenarios =
          match scenarios with
          | None -> Ok Server.Chaos.all_scenarios
          | Some spec ->
            List.fold_right
              (fun part acc ->
                 match acc with
                 | Error _ as e -> e
                 | Ok rest ->
                   (match Server.Chaos.scenario_of_string part with
                    | Ok s -> Ok (s :: rest)
                    | Error e -> Error e))
              (List.filter
                 (fun p -> String.trim p <> "")
                 (String.split_on_char ',' spec))
              (Ok [])
        in
        (match scenarios with
         | Error e -> Error (`Msg e)
         | Ok [] -> Error (`Msg "--scenarios named no scenario")
         | Ok scenarios ->
           let r =
             Server.Chaos.run ~scenarios ~rounds ~clients ~idle_s ~seed u
           in
           Format.printf "%a@." Server.Chaos.pp_report r;
           if r.Server.Chaos.ok then Ok ()
           else Error (`Msg "chaos harness found failures"))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Torture a running $(b,prtb serve) with a seeded adversarial \
             client: trickled headers, connections closed mid-body, \
             garbage and oversized frames, idle keep-alive squatting, \
             and garbage interleaved with valid traffic.  Exits 0 only \
             if every attempt reconciles (answered, rejected, or \
             cleanly dropped), the daemon's 5xx counter did not grow, \
             and /health returns to \"ok\" afterwards.")
    Term.(term_result
            (const run $ url $ seed $ scenarios $ rounds $ clients
             $ idle_s))

(* ----------------------------------------------------------------- *)

let () =
  let doc =
    "proving time bounds for randomized distributed algorithms \
     (Lynch-Saias-Segala, PODC'94): exhaustive checking, proof \
     composition and simulation"
  in
  let info = Cmd.info "prtb" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ experiments_cmd; check_cmd; verify_cert_cmd; compile_cmd;
         simulate_cmd; export_dot_cmd; lint_cmd; serve_cmd; route_cmd;
         loadtest_cmd; chaos_cmd ]))
