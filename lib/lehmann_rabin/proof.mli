(** The time-bound proof of Section 6.2 / Appendix A, mechanized.

    Each of the paper's five phase statements is discharged by exact
    model checking over all adversaries of the (structurally encoded)
    [Unit-Time] schema; they are then stitched together with
    Proposition 3.2 and Theorem 3.4, exactly as in the paper, to yield

    {v T -13->_{1/8} C v}

    and the expected-time recurrence of Section 6.2 gives the 63-unit
    expected-progress bound. *)

type instance = {
  params : Automaton.params;
  expl : (State.t, Automaton.action) Mdp.Explore.t;
  arena : (State.t, Automaton.action) Mdp.Arena.t;
      (** [expl] compiled once, with the model's tick mask; every
          engine call below reads this. *)
  sym : Analysis.Symmetry.certificate option;
      (** present iff the fragment is the certified orbit quotient *)
}

(** [build ~n ()] constructs and explores the ring instance
    (granularity [g] and per-slot budget [k] default to 1).  [sym]
    (default [Off]) requests orbit-reduced exploration under the
    declared rotation group ({!Symmetry.ring}): [On] raises
    [Analysis.Symmetry.Not_certified] unless the group certifies,
    [Auto] falls back to unreduced. *)
val build :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  n:int -> unit -> instance

(** One phase statement together with what the checker found. *)
type arrow = {
  label : string;  (** e.g. "A.11" *)
  pre : State.t Core.Pred.t;
  post : State.t Core.Pred.t;
  time : Proba.Rational.t;  (** the paper's [t] *)
  prob : Proba.Rational.t;  (** the paper's [p] *)
  attained : Proba.Rational.t;  (** exact min probability found *)
  pre_states : int;
  claim : State.t Core.Claim.t option;  (** present iff [attained >= prob] *)
}

(** The paper's five arrows, in proof order:
    [P -1->_1 C], [T -2->_1 RT ∪ C], [RT -3->_1 F ∪ G ∪ P],
    [F -2->_{1/2} G ∪ P], [G -5->_{1/4} P]. *)
val arrows : instance -> arrow list

(** Compose the five arrows into [T -13->_{1/8} C] using the claim DSL
    (Proposition 3.2 to pad each arrow with already-reached states,
    inclusion certificates verified over the reachable states to
    canonicalize the set names, Theorem 3.4 to chain).  Returns [Error]
    with an explanation if some arrow failed to check. *)
val composed : instance -> (State.t Core.Claim.t, string) result

(** Exact minimum of [P(reach C within 13)] over reachable [T]-states:
    the direct model-checking counterpart of {!composed}, used to show
    how conservative the paper's [1/8] is. *)
val direct_bound : instance -> Proba.Rational.t

(** The expected-time derivation of Section 6.2: the recurrence solution
    [E[V] = 60] from [RT] to [P], then [2 + 60 + 1 = 63] from [T] to
    [C]. *)
val expected_bound : unit -> Core.Expected.t

(** Worst-case expected time (in paper units) from a reachable
    [T]-state to [C], measured on the explored MDP by value iteration:
    the quantity the paper bounds by 63. *)
val max_expected_time : instance -> float

(** Qualitative baseline (the Zuck-Pnueli-style result the paper
    refines): does every adversary drive every reachable [T]-state into
    [C] almost surely? *)
val liveness_holds : instance -> bool

(** [worst_adversary inst] extracts the memoryless adversary maximizing
    the expected time from [T] to [C], as a replayable scheduler
    together with its exact value-iteration expectation from the
    all-trying start state (in paper time units).  Simulating the
    scheduler should reproduce that number -- the E8 cross-check. *)
val worst_adversary :
  instance -> float * (State.t, Automaton.action) Sim.Scheduler.t

(** {1 Generalized topologies}

    The paper's concluding remarks ask whether the analysis extends to
    "topologies that are more general than rings"; these entry points
    run the whole pipeline -- the five arrows with the generalized
    goodness set {!Regions.g_of}, the Theorem 3.4 composition, the
    direct bound, the invariant -- on any {!Topology.t}. *)

type topo_instance = {
  topo : Topology.t;
  tg : int;
  tk : int;
  texpl : (State.t, Automaton.action) Mdp.Explore.t;
  tarena : (State.t, Automaton.action) Mdp.Arena.t;
  tsym : Analysis.Symmetry.certificate option;
}

val build_topo :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  topo:Topology.t -> unit -> topo_instance

val arrows_topo : topo_instance -> arrow list
val composed_topo : topo_instance -> (State.t Core.Claim.t, string) result
val direct_bound_topo : topo_instance -> Proba.Rational.t
val max_expected_time_topo : topo_instance -> float
val liveness_topo : topo_instance -> bool

(** Lemma 6.1 generalized; [None] when it holds. *)
val invariant_topo : topo_instance -> State.t option
