(** Resource-conflict topologies for the generalized protocol.

    The paper's concluding remarks ask about "topologies that are more
    general than rings".  The Lehmann-Rabin code itself only needs each
    process to own a {e left} and a {e right} resource; any assignment
    of two distinct resources per process defines a valid instance (the
    ring is the special case where resource [i] sits between processes
    [i] and [i+1]).  This module describes such assignments and is used
    by {!Automaton.make_general} and the generalized region/invariant
    definitions.

    A resource may be shared by any number of processes (in the star,
    the hub resource is shared by everyone), so the "wait" step really
    is a multi-party test-and-set on the shared variable. *)

type t

(** [make ~name ~num_resources assignments] where [assignments.(i)] is
    process [i]'s [(left, right)] resource pair.  Raises
    [Invalid_argument] if a process's resources coincide or an index is
    out of range, or there are fewer than two processes. *)
val make : name:string -> num_resources:int -> (int * int) array -> t

val name : t -> string
val num_procs : t -> int
val num_resources : t -> int

(** [res t i side] is process [i]'s resource on [side]. *)
val res : t -> int -> State.side -> int

(** [contenders t r] lists each process sharing resource [r], with the
    side on which [r] hangs for it. *)
val contenders : t -> int -> (int * State.side) list

(** [automorphisms t] lists the non-identity {e side-preserving}
    automorphisms of the conflict topology, up to [limit] (default
    [720]) of them: pairs [(pi, rho)] of a process permutation and a
    resource permutation with [rho (res t i side) = res t (pi i) side]
    for both sides.  Side-preservation is what makes these candidate
    automorphisms of the {e automaton} (the protocol is chiral: the
    first flip names a side), so a ring contributes its [n-1]
    rotations but not the reflections, and a line contributes nothing.
    Truncation at [limit] is sound for symmetry reduction -- any
    subset of automorphisms generates a subgroup. *)
val automorphisms : ?limit:int -> t -> (int array * int array) list

(** {1 Stock topologies} *)

(** The paper's ring: [n] processes, [n] resources, process [i] between
    resources [i-1] (left) and [i] (right). *)
val ring : int -> t

(** A line: [n] processes, [n+1] resources, process [i] between
    resources [i] (left) and [i+1] (right); the end resources are
    uncontested. *)
val line : int -> t

(** A star: [n] processes, [n+1] resources; resource [0] is the hub
    shared by every process (its right resource), resource [i+1] is
    process [i]'s private left resource. *)
val star : int -> t
