(** Declared symmetries of the (generalized) Lehmann-Rabin automaton.

    Every side-preserving automorphism of the conflict topology
    ({!Topology.automorphisms}) lifts to a candidate automorphism of
    the automaton: permute the process array along [pi], the resource
    array along [rho], and the process index carried by each action.
    The region ladder of the proof ({!Regions}) is registered as the
    invariant predicates, so [Analysis.Symmetry.verify] certifies at
    once that reduction is sound {e and} that the proof's claims
    survive it.

    On [Topology.ring n] the declared group is the [n] rotations
    (reflections are not side-preserving: the protocol is chiral); on
    a line it is trivial -- the PA032 advisory never fires there and a
    rotation declared by hand is exactly the PA030 fixture. *)

(** [apply_state (pi, rho) s] permutes the process array along [pi]
    and the resource array along [rho]; [apply_action pi] renames the
    process index an action carries (sides are preserved: the protocol
    is chiral).  Exposed so tests can declare {e wrong} permutations --
    a rotation on a line topology is the PA030 fixture. *)
val apply_state : int array * int array -> State.t -> State.t
val apply_action : int array -> Automaton.action -> Automaton.action

val generators :
  Topology.t -> (State.t, Automaton.action) Analysis.Symmetry.generator list

(** [spec topo] declares the topology's automorphisms together with
    the generalized region predicates (goodness via
    {!Regions.g_of}).  [extra] appends further predicates to hold
    invariant. *)
val spec :
  ?extra:(string * (State.t -> bool)) list ->
  Topology.t -> (State.t, Automaton.action) Analysis.Symmetry.spec

(** [ring ~n ()] is {!spec} on [Topology.ring n] with the ring-proof
    goodness set {!Regions.g} also registered. *)
val ring :
  ?extra:(string * (State.t -> bool)) list ->
  n:int -> unit -> (State.t, Automaton.action) Analysis.Symmetry.spec
