type t = {
  name : string;
  assignments : (int * int) array;  (* per process: (left, right) *)
  num_resources : int;
  contenders : (int * State.side) list array;  (* per resource *)
}

let make ~name ~num_resources assignments =
  let n = Array.length assignments in
  if n < 2 then invalid_arg "Topology.make: need at least 2 processes";
  Array.iteri
    (fun i (l, r) ->
       if l = r then
         invalid_arg
           (Printf.sprintf "Topology.make: process %d has identical \
                            resources" i);
       if l < 0 || l >= num_resources || r < 0 || r >= num_resources then
         invalid_arg
           (Printf.sprintf "Topology.make: process %d has an out-of-range \
                            resource" i))
    assignments;
  let contenders = Array.make num_resources [] in
  Array.iteri
    (fun i (l, r) ->
       contenders.(l) <- (i, State.L) :: contenders.(l);
       contenders.(r) <- (i, State.R) :: contenders.(r))
    assignments;
  Array.iteri (fun r c -> contenders.(r) <- List.rev c) contenders;
  { name; assignments; num_resources; contenders }

let name t = t.name
let num_procs t = Array.length t.assignments
let num_resources t = t.num_resources

let res t i side =
  let l, r = t.assignments.(i) in
  match side with State.L -> l | State.R -> r

let contenders t r = t.contenders.(r)

(* Side-preserving automorphism search: pairs (pi, rho) of process and
   resource permutations with [rho left(i) = left(pi i)] and
   [rho right(i) = right(pi i)].  Side-preservation matters: the
   protocol is chiral (first flip names a side), so e.g. a ring
   reflection, though a graph automorphism, is NOT an automorphism of
   the automaton.  Backtracking over [pi] with incremental [rho]
   consistency keeps this instant for the topologies at hand; [limit]
   truncates pathological cases (e.g. the star's full symmetric group),
   which stays sound -- any subset of automorphisms generates a
   subgroup, and reducing by a subgroup merely compresses less. *)
let automorphisms ?(limit = 720) t =
  let n = num_procs t in
  let m = t.num_resources in
  let results = ref [] in
  let count = ref 0 in
  let pi = Array.make n (-1) in
  let pi_used = Array.make n false in
  let rho = Array.make m (-1) in
  let rho_used = Array.make m false in
  let exception Done in
  let assign_res a b undo =
    if rho.(a) = b then true
    else if rho.(a) <> -1 || rho_used.(b) then false
    else begin
      rho.(a) <- b;
      rho_used.(b) <- true;
      undo := a :: !undo;
      true
    end
  in
  let record () =
    let identity = ref true in
    Array.iteri (fun i j -> if i <> j then identity := false) pi;
    if not !identity then begin
      (* Resources no process touches are unconstrained; complete rho
         over them by matching free sources to free targets. *)
      let full_rho = Array.copy rho in
      let free_targets = ref [] in
      for r = m - 1 downto 0 do
        if not rho_used.(r) then free_targets := r :: !free_targets
      done;
      Array.iteri
        (fun r img ->
           if img = -1 then
             match !free_targets with
             | tgt :: rest ->
               full_rho.(r) <- tgt;
               free_targets := rest
             | [] -> assert false)
        full_rho;
      results := (Array.copy pi, full_rho) :: !results;
      incr count;
      if !count >= limit then raise Done
    end
  in
  let rec go i =
    if i = n then record ()
    else
      for j = 0 to n - 1 do
        if not pi_used.(j) then begin
          let li, ri = t.assignments.(i) in
          let lj, rj = t.assignments.(j) in
          let undo = ref [] in
          if assign_res li lj undo && assign_res ri rj undo then begin
            pi.(i) <- j;
            pi_used.(j) <- true;
            go (i + 1);
            pi.(i) <- -1;
            pi_used.(j) <- false
          end;
          List.iter
            (fun a ->
               rho_used.(rho.(a)) <- false;
               rho.(a) <- -1)
            !undo
        end
      done
  in
  (try go 0 with Done -> ());
  List.rev !results

let ring n =
  make ~name:(Printf.sprintf "ring(%d)" n) ~num_resources:n
    (Array.init n (fun i -> ((i + n - 1) mod n, i)))

let line n =
  make ~name:(Printf.sprintf "line(%d)" n) ~num_resources:(n + 1)
    (Array.init n (fun i -> (i, i + 1)))

let star n =
  make ~name:(Printf.sprintf "star(%d)" n) ~num_resources:(n + 1)
    (Array.init n (fun i -> (i + 1, 0)))
