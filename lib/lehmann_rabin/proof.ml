module Q = Proba.Rational

type instance = {
  params : Automaton.params;
  expl : (State.t, Automaton.action) Mdp.Explore.t;
  arena : (State.t, Automaton.action) Mdp.Arena.t;
  sym : Analysis.Symmetry.certificate option;
}

let build ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off) ~n
    () =
  let params = { Automaton.n; g; k } in
  let pa = Automaton.make params in
  let expl, cert =
    Analysis.Symmetry.explored ~model:"lr" ~mode:sym ?max_states
      (Symmetry.ring ~n ()) pa
  in
  { params; expl; sym = cert;
    arena = Mdp.Arena.compile ~is_tick:Automaton.is_tick expl }

type arrow = {
  label : string;
  pre : State.t Core.Pred.t;
  post : State.t Core.Pred.t;
  time : Q.t;
  prob : Q.t;
  attained : Q.t;
  pre_states : int;
  claim : State.t Core.Claim.t option;
}

let schema = Core.Schema.unit_time

(* ----------------------------------------------------------------- *)
(* The five arrows and their composition, over any compiled arena and
   any goodness predicate (the ring and the generalized topologies
   differ only in [G]). *)

let check_on arena ~granularity ~label ~pre ~post ~time ~prob =
  let result =
    Mdp.Checker.check_arrow arena ~granularity ~schema ~pre ~post ~time
      ~prob
  in
  { label; pre; post; time; prob;
    attained = result.Mdp.Checker.attained;
    pre_states = result.Mdp.Checker.pre_states;
    claim = result.Mdp.Checker.claim }

let spec_on arena ~granularity ~g_pred = function
  | `P_to_C ->
    check_on arena ~granularity ~label:"A.1" ~pre:Regions.p ~post:Regions.c
      ~time:Q.one ~prob:Q.one
  | `T_to_RTC ->
    check_on arena ~granularity ~label:"A.3" ~pre:Regions.t
      ~post:Regions.rt_or_c ~time:(Q.of_int 2) ~prob:Q.one
  | `RT_to_FGP ->
    check_on arena ~granularity ~label:"A.15" ~pre:Regions.rt
      ~post:(Core.Pred.union_all [ Regions.f; g_pred; Regions.p ])
      ~time:(Q.of_int 3) ~prob:Q.one
  | `F_to_GP ->
    check_on arena ~granularity ~label:"A.14" ~pre:Regions.f
      ~post:(Core.Pred.union g_pred Regions.p) ~time:(Q.of_int 2)
      ~prob:Q.half
  | `G_to_P ->
    check_on arena ~granularity ~label:"A.11" ~pre:g_pred ~post:Regions.p
      ~time:(Q.of_int 5) ~prob:(Q.of_ints 1 4)

let all_specs = [ `P_to_C; `T_to_RTC; `RT_to_FGP; `F_to_GP; `G_to_P ]

let arrows_on arena ~granularity ~g_pred =
  List.map (spec_on arena ~granularity ~g_pred) all_specs

(* Rename a claim's pre/post to set-equal predicates, certifying both
   inclusions over the reachable states. *)
let canonicalize arena claim ~pre ~post =
  let need name = function
    | Some incl -> incl
    | None ->
      failwith
        (Printf.sprintf "canonicalize: inclusion %s failed to verify" name)
  in
  let to_pre =
    need (Core.Pred.name pre)
      (Mdp.Checker.verify_inclusion arena pre (Core.Claim.pre claim))
  in
  let to_post =
    need (Core.Pred.name post)
      (Mdp.Checker.verify_inclusion arena (Core.Claim.post claim) post)
  in
  Core.Claim.weaken_post (Core.Claim.strengthen_pre claim to_pre) to_post

let composed_on arena ~granularity ~g_pred =
  let get spec =
    let a = spec_on arena ~granularity ~g_pred spec in
    match a.claim with
    | Some c -> Ok (a, c)
    | None ->
      Error
        (Printf.sprintf
           "%s does not hold at the paper's bound: attained %s < %s"
           a.label (Q.to_string a.attained) (Q.to_string a.prob))
  in
  let ( let* ) = Result.bind in
  let* _, a1 = get `P_to_C in
  let* _, a3 = get `T_to_RTC in
  let* _, a15 = get `RT_to_FGP in
  let* _, a14 = get `F_to_GP in
  let* _, a11 = get `G_to_P in
  (* The paper's ladder: pad each arrow with the already-reached set via
     Proposition 3.2, canonicalize the set names with verified
     inclusions, then chain with Theorem 3.4. *)
  let fgp_or_c =
    Core.Pred.union (Core.Pred.union_all [ Regions.f; g_pred; Regions.p ])
      Regions.c
  in
  let gp_or_c = Core.Pred.union (Core.Pred.union g_pred Regions.p) Regions.c in
  try
    let step1 = a3 in
    let step2 =
      canonicalize arena
        (Core.Claim.union a15 Regions.c)
        ~pre:Regions.rt_or_c ~post:fgp_or_c
    in
    let step3 =
      canonicalize arena
        (Core.Claim.union a14 gp_or_c)
        ~pre:fgp_or_c ~post:gp_or_c
    in
    let step4 =
      canonicalize arena
        (Core.Claim.union a11 Regions.p_or_c)
        ~pre:gp_or_c ~post:Regions.p_or_c
    in
    let step5 =
      canonicalize arena (Core.Claim.union a1 Regions.c) ~pre:Regions.p_or_c
        ~post:Regions.c
    in
    Ok (Core.Claim.compose_all [ step1; step2; step3; step4; step5 ])
  with Failure msg | Core.Claim.Rule_violation msg -> Error msg

let direct_bound_on arena ~granularity =
  let target = Mdp.Arena.indicator arena Regions.c in
  let ticks = Core.Timed.within ~granularity ~time:(Q.of_int 13) in
  let values = Mdp.Finite_horizon.min_reach arena ~target ~ticks in
  let best, _, _ = Mdp.Checker.min_prob_over arena values Regions.t in
  best

let max_expected_time_on arena ~granularity =
  let target = Mdp.Arena.indicator arena Regions.c in
  let values = Mdp.Expected_time.max_expected_ticks arena ~target () in
  let worst = ref 0.0 in
  for i = 0 to Mdp.Arena.num_states arena - 1 do
    if Core.Pred.mem Regions.t (Mdp.Arena.state arena i) then
      if values.(i) > !worst then worst := values.(i)
  done;
  !worst /. float_of_int granularity

let liveness_on arena =
  let target = Mdp.Arena.indicator arena Regions.c in
  let always = Mdp.Qualitative.always_reaches arena ~target in
  let ok = ref true in
  for i = 0 to Mdp.Arena.num_states arena - 1 do
    if Core.Pred.mem Regions.t (Mdp.Arena.state arena i)
    && not always.(i) then ok := false
  done;
  !ok

(* ----------------------------------------------------------------- *)
(* Ring interface. *)

let arrows inst =
  arrows_on inst.arena ~granularity:inst.params.Automaton.g
    ~g_pred:Regions.g

let composed inst =
  composed_on inst.arena ~granularity:inst.params.Automaton.g
    ~g_pred:Regions.g

let direct_bound inst =
  direct_bound_on inst.arena ~granularity:inst.params.Automaton.g

let expected_bound () =
  let b prob time loops =
    Core.Expected.branch ~prob ~time:(Q.of_int time) ~loops
  in
  let v =
    Core.Expected.solve_loop ~label:"E[RT to P]"
      [ b (Q.of_ints 1 8) 10 false;
        b Q.half 5 true;
        b (Q.of_ints 3 8) 10 true ]
  in
  Core.Expected.sum ~label:"E[T to C]"
    [ Core.Expected.constant ~label:"T to RT (Prop A.3)" (Q.of_int 2);
      v;
      Core.Expected.constant ~label:"P to C (Prop A.1)" Q.one ]

let max_expected_time inst =
  max_expected_time_on inst.arena ~granularity:inst.params.Automaton.g

let worst_adversary inst =
  let arena = inst.arena in
  let target = Mdp.Arena.indicator arena Regions.c in
  let values, policy =
    Mdp.Expected_time.max_expected_ticks_with_policy arena ~target ()
  in
  let { Automaton.n; g; k } = inst.params in
  let start = State.all_trying ~n ~g ~k in
  let value =
    match Mdp.Arena.index arena start with
    | Some i -> values.(i) /. float_of_int g
    | None -> nan
  in
  let choose s =
    match Mdp.Arena.index arena s with
    | Some i -> Some policy.(i)
    | None -> None
  in
  (value, Sim.Scheduler.of_choice choose (Mdp.Arena.automaton arena))

let liveness_holds inst = liveness_on inst.arena

(* ----------------------------------------------------------------- *)
(* Generalized topologies (the paper's "more general than rings"). *)

type topo_instance = {
  topo : Topology.t;
  tg : int;
  tk : int;
  texpl : (State.t, Automaton.action) Mdp.Explore.t;
  tarena : (State.t, Automaton.action) Mdp.Arena.t;
  tsym : Analysis.Symmetry.certificate option;
}

let build_topo ?max_states ?(g = 1) ?(k = 1)
    ?(sym = Analysis.Symmetry.Off) ~topo () =
  let pa = Automaton.make_general ~topo ~g ~k in
  let texpl, cert =
    Analysis.Symmetry.explored
      ~model:(Printf.sprintf "lr:%s" (Topology.name topo))
      ~mode:sym ?max_states (Symmetry.spec topo) pa
  in
  { topo; tg = g; tk = k; texpl; tsym = cert;
    tarena = Mdp.Arena.compile ~is_tick:Automaton.is_tick texpl }

let arrows_topo inst =
  arrows_on inst.tarena ~granularity:inst.tg
    ~g_pred:(Regions.g_of inst.topo)

let composed_topo inst =
  composed_on inst.tarena ~granularity:inst.tg
    ~g_pred:(Regions.g_of inst.topo)

let direct_bound_topo inst = direct_bound_on inst.tarena ~granularity:inst.tg
let max_expected_time_topo inst =
  max_expected_time_on inst.tarena ~granularity:inst.tg
let liveness_topo inst = liveness_on inst.tarena
let invariant_topo inst = Invariant.check_general inst.topo inst.texpl
