let apply_state (pi, rho) (s : State.t) =
  let procs = Array.copy s.State.procs in
  Array.iteri (fun i p -> procs.(pi.(i)) <- p) s.State.procs;
  let res = Array.copy s.State.res in
  Array.iteri (fun r v -> res.(rho.(r)) <- v) s.State.res;
  { State.procs; res }

let apply_action pi = function
  | Automaton.Tick -> Automaton.Tick
  | Automaton.Try i -> Automaton.Try pi.(i)
  | Automaton.Exit i -> Automaton.Exit pi.(i)
  | Automaton.Flip i -> Automaton.Flip pi.(i)
  | Automaton.Wait i -> Automaton.Wait pi.(i)
  | Automaton.Second i -> Automaton.Second pi.(i)
  | Automaton.Drop i -> Automaton.Drop pi.(i)
  | Automaton.Crit i -> Automaton.Crit pi.(i)
  | Automaton.Drop_first (i, u) -> Automaton.Drop_first (pi.(i), u)
  | Automaton.Drop_second i -> Automaton.Drop_second pi.(i)
  | Automaton.Rem i -> Automaton.Rem pi.(i)

let perm_name pi =
  Printf.sprintf "perm(%s)"
    (String.concat " " (Array.to_list (Array.map string_of_int pi)))

let generators topo =
  List.map
    (fun (pi, rho) ->
       Analysis.Symmetry.generator ~name:(perm_name pi)
         ~on_state:(apply_state (pi, rho)) ~on_action:(apply_action pi))
    (Topology.automorphisms topo)

let pred p = (Core.Pred.name p, fun s -> Core.Pred.mem p s)

let spec ?(extra = []) topo =
  Analysis.Symmetry.spec
    ~preds:
      (List.map pred
         [ Regions.t; Regions.c; Regions.rt; Regions.f; Regions.p;
           Regions.g_of topo; Regions.p_or_c; Regions.rt_or_c ]
       @ extra)
    (generators topo)

let ring ?(extra = []) ~n () =
  (* The ring proof's goodness set is the specialized [Regions.g]; it
     coincides with [g_of (ring n)] but is the predicate the claims
     actually name, so register it too. *)
  spec ~extra:(pred Regions.g :: extra) (Topology.ring n)
