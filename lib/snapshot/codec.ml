let magic = "prtba/1\n"

(* "len:bytes" framing, as in lib/cert's node hashing: unambiguous for
   arbitrary payloads (Marshal blobs included) and cheap to parse. *)
let enc buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let encode sections =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  List.iter
    (fun (name, payload) ->
       enc buf name;
       enc buf payload)
    sections;
  (* The seal covers every byte before it, magic included, so version
     skew, a truncation and a one-byte tamper all surface as the same
     named refusal. *)
  let digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  enc buf "digest";
  enc buf digest;
  Buffer.contents buf

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let check_magic bytes =
  let m = String.length magic in
  if String.length bytes >= m && String.sub bytes 0 m = magic then ()
  else if String.length bytes >= 6 && String.sub bytes 0 6 = "prtba/" then
    let version =
      match String.index_opt bytes '\n' with
      | Some i when i <= 32 -> String.sub bytes 0 i
      | Some _ | None ->
        String.sub bytes 0 (Stdlib.min 32 (String.length bytes))
    in
    corrupt "unsupported snapshot version %S (this reader understands %S)"
      version (String.trim magic)
  else corrupt "not a prtba snapshot (bad magic)"

let decode bytes =
  try
    check_magic bytes;
    let len = String.length bytes in
    let pos = ref (String.length magic) in
    let read_framed what =
      let start = !pos in
      let rec find_colon i =
        if i >= len then
          corrupt "truncated snapshot (%s: unterminated length prefix)" what
        else if bytes.[i] = ':' then i
        else if i - start > 12 then
          corrupt "corrupt snapshot (%s: length prefix too long)" what
        else find_colon (i + 1)
      in
      let colon = find_colon start in
      let n =
        match int_of_string_opt (String.sub bytes start (colon - start)) with
        | Some n when n >= 0 -> n
        | Some _ | None ->
          corrupt "corrupt snapshot (%s: bad length prefix)" what
      in
      if colon + 1 + n > len then
        corrupt "truncated snapshot (%s: %d payload bytes missing)" what
          (colon + 1 + n - len);
      pos := colon + 1 + n;
      String.sub bytes (colon + 1) n
    in
    let sections = ref [] in
    let sealed = ref false in
    while not !sealed do
      if !pos >= len then corrupt "truncated snapshot (no trailing digest)";
      let before = !pos in
      let name = read_framed "section name" in
      let payload = read_framed (Printf.sprintf "section %S" name) in
      if name = "digest" then begin
        if !pos <> len then
          corrupt "corrupt snapshot (%d trailing bytes after the digest)"
            (len - !pos);
        let computed =
          Digest.to_hex (Digest.string (String.sub bytes 0 before))
        in
        if not (String.equal computed payload) then
          corrupt
            "snapshot digest mismatch (stored %s, computed %s): truncated \
             or tampered"
            payload computed;
        sealed := true
      end
      else sections := (name, payload) :: !sections
    done;
    Ok (List.rev !sections)
  with Corrupt msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Scalar-array payloads. *)

let ints_to_string arr =
  String.concat ","
    (Array.to_list (Array.map string_of_int arr))

let ints_of_string s =
  if s = "" then Ok [||]
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest ->
        (match int_of_string_opt p with
         | Some i -> go (i :: acc) rest
         | None -> Error (Printf.sprintf "bad integer %S" p))
    in
    go [] parts

let bools_to_string arr =
  String.init (Array.length arr) (fun i -> if arr.(i) then '1' else '0')

let bools_of_string s =
  let n = String.length s in
  let arr = Array.make n false in
  let rec go i =
    if i >= n then Ok arr
    else
      match s.[i] with
      | '1' ->
        arr.(i) <- true;
        go (i + 1)
      | '0' -> go (i + 1)
      | c -> Error (Printf.sprintf "bad boolean character %C" c)
  in
  go 0

let strs_to_string lst =
  let buf = Buffer.create 256 in
  List.iter (fun s -> enc buf s) lst;
  Buffer.contents buf

let strs_of_string s =
  try
    let len = String.length s in
    let pos = ref 0 in
    let acc = ref [] in
    while !pos < len do
      let start = !pos in
      let rec find_colon i =
        if i >= len || i - start > 12 then
          corrupt "string frame: bad length prefix"
        else if s.[i] = ':' then i
        else find_colon (i + 1)
      in
      let colon = find_colon start in
      let n =
        match int_of_string_opt (String.sub s start (colon - start)) with
        | Some n when n >= 0 -> n
        | Some _ | None -> corrupt "string frame: bad length prefix"
      in
      if colon + 1 + n > len then corrupt "string frame: truncated";
      acc := String.sub s (colon + 1) n :: !acc;
      pos := colon + 1 + n
    done;
    Ok (List.rev !acc)
  with Corrupt msg -> Error msg

let rats_to_string arr =
  let buf = Buffer.create 1024 in
  Array.iter (fun q -> enc buf (Proba.Rational.to_wire q)) arr;
  Buffer.contents buf

let rats_of_string s =
  try
    let len = String.length s in
    let pos = ref 0 in
    let acc = ref [] in
    while !pos < len do
      let start = !pos in
      let rec find_colon i =
        if i >= len || i - start > 12 then
          corrupt "rational frame: bad length prefix"
        else if s.[i] = ':' then i
        else find_colon (i + 1)
      in
      let colon = find_colon start in
      let n =
        match int_of_string_opt (String.sub s start (colon - start)) with
        | Some n when n >= 0 -> n
        | Some _ | None -> corrupt "rational frame: bad length prefix"
      in
      if colon + 1 + n > len then corrupt "rational frame: truncated";
      let wire = String.sub s (colon + 1) n in
      (match Proba.Rational.of_wire wire with
       | Ok q -> acc := q :: !acc
       | Error e -> corrupt "bad rational %S: %s" wire e);
      pos := colon + 1 + n
    done;
    Ok (Array.of_list (List.rev !acc))
  with Corrupt msg -> Error msg
