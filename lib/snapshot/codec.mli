(** The [prtba/1] container: a versioned, digest-sealed section file.

    A snapshot is a magic line, a sequence of named length-prefixed
    sections, and a trailing digest section sealing every preceding
    byte -- the same length-prefixed framing [lib/cert] hashes with
    ("len:bytes", so no concatenation of fields can collide with
    another split of the same bytes), lifted into a file format.
    {!decode} is a strict parser in the [lib/cert] style: anything
    unexpected -- wrong magic, unknown version, a truncated frame,
    bytes after the seal, a digest mismatch (any one-byte tamper) --
    is a named [Error], never an exception and never silent slack.

    The layer is content-agnostic: it moves named byte strings.
    {!Store} owns what the sections of an arena snapshot mean. *)

(** ["prtba/1\n"]. *)
val magic : string

(** [encode sections] renders the container: magic, each [(name,
    payload)] section in order, then the [digest] section sealing all
    preceding bytes. *)
val encode : (string * string) list -> string

(** Strict inverse of {!encode}: the sections in file order, digest
    verified and consumed.  All failure modes are named errors
    ("unsupported snapshot version", "truncated snapshot", "snapshot
    digest mismatch", ...). *)
val decode : string -> ((string * string) list, string) result

(** {1 Scalar-array payload codecs}

    Sections store machine integers and booleans as text (portable
    across word sizes and endianness, trivially inspectable), and
    exact rationals through {!Proba.Rational.to_wire} (canonical
    bytes, Bigint-tier safe). *)

val strs_to_string : string list -> string
val strs_of_string : string -> (string list, string) result
val ints_to_string : int array -> string
val ints_of_string : string -> (int array, string) result
val bools_to_string : bool array -> string
val bools_of_string : string -> (bool array, string) result
val rats_to_string : Proba.Rational.t array -> string
val rats_of_string : string -> (Proba.Rational.t array, string) result
