module Q = Proba.Rational
module Sym = Analysis.Symmetry
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or

type config = {
  model : string;
  n : int;
  g : int;
  k : int;
  topology : string;
  bound : int;
  cap : int;
  f : int;
  initial : bool array;
  sym : Sym.mode;
}

type loaded =
  | Lr of LR.Proof.instance
  | Lr_topo of LR.Proof.topo_instance
  | Election of IR.Proof.instance
  | Coin of SC.Proof.instance
  | Consensus of BO.Proof.instance

let arena_states = function
  | Lr i -> Mdp.Arena.num_states i.LR.Proof.arena
  | Lr_topo i -> Mdp.Arena.num_states i.LR.Proof.tarena
  | Election i -> Mdp.Arena.num_states i.IR.Proof.arena
  | Coin i -> Mdp.Arena.num_states i.SC.Proof.arena
  | Consensus i -> Mdp.Arena.num_states i.BO.Proof.arena

let describe c loaded =
  let extra =
    match c.model with
    | "lr" when c.topology <> "ring" ->
      Printf.sprintf " topology=%s" c.topology
    | "coin" -> Printf.sprintf " bound=%d" c.bound
    | "consensus" ->
      Printf.sprintf " f=%d cap=%d initial=%s" c.f c.cap
        (String.init (Array.length c.initial) (fun i ->
             if c.initial.(i) then '1' else '0'))
    | _ -> ""
  in
  Printf.sprintf "%s n=%d g=%d k=%d%s sym=%s (%d states)" c.model c.n c.g
    c.k extra
    (Sym.mode_to_string c.sym)
    (arena_states loaded)

(* ------------------------------------------------------------------ *)
(* Encoding. *)

let config_payload c =
  Codec.strs_to_string
    [ c.model; string_of_int c.n; string_of_int c.g; string_of_int c.k;
      c.topology; string_of_int c.bound; string_of_int c.cap;
      string_of_int c.f;
      Codec.bools_to_string c.initial;
      Sym.mode_to_string c.sym ]

(* The arena's own arrays, the interned states of its fragment and the
   symmetry certificate, each as a named section.  States and actions
   are pure data in every case study (records, variants and arrays of
   both -- no closures), so [Marshal] round-trips them exactly; the
   container digest seals the blobs, so [Marshal.from_string] only ever
   sees bytes this module wrote. *)
let arena_sections (type s a) (arena : (s, a) Mdp.Arena.t)
    (cert : Sym.certificate option) =
  let expl = Mdp.Arena.explored arena in
  let n = Mdp.Arena.num_states arena in
  let states = Array.init n (Mdp.Explore.state expl) in
  [ ("fingerprint", Mdp.Arena.fingerprint arena);
    ( "counts",
      Codec.ints_to_string [| n; Mdp.Arena.num_expanded arena |] );
    ( "starts",
      Codec.ints_to_string
        (Array.of_list (Mdp.Arena.start_indices arena)) );
    ("step_off", Codec.ints_to_string arena.Mdp.Arena.step_off);
    ("out_off", Codec.ints_to_string arena.Mdp.Arena.out_off);
    ("tgt", Codec.ints_to_string arena.Mdp.Arena.tgt);
    ("tick", Codec.bools_to_string arena.Mdp.Arena.tick);
    ("prob_q", Codec.rats_to_string arena.Mdp.Arena.prob_q);
    ("actions", Marshal.to_string arena.Mdp.Arena.actions []);
    ("states", Marshal.to_string states []);
    ( "sym",
      match cert with
      | None -> ""
      | Some c -> Marshal.to_string (c : Sym.certificate) [] ) ]

let encode c loaded =
  let check_model expected =
    if c.model <> expected then
      invalid_arg
        (Printf.sprintf "Snapshot.Store.encode: config says %S, got a %s \
                         instance" c.model expected)
  in
  let sections =
    match loaded with
    | Lr i ->
      check_model "lr";
      arena_sections i.LR.Proof.arena i.LR.Proof.sym
    | Lr_topo i ->
      check_model "lr";
      arena_sections i.LR.Proof.tarena i.LR.Proof.tsym
    | Election i ->
      check_model "election";
      arena_sections i.IR.Proof.arena i.IR.Proof.sym
    | Coin i ->
      check_model "coin";
      arena_sections i.SC.Proof.arena i.SC.Proof.sym
    | Consensus i ->
      check_model "consensus";
      arena_sections i.BO.Proof.arena i.BO.Proof.sym
  in
  Codec.encode (("config", config_payload c) :: sections)

let save ~path c loaded =
  let bytes = encode c loaded in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc bytes
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Decoding. *)

exception Refuse of string

let refuse fmt = Printf.ksprintf (fun s -> raise (Refuse s)) fmt

let section sections name =
  match List.assoc_opt name sections with
  | Some payload -> payload
  | None -> refuse "snapshot is missing section %S" name

let parsed of_string sections name =
  match of_string (section sections name) with
  | Ok v -> v
  | Error e -> refuse "snapshot section %S: %s" name e

let int_of what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> refuse "snapshot config: bad %s %S" what s

let config_of_sections sections =
  match Codec.strs_of_string (section sections "config") with
  | Error e -> refuse "snapshot section \"config\": %s" e
  | Ok [ model; n; g; k; topology; bound; cap; f; initial_s; sym_s ] ->
    let initial =
      match Codec.bools_of_string initial_s with
      | Ok a -> a
      | Error e -> refuse "snapshot config: initial: %s" e
    in
    let sym =
      match Sym.mode_of_string sym_s with
      | Some m -> m
      | None -> refuse "snapshot config: bad sym mode %S" sym_s
    in
    { model; n = int_of "n" n; g = int_of "g" g; k = int_of "k" k;
      topology; bound = int_of "bound" bound; cap = int_of "cap" cap;
      f = int_of "f" f; initial; sym }
  | Ok fields ->
    refuse "snapshot config: expected 10 fields, found %d"
      (List.length fields)

(* [Marshal.from_string] is only reached after the container digest
   verified, so the blob is byte-identical to what [encode] wrote; the
   try still turns a truncated-blob [Failure] into a refusal rather
   than an escape. *)
let unmarshal : type v. (string * string) list -> string -> v =
  fun sections name ->
  let payload = section sections name in
  try (Marshal.from_string payload 0 : v)
  with Failure _ | Invalid_argument _ ->
    refuse "snapshot section %S: undecodable blob" name

(* Rebuild fragment + arena from the sections, under the current model
   code ([pa], [spec]), validating every index before [Explore.of_parts]
   and [Arena.assemble] see it.  The result must re-fingerprint to the
   stored digest or the snapshot is stale (model code changed since it
   was compiled) and is refused. *)
let rebuild (type s a) ~(pa : (s, a) Core.Pa.t)
    ~(spec : (s, a) Sym.spec) sections :
  (s, a) Mdp.Arena.t * Sym.certificate option =
  let counts = parsed Codec.ints_of_string sections "counts" in
  if Array.length counts <> 2 then
    refuse "snapshot section \"counts\": expected 2 integers, found %d"
      (Array.length counts);
  let n = counts.(0) and expanded = counts.(1) in
  if n < 0 || expanded < 0 || expanded > n then
    refuse "snapshot counts out of range (states %d, expanded %d)" n
      expanded;
  let starts = parsed Codec.ints_of_string sections "starts" in
  let step_off = parsed Codec.ints_of_string sections "step_off" in
  let out_off = parsed Codec.ints_of_string sections "out_off" in
  let tgt = parsed Codec.ints_of_string sections "tgt" in
  let tick = parsed Codec.bools_of_string sections "tick" in
  let prob_q = parsed Codec.rats_of_string sections "prob_q" in
  let states : s array = unmarshal sections "states" in
  let actions : a array = unmarshal sections "actions" in
  let cert : Sym.certificate option =
    match section sections "sym" with
    | "" -> None
    | _ -> Some (unmarshal sections "sym")
  in
  if Array.length states <> n then
    refuse "snapshot states array has %d entries, counts say %d"
      (Array.length states) n;
  let num_steps = Array.length tick in
  if Array.length step_off <> n + 1 then
    refuse "snapshot step_off has %d entries for %d states"
      (Array.length step_off) n;
  if Array.length out_off <> num_steps + 1
     || Array.length actions <> num_steps then
    refuse "snapshot step arrays disagree (%d ticks, %d out_off, %d \
            actions)"
      num_steps (Array.length out_off) (Array.length actions);
  let monotone what arr limit =
    if arr.(0) <> 0 then refuse "snapshot %s does not start at 0" what;
    for i = 0 to Array.length arr - 2 do
      if arr.(i + 1) < arr.(i) then
        refuse "snapshot %s is not monotone at %d" what i
    done;
    if arr.(Array.length arr - 1) <> limit then
      refuse "snapshot %s ends at %d, expected %d" what
        (arr.(Array.length arr - 1))
        limit
  in
  monotone "step_off" step_off num_steps;
  monotone "out_off" out_off (Array.length tgt);
  if Array.length prob_q <> Array.length tgt then
    refuse "snapshot probability plane has %d entries for %d branches"
      (Array.length prob_q) (Array.length tgt);
  Array.iter
    (fun t ->
       if t < 0 || t >= n then
         refuse "snapshot branch target %d out of range [0, %d)" t n)
    tgt;
  List.iter
    (fun i ->
       if i < 0 || i >= n then
         refuse "snapshot start index %d out of range [0, %d)" i n)
    (Array.to_list starts);
  for i = expanded to n - 1 do
    if step_off.(i + 1) <> step_off.(i) then
      refuse "snapshot frontier state %d has steps" i
  done;
  (* A reduced fragment interns orbit representatives; [index] lookups
     only resolve if the fragment carries the same canonicalizer the
     original exploration used. *)
  let canon =
    match cert with
    | Some c when c.Sym.reduced ->
      Some (Sym.canonicalizer ~equal:(Core.Pa.equal_state pa) spec)
    | Some _ | None -> None
  in
  let steps =
    Array.init n (fun i ->
        Array.init
          (step_off.(i + 1) - step_off.(i))
          (fun j ->
             let s = step_off.(i) + j in
             { Mdp.Explore.action = actions.(s);
               outcomes =
                 Array.init
                   (out_off.(s + 1) - out_off.(s))
                   (fun o ->
                      let b = out_off.(s) + o in
                      (tgt.(b), prob_q.(b))) }))
  in
  let expl =
    try
      Mdp.Explore.of_parts ?canon ~pa ~states ~steps
        ~start_indices:(Array.to_list starts) ~expanded ()
    with Invalid_argument msg -> refuse "snapshot fragment: %s" msg
  in
  let arena =
    try
      Mdp.Arena.assemble ~step_off ~out_off ~tgt ~prob_q ~tick ~actions
        expl
    with Invalid_argument msg -> refuse "snapshot arena: %s" msg
  in
  let stored_fp = section sections "fingerprint" in
  let rebuilt_fp = Mdp.Arena.fingerprint arena in
  if not (String.equal stored_fp rebuilt_fp) then
    refuse
      "snapshot fingerprint mismatch: stored %s, rebuilt %s (the model \
       code changed since this snapshot was compiled)"
      stored_fp rebuilt_fp;
  (arena, cert)

let instantiate sections =
  let c = config_of_sections sections in
  if c.n < 2 then refuse "snapshot config: n=%d out of range" c.n;
  if c.g < 1 || c.k < 1 then
    refuse "snapshot config: g=%d k=%d out of range" c.g c.k;
  let loaded =
    match c.model, c.topology with
    | "lr", "ring" ->
      let params = { LR.Automaton.n = c.n; g = c.g; k = c.k } in
      let pa = LR.Automaton.make params in
      let spec = LR.Symmetry.ring ~n:c.n () in
      let arena, sym = rebuild ~pa ~spec sections in
      Lr
        { LR.Proof.params; expl = Mdp.Arena.explored arena; arena; sym }
    | "lr", (("line" | "star") as t) ->
      let topo =
        if t = "line" then LR.Topology.line c.n else LR.Topology.star c.n
      in
      let pa = LR.Automaton.make_general ~topo ~g:c.g ~k:c.k in
      let spec = LR.Symmetry.spec topo in
      let tarena, tsym = rebuild ~pa ~spec sections in
      Lr_topo
        { LR.Proof.topo; tg = c.g; tk = c.k;
          texpl = Mdp.Arena.explored tarena; tarena; tsym }
    | "lr", other -> refuse "snapshot config: unknown topology %S" other
    | "election", _ ->
      let params = { IR.Automaton.n = c.n; g = c.g; k = c.k } in
      let pa = IR.Automaton.make params in
      let spec = IR.Symmetry.spec params in
      let arena, sym = rebuild ~pa ~spec sections in
      Election
        { IR.Proof.params; expl = Mdp.Arena.explored arena; arena; sym }
    | "coin", _ ->
      if c.bound < 1 then
        refuse "snapshot config: bound=%d out of range" c.bound;
      let params =
        { SC.Automaton.n = c.n; bound = c.bound; g = c.g; k = c.k }
      in
      let pa = SC.Automaton.make params in
      let spec = SC.Symmetry.spec params in
      let arena, sym = rebuild ~pa ~spec sections in
      Coin
        { SC.Proof.params; expl = Mdp.Arena.explored arena; arena; sym }
    | "consensus", _ ->
      if Array.length c.initial <> c.n then
        refuse "snapshot config: %d initial estimates for n=%d"
          (Array.length c.initial) c.n;
      let params =
        { BO.Automaton.n = c.n; f = c.f; cap = c.cap; g = c.g; k = c.k }
      in
      let pa = BO.Automaton.make ~initial:c.initial params in
      let spec = BO.Symmetry.spec params ~initial:c.initial in
      let arena, sym = rebuild ~pa ~spec sections in
      Consensus
        { BO.Proof.params; initial = c.initial;
          expl = Mdp.Arena.explored arena; arena; sym }
    | other, _ -> refuse "snapshot config: unknown model %S" other
  in
  (c, loaded)

let of_string bytes =
  match Codec.decode bytes with
  | Error e -> Error e
  | Ok sections -> (
      try Ok (instantiate sections) with
      | Refuse msg -> Error msg
      | Invalid_argument msg | Failure msg ->
        Error (Printf.sprintf "snapshot rejected: %s" msg))

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | exception End_of_file ->
    Error (Printf.sprintf "%s: truncated while reading" path)
  | bytes -> of_string bytes

(* ------------------------------------------------------------------ *)
(* Registry seeding. *)

let preload ?max_states ~path () =
  match load ~path with
  | Error e -> Error e
  | Ok (c, loaded) ->
    let seeded =
      match loaded with
      | Lr i ->
        Models.preload_lr ?max_states ~g:c.g ~k:c.k ~sym:c.sym ~n:c.n i
      | Lr_topo i ->
        Models.preload_lr_topo ?max_states ~g:c.g ~k:c.k ~sym:c.sym
          ~topo:i.LR.Proof.topo i
      | Election i ->
        Models.preload_election ?max_states ~g:c.g ~k:c.k ~sym:c.sym
          ~n:c.n i
      | Coin i ->
        Models.preload_coin ?max_states ~g:c.g ~k:c.k ~sym:c.sym ~n:c.n
          ~bound:c.bound i
      | Consensus i ->
        Models.preload_consensus ?max_states ~g:c.g ~k:c.k ~sym:c.sym
          ~n:c.n ~f:c.f ~cap:c.cap ~initial:c.initial i
    in
    ignore seeded;
    Ok (describe c loaded)
