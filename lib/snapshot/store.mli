(** Arena snapshots: a compiled case-study instance as one [.prtba]
    file, loadable in milliseconds by a process that never ran the
    model.

    [prtb compile MODEL -o FILE.prtba] explores and compiles an
    instance, then {!save} serializes the compiled {!Mdp.Arena} -- the
    CSR offset arrays, the interned states, the tick mask and the
    exact rational probability plane (the float plane is recomputed on
    load exactly as {!Mdp.Arena.compile} computes it, and the dyadic
    and interval planes rebuild lazily as usual) -- together with the
    full model configuration and the arena's structural
    {!Mdp.Arena.fingerprint}.  [prtb serve --snapshot-dir DIR] then
    {!preload}s every snapshot at startup, so the first query for a
    snapshotted instance is answered without any exploration or
    compile ([/stats] reports [explorations: 0, compiles: 0]).

    Loading is as strict as [lib/cert]'s parser: an unknown container
    version, a truncated file, a one-byte tamper (the {!Codec} digest
    seals every byte), a malformed section, or a fingerprint that does
    not match the arena rebuilt by the {e current} model code are all
    named [Error]s -- a stale or foreign snapshot is refused, never
    silently served. *)

(** The full parameter tuple of a snapshotted instance.  Fields that a
    model does not use hold its conventional defaults ([topology] is
    ["ring"], [bound]/[cap]/[f] are [0], [initial] is [[||]]), so one
    record covers all case studies. *)
type config = {
  model : string;  (** ["lr"], ["election"], ["coin"] or ["consensus"] *)
  n : int;
  g : int;
  k : int;
  topology : string;  (** ["ring"], ["line"] or ["star"] (lr only) *)
  bound : int;  (** coin barrier *)
  cap : int;  (** consensus round cap *)
  f : int;  (** consensus fault bound *)
  initial : bool array;  (** consensus initial estimates *)
  sym : Analysis.Symmetry.mode;  (** exploration mode when compiled *)
}

(** A loaded instance, ready for the same engines the builders feed. *)
type loaded =
  | Lr of Lehmann_rabin.Proof.instance
  | Lr_topo of Lehmann_rabin.Proof.topo_instance
  | Election of Itai_rodeh.Proof.instance
  | Coin of Shared_coin.Proof.instance
  | Consensus of Ben_or.Proof.instance

(** A one-line human description, e.g.
    ["lr n=4 g=1 k=1 sym=on (142 states)"]. *)
val describe : config -> loaded -> string

(** Serialize to [prtba/1] bytes.  Raises [Invalid_argument] when
    [config] names a different model than [loaded] carries. *)
val encode : config -> loaded -> string

(** [save ~path config loaded] writes {!encode} output atomically
    (temp file + rename).  Raises [Sys_error] on I/O failure. *)
val save : path:string -> config -> loaded -> unit

(** Strict inverse of {!encode}: parses the container, rebuilds the
    fragment ({!Mdp.Explore.of_parts}) and the arena
    ({!Mdp.Arena.assemble}) under the current model code, and refuses
    -- with a named error -- anything malformed, tampered,
    version-skewed, or whose recomputed fingerprint disagrees with the
    stored one. *)
val of_string : string -> (config * loaded, string) result

(** {!of_string} on a file's bytes; I/O errors become [Error]. *)
val load : path:string -> (config * loaded, string) result

(** [preload ?max_states ~path] loads a snapshot and seeds the
    {!Models} registry under the key the matching builder would use
    with this [max_states] ceiling (pass the daemon's
    [config.max_states]).  [Ok description] on success -- also when
    the key was already cached, which keeps the existing entry --
    [Error] on refusal. *)
val preload :
  ?max_states:int -> path:string -> unit -> (string, string) result
