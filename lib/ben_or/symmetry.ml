let apply_state pi (s : Automaton.state) =
  let procs = Array.copy s.Automaton.procs in
  Array.iteri (fun i p -> procs.(pi.(i)) <- p) s.Automaton.procs;
  let permute_row = fun row ->
    let r = Array.copy row in
    Array.iteri (fun j x -> r.(pi.(j)) <- x) row;
    r
  in
  { Automaton.procs;
    reports = Array.map permute_row s.Automaton.reports;
    proposals = Array.map permute_row s.Automaton.proposals }

(* Collection subsets are generated as [collector :: rest] with [rest]
   ascending ([Automaton.collections]); re-normalize the permuted
   subset to that shape, else the image action would differ from the
   equal one actually enabled and PA030 would fire spuriously. *)
let apply_subset pi = function
  | [] -> []
  | collector :: rest ->
    pi.(collector) :: List.sort compare (List.map (fun j -> pi.(j)) rest)

let apply_action pi = function
  | Automaton.Tick -> Automaton.Tick
  | Automaton.Crash i -> Automaton.Crash pi.(i)
  | Automaton.Report i -> Automaton.Report pi.(i)
  | Automaton.Collect_reports (i, subset) ->
    Automaton.Collect_reports (pi.(i), apply_subset pi subset)
  | Automaton.Collect_proposals (i, subset) ->
    Automaton.Collect_proposals (pi.(i), apply_subset pi subset)

let transposition n a b =
  Array.init n (fun i -> if i = a then b else if i = b then a else i)

let generators (params : Automaton.params) ~initial =
  let n = params.Automaton.n in
  let gens = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto a + 1 do
      (* Only permutations fixing the start state are automorphisms:
         swapping processes with different initial values moves it. *)
      if initial.(a) = initial.(b) then begin
        let pi = transposition n a b in
        gens :=
          Analysis.Symmetry.generator
            ~name:(Printf.sprintf "swap(%d,%d)" a b)
            ~on_state:(apply_state pi) ~on_action:(apply_action pi)
          :: !gens
      end
    done
  done;
  !gens

let spec ?(extra = []) (params : Automaton.params) ~initial =
  let start = Automaton.start params initial in
  Analysis.Symmetry.spec
    ~preds:
      ([ ("Init", fun s -> s = start);
         ("Decided", Automaton.some_decided);
         ("Agreement", Automaton.agreement);
         ("Quiescent", Automaton.quiescent) ]
       @ extra)
    (generators params ~initial)
