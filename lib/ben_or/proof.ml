module Q = Proba.Rational

type instance = {
  params : Automaton.params;
  initial : Automaton.bit array;
  expl : (Automaton.state, Automaton.action) Mdp.Explore.t;
  arena : (Automaton.state, Automaton.action) Mdp.Arena.t;
  sym : Analysis.Symmetry.certificate option;
}

let build ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off) ~n
    ~f ~cap ~initial () =
  let params = { Automaton.n; f; cap; g; k } in
  let pa = Automaton.make ~initial params in
  let expl, cert =
    Analysis.Symmetry.explored ~model:"ben_or" ~mode:sym ?max_states
      (Symmetry.spec params ~initial) pa
  in
  { params; initial; expl; sym = cert;
    arena = Mdp.Arena.compile ~is_tick:Automaton.is_tick expl }

let agreement_violation inst =
  Mdp.Explore.check_invariant inst.expl Automaton.agreement

let validity_violation inst =
  let unanimous v = Array.for_all (Bool.equal v) inst.initial in
  if unanimous true then
    Mdp.Explore.check_invariant inst.expl (Automaton.never_decides false)
  else if unanimous false then
    Mdp.Explore.check_invariant inst.expl (Automaton.never_decides true)
  else None

type arrow = {
  label : string;
  time : Q.t;
  prob : Q.t;
  attained : Q.t;
  claim : Automaton.state Core.Claim.t option;
}

let init_pred inst =
  let start = Automaton.start inst.params inst.initial in
  Core.Pred.make "Init" (fun s -> s = start)

let decided_pred =
  Core.Pred.make "Decided" Automaton.some_decided

let decision_arrow inst ~rounds ~prob =
  let time = Q.of_int (3 * rounds) in
  let result =
    Mdp.Checker.check_arrow inst.arena
      ~granularity:inst.params.Automaton.g ~schema:Core.Schema.unit_time
      ~pre:(init_pred inst) ~post:decided_pred ~time ~prob
  in
  { label = Printf.sprintf "decide within %d round(s)" rounds;
    time; prob;
    attained = result.Mdp.Checker.attained;
    claim = result.Mdp.Checker.claim }

(* The certified termination statement at the exact attained bound: a
   first sweep at prob 0 always yields a claim and reports the true
   minimum, a second names that minimum as the bound so the minted
   leaf is as tight as the checker can certify.  The second sweep
   reuses the arena's memoized planes; only the backward induction
   runs twice. *)
let composed inst ~rounds =
  if rounds < 1 || rounds > inst.params.Automaton.cap then
    Error
      (Printf.sprintf "rounds=%d outside the modelled cap %d" rounds
         inst.params.Automaton.cap)
  else begin
    let probe = decision_arrow inst ~rounds ~prob:Q.zero in
    if Q.is_zero probe.attained then
      Error
        (Printf.sprintf
           "the adversary can block every decision within %d round(s) \
            (attained minimum 0)" rounds)
    else begin
      match (decision_arrow inst ~rounds ~prob:probe.attained).claim with
      | Some claim -> Ok claim
      | None -> Error "checker refused its own attained bound" (* unreachable *)
    end
  end

let decision_curve inst ~rounds =
  let target = Mdp.Arena.indicator inst.arena decided_pred in
  let i = List.hd (Mdp.Arena.start_indices inst.arena) in
  List.map
    (fun r ->
       let ticks =
         Core.Timed.within ~granularity:inst.params.Automaton.g
           ~time:(Q.of_int (3 * r))
       in
       let v = Mdp.Finite_horizon.min_reach inst.arena ~target ~ticks in
       v.(i))
    rounds

let capped_liveness inst =
  let target = Mdp.Arena.indicator inst.arena decided_pred in
  let always = Mdp.Qualitative.always_reaches inst.arena ~target in
  always.(List.hd (Mdp.Arena.start_indices inst.arena))
