(** Declared symmetries of the Ben-Or consensus automaton.

    Process transpositions lift to candidate automorphisms: permute
    the process array and every per-round report/proposal row, and
    rename the process indices carried by actions (collection subsets
    are re-normalized to the generator's [collector :: ascending]
    shape).  Only transpositions of processes with {e equal initial
    values} are declared -- others move the start state and would be
    PA030 violations, correctly. *)

val generators :
  Automaton.params -> initial:Automaton.bit array ->
  (Automaton.state, Automaton.action) Analysis.Symmetry.generator list

(** [spec params ~initial] declares the equal-initial-value
    transpositions together with the proof's predicates ([Init],
    [Decided], [Agreement], [Quiescent]). *)
val spec :
  ?extra:(string * (Automaton.state -> bool)) list ->
  Automaton.params -> initial:Automaton.bit array ->
  (Automaton.state, Automaton.action) Analysis.Symmetry.spec
