(** Machine-checked analysis of Ben-Or consensus.

    The classical claims, each verified exhaustively on the explored
    (round-capped) system:

    - {e agreement} (safety): no two processes ever decide different
      values -- checked over {e every} reachable state of the first
      [cap] rounds, all crash patterns and all message schedules;
    - {e validity}: from a unanimous start, the other value is never
      decided;
    - {e fast path}: from a unanimous start, some process decides
      within 3 time units (one round) with probability 1 under every
      adversary -- a genuine [U -3->_1 Decided] statement of the
      paper's form;
    - {e probabilistic termination}: from a mixed start the adversary
      can block any {e fixed} round (the round-1 minimum is 0 -- the
      classical impossibility of deterministic asynchronous consensus
      showing through), but the coin breaks every such schedule:
      within 2 rounds (6 time units) some process decides with
      probability at least [2^-n], exactly attained by the checker.

    Termination in the uncapped protocol is almost-sure but not
    time-bounded; the cap makes each statement finite and only ever
    weakens reachability, so the bounds transfer soundly. *)

type instance = {
  params : Automaton.params;
  initial : Automaton.bit array;
  expl : (Automaton.state, Automaton.action) Mdp.Explore.t;
  arena : (Automaton.state, Automaton.action) Mdp.Arena.t;
      (** [expl] compiled once with the model's tick mask. *)
  sym : Analysis.Symmetry.certificate option;
      (** present iff the fragment is the certified orbit quotient *)
}

(** [sym] (default [Off]) requests orbit-reduced exploration under the
    equal-initial-value process transpositions ({!Symmetry.spec}). *)
val build :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  n:int -> f:int -> cap:int ->
  initial:Automaton.bit array -> unit -> instance

(** [None] when agreement holds on every reachable state. *)
val agreement_violation : instance -> Automaton.state option

(** From a unanimous start: [None] if the opposite value is never
    decided; on mixed starts, always [None] (vacuous). *)
val validity_violation : instance -> Automaton.state option

type arrow = {
  label : string;
  time : Proba.Rational.t;
  prob : Proba.Rational.t;
  attained : Proba.Rational.t;
  claim : Automaton.state Core.Claim.t option;
}

(** [decision_arrow inst ~rounds ~prob] checks
    [Init -(3 rounds)->_prob Decided] where [Init] is the start state:
    one round takes at most 3 time units (report, collect, collect). *)
val decision_arrow :
  instance -> rounds:int -> prob:Proba.Rational.t -> arrow

(** The certified termination claim
    [Init -(3 rounds)->_p Decided] at the {e exact} attained bound
    [p]: a probe sweep finds the adversary's minimum, a second sweep
    certifies it, so the minted leaf is as tight as the checker can
    prove.  [Error] when [rounds] exceeds the modelled cap or the
    attained minimum is 0 (a fixed round the adversary can block --
    the deterministic-consensus impossibility showing through). *)
val composed :
  instance -> rounds:int -> (Automaton.state Core.Claim.t, string) result

(** Exact [min P(some process decides within 3 rounds time units)] for
    each requested round count. *)
val decision_curve : instance -> rounds:int list -> Proba.Rational.t list

(** Do all adversaries decide almost surely {e within the cap}?  (False
    for mixed starts: the capped system can park undecided; the real
    protocol decides a.s. only in the limit.) *)
val capped_liveness : instance -> bool
