type spec = { crash : int; loss : int; stuck : int }

let none = { crash = 0; loss = 0; stuck = 0 }

let v ?(crash = 0) ?(loss = 0) ?(stuck = 0) () =
  if crash < 0 || loss < 0 || stuck < 0 then
    invalid_arg "Fault.v: negative budget";
  { crash; loss; stuck }

let total f = f.crash + f.loss + f.stuck
let is_none f = total f = 0

let of_string spec =
  if String.trim spec = "none" then Ok none
  else
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ',' spec)
  in
  if fields = [] then Error "empty fault specification"
  else
    let rec go acc = function
      | [] -> Ok acc
      | field :: rest ->
        (match String.index_opt field ':' with
         | None ->
           Error
             (Printf.sprintf
                "fault field %S is not of the form kind:count (expected \
                 crash:N, loss:N or stuck:N)"
                field)
         | Some i ->
           let kind = String.sub field 0 i in
           let value =
             String.sub field (i + 1) (String.length field - i - 1)
           in
           (match int_of_string_opt value with
            | Some n when n >= 0 ->
              (match kind with
               | "crash" -> go { acc with crash = n } rest
               | "loss" -> go { acc with loss = n } rest
               | "stuck" -> go { acc with stuck = n } rest
               | other ->
                 Error
                   (Printf.sprintf
                      "unknown fault kind %S (expected crash, loss or \
                       stuck)"
                      other))
            | Some _ | None ->
              Error
                (Printf.sprintf "fault count %S is not a nonnegative int"
                   value)))
    in
    go none fields

let to_string f =
  let fields =
    List.filter_map Fun.id
      [ (if f.crash > 0 then Some (Printf.sprintf "crash:%d" f.crash)
         else None);
        (if f.loss > 0 then Some (Printf.sprintf "loss:%d" f.loss)
         else None);
        (if f.stuck > 0 then Some (Printf.sprintf "stuck:%d" f.stuck)
         else None) ]
  in
  match fields with [] -> "none" | _ -> String.concat "," fields

let pp fmt f = Format.pp_print_string fmt (to_string f)
