module D = Proba.Dist

type 's state = {
  base : 's;
  crashed : int list;
  stuck : int list;
  left : Fault.spec;
}

type 'a action =
  | Step of 'a
  | Crash of int
  | Lost of int
  | Stall of int
  | Resume of int

type ('s, 'a) hooks = {
  procs : 's -> int;
  proc_of_action : 'a -> int option;
  on_crash : 's -> int -> 's;
  on_lost : 's -> int -> 's option;
  on_wake : 's -> int -> 's;
}

let init ~budget base = { base; crashed = []; stuck = []; left = budget }
let base w = w.base

let insert i l = List.sort_uniq compare (i :: l)
let remove i l = List.filter (fun j -> j <> i) l

let faulted w = List.sort_uniq compare (w.crashed @ w.stuck)
let is_crashed w i = List.mem i w.crashed
let is_stuck w i = List.mem i w.stuck
let remaining w = w.left

let effective_proc proc_of_action = function
  | Step a -> proc_of_action a
  | Crash _ | Lost _ | Stall _ | Resume _ -> None

let is_injection = function
  | Step _ -> false
  | Crash _ | Lost _ | Stall _ | Resume _ -> true

let duration base_duration = function
  | Step a -> base_duration a
  | Crash _ | Lost _ | Stall _ | Resume _ -> 0

let lift_pred p =
  Core.Pred.make (Core.Pred.name p) (fun w -> Core.Pred.mem p w.base)

let wrap ~hooks ~budget m =
  let lift w s = { w with base = s } in
  let equal_state a b =
    Core.Pa.equal_state m a.base b.base
    && a.crashed = b.crashed && a.stuck = b.stuck && a.left = b.left
  in
  let lost_step w i ~charge =
    match hooks.on_lost w.base i with
    | None -> None
    | Some base ->
      let left =
        if charge then { w.left with Fault.loss = w.left.Fault.loss - 1 }
        else w.left
      in
      Some
        { Core.Pa.action = Lost i;
          dist = D.point { w with base; left } }
  in
  let enabled w =
    let base_steps = Core.Pa.enabled m w.base in
    (* Base steps survive unless their process is crashed; a stalled
       process's steps collapse into a single [Lost] scheduling. *)
    let surviving =
      List.filter_map
        (fun st ->
           match hooks.proc_of_action st.Core.Pa.action with
           | Some i when List.mem i w.crashed -> None
           | Some i when List.mem i w.stuck -> None
           | Some _ | None ->
             Some
               { Core.Pa.action = Step st.Core.Pa.action;
                 (* Merge under the base automaton's state equality:
                    with the default structural [equal], PA-equal but
                    structurally distinct outcomes would stay split and
                    bloat every downstream sweep. *)
                 dist = D.map ~equal:equal_state (lift w) st.Core.Pa.dist })
        base_steps
    in
    let schedulable i =
      List.exists
        (fun st -> hooks.proc_of_action st.Core.Pa.action = Some i)
        base_steps
    in
    let stalled_losses =
      List.filter_map
        (fun i ->
           if schedulable i then lost_step w i ~charge:false else None)
        w.stuck
    in
    let injected_losses =
      if w.left.Fault.loss <= 0 then []
      else
        List.filter_map
          (fun i ->
             if List.mem i w.crashed || List.mem i w.stuck
             || not (schedulable i) then None
             else lost_step w i ~charge:true)
          (List.init (hooks.procs w.base) Fun.id)
    in
    let crashes =
      if w.left.Fault.crash <= 0 then []
      else
        List.filter_map
          (fun i ->
             if List.mem i w.crashed then None
             else
               Some
                 { Core.Pa.action = Crash i;
                   dist =
                     D.point
                       { base = hooks.on_crash w.base i;
                         crashed = insert i w.crashed;
                         stuck = remove i w.stuck;
                         left =
                           { w.left with
                             Fault.crash = w.left.Fault.crash - 1 } } })
          (List.init (hooks.procs w.base) Fun.id)
    in
    let stalls =
      if w.left.Fault.stuck <= 0 then []
      else
        List.filter_map
          (fun i ->
             if List.mem i w.crashed || List.mem i w.stuck then None
             else
               Some
                 { Core.Pa.action = Stall i;
                   dist =
                     D.point
                       { w with
                         stuck = insert i w.stuck;
                         left =
                           { w.left with
                             Fault.stuck = w.left.Fault.stuck - 1 } } })
          (List.init (hooks.procs w.base) Fun.id)
    in
    let resumes =
      List.map
        (fun i ->
           { Core.Pa.action = Resume i;
             dist =
               D.point
                 { w with
                   base = hooks.on_wake w.base i;
                   stuck = remove i w.stuck } })
        w.stuck
    in
    surviving @ stalled_losses @ injected_losses @ crashes @ stalls
    @ resumes
  in
  let hash_state w =
    Hashtbl.hash (Core.Pa.hash_state m w.base, w.crashed, w.stuck, w.left)
  in
  let equal_action a b =
    match a, b with
    | Step x, Step y -> Core.Pa.equal_action m x y
    | Crash i, Crash j | Lost i, Lost j | Stall i, Stall j
    | Resume i, Resume j -> i = j
    | (Step _ | Crash _ | Lost _ | Stall _ | Resume _), _ -> false
  in
  let is_external = function
    | Step a -> Core.Pa.is_external m a
    | Crash _ | Lost _ | Stall _ | Resume _ -> false
  in
  let pp_state fmt w =
    Format.fprintf fmt "@[<h>%a" (Core.Pa.pp_state m) w.base;
    if w.crashed <> [] then
      Format.fprintf fmt " crashed:{%s}"
        (String.concat "," (List.map string_of_int w.crashed));
    if w.stuck <> [] then
      Format.fprintf fmt " stuck:{%s}"
        (String.concat "," (List.map string_of_int w.stuck));
    if not (Fault.is_none w.left) then
      Format.fprintf fmt " faults:%s" (Fault.to_string w.left);
    Format.fprintf fmt "@]"
  in
  let pp_action fmt = function
    | Step a -> Core.Pa.pp_action m fmt a
    | Crash i -> Format.fprintf fmt "crash_%d" i
    | Lost i -> Format.fprintf fmt "lost_%d" i
    | Stall i -> Format.fprintf fmt "stall_%d" i
    | Resume i -> Format.fprintf fmt "resume_%d" i
  in
  Core.Pa.make ~equal_state ~hash_state ~equal_action ~is_external
    ~pp_state ~pp_action
    ~start:(List.map (init ~budget) (Core.Pa.start m))
    ~enabled ()
