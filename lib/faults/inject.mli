(** Fault injection as a composable transformer of probabilistic
    automata.

    [wrap ~hooks ~budget m] is an automaton over {!state} whose
    executions are exactly the executions of [m] interleaved with at
    most [budget] fault events, chosen by the adversary:

    - [Crash i] (permanent): process [i] takes no further steps.  The
      model-specific [on_crash] hook rewrites the base state so that the
      crashed process stops participating in the clock discipline (for
      the digital-clock case studies: park it in a non-ready region so
      [Tick] is never blocked on it).  Whether it releases held shared
      variables is the hook's decision -- both conventions are faithful
      fault models, with very different consequences.
    - [Lost i] (transient): process [i] is scheduled and the scheduling
      bookkeeping applies ([on_lost]: deadline restarted, step budget
      consumed), but the step's {e effect} is dropped.  Charged against
      [budget.loss].
    - [Stall i] / [Resume i]: process [i] wedges -- every one of its
      steps is replaced by a [Lost] step -- until the adversary resumes
      it ([on_wake]).  [Stall] is charged against [budget.stuck];
      [Resume] is free.  A stalled process the adversary never resumes
      behaves like a crash that still honours its scheduling
      obligations.

    The remaining budget is part of the wrapped state.  Two consequences
    matter:

    - {b Schema closure.}  Shifting a fault-injecting adversary past an
      execution fragment leaves a fault-injecting adversary for the
      suffix, with exactly the budget the fragment's last state still
      carries -- so {!Core.Schema.with_faults} inherits execution
      closure and Theorem 3.4 composition applies unchanged.
    - {b No Zeno behaviours.}  Every injected action is instantaneous,
      but each either consumes budget ([Crash]/[Stall]/[Lost]) or
      strictly shrinks the stalled set ([Resume]); [Lost] additionally
      consumes the process's per-slot step budget via [on_lost].  Hence
      the zero-time layers of the wrapped clocked automaton stay
      acyclic and exactly checkable.

    Crashed processes' base steps are removed by the wrapper itself, in
    addition to whatever [on_crash] does -- the linter check [PA012]
    verifies this isolation property on the explored wrapped space. *)

(** A base state plus fault bookkeeping.  [crashed] and [stuck] are
    sorted, duplicate-free process lists; [left] is the remaining
    budget. *)
type 's state = {
  base : 's;
  crashed : int list;
  stuck : int list;
  left : Fault.spec;
}

type 'a action =
  | Step of 'a  (** a surviving base step *)
  | Crash of int
  | Lost of int  (** a scheduled step whose effect was dropped *)
  | Stall of int
  | Resume of int

(** Model-specific surgery, invoked on base states.

    [procs] counts the processes of a state; [proc_of_action] attributes
    a base action to the process performing it ([None] for global
    actions such as [Tick], which faults never touch).

    [on_lost s i] applies the scheduling bookkeeping of a dropped step,
    or returns [None] when process [i] cannot absorb one now (e.g. its
    per-slot step budget is exhausted, or its only enabled actions are
    user-controlled ones, which the adversary may simply withhold
    instead).  Returning [Some s] with [s] unchanged would introduce a
    zero-time cycle; hooks must consume some decreasing resource. *)
type ('s, 'a) hooks = {
  procs : 's -> int;
  proc_of_action : 'a -> int option;
  on_crash : 's -> int -> 's;
  on_lost : 's -> int -> 's option;
  on_wake : 's -> int -> 's;
}

(** [init ~budget s] wraps a base state with a full budget and no
    faults. *)
val init : budget:Fault.spec -> 's -> 's state

val base : 's state -> 's

(** Processes currently unable to make progress: crashed or stalled.
    Sorted, duplicate-free. *)
val faulted : 's state -> int list

val is_crashed : 's state -> int -> bool
val is_stuck : 's state -> int -> bool

(** Remaining injection budget. *)
val remaining : 's state -> Fault.spec

(** The process whose {e base} step an action performs: [Step a] maps
    through the hook, every injected action (including [Lost]) to
    [None].  This is the view the [PA012] lint check consumes. *)
val effective_proc : ('a -> int option) -> 'a action -> int option

val is_injection : 'a action -> bool

(** Durations lift from the base: injections are instantaneous. *)
val duration : ('a -> int) -> 'a action -> int

(** [lift_pred p] evaluates [p] on the base component, {e keeping
    [p]'s name} so claim-level predicate matching is unaffected. *)
val lift_pred : 's Core.Pred.t -> 's state Core.Pred.t

(** [wrap ~hooks ~budget m] is the fault-extended automaton.  Its start
    states are [m]'s, wrapped with the full budget.  Injected actions
    are internal. *)
val wrap :
  hooks:('s, 'a) hooks -> budget:Fault.spec -> ('s, 'a) Core.Pa.t ->
  ('s state, 'a action) Core.Pa.t
