module Q = Proba.Rational
module LS = Lehmann_rabin.State
module LA = Lehmann_rabin.Automaton
module LRg = Lehmann_rabin.Regions

type config = {
  params : LA.params;
  faults : Fault.spec;
  release : bool;
}

type wstate = LS.t Inject.state
type waction = LA.action Inject.action

let set_proc (s : LS.t) i p =
  let procs = Array.copy s.LS.procs in
  procs.(i) <- p;
  { s with LS.procs }

let set_res (s : LS.t) j taken =
  let res = Array.copy s.LS.res in
  res.(j) <- taken;
  { s with LS.res }

let proc_of_action = function
  | LA.Tick -> None
  | LA.Try i | LA.Exit i | LA.Flip i | LA.Wait i | LA.Second i
  | LA.Drop i | LA.Crit i | LA.Drop_second i | LA.Rem i -> Some i
  | LA.Drop_first (i, _) -> Some i

let hooks ~release (params : LA.params) =
  let { LA.n; g; k } = params in
  let on_crash s i =
    let p = s.LS.procs.(i) in
    let s =
      if not release then s
      else
        List.fold_left
          (fun s side ->
             if LS.holds p.LS.region side then
               set_res s (LS.resource_index ~n i side) false
             else s)
          s [ LS.L; LS.R ]
    in
    (* Canonical remainder clocks: a non-ready region never blocks
       [Tick], so the crashed process drops out of the Unit-Time
       obligations instead of deadlocking them. *)
    set_proc s i { LS.region = LS.Rem; c = g; b = k }
  in
  let on_lost s i =
    let p = s.LS.procs.(i) in
    (* Mirror [stepped]: only a process the base automaton would let
       run can have that run stolen, and the theft burns one unit of
       its per-slot step budget -- which keeps zero-time layers
       acyclic.  User-controlled steps (remainder/critical) cannot be
       "lost": withholding them is already the adversary's right. *)
    if LS.ready p.LS.region && p.LS.b > 0 then
      Some (set_proc s i { p with LS.c = g; b = p.LS.b - 1 })
    else None
  in
  let on_wake s i =
    let p = s.LS.procs.(i) in
    set_proc s i { p with LS.c = g }
  in
  { Inject.procs = (fun s -> Array.length s.LS.procs);
    proc_of_action; on_crash; on_lost; on_wake }

let make config =
  Inject.wrap
    ~hooks:(hooks ~release:config.release config.params)
    ~budget:config.faults
    (LA.make config.params)

let is_tick = function
  | Inject.Step a -> LA.is_tick a
  | Inject.Crash _ | Inject.Lost _ | Inject.Stall _ | Inject.Resume _ ->
    false

let duration = Inject.duration LA.duration

let schema faults =
  Core.Schema.with_faults ~desc:(Fault.to_string faults)
    Core.Schema.unit_time

(* ----------------------------------------------------------------- *)
(* Fault-aware state sets. *)

let live w i = not (Inject.is_crashed w i)
let region w i = (Inject.base w).LS.procs.(i).LS.region

let fold_procs w f init =
  let n = Array.length (Inject.base w).LS.procs in
  let rec go acc i = if i >= n then acc else go (f acc i) (i + 1) in
  go init 0

let some_live_in w pred =
  fold_procs w (fun acc i -> acc || (live w i && pred (region w i))) false

let every_live_in w pred =
  fold_procs w (fun acc i -> acc && ((not (live w i)) || pred (region w i)))
    true

let all_live_trying w =
  some_live_in w (fun _ -> true) && every_live_in w LRg.trying

let live_trying = Core.Pred.make "T∧live" all_live_trying

let almost_there =
  Core.Pred.make "C∨P∧live" (fun w ->
      some_live_in w (fun r -> r = LS.Crit)
      || (some_live_in w (fun r -> r = LS.Pre) && all_live_trying w))

let live_crit =
  Core.Pred.make "C∧live" (fun w -> some_live_in w (fun r -> r = LS.Crit))

(* ----------------------------------------------------------------- *)
(* Re-derived claims. *)

type arrow = {
  label : string;
  time : Q.t;
  attained : Q.t;
  pre_states : int;
  claim : wstate Core.Claim.t option;
}

type derivation = {
  states : int;
  arrow1 : arrow;
  arrow2 : arrow;
  composed : (wstate Core.Claim.t, string) result;
  direct : Q.t;
}

let derive ?max_states config =
  let pa = make config in
  let expl = Mdp.Explore.run ?max_states pa in
  let arena = Mdp.Arena.compile ~is_tick expl in
  let granularity = config.params.LA.g in
  let sch = schema config.faults in
  let check ~pre ~post ~time ~prob =
    Mdp.Checker.check_arrow arena ~granularity ~schema:sch ~pre ~post
      ~time ~prob
  in
  (* Two passes: learn the exact attained minimum, then certify the
     claim at exactly that bound (the "degraded" constant). *)
  let tight ~label ~pre ~post ~time =
    let first = check ~pre ~post ~time ~prob:Q.one in
    let attained = first.Mdp.Checker.attained in
    let claim =
      match first.Mdp.Checker.claim with
      | Some _ as c -> c
      | None -> (check ~pre ~post ~time ~prob:attained).Mdp.Checker.claim
    in
    { label; time; attained;
      pre_states = first.Mdp.Checker.pre_states; claim }
  in
  let arrow1 =
    tight ~label:"T∧live -12-> C∨P∧live" ~pre:live_trying
      ~post:almost_there ~time:(Q.of_int 12)
  in
  let arrow2 =
    tight ~label:"C∨P∧live -8-> C∧live" ~pre:almost_there ~post:live_crit
      ~time:(Q.of_int 8)
  in
  let composed =
    match arrow1.claim, arrow2.claim with
    | Some c1, Some c2 ->
      (try Ok (Core.Claim.compose c1 c2)
       with Core.Claim.Rule_violation msg -> Error msg)
    | None, _ | _, None ->
      Error "an arrow failed to certify even at its attained bound"
  in
  let direct =
    (check ~pre:live_trying ~post:live_crit ~time:(Q.of_int 13)
       ~prob:Q.one).Mdp.Checker.attained
  in
  { states = Mdp.Explore.num_states expl; arrow1; arrow2; composed;
    direct }

let check_budgeted ?(budget = Core.Budget.unlimited) ?(seed = 0)
    ?(time = Q.of_int 13) ?(prob = Q.of_ints 1 8) config =
  let pa = make config in
  let granularity = config.params.LA.g in
  let { LA.n; g; k } = config.params in
  let start = Inject.init ~budget:config.faults (LS.all_trying ~n ~g ~k) in
  let within = Core.Timed.within ~granularity ~time in
  let fallback clock =
    let setup =
      { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
        duration; start }
    in
    Sim.Monte_carlo.estimate_reach_budgeted setup
      ~target:(Core.Pred.mem live_crit) ~within ~clock ~seed ()
  in
  Resilient.check_arrow ~budget ~fallback ~pa ~is_tick ~granularity
    ~schema:(schema config.faults) ~pre:live_trying ~post:live_crit ~time
    ~prob ()
