(** Lehmann-Rabin dining philosophers under injected faults.

    Instantiates {!Inject} for the clocked ring automaton of
    [lib/lehmann_rabin] and re-derives time-bound claims that survive a
    fault budget.  The interesting knob is [release]: whether a crashed
    process's held resources are freed (fail-stop with cleanup) or leak
    (fail-stop holding its forks).  With [crash:1] and [release:false]
    the adversary can wait until a process holds both forks and crash it
    then, locking the ring forever -- the attained probability of
    reaching the critical region drops to exactly 0.  With
    [release:true] a positive degraded bound survives; {!derive} both
    computes it and certifies it through the claim DSL, so Theorem 3.4
    composition is exercised over the fault-extended schema. *)

type config = {
  params : Lehmann_rabin.Automaton.params;
  faults : Fault.spec;
  release : bool;  (** crashed processes free their held resources *)
}

type wstate = Lehmann_rabin.State.t Inject.state
type waction = Lehmann_rabin.Automaton.action Inject.action

(** The injection hooks: crash parks a process in its remainder region
    with canonical clocks (so [Tick] is never blocked on it), a lost
    step restarts the deadline and burns one unit of per-slot step
    budget (exactly like a real scheduling), waking refreshes the
    deadline. *)
val hooks :
  release:bool -> Lehmann_rabin.Automaton.params ->
  (Lehmann_rabin.State.t, Lehmann_rabin.Automaton.action) Inject.hooks

val make : config -> (wstate, waction) Core.Pa.t

(** The process a base action belongs to ([Tick] to none); pair it with
    {!Inject.effective_proc} for the PA012 fault-isolation lint view. *)
val proc_of_action : Lehmann_rabin.Automaton.action -> int option

val is_tick : waction -> bool
val duration : waction -> int

(** [Unit-Time+faults(...)]: execution closed because the remaining
    budget lives in the wrapped state (see {!Core.Schema.with_faults}). *)
val schema : Fault.spec -> Core.Schema.t

(** {1 Fault-aware state sets}

    Liveness under crashes is relative to the survivors: the paper's
    [T -13->_{1/8} C] becomes a statement about {e live} processes. *)

(** [T∧live]: some process is live, and every live process is in its
    trying region.  (Stable under crashes of trying processes, which is
    what makes it a usable pre-set: the adversary cannot leave the set
    by spending its budget.) *)
val live_trying : wstate Core.Pred.t

(** [C∨P∧live]: a live process is critical, or a live process is
    pre-critical while every live process is trying.  The midpoint of
    the two-arrow derivation. *)
val almost_there : wstate Core.Pred.t

(** [C∧live]: some live process is in its critical region. *)
val live_crit : wstate Core.Pred.t

(** {1 Re-derived claims} *)

type arrow = {
  label : string;
  time : Proba.Rational.t;
  attained : Proba.Rational.t;  (** exact min over reachable pre-states *)
  pre_states : int;
  claim : wstate Core.Claim.t option;
      (** certified at [prob = attained] *)
}

type derivation = {
  states : int;  (** explored wrapped states *)
  arrow1 : arrow;  (** [T∧live -12-> C∨P∧live] *)
  arrow2 : arrow;  (** [C∨P∧live -8-> C∧live] *)
  composed : (wstate Core.Claim.t, string) result;
      (** [T∧live -20->_{p1*p2} C∧live] via Theorem 3.4 *)
  direct : Proba.Rational.t;
      (** exact min for [T∧live -13-> C∧live], the paper's horizon *)
}

(** [derive config] explores the wrapped automaton exhaustively and
    certifies the degraded bound.  Raises {!Mdp.Explore.Too_many_states}
    beyond [max_states]; use {!check_budgeted} for the never-raising
    path. *)
val derive : ?max_states:int -> config -> derivation

(** [check_budgeted config] runs the {!Resilient} ladder on
    [T∧live -time->_prob C∧live] (defaults: the paper's [13] and
    [1/8]).  The Monte Carlo fallback simulates from the wrapped
    all-trying start under the uniform scheduler. *)
val check_budgeted :
  ?budget:Core.Budget.t -> ?seed:int -> ?time:Proba.Rational.t ->
  ?prob:Proba.Rational.t -> config -> wstate Resilient.verdict
