module Q = Proba.Rational

type 's exact = {
  attained : Q.t;
  meets : bool;
  witness : 's option;
  pre_states : int;
  states : int;
  claim : 's Core.Claim.t option;
}

type estimate = {
  est : Sim.Monte_carlo.budgeted;
  meets_point : bool;
  reason : string;
}

type 's verdict =
  | Exact of 's exact
  | Estimate of estimate
  | Exhausted of string

let check_arrow ?(budget = Core.Budget.unlimited) ?fallback ~pa ~is_tick
    ~granularity ~schema ~pre ~post ~time ~prob () =
  let clock = Core.Budget.start budget in
  let degrade reason =
    match fallback with
    | None -> Exhausted reason
    | Some run ->
      let est = run clock in
      let meets_point =
        Proba.Stat.Proportion.estimate est.Sim.Monte_carlo.prop
        >= Q.to_float prob
      in
      Estimate { est; meets_point; reason }
  in
  let part = Mdp.Explore.run_budgeted ~clock pa in
  if part.Mdp.Explore.complete then begin
    let expl = part.Mdp.Explore.fragment in
    (* The exploration honoured the wall budget cooperatively, but the
       arena compile and the checker sweeps used to run unbounded once
       exploration squeaked in under the wire.  Arm the shared clock as
       an ambient deadline so the engines' poll points cut the exact
       check mid-sweep, then fall down the same ladder. *)
    match
      Core.Budget.with_deadline clock (fun () ->
          let arena = Mdp.Arena.compile ~is_tick expl in
          Mdp.Checker.check_arrow arena ~granularity ~schema ~pre ~post
            ~time ~prob)
    with
    | r ->
      Exact
        { attained = r.Mdp.Checker.attained;
          meets = r.Mdp.Checker.claim <> None;
          witness = r.Mdp.Checker.witness;
          pre_states = r.Mdp.Checker.pre_states;
          states = Mdp.Explore.num_states expl;
          claim = r.Mdp.Checker.claim }
    | exception Core.Budget.Deadline_exceeded reason ->
      degrade
        (Printf.sprintf "exact check abandoned mid-sweep (%d states): %s"
           (Mdp.Explore.num_states expl) reason)
  end
  else
    degrade
      (Printf.sprintf "exact exploration stopped after %d states: %s"
         (Mdp.Explore.num_states part.Mdp.Explore.fragment)
         (Option.value part.Mdp.Explore.stopped ~default:"budget exhausted"))

let pp_verdict fmt = function
  | Exact e ->
    Format.fprintf fmt
      "@[<v>exact: min P = %s over %d pre-states (%d states explored): \
       %s@]"
      (Q.to_string e.attained) e.pre_states e.states
      (if e.meets then "bound holds" else "bound MISSED")
  | Estimate e ->
    let lo, hi = Proba.Stat.Proportion.wilson_ci e.est.Sim.Monte_carlo.prop in
    Format.fprintf fmt
      "@[<v>Monte Carlo ESTIMATE (not a proof; %s):@ p-hat = %.4f, 95%% \
       CI [%.4f, %.4f], %d trials in %d batches%s@]"
      e.reason
      (Proba.Stat.Proportion.estimate e.est.Sim.Monte_carlo.prop)
      lo hi e.est.Sim.Monte_carlo.trials_run
      e.est.Sim.Monte_carlo.batches
      (match e.est.Sim.Monte_carlo.stopped with
       | None -> ""
       | Some r -> Printf.sprintf " (stopped: %s)" r)
  | Exhausted reason ->
    Format.fprintf fmt
      "budget exhausted (%s) and no simulation fallback available" reason
