(** Fault specifications: what may go wrong, and how many times.

    A specification is an {e exact budget}: it bounds how many fault
    events of each kind the adversary may inject over a whole execution.
    The remaining budget travels inside the wrapped automaton's state
    (see {!Inject}), which is what keeps the fault-extended adversary
    schema execution closed (the premise of Theorem 3.4) and the
    zero-time layers of the clocked encoding acyclic. *)

type spec = {
  crash : int;  (** processes that may halt permanently *)
  loss : int;  (** scheduled steps whose effect may be dropped *)
  stuck : int;  (** times a process may wedge until explicitly resumed *)
}

(** No faults at all. *)
val none : spec

(** [v ()] is {!none}; each field raises the corresponding budget.
    Raises [Invalid_argument] on a negative count. *)
val v : ?crash:int -> ?loss:int -> ?stuck:int -> unit -> spec

(** Total number of injections the budget still allows ([Resume] is
    free; it only undoes a paid [Stall]). *)
val total : spec -> int

val is_none : spec -> bool

(** [of_string spec] parses a comma-separated list such as
    ["crash:1,loss:2"]; omitted kinds default to 0, and ["none"] is the
    empty budget. *)
val of_string : string -> (spec, string) result

(** Inverse of {!of_string}; ["none"] for {!none}. *)
val to_string : spec -> string

val pp : Format.formatter -> spec -> unit
