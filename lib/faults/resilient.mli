(** Budgeted verification with graceful degradation.

    The exact pipeline (explore, then backward induction) gives the
    true minimum over all adversaries, but its state space may not fit
    a budget.  This module runs the ladder:

    + explore under the budget ({!Mdp.Explore.run_budgeted});
    + if exploration completed, check exactly ({!Mdp.Checker});
    + otherwise fall back to Monte Carlo estimation under the {e same}
      clock, reporting a Wilson confidence interval.

    The verdict always says which rung produced the answer.  Note the
    asymmetry: an {!Exact} verdict is a bound over {e all} adversaries
    of the schema, while an {!Estimate} samples the {e one} scheduler
    the fallback supplies and is labelled accordingly -- it is
    evidence, not proof. *)

type 's exact = {
  attained : Proba.Rational.t;  (** exact min over pre-states *)
  meets : bool;  (** [attained >= prob] *)
  witness : 's option;
  pre_states : int;
  states : int;  (** explored state count *)
  claim : 's Core.Claim.t option;  (** present iff [meets] *)
}

type estimate = {
  est : Sim.Monte_carlo.budgeted;
  meets_point : bool;  (** point estimate [>= prob] (not a guarantee) *)
  reason : string;  (** why the exact rung was abandoned *)
}

type 's verdict =
  | Exact of 's exact
  | Estimate of estimate
  | Exhausted of string
      (** budget ran out and no fallback was supplied *)

(** [check_arrow ~pa ... ()] runs the ladder for [pre -time->_prob
    post].  [fallback] receives the (partly consumed) clock and should
    run a budgeted simulation estimating the same reachability
    probability.  Never raises on budget exhaustion. *)
val check_arrow :
  ?budget:Core.Budget.t ->
  ?fallback:(Core.Budget.clock -> Sim.Monte_carlo.budgeted) ->
  pa:('s, 'a) Core.Pa.t -> is_tick:('a -> bool) -> granularity:int ->
  schema:Core.Schema.t -> pre:'s Core.Pred.t -> post:'s Core.Pred.t ->
  time:Proba.Rational.t -> prob:Proba.Rational.t -> unit -> 's verdict

(** Human-readable rendering, naming the rung that answered. *)
val pp_verdict : Format.formatter -> 's verdict -> unit
