module Q = Proba.Rational
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or
module Race = Models.Race

type config = {
  lr_ns : int list;
  lr_g : int;
  lr_k : int;
  sweep_gk : bool;
  ir_ns : int list;
  coin_cases : (int * int) list;  (** (n, bound) pairs for E11 *)
  sim_ns : int list;
  sim_trials : int;
  seed : int;
}

let default =
  { lr_ns = [ 3 ]; lr_g = 1; lr_k = 1; sweep_gk = true;
    ir_ns = [ 2; 3; 4; 5 ];
    coin_cases = [ (2, 2); (2, 4); (3, 3); (5, 4) ];
    sim_ns = [ 4; 6; 8; 12 ]; sim_trials = 2000; seed = 1994 }

let quick =
  { default with sweep_gk = false; ir_ns = [ 2; 3 ];
                 coin_cases = [ (2, 2); (2, 3) ]; sim_ns = [ 4 ];
                 sim_trials = 200 }

let full =
  { default with lr_ns = [ 3; 4 ]; ir_ns = [ 2; 3; 4; 5; 6 ];
                 coin_cases = [ (2, 2); (2, 4); (3, 3); (5, 4); (4, 6) ];
                 sim_ns = [ 4; 6; 8; 12; 16; 24 ]; sim_trials = 5000 }

(* Instances come from the model registry, whose process-wide memo
   table plays the role the harness's private caches used to: repeated
   experiments in one run share explorations and compiled arenas. *)
type ctx = { config : config }

let make_ctx config = { config }

let lr_instance ctx ~n ~g ~k =
  ignore ctx;
  Models.lr ~n ~g ~k ()

let ir_instance ctx ~n =
  ignore ctx;
  Models.election ~n ()

let banner id title claim =
  Printf.printf "\n=== %s: %s ===\n" id title;
  Printf.printf "paper claim: %s\n\n" claim

let verdict = function true -> "OK" | false -> "VIOLATED"

(* ----------------------------------------------------------------- *)

let e1_arrows ctx =
  banner "E1" "the five phase statements (Sec. 6.2 / App. A)"
    "A.1: P -1->_1 C;  A.3: T -2->_1 RT∪C;  A.15: RT -3->_1 F∪G∪P;  \
     A.14: F -2->_1/2 G∪P;  A.11: G -5->_1/4 P";
  let t =
    Table.create
      [ "n"; "g"; "k"; "arrow"; "paper t"; "paper p"; "attained min";
        "pre-states"; "verdict" ]
  in
  let configs =
    let base =
      List.map (fun n -> (n, ctx.config.lr_g, ctx.config.lr_k)) ctx.config.lr_ns
    in
    if ctx.config.sweep_gk then base @ [ (3, 1, 2); (3, 2, 1) ] else base
  in
  List.iter
    (fun (n, g, k) ->
       let inst = lr_instance ctx ~n ~g ~k in
       List.iter
         (fun a ->
            Table.row t
              [ string_of_int n; string_of_int g; string_of_int k;
                Printf.sprintf "%s: %s -> %s" a.LR.Proof.label
                  (Core.Pred.name a.LR.Proof.pre)
                  (Core.Pred.name a.LR.Proof.post);
                Q.to_string a.LR.Proof.time; Q.to_string a.LR.Proof.prob;
                Q.to_string a.LR.Proof.attained;
                string_of_int a.LR.Proof.pre_states;
                verdict (a.LR.Proof.claim <> None) ])
         (LR.Proof.arrows inst))
    configs;
  Table.print t;
  print_newline ()

let e2_composed ctx =
  banner "E2" "composition into T -13->_1/8 C (Prop 3.2 + Thm 3.4)"
    "T -13->_1/8 C under Unit-Time, derived from the five arrows";
  List.iter
    (fun n ->
       let inst =
         lr_instance ctx ~n ~g:ctx.config.lr_g ~k:ctx.config.lr_k
       in
       match LR.Proof.composed inst with
       | Error e -> Printf.printf "n=%d: FAILED (%s)\n" n e
       | Ok claim ->
         Format.printf "n=%d: %a  [fully verified: %b]@." n Core.Claim.pp
           claim
           (Core.Claim.fully_verified claim);
         if n = List.hd ctx.config.lr_ns then begin
           Format.printf "@.derivation (n=%d):@.%a@." n
             Core.Claim.pp_derivation claim
         end)
    ctx.config.lr_ns;
  print_newline ()

let lr_sim_setup ~n ~g ~k scheduler_of =
  let params = { LR.Automaton.n; g; k } in
  let pa = LR.Automaton.make params in
  (pa,
   { Sim.Monte_carlo.pa;
     scheduler = scheduler_of pa;
     duration = LR.Automaton.duration;
     start = LR.State.all_trying ~n ~g ~k })

let e3_expected ctx =
  banner "E3" "expected time to progress (Sec. 6.2 recurrence)"
    "E[V] = 60 from RT to P; expected time from T to C at most 63";
  let bound = LR.Proof.expected_bound () in
  Format.printf "derived bound:@.%a@.@." Core.Expected.pp bound;
  let t =
    Table.create [ "method"; "n"; "scheduler"; "E[time T->C]"; "vs 63" ] in
  List.iter
    (fun n ->
       let inst =
         lr_instance ctx ~n ~g:ctx.config.lr_g ~k:ctx.config.lr_k
       in
       let worst = LR.Proof.max_expected_time inst in
       Table.row t
         [ "exhaustive (worst adversary)"; string_of_int n; "optimal";
           Printf.sprintf "%.3f" worst; verdict (worst <= 63.0) ])
    ctx.config.lr_ns;
  List.iter
    (fun n ->
       List.iter
         (fun (name, sched_of) ->
            let _, setup =
              lr_sim_setup ~n ~g:ctx.config.lr_g ~k:ctx.config.lr_k sched_of
            in
            let summary, missed =
              Sim.Monte_carlo.estimate_time setup
                ~target:(Core.Pred.mem LR.Regions.c)
                ~trials:ctx.config.sim_trials ~seed:ctx.config.seed ()
            in
            let mean =
              Proba.Stat.Summary.mean summary
              /. float_of_int ctx.config.lr_g
            in
            Table.row t
              [ Printf.sprintf "simulation (%d trials, %d missed)"
                  ctx.config.sim_trials missed;
                string_of_int n; name; Printf.sprintf "%.3f" mean;
                verdict (mean <= 63.0) ])
         [ ("uniform", LR.Schedulers.uniform);
           ("eager", LR.Schedulers.eager);
           ("delayer", LR.Schedulers.delayer);
           ("starver", LR.Schedulers.starver);
           ("round-robin", LR.Schedulers.round_robin) ])
    ctx.config.sim_ns;
  Table.print t;
  print_newline ()

let e4_independence ctx =
  ignore ctx;
  banner "E4" "independence proof rules (Sec. 4, Prop 4.2, Ex. 4.1)"
    "P[first(flip_P,H) ∩ first(flip_Q,T)] >= 1/4 under every adversary; \
     naive conditional independence fails";
  let premise =
    Core.Event.check_premise Race.pa ~states:Race.all_states
      [ (Race.Flip_p, Race.p_heads, Q.half);
        (Race.Flip_q, Race.q_tails, Q.half) ]
  in
  Printf.printf "Proposition 4.2 premise (every flip step gives its set \
                 probability >= 1/2): %s\n\n" (verdict premise);
  let t =
    Table.create [ "adversary"; "event"; "probability"; "Prop 4.2 bound" ]
  in
  let evaluate name adv =
    let tree = Core.Exec_automaton.unfold Race.pa adv Race.start ~max_depth:4 in
    let first_p = Core.Event.first Race.Flip_p Race.p_heads in
    let first_q = Core.Event.first Race.Flip_q Race.q_tails in
    let conj = Core.Event.conj first_p first_q in
    let next =
      Core.Event.next
        [ (Race.Flip_p, Race.p_heads); (Race.Flip_q, Race.q_tails) ]
    in
    let p e = Q.to_string (Core.Exec_automaton.prob_exact e tree) in
    Table.row t [ name; "first(flip_P, H)"; p first_p; "-" ];
    Table.row t [ name; "first(flip_Q, T)"; p first_q; "-" ];
    Table.row t [ name; "conjunction"; p conj; ">= 1/4 (product)" ];
    Table.row t [ name; "next(...)"; p next; ">= 1/2 (min)" ];
    (* The cautionary conditional probability of Example 4.1. *)
    let both =
      Core.Pred.make "both" (fun s ->
          s.Race.p <> Race.Unflipped && s.Race.q <> Race.Unflipped)
    in
    let good =
      Core.Pred.make "H,T" (fun s ->
          s.Race.p = Race.Heads && s.Race.q = Race.Tails)
    in
    let pb =
      Core.Exec_automaton.prob_exact (Core.Event.eventually both) tree
    in
    if not (Q.is_zero pb) then begin
      let pg =
        Core.Exec_automaton.prob_exact (Core.Event.eventually good) tree
      in
      Table.row t
        [ name; "P[H,T | both flipped]"; Q.to_string (Q.div pg pb);
          "naive claim: 1/4" ]
    end
  in
  evaluate "fair" Race.fair_adversary;
  evaluate "dependency (Ex 4.1)" Race.dependency_adversary;
  Table.print t;
  print_newline ()

let e5_invariant ctx =
  banner "E5" "Lemma 6.1: resources are determined by local states"
    "for every reachable state: Res_i taken iff a neighbor holds it, \
     never both";
  let t = Table.create [ "method"; "n"; "states"; "violations" ] in
  List.iter
    (fun n ->
       let inst =
         lr_instance ctx ~n ~g:ctx.config.lr_g ~k:ctx.config.lr_k
       in
       let bad = LR.Invariant.check inst.LR.Proof.expl in
       Table.row t
         [ "exhaustive"; string_of_int n;
           string_of_int (Mdp.Explore.num_states inst.LR.Proof.expl);
           (match bad with None -> "0" | Some _ -> "FOUND") ])
    ctx.config.lr_ns;
  (* Randomized walks at sizes beyond exhaustive reach. *)
  List.iter
    (fun n ->
       let pa, _ = lr_sim_setup ~n ~g:1 ~k:1 LR.Schedulers.uniform in
       let rng = Proba.Rng.create ~seed:ctx.config.seed in
       let violations = ref 0 in
       let visited = ref 0 in
       for _ = 1 to 50 do
         let outcome =
           Sim.Engine.run pa (Sim.Scheduler.uniform pa)
             ~rng:(Proba.Rng.split rng)
             ~stop:(fun s ->
                 incr visited;
                 if not (LR.Invariant.lemma_6_1 s) then incr violations;
                 false)
             ~max_steps:2000
             (LR.State.initial ~n ~g:1 ~k:1)
         in
         ignore outcome
       done;
       Table.row t
         [ "random walks"; string_of_int n; string_of_int !visited;
           string_of_int !violations ])
    ctx.config.sim_ns;
  Table.print t;
  print_newline ()

let e6_baseline ctx =
  banner "E6" "qualitative baseline (Zuck-Pnueli-style liveness)"
    "progress holds with probability 1 -- but yields no time constant; \
     the paper's method adds (13, 1/8) and E <= 63";
  let t =
    Table.create
      [ "n"; "liveness Pmin[T => eventually C] = 1"; "quantitative (13, p)";
        "expected bound" ]
  in
  List.iter
    (fun n ->
       let inst =
         lr_instance ctx ~n ~g:ctx.config.lr_g ~k:ctx.config.lr_k
       in
       let live = LR.Proof.liveness_holds inst in
       let direct = LR.Proof.direct_bound inst in
       Table.row t
         [ string_of_int n; verdict live;
           Printf.sprintf "attained %s (paper: 1/8)" (Q.to_string direct);
           "63 (Sec 6.2)" ])
    ctx.config.lr_ns;
  Table.print t;
  print_newline ()

let time_of f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let e7_scaling ctx =
  banner "E7" "checker and simulator scaling"
    "(not a paper claim: engineering envelope of the reproduction)";
  let t =
    Table.create
      [ "system"; "n"; "g"; "k"; "states"; "choices"; "explore s";
        "check A.11 s" ]
  in
  List.iter
    (fun (n, g, k) ->
       let (inst : LR.Proof.instance), explore_time =
         time_of (fun () -> LR.Proof.build ~n ~g ~k ())
       in
       let _, check_time =
         time_of (fun () ->
             List.exists (fun a -> a.LR.Proof.label = "A.11")
               (LR.Proof.arrows inst))
       in
       Table.row t
         [ "lehmann-rabin"; string_of_int n; string_of_int g;
           string_of_int k;
           string_of_int (Mdp.Explore.num_states inst.LR.Proof.expl);
           string_of_int (Mdp.Explore.num_choices inst.LR.Proof.expl);
           Printf.sprintf "%.2f" explore_time;
           Printf.sprintf "%.2f" check_time ])
    (List.map (fun n -> (n, ctx.config.lr_g, ctx.config.lr_k))
       ctx.config.lr_ns);
  List.iter
    (fun n ->
       let (inst : IR.Proof.instance), explore_time =
         time_of (fun () -> IR.Proof.build ~n ())
       in
       Table.row t
         [ "itai-rodeh"; string_of_int n; "1"; "1";
           string_of_int (Mdp.Explore.num_states inst.IR.Proof.expl);
           string_of_int (Mdp.Explore.num_choices inst.IR.Proof.expl);
           Printf.sprintf "%.2f" explore_time; "-" ])
    ctx.config.ir_ns;
  (* Simulator throughput. *)
  let n = List.hd ctx.config.sim_ns in
  let pa, setup = lr_sim_setup ~n ~g:1 ~k:1 LR.Schedulers.uniform in
  ignore pa;
  let steps = ref 0 in
  let (_ : unit), sim_time =
    time_of (fun () ->
        let root = Proba.Rng.create ~seed:ctx.config.seed in
        for _ = 1 to 200 do
          let outcome =
            Sim.Engine.run setup.Sim.Monte_carlo.pa
              setup.Sim.Monte_carlo.scheduler ~rng:(Proba.Rng.split root)
              ~stop:(Core.Pred.mem LR.Regions.c)
              ~duration:LR.Automaton.duration setup.Sim.Monte_carlo.start
          in
          steps := !steps + outcome.Sim.Engine.steps
        done)
  in
  Printf.printf "\nsimulator throughput (n=%d): %.0f steps/s\n" n
    (float_of_int !steps /. sim_time);
  Table.print t;
  print_newline ()

let e8_lower_bound ctx =
  banner "E8" "tightness probe (paper Sec. 7: lower bounds left open)"
    "how far above 1/8 and below 63 does the worst adversary actually sit?";
  let t =
    Table.create
      [ "n"; "g"; "k"; "exact min P[T -> C within 13]"; "paper bound";
        "worst E[time] (exhaustive)"; "derived bound" ]
  in
  let configs =
    List.map (fun n -> (n, ctx.config.lr_g, ctx.config.lr_k)) ctx.config.lr_ns
    @ (if ctx.config.sweep_gk then [ (3, 1, 2); (3, 2, 1) ] else [])
  in
  List.iter
    (fun (n, g, k) ->
       let inst = lr_instance ctx ~n ~g ~k in
       let direct = LR.Proof.direct_bound inst in
       let worst = LR.Proof.max_expected_time inst in
       Table.row t
         [ string_of_int n; string_of_int g; string_of_int k;
           Q.to_string direct; "1/8"; Printf.sprintf "%.3f" worst; "63" ])
    configs;
  Table.print t;
  (* Cross-validation: extract the worst memoryless adversary from the
     value iteration and replay it in the simulator. *)
  let n = List.hd ctx.config.lr_ns in
  let inst = lr_instance ctx ~n ~g:ctx.config.lr_g ~k:ctx.config.lr_k in
  let predicted, scheduler = LR.Proof.worst_adversary inst in
  let setup =
    { Sim.Monte_carlo.pa = Mdp.Explore.automaton inst.LR.Proof.expl;
      scheduler;
      duration = LR.Automaton.duration;
      start = LR.State.all_trying ~n ~g:ctx.config.lr_g ~k:ctx.config.lr_k }
  in
  let summary, missed =
    Sim.Monte_carlo.estimate_time setup ~target:(Core.Pred.mem LR.Regions.c)
      ~trials:ctx.config.sim_trials ~seed:ctx.config.seed ()
  in
  Printf.printf
    "\nextracted worst adversary (n=%d, from the all-trying state): value \
     iteration predicts E = %.3f;\nreplaying it in the simulator gives \
     %.3f (%d trials, %d missed).\n" n predicted
    (Proba.Stat.Summary.mean summary /. float_of_int ctx.config.lr_g)
    ctx.config.sim_trials missed;
  (* Beyond exhaustive reach: hill-climb a priority-table scheduler to
     probe the worst case empirically (the paper's open lower-bound
     direction). *)
  let big = List.fold_left Stdlib.max 4 ctx.config.sim_ns in
  let params = { LR.Automaton.n = big; g = 1; k = 1 } in
  let pa = LR.Automaton.make params in
  let start = LR.State.all_trying ~n:big ~g:1 ~k:1 in
  let score ranks =
    let setup =
      { Sim.Monte_carlo.pa; scheduler = LR.Schedulers.of_ranks pa ranks;
        duration = LR.Automaton.duration; start }
    in
    let summary, _ =
      Sim.Monte_carlo.estimate_time setup ~target:(Core.Pred.mem LR.Regions.c)
        ~trials:(Stdlib.max 100 (ctx.config.sim_trials / 10))
        ~seed:ctx.config.seed ~max_steps:50_000 ()
    in
    Proba.Stat.Summary.mean summary
  in
  let neighbor ranks rng =
    let fresh = Array.copy ranks in
    fresh.(Proba.Rng.int rng (Array.length fresh)) <- Proba.Rng.int rng 10;
    fresh
  in
  let found =
    Sim.Search.hill_climb
      ~rng:(Proba.Rng.create ~seed:ctx.config.seed)
      ~init:(Array.make LR.Schedulers.num_classes 5)
      ~neighbor ~score ~steps:25 ~restarts:1 ()
  in
  Printf.printf
    "\nadversary search at n=%d (priority tables, %d evaluations): worst \
     E[time] found = %.3f\n" big found.Sim.Search.evaluations
    found.Sim.Search.score;
  Printf.printf
    "\nThe gap (paper: \"the upper bound could easily be improved by a \
     finer analysis\")\nshrinks as the adversary gains power (larger k, \
     finer g).\n\n"

let e9_election ctx =
  banner "E9" "second case study: randomized leader election"
    "at_most(k) -1->_1/2 at_most(k-1); composed: leader within n-1 units \
     with prob 2^-(n-1); E[election] <= 2(n-1)";
  let t =
    Table.create
      [ "n"; "rungs OK"; "composed claim"; "exact min within n-1";
        "E bound"; "E measured (worst)" ]
  in
  List.iter
    (fun n ->
       let inst = ir_instance ctx ~n in
       let arrows = IR.Proof.arrows inst in
       let all_ok = List.for_all (fun a -> a.IR.Proof.claim <> None) arrows in
       let composed =
         match IR.Proof.composed inst with
         | Ok c -> Format.asprintf "%a" Core.Claim.pp c
         | Error e -> "FAILED: " ^ e
       in
       Table.row t
         [ string_of_int n;
           Printf.sprintf "%d/%d"
             (List.length (List.filter (fun a -> a.IR.Proof.claim <> None)
                             arrows))
             (List.length arrows);
           composed;
           Q.to_string (IR.Proof.direct_bound inst);
           Q.to_string (Core.Expected.value (IR.Proof.expected_bound ~n));
           Printf.sprintf "%.3f" (IR.Proof.max_expected_time inst) ];
       ignore all_ok)
    ctx.config.ir_ns;
  Table.print t;
  print_newline ()

let e10_topologies ctx =
  banner "E10"
    "beyond rings (paper Sec. 7: \"topologies more general than rings\")"
    "do the five arrows and the composed bound survive on other \
     two-resource conflict topologies?";
  let t =
    Table.create
      [ "topology"; "states"; "invariant"; "A.14 min"; "A.11 min";
        "composed"; "direct 13-unit min"; "worst E[time]" ]
  in
  let topos =
    [ LR.Topology.ring 3; LR.Topology.line 3; LR.Topology.star 3 ]
    @ (if ctx.config.lr_ns |> List.exists (fun n -> n >= 4) then
         [ LR.Topology.line 4 ]
       else [])
  in
  List.iter
    (fun topo ->
       let inst = Models.lr_topo ~topo () in
       let arrows = LR.Proof.arrows_topo inst in
       let attained label =
         match List.find_opt (fun a -> a.LR.Proof.label = label) arrows with
         | Some a -> Q.to_string a.LR.Proof.attained
         | None -> "?"
       in
       let composed =
         match LR.Proof.composed_topo inst with
         | Ok c ->
           Printf.sprintf "(%s, %s)"
             (Q.to_string (Core.Claim.time c))
             (Q.to_string (Core.Claim.prob c))
         | Error _ -> "FAILED"
       in
       Table.row t
         [ LR.Topology.name topo;
           string_of_int (Mdp.Explore.num_states inst.LR.Proof.texpl);
           (match LR.Proof.invariant_topo inst with
            | None -> "OK" | Some _ -> "VIOLATED");
           attained "A.14"; attained "A.11"; composed;
           Q.to_string (LR.Proof.direct_bound_topo inst);
           Printf.sprintf "%.3f" (LR.Proof.max_expected_time_topo inst) ])
    topos;
  Table.print t;
  Printf.printf
    "\nThe paper's per-arrow constants are ring-tight: on the line and \
     the star the structural\nasymmetry makes the worst cases strictly \
     easier, and all arrows still verify.\n\n"

let e11_shared_coin ctx =
  banner "E11"
    "third case study: a shared-coin random walk (method limits)"
    "ladder gives decided within B units with prob 2^-B (valid); the true \
     law is E[time] = B^2/n -- composition can be exponentially loose";
  let t =
    Table.create
      [ "n"; "B"; "rungs OK"; "composed"; "direct min within B";
        "E exact"; "B^2/n"; "live" ]
  in
  List.iter
    (fun (n, bound) ->
       let inst = Models.coin ~n ~bound () in
       let arrows = SC.Proof.arrows inst in
       let ok = List.length (List.filter (fun a -> a.SC.Proof.claim <> None) arrows) in
       let composed =
         match SC.Proof.composed inst with
         | Ok c ->
           Printf.sprintf "(%s, %s)"
             (Q.to_string (Core.Claim.time c))
             (Q.to_string (Core.Claim.prob c))
         | Error _ -> "FAILED"
       in
       Table.row t
         [ string_of_int n; string_of_int bound;
           Printf.sprintf "%d/%d" ok (List.length arrows); composed;
           Q.to_string (SC.Proof.direct_bound inst);
           Printf.sprintf "%.3f" (SC.Proof.expected_exact inst);
           Printf.sprintf "%.3f" (SC.Proof.expected_theory inst);
           verdict (SC.Proof.liveness_holds inst) ])
    ctx.config.coin_cases;
  Table.print t;
  Printf.printf
    "\nThe adversary schedules but cannot bias the walk: at n=2 the \
     parity of the walk makes\nE[time] = B^2/n exact; elsewhere it is \
     exact up to sub-unit rounding.\n\n"

let e12_consensus ctx =
  ignore ctx;
  banner "E12"
    "fourth case study: Ben-Or consensus over asynchronous messages"
    "agreement and validity hold on every schedule/crash pattern; \
     unanimous starts decide in one round surely; mixed starts are \
     adversary-blockable per round but decide with prob >= 2^-n over two";
  let t =
    Table.create
      [ "instance"; "states"; "agreement"; "validity";
        "min P[decide <= 1 round]"; "min P[decide <= 2 rounds]";
        "capped liveness" ]
  in
  let row name inst rounds_two =
    let curve =
      BO.Proof.decision_curve inst
        ~rounds:(if rounds_two then [ 1; 2 ] else [ 1 ])
    in
    let fmt_q q = Q.to_string q in
    Table.row t
      [ name;
        string_of_int (Mdp.Explore.num_states inst.BO.Proof.expl);
        (match BO.Proof.agreement_violation inst with
         | None -> "OK" | Some _ -> "VIOLATED");
        (match BO.Proof.validity_violation inst with
         | None -> "OK" | Some _ -> "VIOLATED");
        fmt_q (List.nth curve 0);
        (if rounds_two then fmt_q (List.nth curve 1) else "-");
        verdict (BO.Proof.capped_liveness inst) ]
  in
  let unanimous =
    Models.consensus ~n:3 ~f:1 ~cap:1 ~initial:[| false; false; false |] ()
  in
  let mixed =
    Models.consensus ~n:3 ~f:1 ~cap:2 ~initial:[| false; false; true |] ()
  in
  row "n=3 f=1 unanimous (cap 1)" unanimous false;
  row "n=3 f=1 mixed (cap 2)" mixed true;
  Table.print t;
  Printf.printf
    "\nNote the deterministic-impossibility shadow: each single round is \
     adversary-blockable\n(min = 0), yet the coin defeats every schedule \
     across rounds (min = 1/8 = 2^-3).\nCapped liveness is rightly false \
     on mixed starts: termination is almost-sure only in\nthe round \
     limit, which the cap truncates.\n\n"

let e13_faults ctx =
  banner "E13" "graceful degradation under injected faults"
    "(not a paper claim: how the Sec. 6.2 constants decay as an exact \
     fault budget grows; 'release' = a crashed philosopher frees its \
     forks)";
  let t =
    Table.create
      [ "faults"; "release"; "states"; "arrow1 min"; "arrow2 min";
        "composed"; "direct 13-unit min" ]
  in
  let cases =
    [ (Faults.Fault.none, true);
      (Faults.Fault.v ~crash:1 (), true);
      (Faults.Fault.v ~crash:1 (), false) ]
    @ (if ctx.config.sweep_gk then
         [ (Faults.Fault.v ~loss:1 (), true);
           (Faults.Fault.v ~stuck:1 (), true);
           (Faults.Fault.v ~crash:1 ~loss:1 (), true) ]
       else [])
  in
  List.iter
    (fun (faults, release) ->
       let config =
         { Faults.Lr.params =
             { LR.Automaton.n = 3; g = ctx.config.lr_g; k = ctx.config.lr_k };
           faults; release }
       in
       let d = Faults.Lr.derive config in
       let composed =
         match d.Faults.Lr.composed with
         | Ok c ->
           Printf.sprintf "(%s, %s)"
             (Q.to_string (Core.Claim.time c))
             (Q.to_string (Core.Claim.prob c))
         | Error _ -> "FAILED"
       in
       Table.row t
         [ Faults.Fault.to_string faults; string_of_bool release;
           string_of_int d.Faults.Lr.states;
           Q.to_string d.Faults.Lr.arrow1.Faults.Lr.attained;
           Q.to_string d.Faults.Lr.arrow2.Faults.Lr.attained;
           composed; Q.to_string d.Faults.Lr.direct ])
    cases;
  Table.print t;
  Printf.printf
    "\nOne crash with fork release degrades T -13->_1/8 C to a (20, 3/4) \
     composed claim over the\nsurvivors; without release the adversary \
     crashes the philosopher holding both forks and\nevery bound \
     collapses to 0 -- the ring is locked.\n";
  (* The same story on Ben-Or, whose native f parameter is a crash
     budget: the round bounds survive f = 1 untouched because the
     protocol was designed for it. *)
  let t2 =
    Table.create
      [ "Ben-Or instance"; "states"; "min P[<=1 round]";
        "min P[<=2 rounds]" ]
  in
  List.iter
    (fun f ->
       let n = 3 in
       let initial = Array.init n (fun i -> i = n - 1) in
       let inst = Models.consensus ~n ~f ~cap:2 ~initial () in
       let curve = BO.Proof.decision_curve inst ~rounds:[ 1; 2 ] in
       Table.row t2
         [ Printf.sprintf "n=%d f=%d mixed" n f;
           string_of_int (Mdp.Explore.num_states inst.BO.Proof.expl);
           Q.to_string (List.nth curve 0);
           Q.to_string (List.nth curve 1) ])
    [ 0; 1 ];
  Table.print t2;
  (* Exercise the degradation ladder itself: a budget too small for the
     wrapped state space forces the Monte Carlo rung. *)
  let tiny = Core.Budget.v ~max_states:500 () in
  let config =
    { Faults.Lr.params =
        { LR.Automaton.n = 3; g = ctx.config.lr_g; k = ctx.config.lr_k };
      faults = Faults.Fault.v ~crash:1 (); release = true }
  in
  let verdict =
    Faults.Lr.check_budgeted ~budget:tiny ~seed:ctx.config.seed config
  in
  Format.printf "@.degradation ladder under a %s budget:@.  %a@.@."
    (Core.Budget.to_string tiny) Faults.Resilient.pp_verdict verdict

let guarded id f ctx =
  try f ctx with
  | Mdp.Explore.Too_many_states n ->
    Printf.printf
      "\n[%s skipped: exploration stopped after interning %d states; \
       shrink the profile or raise the state bound]\n" id n

let run_all ctx =
  guarded "E1" e1_arrows ctx;
  guarded "E2" e2_composed ctx;
  guarded "E3" e3_expected ctx;
  guarded "E4" e4_independence ctx;
  guarded "E5" e5_invariant ctx;
  guarded "E6" e6_baseline ctx;
  guarded "E7" e7_scaling ctx;
  guarded "E8" e8_lower_bound ctx;
  guarded "E9" e9_election ctx;
  guarded "E10" e10_topologies ctx;
  guarded "E11" e11_shared_coin ctx;
  guarded "E12" e12_consensus ctx;
  guarded "E13" e13_faults ctx
