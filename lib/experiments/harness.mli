(** The experiment harness: one entry point per row of the experiment
    index in DESIGN.md (E1-E9).  Each function prints the table it
    regenerates; {!run_all} prints the full report recorded in
    EXPERIMENTS.md.

    The same code backs [bin/prtb experiments] and [bench/main.exe]. *)

type config = {
  lr_ns : int list;  (** ring sizes checked exhaustively (LR) *)
  lr_g : int;  (** clock granularity *)
  lr_k : int;  (** per-slot step budget *)
  sweep_gk : bool;  (** also sweep (g, k) in E1 *)
  ir_ns : int list;  (** ring sizes for the election *)
  coin_cases : (int * int) list;  (** (processes, barrier) pairs for E11 *)
  sim_ns : int list;  (** ring sizes reached by simulation only *)
  sim_trials : int;
  seed : int;
}

(** Laptop-scale defaults: exhaustive at n = 3 (plus the (g,k) sweep),
    simulation out to n = 12. *)
val default : config

(** Smaller still, for smoke tests. *)
val quick : config

(** Adds n = 4 exhaustive checking and larger simulations (minutes). *)
val full : config

(** Shared instance cache so experiments do not re-explore. *)
type ctx

val make_ctx : config -> ctx

val e1_arrows : ctx -> unit
val e2_composed : ctx -> unit
val e3_expected : ctx -> unit
val e4_independence : ctx -> unit
val e5_invariant : ctx -> unit
val e6_baseline : ctx -> unit
val e7_scaling : ctx -> unit
val e8_lower_bound : ctx -> unit
val e9_election : ctx -> unit
val e10_topologies : ctx -> unit
val e11_shared_coin : ctx -> unit
val e12_consensus : ctx -> unit
val e13_faults : ctx -> unit

(** [guarded id f ctx] runs experiment [f], downgrading a
    {!Mdp.Explore.Too_many_states} escape into a printed skip note
    carrying the partial interned-state count, so one oversized
    instance cannot abort the whole report. *)
val guarded : string -> (ctx -> unit) -> ctx -> unit

(** Run E1-E13 in order, each under {!guarded}. *)
val run_all : ctx -> unit
