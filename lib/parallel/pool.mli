(** A fixed pool of worker domains with deterministic parallel
    iteration.

    The pool exists so the exact engines can use every core without
    giving up the certification story: work is split into a chunk grid
    that depends only on the problem size (never on the number of
    domains), chunks are claimed dynamically but their results are
    combined in chunk order, and callers that need bit-identical output
    across [~domains:1] and [~domains:n] get it for free as long as
    their combine function is associative.

    A pool of [n] domains spawns [n - 1] workers; the calling domain
    always participates, so [create ~domains:1] is a valid (purely
    sequential) pool and no deadlock is possible even if the workers
    are busy elsewhere.

    Cancellation is cooperative: a [?stop] probe is consulted between
    chunk claims (never mid-chunk).  Chunks already claimed when the
    probe fires run to completion, then {!Cancelled} is raised in the
    caller.  This is how [Core.Budget] clocks plug in. *)

type t

(** Raised in the calling domain when a [?stop] probe returns
    [Some reason]; the payload is that reason. *)
exception Cancelled of string

(** [create ~domains] spawns a pool of [domains - 1] worker domains.
    Raises [Invalid_argument] when [domains < 1]. *)
val create : domains:int -> t

(** Number of domains participating in the pool (workers + caller). *)
val domains : t -> int

(** Shut the workers down and join them.  The pool must not be used
    afterwards.  Idempotent. *)
val shutdown : t -> unit

(** [parallel_for pool ?stop ?chunks ~n f] runs [f i] for every
    [0 <= i < n], split into [chunks] contiguous ranges (default
    {!default_chunks}, clamped to [n]) executed across the pool.  The
    chunk grid depends only on [n] and [chunks], so side effects into
    per-index slots are identical for any pool size.  Exceptions raised
    by [f] are re-raised in the caller (first one wins); a firing
    [?stop] probe raises {!Cancelled} after in-flight chunks drain. *)
val parallel_for :
  t ->
  ?stop:(unit -> string option) ->
  ?chunks:int ->
  n:int ->
  (int -> unit) ->
  unit

(** [map_reduce pool ?stop ?chunks ~n ~combine ~init map] is
    [fold_left combine init (List.init n map)] computed in parallel.
    [combine] must be associative; under that assumption the result is
    exactly the sequential fold — independent of the number of domains —
    because chunk-local folds run left to right and chunk results are
    combined in chunk order. *)
val map_reduce :
  t ->
  ?stop:(unit -> string option) ->
  ?chunks:int ->
  n:int ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  (int -> 'a) ->
  'a

(** Chunk count used when [?chunks] is omitted: fixed (independent of
    the pool size) so that chunk-grid-determinism holds by default. *)
val default_chunks : int

(** {1 Fire-and-forget jobs}

    The verification server reuses a pool as its worker fleet: the
    accept loop {!submit}s one job per accepted connection and the
    worker domains run them to completion.  Jobs share the queue the
    iteration regions use, and a job may itself issue {!parallel_for}
    calls on the same pool -- region callers always drain their own
    chunks, so progress never depends on a free worker. *)

(** [submit pool job] enqueues [job] for some worker domain and returns
    whether it was accepted.  [false] when the pool is closed or has no
    workers ([domains = 1]: the caller is the only domain, and submit
    must never run jobs inline).  {!shutdown} drains already-accepted
    jobs before joining the workers, which is what gives the server its
    graceful SIGTERM drain. *)
val submit : t -> (unit -> unit) -> bool

(** Jobs accepted but not yet claimed by a worker (the server's
    backpressure probe: when this exceeds the accept-queue bound, new
    connections are answered 503 instead of being queued). *)
val pending : t -> int

(** {1 Session default}

    The CLI installs a pool once per process ([--domains N]); engines
    with no explicit [?pool] argument pick it up here.  [set_default]
    shuts down any previously installed pool and registers an [at_exit]
    shutdown so worker domains never outlive the main domain. *)

val set_default : t option -> unit
val get_default : unit -> t option
