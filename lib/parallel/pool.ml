(* A hand-rolled fixed domain pool (no domainslib in the build
   environment).  Workers block on a shared queue of "drain this
   region" jobs; a region is one parallel_for/map_reduce call.

   The caller always drains its own region too, so completion never
   depends on workers being free: if every worker is busy (or the pool
   has one domain), the caller just runs all chunks itself.  After its
   own drain the caller waits for chunks claimed by workers to finish,
   which makes every write performed by [chunk] happen-before the
   caller's return (all bookkeeping goes through the region mutex). *)

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

exception Cancelled of string

let default_chunks = 64

let domains pool = pool.size

let worker pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.jobs && not pool.closed do
      Condition.wait pool.nonempty pool.lock
    done;
    if Queue.is_empty pool.jobs then Mutex.unlock pool.lock (* closed *)
    else begin
      let job = Queue.pop pool.jobs in
      Mutex.unlock pool.lock;
      job ();
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [||];
      size = domains;
    }
  in
  pool.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  let was_closed = pool.closed in
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  if not was_closed then Array.iter Domain.join pool.workers

(* ------------------------------------------------------------------ *)
(* Fire-and-forget jobs (the server work queue).

   [submit] rides the same job queue the regions use, so a pool can
   serve long-lived connection handlers and still run parallel_for
   regions issued from inside those handlers: region callers always
   drain their own chunks, so progress never depends on a free
   worker. *)

let submit pool job =
  Mutex.lock pool.lock;
  let accepted = (not pool.closed) && pool.size > 1 in
  if accepted then begin
    Queue.add job pool.jobs;
    Condition.signal pool.nonempty
  end;
  Mutex.unlock pool.lock;
  accepted

let pending pool =
  Mutex.lock pool.lock;
  let n = Queue.length pool.jobs in
  Mutex.unlock pool.lock;
  n

(* ------------------------------------------------------------------ *)
(* Regions. *)

type region = {
  nchunks : int;
  chunk : int -> unit;
  stop : (unit -> string option) option;
  rlock : Mutex.t;
  drained : Condition.t;
  mutable claimed : int;  (* next chunk index; monotone, <= nchunks *)
  mutable completed : int;  (* chunks whose [chunk] call returned *)
  mutable stop_reason : string option;
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

(* Claim chunks until none are left or the region is poisoned (stop
   probe fired / a chunk raised).  Probes and claims share the region
   lock, so once poisoned no further chunk starts. *)
let drain r =
  let rec loop () =
    Mutex.lock r.rlock;
    let claim =
      if r.failure <> None || r.stop_reason <> None || r.claimed >= r.nchunks
      then None
      else begin
        match r.stop with
        | Some probe ->
          (match probe () with
           | Some reason ->
             r.stop_reason <- Some reason;
             None
           | None ->
             let i = r.claimed in
             r.claimed <- i + 1;
             Some i)
        | None ->
          let i = r.claimed in
          r.claimed <- i + 1;
          Some i
      end
    in
    Mutex.unlock r.rlock;
    match claim with
    | None -> ()
    | Some i ->
      (try r.chunk i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock r.rlock;
         if r.failure = None then r.failure <- Some (e, bt);
         Mutex.unlock r.rlock);
      Mutex.lock r.rlock;
      r.completed <- r.completed + 1;
      if r.completed = r.claimed then Condition.broadcast r.drained;
      Mutex.unlock r.rlock;
      loop ()
  in
  loop ()

let run_region pool ?stop ~nchunks chunk =
  if nchunks > 0 then begin
    let r =
      {
        nchunks;
        chunk;
        stop;
        rlock = Mutex.create ();
        drained = Condition.create ();
        claimed = 0;
        completed = 0;
        stop_reason = None;
        failure = None;
      }
    in
    if pool.size > 1 then begin
      let helpers = Stdlib.min (pool.size - 1) nchunks in
      Mutex.lock pool.lock;
      if not pool.closed then begin
        for _ = 1 to helpers do
          Queue.add (fun () -> drain r) pool.jobs
        done;
        Condition.broadcast pool.nonempty
      end;
      Mutex.unlock pool.lock
    end;
    drain r;
    Mutex.lock r.rlock;
    while r.completed < r.claimed do
      Condition.wait r.drained r.rlock
    done;
    let failure = r.failure and stop_reason = r.stop_reason in
    Mutex.unlock r.rlock;
    (match failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    match stop_reason with
    | Some reason -> raise (Cancelled reason)
    | None -> ()
  end

(* Chunk [c] of [n] items in [nchunks] ranges: the grid depends only on
   [n] and [nchunks], never on the pool size. *)
let chunk_bounds ~n ~nchunks c = (c * n / nchunks, (c + 1) * n / nchunks)

let resolve_chunks ?chunks n =
  let c = match chunks with Some c -> c | None -> default_chunks in
  if c < 1 then invalid_arg "Pool: chunks must be >= 1";
  Stdlib.min c n

let parallel_for pool ?stop ?chunks ~n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative n";
  if n > 0 then begin
    let nchunks = resolve_chunks ?chunks n in
    run_region pool ?stop ~nchunks (fun c ->
        let lo, hi = chunk_bounds ~n ~nchunks c in
        for i = lo to hi - 1 do
          f i
        done)
  end

let map_reduce pool ?stop ?chunks ~n ~combine ~init map =
  if n < 0 then invalid_arg "Pool.map_reduce: negative n";
  if n = 0 then init
  else begin
    let nchunks = resolve_chunks ?chunks n in
    let partial = Array.make nchunks None in
    run_region pool ?stop ~nchunks (fun c ->
        let lo, hi = chunk_bounds ~n ~nchunks c in
        let acc = ref (map lo) in
        for i = lo + 1 to hi - 1 do
          acc := combine !acc (map i)
        done;
        partial.(c) <- Some !acc);
    Array.fold_left
      (fun acc -> function None -> acc | Some v -> combine acc v)
      init partial
  end

(* ------------------------------------------------------------------ *)
(* Session default. *)

let default : t option ref = ref None
let exit_hook_installed = ref false

let get_default () = !default

let set_default pool =
  (match !default with Some old -> shutdown old | None -> ());
  default := pool;
  if pool <> None && not !exit_hook_installed then begin
    exit_hook_installed := true;
    at_exit (fun () ->
        match !default with
        | Some p ->
          default := None;
          shutdown p
        | None -> ())
  end
