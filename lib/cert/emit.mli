(** Reifying an audited {!Core.Claim} derivation into a certificate.

    [emit] is a total serializer built on {!Core.Claim.fold}: every
    constructor of the proof DSL maps to a {!Node.rule}, sub-derivations
    shared physically in the claim map to a single shared node, and
    structurally identical sub-derivations are deduplicated by hash --
    the emitted DAG is as compact as the proof, never exponential in
    it.  Nodes are laid out bottom-up (children strictly before
    parents), hashes and the certificate digest are stamped, and the
    output is deterministic: the same claim, fingerprint and
    configuration always produce byte-identical certificates (what
    makes the served [/cert] body equal to the CLI's). *)

(** [emit ~config ~fingerprint claim] builds the certificate.
    [fingerprint] is {!Mdp.Arena.fingerprint} of the arena every
    {!Core.Claim.checked} leaf was discharged on; [config] records the
    query that built that arena.  Both are stamped into every checked
    leaf. *)
val emit :
  config:Node.leaf_config -> fingerprint:string -> 's Core.Claim.t ->
  Node.t
