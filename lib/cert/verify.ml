module Q = Proba.Rational

type summary = {
  nodes : int;
  leaves : int;
  axioms : int;
  fully_verified : bool;
  root_claim : string;
}

type error = {
  node : int option;
  rule : string option;
  reason : string;
}

let error_to_string e =
  match e.node, e.rule with
  | Some i, Some r -> Printf.sprintf "node %d (%s): %s" i r e.reason
  | Some i, None -> Printf.sprintf "node %d: %s" i e.reason
  | None, _ -> e.reason

exception Fail of error

let fail ?node ?rule fmt =
  Printf.ksprintf (fun reason -> raise (Fail { node; rule; reason })) fmt

let is_hex_digest s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

(* The certificate's own rendering of a statement; must match what the
   emitter produced from the claim, which we re-derive here from node
   data alone. *)
let render (n : Node.node) =
  Printf.sprintf "%s --%s-->_%s %s  [%s]" n.Node.pre (Q.to_string n.Node.time)
    (Q.to_string n.Node.prob) n.Node.post n.Node.node_schema

(* Re-derive the name [Pred.union] would give the united sets. *)
let union_name p u = Printf.sprintf "%s ∪ %s" p u

let check_leaf_config i rule (c : Node.leaf_config) =
  if c.Node.model = "" then fail ~node:i ~rule "empty model name in leaf config";
  if c.Node.n < 1 then fail ~node:i ~rule "leaf config has n=%d < 1" c.Node.n;
  (match c.Node.plane with
   | "exact" | "interval" -> ()
   | p -> fail ~node:i ~rule "leaf config has unknown plane %S" p);
  (match c.Node.sym with
   | "auto" | "on" | "off" -> ()
   | s -> fail ~node:i ~rule "leaf config has unknown sym mode %S" s);
  if c.Node.faults = "" then
    fail ~node:i ~rule "empty faults field in leaf config (expected \"none\")";
  if c.Node.budget = "" then fail ~node:i ~rule "empty budget in leaf config"

let check_inclusion i rule (incl : Node.inclusion) =
  if incl.Node.sub = "" || incl.Node.sup = "" then
    fail ~node:i ~rule "inclusion with an empty predicate name";
  if (not incl.Node.assumed) && incl.Node.incl_evidence = "" then
    fail ~node:i ~rule "certified inclusion %s ⊆ %s carries no evidence"
      incl.Node.sub incl.Node.sup

(* Premises every rule shares with its child: same schema, same
   closedness flag (the weakening rules of Prop 4.2 and the union of
   Prop 3.2 never change the adversary schema). *)
let check_same_schema i rule (n : Node.node) (c : Node.node) =
  if n.Node.node_schema <> c.Node.node_schema then
    fail ~node:i ~rule "schema %S differs from child's %S" n.Node.node_schema
      c.Node.node_schema;
  if n.Node.closed <> c.Node.closed then
    fail ~node:i ~rule "execution-closedness flag differs from child's"

let check_node cert i (n : Node.node) =
  let rule = Node.rule_name n.Node.rule in
  let nodes = cert.Node.nodes in
  (* Children strictly below the parent: indices are a topological
     order, so cycles are impossible by construction. *)
  let child j =
    if j < 0 || j >= i then
      fail ~node:i ~rule
        "child index %d out of range (must be in [0, %d))" j i;
    nodes.(j)
  in
  (* Integrity first: a tampered byte should be reported as tampering,
     not as a confusing rule violation. *)
  let child_hashes =
    List.map (fun j -> (child j).Node.hash) (Node.children n.Node.rule)
  in
  let recomputed = Node.node_hash n ~child_hashes in
  if recomputed <> n.Node.hash then
    fail ~node:i ~rule
      "stored hash %s does not match recomputed %s (payload or a \
       descendant was altered)"
      n.Node.hash recomputed;
  (* Definition 3.1 sanity on the statement itself. *)
  if not (Q.is_probability n.Node.prob) then
    fail ~node:i ~rule "probability %s outside [0, 1]"
      (Q.to_string n.Node.prob);
  if Q.sign n.Node.time < 0 then
    fail ~node:i ~rule "negative time bound %s" (Q.to_string n.Node.time);
  if n.Node.pre = "" || n.Node.post = "" then
    fail ~node:i ~rule "empty predicate name";
  if n.Node.node_schema = "" then fail ~node:i ~rule "empty schema name";
  match n.Node.rule with
  | Node.Checked { evidence; fingerprint; config } ->
    if evidence = "" then fail ~node:i ~rule "checked leaf without evidence";
    if not (is_hex_digest fingerprint) then
      fail ~node:i ~rule "malformed arena fingerprint %S" fingerprint;
    check_leaf_config i rule config
  | Node.Axiom { reason } ->
    if reason = "" then fail ~node:i ~rule "axiom without a reason"
  | Node.Trivial incl ->
    check_inclusion i rule incl;
    if n.Node.pre <> incl.Node.sub then
      fail ~node:i ~rule "pre %S is not the inclusion's sub-set %S" n.Node.pre
        incl.Node.sub;
    if n.Node.post <> incl.Node.sup then
      fail ~node:i ~rule "post %S is not the inclusion's super-set %S"
        n.Node.post incl.Node.sup;
    if not (Q.is_zero n.Node.time) then
      fail ~node:i ~rule "trivial claim must have time 0, found %s"
        (Q.to_string n.Node.time);
    if not (Q.equal n.Node.prob Q.one) then
      fail ~node:i ~rule "trivial claim must have probability 1, found %s"
        (Q.to_string n.Node.prob)
  | Node.Compose (a, b) ->
    (* Theorem 3.4, re-checked from scratch. *)
    let ca = child a and cb = child b in
    check_same_schema i rule n ca;
    check_same_schema i rule n cb;
    if not n.Node.closed then
      fail ~node:i ~rule
        "composition requires an execution-closed schema (Theorem 3.4)";
    if ca.Node.post <> cb.Node.pre then
      fail ~node:i ~rule
        "first child's post %S is not the second child's pre %S" ca.Node.post
        cb.Node.pre;
    if n.Node.pre <> ca.Node.pre then
      fail ~node:i ~rule "pre %S is not the first child's pre %S" n.Node.pre
        ca.Node.pre;
    if n.Node.post <> cb.Node.post then
      fail ~node:i ~rule "post %S is not the second child's post %S"
        n.Node.post cb.Node.post;
    let t = Q.add ca.Node.time cb.Node.time in
    if not (Q.equal n.Node.time t) then
      fail ~node:i ~rule "time %s is not the children's sum %s"
        (Q.to_string n.Node.time) (Q.to_string t);
    let p = Q.mul ca.Node.prob cb.Node.prob in
    if not (Q.equal n.Node.prob p) then
      fail ~node:i ~rule "probability %s is not the children's product %s"
        (Q.to_string n.Node.prob) (Q.to_string p)
  | Node.Union (a, u) ->
    (* Proposition 3.2: both sides gain [∪ u], nothing else moves. *)
    let c = child a in
    check_same_schema i rule n c;
    if u = "" then fail ~node:i ~rule "union with an empty set name";
    if n.Node.pre <> union_name c.Node.pre u then
      fail ~node:i ~rule "pre %S is not %S" n.Node.pre
        (union_name c.Node.pre u);
    if n.Node.post <> union_name c.Node.post u then
      fail ~node:i ~rule "post %S is not %S" n.Node.post
        (union_name c.Node.post u);
    if not (Q.equal n.Node.time c.Node.time) then
      fail ~node:i ~rule "union must preserve the time bound";
    if not (Q.equal n.Node.prob c.Node.prob) then
      fail ~node:i ~rule "union must preserve the probability bound"
  | Node.Weaken_prob a ->
    let c = child a in
    check_same_schema i rule n c;
    if n.Node.pre <> c.Node.pre || n.Node.post <> c.Node.post then
      fail ~node:i ~rule "probability weakening must preserve the sets";
    if not (Q.equal n.Node.time c.Node.time) then
      fail ~node:i ~rule "probability weakening must preserve the time bound";
    if not (Q.leq n.Node.prob c.Node.prob) then
      fail ~node:i ~rule "probability %s exceeds the child's %s"
        (Q.to_string n.Node.prob) (Q.to_string c.Node.prob)
  | Node.Relax_time a ->
    let c = child a in
    check_same_schema i rule n c;
    if n.Node.pre <> c.Node.pre || n.Node.post <> c.Node.post then
      fail ~node:i ~rule "time relaxation must preserve the sets";
    if not (Q.equal n.Node.prob c.Node.prob) then
      fail ~node:i ~rule "time relaxation must preserve the probability";
    if not (Q.geq n.Node.time c.Node.time) then
      fail ~node:i ~rule "time %s is below the child's %s"
        (Q.to_string n.Node.time) (Q.to_string c.Node.time)
  | Node.Strengthen_pre (a, incl) ->
    let c = child a in
    check_same_schema i rule n c;
    check_inclusion i rule incl;
    if incl.Node.sup <> c.Node.pre then
      fail ~node:i ~rule
        "inclusion's super-set %S is not the child's pre %S" incl.Node.sup
        c.Node.pre;
    if n.Node.pre <> incl.Node.sub then
      fail ~node:i ~rule "pre %S is not the inclusion's sub-set %S" n.Node.pre
        incl.Node.sub;
    if n.Node.post <> c.Node.post then
      fail ~node:i ~rule "pre-strengthening must preserve the post-set";
    if not (Q.equal n.Node.time c.Node.time && Q.equal n.Node.prob c.Node.prob)
    then fail ~node:i ~rule "pre-strengthening must preserve the bounds"
  | Node.Weaken_post (a, incl) ->
    let c = child a in
    check_same_schema i rule n c;
    check_inclusion i rule incl;
    if incl.Node.sub <> c.Node.post then
      fail ~node:i ~rule "inclusion's sub-set %S is not the child's post %S"
        incl.Node.sub c.Node.post;
    if n.Node.post <> incl.Node.sup then
      fail ~node:i ~rule "post %S is not the inclusion's super-set %S"
        n.Node.post incl.Node.sup;
    if n.Node.pre <> c.Node.pre then
      fail ~node:i ~rule "post-weakening must preserve the pre-set";
    if not (Q.equal n.Node.time c.Node.time && Q.equal n.Node.prob c.Node.prob)
    then fail ~node:i ~rule "post-weakening must preserve the bounds"

let run cert =
  try
    let nodes = cert.Node.nodes in
    let count = Array.length nodes in
    if cert.Node.root < 0 || cert.Node.root >= count then
      fail "root index %d out of range (certificate has %d nodes)"
        cert.Node.root count;
    Array.iteri (check_node cert) nodes;
    (* Every node must feed the root: a stray island is either junk or
       a smuggled statement hoping to be mistaken for the verified one. *)
    let reachable = Array.make count false in
    let rec mark i =
      if not reachable.(i) then begin
        reachable.(i) <- true;
        List.iter mark (Node.children nodes.(i).Node.rule)
      end
    in
    mark cert.Node.root;
    Array.iteri
      (fun i r ->
         if not r then
           fail ~node:i
             ~rule:(Node.rule_name nodes.(i).Node.rule)
             "node is not reachable from the root")
      reachable;
    (* The top-level claim text and digest are re-derived, never
       trusted. *)
    let rendered = render nodes.(cert.Node.root) in
    if cert.Node.claim <> rendered then
      fail "claim text %S does not match the root statement %S"
        cert.Node.claim rendered;
    let digest =
      Node.certificate_digest ~version:cert.Node.version
        ~model:cert.Node.model ~claim:cert.Node.claim ~root:cert.Node.root
        ~node_hashes:
          (List.map (fun n -> n.Node.hash) (Array.to_list nodes))
    in
    if digest <> cert.Node.digest then
      fail "certificate digest %s does not match recomputed %s"
        cert.Node.digest digest;
    let leaves = ref 0 and axioms = ref 0 in
    Array.iter
      (fun n ->
         match n.Node.rule with
         | Node.Checked _ -> incr leaves
         | Node.Axiom _ -> incr axioms
         | Node.Trivial incl
         | Node.Strengthen_pre (_, incl)
         | Node.Weaken_post (_, incl) ->
           if incl.Node.assumed then incr axioms
         | Node.Compose _ | Node.Union _ | Node.Weaken_prob _
         | Node.Relax_time _ -> ())
      nodes;
    Ok
      { nodes = count;
        leaves = !leaves;
        axioms = !axioms;
        fully_verified = !axioms = 0;
        root_claim = rendered }
  with Fail e -> Error e
