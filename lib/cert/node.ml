module J = Analysis.Json
module Q = Proba.Rational

let wire_schema = "prtb-cert/1"

type leaf_config = {
  model : string;
  n : int;
  plane : string;
  sym : string;
  faults : string;
  budget : string;
  params : (string * string) list;
}

type inclusion = {
  sub : string;
  sup : string;
  incl_evidence : string;
  assumed : bool;
}

type rule =
  | Checked of {
      evidence : string;
      fingerprint : string;
      config : leaf_config;
    }
  | Axiom of { reason : string }
  | Trivial of inclusion
  | Compose of int * int
  | Union of int * string
  | Weaken_prob of int
  | Relax_time of int
  | Strengthen_pre of int * inclusion
  | Weaken_post of int * inclusion

type node = {
  pre : string;
  post : string;
  time : Q.t;
  prob : Q.t;
  node_schema : string;
  closed : bool;
  rule : rule;
  hash : string;
}

type t = {
  version : int;
  model : string;
  claim : string;
  root : int;
  nodes : node array;
  digest : string;
}

let children = function
  | Checked _ | Axiom _ | Trivial _ -> []
  | Compose (a, b) -> [ a; b ]
  | Union (a, _) | Weaken_prob a | Relax_time a
  | Strengthen_pre (a, _) | Weaken_post (a, _) -> [ a ]

let rule_name = function
  | Checked _ -> "checked"
  | Axiom _ -> "axiom"
  | Trivial _ -> "trivial"
  | Compose _ -> "compose"
  | Union _ -> "union"
  | Weaken_prob _ -> "weaken_prob"
  | Relax_time _ -> "relax_time"
  | Strengthen_pre _ -> "strengthen_pre"
  | Weaken_post _ -> "weaken_post"

(* ------------------------------------------------------------------ *)
(* Hashing.

   Every field is length-prefixed ("len:bytes") before digesting, so
   no concatenation of fields can collide with another split of the
   same bytes; rationals contribute their canonical wire form.  The
   children contribute their *hashes*, not their indices: a parent is
   bound to its children's full content (Merkle-style), which is what
   localizes a tamper at the node that owns the flipped byte. *)

let enc buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let enc_inclusion buf i =
  enc buf i.sub;
  enc buf i.sup;
  enc buf i.incl_evidence;
  enc buf (if i.assumed then "1" else "0")

let enc_config buf (c : leaf_config) =
  enc buf c.model;
  enc buf (string_of_int c.n);
  enc buf c.plane;
  enc buf c.sym;
  enc buf c.faults;
  enc buf c.budget;
  List.iter
    (fun (k, v) ->
       enc buf k;
       enc buf v)
    c.params

let node_hash n ~child_hashes =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "cert-node/1|";
  enc buf n.pre;
  enc buf n.post;
  enc buf (Q.to_wire n.time);
  enc buf (Q.to_wire n.prob);
  enc buf n.node_schema;
  enc buf (if n.closed then "1" else "0");
  enc buf (rule_name n.rule);
  (match n.rule with
   | Checked { evidence; fingerprint; config } ->
     enc buf evidence;
     enc buf fingerprint;
     enc_config buf config
   | Axiom { reason } -> enc buf reason
   | Trivial i -> enc_inclusion buf i
   | Compose _ | Weaken_prob _ | Relax_time _ -> ()
   | Union (_, u) -> enc buf u
   | Strengthen_pre (_, i) | Weaken_post (_, i) -> enc_inclusion buf i);
  Buffer.add_char buf '|';
  List.iter (enc buf) child_hashes;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let certificate_digest ~version ~model ~claim ~root ~node_hashes =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "prtb-cert-digest/1|";
  enc buf (string_of_int version);
  enc buf model;
  enc buf claim;
  enc buf (string_of_int root);
  List.iter (enc buf) node_hashes;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Serialization. *)

let config_to_json (c : leaf_config) =
  J.Obj
    [ ("model", J.Str c.model);
      ("n", J.Int c.n);
      ("plane", J.Str c.plane);
      ("sym", J.Str c.sym);
      ("faults", J.Str c.faults);
      ("budget", J.Str c.budget);
      ("params", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) c.params)) ]

let inclusion_to_json i =
  J.Obj
    [ ("sub", J.Str i.sub);
      ("sup", J.Str i.sup);
      ("evidence", J.Str i.incl_evidence);
      ("assumed", J.Bool i.assumed) ]

let node_to_json n =
  let extras =
    match n.rule with
    | Checked { evidence; fingerprint; config } ->
      [ ("evidence", J.Str evidence);
        ("fingerprint", J.Str fingerprint);
        ("config", config_to_json config) ]
    | Axiom { reason } -> [ ("reason", J.Str reason) ]
    | Trivial i -> [ ("inclusion", inclusion_to_json i) ]
    | Compose (a, b) -> [ ("children", J.Arr [ J.Int a; J.Int b ]) ]
    | Union (a, u) -> [ ("child", J.Int a); ("with", J.Str u) ]
    | Weaken_prob a | Relax_time a -> [ ("child", J.Int a) ]
    | Strengthen_pre (a, i) | Weaken_post (a, i) ->
      [ ("child", J.Int a); ("inclusion", inclusion_to_json i) ]
  in
  J.Obj
    ([ ("rule", J.Str (rule_name n.rule));
       ("pre", J.Str n.pre);
       ("post", J.Str n.post);
       ("time", J.Str (Q.to_wire n.time));
       ("prob", J.Str (Q.to_wire n.prob));
       ("schema", J.Str n.node_schema);
       ("closed", J.Bool n.closed) ]
     @ extras
     @ [ ("hash", J.Str n.hash) ])

let to_json t =
  J.Obj
    [ ("schema", J.Str wire_schema);
      ("version", J.Int t.version);
      ("model", J.Str t.model);
      ("claim", J.Str t.claim);
      ("root", J.Int t.root);
      ("nodes", J.Arr (List.map node_to_json (Array.to_list t.nodes)));
      ("digest", J.Str t.digest) ]

let to_string t = J.to_string (to_json t)

(* ------------------------------------------------------------------ *)
(* Strict parsing.  [Reject] carries a message; every object's key set
   must match its shape exactly, so a tampered-in extra field (which
   the hash would not cover) is a parse error, not silent slack. *)

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

let obj_fields what = function
  | J.Obj fields -> fields
  | _ -> reject "%s must be a JSON object" what

let check_keys what ~expected fields =
  let got = List.map fst fields in
  let missing = List.filter (fun k -> not (List.mem k got)) expected in
  let extra = List.filter (fun k -> not (List.mem k expected)) got in
  (match missing with
   | k :: _ -> reject "%s: missing field %S" what k
   | [] -> ());
  match extra with
  | k :: _ -> reject "%s: unknown field %S" what k
  | [] -> ()

let str_field what fields name =
  match List.assoc_opt name fields with
  | Some (J.Str s) -> s
  | Some _ -> reject "%s: field %S must be a string" what name
  | None -> reject "%s: missing field %S" what name

let int_field what fields name =
  match List.assoc_opt name fields with
  | Some (J.Int i) -> i
  | Some _ | None -> reject "%s: field %S must be an integer" what name

let bool_field what fields name =
  match List.assoc_opt name fields with
  | Some (J.Bool b) -> b
  | Some _ | None -> reject "%s: field %S must be a boolean" what name

let rational_field what fields name =
  let s = str_field what fields name in
  match Q.of_wire s with
  | Ok q -> q
  | Error e -> reject "%s: field %S: %s" what name e

let inclusion_of_json what j =
  let fields = obj_fields what j in
  check_keys what ~expected:[ "sub"; "sup"; "evidence"; "assumed" ] fields;
  { sub = str_field what fields "sub";
    sup = str_field what fields "sup";
    incl_evidence = str_field what fields "evidence";
    assumed = bool_field what fields "assumed" }

let config_of_json what j =
  let fields = obj_fields what j in
  check_keys what
    ~expected:[ "model"; "n"; "plane"; "sym"; "faults"; "budget"; "params" ]
    fields;
  let params =
    match List.assoc_opt "params" fields with
    | Some (J.Obj kvs) ->
      List.map
        (fun (k, v) ->
           match v with
           | J.Str s -> (k, s)
           | _ -> reject "%s: param %S must be a string" what k)
        kvs
    | Some _ | None -> reject "%s: field \"params\" must be an object" what
  in
  { model = str_field what fields "model";
    n = int_field what fields "n";
    plane = str_field what fields "plane";
    sym = str_field what fields "sym";
    faults = str_field what fields "faults";
    budget = str_field what fields "budget";
    params }

let node_of_json idx j =
  let what = Printf.sprintf "node %d" idx in
  let fields = obj_fields what j in
  let common = [ "rule"; "pre"; "post"; "time"; "prob"; "schema"; "closed" ] in
  let rule_tag = str_field what fields "rule" in
  let child name =
    match List.assoc_opt name fields with
    | Some (J.Int i) -> i
    | Some _ | None -> reject "%s: field %S must be a node index" what name
  in
  let rule =
    match rule_tag with
    | "checked" ->
      check_keys what
        ~expected:(common @ [ "evidence"; "fingerprint"; "config"; "hash" ])
        fields;
      Checked
        { evidence = str_field what fields "evidence";
          fingerprint = str_field what fields "fingerprint";
          config =
            config_of_json (what ^ " config")
              (Option.get (List.assoc_opt "config" fields)) }
    | "axiom" ->
      check_keys what ~expected:(common @ [ "reason"; "hash" ]) fields;
      Axiom { reason = str_field what fields "reason" }
    | "trivial" ->
      check_keys what ~expected:(common @ [ "inclusion"; "hash" ]) fields;
      Trivial
        (inclusion_of_json (what ^ " inclusion")
           (Option.get (List.assoc_opt "inclusion" fields)))
    | "compose" ->
      check_keys what ~expected:(common @ [ "children"; "hash" ]) fields;
      (match List.assoc_opt "children" fields with
       | Some (J.Arr [ J.Int a; J.Int b ]) -> Compose (a, b)
       | Some _ | None ->
         reject "%s: \"children\" must be a two-index array" what)
    | "union" ->
      check_keys what ~expected:(common @ [ "child"; "with"; "hash" ]) fields;
      Union (child "child", str_field what fields "with")
    | "weaken_prob" ->
      check_keys what ~expected:(common @ [ "child"; "hash" ]) fields;
      Weaken_prob (child "child")
    | "relax_time" ->
      check_keys what ~expected:(common @ [ "child"; "hash" ]) fields;
      Relax_time (child "child")
    | "strengthen_pre" ->
      check_keys what
        ~expected:(common @ [ "child"; "inclusion"; "hash" ]) fields;
      Strengthen_pre
        ( child "child",
          inclusion_of_json (what ^ " inclusion")
            (Option.get (List.assoc_opt "inclusion" fields)) )
    | "weaken_post" ->
      check_keys what
        ~expected:(common @ [ "child"; "inclusion"; "hash" ]) fields;
      Weaken_post
        ( child "child",
          inclusion_of_json (what ^ " inclusion")
            (Option.get (List.assoc_opt "inclusion" fields)) )
    | other -> reject "%s: unknown rule tag %S" what other
  in
  { pre = str_field what fields "pre";
    post = str_field what fields "post";
    time = rational_field what fields "time";
    prob = rational_field what fields "prob";
    node_schema = str_field what fields "schema";
    closed = bool_field what fields "closed";
    rule;
    hash = str_field what fields "hash" }

let of_json j =
  try
    let what = "certificate" in
    let fields = obj_fields what j in
    check_keys what
      ~expected:
        [ "schema"; "version"; "model"; "claim"; "root"; "nodes"; "digest" ]
      fields;
    let schema = str_field what fields "schema" in
    if schema <> wire_schema then
      reject "unsupported certificate schema %S (expected %S)" schema
        wire_schema;
    let version = int_field what fields "version" in
    if version <> 1 then reject "unsupported certificate version %d" version;
    let nodes =
      match List.assoc_opt "nodes" fields with
      | Some (J.Arr items) -> Array.of_list (List.mapi node_of_json items)
      | Some _ | None -> reject "%s: \"nodes\" must be an array" what
    in
    if Array.length nodes = 0 then reject "certificate has no nodes";
    Ok
      { version;
        model = str_field what fields "model";
        claim = str_field what fields "claim";
        root = int_field what fields "root";
        nodes;
        digest = str_field what fields "digest" }
  with Reject msg -> Error msg

let of_string s =
  match J.of_string s with
  | Error e -> Error (Printf.sprintf "JSON parse error: %s" e)
  | Ok j -> of_json j
