(** Independent certificate re-checker.

    [run] validates a {!Node.t} without touching [lib/core] or
    [lib/mdp]: it is deliberately a {e second implementation} of the
    paper's composition rules (Theorem 3.4, Propositions 3.2 and 4.2),
    working only on the serialized node data, so it cross-audits the
    engines that emitted the certificate.  It re-checks, per node:

    - structural sanity (children strictly below the parent, all
      indices in range, every node reachable from the root);
    - integrity (the stored node hash equals the recomputed
      Merkle-linked hash; the certificate digest matches), so flipping
      any byte of a weight, rule tag, fingerprint or evidence string is
      detected {e at the node that owns it};
    - the arithmetic and side conditions of every rule application
      ([compose] re-adds times and re-multiplies probabilities from the
      children's wire values; weakenings re-check the inequalities;
      unions re-derive the predicate names);
    - leaf well-formedness (non-empty evidence, well-formed arena
      fingerprints, a sane configuration).

    What it does {e not} do is re-explore: trusting a certificate means
    trusting its [checked] leaves' evidence for the named arena
    fingerprint, plus this verifier's rule arithmetic -- never the
    emitting engine's. *)

type summary = {
  nodes : int;
  leaves : int;  (** [checked] leaves *)
  axioms : int;  (** [axiom] leaves + assumed inclusions *)
  fully_verified : bool;  (** [axioms = 0] *)
  root_claim : string;  (** re-rendered from the root node *)
}

(** A failed check, pinned to the node that owns it when one does
    ([node = None] for certificate-level failures such as a digest
    mismatch). *)
type error = {
  node : int option;
  rule : string option;
  reason : string;
}

(** ["node 7 (compose): ..."], or just the reason for
    certificate-level errors. *)
val error_to_string : error -> string

val run : Node.t -> (summary, error) result
