let inclusion_of incl =
  { Node.sub = Core.Pred.name (Core.Inclusion.sub incl);
    sup = Core.Pred.name (Core.Inclusion.sup incl);
    incl_evidence = Core.Inclusion.evidence incl;
    assumed = Core.Inclusion.is_axiom incl }

let emit ~config ~fingerprint claim =
  (* Nodes are appended bottom-up as the fold returns, so children
     always precede parents; structural dedup by hash keeps repeated
     identical sub-derivations (e.g. the same trivial inclusion used
     twice) as one shared node. *)
  let by_hash = Hashtbl.create 64 in
  let rev_nodes = ref [] in
  let count = ref 0 in
  let add node =
    match Hashtbl.find_opt by_hash node.Node.hash with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      rev_nodes := node :: !rev_nodes;
      Hashtbl.add by_hash node.Node.hash i;
      i
  in
  let hash_of i = (List.nth !rev_nodes (!count - 1 - i)).Node.hash in
  let root =
    Core.Claim.fold
      (fun c child_indices ->
         let rule =
           match Core.Claim.rule c, child_indices with
           | Core.Claim.Checked_leaf evidence, [] ->
             Node.Checked { evidence; fingerprint; config }
           | Core.Claim.Axiom_leaf reason, [] -> Node.Axiom { reason }
           | Core.Claim.Trivial_leaf incl, [] ->
             Node.Trivial (inclusion_of incl)
           | Core.Claim.Composed _, [ a; b ] -> Node.Compose (a, b)
           | Core.Claim.Unioned (_, u), [ a ] ->
             Node.Union (a, Core.Pred.name u)
           | Core.Claim.Prob_weakened _, [ a ] -> Node.Weaken_prob a
           | Core.Claim.Time_relaxed _, [ a ] -> Node.Relax_time a
           | Core.Claim.Pre_strengthened (_, incl), [ a ] ->
             Node.Strengthen_pre (a, inclusion_of incl)
           | Core.Claim.Post_weakened (_, incl), [ a ] ->
             Node.Weaken_post (a, inclusion_of incl)
           | _, _ ->
             (* [subclaims] and [rule] agree on arity by construction. *)
             invalid_arg "Cert.Emit: rule/children arity mismatch"
         in
         let unhashed =
           { Node.pre = Core.Pred.name (Core.Claim.pre c);
             post = Core.Pred.name (Core.Claim.post c);
             time = Core.Claim.time c;
             prob = Core.Claim.prob c;
             node_schema = Core.Schema.name (Core.Claim.schema c);
             closed = Core.Schema.execution_closed (Core.Claim.schema c);
             rule;
             hash = "" }
         in
         let child_hashes = List.map hash_of child_indices in
         add { unhashed with Node.hash = Node.node_hash unhashed ~child_hashes })
      claim
  in
  let nodes = Array.of_list (List.rev !rev_nodes) in
  let claim_str = Format.asprintf "%a" Core.Claim.pp claim in
  let digest =
    Node.certificate_digest ~version:1 ~model:config.Node.model
      ~claim:claim_str ~root
      ~node_hashes:(List.map (fun n -> n.Node.hash) (Array.to_list nodes))
  in
  { Node.version = 1;
    model = config.Node.model;
    claim = claim_str;
    root;
    nodes;
    digest }
