(** The certificate data model and its wire form ([prtb-cert/1]).

    A certificate reifies one audited {!Core.Claim} derivation as a
    compact DAG: an array of {!node}s in strict bottom-up order (every
    child index precedes its parent), a [root] index, and integrity
    metadata.  Interior nodes are the paper's rule applications
    (Theorem 3.4 composition, Proposition 3.2 union, the weakening
    rules of Proposition 4.2); leaves are model-checking results
    carrying the {!Mdp.Arena} fingerprint and the full configuration
    that produced them, so a verifier knows exactly {e which} explored
    system discharged them.

    Integrity is layered: each node stores an MD5 over its own
    canonical payload plus its children's hashes (a Merkle link, so a
    tampered byte surfaces at the node that owns it), and the
    certificate stores a digest over the version, model, claim
    rendering, root index and all node hashes.  Rational weights
    travel as {!Proba.Rational.to_wire} bytes -- exact at any
    magnitude and with a unique spelling, so no tamper can hide
    behind a non-canonical alias.

    This module only defines the data and its (de)serialization;
    {!Emit} produces values from claims, {!Verify} re-checks them
    independently. *)

(** The wire schema tag, ["prtb-cert/1"]. *)
val wire_schema : string

(** The configuration a leaf was checked under.  [params] carries the
    model-specific knobs (g, k, topology, bound, cap, ...) as sorted
    key/value strings. *)
type leaf_config = {
  model : string;
  n : int;
  plane : string;  (** ["interval"] or ["exact"] *)
  sym : string;  (** ["auto"], ["on"] or ["off"] *)
  faults : string;  (** ["none"] or a fault spec *)
  budget : string;  (** e.g. ["states:2000000"] *)
  params : (string * string) list;
}

(** A certified (or assumed) set inclusion, by predicate name. *)
type inclusion = {
  sub : string;
  sup : string;
  incl_evidence : string;
  assumed : bool;
}

(** One rule application.  Children are node indices into the
    certificate's [nodes] array (always strictly below the parent's
    own index). *)
type rule =
  | Checked of {
      evidence : string;
      fingerprint : string;  (** {!Mdp.Arena.fingerprint} of the arena *)
      config : leaf_config;
    }
  | Axiom of { reason : string }
  | Trivial of inclusion
  | Compose of int * int  (** Theorem 3.4 *)
  | Union of int * string  (** Proposition 3.2; the added set's name *)
  | Weaken_prob of int
  | Relax_time of int
  | Strengthen_pre of int * inclusion
  | Weaken_post of int * inclusion

type node = {
  pre : string;
  post : string;
  time : Proba.Rational.t;
  prob : Proba.Rational.t;
  node_schema : string;  (** adversary-schema name *)
  closed : bool;  (** execution-closed (Theorem 3.4 premise) *)
  rule : rule;
  hash : string;  (** MD5 hex over payload + child hashes *)
}

type t = {
  version : int;
  model : string;
  claim : string;  (** one-line rendering of the root statement *)
  root : int;
  nodes : node array;
  digest : string;  (** MD5 hex over version, model, claim, root, hashes *)
}

(** Child indices of a rule, in order. *)
val children : rule -> int list

(** The wire tag of a rule (["checked"], ["compose"], ...). *)
val rule_name : rule -> string

(** [node_hash n ~child_hashes] is the canonical hash of [n]'s payload
    (everything except [n.hash]) linked to its children's hashes.
    {!Emit} stamps it; {!Verify} recomputes and compares. *)
val node_hash : node -> child_hashes:string list -> string

(** The certificate-level digest over everything the DAG does not
    already chain: version, model, claim rendering, root index, and
    every node hash in array order. *)
val certificate_digest :
  version:int -> model:string -> claim:string -> root:int ->
  node_hashes:string list -> string

(** {1 Wire form} *)

val to_json : t -> Analysis.Json.t

(** Strict parse: unknown or missing object keys, non-canonical
    rational spellings, and malformed rule shapes are errors (the
    whole surface a tamper could touch).  Hashes are {e not} checked
    here -- that is {!Verify.run}'s job, which can name the failing
    node. *)
val of_json : Analysis.Json.t -> (t, string) result

(** [to_json] rendered compactly. *)
val to_string : t -> string

(** Parse then [of_json]. *)
val of_string : string -> (t, string) result
