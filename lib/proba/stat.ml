module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.mean

  let variance t =
    if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let mean_ci ?(z = 1.96) t =
    if t.count < 2 then (nan, nan)
    else begin
      let half = z *. stddev t /. sqrt (float_of_int t.count) in
      (t.mean -. half, t.mean +. half)
    end
end

module Proportion = struct
  type t = { mutable trials : int; mutable successes : int }

  let create () = { trials = 0; successes = 0 }

  let of_counts ~trials ~successes =
    if trials < 0 || successes < 0 || successes > trials then
      invalid_arg "Proportion.of_counts";
    { trials; successes }

  let add t success =
    t.trials <- t.trials + 1;
    if success then t.successes <- t.successes + 1

  let trials t = t.trials
  let successes t = t.successes

  let estimate t =
    if t.trials = 0 then nan
    else float_of_int t.successes /. float_of_int t.trials

  let wilson_ci ?(z = 1.96) t =
    if t.trials = 0 then (nan, nan)
    else begin
      let n = float_of_int t.trials in
      let p = estimate t in
      let z2 = z *. z in
      let denom = 1.0 +. (z2 /. n) in
      let center = (p +. (z2 /. (2.0 *. n))) /. denom in
      let half =
        z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom
      in
      (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
    end
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array;
    mutable underflow : int;
    mutable overflow : int;
    mutable total : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; width = (hi -. lo) /. float_of_int bins;
      counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

  let add t x =
    t.total <- t.total + 1;
    if x < t.lo then t.underflow <- t.underflow + 1
    else if x >= t.hi then t.overflow <- t.overflow + 1
    else begin
      let i = int_of_float ((x -. t.lo) /. t.width) in
      let i = if i >= Array.length t.counts then Array.length t.counts - 1 else i in
      t.counts.(i) <- t.counts.(i) + 1
    end

  let count t = t.total
  let bin_counts t = Array.copy t.counts
  let underflow t = t.underflow
  let overflow t = t.overflow

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
    if t.total = 0 then nan
    else begin
      let target = q *. float_of_int t.total in
      let acc = ref (float_of_int t.underflow) in
      let result = ref t.hi in
      (try
         for i = 0 to Array.length t.counts - 1 do
           let c = float_of_int t.counts.(i) in
           if !acc +. c >= target && c > 0.0 then begin
             let frac = (target -. !acc) /. c in
             result := t.lo +. ((float_of_int i +. frac) *. t.width);
             raise Exit
           end;
           acc := !acc +. c
         done
       with Exit -> ());
      !result
    end

  let pp fmt t =
    Format.fprintf fmt "@[<v>";
    let peak = Array.fold_left Stdlib.max 1 t.counts in
    Array.iteri
      (fun i c ->
         let lo = t.lo +. (float_of_int i *. t.width) in
         let bar = String.make (c * 40 / peak) '#' in
         Format.fprintf fmt "[%8.2f) %6d %s@," lo c bar)
      t.counts;
    if t.underflow > 0 then Format.fprintf fmt "underflow %d@," t.underflow;
    if t.overflow > 0 then Format.fprintf fmt "overflow %d@," t.overflow;
    Format.fprintf fmt "@]"
end
