(** Exact rational arithmetic.

    Rationals are kept in canonical form: the denominator is positive and
    the numerator/denominator pair is coprime.  All probability
    computations in this library use this type so that statements such as
    [G -5->_{1/4} P] are checked exactly rather than up to floating-point
    error. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val half : t
val two : t

(** {1 Construction} *)

(** [make num den] is [num/den] in canonical form.
    Raises [Division_by_zero] if [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_ints num den] is [num/den]. Raises [Division_by_zero] on [den=0]. *)
val of_ints : int -> int -> t

val of_int : int -> t
val of_bigint : Bigint.t -> t

(** [of_string s] parses ["a/b"], ["a"], or a decimal like ["0.25"].
    Raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val to_float : t -> float

(** {1 Directed float conversions}

    Every finite IEEE double is a dyadic rational, so [of_float_exact]
    loses nothing, and the directed conversions below are correctly
    rounded: [to_float_down q] is the largest double [<= q] and
    [to_float_up q] the smallest double [>= q].  Magnitudes beyond
    [max_float] saturate to [max_float] on the inward side and to the
    matching infinity on the outward side.  These are the foundation of
    {!Interval}'s outward rounding. *)

(** Exact rational value of a finite double.
    Raises [Invalid_argument] on nan/infinities. *)
val of_float_exact : float -> t

val to_float_down : t -> float
val to_float_up : t -> float

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val leq : t -> t -> bool
val lt : t -> t -> bool
val geq : t -> t -> bool
val gt : t -> t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises [Division_by_zero] when dividing by zero. *)
val div : t -> t -> t

val inv : t -> t

(** [pow x n] for any integer [n] (negative powers invert; raises
    [Division_by_zero] on [pow zero n] with [n < 0]). *)
val pow : t -> int -> t

(** [mul_int x n] is [x * n]. *)
val mul_int : t -> int -> t

(** {1 Probability helpers} *)

(** [is_probability x] is [0 <= x <= 1]. *)
val is_probability : t -> bool

(** [sum xs] adds a list of rationals. *)
val sum : t list -> t

(** {1 Printing} *)

(** Renders ["num/den"] (or just ["num"] when the denominator is 1). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Wire encoding}

    The exact interchange form used by proof certificates
    ([lib/cert]): canonical ["num/den"] (or ["num"]), safe past the
    native-int promotion boundary because both components travel as
    decimal numerals through the {!Bigint} tier. *)

(** [to_wire q] is the canonical encoding (same bytes as
    {!to_string}). *)
val to_wire : t -> string

(** [of_wire s] parses exactly the strings {!to_wire} emits.
    Non-canonical spellings of a value (["2/4"], ["+1/2"], ["1/-2"],
    decimals) are rejected, so an encoded weight has one and only one
    byte representation -- tampering cannot hide behind an alias. *)
val of_wire : string -> (t, string) result
