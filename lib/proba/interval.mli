(** Outward-rounded double intervals.

    A value [{lo; hi}] encloses an exact real; every operation rounds
    [lo] down and [hi] up, so enclosures are preserved using nothing
    but double arithmetic.  The checking engines sweep this plane
    first and fall back to exact rationals only where the interval
    stayed wide: a {e point} interval ([lo = hi], finite) contains
    exactly one real, and that real is a dyadic rational recoverable
    with {!Rational.of_float_exact} — so point results pin exact
    values without any Bigint work.

    The directed helpers are {e correctly rounded} wherever the
    operation's residual is exactly representable (always for [+.];
    for [*.] outside the near-subnormal zone, where one extra ulp of
    widening is applied) — tightness is what lets intervals collapse
    to points on dyadic models. *)

type t = private { lo : float; hi : float }

val lo : t -> float
val hi : t -> float

(** {1 Directed scalar arithmetic}

    Sound double endpoints for engines that keep raw [lo]/[hi] arrays:
    [add_down a b <= a + b <= add_up a b] (as reals, for the exact
    reals enclosed by [a] and [b]), and likewise for [mul_*].
    Overflow saturates soundly ([max_float] inward, infinity
    outward). *)

val add_down : float -> float -> float
val add_up : float -> float -> float
val mul_down : float -> float -> float
val mul_up : float -> float -> float

(** {1 Construction} *)

(** Raises [Invalid_argument] when [lo > hi] or an endpoint is nan. *)
val make : float -> float -> t

(** Point interval. Raises [Invalid_argument] on nan. *)
val of_float : float -> t

(** Tightest interval around an exact rational (correctly rounded
    endpoints; a point whenever the rational is a finite double). *)
val of_rational : Rational.t -> t

val zero : t
val one : t

(** {1 Interval arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** Exact (no widening): interval min/max are componentwise. *)
val min : t -> t -> t

val max : t -> t -> t

(** {1 Oracle queries} *)

(** [lo = hi] — the interval pins a single real. *)
val is_point : t -> bool

(** The pinned rational of a finite point interval, [None] otherwise. *)
val exact_value : t -> Rational.t option

val contains : t -> Rational.t -> bool

(** Sound three-way comparison against an exact rational: [Some c]
    only when the interval proves it ([-1]: entirely below [q], [1]:
    entirely above, [0]: point equal); [None] when the interval
    straddles [q]. *)
val compare_to : t -> Rational.t -> int option

val width : t -> float
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
