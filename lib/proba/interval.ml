(* Outward-rounded double intervals.

   An interval [{lo; hi}] encloses an exact real: every operation
   rounds its lower endpoint down and its upper endpoint up, so the
   enclosure is preserved without ever touching exact arithmetic.  The
   engines use intervals as a sound oracle: a *point* interval
   (lo = hi, finite) pins the enclosed value to exactly one rational
   ([Rational.of_float_exact]), letting them skip the exact
   recomputation entirely; a wide interval marks residue work.

   OCaml gives no access to the FPU rounding mode, so the directed
   helpers below recover each operation's exact residual
   (2Sum for [+.], [Float.fma] for [*.]) and nudge the result one ulp
   when round-to-nearest went the wrong way.  When the residual is
   exact this yields *correctly rounded* directed results, i.e. point
   intervals whenever the true result is representable — tightness
   matters as much as soundness here, because points are what the
   engines harvest. *)

module Q = Rational

type t = { lo : float; hi : float }

let lo t = t.lo
let hi t = t.hi

(* ------------------------------------------------------------------ *)
(* Directed scalar arithmetic. *)

let min_sub = 0x1p-1074 (* smallest positive subnormal *)

(* Below this magnitude a product's FMA residual may itself round (the
   residual of a near-subnormal product need not be representable), so
   its sign is only trustworthy when it pushes outward. *)
let near_zero = 0x1p-1021

let[@inline] add_down a b =
  let s = a +. b in
  if Float.is_nan s then s
  else if s = infinity then
    (* overflow from finite operands: max_float is a sound lower
       bound; a genuinely infinite operand keeps infinity *)
    if a = infinity || b = infinity then infinity else max_float
  else if s = neg_infinity then neg_infinity
  else begin
    (* 2Sum: [err = a + b - s] exactly (no overflow: |s| finite) *)
    let bv = s -. a in
    let av = s -. bv in
    let err = (a -. av) +. (b -. bv) in
    if err < 0.0 then Float.pred s else s
  end

let[@inline] add_up a b =
  let s = a +. b in
  if Float.is_nan s then s
  else if s = neg_infinity then
    (if a = neg_infinity || b = neg_infinity then neg_infinity
     else -.max_float)
  else if s = infinity then infinity
  else begin
    let bv = s -. a in
    let av = s -. bv in
    let err = (a -. av) +. (b -. bv) in
    if err > 0.0 then Float.succ s else s
  end

let[@inline] mul_down a b =
  let p = a *. b in
  if Float.is_nan p then
    (* 0 * inf: no information, return a sound (infinite) bound *)
    if Float.is_nan a || Float.is_nan b then p else neg_infinity
  else if p = infinity then
    (if Float.is_finite a && Float.is_finite b then max_float else infinity)
  else if p = neg_infinity then neg_infinity
  else if p = 0.0 then
    (* underflow to zero: the true product's magnitude is below
       2^-1075, bound it by one subnormal on the signed side *)
    (if a = 0.0 || b = 0.0 then 0.0
     else if (a > 0.0) = (b > 0.0) then 0.0
     else -.min_sub)
  else begin
    let err = Float.fma a b (-.p) in
    if Float.abs p < near_zero then
      (* inexact residual zone: only trust an outward-pushing sign *)
      (if err > 0.0 then p else Float.pred p)
    else if err < 0.0 then Float.pred p
    else p
  end

let[@inline] mul_up a b =
  let p = a *. b in
  if Float.is_nan p then
    (if Float.is_nan a || Float.is_nan b then p else infinity)
  else if p = neg_infinity then
    (if Float.is_finite a && Float.is_finite b then -.max_float
     else neg_infinity)
  else if p = infinity then infinity
  else if p = 0.0 then
    (if a = 0.0 || b = 0.0 then 0.0
     else if (a > 0.0) = (b > 0.0) then min_sub
     else 0.0)
  else begin
    let err = Float.fma a b (-.p) in
    if Float.abs p < near_zero then
      (if err < 0.0 then p else Float.succ p)
    else if err > 0.0 then Float.succ p
    else p
  end

(* ------------------------------------------------------------------ *)
(* Intervals. *)

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Interval.make: empty or nan interval";
  { lo; hi }

let of_float f =
  if Float.is_nan f then invalid_arg "Interval.of_float: nan";
  { lo = f; hi = f }

let zero = { lo = 0.0; hi = 0.0 }
let one = { lo = 1.0; hi = 1.0 }
let of_rational q = { lo = Q.to_float_down q; hi = Q.to_float_up q }

(* [lo = hi] as floats; both endpoints then denote the same real (the
   only subtlety, -0. = +0., still pins the value 0). *)
let is_point t = t.lo = t.hi

let exact_value t =
  if t.lo = t.hi && Float.is_finite t.lo then Some (Q.of_float_exact t.lo)
  else None

let add x y = { lo = add_down x.lo y.lo; hi = add_up x.hi y.hi }
let neg x = { lo = -.x.hi; hi = -.x.lo }
let sub x y = add x (neg y)

let mul x y =
  let a = x.lo and b = x.hi and c = y.lo and d = y.hi in
  (* general sign handling: extremes over the four endpoint products *)
  let lo =
    Float.min
      (Float.min (mul_down a c) (mul_down a d))
      (Float.min (mul_down b c) (mul_down b d))
  and hi =
    Float.max
      (Float.max (mul_up a c) (mul_up a d))
      (Float.max (mul_up b c) (mul_up b d))
  in
  { lo; hi }

(* min/max are exact componentwise: no rounding, no widening *)
let min x y = { lo = Float.min x.lo y.lo; hi = Float.min x.hi y.hi }
let max x y = { lo = Float.max x.lo y.lo; hi = Float.max x.hi y.hi }

let contains t q =
  (t.lo = neg_infinity || Q.leq (Q.of_float_exact t.lo) q)
  && (t.hi = infinity || Q.leq q (Q.of_float_exact t.hi))

let compare_to t q =
  if Float.is_finite t.hi && Q.lt (Q.of_float_exact t.hi) q then Some (-1)
  else if Float.is_finite t.lo && Q.gt (Q.of_float_exact t.lo) q then Some 1
  else if t.lo = t.hi && Float.is_finite t.lo
          && Q.equal (Q.of_float_exact t.lo) q
  then Some 0
  else None

let width t = t.hi -. t.lo
let equal x y = Float.equal x.lo y.lo && Float.equal x.hi y.hi
let pp fmt t = Format.fprintf fmt "[%.17g, %.17g]" t.lo t.hi
