(* Normalized m * 2^e with m odd (or m = 0, e = 0).

   Two-tier representation mirroring {!Rational}: mantissas that fit a
   native [int] (as witnessed by [Bigint.to_int]) stay unboxed in [Sm]
   and are added/multiplied with overflow-checked machine arithmetic;
   wide mantissas fall back to the [Bigint] path.  The split is
   canonical -- a mantissa representable as [Sm] is never stored as
   [Bg], and [min_int] is excluded -- so structural equality and hashing
   keep working on values embedding dyadics. *)

type t =
  | Sm of int * int  (* mantissa odd (or 0 with exponent 0), not min_int *)
  | Bg of Bigint.t * int  (* mantissa odd, beyond the native range *)

exception Not_dyadic of string

(* Same overflow checks as {!Rational}; see there for the reasoning. *)
let add_checked a b =
  let s = a + b in
  if (a lxor s) land (b lxor s) < 0 then None else Some s

let lim31 = 1 lsl 31

let mul_checked a b =
  if a > -lim31 && a < lim31 && b > -lim31 && b < lim31 then Some (a * b)
  else if a = 0 || b = 0 then Some 0
  else if a = min_int || b = min_int then None
  else begin
    let p = a * b in
    if p / b = a then Some p else None
  end

(* Count of trailing zero bits; [m] nonzero and not [min_int].
   Two's-complement [land]/[asr] make this sign-agnostic. *)
let tz_int m =
  let rec go m k = if m land 1 = 1 then k else go (m asr 1) (k + 1) in
  go m 0

let zero = Sm (0, 0)
let one = Sm (1, 0)
let half = Sm (1, -1)

let norm_big m e =
  if Bigint.is_zero m then zero
  else begin
    let tz = Bigint.trailing_zeros m in
    let m = if tz = 0 then m else Bigint.shift_right m tz in
    match Bigint.to_int m with
    | Some n -> Sm (n, e + tz)
    | None -> Bg (m, e + tz)
  end

(* Normalize a native mantissa; [min_int] (magnitude beyond [max_int])
   detours through the big path. *)
let norm_small m e =
  if m = 0 then zero
  else if m = min_int then norm_big (Bigint.of_int m) e
  else begin
    let tz = tz_int m in
    if tz = 0 then Sm (m, e) else Sm (m asr tz, e + tz)
  end

let make m e = norm_big m e

let of_int n = norm_small n 0

let mantissa = function Sm (m, _) -> Bigint.of_int m | Bg (m, _) -> m
let exponent = function Sm (_, e) -> e | Bg (_, e) -> e

let of_rational q =
  let den = Rational.den q in
  let tz = Bigint.trailing_zeros den in
  let odd_part = Bigint.shift_right den tz in
  if not (Bigint.equal odd_part Bigint.one) then
    raise (Not_dyadic (Rational.to_string q));
  norm_big (Rational.num q) (-tz)

let to_rational = function
  | Sm (m, 0) -> Rational.of_int m
  | Sm (m, e) when e < 0 && e >= -61 -> Rational.of_ints m (1 lsl (-e))
  | (Sm _ | Bg _) as x ->
    let m = mantissa x and e = exponent x in
    if e >= 0 then Rational.of_bigint (Bigint.shift_left m e)
    else Rational.make m (Bigint.shift_left Bigint.one (-e))

let to_float = function
  | Sm (m, e) -> Float.ldexp (float_of_int m) e
  | Bg (m, e) -> Bigint.to_float m *. Float.pow 2.0 (float_of_int e)

let add_big a b =
  let ma = mantissa a and ea = exponent a in
  let mb = mantissa b and eb = exponent b in
  if ea <= eb then norm_big (Bigint.add ma (Bigint.shift_left mb (eb - ea))) ea
  else norm_big (Bigint.add (Bigint.shift_left ma (ea - eb)) mb) eb

let add a b =
  match a, b with
  | Sm (0, _), x | x, Sm (0, _) -> x
  | Sm (ma, ea), Sm (mb, eb) ->
    (* Align on the smaller exponent: shift the other mantissa left,
       falling back to bigints if the shift or the sum overflows. *)
    let mlo, elo, mhi, delta =
      if ea <= eb then (ma, ea, mb, eb - ea) else (mb, eb, ma, ea - eb)
    in
    if delta <= 62 then begin
      let shifted = mhi lsl delta in
      if shifted asr delta = mhi then
        match add_checked shifted mlo with
        | Some s -> norm_small s elo
        | None -> add_big a b
      else add_big a b
    end
    else add_big a b
  | (Sm _ | Bg _), _ -> add_big a b

let neg = function
  | Sm (m, e) -> Sm (-m, e)
  | Bg (m, e) -> Bg (Bigint.neg m, e)

let sub a b = add a (neg b)

let mul a b =
  match a, b with
  | Sm (0, _), _ | _, Sm (0, _) -> zero
  | Sm (ma, ea), Sm (mb, eb) ->
    (* odd * odd is odd (so never min_int): the product needs no
       renormalization. *)
    (match mul_checked ma mb with
     | Some m -> Sm (m, ea + eb)
     | None -> Bg (Bigint.mul (Bigint.of_int ma) (Bigint.of_int mb), ea + eb))
  | (Sm _ | Bg _), _ ->
    (* A wide mantissa times an odd mantissa only grows: no demotion. *)
    Bg (Bigint.mul (mantissa a) (mantissa b), exponent a + exponent b)

let compare_big a b =
  let ma = mantissa a and ea = exponent a in
  let mb = mantissa b and eb = exponent b in
  let sa = Bigint.sign ma and sb = Bigint.sign mb in
  if sa <> sb then Stdlib.compare sa sb
  else if sa = 0 then 0
  else if ea <= eb then Bigint.compare ma (Bigint.shift_left mb (eb - ea))
  else Bigint.compare (Bigint.shift_left ma (ea - eb)) mb

let compare a b =
  match a, b with
  | Sm (ma, ea), Sm (mb, eb) ->
    let sa = Stdlib.compare ma 0 and sb = Stdlib.compare mb 0 in
    if sa <> sb then Stdlib.compare sa sb
    else if sa = 0 then 0
    else if ea = eb then Stdlib.compare ma mb
    else if ea < eb then begin
      (* compare ma against mb * 2^(eb-ea); if the shift overflows, the
         shifted side dominates in magnitude and the common sign decides. *)
      let delta = eb - ea in
      if delta <= 62 && (mb lsl delta) asr delta = mb then
        Stdlib.compare ma (mb lsl delta)
      else -sa
    end
    else begin
      let delta = ea - eb in
      if delta <= 62 && (ma lsl delta) asr delta = ma then
        Stdlib.compare (ma lsl delta) mb
      else sa
    end
  | (Sm _ | Bg _), _ -> compare_big a b

let equal a b =
  match a, b with
  | Sm (ma, ea), Sm (mb, eb) -> ma = mb && ea = eb
  | Bg (ma, ea), Bg (mb, eb) -> ea = eb && Bigint.equal ma mb
  | Sm _, Bg _ | Bg _, Sm _ -> false

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pp fmt x = Rational.pp fmt (to_rational x)

(* ------------------------------------------------------------------ *)
(* Wire encoding: "<mantissa>" when the exponent is 0, else
   "<mantissa>p<exponent>" (mantissa odd).  Like [Rational.of_wire],
   the parser accepts exactly the strings the printer emits, so each
   dyadic has a unique byte representation on the wire. *)

let to_wire x =
  let m = mantissa x and e = exponent x in
  if e = 0 then Bigint.to_string m
  else Bigint.to_string m ^ "p" ^ string_of_int e

let of_wire s =
  let malformed () = Error (Printf.sprintf "malformed dyadic %S" s) in
  let plausible =
    s <> ""
    && String.for_all
         (fun c -> (c >= '0' && c <= '9') || c = 'p' || c = '-')
         s
  in
  if not plausible then malformed ()
  else
    let parsed =
      match String.index_opt s 'p' with
      | None -> (try Some (make (Bigint.of_string s) 0) with _ -> None)
      | Some i ->
        (try
           let m = Bigint.of_string (String.sub s 0 i) in
           let e =
             int_of_string (String.sub s (i + 1) (String.length s - i - 1))
           in
           Some (make m e)
         with _ -> None)
    in
    match parsed with
    | Some d when String.equal (to_wire d) s -> Ok d
    | Some _ -> Error (Printf.sprintf "non-canonical dyadic %S" s)
    | None -> malformed ()
