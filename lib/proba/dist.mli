(** Finite discrete probability distributions with exact rational
    weights.

    This is the [Probs(states(M))] component of the probabilistic
    automaton model: a probability space [(Omega, 2^Omega, P)] with finite
    [Omega].  Weights are strictly positive and sum to exactly one; both
    properties are enforced at construction time. *)

type 'a t

exception Not_a_distribution of string

(** {1 Construction} *)

(** [point x] is the Dirac distribution at [x]. *)
val point : 'a -> 'a t

(** [make pairs] builds a distribution from weighted outcomes.  Outcomes
    with zero weight are dropped; duplicate outcomes (w.r.t. [equal],
    default structural equality) are merged.  Raises
    [Not_a_distribution] if a weight is negative or the total is not 1. *)
val make : ?equal:('a -> 'a -> bool) -> ('a * Rational.t) list -> 'a t

(** [uniform xs] is the uniform distribution over a non-empty list
    (duplicates in [xs] receive proportionally larger weight).
    Raises [Not_a_distribution] on the empty list. *)
val uniform : 'a list -> 'a t

(** [bernoulli p x y] yields [x] with probability [p] and [y] with
    probability [1-p].  Raises [Not_a_distribution] unless [0 <= p <= 1]. *)
val bernoulli : Rational.t -> 'a -> 'a -> 'a t

(** Fair coin over two outcomes. *)
val coin : 'a -> 'a -> 'a t

(** {1 Unchecked construction} *)

(** [unsafe_make pairs] wraps raw weighted outcomes {e without}
    merging duplicates, dropping zero weights, or checking that the
    weights sum to one.  It exists so that models imported from
    external descriptions (and the deliberately broken fixtures of the
    model linter's test suite) can be represented as automata and then
    {e audited}: the static analyses in [lib/analysis] (codes
    PA001/PA002) report exactly the invariant violations this
    constructor lets through.  Feeding a non-distribution into any
    other operation of this module is unspecified. *)
val unsafe_make : ('a * Rational.t) list -> 'a t

(** {1 Observation} *)

(** Weighted outcomes, weights positive and summing to 1.  The order is
    unspecified but deterministic for a given construction. *)
val support : 'a t -> ('a * Rational.t) list

(** Number of outcomes. *)
val size : 'a t -> int

(** [prob dist pred] is the probability of the event [pred]. *)
val prob : 'a t -> ('a -> bool) -> Rational.t

(** [prob_of ?equal dist x] is the probability of the single outcome [x]. *)
val prob_of : ?equal:('a -> 'a -> bool) -> 'a t -> 'a -> Rational.t

(** [is_point dist] returns [Some x] when [dist] is Dirac at [x]. *)
val is_point : 'a t -> 'a option

(** {1 Transformation} *)

(** [map ?equal f dist] is the pushforward along [f]; outcomes that
    collide under [f] are merged. *)
val map : ?equal:('b -> 'b -> bool) -> ('a -> 'b) -> 'a t -> 'b t

(** [bind ?equal dist f] sequences two random choices (the Kleisli
    extension of the distribution monad). *)
val bind : ?equal:('b -> 'b -> bool) -> 'a t -> ('a -> 'b t) -> 'b t

(** [product d1 d2] is the independent product distribution. *)
val product : 'a t -> 'b t -> ('a * 'b) t

(** [filter_renormalize dist pred] conditions on [pred]; [None] if the
    event has probability zero. *)
val filter_renormalize : 'a t -> ('a -> bool) -> 'a t option

(** {1 Numeric} *)

(** [expect dist f] is the expectation of a rational-valued function. *)
val expect : 'a t -> ('a -> Rational.t) -> Rational.t

(** [sample dist u] picks an outcome given [u] uniform in [0,1): outcomes
    are laid out in [support] order and the one whose cumulative
    probability interval contains [u] is returned. *)
val sample : 'a t -> float -> 'a

(** {1 Printing} *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
