(** Exact dyadic rationals: [m * 2^e] with odd mantissa.

    Every probability occurring in the shipped case studies is dyadic
    (the only random sources are fair coins), and the backward-induction
    engine spends most of its time in rational [add]/[mul], whose GCD
    normalization dominates.  Dyadics normalize with shifts instead of
    GCDs, giving the same exact answers faster.  {!Mdp.Finite_horizon}
    exposes a dyadic engine built on this type.

    Values are normalized: the mantissa is odd or zero (with exponent 0
    for zero).  All operations are exact; {!of_rational} fails on
    non-dyadic input. *)

type t

exception Not_dyadic of string

val zero : t
val one : t
val half : t

(** [make mantissa exponent] is [mantissa * 2^exponent] (normalized). *)
val make : Bigint.t -> int -> t

val of_int : int -> t

(** Raises {!Not_dyadic} if the denominator is not a power of two. *)
val of_rational : Rational.t -> t

(** Exact conversion back (never fails). *)
val to_rational : t -> Rational.t

val to_float : t -> float

val mantissa : t -> Bigint.t
val exponent : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit

(** {1 Wire encoding}

    Exact interchange form for certificate payloads that carry dyadic
    weights: ["<mantissa>"] when the exponent is 0, otherwise
    ["<mantissa>p<exponent>"] with the mantissa odd, both components as
    decimal numerals (Bigint-tier safe). *)

val to_wire : t -> string

(** [of_wire s] parses exactly the strings {!to_wire} emits;
    non-normalized spellings (even mantissas, ["3p0"] vs ["3"]) are
    rejected so each value has a unique wire form. *)
val of_wire : string -> (t, string) result
