(* Canonical rationals: positive denominator, coprime numerator.

   Two-tier representation.  Values whose canonical numerator and
   denominator both fit in a native [int] (as witnessed by
   [Bigint.to_int]) are carried unboxed as [S (num, den)] and computed
   with overflow-checked native arithmetic; everything else lives on the
   [Bigint] path.  The representation is itself canonical -- a value
   representable as [S] is never built as [B], and [min_int] (whose
   magnitude exceeds [max_int]) is banished to the big path -- so
   structural equality, hashing and pattern matching on the constructor
   all remain meaningful, and [equal]/[hash]/[compare] are
   allocation-free whenever both operands are small.  Paper-sized
   probabilities (1/2, 1/8, 7/4096, ...) never leave the small path. *)

type t =
  | S of int * int  (* den > 0, gcd(|num|, den) = 1, neither is min_int *)
  | B of Bigint.t * Bigint.t  (* canonical; some component exceeds int *)

(* ------------------------------------------------------------------ *)
(* Overflow-checked native arithmetic. *)

(* [add_checked a b] is [Some (a + b)] unless the exact sum overflows:
   overflow flips the result sign away from both same-signed operands. *)
let add_checked a b =
  let s = a + b in
  if (a lxor s) land (b lxor s) < 0 then None else Some s

let lim31 = 1 lsl 31

(* [mul_checked a b] is [Some (a * b)] when the exact product is
   representable.  Operands with magnitude below [2^31] multiply
   directly; otherwise the wrapped product is validated by division,
   which is exact because a wrapped product is off by a multiple of
   [2^63], far more than [|b|].  [min_int] operands are rejected
   outright (their magnitude breaks the division check). *)
let mul_checked a b =
  if a > -lim31 && a < lim31 && b > -lim31 && b < lim31 then Some (a * b)
  else if a = 0 || b = 0 then Some 0
  else if a = min_int || b = min_int then None
  else begin
    let p = a * b in
    if p / b = a then Some p else None
  end

(* Positive-operand Euclid. *)
let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* ------------------------------------------------------------------ *)
(* Constructors.  All of them establish the canonical form and pick the
   cheapest representation that holds it. *)

(* Demote an already-canonical bigint fraction to the small tier when it
   fits.  [Bigint.to_int] never returns [min_int], so [S] components are
   always strictly above [min_int]. *)
let demote num den =
  match Bigint.to_int num, Bigint.to_int den with
  | Some n, Some d -> S (n, d)
  | (Some _ | None), _ -> B (num, den)

let big num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then S (0, 1)
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then demote num den
    else demote (Bigint.div num g) (Bigint.div den g)
  end

let make num den = big num den

(* Canonicalize a native fraction; only [min_int] components need the
   big path (their absolute value overflows). *)
let small n d =
  if d = 0 then raise Division_by_zero;
  if n = 0 then S (0, 1)
  else if n = min_int || d = min_int then
    big (Bigint.of_int n) (Bigint.of_int d)
  else begin
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    let g = gcd_int d (abs n) in
    if g = 1 then S (n, d) else S (n / g, d / g)
  end

(* A coprime pair with positive denominator, as produced by the
   cross-reduced product: only the [min_int] corner needs rerouting. *)
let small_coprime n d =
  if n = min_int then B (Bigint.of_int n, Bigint.of_int d) else S (n, d)

let of_ints a b = small a b

let of_int n = if n = min_int then B (Bigint.of_int n, Bigint.one) else S (n, 1)

let of_bigint n = demote n Bigint.one

let zero = S (0, 1)
let one = S (1, 1)
let two = S (2, 1)
let half = S (1, 2)

let num = function S (n, _) -> Bigint.of_int n | B (n, _) -> n
let den = function S (_, d) -> Bigint.of_int d | B (_, d) -> d

let to_bigints = function
  | S (n, d) -> (Bigint.of_int n, Bigint.of_int d)
  | B (n, d) -> (n, d)

let to_float = function
  | S (n, d) -> float_of_int n /. float_of_int d
  | B (n, d) -> Bigint.to_float n /. Bigint.to_float d

(* ------------------------------------------------------------------ *)
(* Exact float conversions.  Every finite IEEE double is a dyadic
   rational, so [of_float_exact] is exact; [to_float_down]/[to_float_up]
   are its correctly-rounded directed inverses (the foundation of
   {!Interval.of_rational}'s outward rounding). *)

(* Count of trailing zero bits; [m] nonzero, magnitude below [2^62].
   Two's-complement [land]/[asr] make this sign-agnostic. *)
let tz_int m =
  let rec go m k = if m land 1 = 1 then k else go (m asr 1) (k + 1) in
  go m 0

let of_float_exact f =
  if not (Float.is_finite f) then
    invalid_arg "Rational.of_float_exact: not finite";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* |m| in [0.5, 1): m * 2^53 is an integer of at most 53 bits, so
       the conversion below is exact and fits a native int. *)
    let m53 = int_of_float (Float.ldexp m 53) in
    let e = e - 53 in
    if e >= 0 then of_bigint (Bigint.shift_left (Bigint.of_int m53) e)
    else begin
      let k = Stdlib.min (tz_int m53) (-e) in
      let n = m53 asr k and d = -e - k in
      (* canonical by construction: either d = 0, or n is odd *)
      if d = 0 then of_int n
      else if d <= 61 then S (n, 1 lsl d)
      else demote (Bigint.of_int n) (Bigint.shift_left Bigint.one d)
    end
  end

(* Directed conversions continue after the comparison section ([sign],
   [is_zero]) below. *)

(* ------------------------------------------------------------------ *)
(* Comparisons. *)

let sign = function S (n, _) -> compare n 0 | B (n, _) -> Bigint.sign n

let compare_big a b =
  let an, ad = to_bigints a and bn, bd = to_bigints b in
  if Bigint.equal ad bd then Bigint.compare an bn
  else begin
    let sa = Bigint.sign an and sb = Bigint.sign bn in
    if sa <> sb then Stdlib.compare sa sb
    else Bigint.compare (Bigint.mul an bd) (Bigint.mul bn ad)
  end

let compare a b =
  match a, b with
  | S (an, ad), S (bn, bd) ->
    if ad = bd then Stdlib.compare an bn
    else begin
      let sa = Stdlib.compare an 0 and sb = Stdlib.compare bn 0 in
      if sa <> sb then Stdlib.compare sa sb
      else
        (match mul_checked an bd, mul_checked bn ad with
         | Some x, Some y -> Stdlib.compare x y
         | (Some _ | None), _ -> compare_big a b)
    end
  | (S _ | B _), _ -> compare_big a b

let equal a b =
  match a, b with
  | S (an, ad), S (bn, bd) -> an = bn && ad = bd
  | B (an, ad), B (bn, bd) -> Bigint.equal an bn && Bigint.equal ad bd
  | S _, B _ | B _, S _ -> false

let hash = function
  | S (n, d) -> (n * 65599) lxor d
  | B (n, d) -> (Bigint.hash n * 65599) lxor Bigint.hash d

let is_zero = function S (n, _) -> n = 0 | B _ -> false
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let leq a b = compare a b <= 0
let lt a b = compare a b < 0
let geq a b = compare a b >= 0
let gt a b = compare a b > 0

(* ------------------------------------------------------------------ *)
(* Directed conversions (second half; see [of_float_exact] above). *)

(* The truncated 53-bit mantissa of [|q|]: [Some (m, sticky)] with
   [m = mant * 2^exp2] already assembled as a float (exactly), and
   [sticky] true iff [|q| > m], i.e. the truncation dropped mass.
   [None] when [|q| >= 2^1024] (beyond the finite doubles). *)
let directed_mag q =
  let a = Bigint.abs (num q) and b = den q in
  (* 2^(e-1) <= |q| < 2^(e+1) *)
  let e = Bigint.bit_length a - Bigint.bit_length b in
  let exp2 = Stdlib.max (e - 53) (-1074) in
  let n', d' =
    if exp2 <= 0 then (Bigint.shift_left a (-exp2), b)
    else (a, Bigint.shift_left b exp2)
  in
  let qt, r = Bigint.divmod n' d' in
  let sticky = not (Bigint.is_zero r) in
  (* qt = floor(|q| * 2^-exp2) < 2^54; renormalize to at most 53 bits *)
  let qt = Bigint.to_int_exn qt in
  let qt, exp2, sticky =
    if qt >= 1 lsl 53 then (qt asr 1, exp2 + 1, sticky || qt land 1 = 1)
    else (qt, exp2, sticky)
  in
  if exp2 > 971 then None  (* qt >= 2^52, so |q| >= 2^1024 *)
  else Some (Float.ldexp (float_of_int qt) exp2, sticky)

(* Small fast path: a 53-bit numerator over a power-of-two denominator
   converts exactly (no subnormal range: |n/d| >= 2^-53), so both
   directed roundings coincide.  Covers every fair-coin probability. *)
let exact_small = function
  | S (n, d)
    when d land (d - 1) = 0 && d <= 1 lsl 53 && n >= -(1 lsl 53)
         && n <= 1 lsl 53 ->
    Some (float_of_int n /. float_of_int d)
  | S _ | B _ -> None

let to_float_down q =
  match exact_small q with
  | Some f -> f
  | None ->
    if is_zero q then 0.0
    else if sign q > 0 then
      (match directed_mag q with
       | Some (m, _) -> m
       | None -> max_float)
    else
      (match directed_mag q with
       | Some (m, sticky) -> if sticky then -.Float.succ m else -.m
       | None -> neg_infinity)

let to_float_up q =
  match exact_small q with
  | Some f -> f
  | None ->
    if is_zero q then 0.0
    else if sign q > 0 then
      (match directed_mag q with
       | Some (m, sticky) -> if sticky then Float.succ m else m
       | None -> infinity)
    else
      (match directed_mag q with
       | Some (m, _) -> -.m
       | None -> -.max_float)

(* ------------------------------------------------------------------ *)
(* Arithmetic. *)

let neg = function
  | S (n, d) -> S (-n, d)
  | B (n, d) -> B (Bigint.neg n, d)

let abs = function
  | S (n, d) -> S (Stdlib.abs n, d)
  | B (n, d) -> B (Bigint.abs n, d)

let add_big a b =
  let an, ad = to_bigints a and bn, bd = to_bigints b in
  big
    (Bigint.add (Bigint.mul an bd) (Bigint.mul bn ad))
    (Bigint.mul ad bd)

let add a b =
  match a, b with
  | S (0, _), _ -> b
  | _, S (0, _) -> a
  | S (an, ad), S (bn, bd) ->
    if ad = bd then
      (match add_checked an bn with
       | Some n -> small n ad
       | None -> add_big a b)
    else
      (match mul_checked an bd, mul_checked bn ad, mul_checked ad bd with
       | Some x, Some y, Some d ->
         (match add_checked x y with
          | Some n -> small n d
          | None -> add_big a b)
       | (Some _ | None), _, _ -> add_big a b)
  | (S _ | B _), _ -> add_big a b

let sub a b = add a (neg b)

let mul_big_reduced an ad bn bd =
  big
    (Bigint.mul (Bigint.of_int an) (Bigint.of_int bn))
    (Bigint.mul (Bigint.of_int ad) (Bigint.of_int bd))

let mul a b =
  match a, b with
  | S (0, _), _ | _, S (0, _) -> zero
  | S (an, ad), S (bn, bd) ->
    (* Cross-reduce before multiplying: with gcd(an,ad) = gcd(bn,bd) = 1,
       dividing out gcd(an,bd) and gcd(bn,ad) leaves a coprime result,
       so no gcd of full products is ever computed. *)
    let g1 = gcd_int bd (Stdlib.abs an) in
    let g2 = gcd_int ad (Stdlib.abs bn) in
    let an = an / g1 and bd = bd / g1 in
    let bn = bn / g2 and ad = ad / g2 in
    (match mul_checked an bn, mul_checked ad bd with
     | Some n, Some d -> small_coprime n d
     | (Some _ | None), _ -> mul_big_reduced an ad bn bd)
  | (S _ | B _), _ ->
    let an, ad = to_bigints a and bn, bd = to_bigints b in
    big (Bigint.mul an bn) (Bigint.mul ad bd)

let inv = function
  | S (0, _) -> raise Division_by_zero
  | S (n, d) -> if n > 0 then S (d, n) else S (-d, -n)
  | B (n, d) ->
    if Bigint.sign n < 0 then demote (Bigint.neg d) (Bigint.neg n)
    else demote d n

let div a b = mul a (inv b)

let rec pow_pos x n =
  if n = 1 then x
  else begin
    let h = pow_pos (mul x x) (n / 2) in
    if n land 1 = 1 then mul x h else h
  end

let pow x n =
  if n = 0 then one
  else if n > 0 then pow_pos x n
  else inv (pow_pos x (-n))

let mul_int x n = mul x (of_int n)

let is_probability x = sign x >= 0 && leq x one

let sum xs = List.fold_left add zero xs

(* ------------------------------------------------------------------ *)
(* Printing and parsing. *)

let to_string = function
  | S (n, 1) -> string_of_int n
  | S (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | B (n, d) ->
    if Bigint.equal d Bigint.one then Bigint.to_string n
    else Bigint.to_string n ^ "/" ^ Bigint.to_string d

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let a = Bigint.of_string (String.sub s 0 i) in
    let b = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make a b
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let whole = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if frac = "" then invalid_arg "Rational.of_string: empty fraction";
       let negative = String.length whole > 0 && whole.[0] = '-' in
       let whole_v =
         if whole = "" || whole = "-" || whole = "+" then Bigint.zero
         else Bigint.of_string whole
       in
       let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
       let frac_v = Bigint.of_string frac in
       if Bigint.sign frac_v < 0 then
         invalid_arg "Rational.of_string: malformed decimal";
       let mag =
         Bigint.add (Bigint.mul (Bigint.abs whole_v) scale) frac_v
       in
       let signed = if negative then Bigint.neg mag else mag in
       make signed scale)

let pp fmt x = Format.pp_print_string fmt (to_string x)

(* ------------------------------------------------------------------ *)
(* Wire encoding.

   The canonical rendering doubles as the wire form of certificate
   weights: exact at any magnitude (the Bigint tier prints and parses
   losslessly), and *unique* -- [of_wire] accepts exactly the strings
   [to_wire] emits, so "2/4", "1/-2", "+1/2", "0.5" and other aliases
   of an encoded value are rejected rather than silently normalized.
   Uniqueness is what lets an independent verifier treat certificate
   bytes as authoritative: re-rendering a parsed weight reproduces the
   input bytes or the parse fails. *)

let to_wire = to_string

let of_wire s =
  let plausible =
    (* cheap shape gate so [of_string]'s decimal branch and exotic
       accepted spellings never reach the expensive parse *)
    s <> ""
    && String.for_all
         (fun c -> (c >= '0' && c <= '9') || c = '/' || c = '-')
         s
  in
  if not plausible then
    Error (Printf.sprintf "malformed rational %S" s)
  else
    match of_string s with
    | q when String.equal (to_string q) s -> Ok q
    | _ -> Error (Printf.sprintf "non-canonical rational %S" s)
    | exception _ -> Error (Printf.sprintf "malformed rational %S" s)
