(** Streaming statistics for Monte Carlo experiments.

    Means and variances use Welford's online algorithm; proportion
    estimates come with Wilson score confidence intervals, which behave
    well near 0 and 1 (relevant here because we estimate probabilities
    close to their bounds). *)

(** {1 Running moments} *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Unbiased sample variance; [nan] for fewer than two samples. *)
  val variance : t -> float

  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  (** Normal-approximation confidence interval for the mean at the given
      [z] (default 1.96, i.e. 95%). *)
  val mean_ci : ?z:float -> t -> float * float
end

(** {1 Proportions} *)

module Proportion : sig
  type t

  val create : unit -> t

  (** [of_counts ~trials ~successes] builds a proportion from tallies
      accumulated elsewhere (e.g. per-domain batches).  Raises
      [Invalid_argument] unless [0 <= successes <= trials]. *)
  val of_counts : trials:int -> successes:int -> t

  (** [add p success] records one Bernoulli trial. *)
  val add : t -> bool -> unit

  val trials : t -> int
  val successes : t -> int
  val estimate : t -> float

  (** Wilson score interval at the given [z] (default 1.96). *)
  val wilson_ci : ?z:float -> t -> float * float
end

(** {1 Histograms} *)

module Histogram : sig
  type t

  (** [create ~lo ~hi ~bins] covers [lo, hi) with equal-width bins plus
      underflow/overflow counters.  Raises [Invalid_argument] if
      [bins <= 0] or [hi <= lo]. *)
  val create : lo:float -> hi:float -> bins:int -> t

  val add : t -> float -> unit
  val count : t -> int
  val bin_counts : t -> int array
  val underflow : t -> int
  val overflow : t -> int

  (** [quantile h q] approximates the [q]-quantile (0 <= q <= 1) from the
      binned data by linear interpolation within the selected bin. *)
  val quantile : t -> float -> float

  val pp : Format.formatter -> t -> unit
end
