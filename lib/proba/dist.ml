(* Finite distributions as association lists of (outcome, positive
   rational weight) summing to exactly one.  Construction enforces the
   invariant; everything else relies on it. *)

type 'a t = ('a * Rational.t) list

exception Not_a_distribution of string

let default_equal a b = a = b

(* Merge duplicate outcomes, drop zero weights, check positivity. *)
let merge equal pairs =
  let add acc (x, w) =
    let c = Rational.compare w Rational.zero in
    if c < 0 then
      raise (Not_a_distribution
               (Printf.sprintf "negative weight %s" (Rational.to_string w)))
    else if c = 0 then acc
    else begin
      let rec insert = function
        | [] -> [ (x, w) ]
        | (y, wy) :: rest ->
          if equal x y then (y, Rational.add wy w) :: rest
          else (y, wy) :: insert rest
      in
      insert acc
    end
  in
  List.fold_left add [] pairs

let total pairs = Rational.sum (List.map snd pairs)

let make ?(equal = default_equal) pairs =
  let pairs = merge equal pairs in
  let t = total pairs in
  if not (Rational.equal t Rational.one) then
    raise (Not_a_distribution
             (Printf.sprintf "weights sum to %s, not 1" (Rational.to_string t)));
  pairs

let unsafe_make pairs = pairs

let point x = [ (x, Rational.one) ]

let uniform xs =
  match xs with
  | [] -> raise (Not_a_distribution "uniform over empty list")
  | _ ->
    let w = Rational.of_ints 1 (List.length xs) in
    make (List.map (fun x -> (x, w)) xs)

let bernoulli p x y =
  if not (Rational.is_probability p) then
    raise (Not_a_distribution
             (Printf.sprintf "bernoulli parameter %s" (Rational.to_string p)));
  make [ (x, p); (y, Rational.sub Rational.one p) ]

let coin x y = bernoulli Rational.half x y

let support d = d
let size d = List.length d

let prob d pred =
  Rational.sum (List.filter_map (fun (x, w) -> if pred x then Some w else None) d)

let prob_of ?(equal = default_equal) d x = prob d (equal x)

let is_point = function
  | [ (x, _) ] -> Some x
  | _ -> None

let map ?(equal = default_equal) f d =
  let pairs = merge equal (List.map (fun (x, w) -> (f x, w)) d) in
  pairs

let bind ?(equal = default_equal) d f =
  let pieces =
    List.concat_map
      (fun (x, w) ->
         List.map (fun (y, wy) -> (y, Rational.mul w wy)) (f x))
      d
  in
  merge equal pieces

let product d1 d2 =
  List.concat_map
    (fun (x, wx) -> List.map (fun (y, wy) -> ((x, y), Rational.mul wx wy)) d2)
    d1

let filter_renormalize d pred =
  let kept = List.filter (fun (x, _) -> pred x) d in
  let t = total kept in
  if Rational.is_zero t then None
  else Some (List.map (fun (x, w) -> (x, Rational.div w t)) kept)

let expect d f =
  Rational.sum (List.map (fun (x, w) -> Rational.mul w (f x)) d)

let sample d u =
  let rec go acc = function
    | [] -> invalid_arg "Dist.sample: empty distribution"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
      let acc = acc +. Rational.to_float w in
      if u < acc then x else go acc rest
  in
  go 0.0 d

let pp pp_elt fmt d =
  let pp_pair fmt (x, w) =
    Format.fprintf fmt "%a: %a" pp_elt x Rational.pp w
  in
  Format.fprintf fmt "{%a}" (Format.pp_print_list ~pp_sep:(fun fmt () ->
      Format.fprintf fmt ";@ ") pp_pair) d
