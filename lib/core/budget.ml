type t = {
  max_states : int option;
  wall : float option;
  retries : int;
}

let v ?max_states ?wall ?(retries = 6) () = { max_states; wall; retries }
let unlimited = v ()

let parse_wall s =
  let num text =
    match float_of_string_opt text with
    | Some f when f >= 0.0 -> Ok f
    | Some _ -> Error "wall budget must be nonnegative"
    | None -> Error (Printf.sprintf "cannot parse duration %S" s)
  in
  let scaled suffix factor =
    if String.length s > String.length suffix
    && Filename.check_suffix s suffix then
      Some
        (Result.map
           (fun f -> f *. factor)
           (num (String.sub s 0 (String.length s - String.length suffix))))
    else None
  in
  (* [ms] before [s]: check_suffix "30ms" "s" also holds. *)
  match scaled "ms" 0.001 with
  | Some r -> r
  | None ->
    (match scaled "s" 1.0 with
     | Some r -> r
     | None ->
       (match scaled "m" 60.0 with Some r -> r | None -> num s))

let of_string spec =
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ',' spec)
  in
  if fields = [] then Error "empty budget specification"
  else
    let rec go acc = function
      | [] -> Ok acc
      | field :: rest ->
        (match String.index_opt field ':' with
         | None ->
           Error
             (Printf.sprintf
                "budget field %S is not of the form key:value (expected \
                 states:N, wall:SECONDS or retries:N)"
                field)
         | Some i ->
           let key = String.sub field 0 i in
           let value =
             String.sub field (i + 1) (String.length field - i - 1)
           in
           (match key with
            | "states" ->
              (match int_of_string_opt value with
               | Some n when n > 0 ->
                 go { acc with max_states = Some n } rest
               | Some _ | None ->
                 Error
                   (Printf.sprintf "states budget %S is not a positive int"
                      value))
            | "wall" ->
              (match parse_wall value with
               | Ok w -> go { acc with wall = Some w } rest
               | Error e -> Error e)
            | "retries" ->
              (match int_of_string_opt value with
               | Some n when n >= 0 -> go { acc with retries = n } rest
               | Some _ | None ->
                 Error
                   (Printf.sprintf
                      "retries budget %S is not a nonnegative int" value))
            | other ->
              Error
                (Printf.sprintf
                   "unknown budget dimension %S (expected states, wall or \
                    retries)"
                   other)))
    in
    go unlimited fields

let to_string b =
  let fields =
    List.filter_map Fun.id
      [ Option.map (Printf.sprintf "states:%d") b.max_states;
        Option.map (Printf.sprintf "wall:%gs") b.wall;
        (if b.retries = unlimited.retries then None
         else Some (Printf.sprintf "retries:%d" b.retries)) ]
  in
  match fields with [] -> "unlimited" | _ -> String.concat "," fields

let pp fmt b = Format.pp_print_string fmt (to_string b)

type clock = { b : t; started : float }

let now () = Unix.gettimeofday ()
let start b = { b; started = now () }
let budget c = c.b
let elapsed c = now () -. c.started

let exhausted ?states c =
  let over_states =
    match c.b.max_states, states with
    | Some bound, Some n when n >= bound ->
      Some (Printf.sprintf "state budget hit (%d states interned)" n)
    | _ -> None
  in
  match over_states with
  | Some _ as r -> r
  | None ->
    (match c.b.wall with
     | Some w when elapsed c >= w ->
       Some (Printf.sprintf "wall budget hit (%.1fs elapsed)" (elapsed c))
     | _ -> None)

let remaining c =
  Option.map (fun w -> w -. elapsed c) c.b.wall

exception Deadline_exceeded of string

(* The ambient deadline is per-domain state: pool workers spawned before
   [with_deadline] ran never see it, which is why [deadline_stop] hands
   the clock to the pool as a [?stop] probe instead. *)
let ambient : clock option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_deadline () = !(Domain.DLS.get ambient)
let set_deadline c = Domain.DLS.get ambient := c

let with_deadline c f =
  let cell = Domain.DLS.get ambient in
  let saved = !cell in
  cell := Some c;
  Fun.protect ~finally:(fun () -> cell := saved) f

let expired_reason c =
  match c.b.wall with
  | Some w when elapsed c >= w ->
    Some
      (Printf.sprintf "wall deadline of %.0f ms exceeded (%.0f ms elapsed)"
         (w *. 1000.) (elapsed c *. 1000.))
  | _ -> None

let poll () =
  match current_deadline () with
  | None -> ()
  | Some c ->
    (match expired_reason c with
     | Some reason -> raise (Deadline_exceeded reason)
     | None -> ())

let deadline_stop () =
  match current_deadline () with
  | Some c when c.b.wall <> None -> Some (fun () -> expired_reason c)
  | Some _ | None -> None
