(** Time-bound statements [U -t->_p U'] and the paper's proof rules
    (Section 3).

    A claim asserts: starting from any state of [pre], under every
    adversary of [schema], with probability at least [prob] a state of
    [post] is reached within time [time] (Definition 3.1).

    Values of this type are abstract; they can only be produced by
    - {!checked}: a leaf discharged by an external decision procedure
      (the MDP engine in [lib/mdp]) which records its evidence,
    - {!axiom}: an explicitly flagged assumption,
    - the proof rules below, each the formal counterpart of a result in
      the paper.

    Consequently every claim value carries a complete derivation, and
    {!pp_derivation} renders it as a proof tree.  Soundness rests on the
    leaf evidence plus the paper's theorems; the rule implementations
    only combine numbers the way the theorems allow. *)

type 's t

exception Rule_violation of string

(** {1 Accessors} *)

val pre : 's t -> 's Pred.t
val post : 's t -> 's Pred.t

(** Time bound [t] (in the time units of the underlying automaton). *)
val time : 's t -> Proba.Rational.t

(** Probability lower bound [p]. *)
val prob : 's t -> Proba.Rational.t

val schema : 's t -> Schema.t

(** [true] when the derivation contains no {!axiom} leaf and no assumed
    inclusion. *)
val fully_verified : 's t -> bool

(** {1 Leaves} *)

(** [checked ~evidence ~schema ~pre ~post ~time ~prob ()] records a
    statement established by an external checker.  Raises
    [Rule_violation] unless [0 <= prob <= 1] and [time >= 0]. *)
val checked :
  evidence:string -> schema:Schema.t -> pre:'s Pred.t -> post:'s Pred.t ->
  time:Proba.Rational.t -> prob:Proba.Rational.t -> unit -> 's t

(** [axiom ~reason ...] records an assumed statement (same checks). *)
val axiom :
  reason:string -> schema:Schema.t -> pre:'s Pred.t -> post:'s Pred.t ->
  time:Proba.Rational.t -> prob:Proba.Rational.t -> unit -> 's t

(** {1 Proof rules} *)

(** Theorem 3.4 (composability): from [U -t1->_p1 U'] and
    [U' -t2->_p2 U''] derive [U -(t1+t2)->_(p1*p2) U''].
    Raises [Rule_violation] unless the schemas agree and are execution
    closed, and [post c1] is the same named predicate as [pre c2]. *)
val compose : 's t -> 's t -> 's t

(** [compose_all [c1; ...; cn]] folds {!compose} left to right. *)
val compose_all : 's t list -> 's t

(** Proposition 3.2: from [U -t->_p U'] derive
    [U ∪ U'' -t->_p U' ∪ U'']. *)
val union : 's t -> 's Pred.t -> 's t

(** Weaken the probability bound: [p' <= p]. *)
val weaken_prob : 's t -> Proba.Rational.t -> 's t

(** Relax the time bound: [t' >= t].

    Note: this is sound for the reachability events of Definition 3.1,
    which are monotone in [t]. *)
val relax_time : 's t -> Proba.Rational.t -> 's t

(** Restrict the pre-set along a certified inclusion [U0 ⊆ pre c]. *)
val strengthen_pre : 's t -> 's Inclusion.t -> 's t

(** Enlarge the post-set along a certified inclusion [post c ⊆ U1]. *)
val weaken_post : 's t -> 's Inclusion.t -> 's t

(** [trivial ~schema incl] is [U -0->_1 U'] for a certified [U ⊆ U']
    (starting inside the target counts as immediate arrival). *)
val trivial : schema:Schema.t -> 's Inclusion.t -> 's t

(** {1 Derivation introspection}

    A read-only view of the proof tree, one node at a time.  External
    analyses (notably the model linter in [lib/analysis]) use it to
    re-check rule premises defensively -- e.g. that every
    {!compose} node in a derivation really sits under an
    execution-closed schema -- and to audit the predicates a derivation
    mentions against an explored state space. *)

type 's rule =
  | Checked_leaf of string  (** evidence recorded by {!checked} *)
  | Axiom_leaf of string  (** reason recorded by {!axiom} *)
  | Trivial_leaf of 's Inclusion.t
  | Composed of 's t * 's t  (** Theorem 3.4 *)
  | Unioned of 's t * 's Pred.t  (** Proposition 3.2 *)
  | Prob_weakened of 's t
  | Time_relaxed of 's t
  | Pre_strengthened of 's t * 's Inclusion.t
  | Post_weakened of 's t * 's Inclusion.t

(** The root rule of the derivation. *)
val rule : 's t -> 's rule

(** Immediate sub-derivations of the root rule. *)
val subclaims : 's t -> 's t list

(** [iter_derivation f c] applies [f] to every node of the derivation,
    root first. *)
val iter_derivation : ('s t -> unit) -> 's t -> unit

(** [fold f c] reduces the whole derivation bottom-up: [f] is applied
    to each node together with the results of its sub-derivations (in
    {!subclaims} order).  Unlike {!iter_derivation}, which revisits
    shared sub-derivations, [fold] memoizes on physical identity and
    visits each distinct node exactly once -- the traversal is linear
    in the derivation {e DAG}.  Together with {!rule} this is a total
    serializer: every constructor of the proof DSL is reachable, which
    is what the certificate emitter ([lib/cert]) is built on. *)
val fold : ('s t -> 'a list -> 'a) -> 's t -> 'a

(** {1 Printing} *)

(** One-line rendering ["U --t-->_p U'  [schema]"]. *)
val pp : Format.formatter -> 's t -> unit

(** Full proof tree with leaf evidence. *)
val pp_derivation : Format.formatter -> 's t -> unit
