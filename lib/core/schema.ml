type t = { name : string; execution_closed : bool }

let make ~execution_closed name = { name; execution_closed }

let name s = s.name
let execution_closed s = s.execution_closed
let same a b = String.equal a.name b.name

let all = make ~execution_closed:true "Advs"
let unit_time = make ~execution_closed:true "Unit-Time"

let with_faults ~desc base =
  make ~execution_closed:base.execution_closed
    (Printf.sprintf "%s+faults(%s)" base.name desc)

let pp fmt s = Format.pp_print_string fmt s.name
