module Q = Proba.Rational

type 's t = {
  pre : 's Pred.t;
  post : 's Pred.t;
  time : Q.t;
  prob : Q.t;
  schema : Schema.t;
  derivation : 's derivation;
}

and 's derivation =
  | Checked of string
  | Axiom of string
  | Trivial of 's Inclusion.t
  | Compose of 's t * 's t
  | Union of 's t * 's Pred.t
  | Weaken_prob of 's t
  | Relax_time of 's t
  | Strengthen_pre of 's t * 's Inclusion.t
  | Weaken_post of 's t * 's Inclusion.t

exception Rule_violation of string

let fail fmt = Printf.ksprintf (fun s -> raise (Rule_violation s)) fmt

let pre c = c.pre
let post c = c.post
let time c = c.time
let prob c = c.prob
let schema c = c.schema

let rec fully_verified c =
  match c.derivation with
  | Checked _ -> true
  | Axiom _ -> false
  | Trivial incl -> not (Inclusion.is_axiom incl)
  | Compose (a, b) -> fully_verified a && fully_verified b
  | Union (a, _) | Weaken_prob a | Relax_time a -> fully_verified a
  | Strengthen_pre (a, incl) | Weaken_post (a, incl) ->
    fully_verified a && not (Inclusion.is_axiom incl)

let validate_bounds ~time ~prob =
  if not (Q.is_probability prob) then
    fail "probability bound %s outside [0, 1]" (Q.to_string prob);
  if Q.sign time < 0 then fail "negative time bound %s" (Q.to_string time)

let checked ~evidence ~schema ~pre ~post ~time ~prob () =
  validate_bounds ~time ~prob;
  { pre; post; time; prob; schema; derivation = Checked evidence }

let axiom ~reason ~schema ~pre ~post ~time ~prob () =
  validate_bounds ~time ~prob;
  { pre; post; time; prob; schema; derivation = Axiom reason }

let compose c1 c2 =
  if not (Schema.same c1.schema c2.schema) then
    fail "compose: schemas differ (%s vs %s)" (Schema.name c1.schema)
      (Schema.name c2.schema);
  if not (Schema.execution_closed c1.schema) then
    fail "compose: schema %s is not execution closed (Theorem 3.4 premise)"
      (Schema.name c1.schema);
  if not (Pred.same c1.post c2.pre) then
    fail "compose: post-set %s of the first claim is not the pre-set %s of \
          the second" (Pred.name c1.post) (Pred.name c2.pre);
  { pre = c1.pre; post = c2.post;
    time = Q.add c1.time c2.time;
    prob = Q.mul c1.prob c2.prob;
    schema = c1.schema;
    derivation = Compose (c1, c2) }

let compose_all = function
  | [] -> fail "compose_all: empty list"
  | c :: cs -> List.fold_left compose c cs

let union c u'' =
  { c with
    pre = Pred.union c.pre u'';
    post = Pred.union c.post u'';
    derivation = Union (c, u'') }

let weaken_prob c p =
  if not (Q.is_probability p) then
    fail "weaken_prob: %s outside [0, 1]" (Q.to_string p);
  if Q.gt p c.prob then
    fail "weaken_prob: %s exceeds the established bound %s" (Q.to_string p)
      (Q.to_string c.prob);
  { c with prob = p; derivation = Weaken_prob c }

let relax_time c t =
  if Q.lt t c.time then
    fail "relax_time: %s is below the established bound %s" (Q.to_string t)
      (Q.to_string c.time);
  { c with time = t; derivation = Relax_time c }

let strengthen_pre c incl =
  if not (Pred.same (Inclusion.sup incl) c.pre) then
    fail "strengthen_pre: inclusion targets %s, claim pre-set is %s"
      (Pred.name (Inclusion.sup incl)) (Pred.name c.pre);
  { c with pre = Inclusion.sub incl;
           derivation = Strengthen_pre (c, incl) }

let weaken_post c incl =
  if not (Pred.same (Inclusion.sub incl) c.post) then
    fail "weaken_post: inclusion starts at %s, claim post-set is %s"
      (Pred.name (Inclusion.sub incl)) (Pred.name c.post);
  { c with post = Inclusion.sup incl;
           derivation = Weaken_post (c, incl) }

let trivial ~schema incl =
  { pre = Inclusion.sub incl; post = Inclusion.sup incl;
    time = Q.zero; prob = Q.one; schema;
    derivation = Trivial incl }

type 's rule =
  | Checked_leaf of string
  | Axiom_leaf of string
  | Trivial_leaf of 's Inclusion.t
  | Composed of 's t * 's t
  | Unioned of 's t * 's Pred.t
  | Prob_weakened of 's t
  | Time_relaxed of 's t
  | Pre_strengthened of 's t * 's Inclusion.t
  | Post_weakened of 's t * 's Inclusion.t

let rule c =
  match c.derivation with
  | Checked evidence -> Checked_leaf evidence
  | Axiom reason -> Axiom_leaf reason
  | Trivial incl -> Trivial_leaf incl
  | Compose (a, b) -> Composed (a, b)
  | Union (a, u) -> Unioned (a, u)
  | Weaken_prob a -> Prob_weakened a
  | Relax_time a -> Time_relaxed a
  | Strengthen_pre (a, incl) -> Pre_strengthened (a, incl)
  | Weaken_post (a, incl) -> Post_weakened (a, incl)

let subclaims c =
  match c.derivation with
  | Checked _ | Axiom _ | Trivial _ -> []
  | Compose (a, b) -> [ a; b ]
  | Union (a, _) | Weaken_prob a | Relax_time a
  | Strengthen_pre (a, _) | Weaken_post (a, _) -> [ a ]

let rec iter_derivation f c =
  f c;
  List.iter (iter_derivation f) (subclaims c)

(* Memoized on physical identity: a sub-derivation shared by several
   rule applications is folded once and its result reused, so the
   traversal is linear in the derivation DAG even when the unfolded
   proof tree is exponential.  An assq list suffices -- derivations
   are built by hand and have tens of nodes, not thousands. *)
let fold f c =
  let memo = ref [] in
  let rec go c =
    match List.assq_opt c !memo with
    | Some r -> r
    | None ->
      let r = f c (List.map go (subclaims c)) in
      memo := (c, r) :: !memo;
      r
  in
  go c

let pp fmt c =
  Format.fprintf fmt "@[%s --%s-->_%s %s  [%s]@]" (Pred.name c.pre)
    (Q.to_string c.time) (Q.to_string c.prob) (Pred.name c.post)
    (Schema.name c.schema)

let rec pp_derivation fmt c =
  let rule name children pp_extra =
    Format.fprintf fmt "@[<v 2>%a@,<= %s%t" pp c name pp_extra;
    List.iter (fun child -> Format.fprintf fmt "@,%a" pp_derivation child)
      children;
    Format.fprintf fmt "@]"
  in
  let nothing _ = () in
  match c.derivation with
  | Checked evidence ->
    Format.fprintf fmt "@[%a@ [checked: %s]@]" pp c evidence
  | Axiom reason -> Format.fprintf fmt "@[%a@ [AXIOM: %s]@]" pp c reason
  | Trivial incl ->
    Format.fprintf fmt "@[%a@ [trivial: %a]@]" pp c Inclusion.pp incl
  | Compose (a, b) -> rule "Theorem 3.4 (compose)" [ a; b ] nothing
  | Union (a, u) ->
    rule "Proposition 3.2 (union)" [ a ] (fun fmt ->
        Format.fprintf fmt " with %s" (Pred.name u))
  | Weaken_prob a -> rule "weaken probability" [ a ] nothing
  | Relax_time a -> rule "relax time" [ a ] nothing
  | Strengthen_pre (a, incl) ->
    rule "strengthen pre" [ a ] (fun fmt ->
        Format.fprintf fmt " via %a" Inclusion.pp incl)
  | Weaken_post (a, incl) ->
    rule "weaken post" [ a ] (fun fmt ->
        Format.fprintf fmt " via %a" Inclusion.pp incl)
