(** Resource budgets for the verification engines.

    The exact engines are only as useful as their worst failure mode: an
    exploration that dies with an exception after minutes of work helps
    nobody.  A budget bounds what an engine may consume -- interned
    states, wall-clock seconds -- and a {!clock} tracks consumption so
    that several phases (exploration, then Monte Carlo fallback) can
    share one allowance.  Engines never raise on exhaustion; they return
    partial work labelled with {!exhausted}'s reason.

    The retry fields drive the Monte Carlo backoff policy: when an
    estimate is requested under a wall budget, trials run in batches
    that grow geometrically ([retries] rounds, doubling each time) until
    the clock runs out, so short budgets still produce an interval and
    long budgets tighten it. *)

type t = {
  max_states : int option;  (** interned-state bound for exploration *)
  wall : float option;  (** wall-clock allowance, in seconds *)
  retries : int;  (** Monte Carlo batch rounds (doubling backoff) *)
}

(** No bounds at all; [retries] = 6. *)
val unlimited : t

val v : ?max_states:int -> ?wall:float -> ?retries:int -> unit -> t

(** [of_string spec] parses a comma-separated budget such as
    ["states:100000,wall:30s,retries:4"].  [wall] accepts a plain
    number of seconds or the suffixes [ms], [s], [m]. *)
val of_string : string -> (t, string) result

(** Parse one duration ([50ms], [30s], [2m], or plain seconds) to
    seconds; the wall dimension of {!of_string}, exposed for flags like
    [--deadline] that take a bare duration. *)
val parse_wall : string -> (float, string) result

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Consumption tracking} *)

(** A started budget: remembers when measuring began. *)
type clock

val start : t -> clock
val budget : clock -> t

(** Seconds since {!start}. *)
val elapsed : clock -> float

(** [None] while within bounds; otherwise a human-readable reason
    naming the dimension that ran out ([states] is the current
    interned-state count of the consumer). *)
val exhausted : ?states:int -> clock -> string option

(** Seconds left on the wall allowance, or [None] if the budget has no
    wall dimension.  Negative once the allowance is spent. *)
val remaining : clock -> float option

(** {1 Ambient deadlines}

    A budget clock tracks consumption cooperatively: code that holds
    the clock asks {!exhausted}.  A {e deadline} is the adversarial
    variant: the caller (the serving layer, or [--deadline] on the CLI)
    arms a per-domain ambient clock and every engine hot loop calls
    {!poll}, which raises {!Deadline_exceeded} the moment the wall
    allowance is spent -- cancellation reaches mid-sweep, not just
    between phases.  [poll] is a few loads when no deadline is armed,
    so it is safe in the innermost loops.

    The ambient clock is domain-local.  Worker domains of a
    {!Parallel}[.Pool] do {e not} inherit it; pass {!deadline_stop}
    (evaluated on the calling domain) as the pool's [?stop] probe
    instead, and translate the pool's [Cancelled] back into
    {!Deadline_exceeded} at the call site. *)

exception Deadline_exceeded of string

(** [with_deadline c f] runs [f ()] with the ambient deadline set to
    [c], restoring the previous deadline (even on exceptions).  Nesting
    is allowed; the innermost deadline wins for the dynamic extent. *)
val with_deadline : clock -> (unit -> 'a) -> 'a

(** Low-level variants of {!with_deadline} for non-nested lifetimes
    (e.g. one server request handled entirely on one worker domain). *)
val set_deadline : clock option -> unit

val current_deadline : unit -> clock option

(** Raises {!Deadline_exceeded} iff the ambient deadline's wall
    allowance is spent.  No-op (and near-free) otherwise. *)
val poll : unit -> unit

(** A [?stop] probe for {!Parallel}[.Pool] capturing the ambient
    deadline of the {e calling} domain; [None] when no deadline with a
    wall allowance is armed. *)
val deadline_stop : unit -> (unit -> string option) option
