(** Resource budgets for the verification engines.

    The exact engines are only as useful as their worst failure mode: an
    exploration that dies with an exception after minutes of work helps
    nobody.  A budget bounds what an engine may consume -- interned
    states, wall-clock seconds -- and a {!clock} tracks consumption so
    that several phases (exploration, then Monte Carlo fallback) can
    share one allowance.  Engines never raise on exhaustion; they return
    partial work labelled with {!exhausted}'s reason.

    The retry fields drive the Monte Carlo backoff policy: when an
    estimate is requested under a wall budget, trials run in batches
    that grow geometrically ([retries] rounds, doubling each time) until
    the clock runs out, so short budgets still produce an interval and
    long budgets tighten it. *)

type t = {
  max_states : int option;  (** interned-state bound for exploration *)
  wall : float option;  (** wall-clock allowance, in seconds *)
  retries : int;  (** Monte Carlo batch rounds (doubling backoff) *)
}

(** No bounds at all; [retries] = 6. *)
val unlimited : t

val v : ?max_states:int -> ?wall:float -> ?retries:int -> unit -> t

(** [of_string spec] parses a comma-separated budget such as
    ["states:100000,wall:30s,retries:4"].  [wall] accepts a plain
    number of seconds or the suffixes [ms], [s], [m]. *)
val of_string : string -> (t, string) result

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Consumption tracking} *)

(** A started budget: remembers when measuring began. *)
type clock

val start : t -> clock
val budget : clock -> t

(** Seconds since {!start}. *)
val elapsed : clock -> float

(** [None] while within bounds; otherwise a human-readable reason
    naming the dimension that ran out ([states] is the current
    interned-state count of the consumer). *)
val exhausted : ?states:int -> clock -> string option
