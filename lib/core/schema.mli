(** Adversary-schema metadata for the proof rules.

    A schema value names a set of adversaries (Definition 2.6) and
    records whether it is {e execution closed} (Definition 3.3): for
    every adversary [A] in the schema and fragment [alpha], some [A'] in
    the schema satisfies [A'(alpha') = A(alpha ^ alpha')].  Execution
    closure is the premise of the composability theorem (Theorem 3.4);
    {!Claim.compose} refuses to fire without it.

    Whether a given schema really is execution closed is a meta-level
    fact (the paper argues it informally for [Unit-Time]); here it is an
    attribute set by whoever defines the schema, and recorded in proof
    trees. *)

type t

(** [make ~execution_closed name] declares a schema. *)
val make : execution_closed:bool -> string -> t

val name : t -> string
val execution_closed : t -> bool

(** Schemas are identified by name. *)
val same : t -> t -> bool

(** The schema of all adversaries (execution closed: the shifted
    adversary is again an adversary). *)
val all : t

(** The [Unit-Time] schema of Section 6.2: time grows without bound and
    every process with an enabled non-user action takes a step within
    time 1.  Execution closed, as argued in the paper. *)
val unit_time : t

(** [with_faults ~desc base] is the schema of fault-injecting
    adversaries over [base]: adversaries of the fault-wrapped automaton
    whose projections to surviving steps are adversaries of [base], and
    whose injections respect the fault budget of the wrapped state
    ([desc] records that budget, e.g. ["crash:1,loss:0"]).

    Execution closure is inherited from [base]: the remaining fault
    budget is part of the wrapped state, so shifting an adversary past a
    fragment leaves a fault-injecting adversary for the suffix started
    at the fragment's last state -- with exactly the budget that state
    still carries.  Hence Theorem 3.4 composition applies to claims
    checked on the wrapped automaton, just as for [base]. *)
val with_faults : desc:string -> t -> t

val pp : Format.formatter -> t -> unit
