type url = { host : string; port : int; target : string }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.lowercase_ascii (String.sub s 0 (String.length prefix)) = prefix

let parse_url s =
  let s = String.trim s in
  if starts_with ~prefix:"https://" s then
    Error "https URLs are not supported"
  else
    let rest =
      if starts_with ~prefix:"http://" s then
        String.sub s 7 (String.length s - 7)
      else s
    in
    let hostport, target =
      match String.index_opt rest '/' with
      | None -> (rest, "/")
      | Some i ->
        (String.sub rest 0 i, String.sub rest i (String.length rest - i))
    in
    let host, port =
      match String.index_opt hostport ':' with
      | None -> (hostport, Some 80)
      | Some i ->
        ( String.sub hostport 0 i,
          int_of_string_opt
            (String.sub hostport (i + 1) (String.length hostport - i - 1)) )
    in
    match port with
    | _ when host = "" -> Error (Printf.sprintf "no host in URL %S" s)
    | None -> Error (Printf.sprintf "bad port in URL %S" s)
    | Some port -> Ok { host; port; target }

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  (try
     while !off < len do
       let n = Unix.write_substring fd s !off (len - !off) in
       if n = 0 then off := len else off := !off + n
     done
   with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* A single keep-alive connection. *)

module Conn = struct
  type t = {
    url : url;
    mutable fd : Unix.file_descr option;
    mutable rd : Http.reader option;
  }

  let create url = { url; fd = None; rd = None }

  let resolve host =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

  let close t =
    (match t.fd with
     | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
     | None -> ());
    t.fd <- None;
    t.rd <- None

  let ensure t =
    match (t.fd, t.rd) with
    | Some fd, Some rd -> (fd, rd)
    | _ ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (resolve t.url.host, t.url.port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let read buf off len =
        try Unix.read fd buf off len with Unix.Unix_error _ -> 0
      in
      let rd = Http.reader read in
      t.fd <- Some fd;
      t.rd <- Some rd;
      (fd, rd)

  let render t ~meth ~body target =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
    Buffer.add_string buf
      (Printf.sprintf "Host: %s:%d\r\n" t.url.host t.url.port);
    if body <> "" || meth <> "GET" then begin
      Buffer.add_string buf "Content-Type: application/json\r\n";
      Buffer.add_string buf
        (Printf.sprintf "Content-Length: %d\r\n" (String.length body))
    end;
    Buffer.add_string buf "Connection: keep-alive\r\n\r\n";
    Buffer.add_string buf body;
    Buffer.contents buf

  let once t ~meth ~body target =
    match ensure t with
    | exception e -> Error (Printexc.to_string e)
    | fd, rd ->
      write_all fd (render t ~meth ~body target);
      (match Http.read_response rd with
       | `Response r ->
         (match Http.resp_header r "connection" with
          | Some "close" -> close t
          | Some _ | None -> ());
         Ok r
       | `Eof ->
         close t;
         Error "server closed the connection"
       | `Error e ->
         close t;
         Error (Printf.sprintf "bad response: %s" e.Http.reason))

  let request t ?(meth = "GET") ?(body = "") target =
    let reused = t.fd <> None in
    match once t ~meth ~body target with
    | Ok _ as ok -> ok
    | Error _ when reused ->
      (* The server recycled the kept-alive connection under us (its
         per-connection request bound); one fresh retry is the
         keep-alive contract, not error hiding. *)
      close t;
      once t ~meth ~body target
    | Error _ as e -> e
end

(* ------------------------------------------------------------------ *)
(* The generator. *)

type result = {
  clients : int;
  requests : int;
  ok : int;
  rejected : int;
  retries : int;
  http_errors : int;
  protocol_errors : int;
  duration_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

(* The advisory backoff from a 503: the server's Retry-After seconds
   when present and parseable, else an exponential base.  Jitter
   desynchronizes the retrying clients (each worker's deterministic
   generator), and a hard cap keeps a stuck server from stretching the
   run unboundedly. *)
let backoff_delay rng ~attempt retry_after =
  let base =
    match retry_after with
    | Some s -> s
    | None -> 0.05 *. Float.of_int (1 lsl Stdlib.min attempt 6)
  in
  let jitter = 0.5 +. (0.5 *. Proba.Rng.float rng) in
  Stdlib.min 5.0 (base *. jitter)

let retry_after_s (r : Http.response_msg) =
  match Http.resp_header r "retry-after" with
  | None -> None
  | Some v -> Option.map float_of_int (int_of_string_opt (String.trim v))

(* The /batch body for the mixed workload: [b] copies of the single
   query, each as an object carrying the target's path as its
   ["endpoint"] and its query-string pairs as fields.  Built once per
   run; the POST body is byte-identical across clients. *)
let batch_body url b =
  let module J = Analysis.Json in
  let path, qs =
    match String.index_opt url.target '?' with
    | None -> (url.target, "")
    | Some i ->
      ( String.sub url.target 0 i,
        String.sub url.target (i + 1) (String.length url.target - i - 1) )
  in
  let item =
    J.Obj
      (("endpoint", J.Str path)
       :: List.map (fun (k, v) -> (k, J.Str v)) (Http.parse_query qs))
  in
  J.to_string (J.Obj [ ("queries", J.Arr (List.init b (fun _ -> item))) ])

let run ?(max_retries = 0) ?batch url ~clients ~requests =
  if clients < 1 then invalid_arg "Load.run: clients must be positive";
  if requests < 1 then invalid_arg "Load.run: requests must be positive";
  if max_retries < 0 then
    invalid_arg "Load.run: max_retries must be nonnegative";
  (match batch with
   | Some b when b < 1 -> invalid_arg "Load.run: batch must be positive"
   | Some _ | None -> ());
  let batched = Option.map (batch_body url) batch in
  let share idx =
    (requests / clients) + if idx < requests mod clients then 1 else 0
  in
  let worker idx () =
    let conn = Conn.create url in
    let rng = Proba.Rng.create ~seed:(0x10ad + idx) in
    let ok = ref 0 and rejected = ref 0 and retries = ref 0 in
    let http = ref 0 and proto = ref 0 in
    let lats = ref [] in
    for r = 1 to share idx do
      (* One logical request: its latency is the whole retry chain, so
         backpressure shows up in the percentiles rather than
         disappearing into averaged-out quick 503s.  In batch mode
         every other logical request is a POST /batch of the same
         query, exercising both paths in one run. *)
      let meth, body, target =
        match batched with
        | Some body when r mod 2 = 0 -> ("POST", body, "/batch")
        | Some _ | None -> ("GET", "", url.target)
      in
      let t0 = Unix.gettimeofday () in
      let rec attempt k =
        match Conn.request conn ~meth ~body target with
        | Ok r when
            r.Http.status = 503 && k < max_retries ->
          incr retries;
          Unix.sleepf (backoff_delay rng ~attempt:k (retry_after_s r));
          attempt (k + 1)
        | Ok r ->
          lats := ((Unix.gettimeofday () -. t0) *. 1000.0) :: !lats;
          if r.Http.status >= 200 && r.Http.status < 300 then incr ok
          else if r.Http.status = 503 then incr rejected
          else incr http
        | Error _ -> incr proto
      in
      attempt 0
    done;
    Conn.close conn;
    (!ok, !rejected, !retries, !http, !proto, !lats)
  in
  let t0 = Unix.gettimeofday () in
  let spawned = List.init clients (fun i -> Domain.spawn (worker i)) in
  let parts = List.map Domain.join spawned in
  let duration_s = Unix.gettimeofday () -. t0 in
  let ok = List.fold_left (fun a (x, _, _, _, _, _) -> a + x) 0 parts in
  let rejected =
    List.fold_left (fun a (_, x, _, _, _, _) -> a + x) 0 parts
  in
  let retries =
    List.fold_left (fun a (_, _, x, _, _, _) -> a + x) 0 parts
  in
  let http_errors =
    List.fold_left (fun a (_, _, _, x, _, _) -> a + x) 0 parts
  in
  let protocol_errors =
    List.fold_left (fun a (_, _, _, _, x, _) -> a + x) 0 parts
  in
  let lats =
    Array.of_list (List.concat_map (fun (_, _, _, _, _, l) -> l) parts)
  in
  Array.sort compare lats;
  { clients;
    requests;
    ok;
    rejected;
    retries;
    http_errors;
    protocol_errors;
    duration_s;
    throughput_rps =
      (if duration_s > 0.0 then float_of_int requests /. duration_s else 0.0);
    p50_ms = percentile lats 0.50;
    p95_ms = percentile lats 0.95;
    p99_ms = percentile lats 0.99;
    max_ms = (if Array.length lats = 0 then 0.0 else lats.(Array.length lats - 1))
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>clients          %8d@,requests         %8d@,ok (2xx)         %8d@,\
     rejected (503)   %8d@,retries (503)    %8d@,\
     http errors      %8d@,protocol errors  %8d@,\
     duration         %10.3f s@,throughput       %8.1f req/s@,\
     latency p50      %10.3f ms@,latency p95      %10.3f ms@,\
     latency p99      %10.3f ms@,latency max      %10.3f ms@]"
    r.clients r.requests r.ok r.rejected r.retries r.http_errors
    r.protocol_errors r.duration_s r.throughput_rps r.p50_ms r.p95_ms
    r.p99_ms r.max_ms
