(** The dispatcher: protocol queries in, JSON replies out.

    [handle] routes every query through the {!Models} registry into the
    arena-backed engines, under a per-request state ceiling (the
    server's [--max-states] clamp, tightened further by the client's
    own [max_states]), so a hostile query is answered with a structured
    ["verdict": "exhausted"] body instead of wedging a worker.
    Finished results of the cacheable endpoints ([/check], [/simulate],
    [/lint]) are kept in an LRU {!Cache} keyed by the canonical
    request; repeat queries are answered without touching the registry
    at all ([X-Prtb-Cache: hit], and the [/stats] compile counters stay
    put -- what CI asserts).

    {!check_json} is deliberately exposed: [prtb check --format json]
    prints exactly this value, which is what makes served bodies
    bit-identical to the direct CLI path (the end-to-end test in
    test/test_server.ml compares the two byte for byte). *)

type config = {
  max_states : int;  (** hard per-request exploration ceiling *)
  cache_bytes : int option;  (** result-cache capacity *)
  max_trials : int;  (** per-request Monte Carlo trial clamp *)
  deadline_ms : int option;
      (** server-wide default wall deadline per request; the effective
          deadline is the tighter of this and the client's
          [deadline_ms] *)
  degraded_after : float;
      (** /health reports ["degraded"] once some in-flight compute
          request is older than this many seconds *)
}

(** 2M states, 64 MiB results, 200k trials, no default deadline,
    degraded after 5 s. *)
val default_config : config

(** The ceiling {!check_json} applies when none is given: the
    [default_config] one. *)
val default_max_states : int

type t

val create : config -> t

(** The exact-check result for a query, as served and as printed by
    [prtb check --format json].  Catches budget exhaustion
    ([Mdp.Explore.Too_many_states]) and reports it as a
    ["verdict": "exhausted"] object.  When the query carries a
    [deadline_ms], the whole computation runs under an ambient
    {!Core.Budget} deadline; on expiry the body degrades to
    ["verdict": "deadline-exceeded"] / code [SRV122] with a one-trial
    Monte Carlo estimate -- a deterministic function of the query (no
    timing-dependent fields), so it can be asserted byte for byte. *)
val check_json : ?max_states:int -> Protocol.check_query -> Analysis.Json.t

(** The certificate body for a query, as served on [/cert] and as
    printed by [prtb check --emit-cert]: the composed claim's whole
    derivation reified as a {!Cert.Node.t} DAG whose leaves carry the
    {!Mdp.Arena.fingerprint} and full configuration.  Failure modes
    mirror {!check_json} (["exhausted"]/SRV120,
    ["not-certified"]/SRV121, ["deadline-exceeded"]/SRV122) plus
    ["uncertified"]/SRV123 when the model's composed proof itself
    fails; those bodies are headers, not certificates, and
    [verify-cert] rejects them. *)
val cert_json : ?max_states:int -> Protocol.check_query -> Analysis.Json.t

type reply = {
  status : int;
  headers : (string * string) list;
  body : string;
}

(** Dispatch one query.  Never raises: internal failures come back as a
    500 reply with code SRV300. *)
val handle : t -> Protocol.query -> reply

(** Parse ({!Protocol.of_request}) and {!handle} in one step; parse
    rejections are counted in the request/error counters too. *)
val respond : t -> Http.request -> reply

(** Count a connection rejected by the accept loop's backpressure (the
    daemon calls this; it shows up under ["server"]["overload_rejected"]
    in [/stats]). *)
val note_overload : t -> unit

(** Count an HTTP-layer protocol failure answered below the dispatcher
    (the daemon's SRV110 branch); ["server"]["protocol_errors"] in
    [/stats].  Keeps the chaos harness's ledger balanced: every accept
    is answered, rejected, or counted here. *)
val note_protocol_error : t -> unit

(** Flip the /health state to ["draining"] (the daemon sets it when a
    graceful shutdown begins). *)
val set_draining : t -> bool -> unit

(** Whether [handle] would answer this query from the result cache. *)
val cached : t -> Protocol.query -> bool
