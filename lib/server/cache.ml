type 'v entry = { value : 'v; cost : int; mutable last : int }

type 'v t = {
  mu : Mutex.t;
  table : (string, 'v entry) Hashtbl.t;
  cost : 'v -> int;
  capacity : int option;
  mutable clock : int;
  mutable total : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

let create ?capacity ~cost () =
  { mu = Mutex.create (); table = Hashtbl.create 64; cost; capacity;
    clock = 0; total = 0; hits = 0; misses = 0; insertions = 0;
    evictions = 0 }

let locked t f =
  Mutex.lock t.mu;
  let v = try f () with e -> Mutex.unlock t.mu; raise e in
  Mutex.unlock t.mu;
  v

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.hits <- t.hits + 1;
        t.clock <- t.clock + 1;
        e.last <- t.clock;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        None)

(* Called with [t.mu] held. *)
let evict_over_capacity t =
  match t.capacity with
  | None -> ()
  | Some cap ->
    while t.total > cap && Hashtbl.length t.table > 0 do
      let oldest =
        Hashtbl.fold
          (fun key e acc ->
             match acc with
             | Some (_, e') when e'.last <= e.last -> acc
             | Some _ | None -> Some (key, e))
          t.table None
      in
      match oldest with
      | None -> ()
      | Some (key, e) ->
        Hashtbl.remove t.table key;
        t.total <- t.total - e.cost;
        t.evictions <- t.evictions + 1
    done

let add t key v =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
       | Some old ->
         Hashtbl.remove t.table key;
         t.total <- t.total - old.cost
       | None -> ());
      let cost = t.cost v in
      t.clock <- t.clock + 1;
      Hashtbl.replace t.table key { value = v; cost; last = t.clock };
      t.total <- t.total + cost;
      t.insertions <- t.insertions + 1;
      evict_over_capacity t)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  entries : int;
  cost_bytes : int;
  capacity : int option;
}

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; insertions = t.insertions;
        evictions = t.evictions; entries = Hashtbl.length t.table;
        cost_bytes = t.total; capacity = t.capacity })
