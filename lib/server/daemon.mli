(** The accept loop: sockets in, {!Service} replies out.

    A daemon owns one listening socket, an accept-loop domain, and a
    {!Parallel.Pool} of worker domains.  The accept loop never parses
    HTTP; it only accepts, applies backpressure, and hands the
    connection to a worker with [Pool.submit].  Backpressure is the
    [Pool.pending] probe: when more than [accept_queue] accepted
    connections are waiting for a worker, new ones are answered with an
    immediate [503] (code SRV111, counted under
    ["server"]["overload_rejected"] in [/stats]) instead of queueing
    without bound.

    Workers run the keep-alive loop: parse a request ({!Http}), route
    it ({!Service.respond}), write the response, repeat until the
    client closes, a limit fires, or [max_requests_per_conn] is
    reached.  Every exception is caught inside the worker -- a broken
    connection can never take a domain down.

    Shutdown is graceful by construction: {!stop} wakes the accept loop
    through a self-pipe (also written by the [SIGTERM]/[SIGINT]
    handlers {!run} installs), the listening socket closes so no new
    connections arrive, and [Pool.shutdown] drains every
    already-accepted connection before joining the workers. *)

type config = {
  host : string;
  port : int;  (** [0] picks a free port; read it back with {!port} *)
  domains : int;  (** total domains; clamped to [>= 2] so workers exist *)
  accept_queue : int;  (** pending-connection bound before 503 *)
  cache_mb : int;  (** capacity of the registry arena cache {e and} the
                       result cache, each *)
  max_states : int;  (** per-request exploration ceiling *)
  read_timeout : float;  (** seconds a worker waits for request bytes *)
  write_timeout : float;
      (** seconds a blocked response write may stall (slow-reader
          protection, [SO_SNDTIMEO]); on expiry the response is
          abandoned and the connection closed *)
  conn_deadline : float;
      (** total seconds one connection may hold a worker, however many
          keep-alive requests it spreads them over; the per-request
          read timeout shrinks to the remaining allowance *)
  max_requests_per_conn : int;  (** keep-alive recycling bound *)
  deadline_ms : int option;
      (** server-wide default compute deadline per request (see
          {!Service.config.deadline_ms}) *)
  degraded_after : float;  (** /health degraded threshold, seconds *)
  snapshot_dir : string option;
      (** directory of [*.prtba] arena snapshots preloaded into the
          registry at {!start}, before the socket opens; refused
          snapshots warn on stderr and the daemon serves anyway *)
}

(** 127.0.0.1:8080, 2 domains, queue 16, 64 MiB, 2M states, 10 s reads
    and writes, 60 s per connection, 1000 requests/connection, no
    default compute deadline, degraded after 5 s, no snapshot dir. *)
val default_config : config

type t

(** Bind, listen, spawn the accept loop.  Also applies [cache_mb] to
    the {!Models} registry ([Models.set_capacity]).  Raises
    [Unix.Unix_error] when the address is unavailable. *)
val start : config -> t

(** The bound port (useful after [port = 0]). *)
val port : t -> int

val service : t -> Service.t

(** Ask the daemon to stop: wakes the accept loop, which closes the
    listening socket.  Idempotent, async-signal-safe.  Returns
    immediately; pair with {!wait}. *)
val stop : t -> unit

(** Join the accept loop, drain the workers ([Pool.shutdown]), close
    the remaining descriptors.  Call once, after {!stop} (or let a
    signal trigger the stop). *)
val wait : t -> unit

(** [run config] is {!start} + [SIGTERM]/[SIGINT] handlers that
    {!stop} + a listening banner on stdout + {!wait}.  Returns (exit
    code 0) once the drain completes -- what CI's SIGTERM test
    asserts. *)
val run : config -> unit
