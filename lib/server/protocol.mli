(** The verification service's wire protocol, on {!Analysis.Json}.

    Endpoints (all responses are JSON bodies):

    - [/check]    exact verification of a case study ({!check_query})
    - [/cert]     the same computation reified as a proof certificate
                  (same parameters as [/check]; body is bit-identical
                  to [prtb check --emit-cert])
    - [/simulate] Monte Carlo estimation ({!simulate_query})
    - [/lint]     a registry lint target ({!lint_query})
    - [/batch]    many compute queries in one round trip (POST only;
                  see the {!query} [Batch] constructor)
    - [/stats]    registry + cache + server counters
    - [/health]   liveness probe (accepts [?sleep_ms=N], a load-testing
                  aid that holds a worker for up to 5 s)

    [/check], [/simulate] and [/lint] accept their parameters either as
    a JSON object in a [POST] body or as [GET] query-string pairs; both
    forms normalize into the same query value, so either wire form hits
    the same cache entry.

    Errors are structured: [{ "error": { "code": "SRV1xx", "status": N,
    "message": ... } }] with stable diagnostic codes (catalogued in
    docs/SERVER.md):

    - SRV100 unknown endpoint          - SRV101 method not allowed
    - SRV102 malformed JSON body       - SRV103 malformed field
    - SRV104 unknown model/target      - SRV105 malformed budget
    - SRV110 HTTP protocol error       - SRV111 overloaded (503)
    - SRV112 backend unavailable (503, [prtb route] only)
    - SRV120 budget exhausted          - SRV122 deadline exceeded
    - SRV300 internal error *)

type model = [ `Lr | `Election | `Coin | `Consensus ]

val model_name : model -> string

type check_query = {
  model : model;
  n : int;
  g : int;
  k : int;
  topology : string;  (** ["ring"], ["line"] or ["star"] (lr only) *)
  bound : int;  (** coin barrier *)
  cap : int;  (** consensus round cap *)
  max_states : int option;  (** client ceiling; the server clamps it *)
  sym : string;  (** ["auto"], ["on"] or ["off"] (default) *)
  plane : string;
      (** ["interval"] (default) or ["exact"]: which arithmetic plane
          the engines consult.  A canonical cache-key dimension like
          [sym] -- it never changes a verdict, but [/cert] bodies
          record it in every leaf's configuration, so entries must not
          be shared across planes. *)
  deadline_ms : int option;
      (** wall deadline for the whole request; on expiry the answer
          degrades (SRV122) instead of erroring.  Not a cache-key
          dimension: complete cached bodies trivially meet any
          deadline, and degraded bodies are never cached. *)
}

type simulate_query = {
  sim_model : model;
  sim_n : int;
  scheduler : string;
  trials : int;
  seed : int;
  within : int option;
  sim_deadline_ms : int option;
}

type lint_query = {
  target : string;
  lint_max_states : int option;
  lint_sym : string;  (** ["auto"], ["on"] or ["off"] (default) *)
  lint_deadline_ms : int option;
}

type query =
  | Check of check_query
  | Cert of check_query  (** same parameters, certificate body *)
  | Simulate of simulate_query
  | Lint of lint_query
  | Stats
  | Health of { sleep_ms : int }
  | Batch of query list
      (** [/batch] (POST only): [{"queries": [{...}, ...]}], each
          element an object with an ["endpoint"] selector (default
          [/check]) plus that endpoint's usual fields.  Only the
          compute endpoints ([/check], [/cert], [/simulate], [/lint])
          are batchable; at most 64 elements.  Element bodies are
          bit-identical to the single-query endpoints'. *)

type error = { status : int; code : string; message : string }

val error : status:int -> code:string -> string -> error

(** The JSON error body. *)
val error_body : error -> string

(** Classify and parse an HTTP request into a query. *)
val of_request : Http.request -> (query, error) result

(** The canonical cache key of a query, with every default filled in
    -- equal keys answer from the result cache.  [max_states] and
    [max_trials] are the server's ceilings: the key stores the
    {e clamped} values, so a query spelling a ceiling explicitly, one
    omitting it and one exceeding the server's cap share one entry
    (they compute the same body).  [None] for [/stats] and [/health],
    which are never cached. *)
val canonical_key :
  ?max_states:int -> ?max_trials:int -> query -> string option
