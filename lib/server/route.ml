type config = {
  host : string;
  port : int;
  backends : string list;
  domains : int;
  accept_queue : int;
  read_timeout : float;
  write_timeout : float;
  conn_deadline : float;
  max_requests_per_conn : int;
  replicas : int;
}

let default_config =
  { host = "127.0.0.1"; port = 8080; backends = []; domains = 2;
    accept_queue = 16; read_timeout = 10.0; write_timeout = 10.0;
    conn_deadline = 60.0; max_requests_per_conn = 1000; replicas = 50 }

(* ------------------------------------------------------------------ *)
(* The hash ring.

   [replicas] virtual nodes per backend, each at a deterministic point
   derived from the backend URL -- so the assignment is a pure function
   of (key, backend list), identical across router restarts and across
   processes.  A key is served by the first node clockwise from its own
   hash; removing a backend only reassigns the arcs its nodes owned. *)

type ring = {
  points : int array;  (** sorted node positions *)
  owners : string array;  (** owners.(i) owns points.(i) *)
}

(* The first 8 digest bytes as a non-negative int.  MD5 here is a hash
   ring placement, not a security boundary. *)
let hash_of s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

let ring_of backends ~replicas =
  let nodes =
    List.concat_map
      (fun url ->
         List.init replicas (fun i ->
             (hash_of (Printf.sprintf "%s#%d" url i), url)))
      backends
  in
  let nodes =
    List.sort (fun (a, ua) (b, ub) ->
        match compare a b with 0 -> compare ua ub | c -> c)
      nodes
  in
  { points = Array.of_list (List.map fst nodes);
    owners = Array.of_list (List.map snd nodes) }

let ring_lookup ring key =
  let h = hash_of key in
  let n = Array.length ring.points in
  (* First node with position >= h, wrapping to 0. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ring.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  ring.owners.(if !lo = n then 0 else !lo)

(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  ring : ring;
  by_url : (string, Load.url) Hashtbl.t;
  rr : int Atomic.t;  (* round-robin cursor for keyless requests *)
  pool : Parallel.Pool.t;
  lsock : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable accept_domain : unit Domain.t option;
}

let port t = t.bound_port

let backend_for t key = ring_lookup t.ring key

(* Where a parsed query goes: its canonical key's ring owner, or the
   next backend round-robin when the query has no key. *)
let route_of t q =
  match Protocol.canonical_key q with
  | Some key -> ring_lookup t.ring key
  | None ->
    let i = Atomic.fetch_and_add t.rr 1 in
    List.nth t.config.backends (i mod List.length t.config.backends)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  try
    while !off < len do
      let n = Unix.write_substring fd s !off (len - !off) in
      if n = 0 then off := len else off := !off + n
    done
  with Unix.Unix_error _ -> ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let meth_string = function
  | Http.GET -> "GET"
  | Http.POST -> "POST"
  | Http.Other m -> m

(* Headers worth relaying from a backend reply: the cache/degradation
   diagnostics and backpressure guidance.  Hop-by-hop headers
   (Connection, Content-Length) are re-derived by [Http.response]. *)
let relay_headers (r : Http.response_msg) =
  List.filter
    (fun (name, _) ->
       let n = String.lowercase_ascii name in
       n = "retry-after"
       || (String.length n > 7 && String.sub n 0 7 = "x-prtb-"))
    r.Http.resp_headers

let backend_unavailable url reason =
  ( 503,
    [ ("Retry-After", "1") ],
    Protocol.error_body
      (Protocol.error ~status:503 ~code:"SRV112"
         (Printf.sprintf "backend %s unavailable: %s" url reason)) )

(* One forwarded round trip on a fresh connection.  Per-request
   connections keep the router stateless about backend health: a dead
   backend costs one failed connect, never a wedged cached socket. *)
let forward t url (req : Http.request) =
  match Hashtbl.find_opt t.by_url url with
  | None -> backend_unavailable url "unknown backend"
  | Some parsed ->
    let conn = Load.Conn.create parsed in
    let result =
      Load.Conn.request conn ~meth:(meth_string req.Http.meth)
        ~body:req.Http.body req.Http.target
    in
    Load.Conn.close conn;
    (match result with
     | Ok r -> (r.Http.status, relay_headers r, r.Http.resp_body)
     | Error e -> backend_unavailable url e)

let handle_conn t fd =
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.write_timeout
   with Unix.Unix_error _ -> ());
  let read buf off len =
    try Unix.read fd buf off len with Unix.Unix_error _ -> 0
  in
  let r = Http.reader read in
  let conn_start = Unix.gettimeofday () in
  let arm_read_timeout () =
    let left =
      t.config.conn_deadline -. (Unix.gettimeofday () -. conn_start)
    in
    if left <= 0.0 then false
    else begin
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO
           (Stdlib.min t.config.read_timeout left)
       with Unix.Unix_error _ -> ());
      true
    end
  in
  let rec serve remaining =
    if remaining > 0 && arm_read_timeout () then
      match Http.read_request r with
      | `Eof -> ()
      | `Error e ->
        let body =
          Protocol.error_body
            (Protocol.error ~status:e.Http.status ~code:"SRV110"
               e.Http.reason)
        in
        write_all fd
          (Http.response ~keep_alive:false ~status:e.Http.status ~body ())
      | `Request req ->
        let keep = Http.keep_alive req && remaining > 1 in
        let status, headers, body =
          match Protocol.of_request req with
          | Error e -> (e.Protocol.status, [], Protocol.error_body e)
          | Ok q -> forward t (route_of t q) req
        in
        write_all fd
          (Http.response ~headers ~keep_alive:keep ~status ~body ());
        if keep then serve (remaining - 1)
  in
  (try serve t.config.max_requests_per_conn with _ -> ());
  close_quietly fd

let reject_overloaded fd =
  let body =
    Protocol.error_body
      (Protocol.error ~status:503 ~code:"SRV111"
         "router overloaded; retry later")
  in
  write_all fd
    (Http.response
       ~headers:[ ("Retry-After", "1") ]
       ~keep_alive:false ~status:503 ~body ());
  close_quietly fd

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.select [ t.lsock; t.stop_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
      | ready, _, _ ->
        if List.mem t.stop_r ready then ()
        else begin
          (match Unix.accept ~cloexec:true t.lsock with
           | exception Unix.Unix_error _ -> ()
           | fd, _ ->
             if Parallel.Pool.pending t.pool > t.config.accept_queue then
               reject_overloaded fd
             else begin
               let accepted =
                 Parallel.Pool.submit t.pool (fun () -> handle_conn t fd)
               in
               if not accepted then close_quietly fd
             end);
          loop ()
        end
  in
  loop ();
  Atomic.set t.stopping true;
  close_quietly t.lsock

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      invalid_arg (Printf.sprintf "Route.start: unknown host %S" host))

let start config =
  if config.backends = [] then
    invalid_arg "Route.start: at least one backend is required";
  if config.replicas < 1 then
    invalid_arg "Route.start: replicas must be positive";
  let by_url = Hashtbl.create 8 in
  List.iter
    (fun url ->
       match Load.parse_url url with
       | Ok parsed -> Hashtbl.replace by_url url parsed
       | Error e ->
         invalid_arg (Printf.sprintf "Route.start: backend %s: %s" url e))
    config.backends;
  let ring = ring_of config.backends ~replicas:config.replicas in
  let pool = Parallel.Pool.create ~domains:(Stdlib.max 2 config.domains) in
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock (Unix.ADDR_INET (resolve config.host, config.port));
     Unix.listen lsock 128
   with e ->
     close_quietly lsock;
     Parallel.Pool.shutdown pool;
     raise e);
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let stopping = Atomic.make false in
  let t =
    { config; ring; by_url; rr = Atomic.make 0; pool; lsock; bound_port;
      stop_r; stop_w; stopping; accept_domain = None }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.stop_w "." 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (match t.accept_domain with
   | Some d -> Domain.join d
   | None -> ());
  Parallel.Pool.shutdown t.pool;
  close_quietly t.stop_r;
  close_quietly t.stop_w

let run config =
  let t = start config in
  let on_signal _ = stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf
    "prtb route: listening on http://%s:%d/ (%d domains, %d backends)\n%!"
    config.host (port t)
    (Parallel.Pool.domains t.pool)
    (List.length config.backends);
  while not (Atomic.get t.stopping) do
    Unix.sleepf 0.1
  done;
  wait t;
  print_endline "prtb route: drained, bye"
