(** The load harness behind [prtb loadtest]: a keep-alive HTTP client
    and a multi-domain closed-loop load generator.

    Each client domain owns one connection and fires its share of the
    requests back to back, timing every round trip.  Replies are
    classified into [ok] (2xx), [rejected] (503 -- the daemon's
    backpressure answer, expected under deliberate overload), other
    HTTP errors, and {e protocol} errors (unparsable response,
    unexpected close); a healthy run has zero of the last kind, which
    is what the CI smoke asserts.  Connections closed by the server
    (keep-alive recycling) are transparently reopened. *)

type url = {
  host : string;
  port : int;
  target : string;  (** path plus query string, e.g. ["/health"] *)
}

(** Parse [http://host:port/path?query].  The scheme is optional;
    [https] is rejected. *)
val parse_url : string -> (url, string) result

(** {1 A single keep-alive connection} *)

module Conn : sig
  type t

  (** No I/O happens until the first request. *)
  val create : url -> t

  (** One round trip; reconnects (once) when the server closed the
      kept-alive connection.  [Error] is a protocol error, not an HTTP
      error status. *)
  val request :
    t -> ?meth:string -> ?body:string -> string ->
    (Http.response_msg, string) result

  val close : t -> unit
end

(** {1 The generator} *)

type result = {
  clients : int;
  requests : int;  (** attempted *)
  ok : int;  (** 2xx *)
  rejected : int;  (** 503, after any retries were spent *)
  retries : int;
      (** extra attempts consumed by 503 backoff; counted separately
          so they never inflate [ok] or deflate [rejected] *)
  http_errors : int;  (** non-2xx other than 503 *)
  protocol_errors : int;
  duration_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(** [run url ~clients ~requests] spreads [requests] round trips over
    [clients] concurrent domains.  With [max_retries > 0] (default 0),
    a 503 is retried up to that many times with jittered exponential
    backoff, honoring the server's [Retry-After] header when present;
    retry attempts are counted in [retries] and a request's latency
    covers its whole retry chain.  With [batch = Some b], every other
    logical request is instead a [POST /batch] carrying [b] copies of
    the URL's query (a mixed single/batch workload; the URL's path
    becomes each element's ["endpoint"]).  Raises [Invalid_argument]
    when either count is non-positive, [max_retries] is negative, or
    [batch] is non-positive. *)
val run :
  ?max_retries:int -> ?batch:int -> url -> clients:int -> requests:int ->
  result

val pp : Format.formatter -> result -> unit
