(** A mutex-guarded LRU cache with byte-cost accounting.

    The service keeps finished query results here, keyed by the
    canonical request ({!Protocol.canonical_key}); the compiled-arena
    side of caching lives in the {!Models} registry, which applies the
    same LRU policy through [Models.set_capacity].  Both are sized from
    [prtb serve --cache-mb].

    Entries carry a caller-supplied cost (bytes, typically the body
    length); when the total cost exceeds the capacity, least-recently
    used entries are evicted.  A single value larger than the whole
    capacity is accepted but evicted immediately (the caller keeps the
    value it just computed either way).

    Lookups and insertions are serialized by an internal mutex, so a
    cache can be shared by every worker domain.  Misses are {e not}
    locked through the compute: two workers may race to fill the same
    key, in which case the second insert wins and the loser's work is
    wasted but harmless (values for equal keys are equal). *)

type 'v t

(** [create ?capacity ~cost ()]: [capacity] is the total cost bound
    ([None] = unbounded); [cost v] is charged at insertion time. *)
val create : ?capacity:int -> cost:('v -> int) -> unit -> 'v t

(** [find t key] returns the cached value and marks it most recently
    used.  Counts a hit or a miss. *)
val find : 'v t -> string -> 'v option

(** [add t key v] inserts (replacing any previous value under [key])
    and evicts LRU entries while over capacity. *)
val add : 'v t -> string -> 'v -> unit

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  entries : int;
  cost_bytes : int;
  capacity : int option;
}

val stats : 'v t -> stats
