type config = {
  host : string;
  port : int;
  domains : int;
  accept_queue : int;
  cache_mb : int;
  max_states : int;
  read_timeout : float;
  write_timeout : float;
  conn_deadline : float;
  max_requests_per_conn : int;
  deadline_ms : int option;
  degraded_after : float;
  snapshot_dir : string option;
}

let default_config =
  { host = "127.0.0.1"; port = 8080; domains = 2; accept_queue = 16;
    cache_mb = 64; max_states = 2_000_000; read_timeout = 10.0;
    write_timeout = 10.0; conn_deadline = 60.0;
    max_requests_per_conn = 1000; deadline_ms = None;
    degraded_after = 5.0; snapshot_dir = None }

type t = {
  service : Service.t;
  pool : Parallel.Pool.t;
  lsock : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopping : bool Atomic.t;
  accept_domain : unit Domain.t;
}

let port t = t.bound_port
let service t = t.service

(* ------------------------------------------------------------------ *)
(* Writing. *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  (try
     while !off < len do
       let n = Unix.write_substring fd s !off (len - !off) in
       if n = 0 then off := len else off := !off + n
     done
   with Unix.Unix_error _ -> ())

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* The per-connection keep-alive loop, run on a worker domain. *)

let handle_conn service fd ~read_timeout ~write_timeout ~conn_deadline
    ~max_requests =
  (* SO_SNDTIMEO mirrors the read side: a peer that accepts our bytes
     arbitrarily slowly (a slow-reader/slowloris on the write path)
     trips EAGAIN in [write_all], which abandons the response and winds
     the connection down instead of pinning the worker. *)
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO write_timeout
   with Unix.Unix_error _ -> ());
  (* A read timeout (or any socket error) reads as end-of-input: clean
     between requests, a 400 mid-request -- either way the connection
     winds down instead of wedging the worker. *)
  let read buf off len =
    try Unix.read fd buf off len with Unix.Unix_error _ -> 0
  in
  let r = Http.reader read in
  let conn_start = Unix.gettimeofday () in
  (* The per-connection total deadline: a client cannot hold a worker
     past [conn_deadline] seconds by trickling requests that each stay
     inside the per-read timeout.  The read timeout shrinks to the
     remaining allowance before every request. *)
  let arm_read_timeout () =
    let left = conn_deadline -. (Unix.gettimeofday () -. conn_start) in
    if left <= 0.0 then false
    else begin
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO
           (Stdlib.min read_timeout left)
       with Unix.Unix_error _ -> ());
      true
    end
  in
  let rec serve remaining =
    if remaining > 0 && arm_read_timeout () then
      match Http.read_request r with
      | `Eof -> ()
      | `Error e ->
        Service.note_protocol_error service;
        let body =
          Protocol.error_body
            (Protocol.error ~status:e.Http.status ~code:"SRV110"
               e.Http.reason)
        in
        write_all fd
          (Http.response ~keep_alive:false ~status:e.Http.status ~body ())
      | `Request req ->
        let keep = Http.keep_alive req && remaining > 1 in
        let reply = Service.respond service req in
        write_all fd
          (Http.response ~headers:reply.Service.headers ~keep_alive:keep
             ~status:reply.Service.status ~body:reply.Service.body ());
        if keep then serve (remaining - 1)
  in
  (try serve max_requests with _ -> ());
  close_quietly fd

(* An accept-loop rejection: answered inline, never queued.  The
   Retry-After is advisory backoff guidance; [Load]'s retry mode and
   any compliant client honor it. *)
let reject_overloaded service fd =
  Service.note_overload service;
  let body =
    Protocol.error_body
      (Protocol.error ~status:503 ~code:"SRV111"
         "server overloaded; retry later")
  in
  write_all fd
    (Http.response
       ~headers:[ ("Retry-After", "1") ]
       ~keep_alive:false ~status:503 ~body ());
  close_quietly fd

(* ------------------------------------------------------------------ *)
(* The accept loop. *)

let accept_loop ~service ~pool ~lsock ~stop_r ~stopping ~accept_queue
    ~read_timeout ~write_timeout ~conn_deadline ~max_requests =
  let rec loop () =
    if not (Atomic.get stopping) then
      match Unix.select [ lsock; stop_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
      | ready, _, _ ->
        if List.mem stop_r ready then ()
        else begin
          (match Unix.accept ~cloexec:true lsock with
           | exception Unix.Unix_error _ -> ()
           | fd, _ ->
             if Parallel.Pool.pending pool > accept_queue then
               reject_overloaded service fd
             else begin
               let accepted =
                 Parallel.Pool.submit pool (fun () ->
                     handle_conn service fd ~read_timeout ~write_timeout
                       ~conn_deadline ~max_requests)
               in
               if not accepted then close_quietly fd
             end);
          loop ()
        end
  in
  loop ();
  (* Whatever ended the loop, let [run]'s poll loop see it. *)
  Atomic.set stopping true;
  close_quietly lsock

(* ------------------------------------------------------------------ *)
(* Lifecycle. *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      invalid_arg (Printf.sprintf "Daemon.start: unknown host %S" host))

(* Load every [*.prtba] in [dir] into the registry before the socket
   opens, so the first query for a snapshotted instance never explores
   or compiles.  A refused snapshot (stale fingerprint, tamper, version
   skew) is a warning, not a startup failure: the daemon still serves,
   it just computes that instance on demand. *)
let preload_snapshots ~max_states dir =
  let entries =
    match Sys.readdir dir with
    | exception Sys_error e ->
      Printf.eprintf "prtb serve: snapshot dir %s\n%!" e;
      [||]
    | names ->
      Array.sort String.compare names;
      names
  in
  Array.iter
    (fun name ->
       if Filename.check_suffix name ".prtba" then begin
         let path = Filename.concat dir name in
         match Snapshot.Store.preload ~max_states ~path () with
         | Ok desc ->
           Printf.printf "prtb serve: snapshot %s: %s\n%!" name desc
         | Error e ->
           Printf.eprintf "prtb serve: snapshot %s refused: %s\n%!" name e
       end)
    entries

let start config =
  let bytes = config.cache_mb * 1024 * 1024 in
  Models.set_capacity (Some bytes);
  (match config.snapshot_dir with
   | None -> ()
   | Some dir -> preload_snapshots ~max_states:config.max_states dir);
  let service =
    Service.create
      { Service.max_states = config.max_states;
        cache_bytes = Some bytes;
        max_trials = Service.default_config.Service.max_trials;
        deadline_ms = config.deadline_ms;
        degraded_after = config.degraded_after }
  in
  let pool = Parallel.Pool.create ~domains:(Stdlib.max 2 config.domains) in
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock (Unix.ADDR_INET (resolve config.host, config.port));
     Unix.listen lsock 128
   with e ->
     close_quietly lsock;
     Parallel.Pool.shutdown pool;
     raise e);
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let stopping = Atomic.make false in
  let accept_domain =
    Domain.spawn (fun () ->
        accept_loop ~service ~pool ~lsock ~stop_r ~stopping
          ~accept_queue:config.accept_queue
          ~read_timeout:config.read_timeout
          ~write_timeout:config.write_timeout
          ~conn_deadline:config.conn_deadline
          ~max_requests:config.max_requests_per_conn)
  in
  { service; pool; lsock; bound_port; stop_r; stop_w; stopping;
    accept_domain }

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* /health flips to "draining" for the rest of the shutdown:
       accepted requests still finish, new connections stop being
       taken. *)
    Service.set_draining t.service true;
    try ignore (Unix.write_substring t.stop_w "." 0 1)
    with Unix.Unix_error _ -> ()
  end

let wait t =
  Domain.join t.accept_domain;
  Parallel.Pool.shutdown t.pool;
  close_quietly t.stop_r;
  close_quietly t.stop_w

let run config =
  let t = start config in
  let on_signal _ = stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf "prtb serve: listening on http://%s:%d/ (%d domains)\n%!"
    config.host (port t)
    (Parallel.Pool.domains t.pool);
  (* Poll instead of blocking in [Domain.join]: pending signal handlers
     only run when some domain reaches a poll point, and with the main
     domain parked in [join] and every worker parked in a condition
     wait, none would -- a SIGTERM would sit pending forever.  Waking
     every 100 ms guarantees the handler (hence {!stop}) runs here. *)
  while not (Atomic.get t.stopping) do
    Unix.sleepf 0.1
  done;
  wait t;
  print_endline "prtb serve: drained, bye"
