module J = Analysis.Json

type scenario =
  | Trickle
  | Midbody_close
  | Garbage
  | Oversize
  | Idle_keepalive
  | Mixed

let all_scenarios =
  [ Trickle; Midbody_close; Garbage; Oversize; Idle_keepalive; Mixed ]

let scenario_name = function
  | Trickle -> "trickle"
  | Midbody_close -> "midbody-close"
  | Garbage -> "garbage"
  | Oversize -> "oversize"
  | Idle_keepalive -> "idle-keepalive"
  | Mixed -> "mixed"

let scenario_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "trickle" -> Ok Trickle
  | "midbody-close" | "midbody" -> Ok Midbody_close
  | "garbage" -> Ok Garbage
  | "oversize" -> Ok Oversize
  | "idle-keepalive" | "idle" -> Ok Idle_keepalive
  | "mixed" -> Ok Mixed
  | other ->
    Error
      (Printf.sprintf "unknown scenario %S (expected one of: %s)" other
         (String.concat ", " (List.map scenario_name all_scenarios)))

type outcome = {
  scenario : string;
  attempts : int;
  answered : int;
  rejected : int;
  dropped : int;
  failures : string list;
}

type report = {
  outcomes : outcome list;
  health_ok : bool;
  server_errors_delta : int;
  ok : bool;
}

(* ------------------------------------------------------------------ *)
(* Raw-socket plumbing.

   The adversarial scenarios need byte-level control (partial writes,
   abrupt closes), so they speak to the socket directly instead of
   through [Load.Conn]; only response parsing is shared ([Http]). *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  (try
     while !off < len do
       let n = Unix.write_substring fd s !off (len - !off) in
       if n = 0 then off := len else off := !off + n
     done
   with Unix.Unix_error _ -> ())

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

(* A connection with a client-side receive timeout, so a daemon that
   (incorrectly) goes mute registers as a drop instead of hanging the
   harness. *)
type conn = { fd : Unix.file_descr; rd : Http.reader }

let connect (url : Load.url) =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (resolve url.Load.host, url.Load.port))
  with
  | () ->
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
     with Unix.Unix_error _ -> ());
    let read buf off len =
      try Unix.read fd buf off len with Unix.Unix_error _ -> 0
    in
    Some { fd; rd = Http.reader read }
  | exception Unix.Unix_error _ ->
    close_quietly fd;
    None

let request_text (url : Load.url) ?(meth = "GET") ?body target =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  Buffer.add_string buf
    (Printf.sprintf "Host: %s:%d\r\n" url.Load.host url.Load.port);
  (match body with
   | Some (`Declared n) ->
     Buffer.add_string buf "Content-Type: application/json\r\n";
     Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" n)
   | Some (`Full b) ->
     Buffer.add_string buf "Content-Type: application/json\r\n";
     Buffer.add_string buf
       (Printf.sprintf "Content-Length: %d\r\n" (String.length b))
   | None -> ());
  Buffer.add_string buf "Connection: keep-alive\r\n\r\n";
  (match body with
   | Some (`Full b) -> Buffer.add_string buf b
   | Some (`Declared _) | None -> ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The per-scenario ledger: every attempt ends in exactly one of
   answered / rejected (503) / dropped, so the books balance by
   construction and [reconcile] is a belt-and-braces assertion. *)

type tally = {
  mutable attempts : int;
  mutable answered : int;
  mutable rejected : int;
  mutable dropped : int;
  mutable failures : string list;
}

let tally () =
  { attempts = 0; answered = 0; rejected = 0; dropped = 0; failures = [] }

let fail t fmt =
  Printf.ksprintf (fun m -> t.failures <- m :: t.failures) fmt

(* Read one response and settle the attempt.  [expect] grades the
   status of an answered attempt; a drop (EOF, timeout, unparsable
   response) is legitimate for the abusive scenarios, so it is only a
   failure when [drop_ok] is false. *)
let settle t ?(drop_ok = true) ~expect conn =
  t.attempts <- t.attempts + 1;
  match Http.read_response conn.rd with
  | `Response r ->
    if r.Http.status = 503 then t.rejected <- t.rejected + 1
    else begin
      t.answered <- t.answered + 1;
      match expect r with
      | None -> ()
      | Some msg -> fail t "%s (status %d)" msg r.Http.status
    end;
    Some r
  | `Eof | `Error _ ->
    t.dropped <- t.dropped + 1;
    if not drop_ok then fail t "connection dropped without a response";
    None

let expect_2xx (r : Http.response_msg) =
  if r.Http.status >= 200 && r.Http.status < 300 then None
  else Some "expected a 2xx answer"

let expect_4xx (r : Http.response_msg) =
  if r.Http.status >= 400 && r.Http.status < 500 then None
  else Some "expected a 4xx rejection"

let expect_status want (r : Http.response_msg) =
  if r.Http.status = want then None
  else Some (Printf.sprintf "expected status %d" want)

let not_5xx (r : Http.response_msg) =
  if r.Http.status >= 500 then Some "server errored (5xx) under abuse"
  else None

(* ------------------------------------------------------------------ *)
(* Scenarios.  Each is deterministic given (seed, rounds): all
   randomness flows from one [Proba.Rng] stream per scenario. *)

let garbage_line rng =
  let alphabet =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789#%&'()*+,-./:;<=>?@[]^_`{|}~"
  in
  let len = 10 + Proba.Rng.int rng 190 in
  String.init len (fun _ ->
      alphabet.[Proba.Rng.int rng (String.length alphabet)])

let run_trickle url rng ~rounds t =
  for _ = 1 to rounds do
    match connect url with
    | None -> fail t "connect refused"
    | Some c ->
      let req = request_text url "/health" in
      String.iter
        (fun ch ->
           write_all c.fd (String.make 1 ch);
           (* 0-2 ms between bytes: slow enough to shred the request
              across many reads, fast enough to stay inside any sane
              read timeout. *)
           Unix.sleepf (0.0005 *. float_of_int (Proba.Rng.int rng 4)))
        req;
      ignore (settle t ~drop_ok:false ~expect:expect_2xx c);
      close_quietly c.fd
  done

let run_midbody_close url rng ~rounds t =
  for _ = 1 to rounds do
    match connect url with
    | None -> fail t "connect refused"
    | Some c ->
      let declared = 1024 + Proba.Rng.int rng 4096 in
      let sent = Proba.Rng.int rng 256 in
      write_all c.fd
        (request_text url ~meth:"POST" ~body:(`Declared declared) "/check");
      write_all c.fd (String.make sent 'x');
      (* Abandon the body mid-flight.  The server reads EOF inside the
         body and must answer 4xx or just drop the connection -- never
         crash, never 2xx, never 5xx. *)
      Unix.shutdown c.fd Unix.SHUTDOWN_SEND;
      ignore (settle t ~expect:expect_4xx c);
      close_quietly c.fd
  done

let run_garbage url rng ~rounds t =
  for _ = 1 to rounds do
    match connect url with
    | None -> fail t "connect refused"
    | Some c ->
      write_all c.fd (garbage_line rng ^ "\r\n\r\n");
      ignore (settle t ~drop_ok:false ~expect:expect_4xx c);
      close_quietly c.fd
  done

let run_oversize url _rng ~rounds t =
  for _ = 1 to rounds do
    match connect url with
    | None -> fail t "connect refused"
    | Some c ->
      (* A request line beyond the 8 KiB limit: must be answered with
         431, not buffered unboundedly. *)
      write_all c.fd
        (Printf.sprintf "GET /%s HTTP/1.1\r\n\r\n" (String.make 9000 'a'));
      ignore (settle t ~drop_ok:false ~expect:(expect_status 431) c);
      close_quietly c.fd
  done

let run_idle_keepalive url ~idle_s ~rounds t =
  for _ = 1 to rounds do
    match connect url with
    | None -> fail t "connect refused"
    | Some c ->
      write_all c.fd (request_text url "/health");
      ignore (settle t ~drop_ok:false ~expect:expect_2xx c);
      (* Park the kept-alive connection.  Depending on how idle_s
         compares to the server's read timeout / connection deadline,
         the follow-up is either answered or cleanly dropped -- both
         fine; a 5xx or a wedged server is not. *)
      Unix.sleepf idle_s;
      write_all c.fd (request_text url "/health");
      ignore (settle t ~expect:not_5xx c);
      close_quietly c.fd
  done

(* Valid and garbage traffic interleaved from concurrent domains; all
   valid answers must be bit-identical (the target computes a
   deterministic body), no matter how much junk arrives next door. *)
let run_mixed url rng ~clients ~rounds t =
  let clients = Stdlib.max 2 clients in
  let seeds =
    Array.init clients (fun _ ->
        Int64.to_int (Proba.Rng.bits64 rng) land 0x3FFFFFFF)
  in
  let worker idx () =
    let rng = Proba.Rng.create ~seed:seeds.(idx) in
    let wt = tally () in
    let bodies = ref [] in
    for _ = 1 to rounds do
      match connect url with
      | None -> fail wt "connect refused"
      | Some c ->
        if idx mod 2 = 0 then begin
          write_all c.fd (request_text url url.Load.target);
          match settle wt ~drop_ok:false ~expect:expect_2xx c with
          | Some r when r.Http.status >= 200 && r.Http.status < 300 ->
            bodies := r.Http.resp_body :: !bodies
          | Some _ | None -> ()
        end
        else begin
          write_all c.fd (garbage_line rng ^ "\r\n\r\n");
          ignore (settle wt ~expect:expect_4xx c)
        end;
        close_quietly c.fd
    done;
    (wt, !bodies)
  in
  let parts =
    List.map Domain.join
      (List.init clients (fun i -> Domain.spawn (worker i)))
  in
  let bodies = List.concat_map snd parts in
  List.iter
    (fun (wt, _) ->
       t.attempts <- t.attempts + wt.attempts;
       t.answered <- t.answered + wt.answered;
       t.rejected <- t.rejected + wt.rejected;
       t.dropped <- t.dropped + wt.dropped;
       t.failures <- wt.failures @ t.failures)
    parts;
  match bodies with
  | [] -> fail t "no valid response completed alongside the garbage"
  | first :: rest ->
    if not (List.for_all (String.equal first) rest) then
      fail t "valid responses diverged under concurrent garbage traffic"

let run_scenario ?(rounds = 5) ?(clients = 4) ?(idle_s = 1.5) ~seed url
    scenario =
  let rng =
    Proba.Rng.create
      ~seed:(seed + (1 + List.length all_scenarios)
             * (match scenario with
                | Trickle -> 1
                | Midbody_close -> 2
                | Garbage -> 3
                | Oversize -> 4
                | Idle_keepalive -> 5
                | Mixed -> 6))
  in
  let t = tally () in
  (match scenario with
   | Trickle -> run_trickle url rng ~rounds t
   | Midbody_close -> run_midbody_close url rng ~rounds t
   | Garbage -> run_garbage url rng ~rounds t
   | Oversize -> run_oversize url rng ~rounds t
   | Idle_keepalive -> run_idle_keepalive url ~idle_s ~rounds t
   | Mixed -> run_mixed url rng ~clients ~rounds t);
  if t.attempts <> t.answered + t.rejected + t.dropped then
    fail t "ledger out of balance: %d attempts vs %d answered + %d \
            rejected + %d dropped"
      t.attempts t.answered t.rejected t.dropped;
  { scenario = scenario_name scenario;
    attempts = t.attempts;
    answered = t.answered;
    rejected = t.rejected;
    dropped = t.dropped;
    failures = List.rev t.failures }

(* ------------------------------------------------------------------ *)
(* Probing the daemon's own ledger. *)

let get url target =
  match connect url with
  | None -> None
  | Some c ->
    write_all c.fd (request_text url target);
    let r =
      match Http.read_response c.rd with
      | `Response r -> Some r
      | `Eof | `Error _ -> None
    in
    close_quietly c.fd;
    r

let json_of (r : Http.response_msg) =
  match J.of_string r.Http.resp_body with Ok j -> Some j | Error _ -> None

let int_at json path =
  let rec go j = function
    | [] -> (match j with J.Int i -> Some i | _ -> None)
    | k :: rest -> Option.bind (J.member k j) (fun j -> go j rest)
  in
  go json path

let server_errors url =
  Option.bind (get url "/stats") (fun r ->
      Option.bind (json_of r) (fun j ->
          int_at j [ "server"; "server_errors" ]))

let health_status url =
  Option.bind (get url "/health") (fun r ->
      Option.bind (json_of r) (fun j ->
          match J.member "status" j with
          | Some (J.Str s) -> Some s
          | _ -> None))

let rec await_health_ok url tries =
  match health_status url with
  | Some "ok" -> true
  | _ when tries <= 0 -> false
  | _ ->
    Unix.sleepf 0.2;
    await_health_ok url (tries - 1)

(* ------------------------------------------------------------------ *)
(* The harness. *)

let run ?(scenarios = all_scenarios) ?rounds ?clients ?idle_s ~seed url =
  let errors_before = server_errors url in
  let outcomes =
    List.map (run_scenario ?rounds ?clients ?idle_s ~seed url) scenarios
  in
  let errors_after = server_errors url in
  let server_errors_delta =
    match errors_before, errors_after with
    | Some b, Some a -> a - b
    | _ -> -1 (* /stats unreachable: graded as a failure below *)
  in
  let health_ok = await_health_ok url 25 in
  let ok =
    health_ok && server_errors_delta = 0
    && List.for_all (fun (o : outcome) -> o.failures = []) outcomes
  in
  { outcomes; health_ok; server_errors_delta; ok }

let pp_outcome ppf o =
  Format.fprintf ppf "%-15s attempts %4d  answered %4d  rejected %4d  \
                      dropped %4d  %s"
    o.scenario o.attempts o.answered o.rejected o.dropped
    (if o.failures = [] then "ok"
     else Printf.sprintf "FAIL (%d)" (List.length o.failures));
  List.iter (fun f -> Format.fprintf ppf "@,    - %s" f) o.failures

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter (fun o -> Format.fprintf ppf "%a@," pp_outcome o) r.outcomes;
  Format.fprintf ppf "server errors    %s@,"
    (if r.server_errors_delta = 0 then "unchanged"
     else if r.server_errors_delta < 0 then "UNKNOWN (/stats unreachable)"
     else Printf.sprintf "GREW by %d" r.server_errors_delta);
  Format.fprintf ppf "health           %s@,"
    (if r.health_ok then "ok" else "NOT ok");
  Format.fprintf ppf "verdict          %s@]"
    (if r.ok then "chaos survived" else "CHAOS FAILED")
