(** [prtb route]: a consistent-hashing front for a fleet of [prtb
    serve] daemons.

    The router owns no models and runs no engines.  It parses just
    enough of each request to recover the query's canonical cache key
    ({!Protocol.canonical_key}), hashes that key onto a ring of
    virtual nodes ([replicas] per backend), and forwards the request
    bytes untouched -- same method, same target, same body -- to the
    owning backend, relaying the status, body and [X-Prtb-*] headers
    back verbatim.  Equal keys always land on the same backend, so
    each daemon's result cache and model registry stay hot for its
    shard of the keyspace; adding a backend remaps only the keys whose
    ring arc it takes over.

    Keyless requests ([/stats], [/health], [/batch] envelopes) have no
    shard affinity and round-robin across the fleet.  Requests the
    router itself cannot parse are answered at the router with the
    same structured errors a daemon would produce.

    Failure surfaces two ways, both 503 + [Retry-After: 1]: a backend
    that cannot be reached or answers garbage is [SRV112] (named
    distinctly from daemon overload so clients can tell the fleet is
    sick rather than busy), and a saturated router (accept queue past
    [accept_queue]) is the usual [SRV111].  A backend's own 503 is
    relayed as-is, with its [Retry-After]. *)

type config = {
  host : string;
  port : int;  (** [0] picks a free port; read it back with {!port} *)
  backends : string list;  (** daemon URLs, e.g. ["http://127.0.0.1:8081"] *)
  domains : int;  (** forwarding workers; clamped to [>= 2] *)
  accept_queue : int;  (** pending-connection bound before SRV111 *)
  read_timeout : float;
  write_timeout : float;
  conn_deadline : float;
  max_requests_per_conn : int;
  replicas : int;  (** virtual nodes per backend on the hash ring *)
}

(** 127.0.0.1:8080, no backends (supply some), 2 domains, queue 16,
    10 s reads and writes, 60 s per connection, 1000
    requests/connection, 50 replicas. *)
val default_config : config

type t

(** Bind, listen, spawn the accept loop.  Raises [Invalid_argument]
    when [backends] is empty and [Unix.Unix_error] when the address is
    unavailable. *)
val start : config -> t

val port : t -> int

(** The backend URL a canonical key maps to (exposed for tests: the
    assignment is a pure function of the key and the backend list). *)
val backend_for : t -> string -> string

(** Ask the router to stop; idempotent, async-signal-safe.  Pair with
    {!wait}. *)
val stop : t -> unit

(** Join the accept loop and drain the workers.  Call once, after
    {!stop}. *)
val wait : t -> unit

(** {!start} + [SIGTERM]/[SIGINT] handlers + banner + {!wait}, like
    {!Daemon.run}. *)
val run : config -> unit
