(** A seeded adversarial client for torturing a live [prtb serve]
    daemon.

    Each scenario opens raw sockets against the daemon and misbehaves
    deliberately -- trickling a request byte by byte, closing mid-body,
    sending garbage or oversized frames, squatting on idle keep-alive
    connections, or interleaving junk with valid traffic from
    concurrent domains.  The harness keeps a ledger per scenario
    (every attempt must end answered, rejected with 503, or cleanly
    dropped) and checks after the storm that the daemon's
    [server_errors] counter did not grow and that [/health] reports
    ["ok"] again.

    All randomness flows from [Proba.Rng] streams derived from the
    caller's seed, so a given [(seed, rounds, clients)] triple replays
    the same byte stream every run; failures are reproducible.
    Surfaced on the command line as [prtb chaos]. *)

type scenario =
  | Trickle  (** valid request delivered one byte at a time *)
  | Midbody_close  (** POST with a declared body, closed mid-body *)
  | Garbage  (** random junk where a request line belongs *)
  | Oversize  (** request line beyond the 8 KiB header limit *)
  | Idle_keepalive  (** park a kept-alive connection, then reuse it *)
  | Mixed  (** concurrent garbage + valid traffic; valid answers must
               be bit-identical *)

val all_scenarios : scenario list

val scenario_name : scenario -> string

(** Inverse of {!scenario_name} (also accepts the short forms
    ["midbody"] and ["idle"]). *)
val scenario_of_string : string -> (scenario, string) result

(** The per-scenario ledger.  [attempts = answered + rejected +
    dropped] always holds; [failures] lists assertion violations
    (unexpected status, a drop where an answer was mandatory, valid
    responses diverging under the Mixed scenario, ...). *)
type outcome = {
  scenario : string;
  attempts : int;
  answered : int;  (** complete non-503 responses *)
  rejected : int;  (** 503 backpressure rejections *)
  dropped : int;  (** connection closed without a complete response *)
  failures : string list;
}

type report = {
  outcomes : outcome list;
  health_ok : bool;  (** [/health] returned to ["ok"] after the storm *)
  server_errors_delta : int;
      (** growth of the daemon's 5xx counter across the run; [-1] when
          [/stats] was unreachable *)
  ok : bool;  (** no failures, no new server errors, health recovered *)
}

(** Run one scenario.  [rounds] (default 5) iterations; [clients]
    (default 4) concurrent domains, Mixed only; [idle_s] (default 1.5)
    idle parking time, Idle_keepalive only. *)
val run_scenario :
  ?rounds:int ->
  ?clients:int ->
  ?idle_s:float ->
  seed:int ->
  Load.url ->
  scenario ->
  outcome

(** Run a batch of scenarios (default {!all_scenarios}) and the
    end-to-end reconciliation: [/stats] snapshots before and after,
    then a bounded poll for [/health] to come back ["ok"]. *)
val run :
  ?scenarios:scenario list ->
  ?rounds:int ->
  ?clients:int ->
  ?idle_s:float ->
  seed:int ->
  Load.url ->
  report

val pp_outcome : Format.formatter -> outcome -> unit

val pp_report : Format.formatter -> report -> unit
